file(REMOVE_RECURSE
  "CMakeFiles/availability_whatif.dir/availability_whatif.cpp.o"
  "CMakeFiles/availability_whatif.dir/availability_whatif.cpp.o.d"
  "availability_whatif"
  "availability_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/availability_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
