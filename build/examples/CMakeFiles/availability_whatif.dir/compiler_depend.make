# Empty compiler generated dependencies file for availability_whatif.
# This may be replaced when dependencies are built.
