file(REMOVE_RECURSE
  "../bench/bench_fig1_small_update"
  "../bench/bench_fig1_small_update.pdb"
  "CMakeFiles/bench_fig1_small_update.dir/bench_fig1_small_update.cc.o"
  "CMakeFiles/bench_fig1_small_update.dir/bench_fig1_small_update.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_small_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
