# Empty dependencies file for bench_fig1_small_update.
# This may be replaced when dependencies are built.
