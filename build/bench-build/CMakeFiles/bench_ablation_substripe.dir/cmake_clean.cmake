file(REMOVE_RECURSE
  "../bench/bench_ablation_substripe"
  "../bench/bench_ablation_substripe.pdb"
  "CMakeFiles/bench_ablation_substripe.dir/bench_ablation_substripe.cc.o"
  "CMakeFiles/bench_ablation_substripe.dir/bench_ablation_substripe.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_substripe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
