# Empty dependencies file for bench_ablation_substripe.
# This may be replaced when dependencies are built.
