# Empty compiler generated dependencies file for bench_ablation_idle_predictor.
# This may be replaced when dependencies are built.
