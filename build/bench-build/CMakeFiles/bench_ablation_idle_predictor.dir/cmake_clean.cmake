file(REMOVE_RECURSE
  "../bench/bench_ablation_idle_predictor"
  "../bench/bench_ablation_idle_predictor.pdb"
  "CMakeFiles/bench_ablation_idle_predictor.dir/bench_ablation_idle_predictor.cc.o"
  "CMakeFiles/bench_ablation_idle_predictor.dir/bench_ablation_idle_predictor.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_idle_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
