file(REMOVE_RECURSE
  "../bench/bench_ablation_raid6"
  "../bench/bench_ablation_raid6.pdb"
  "CMakeFiles/bench_ablation_raid6.dir/bench_ablation_raid6.cc.o"
  "CMakeFiles/bench_ablation_raid6.dir/bench_ablation_raid6.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_raid6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
