# Empty dependencies file for bench_ablation_raid6.
# This may be replaced when dependencies are built.
