file(REMOVE_RECURSE
  "../bench/bench_table3_availability"
  "../bench/bench_table3_availability.pdb"
  "CMakeFiles/bench_table3_availability.dir/bench_table3_availability.cc.o"
  "CMakeFiles/bench_table3_availability.dir/bench_table3_availability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
