# Empty dependencies file for bench_table4_mttdl_policy.
# This may be replaced when dependencies are built.
