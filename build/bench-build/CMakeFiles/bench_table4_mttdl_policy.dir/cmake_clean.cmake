file(REMOVE_RECURSE
  "../bench/bench_table4_mttdl_policy"
  "../bench/bench_table4_mttdl_policy.pdb"
  "CMakeFiles/bench_table4_mttdl_policy.dir/bench_table4_mttdl_policy.cc.o"
  "CMakeFiles/bench_table4_mttdl_policy.dir/bench_table4_mttdl_policy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_mttdl_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
