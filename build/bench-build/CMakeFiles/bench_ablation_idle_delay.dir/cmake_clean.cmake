file(REMOVE_RECURSE
  "../bench/bench_ablation_idle_delay"
  "../bench/bench_ablation_idle_delay.pdb"
  "CMakeFiles/bench_ablation_idle_delay.dir/bench_ablation_idle_delay.cc.o"
  "CMakeFiles/bench_ablation_idle_delay.dir/bench_ablation_idle_delay.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_idle_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
