# Empty compiler generated dependencies file for bench_fig4_policy_sweep.
# This may be replaced when dependencies are built.
