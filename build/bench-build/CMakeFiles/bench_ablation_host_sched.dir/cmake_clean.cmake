file(REMOVE_RECURSE
  "../bench/bench_ablation_host_sched"
  "../bench/bench_ablation_host_sched.pdb"
  "CMakeFiles/bench_ablation_host_sched.dir/bench_ablation_host_sched.cc.o"
  "CMakeFiles/bench_ablation_host_sched.dir/bench_ablation_host_sched.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_host_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
