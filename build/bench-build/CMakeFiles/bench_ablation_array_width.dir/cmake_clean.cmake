file(REMOVE_RECURSE
  "../bench/bench_ablation_array_width"
  "../bench/bench_ablation_array_width.pdb"
  "CMakeFiles/bench_ablation_array_width.dir/bench_ablation_array_width.cc.o"
  "CMakeFiles/bench_ablation_array_width.dir/bench_ablation_array_width.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_array_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
