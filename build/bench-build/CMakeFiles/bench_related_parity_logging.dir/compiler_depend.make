# Empty compiler generated dependencies file for bench_related_parity_logging.
# This may be replaced when dependencies are built.
