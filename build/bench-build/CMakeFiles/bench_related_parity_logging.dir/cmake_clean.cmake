file(REMOVE_RECURSE
  "../bench/bench_related_parity_logging"
  "../bench/bench_related_parity_logging.pdb"
  "CMakeFiles/bench_related_parity_logging.dir/bench_related_parity_logging.cc.o"
  "CMakeFiles/bench_related_parity_logging.dir/bench_related_parity_logging.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_parity_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
