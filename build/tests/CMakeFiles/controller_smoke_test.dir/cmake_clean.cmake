file(REMOVE_RECURSE
  "CMakeFiles/controller_smoke_test.dir/core/controller_smoke_test.cc.o"
  "CMakeFiles/controller_smoke_test.dir/core/controller_smoke_test.cc.o.d"
  "controller_smoke_test"
  "controller_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
