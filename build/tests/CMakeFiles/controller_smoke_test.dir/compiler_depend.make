# Empty compiler generated dependencies file for controller_smoke_test.
# This may be replaced when dependencies are built.
