# Empty dependencies file for idle_predictor_test.
# This may be replaced when dependencies are built.
