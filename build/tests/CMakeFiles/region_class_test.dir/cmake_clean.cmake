file(REMOVE_RECURSE
  "CMakeFiles/region_class_test.dir/core/region_class_test.cc.o"
  "CMakeFiles/region_class_test.dir/core/region_class_test.cc.o.d"
  "region_class_test"
  "region_class_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_class_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
