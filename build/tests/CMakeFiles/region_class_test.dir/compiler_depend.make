# Empty compiler generated dependencies file for region_class_test.
# This may be replaced when dependencies are built.
