# Empty dependencies file for parity_log_test.
# This may be replaced when dependencies are built.
