file(REMOVE_RECURSE
  "CMakeFiles/parity_log_test.dir/core/parity_log_test.cc.o"
  "CMakeFiles/parity_log_test.dir/core/parity_log_test.cc.o.d"
  "parity_log_test"
  "parity_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parity_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
