file(REMOVE_RECURSE
  "CMakeFiles/avail_model_test.dir/avail/model_test.cc.o"
  "CMakeFiles/avail_model_test.dir/avail/model_test.cc.o.d"
  "avail_model_test"
  "avail_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avail_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
