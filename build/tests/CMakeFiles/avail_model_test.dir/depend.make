# Empty dependencies file for avail_model_test.
# This may be replaced when dependencies are built.
