# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for avail_model_test.
