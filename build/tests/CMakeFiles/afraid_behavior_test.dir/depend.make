# Empty dependencies file for afraid_behavior_test.
# This may be replaced when dependencies are built.
