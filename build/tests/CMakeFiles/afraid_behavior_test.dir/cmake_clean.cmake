file(REMOVE_RECURSE
  "CMakeFiles/afraid_behavior_test.dir/core/afraid_behavior_test.cc.o"
  "CMakeFiles/afraid_behavior_test.dir/core/afraid_behavior_test.cc.o.d"
  "afraid_behavior_test"
  "afraid_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afraid_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
