file(REMOVE_RECURSE
  "CMakeFiles/config_sweep_test.dir/core/config_sweep_test.cc.o"
  "CMakeFiles/config_sweep_test.dir/core/config_sweep_test.cc.o.d"
  "config_sweep_test"
  "config_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
