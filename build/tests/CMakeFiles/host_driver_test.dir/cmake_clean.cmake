file(REMOVE_RECURSE
  "CMakeFiles/host_driver_test.dir/array/host_driver_test.cc.o"
  "CMakeFiles/host_driver_test.dir/array/host_driver_test.cc.o.d"
  "host_driver_test"
  "host_driver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
