# Empty compiler generated dependencies file for host_driver_test.
# This may be replaced when dependencies are built.
