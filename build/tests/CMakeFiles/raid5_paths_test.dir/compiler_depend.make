# Empty compiler generated dependencies file for raid5_paths_test.
# This may be replaced when dependencies are built.
