file(REMOVE_RECURSE
  "CMakeFiles/raid5_paths_test.dir/core/raid5_paths_test.cc.o"
  "CMakeFiles/raid5_paths_test.dir/core/raid5_paths_test.cc.o.d"
  "raid5_paths_test"
  "raid5_paths_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid5_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
