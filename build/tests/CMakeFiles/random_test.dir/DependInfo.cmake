
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/random_test.cc" "tests/CMakeFiles/random_test.dir/sim/random_test.cc.o" "gcc" "tests/CMakeFiles/random_test.dir/sim/random_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/afraid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/array/CMakeFiles/afraid_array.dir/DependInfo.cmake"
  "/root/repo/build/src/avail/CMakeFiles/afraid_avail.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/afraid_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/afraid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/afraid_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/afraid_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
