# Empty dependencies file for substripe_marking_test.
# This may be replaced when dependencies are built.
