file(REMOVE_RECURSE
  "CMakeFiles/substripe_marking_test.dir/core/substripe_marking_test.cc.o"
  "CMakeFiles/substripe_marking_test.dir/core/substripe_marking_test.cc.o.d"
  "substripe_marking_test"
  "substripe_marking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substripe_marking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
