file(REMOVE_RECURSE
  "CMakeFiles/array_parts_test.dir/array/array_parts_test.cc.o"
  "CMakeFiles/array_parts_test.dir/array/array_parts_test.cc.o.d"
  "array_parts_test"
  "array_parts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/array_parts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
