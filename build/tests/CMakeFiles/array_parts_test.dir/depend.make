# Empty dependencies file for array_parts_test.
# This may be replaced when dependencies are built.
