# Empty compiler generated dependencies file for afraid_stats.
# This may be replaced when dependencies are built.
