file(REMOVE_RECURSE
  "libafraid_stats.a"
)
