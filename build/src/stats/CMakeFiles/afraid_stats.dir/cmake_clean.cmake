file(REMOVE_RECURSE
  "CMakeFiles/afraid_stats.dir/histogram.cc.o"
  "CMakeFiles/afraid_stats.dir/histogram.cc.o.d"
  "libafraid_stats.a"
  "libafraid_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afraid_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
