# Empty compiler generated dependencies file for afraid_core.
# This may be replaced when dependencies are built.
