file(REMOVE_RECURSE
  "libafraid_core.a"
)
