
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/afraid_controller.cc" "src/core/CMakeFiles/afraid_core.dir/afraid_controller.cc.o" "gcc" "src/core/CMakeFiles/afraid_core.dir/afraid_controller.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/afraid_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/afraid_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/parity_log_controller.cc" "src/core/CMakeFiles/afraid_core.dir/parity_log_controller.cc.o" "gcc" "src/core/CMakeFiles/afraid_core.dir/parity_log_controller.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/afraid_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/afraid_core.dir/policy.cc.o.d"
  "/root/repo/src/core/raid6_controller.cc" "src/core/CMakeFiles/afraid_core.dir/raid6_controller.cc.o" "gcc" "src/core/CMakeFiles/afraid_core.dir/raid6_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/array/CMakeFiles/afraid_array.dir/DependInfo.cmake"
  "/root/repo/build/src/avail/CMakeFiles/afraid_avail.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/afraid_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/afraid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/afraid_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/afraid_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
