file(REMOVE_RECURSE
  "CMakeFiles/afraid_core.dir/afraid_controller.cc.o"
  "CMakeFiles/afraid_core.dir/afraid_controller.cc.o.d"
  "CMakeFiles/afraid_core.dir/experiment.cc.o"
  "CMakeFiles/afraid_core.dir/experiment.cc.o.d"
  "CMakeFiles/afraid_core.dir/parity_log_controller.cc.o"
  "CMakeFiles/afraid_core.dir/parity_log_controller.cc.o.d"
  "CMakeFiles/afraid_core.dir/policy.cc.o"
  "CMakeFiles/afraid_core.dir/policy.cc.o.d"
  "CMakeFiles/afraid_core.dir/raid6_controller.cc.o"
  "CMakeFiles/afraid_core.dir/raid6_controller.cc.o.d"
  "libafraid_core.a"
  "libafraid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afraid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
