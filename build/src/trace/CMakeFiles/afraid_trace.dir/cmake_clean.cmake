file(REMOVE_RECURSE
  "CMakeFiles/afraid_trace.dir/trace.cc.o"
  "CMakeFiles/afraid_trace.dir/trace.cc.o.d"
  "CMakeFiles/afraid_trace.dir/transform.cc.o"
  "CMakeFiles/afraid_trace.dir/transform.cc.o.d"
  "CMakeFiles/afraid_trace.dir/workload_gen.cc.o"
  "CMakeFiles/afraid_trace.dir/workload_gen.cc.o.d"
  "libafraid_trace.a"
  "libafraid_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afraid_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
