# Empty compiler generated dependencies file for afraid_trace.
# This may be replaced when dependencies are built.
