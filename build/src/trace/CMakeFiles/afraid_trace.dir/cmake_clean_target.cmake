file(REMOVE_RECURSE
  "libafraid_trace.a"
)
