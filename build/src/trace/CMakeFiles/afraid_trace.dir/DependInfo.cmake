
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/trace.cc" "src/trace/CMakeFiles/afraid_trace.dir/trace.cc.o" "gcc" "src/trace/CMakeFiles/afraid_trace.dir/trace.cc.o.d"
  "/root/repo/src/trace/transform.cc" "src/trace/CMakeFiles/afraid_trace.dir/transform.cc.o" "gcc" "src/trace/CMakeFiles/afraid_trace.dir/transform.cc.o.d"
  "/root/repo/src/trace/workload_gen.cc" "src/trace/CMakeFiles/afraid_trace.dir/workload_gen.cc.o" "gcc" "src/trace/CMakeFiles/afraid_trace.dir/workload_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/afraid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/afraid_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
