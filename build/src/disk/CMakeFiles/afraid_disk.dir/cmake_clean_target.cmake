file(REMOVE_RECURSE
  "libafraid_disk.a"
)
