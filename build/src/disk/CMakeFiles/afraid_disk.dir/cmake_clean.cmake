file(REMOVE_RECURSE
  "CMakeFiles/afraid_disk.dir/disk_model.cc.o"
  "CMakeFiles/afraid_disk.dir/disk_model.cc.o.d"
  "CMakeFiles/afraid_disk.dir/disk_spec.cc.o"
  "CMakeFiles/afraid_disk.dir/disk_spec.cc.o.d"
  "CMakeFiles/afraid_disk.dir/geometry.cc.o"
  "CMakeFiles/afraid_disk.dir/geometry.cc.o.d"
  "libafraid_disk.a"
  "libafraid_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afraid_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
