# Empty compiler generated dependencies file for afraid_disk.
# This may be replaced when dependencies are built.
