# Empty dependencies file for afraid_sim.
# This may be replaced when dependencies are built.
