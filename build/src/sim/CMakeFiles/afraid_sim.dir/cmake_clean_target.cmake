file(REMOVE_RECURSE
  "libafraid_sim.a"
)
