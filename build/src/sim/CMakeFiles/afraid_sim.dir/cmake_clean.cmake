file(REMOVE_RECURSE
  "CMakeFiles/afraid_sim.dir/event_queue.cc.o"
  "CMakeFiles/afraid_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/afraid_sim.dir/simulator.cc.o"
  "CMakeFiles/afraid_sim.dir/simulator.cc.o.d"
  "CMakeFiles/afraid_sim.dir/time.cc.o"
  "CMakeFiles/afraid_sim.dir/time.cc.o.d"
  "libafraid_sim.a"
  "libafraid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afraid_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
