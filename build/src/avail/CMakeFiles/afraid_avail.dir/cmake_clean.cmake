file(REMOVE_RECURSE
  "CMakeFiles/afraid_avail.dir/model.cc.o"
  "CMakeFiles/afraid_avail.dir/model.cc.o.d"
  "libafraid_avail.a"
  "libafraid_avail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afraid_avail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
