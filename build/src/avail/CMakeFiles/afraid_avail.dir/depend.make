# Empty dependencies file for afraid_avail.
# This may be replaced when dependencies are built.
