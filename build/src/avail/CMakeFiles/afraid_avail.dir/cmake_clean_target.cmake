file(REMOVE_RECURSE
  "libafraid_avail.a"
)
