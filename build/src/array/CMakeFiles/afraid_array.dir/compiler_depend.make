# Empty compiler generated dependencies file for afraid_array.
# This may be replaced when dependencies are built.
