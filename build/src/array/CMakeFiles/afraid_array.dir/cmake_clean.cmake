file(REMOVE_RECURSE
  "CMakeFiles/afraid_array.dir/host_driver.cc.o"
  "CMakeFiles/afraid_array.dir/host_driver.cc.o.d"
  "CMakeFiles/afraid_array.dir/layout.cc.o"
  "CMakeFiles/afraid_array.dir/layout.cc.o.d"
  "CMakeFiles/afraid_array.dir/stripe_lock.cc.o"
  "CMakeFiles/afraid_array.dir/stripe_lock.cc.o.d"
  "libafraid_array.a"
  "libafraid_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afraid_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
