
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/array/host_driver.cc" "src/array/CMakeFiles/afraid_array.dir/host_driver.cc.o" "gcc" "src/array/CMakeFiles/afraid_array.dir/host_driver.cc.o.d"
  "/root/repo/src/array/layout.cc" "src/array/CMakeFiles/afraid_array.dir/layout.cc.o" "gcc" "src/array/CMakeFiles/afraid_array.dir/layout.cc.o.d"
  "/root/repo/src/array/stripe_lock.cc" "src/array/CMakeFiles/afraid_array.dir/stripe_lock.cc.o" "gcc" "src/array/CMakeFiles/afraid_array.dir/stripe_lock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/afraid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/afraid_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/afraid_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
