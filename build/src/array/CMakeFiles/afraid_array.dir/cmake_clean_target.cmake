file(REMOVE_RECURSE
  "libafraid_array.a"
)
