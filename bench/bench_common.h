// Shared helpers for the experiment harnesses in bench/.
//
// Every bench binary regenerates one table or figure of the paper: it runs
// the simulations, prints rows in the paper's structure, and prints the
// paper's headline numbers beside the measured ones so the shape comparison
// is immediate. Absolute numbers are not expected to match a 1996 testbed;
// orderings and rough factors are.

#ifndef AFRAID_BENCH_BENCH_COMMON_H_
#define AFRAID_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/array_config.h"
#include "core/experiment.h"
#include "core/policy.h"
#include "core/report.h"
#include "obs/artifacts.h"
#include "obs/json.h"
#include "obs/report_io.h"
#include "trace/workload_gen.h"

namespace afraid {

// The paper's array: 5 HP C3325-like disks, 8 KB stripe unit, small caches.
inline ArrayConfig PaperArrayConfig() {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::HpC3325Like();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;
  return cfg;
}

// Experiment sizing: long enough for stable means, short enough that all
// benches finish in minutes. Override via environment for deeper runs:
//   AFRAID_BENCH_REQUESTS=200000 AFRAID_BENCH_MINUTES=120 ./bench_...
inline uint64_t BenchRequests() {
  if (const char* env = std::getenv("AFRAID_BENCH_REQUESTS")) {
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 30000;
}
inline SimDuration BenchDuration() {
  if (const char* env = std::getenv("AFRAID_BENCH_MINUTES")) {
    return Minutes(std::strtol(env, nullptr, 10));
  }
  return Minutes(60);
}

inline void PrintRule(int width = 100) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

// Machine-readable bench output, behind the one SimReport serializer
// (obs/report_io.h). Each bench collects its labelled reports into a sink;
// when AFRAID_BENCH_OUT=<dir> is set the destructor writes
// <dir>/<bench>.json (array of {"label", "report"} rows) and <dir>/<bench>.csv.
// Without the variable the sink is inert and the printed tables stay the
// bench's only output.
class BenchReportSink {
 public:
  explicit BenchReportSink(std::string bench_name)
      : bench_name_(std::move(bench_name)) {
    if (const char* env = std::getenv("AFRAID_BENCH_OUT")) {
      if (env[0] != '\0') {
        out_dir_ = env;
      }
    }
  }
  BenchReportSink(const BenchReportSink&) = delete;
  BenchReportSink& operator=(const BenchReportSink&) = delete;

  bool enabled() const { return !out_dir_.empty(); }

  void Add(std::string label, const SimReport& rep) {
    if (enabled()) {
      rows_.push_back({std::move(label), rep});
    }
  }

  ~BenchReportSink() {
    if (!enabled() || rows_.empty()) {
      return;
    }
    RunArtifacts artifacts(out_dir_);
    if (!artifacts.ok()) {
      std::fprintf(stderr, "AFRAID_BENCH_OUT: %s\n", artifacts.error().c_str());
      return;
    }
    JsonWriter w;
    w.BeginArray();
    for (const Row& row : rows_) {
      w.BeginObject();
      w.Key("label").Value(row.label);
      w.Key("report");
      AppendSimReportJson(w, row.report);
      w.EndObject();
    }
    w.EndArray();
    artifacts.WriteText(bench_name_ + ".json", std::move(w).Take() + "\n");
    std::string csv = "label," + SimReportCsvHeader() + "\n";
    for (const Row& row : rows_) {
      csv += row.label + "," + SimReportCsvRow(row.report) + "\n";
    }
    artifacts.WriteText(bench_name_ + ".csv", csv);
  }

 private:
  struct Row {
    std::string label;
    SimReport report;
  };
  std::string bench_name_;
  std::string out_dir_;
  std::vector<Row> rows_;
};

// Human-readable hours (engineering notation like the paper: "4.2e9 h").
inline std::string Hours(double h) {
  char buf[32];
  if (h == std::numeric_limits<double>::infinity()) {
    return "inf";
  }
  std::snprintf(buf, sizeof(buf), "%.3g", h);
  return buf;
}

}  // namespace afraid

#endif  // AFRAID_BENCH_BENCH_COMMON_H_
