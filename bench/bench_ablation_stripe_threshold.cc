// Ablation: the forced-rebuild stripe threshold.
//
// The MTTDL_x policy "attempts to limit MDLR by automatically starting a
// parity update when more than 20 stripes are unprotected, even if the array
// is not idle; we had found earlier that this was fairly effective and
// caused little performance degradation" (Section 4.1). This sweep redoes
// that earlier finding with the pure threshold policy.

#include <cstdio>

#include "bench/bench_common.h"

namespace afraid {
namespace {

int Run() {
  const ArrayConfig cfg = PaperArrayConfig();
  const AvailabilityParams ap = AvailabilityParamsFor(cfg);
  const uint64_t max_requests = BenchRequests();
  const SimDuration max_duration = BenchDuration();
  WorkloadParams wl;
  FindWorkload("AS400-1", &wl);  // Busy enough that forcing matters.

  PrintHeader("Ablation: forced-rebuild threshold (workload AS400-1)");
  std::printf("%10s %12s %12s %12s %14s\n", "threshold", "mean ms", "lag (KB)",
              "MDLRunp b/h", "max dirty");
  PrintRule();
  BenchReportSink sink("ablation_stripe_threshold");
  for (int64_t threshold : {1, 5, 20, 100, 1000, 1000000}) {
    const SimReport rep = Experiment(cfg).Policy(PolicySpec::StripeThreshold(threshold))
        .Workload(wl, max_requests, max_duration).Run();
    sink.Add("threshold=" + std::to_string(threshold), rep);
    std::printf("%10lld %12.2f %12.1f %12.3f %14lld\n",
                static_cast<long long>(threshold), rep.mean_io_ms,
                rep.mean_parity_lag_bytes / 1024.0,
                MdlrUnprotectedBph(ap, rep.mean_parity_lag_bytes),
                static_cast<long long>(rep.max_dirty_stripes));
  }
  PrintRule();
  std::printf("expected: small thresholds bound the parity lag tightly (low MDLR)\n"
              "with modest latency cost; huge thresholds converge to baseline\n"
              "AFRAID. The paper settled on 20.\n");
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
