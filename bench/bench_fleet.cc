// Fleet grid: the volume manager across schemes, sharding policies and
// fleet widths, each run surviving a standard mid-run incident (one disk
// failure + online repair on one shard while the rest keep serving).
//
// Columns to watch: range sharding balances a tiled tenant population
// almost perfectly but concentrates any hot range; consistent hashing pays
// a few percent of imbalance (and some cross-shard splits) for placement
// that survives hot spots and reshards incrementally. p999 is the fleet
// number the single-array tables cannot show: it is dominated by the
// degraded shard, not the healthy median.
//
//   AFRAID_BENCH_REQUESTS=100000 AFRAID_BENCH_TENANTS=5000 ./bench_fleet

#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "fleet/tenants.h"
#include "fleet/volume_manager.h"

namespace afraid {
namespace {

int32_t BenchTenants() {
  if (const char* env = std::getenv("AFRAID_BENCH_TENANTS")) {
    return static_cast<int32_t>(std::strtol(env, nullptr, 10));
  }
  return 1200;
}

int Run() {
  const uint64_t requests = BenchRequests();
  const int32_t tenants = BenchTenants();

  struct SchemeRow {
    const char* label;
    const char* scheme;  // Registry name (core/scheme_registry.h).
    PolicySpec policy;
  };
  const SchemeRow schemes[] = {
      {"afraid", "afraid", PolicySpec::AfraidBaseline()},
      {"raid5", "afraid", PolicySpec::Raid5()},
      {"raid6-dq", "raid6-deferQ", PolicySpec::AfraidBaseline()},
      {"plog", "parity-log", PolicySpec::AfraidBaseline()},
      {"mirror", "mirror", PolicySpec::AfraidBaseline()},
  };

  PrintHeader("Fleet grid: scheme x sharding x width, one failed+repaired "
              "disk per run");
  std::printf("%-9s %-6s %6s | %8s %8s %8s %8s | %7s %6s %6s | %8s %6s\n",
              "scheme", "shard", "width", "mean ms", "p50", "p99", "p999",
              "max/mean", "cv", "split", "degr s", "loss");
  PrintRule(110);

  for (const SchemeRow& row : schemes) {
    for (const ShardingKind kind :
         {ShardingKind::kRange, ShardingKind::kConsistentHash}) {
      for (const int32_t width : {4, 8, 16}) {
        FleetConfig cfg;
        cfg.scheme = row.scheme;
        cfg.policy = row.policy;
        cfg.sharding = kind;
        cfg.num_shards = width;
        cfg.chunk_bytes = 4 << 20;
        cfg.seed = 1996;
        VolumeManager vm(cfg);
        // The standard incident: one disk of one mid-fleet shard dies a
        // third of the way in and is repaired online a minute later.
        const int32_t victim = width / 2;
        vm.DiskFail(Seconds(20), victim, /*disk=*/1);
        vm.DiskRepaired(Seconds(80), victim, /*disk=*/1);

        FleetWorkloadParams wp;
        wp.name = "fleet-mix";
        wp.seed = 7;
        wp.num_tenants = tenants;
        wp.max_requests = requests;
        wp.max_duration = Minutes(10);
        const FleetTrace trace = GenerateFleetWorkload(wp, vm.VolumeBytes());

        const FleetReport rep = vm.Run(trace);
        std::printf(
            "%-9s %-6s %6d | %8.2f %8.2f %8.2f %8.2f | %7.3f %6.3f %6llu "
            "| %8.1f %6llu\n",
            row.label, rep.sharding.c_str(), width, rep.mean_ms, rep.p50_ms,
            rep.p99_ms, rep.p999_ms, rep.imbalance_max_mean, rep.imbalance_cv,
            static_cast<unsigned long long>(rep.split_requests),
            rep.degraded_shard_s,
            static_cast<unsigned long long>(rep.loss_events));
      }
    }
  }
  PrintRule(110);
  std::printf("tenants=%d requests=%llu; every cell is bit-identical for any "
              "AFRAID_BENCH_THREADS\n",
              tenants, static_cast<unsigned long long>(requests));
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
