// Reproduces Table 4 of the AFRAID paper: the MTTDL_x policy holding the
// disk-related MTTDL at or above a configured target by reverting to RAID 5
// mode when the achieved value sags, and force-starting parity rebuilds when
// more than 20 stripes are unprotected.
//
// Paper headlines:
//   * "the disk-related MTTDL was never more than 5% below its target, and
//     usually far exceeded it";
//   * "The MDLR_unprotected drops to less than 0.1 bytes/hour if any of the
//     MTTDL_x policies are used."

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace afraid {
namespace {

int Run() {
  const ArrayConfig cfg = PaperArrayConfig();
  const AvailabilityParams ap = AvailabilityParamsFor(cfg);
  const uint64_t max_requests = BenchRequests();
  const SimDuration max_duration = BenchDuration();
  const std::vector<double> targets_hours = {0.5e6, 1.0e6, 2.0e6, 3.0e6};

  PrintHeader("Table 4: MTTDL_x policy -- achieved disk MTTDL vs target");
  std::printf("%-12s", "workload");
  for (double t : targets_hours) {
    std::printf(" | %8.2gM: %9s %7s %8s", t / 1e6, "MTTDL/h", "short%", "MDLRunp");
  }
  std::printf("\n");
  PrintRule(140);

  bool ever_above_5pct_short = false;
  double worst_mdlr_unprot = 0.0;
  BenchReportSink sink("table4_mttdl_policy");
  for (const WorkloadParams& wl : PaperWorkloads()) {
    std::printf("%-12s", wl.name.c_str());
    for (double t : targets_hours) {
      const SimReport rep = Experiment(cfg).Policy(PolicySpec::MttdlTarget(t))
          .Workload(wl, max_requests, max_duration).Run();
      sink.Add(wl.name + "/" + rep.policy, rep);
      const double achieved = rep.avail.mttdl_disk_hours;
      const double shortfall_pct =
          achieved >= t ? 0.0 : (1.0 - achieved / t) * 100.0;
      const double mdlr_unprot = MdlrUnprotectedBph(ap, rep.mean_parity_lag_bytes);
      ever_above_5pct_short |= shortfall_pct > 5.0;
      worst_mdlr_unprot = std::max(worst_mdlr_unprot, mdlr_unprot);
      std::printf(" | %8s: %9s %6.1f%% %8.3f", "", Hours(achieved).c_str(),
                  shortfall_pct, mdlr_unprot);
    }
    std::printf("\n");
  }
  PrintRule(140);
  std::printf("max shortfall >5%%? %s (paper: never more than 5%% below target)\n",
              ever_above_5pct_short ? "YES -- INVESTIGATE" : "no");
  std::printf("worst MDLR_unprotected = %.3f bytes/hour (paper: < 0.1 under any "
              "MTTDL_x policy)\n",
              worst_mdlr_unprot);
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
