// Ablation: adaptive idleness prediction [Golding95].
//
// The paper's baseline uses a plain 100 ms timer and notes "the output from
// the idle-period predictor was ignored". This bench turns the predictor on:
// rebuild passes are skipped in gaps predicted too short to fit one rebuild
// step, trading a little extra exposure for less burst interference on
// short-gap workloads.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace afraid {
namespace {

int Run() {
  const uint64_t max_requests = BenchRequests();
  const SimDuration max_duration = BenchDuration();

  PrintHeader("Ablation: timer-only vs adaptive idle prediction (baseline AFRAID)");
  std::printf("%-12s %14s %14s | %10s %10s\n", "workload", "timer ms", "predict ms",
              "timer Tunp", "pred Tunp");
  PrintRule();
  std::vector<WorkloadParams> workloads;
  for (const char* name : {"cello-news", "netware", "AS400-1", "snake"}) {
    WorkloadParams wl;
    FindWorkload(name, &wl);
    workloads.push_back(wl);
  }
  {
    // A pathological gap population: bursts separated by ~140 ms pauses,
    // barely past the 100 ms detector delay and too short to fit a rebuild
    // step -- the case the predictor exists for.
    WorkloadParams wl;
    wl.name = "short-gaps";
    wl.seed = 0xafe110;
    wl.mean_burst_requests = 12;
    wl.mean_idle_ms = 140;
    wl.idle_pareto_alpha = 8.0;  // Near-deterministic gap length.
    wl.max_idle_ms = 200;
    wl.intra_burst_gap_ms = 8;
    wl.write_fraction = 0.7;
    wl.size_dist = {{4096, 0.5}, {8192, 0.5}};
    workloads.push_back(wl);
  }
  BenchReportSink sink("ablation_idle_predictor");
  for (const WorkloadParams& wl : workloads) {
    ArrayConfig cfg = PaperArrayConfig();
    cfg.use_idle_predictor = false;
    const SimReport timer = Experiment(cfg).Policy(PolicySpec::AfraidBaseline())
        .Workload(wl, max_requests, max_duration).Run();
    cfg.use_idle_predictor = true;
    const SimReport pred = Experiment(cfg).Policy(PolicySpec::AfraidBaseline())
        .Workload(wl, max_requests, max_duration).Run();
    sink.Add(wl.name + "/timer", timer);
    sink.Add(wl.name + "/predictor", pred);
    std::printf("%-12s %14.2f %14.2f | %10.4f %10.4f\n", wl.name.c_str(),
                timer.mean_io_ms, pred.mean_io_ms, timer.t_unprot_fraction,
                pred.t_unprot_fraction);
  }
  PrintRule();
  std::printf("expected: on short-gap workloads the predictor trades a slightly\n"
              "longer unprotected window for less interference; on clearly bursty\n"
              "workloads the two are nearly identical.\n");
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
