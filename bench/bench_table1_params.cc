// Reproduces Table 1 of the paper (the failure/repair parameter values) and
// the worked availability numbers of Section 3 that flow from them, so the
// analytic model can be eyeballed against the paper directly.

#include <cstdio>

#include "avail/model.h"
#include "bench/bench_common.h"

namespace afraid {
namespace {

int Run() {
  const AvailabilityParams p;  // Table 1 defaults.

  PrintHeader("Table 1: values assumed for calculations in this paper");
  std::printf("%-48s %15s %15s\n", "parameter", "paper", "this repo");
  PrintRule();
  std::printf("%-48s %15s %15.3g\n", "disk MTTF (raw), hours", "1M",
              p.mttf_disk_raw_hours);
  std::printf("%-48s %15s %15.3g\n", "support hardware MTTDL, hours", "2M",
              p.mttdl_support_hours);
  std::printf("%-48s %15s %15.2f\n", "disk failure-prediction coverage C", "0.5",
              p.coverage);
  std::printf("%-48s %15s %15.1f\n", "mean time to repair, hours", "48", p.mttr_hours);
  std::printf("%-48s %15s %15.0f\n", "stripe unit size S, bytes", "8KB",
              p.stripe_unit_bytes);
  std::printf("%-48s %15s %15.3g\n", "disk size Vdisk, bytes", "2GB", p.disk_bytes);
  std::printf("%-48s %15s %15d\n", "array width (N+1 disks)", "5", p.TotalDisks());

  PrintHeader("Section 3 worked numbers (paper vs model)");
  std::printf("%-48s %15s %15s\n", "quantity", "paper", "this repo");
  PrintRule();
  std::printf("%-48s %15s %15s\n", "eq (1) RAID 5 MTTDL, hours", "~4e9",
              Hours(MttdlRaidCatastrophicHours(p)).c_str());
  std::printf("%-48s %15s %15.2f\n", "eq (3) RAID 5 catastrophic MDLR, bytes/h", "~0.8",
              MdlrRaidCatastrophicBph(p));
  std::printf("%-48s %15s %15.2f\n", "support MDLR @ 2M h, KB/h", "4.0",
              MdlrSupportBph(p) / 1024.0);
  AvailabilityParams gibson = p;
  gibson.mttdl_support_hours = 150e3;
  std::printf("%-48s %15s %15.1f\n", "support MDLR @ 150k h [Gibson93], KB/h", "53",
              MdlrSupportBph(gibson) / 1024.0);
  std::printf("%-48s %15s %15.1f\n", "PrestoServe NVRAM MDLR (15k h, 1MB), bytes/h",
              "67", MdlrNvramBph(15e3, 1 << 20));
  std::printf("%-48s %15s %15s\n", "power MTTDL (4300 h mains, 10% writes), hours",
              "43k", Hours(MttdlPowerHours(4300, 0.10)).c_str());
  std::printf("%-48s %15s %15s\n", "power MTTDL (200k h UPS, 10% writes), hours",
              "2M", Hours(MttdlPowerHours(200e3, 0.10)).c_str());
  std::printf("%-48s %15s %15.1f\n",
              "loss probability @ 1M h MTTDL over 3y (26k h), %", "2.6",
              LossProbability(1e6, 26e3) * 100.0);
  std::printf("%-48s %15s %15s\n", "single-disk MTTDL (RAID 0, 5 disks), hours",
              "200k", Hours(MttdlRaid0Hours(p)).c_str());
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
