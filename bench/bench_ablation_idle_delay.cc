// Ablation: the idleness-detector delay.
//
// The paper's baseline AFRAID starts parity updates "once the array had been
// completely idle for 100ms" [Golding95]. A shorter delay recovers
// redundancy sooner but risks colliding with the next burst; a longer delay
// wastes idle time. This sweep quantifies that design choice.

#include <cstdio>

#include "bench/bench_common.h"

namespace afraid {
namespace {

int Run() {
  ArrayConfig cfg = PaperArrayConfig();
  const uint64_t max_requests = BenchRequests();
  const SimDuration max_duration = BenchDuration();
  WorkloadParams wl;
  FindWorkload("cello-news", &wl);  // Bursty but busy: the delay matters.

  PrintHeader("Ablation: idle-detector delay (workload cello-news, baseline AFRAID)");
  std::printf("%-12s %12s %10s %12s %14s\n", "idle delay", "mean ms", "Tunprot",
              "lag (KB)", "rebuild I/Os");
  PrintRule();
  BenchReportSink sink("ablation_idle_delay");
  for (int64_t delay_ms : {10, 50, 100, 250, 1000, 5000}) {
    cfg.idle_delay = Milliseconds(delay_ms);
    const SimReport rep = Experiment(cfg).Policy(PolicySpec::AfraidBaseline())
        .Workload(wl, max_requests, max_duration).Run();
    sink.Add("idle_delay=" + std::to_string(delay_ms) + "ms", rep);
    std::printf("%9lldms %12.2f %10.4f %12.1f %14llu\n",
                static_cast<long long>(delay_ms), rep.mean_io_ms,
                rep.t_unprot_fraction, rep.mean_parity_lag_bytes / 1024.0,
                static_cast<unsigned long long>(rep.disk_ops_rebuild));
  }
  PrintRule();
  std::printf("expected: short delays cut the exposure window (lower Tunprot) at a\n"
              "small latency cost from rebuild/burst collisions; very long delays\n"
              "leave data unprotected for much longer. The paper used 100 ms.\n");
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
