// Reproduces Figure 4 of the AFRAID paper: mean I/O time per trace as the
// parity-update policy sweeps from RAID 5 to pure AFRAID.
//
// Paper headline: "highly bursty workloads such as snake, hplajw, and
// cello-usr show relatively little change in mean I/O time as availability
// is increased ... In workloads with fewer idle periods and more write
// traffic, such as AS400-1 and ATT, there is a smooth decline in mean I/O
// time as MTTDL is increased across the entire range."

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/sweep.h"

namespace afraid {
namespace {

int Run() {
  const ArrayConfig cfg = PaperArrayConfig();
  const uint64_t max_requests = BenchRequests();
  const SimDuration max_duration = BenchDuration();

  std::vector<PolicySpec> sweep = {
      PolicySpec::Raid5(),          PolicySpec::MttdlTarget(3.0e6),
      PolicySpec::MttdlTarget(2.0e6), PolicySpec::MttdlTarget(1.0e6),
      PolicySpec::MttdlTarget(0.5e6), PolicySpec::MttdlTarget(0.25e6),
      PolicySpec::AfraidBaseline(),
  };

  // Independent (workload x policy) cells, fanned out over a thread pool
  // (AFRAID_BENCH_THREADS) and printed in grid order: bit-identical to the
  // serial sweep at any thread count.
  const std::vector<WorkloadParams> workloads = PaperWorkloads();
  const int64_t per_row = static_cast<int64_t>(sweep.size());
  const std::vector<SimReport> reports = ParallelSweep(
      static_cast<int64_t>(workloads.size()) * per_row, [&](int64_t cell) {
        return Experiment(cfg).Policy(sweep[static_cast<size_t>(cell % per_row)])
            .Workload(workloads[static_cast<size_t>(cell / per_row)], max_requests,
                      max_duration)
            .Run();
      });
  BenchReportSink sink("fig4_policy_sweep");
  for (const SimReport& rep : reports) {
    sink.Add(rep.workload + "/" + rep.policy, rep);
  }

  PrintHeader("Figure 4: mean I/O time (ms) per workload across policies");
  std::printf("%-12s", "workload");
  for (const PolicySpec& spec : sweep) {
    std::printf(" %12s", spec.Label().c_str());
  }
  std::printf("\n");
  PrintRule(104);
  for (size_t w = 0; w < workloads.size(); ++w) {
    std::printf("%-12s", workloads[w].name.c_str());
    for (size_t p = 0; p < sweep.size(); ++p) {
      std::printf(" %12.2f", reports[w * sweep.size() + p].mean_io_ms);
    }
    std::printf("\n");
  }
  PrintRule(104);
  std::printf("paper: bursty traces (hplajw, snake, cello-usr) stay nearly flat; "
              "heavy traces (ATT, AS400-1)\ndecline smoothly from RAID 5-like to "
              "RAID 0-like as the MTTDL target is relaxed.\n");
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
