// Section 2 comparison: AFRAID vs parity logging [Stodolsky93] vs RAID 5.
//
// Paper: "A parity-logging array defers the parity-update cost to a later
// time ... thereby preserving full redundancy all the time. By comparison,
// AFRAID avoids a pre-read of the old data in the critical path for writes
// ... The parity logging scheme applies a batch of parity updates at a time,
// which can interfere with foreground I/O requests ... There is no parity
// log to fill up in AFRAID -- all that happens is that the data becomes less
// well protected."

#include <cstdio>

#include "array/host_driver.h"
#include "bench/bench_common.h"
#include "core/parity_log_controller.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

double RunParityLog(const Trace& trace, const ArrayConfig& cfg,
                    const ParityLogConfig& lc, uint64_t* replays) {
  Simulator sim;
  ParityLogController ctl(&sim, cfg, lc);
  HostDriver driver(&sim, &ctl, cfg.MaxActive());
  size_t next = 0;
  std::function<void()> pump = [&] {
    if (next >= trace.records.size()) {
      return;
    }
    const TraceRecord& r = trace.records[next++];
    driver.Submit(r.offset, r.size, r.is_write);
    if (next < trace.records.size()) {
      sim.At(std::max(trace.records[next].time, sim.Now()), pump);
    }
  };
  if (!trace.records.empty()) {
    sim.At(trace.records[0].time, pump);
  }
  sim.RunToEnd();
  *replays = ctl.LogReplays();
  return driver.AllLatencies().Mean();
}

int Run() {
  ArrayConfig cfg = PaperArrayConfig();
  ParityLogConfig lc;  // 256 KB NVRAM buffer, 8 MB log, as declared defaults.
  const uint64_t max_requests = BenchRequests() / 2;
  const SimDuration max_duration = BenchDuration();

  PrintHeader("Section 2: AFRAID vs parity logging vs RAID 5 (mean I/O ms)");
  std::printf("%-12s %10s %12s %10s %10s | %8s %10s\n", "workload", "RAID5",
              "ParityLog", "AFRAID", "RAID0", "replays", "AFR Tunp");
  PrintRule();
  BenchReportSink sink("related_parity_logging");
  for (const char* name : {"cello-usr", "cello-news", "ATT"}) {
    WorkloadParams wl;
    FindWorkload(name, &wl);
    // Generate against the parity-log capacity (slightly smaller than the
    // others': the log region), so all schemes replay identical requests.
    {
      Simulator probe_sim;
      ParityLogController probe(&probe_sim, cfg, lc);
      wl.address_space_bytes = probe.DataCapacityBytes();
    }
    const Trace trace = GenerateWorkload(wl, max_requests, max_duration);

    const SimReport r5 = Experiment(cfg).Policy(PolicySpec::Raid5()).Trace(trace).Run();
    const SimReport af = Experiment(cfg).Policy(PolicySpec::AfraidBaseline()).Trace(trace)
        .Run();
    const SimReport r0 = Experiment(cfg).Policy(PolicySpec::Raid0()).Trace(trace).Run();
    sink.Add(std::string(name) + "/" + r5.policy, r5);
    sink.Add(std::string(name) + "/" + af.policy, af);
    sink.Add(std::string(name) + "/" + r0.policy, r0);
    uint64_t replays = 0;
    const double pl_ms = RunParityLog(trace, cfg, lc, &replays);
    std::printf("%-12s %10.2f %12.2f %10.2f %10.2f | %8llu %10.4f\n", name,
                r5.mean_io_ms, pl_ms, af.mean_io_ms, r0.mean_io_ms,
                static_cast<unsigned long long>(replays), af.t_unprot_fraction);
  }
  PrintRule();
  std::printf("expected: parity logging keeps full redundancy (Tunprot = 0) and its\n"
              "halved write I/O count beats RAID 5 under sustained pressure (ATT),\n"
              "but it never approaches AFRAID: every write still pays the old-data\n"
              "pre-read, and log replays interfere with bursts (cello-news).\n");
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
