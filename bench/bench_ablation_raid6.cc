// Ablation: the RAID 6 + AFRAID extension (Section 5).
//
// "A RAID 6 array keeps two parity blocks for each stripe, and thus pays an
// even higher penalty for doing small updates than does RAID 5. The AFRAID
// technique could be combined with the RAID 6 parity scheme to delay either
// or both parity-block updates." This bench measures the three operating
// points on a bursty workload: classic RAID 6 (synchronous P+Q), defer-Q
// (RAID 5-cost writes, dual tolerance after idle rebuild), defer-both (pure
// AFRAID writes).

#include <cstdio>

#include "array/host_driver.h"
#include "bench/bench_common.h"
#include "core/raid6_controller.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

struct Row {
  double mean_ms = 0.0;
  uint64_t disk_ops = 0;
  double t_q_stale = 0.0;
  double t_both_stale = 0.0;
};

Row RunMode(Raid6Mode mode, const Trace& trace) {
  ArrayConfig cfg = PaperArrayConfig();
  cfg.num_disks = 6;  // 4 data + P + Q.
  Simulator sim;
  Raid6Controller ctl(&sim, cfg, mode);
  HostDriver driver(&sim, &ctl, cfg.MaxActive());
  size_t next = 0;
  std::function<void()> pump = [&] {
    if (next >= trace.records.size()) {
      return;
    }
    const TraceRecord& r = trace.records[next++];
    driver.Submit(r.offset, r.size, r.is_write);
    if (next < trace.records.size()) {
      sim.At(std::max(trace.records[next].time, sim.Now()), pump);
    }
  };
  if (!trace.records.empty()) {
    sim.At(trace.records[0].time, pump);
  }
  sim.RunToEnd();
  Row row;
  row.mean_ms = driver.AllLatencies().Mean();
  row.disk_ops = ctl.DiskOpsIssued();
  row.t_q_stale = ctl.TQStaleFraction();
  row.t_both_stale = ctl.TBothStaleFraction();
  return row;
}

int Run() {
  WorkloadParams wl;
  FindWorkload("cello-usr", &wl);
  ArrayConfig cfg = PaperArrayConfig();
  cfg.num_disks = 6;
  const StripeLayout layout(cfg.num_disks, cfg.stripe_unit_bytes,
                            DiskGeometry(cfg.disk_spec.zones, cfg.disk_spec.heads,
                                         cfg.disk_spec.sector_bytes)
                                .CapacityBytes(),
                            2);
  wl.address_space_bytes = layout.data_capacity_bytes();
  const Trace trace = GenerateWorkload(wl, BenchRequests() / 2, BenchDuration());

  PrintHeader("Ablation: RAID 6 + AFRAID (6 disks = 4 data + P + Q, cello-usr)");
  std::printf("%-14s %12s %12s %14s %14s\n", "mode", "mean ms", "disk I/Os",
              "T(P-only)", "T(exposed)");
  PrintRule();
  for (Raid6Mode mode : {Raid6Mode::kSynchronous, Raid6Mode::kDeferQ,
                         Raid6Mode::kDeferBoth}) {
    const Row row = RunMode(mode, trace);
    std::printf("%-14s %12.2f %12llu %14.4f %14.4f\n", Raid6ModeName(mode).c_str(),
                row.mean_ms, static_cast<unsigned long long>(row.disk_ops),
                row.t_q_stale, row.t_both_stale);
  }
  PrintRule();
  std::printf("expected: defer-Q removes a third of the small-write I/Os while\n"
              "keeping single-failure tolerance at all times; defer-both reaches\n"
              "AFRAID cost with a bounded window of full exposure.\n");
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
