// Reproduces Table 2 / Figure 2 of the AFRAID paper: mean I/O time of
// RAID 5, baseline AFRAID and RAID 0 across the nine workloads, plus the
// geometric-mean speedups relative to RAID 5.
//
// Paper headline: "The performance of the baseline AFRAID was a geometric
// mean of 4.1 times that of RAID 5 across our test workloads. By comparison,
// RAID 0 performance was 4.2 times that of RAID 5."

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "stats/summary.h"

namespace afraid {
namespace {

int Run() {
  const ArrayConfig cfg = PaperArrayConfig();
  const uint64_t max_requests = BenchRequests();
  const SimDuration max_duration = BenchDuration();

  PrintHeader(
      "Table 2 / Figure 2: mean I/O time (ms) -- RAID 5 vs AFRAID vs RAID 0");
  std::printf("%-12s %10s %10s %10s | %8s %8s | %6s\n", "workload", "RAID5", "AFRAID",
              "RAID0", "A/R5", "R0/R5", "reqs");
  PrintRule();

  std::vector<double> afraid_speedups;
  std::vector<double> raid0_speedups;
  for (const WorkloadParams& wl : PaperWorkloads()) {
    const SimReport r5 =
        RunWorkload(cfg, PolicySpec::Raid5(), wl, max_requests, max_duration);
    const SimReport af =
        RunWorkload(cfg, PolicySpec::AfraidBaseline(), wl, max_requests, max_duration);
    const SimReport r0 =
        RunWorkload(cfg, PolicySpec::Raid0(), wl, max_requests, max_duration);
    const double a_speedup = r5.mean_io_ms / af.mean_io_ms;
    const double z_speedup = r5.mean_io_ms / r0.mean_io_ms;
    afraid_speedups.push_back(a_speedup);
    raid0_speedups.push_back(z_speedup);
    std::printf("%-12s %10.2f %10.2f %10.2f | %8.2f %8.2f | %6llu\n", wl.name.c_str(),
                r5.mean_io_ms, af.mean_io_ms, r0.mean_io_ms, a_speedup, z_speedup,
                static_cast<unsigned long long>(r5.requests));
  }
  PrintRule();
  std::printf("%-12s %10s %10s %10s | %8.2f %8.2f |\n", "geo-mean", "", "", "",
              GeometricMean(afraid_speedups), GeometricMean(raid0_speedups));
  std::printf("paper:       AFRAID = 4.1x RAID 5 (geometric mean); RAID 0 = 4.2x\n");
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
