// Reproduces Table 2 / Figure 2 of the AFRAID paper: mean I/O time of
// RAID 5, baseline AFRAID and RAID 0 across the nine workloads, plus the
// geometric-mean speedups relative to RAID 5.
//
// Paper headline: "The performance of the baseline AFRAID was a geometric
// mean of 4.1 times that of RAID 5 across our test workloads. By comparison,
// RAID 0 performance was 4.2 times that of RAID 5."

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/sweep.h"
#include "stats/summary.h"

namespace afraid {
namespace {

int Run() {
  const ArrayConfig cfg = PaperArrayConfig();
  const uint64_t max_requests = BenchRequests();
  const SimDuration max_duration = BenchDuration();

  // Every (workload, policy) cell is independent, so the grid fans out over
  // a thread pool (AFRAID_BENCH_THREADS) and is reduced in row order below.
  // Each workload keeps its own fixed seed -- the three policies of a row
  // must replay the identical trace -- so rows match the serial harness
  // bit for bit at any thread count.
  const std::vector<WorkloadParams> workloads = PaperWorkloads();
  const std::vector<PolicySpec> policies = {
      PolicySpec::Raid5(), PolicySpec::AfraidBaseline(), PolicySpec::Raid0()};
  const int64_t per_row = static_cast<int64_t>(policies.size());
  const std::vector<SimReport> reports = ParallelSweep(
      static_cast<int64_t>(workloads.size()) * per_row, [&](int64_t cell) {
        return Experiment(cfg).Policy(policies[static_cast<size_t>(cell % per_row)])
            .Workload(workloads[static_cast<size_t>(cell / per_row)], max_requests,
                      max_duration)
            .Run();
      });

  BenchReportSink sink("table2_performance");
  for (const SimReport& rep : reports) {
    sink.Add(rep.workload + "/" + rep.policy, rep);
  }

  PrintHeader(
      "Table 2 / Figure 2: mean I/O time (ms) -- RAID 5 vs AFRAID vs RAID 0");
  std::printf("%-12s %10s %10s %10s | %8s %8s | %6s\n", "workload", "RAID5", "AFRAID",
              "RAID0", "A/R5", "R0/R5", "reqs");
  PrintRule();

  std::vector<double> afraid_speedups;
  std::vector<double> raid0_speedups;
  for (size_t w = 0; w < workloads.size(); ++w) {
    const SimReport& r5 = reports[w * 3];
    const SimReport& af = reports[w * 3 + 1];
    const SimReport& r0 = reports[w * 3 + 2];
    const double a_speedup = r5.mean_io_ms / af.mean_io_ms;
    const double z_speedup = r5.mean_io_ms / r0.mean_io_ms;
    afraid_speedups.push_back(a_speedup);
    raid0_speedups.push_back(z_speedup);
    std::printf("%-12s %10.2f %10.2f %10.2f | %8.2f %8.2f | %6llu\n",
                workloads[w].name.c_str(), r5.mean_io_ms, af.mean_io_ms,
                r0.mean_io_ms, a_speedup, z_speedup,
                static_cast<unsigned long long>(r5.requests));
  }
  PrintRule();
  std::printf("%-12s %10s %10s %10s | %8.2f %8.2f |\n", "geo-mean", "", "", "",
              GeometricMean(afraid_speedups), GeometricMean(raid0_speedups));
  std::printf("paper:       AFRAID = 4.1x RAID 5 (geometric mean); RAID 0 = 4.2x\n");
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
