// Reproduces Table 3 of the AFRAID paper: availability of the baseline
// AFRAID policy under each workload -- the measured parity-lag statistics
// and the availability model (Section 3) evaluated on them.
//
// Paper headlines:
//   * "even the baseline AFRAID design is uniformly better than an
//     unprotected disk array. It delivers a geometric mean MTTDL 4.3 times
//     better than RAID 0, and is only a factor of 1.8 worse than pure
//     RAID 5" (overall MTTDLs are capped by the 2M-hour support hardware);
//   * "with the exception of the heavy load from the ATT trace,
//     MDLR_unprotected contributes less than one byte per hour".

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "stats/summary.h"

namespace afraid {
namespace {

int Run() {
  const ArrayConfig cfg = PaperArrayConfig();
  const AvailabilityParams ap = AvailabilityParamsFor(cfg);
  const uint64_t max_requests = BenchRequests();
  const SimDuration max_duration = BenchDuration();

  PrintHeader("Table 3: availability of baseline AFRAID per workload");
  std::printf("%-12s %10s %9s %12s %12s %12s %12s\n", "workload", "lag(KB)", "Tunprot",
              "MTTDLdisk/h", "MTTDLall/h", "MDLRunp b/h", "MDLRall b/h");
  PrintRule();

  std::vector<double> vs_raid0;
  std::vector<double> vs_raid5;
  const double raid5_overall =
      CombineMttdlHours({MttdlRaidCatastrophicHours(ap), ap.mttdl_support_hours});
  const double raid0_overall =
      CombineMttdlHours({MttdlRaid0Hours(ap), ap.mttdl_support_hours});

  BenchReportSink sink("table3_availability");
  for (const WorkloadParams& wl : PaperWorkloads()) {
    const SimReport af =
        Experiment(cfg).Policy(PolicySpec::AfraidBaseline())
            .Workload(wl, max_requests, max_duration).Run();
    sink.Add(wl.name, af);
    const double mdlr_unprot = MdlrUnprotectedBph(ap, af.mean_parity_lag_bytes);
    std::printf("%-12s %10.1f %9.4f %12s %12s %12.3f %12.1f\n", wl.name.c_str(),
                af.mean_parity_lag_bytes / 1024.0, af.t_unprot_fraction,
                Hours(af.avail.mttdl_disk_hours).c_str(),
                Hours(af.avail.mttdl_overall_hours).c_str(), mdlr_unprot,
                af.avail.mdlr_overall_bph);
    vs_raid0.push_back(af.avail.mttdl_overall_hours / raid0_overall);
    vs_raid5.push_back(raid5_overall / af.avail.mttdl_overall_hours);
  }
  PrintRule();
  std::printf("reference: RAID 5 overall MTTDL = %s h; RAID 0 overall = %s h\n",
              Hours(raid5_overall).c_str(), Hours(raid0_overall).c_str());
  std::printf("geo-mean: AFRAID MTTDL = %.2fx RAID 0 (paper: 4.3x); "
              "RAID 5 = %.2fx AFRAID (paper: 1.8x)\n",
              GeometricMean(vs_raid0), GeometricMean(vs_raid5));
  std::printf("paper: MDLR_unprotected < 1 byte/hour except ATT; "
              "support components dominate overall MDLR\n");
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
