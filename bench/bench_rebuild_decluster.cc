// Declustering payoff: reconstruction window, client tail latency during the
// rebuild, and MTTDL -- left-symmetric vs declustered parity placement at
// equal user capacity.
//
// For each array width the harness runs the SAME client workload (sized to
// the smaller of the two layouts' user capacities, so both serve identical
// byte spans) against a live RAID 5 array, fails a disk mid-workload, hot-
// swaps it immediately, and runs the reconstruction sweep to completion with
// client requests still arriving. Measured per run:
//
//   * rebuild window -- FailDisk to reconstruction-complete, in array time;
//   * client p99 during the window -- the tail clients see while survivor
//     disks carry both their reads and the rebuild's;
//   * MTTDL -- the Monte-Carlo fault campaign (faultsim/) on the same
//     geometry, with the hot-spare repair window scaled by the measured
//     reconstruction ratio (spare pools make repair reconstruction-bound,
//     not logistics-bound; the left-symmetric window keeps the stock
//     48-hour MTTR so its row matches the availability model's baseline).
//
// A declustered width-k stripe rebuilds one unit from k-1 survivor reads
// instead of C-1 and spreads them evenly over all C-1 survivors (2-design
// balance), so the window shrinks toward the declustering ratio
// alpha = (k-1)/(C-1) and the per-survivor interference drops with it.
//
// Output: a table per width plus BENCH_rebuild.json (override the path with
// AFRAID_REBUILD_JSON=path, suppress with AFRAID_REBUILD_JSON=""). Sizing
// overrides: AFRAID_REBUILD_REQUESTS, AFRAID_REBUILD_LIFETIMES.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "array/decluster.h"
#include "array/host_driver.h"
#include "array/scheme.h"
#include "bench/bench_common.h"
#include "core/scheme_registry.h"
#include "faultsim/report.h"
#include "faultsim/runner.h"
#include "obs/json.h"
#include "sim/simulator.h"
#include "stats/sample_set.h"

namespace afraid {
namespace {

constexpr int32_t kDeclusterWidth = 4;
constexpr const char* kScheme = "afraid";  // Raid5 policy: immediate parity.

int64_t EnvInt(const char* name, int64_t fallback) {
  if (const char* env = std::getenv(name)) {
    return std::strtoll(env, nullptr, 10);
  }
  return fallback;
}

ArrayConfig RebuildArrayConfig(int32_t num_disks, LayoutKind layout) {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();  // Sweeps finish in array-seconds.
  cfg.num_disks = num_disks;
  cfg.stripe_unit_bytes = 8192;
  cfg.layout = layout;
  cfg.decluster_width = kDeclusterWidth;
  return SchemeRegistry::Normalize(kScheme, cfg);
}

// Steady open load: short bursts, short idles, no long quiet periods -- the
// rebuild window must contain enough client completions for a stable p99.
WorkloadParams RebuildWorkload(int64_t address_space_bytes) {
  WorkloadParams wl;
  wl.name = "rebuild-load";
  wl.seed = 1996;
  wl.address_space_bytes = address_space_bytes;
  wl.mean_burst_requests = 8.0;
  wl.mean_idle_ms = 60.0;
  wl.idle_pareto_alpha = 1.5;
  wl.max_idle_ms = 500.0;
  wl.intra_burst_gap_ms = 15.0;
  wl.write_fraction = 0.5;
  wl.size_dist = {{8192, 3.0}, {24576, 1.0}};
  wl.align_bytes = 8192;
  return wl;
}

struct RebuildResult {
  int64_t user_capacity_bytes = 0;
  double window_s = 0.0;           // FailDisk -> reconstruction complete.
  double p99_during_ms = 0.0;      // Client tail inside the window.
  double mean_during_ms = 0.0;
  uint64_t completed_during = 0;   // Client requests finished in the window.
  uint64_t stripes_rebuilt = 0;
};

// One live run: replay `trace` open-loop, fail disk 0 at `fail_at`, replace
// it immediately (hot spare) and reconstruct with the load still running.
RebuildResult RunRebuild(const ArrayConfig& cfg, const Trace& trace,
                         SimTime fail_at) {
  Simulator sim;
  SchemeContext ctx{&sim, cfg, PolicySpec::Raid5(), AvailabilityParamsFor(cfg),
                    {}};
  std::unique_ptr<ArrayScheme> ctl = SchemeRegistry::Create(kScheme, ctx);
  HostDriver driver(&sim, ctl.get(), /*max_active=*/8);
  driver.ReserveLatencySamples(trace.Size());

  // Open-loop arrivals, one pending event at a time.
  size_t next = 0;
  std::function<void()> feed = [&] {
    while (next < trace.Size() && trace.records[next].time <= sim.Now()) {
      const TraceRecord& r = trace.records[next++];
      driver.Submit(r.offset, r.size, r.is_write);
    }
    if (next < trace.Size()) {
      sim.At(trace.records[next].time, [&] { feed(); });
    }
  };
  sim.At(trace.records.front().time, [&] { feed(); });

  bool in_rebuild = false;
  SampleSet during_ms;
  driver.SetCompletionListener([&](uint64_t, double ms, bool) {
    if (in_rebuild) {
      during_ms.Add(ms);
    }
  });

  RebuildResult res;
  res.user_capacity_bytes = ctl->layout().data_capacity_bytes();
  sim.RunUntil(fail_at);
  const SimTime started = sim.Now();
  SimTime finished = started;
  if (!ctl->FailDisk(0) || !ctl->ReplaceDisk(0)) {
    std::fprintf(stderr, "fail/replace refused\n");
    std::exit(1);
  }
  in_rebuild = true;
  ctl->StartReconstruction([&] {
    finished = sim.Now();
    in_rebuild = false;
  });
  sim.RunToEnd();

  res.window_s = ToSeconds(finished - started);
  res.completed_during = during_ms.Count();
  res.p99_during_ms = during_ms.Percentile(0.99);
  res.mean_during_ms = during_ms.Mean();
  res.stripes_rebuilt = ctl->Stats().stripes_rebuilt;
  return res;
}

// Empirical MTTDL on the same geometry. `mttr_scale` shrinks the hot-spare
// repair window by the measured reconstruction ratio (1.0 = the stock MTTR).
ConfidenceInterval CampaignMttdl(const ArrayConfig& cfg, double mttr_scale,
                                 int32_t lifetimes) {
  CampaignConfig c;
  c.array = cfg;
  c.scheme = kScheme;
  c.policy = PolicySpec::Raid5();
  c.workload = PaperWorkloads().front();
  c.faults = FaultModelParams::From(AvailabilityParamsFor(cfg),
                                    SchemeFor(c.policy));
  c.faults.mttr_hours *= mttr_scale;
  c.lifetimes = lifetimes;
  c.base_seed = 1996;
  c.max_lifetime_hours = 1e8;
  return RunCampaign(c, /*num_threads=*/0).mttdl_hours;
}

struct Row {
  int32_t num_disks = 0;
  const char* layout = nullptr;
  int32_t width = 0;
  RebuildResult r;
  ConfidenceInterval mttdl;
};

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").Value("rebuild_decluster");
  w.Key("scheme").Value(kScheme);
  w.Key("rows").BeginArray();
  for (const Row& row : rows) {
    w.BeginObject();
    w.Key("num_disks").Value(row.num_disks);
    w.Key("layout").Value(row.layout);
    w.Key("stripe_width").Value(row.width);
    w.Key("user_capacity_bytes").Value(row.r.user_capacity_bytes);
    w.Key("rebuild_window_s").Value(row.r.window_s);
    w.Key("client_p99_during_ms").Value(row.r.p99_during_ms);
    w.Key("client_mean_during_ms").Value(row.r.mean_during_ms);
    w.Key("completed_during_rebuild").Value(row.r.completed_during);
    w.Key("stripes_rebuilt").Value(row.r.stripes_rebuilt);
    w.Key("mttdl_hours").Value(row.mttdl.point);
    w.Key("mttdl_hours_lo").Value(row.mttdl.lo);
    w.Key("mttdl_hours_hi").Value(row.mttdl.hi);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  if (!WriteTextFile(path, std::move(w).Take() + "\n")) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", path.c_str());
}

int Run() {
  const auto max_requests =
      static_cast<uint64_t>(EnvInt("AFRAID_REBUILD_REQUESTS", 6000));
  const auto lifetimes =
      static_cast<int32_t>(EnvInt("AFRAID_REBUILD_LIFETIMES", 400));
  const std::vector<int32_t> widths = {9, 13};

  PrintHeader("Rebuild declustering: window, client tail and MTTDL vs layout");
  std::printf("scheme %s (immediate parity), decluster width %d, fail at 3 s "
              "mid-workload, %llu requests, %d MC lifetimes\n\n",
              kScheme, kDeclusterWidth,
              static_cast<unsigned long long>(max_requests), lifetimes);
  std::printf("%-6s %-15s %8s %10s %11s %11s %9s %14s\n", "disks", "layout",
              "cap(MB)", "window(s)", "p99dur(ms)", "meandur(ms)", "reqs/win",
              "MTTDL(h)");
  PrintRule();

  std::vector<Row> rows;
  bool all_better = true;
  for (const int32_t nd : widths) {
    const ArrayConfig stripe_cfg =
        RebuildArrayConfig(nd, LayoutKind::kLeftSymmetric);
    const ArrayConfig decl_cfg =
        RebuildArrayConfig(nd, LayoutKind::kDeclustered);
    // Equal user capacity: both runs serve the smaller of the two layouts'
    // spans (declustering pays parity overhead 1/k instead of 1/C), so the
    // client load and working set are identical byte-for-byte.
    const int64_t span = std::min(
        SchemeRegistry::DataCapacityBytes(kScheme, stripe_cfg),
        SchemeRegistry::DataCapacityBytes(kScheme, decl_cfg));
    const Trace trace =
        GenerateWorkload(RebuildWorkload(span), max_requests, Minutes(30));

    const SimTime fail_at = Seconds(3);
    Row stripe{nd, "left-symmetric", nd, RunRebuild(stripe_cfg, trace, fail_at),
               {}};
    Row decl{nd, "declustered", kDeclusterWidth,
             RunRebuild(decl_cfg, trace, fail_at), {}};
    stripe.mttdl = CampaignMttdl(stripe_cfg, 1.0, lifetimes);
    decl.mttdl = CampaignMttdl(
        decl_cfg, decl.r.window_s / stripe.r.window_s, lifetimes);

    for (const Row* row : {&stripe, &decl}) {
      std::printf("%-6d %-15s %8.1f %10.3f %11.2f %11.2f %9llu %14.3g\n",
                  row->num_disks, row->layout,
                  row->r.user_capacity_bytes / 1e6, row->r.window_s,
                  row->r.p99_during_ms, row->r.mean_during_ms,
                  static_cast<unsigned long long>(row->r.completed_during),
                  row->mttdl.point);
    }
    const double alpha =
        static_cast<double>(kDeclusterWidth - 1) / (nd - 1);
    std::printf("       -> window %.2fx (alpha %.2f), p99 %.2fx, "
                "MTTDL %.2fx\n",
                decl.r.window_s / stripe.r.window_s, alpha,
                decl.r.p99_during_ms / stripe.r.p99_during_ms,
                decl.mttdl.point / stripe.mttdl.point);
    all_better = all_better && decl.r.window_s < stripe.r.window_s &&
                 decl.r.p99_during_ms < stripe.r.p99_during_ms;
    rows.push_back(stripe);
    rows.push_back(decl);
  }
  PrintRule();

  std::string out = "BENCH_rebuild.json";
  if (const char* env = std::getenv("AFRAID_REBUILD_JSON")) {
    out = env;
  }
  if (!out.empty()) {
    WriteJson(out, rows);
  }
  if (!all_better) {
    std::fprintf(stderr,
                 "FAIL: declustering did not beat left-symmetric on both "
                 "window and p99 at every width\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
