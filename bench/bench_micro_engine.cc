// Micro-benchmarks of the simulation engine itself (google-benchmark).
// These are not in the paper; they guard the cost of the hot paths that the
// table/figure harnesses exercise millions of times.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "array/content.h"
#include "array/decluster.h"
#include "array/host_driver.h"
#include "array/layout.h"
#include "array/nvram.h"
#include "core/afraid_controller.h"
#include "core/experiment.h"
#include "core/mirror_controller.h"
#include "core/policy.h"
#include "disk/disk_model.h"
#include "disk/seek_model.h"
#include "faultsim/campaign.h"
#include "fleet/tenants.h"
#include "fleet/volume_manager.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "trace/recorder.h"
#include "trace/trace.h"
#include "trace/workload_gen.h"

namespace afraid {
namespace {

void BM_EventQueueScheduleFire(benchmark::State& state) {
  EventQueue q;
  Rng rng(42);
  int64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.Schedule(rng.UniformInt(0, 1'000'000), [&sink] { ++sink; });
    }
    while (!q.Empty()) {
      q.PopNext().fn();
    }
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_EventQueueCancelChurn(benchmark::State& state) {
  // Timeout-manager pattern (idle detectors, request deadlines): most
  // scheduled events are cancelled and replaced before they ever fire, so the
  // queue spends its time on Schedule/Cancel pairs plus skimming dead entries.
  EventQueue q;
  Rng rng(42);
  int64_t sink = 0;
  std::vector<EventId> slots(64, kInvalidEventId);
  for (auto _ : state) {
    for (int i = 0; i < 512; ++i) {
      const size_t k = static_cast<size_t>(rng.UniformInt(0, 63));
      if (slots[k] != kInvalidEventId) {
        q.Cancel(slots[k]);
      }
      slots[k] = q.Schedule(rng.UniformInt(0, 1'000'000), [&sink] { ++sink; });
    }
    while (!q.Empty()) {
      q.PopNext().fn();
    }
    std::fill(slots.begin(), slots.end(), kInvalidEventId);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueCancelChurn);

void BM_ContentModelStripeWalk(benchmark::State& state) {
  // Whole-model consistency scan: what StripeConsistent/rebuild verification
  // does for every touched stripe -- an XorOfData per sector position.
  const int32_t n = 4, spu = 16;
  ContentModel m(n, 1, spu);
  for (int64_t s = 0; s < 256; ++s) {
    const int64_t stripe = s * 7;  // Sparse stripe keys, as real traces give.
    for (int32_t j = 0; j < n; ++j) {
      for (int32_t i = 0; i < spu; ++i) {
        m.SetData(stripe, j, i, ContentModel::MixTag(s * 64 + j * 16 + i, s));
      }
    }
    for (int32_t i = 0; i < spu; ++i) {
      m.SetParity(stripe, i, m.XorOfData(stripe, i));
    }
  }
  for (auto _ : state) {
    bool ok = true;
    for (int64_t s = 0; s < 256; ++s) {
      ok &= m.StripeConsistent(s * 7);
    }
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_ContentModelStripeWalk);

void BM_ContentModelSetGet(benchmark::State& state) {
  // Random single-sector updates and parity reads, the per-transfer pattern
  // the controllers issue from the write paths.
  ContentModel m(4, 1, 16);
  Rng rng(42);
  uint64_t x = 0;
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      const int64_t stripe = rng.UniformInt(0, 511);
      const int32_t j = static_cast<int32_t>(rng.UniformInt(0, 3));
      const int32_t sec = static_cast<int32_t>(rng.UniformInt(0, 15));
      m.SetData(stripe, j, sec, x + static_cast<uint64_t>(i) + 1);
      x ^= m.GetData(stripe, j, sec) ^ m.GetParity(stripe, sec);
    }
  }
  benchmark::DoNotOptimize(x);
}
BENCHMARK(BM_ContentModelSetGet);

void BM_DiskComputeService(benchmark::State& state) {
  Simulator sim;
  DiskModel disk(&sim, DiskSpec::HpC3325Like(), 0);
  Rng rng(42);
  const int64_t total = disk.TotalSectors();
  SimTime t = 0;
  int32_t cyl = 0;
  for (auto _ : state) {
    DiskOp op;
    op.lba = rng.UniformInt(0, total - 17);
    op.sectors = 16;
    op.is_write = rng.Bernoulli(0.5);
    int32_t end = 0;
    auto bd = disk.ComputeService(t, op, cyl, &end);
    benchmark::DoNotOptimize(bd);
    cyl = end;
    t += bd.Total();
  }
}
BENCHMARK(BM_DiskComputeService);

void BM_LayoutSplit(benchmark::State& state) {
  StripeLayout layout(5, 8192, 2'000'000'000, 1);
  Rng rng(42);
  const int64_t cap = layout.data_capacity_bytes();
  for (auto _ : state) {
    const int64_t off = rng.UniformInt(0, cap - 65537) & ~511LL;
    auto segs = layout.Split(off, 65536);
    benchmark::DoNotOptimize(segs);
  }
}
BENCHMARK(BM_LayoutSplit);

void BM_WorkloadGeneration(benchmark::State& state) {
  WorkloadParams p = PaperWorkloads()[0];
  p.address_space_bytes = 8LL << 30;
  for (auto _ : state) {
    p.seed++;
    Trace t = GenerateWorkload(p, 1000, Hours(24));
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_WorkloadGeneration);

// The marking-memory churn every client write performs: Mark on arrival,
// IsDirty probes from the write paths, Clear from the rebuilder. Clustered
// keys with re-marks, like a bursty trace.
void BM_NvramMarkClear(benchmark::State& state) {
  NvramBitmap bm(1 << 18);
  Rng rng(42);
  int64_t marked = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      const int64_t s = rng.UniformInt(0, (1 << 14) - 1) * 3;
      marked += bm.Mark(s) ? 1 : 0;
      benchmark::DoNotOptimize(bm.IsDirty(s + 1));
      if ((i & 3) == 0) {
        marked -= bm.Clear(s) ? 1 : 0;
      }
    }
  }
  benchmark::DoNotOptimize(marked);
}
BENCHMARK(BM_NvramMarkClear);

// The same workload against the ordered-set bookkeeping NvramBitmap used
// before the two-level bitmap, kept as an in-binary reference point.
void BM_NvramMarkClearSetRef(benchmark::State& state) {
  std::set<int64_t> dirty;
  Rng rng(42);
  int64_t marked = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      const int64_t s = rng.UniformInt(0, (1 << 14) - 1) * 3;
      marked += dirty.insert(s).second ? 1 : 0;
      benchmark::DoNotOptimize(dirty.count(s + 1));
      if ((i & 3) == 0) {
        marked -= dirty.erase(s) > 0 ? 1 : 0;
      }
    }
  }
  benchmark::DoNotOptimize(marked);
}
BENCHMARK(BM_NvramMarkClearSetRef);

// The rebuilder's ascending sweep: NextDirty from a moving cursor across a
// sparse dirty population, one full wrap per iteration.
void BM_NvramNextDirtySweep(benchmark::State& state) {
  NvramBitmap bm(1 << 18);
  Rng rng(42);
  for (int i = 0; i < 4096; ++i) {
    bm.Mark(rng.UniformInt(0, (1 << 18) - 1));
  }
  const int64_t n = bm.DirtyCount();
  for (auto _ : state) {
    int64_t cursor = 0;
    int64_t sum = 0;
    for (int64_t i = 0; i < n; ++i) {
      const int64_t k = bm.NextDirty(cursor);
      sum += k;
      cursor = k + 1;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_NvramNextDirtySweep);

// End-to-end client path: a burst of small writes through the host driver,
// AFRAID controller and disks, then the idle rebuild sweep that re-protects
// every marked stripe. This is the steady-state loop the table/figure
// harnesses run millions of times.
void BM_ControllerWritePath(benchmark::State& state) {
  ArrayConfig cfg;
  for (auto _ : state) {
    Simulator sim;
    AfraidController array(&sim, cfg, MakePolicy(PolicySpec::AfraidBaseline()),
                           AvailabilityParamsFor(cfg));
    HostDriver driver(&sim, &array, cfg.MaxActive());
    Rng rng(42);
    const int64_t units = array.DataCapacityBytes() / cfg.stripe_unit_bytes;
    for (int i = 0; i < 512; ++i) {
      const int64_t off = rng.UniformInt(0, units - 2) * cfg.stripe_unit_bytes;
      driver.Submit(off, 8192, /*is_write=*/true);
    }
    while (!driver.Drained()) {
      sim.Step();
    }
    sim.RunToEnd();
    benchmark::DoNotOptimize(driver.WriteLatencies().Mean());
  }
}
BENCHMARK(BM_ControllerWritePath);

// The mirrored scheme's replica-choice read dispatch: availability filter,
// queue-depth tiebreak, then a shortest-positioning-time estimate on both
// heads. Runs once per read segment, so it must stay cheap.
void BM_MirrorReadDispatch(benchmark::State& state) {
  ArrayConfig cfg;
  Simulator sim;
  MirrorController array(&sim, cfg);
  HostDriver driver(&sim, &array, cfg.MaxActive());
  // Put the array mid-burst so queue depths and head positions genuinely
  // differ between the two sides of each pair.
  Rng rng(7);
  const int64_t units = array.DataCapacityBytes() / cfg.stripe_unit_bytes;
  for (int i = 0; i < 64; ++i) {
    driver.Submit(rng.UniformInt(0, units - 2) * cfg.stripe_unit_bytes, 8192,
                  /*is_write=*/i % 3 == 0);
  }
  for (int i = 0; i < 200 && !driver.Drained(); ++i) {
    sim.Step();
  }
  const ArrayLayout& lay = array.layout();
  const int32_t spu =
      static_cast<int32_t>(cfg.stripe_unit_bytes / cfg.disk_spec.sector_bytes);
  DiskOp op;
  op.sectors = spu;
  int64_t stripe = 0;
  for (auto _ : state) {
    stripe = (stripe + 1) % lay.num_stripes();
    op.lba = stripe * spu;
    const int32_t primary = 2 * lay.DataDisk(stripe, 0);
    benchmark::DoNotOptimize(array.ChooseReplica(stripe, primary, op));
  }
}
BENCHMARK(BM_MirrorReadDispatch);

// --- Compiled replay pipeline: fast paths vs their in-tree references -------

std::string BenchTraceText() {
  WorkloadParams p = PaperWorkloads()[2];  // cello-usr.
  p.address_space_bytes = 8LL << 30;
  return SerializeTrace(GenerateWorkload(p, 20'000, Hours(24)));
}

// The hand-rolled scanner on a 20k-record serialized cello-usr workload.
void BM_TraceParse(benchmark::State& state) {
  const std::string text = BenchTraceText();
  Trace out;
  for (auto _ : state) {
    const TraceStatus st = ParseTraceText(text, &out);
    benchmark::DoNotOptimize(st.ok);
    benchmark::DoNotOptimize(out.records.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_TraceParse);

// The legacy getline-plus-istringstream parser on the same text.
void BM_TraceParseStreamRef(benchmark::State& state) {
  const std::string text = BenchTraceText();
  Trace out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseTraceStreamRef(text, &out));
    benchmark::DoNotOptimize(out.records.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_TraceParseStreamRef);

// Address -> (stripe, block, disk) mapping per segment, the layout math the
// request path runs: strength-reduced (FastDiv64) in StripeLayout...
void BM_LayoutMap(benchmark::State& state) {
  StripeLayout layout(5, 8192, 2'000'000'000, 1);
  Rng rng(42);
  const int64_t cap = layout.data_capacity_bytes();
  std::vector<int64_t> offsets(4096);
  for (int64_t& off : offsets) {
    off = rng.UniformInt(0, cap - 1);
  }
  for (auto _ : state) {
    int64_t sink = 0;
    for (const int64_t off : offsets) {
      const int64_t stripe = layout.StripeOfOffset(off);
      sink += layout.DataDisk(stripe, 0) + layout.ParityDisk(stripe);
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_LayoutMap);

// ...versus the same mapping with hardware div/mod. The divisors are member
// variables at runtime in StripeLayout (the compiler cannot fold them), so
// the reference makes its divisors opaque too -- otherwise the benchmark
// would measure the compiler's own constant strength reduction, which the
// pre-FastDiv64 layout never benefited from.
void BM_LayoutMapDivRef(benchmark::State& state) {
  int32_t nd = 5;
  int64_t unit = 8192;
  benchmark::DoNotOptimize(nd);
  benchmark::DoNotOptimize(unit);
  const int64_t stripe_bytes = unit * (nd - 1);
  Rng rng(42);
  const int64_t cap = (2'000'000'000 / unit) * stripe_bytes;
  std::vector<int64_t> offsets(4096);
  for (int64_t& off : offsets) {
    off = rng.UniformInt(0, cap - 1);
  }
  for (auto _ : state) {
    int64_t sink = 0;
    for (const int64_t off : offsets) {
      const int64_t stripe = off / stripe_bytes;
      const auto anchor = static_cast<int32_t>(nd - 1 - stripe % nd);
      sink += (anchor + 1) % nd + anchor;
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_LayoutMapDivRef);

// The same per-segment mapping through the compiled-block-design declustered
// layout (PG(2,3): 13 disks, width 4, lambda = 1). The CI gate pins this to
// within 1.5x of BM_LayoutMap from the same run: the design tables must keep
// the hot path at FastDiv64 + table loads, not reintroduce modular search.
void BM_LayoutMapDecl(benchmark::State& state) {
  DeclusteredLayout layout(13, 8192, 2'000'000'000, 1, 4);
  Rng rng(42);
  const int64_t cap = layout.data_capacity_bytes();
  std::vector<int64_t> offsets(4096);
  for (int64_t& off : offsets) {
    off = rng.UniformInt(0, cap - 1);
  }
  for (auto _ : state) {
    int64_t sink = 0;
    for (const int64_t off : offsets) {
      const int64_t stripe = layout.StripeOfOffset(off);
      sink += layout.DataDisk(stripe, 0) + layout.ParityDisk(stripe);
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_LayoutMapDecl);

// The reconstruction sweep's layout work for one failed disk: the membership
// skip over stripes the disk is not in, then survivor + target placement for
// the stripes it is. With width 4 of 13 the skip rejects ~69% of stripes off
// the bitmap alone; this holds the per-stripe cost of that filter visible.
void BM_DeclusterRebuildSweep(benchmark::State& state) {
  DeclusteredLayout layout(13, 8192, 2'000'000'000, 1, 4);
  const int64_t num = std::min<int64_t>(layout.num_stripes(), 65536);
  const int32_t failed = 0;
  for (auto _ : state) {
    int64_t sink = 0;
    for (int64_t stripe = 0; stripe < num; ++stripe) {
      if (!layout.StripeUsesDisk(stripe, failed)) {
        continue;
      }
      const BlockLoc pl = layout.ParityLocation(stripe);
      sink += pl.disk + pl.byte_offset;
      for (int32_t j = 0; j < layout.data_blocks_per_stripe(); ++j) {
        const BlockLoc dl = layout.DataLocation(stripe, j);
        sink += dl.disk + dl.byte_offset;
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * num);
}
BENCHMARK(BM_DeclusterRebuildSweep);

// Seek-time lookup across the tabulated distance range...
void BM_SeekTime(benchmark::State& state) {
  SeekModel m(DiskSpec::HpC3325Like().seek);
  m.PrecomputeTable(4314);
  Rng rng(42);
  std::vector<int64_t> dists(4096);
  for (int64_t& d : dists) {
    d = rng.UniformInt(-4314, 4314);
  }
  for (auto _ : state) {
    SimDuration sum = 0;
    for (const int64_t d : dists) {
      sum += m.SeekTime(d);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_SeekTime);

// ...versus evaluating the Ruemmler-Wilkes curve (sqrt and all) every time.
void BM_SeekTimeAnalyticRef(benchmark::State& state) {
  SeekModel m(DiskSpec::HpC3325Like().seek);
  Rng rng(42);
  std::vector<int64_t> dists(4096);
  for (int64_t& d : dists) {
    d = rng.UniformInt(-4314, 4314);
  }
  for (auto _ : state) {
    SimDuration sum = 0;
    for (const int64_t d : dists) {
      sum += m.AnalyticSeekTime(d);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_SeekTimeAnalyticRef);

// Whole-stripe parity recompute (rebuild/scrub inner loop): one batched
// XorOfDataAll sweep per stripe...
void BM_XorOfDataAll(benchmark::State& state) {
  const int32_t n = 4, spu = 16;
  ContentModel m(n, 1, spu);
  for (int64_t s = 0; s < 256; ++s) {
    for (int32_t j = 0; j < n; ++j) {
      for (int32_t i = 0; i < spu; ++i) {
        m.SetData(s * 7, j, i, ContentModel::MixTag(s * 64 + j * 16 + i, s));
      }
    }
  }
  std::vector<uint64_t> parity(spu);
  for (auto _ : state) {
    uint64_t sink = 0;
    for (int64_t s = 0; s < 256; ++s) {
      m.XorOfDataAll(s * 7, parity.data());
      sink ^= parity[0] ^ parity[spu - 1];
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_XorOfDataAll);

// ...versus the per-sector XorOfData calls it replaced (a hash probe per
// sector position instead of one per stripe).
void BM_XorOfDataPerSectorRef(benchmark::State& state) {
  const int32_t n = 4, spu = 16;
  ContentModel m(n, 1, spu);
  for (int64_t s = 0; s < 256; ++s) {
    for (int32_t j = 0; j < n; ++j) {
      for (int32_t i = 0; i < spu; ++i) {
        m.SetData(s * 7, j, i, ContentModel::MixTag(s * 64 + j * 16 + i, s));
      }
    }
  }
  std::vector<uint64_t> parity(spu);
  for (auto _ : state) {
    uint64_t sink = 0;
    for (int64_t s = 0; s < 256; ++s) {
      for (int32_t i = 0; i < spu; ++i) {
        parity[static_cast<size_t>(i)] = m.XorOfData(s * 7, i);
      }
      sink ^= parity[0] ^ parity[spu - 1];
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_XorOfDataPerSectorRef);

void BM_SimulatorTimerChurn(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    // A chain of self-rescheduling events, like an idleness detector.
    int64_t count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10'000) {
        sim.After(Milliseconds(1), tick);
      }
    };
    sim.After(0, tick);
    sim.RunToEnd();
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SimulatorTimerChurn);

// Fleet routing hot path: one logical offset -> (shard, local offset). Both
// policies compile to the same flat chunk table, so range and consistent
// hashing must cost the same here -- the whole point of prebuilding the map.
void BM_FleetRoute(benchmark::State& state) {
  const int64_t chunk = 1 << 20;
  const int64_t volume = chunk * 16 * 64;
  const ShardMap map = ShardMap::ConsistentHash(
      16, chunk, volume, /*shard_capacity_bytes=*/chunk * 80,
      /*vnodes_per_shard=*/64, /*seed=*/1);
  Rng rng(7);
  std::vector<int64_t> offsets(1024);
  for (int64_t& off : offsets) {
    off = rng.UniformInt(0, volume - 1);
  }
  int64_t sink = 0;
  for (auto _ : state) {
    for (const int64_t off : offsets) {
      const ShardTarget t = map.Route(off);
      sink += t.shard + t.local_offset;
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(offsets.size()));
}
BENCHMARK(BM_FleetRoute);

// A whole (tiny) fleet run per iteration: route, per-shard plan compile,
// eight independent simulations, and the split-latency join. Guards the
// end-to-end cost of the fleet layer the way BM_ControllerWritePath guards
// one array's write path.
void BM_FleetThroughput(benchmark::State& state) {
  FleetConfig cfg;
  cfg.array.disk_spec = DiskSpec::TinyTestDisk();
  cfg.array.num_disks = 4;
  cfg.num_shards = 8;
  cfg.chunk_bytes = 512 * 1024;
  FleetWorkloadParams wp;
  wp.seed = 11;
  wp.num_tenants = 64;
  wp.max_requests = 2000;
  wp.max_duration = Minutes(5);
  const FleetTrace trace =
      GenerateFleetWorkload(wp, VolumeManager(cfg).VolumeBytes());
  uint64_t served = 0;
  for (auto _ : state) {
    VolumeManager vm(cfg);
    VolumeManager::RunOptions opts;
    opts.threads = 1;  // Measure the work, not the thread pool.
    const FleetReport rep = vm.Run(trace, opts);
    served += rep.requests;
  }
  benchmark::DoNotOptimize(served);
  state.SetItemsProcessed(static_cast<int64_t>(served));
}
BENCHMARK(BM_FleetThroughput);

// --- Streaming vs monolithic end-to-end replay ------------------------------

// One pinned 10k-record cello-usr trace file, written once per process and
// replayed by both variants below so the comparison is apples-to-apples.
const std::string& ReplayBenchTracePath() {
  static const std::string* path = [] {
    WorkloadParams p = PaperWorkloads()[2];  // cello-usr.
    p.address_space_bytes = 8LL << 30;
    const Trace t = GenerateWorkload(p, 10'000, Hours(24));
    auto* s = new std::string("/tmp/afraid_bench_replay.trace");
    RecordTrace(t, *s);
    return s;
  }();
  return *path;
}

// End-to-end streamed replay (TraceChunkReader -> StreamingPlanCompiler ->
// bounded plan-slot ring) with 256 KiB chunks. The CI gate compares this
// against BM_ReplayThroughputMonolithic: the fixed-memory pipeline must stay
// within 0.9x of the load-everything path.
void BM_ReplayThroughput(benchmark::State& state) {
  const std::string& path = ReplayBenchTracePath();
  ArrayConfig cfg;
  uint64_t served = 0;
  for (auto _ : state) {
    Experiment exp(cfg);
    StreamOptions sopts;
    sopts.chunk_bytes = 256u << 10;
    exp.Policy(PolicySpec::AfraidBaseline()).TraceFile(path, sopts);
    const SimReport rep = exp.Run();
    benchmark::DoNotOptimize(rep.mean_io_ms);
    served += exp.stream_stats().records;
  }
  state.SetItemsProcessed(static_cast<int64_t>(served));
}
BENCHMARK(BM_ReplayThroughput);

// The monolithic reference: load and parse the whole file, compile one
// RequestPlan, replay. Same trace, same scheme, O(trace) memory.
void BM_ReplayThroughputMonolithic(benchmark::State& state) {
  const std::string& path = ReplayBenchTracePath();
  ArrayConfig cfg;
  uint64_t served = 0;
  for (auto _ : state) {
    Trace t;
    if (!LoadTraceFile(path, &t).ok) {
      state.SkipWithError("cannot load bench trace");
      break;
    }
    Experiment exp(cfg);
    exp.Policy(PolicySpec::AfraidBaseline()).Trace(t);
    const SimReport rep = exp.Run();
    benchmark::DoNotOptimize(rep.mean_io_ms);
    served += t.records.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(served));
}
BENCHMARK(BM_ReplayThroughputMonolithic);

// One full campaign lifetime (fault timeline + live array, reused arena):
// the unit of work RunCampaignLifetimes fans out, dominated by warmup of the
// array simulation. A short cap keeps the timeline cheap so the bench tracks
// the per-lifetime fixed costs the arena reuse is meant to amortize.
void BM_CampaignLifetime(benchmark::State& state) {
  CampaignConfig c;
  c.array.disk_spec = DiskSpec::TinyTestDisk();
  c.array.num_disks = 5;
  c.array.stripe_unit_bytes = 8192;
  c.policy = PolicySpec::AfraidBaseline();
  c.workload = PaperWorkloads().front();
  c.faults = FaultModelParams::From(AvailabilityParamsFor(c.array),
                                    SchemeFor(c.policy));
  c.lifetimes = 1;
  c.base_seed = 20260808;
  c.max_lifetime_hours = 1e5;
  LifetimeArena arena;
  int32_t index = 0;
  for (auto _ : state) {
    const LifetimeResult res = RunLifetime(c, index++ & 63, &arena);
    benchmark::DoNotOptimize(res.hours_observed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CampaignLifetime);

}  // namespace
}  // namespace afraid

int main(int argc, char** argv) {
  // Recorded into the benchmark JSON context: whether THIS binary's
  // translation units were compiled with optimization. google-benchmark's
  // own "library_build_type" key describes how the (system) benchmark
  // library was built, not our code, so the regen script and CI gate key on
  // this instead (see scripts/regen_goldens.sh).
#ifdef __OPTIMIZE__
  benchmark::AddCustomContext("afraid_bench_optimized", "true");
#else
  benchmark::AddCustomContext("afraid_bench_optimized", "false");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
