// Micro-benchmarks of the simulation engine itself (google-benchmark).
// These are not in the paper; they guard the cost of the hot paths that the
// table/figure harnesses exercise millions of times.

#include <benchmark/benchmark.h>

#include "array/layout.h"
#include "disk/disk_model.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "trace/workload_gen.h"

namespace afraid {
namespace {

void BM_EventQueueScheduleFire(benchmark::State& state) {
  EventQueue q;
  Rng rng(42);
  int64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.Schedule(rng.UniformInt(0, 1'000'000), [&sink] { ++sink; });
    }
    while (!q.Empty()) {
      q.PopNext().fn();
    }
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_DiskComputeService(benchmark::State& state) {
  Simulator sim;
  DiskModel disk(&sim, DiskSpec::HpC3325Like(), 0);
  Rng rng(42);
  const int64_t total = disk.TotalSectors();
  SimTime t = 0;
  int32_t cyl = 0;
  for (auto _ : state) {
    DiskOp op;
    op.lba = rng.UniformInt(0, total - 17);
    op.sectors = 16;
    op.is_write = rng.Bernoulli(0.5);
    int32_t end = 0;
    auto bd = disk.ComputeService(t, op, cyl, &end);
    benchmark::DoNotOptimize(bd);
    cyl = end;
    t += bd.Total();
  }
}
BENCHMARK(BM_DiskComputeService);

void BM_LayoutSplit(benchmark::State& state) {
  StripeLayout layout(5, 8192, 2'000'000'000, 1);
  Rng rng(42);
  const int64_t cap = layout.data_capacity_bytes();
  for (auto _ : state) {
    const int64_t off = rng.UniformInt(0, cap - 65537) & ~511LL;
    auto segs = layout.Split(off, 65536);
    benchmark::DoNotOptimize(segs);
  }
}
BENCHMARK(BM_LayoutSplit);

void BM_WorkloadGeneration(benchmark::State& state) {
  WorkloadParams p = PaperWorkloads()[0];
  p.address_space_bytes = 8LL << 30;
  for (auto _ : state) {
    p.seed++;
    Trace t = GenerateWorkload(p, 1000, Hours(24));
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_WorkloadGeneration);

void BM_SimulatorTimerChurn(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    // A chain of self-rescheduling events, like an idleness detector.
    int64_t count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10'000) {
        sim.After(Milliseconds(1), tick);
      }
    };
    sim.After(0, tick);
    sim.RunToEnd();
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SimulatorTimerChurn);

}  // namespace
}  // namespace afraid

BENCHMARK_MAIN();
