// Reproduces Figure 1 / Section 1 of the AFRAID paper: the RAID 5
// small-update problem. A single small (one stripe-unit) write to an idle
// array costs 4 disk I/Os in the critical path under RAID 5 (read old data,
// read old parity, write data, write parity) but just 1 under AFRAID; the
// parity work moves to the idle period that follows.

#include <cstdio>

#include "array/host_driver.h"
#include "bench/bench_common.h"
#include "core/afraid_controller.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

struct Outcome {
  double latency_ms = 0.0;
  uint64_t critical_path_ios = 0;  // Disk I/Os before the write completed.
  uint64_t deferred_ios = 0;       // Background I/Os after completion.
};

Outcome OneSmallWrite(const PolicySpec& spec) {
  const ArrayConfig cfg = PaperArrayConfig();
  Simulator sim;
  AfraidController ctl(&sim, cfg, MakePolicy(spec), AvailabilityParamsFor(cfg));
  HostDriver driver(&sim, &ctl, cfg.MaxActive());

  // Put the request away from stripe 0 so seeks are representative.
  const int64_t offset = 5000 * cfg.stripe_unit_bytes;
  driver.Submit(offset, static_cast<int32_t>(cfg.stripe_unit_bytes),
                /*is_write=*/true);
  // Run to the completion of the client write.
  while (!driver.Drained()) {
    sim.Step();
  }
  Outcome out;
  out.latency_ms = driver.AllLatencies().Mean();
  out.critical_path_ios = ctl.TotalDiskOps();
  // Let the idle period elapse: deferred parity work happens now.
  sim.RunToEnd();
  out.deferred_ios = ctl.TotalDiskOps() - out.critical_path_ios;
  return out;
}

int Run() {
  PrintHeader("Figure 1: anatomy of one small (8 KB) write to an idle array");
  std::printf("%-12s %14s %22s %16s\n", "scheme", "latency (ms)", "critical-path I/Os",
              "deferred I/Os");
  PrintRule();
  struct Row {
    const char* name;
    PolicySpec spec;
  };
  const Row rows[] = {
      {"RAID5", PolicySpec::Raid5()},
      {"AFRAID", PolicySpec::AfraidBaseline()},
      {"RAID0", PolicySpec::Raid0()},
  };
  for (const Row& row : rows) {
    const Outcome o = OneSmallWrite(row.spec);
    std::printf("%-12s %14.2f %22llu %16llu\n", row.name, o.latency_ms,
                static_cast<unsigned long long>(o.critical_path_ios),
                static_cast<unsigned long long>(o.deferred_ios));
  }
  PrintRule();
  std::printf("paper: RAID 5 needs 3-4 I/Os in the critical path of a small write; "
              "AFRAID needs 1\n(the parity rebuild -- %d reads + 1 write -- runs in "
              "the following idle period).\n",
              PaperArrayConfig().num_disks - 1);
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
