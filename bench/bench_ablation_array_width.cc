// Ablation: array width.
//
// "Since the overhead of the parity update is linear with the number of
// disks in a stripe group, AFRAID is best suited to arrays with smaller
// numbers of disks" (Section 1.1). This sweep measures both sides: the
// AFRAID speedup over RAID 5 and the background rebuild traffic, as the
// array grows from 3 to 12 disks.

#include <cstdio>

#include "bench/bench_common.h"

namespace afraid {
namespace {

int Run() {
  const uint64_t max_requests = BenchRequests();
  const SimDuration max_duration = BenchDuration();
  WorkloadParams wl;
  FindWorkload("cello-usr", &wl);

  PrintHeader("Ablation: array width (workload cello-usr)");
  std::printf("%6s %14s %14s %10s %16s %14s\n", "disks", "RAID5 ms", "AFRAID ms",
              "speedup", "rebuild I/Os", "I/Os/stripe");
  PrintRule();
  BenchReportSink sink("ablation_array_width");
  for (int32_t disks : {3, 4, 5, 8, 12}) {
    ArrayConfig cfg = PaperArrayConfig();
    cfg.num_disks = disks;
    const SimReport r5 =
        Experiment(cfg).Policy(PolicySpec::Raid5()).Workload(wl, max_requests, max_duration)
            .Run();
    const SimReport af =
        Experiment(cfg).Policy(PolicySpec::AfraidBaseline())
            .Workload(wl, max_requests, max_duration).Run();
    sink.Add(std::to_string(disks) + "disks/" + r5.policy, r5);
    sink.Add(std::to_string(disks) + "disks/" + af.policy, af);
    const double per_stripe =
        af.stripes_rebuilt == 0
            ? 0.0
            : static_cast<double>(af.disk_ops_rebuild) /
                  static_cast<double>(af.stripes_rebuilt);
    std::printf("%6d %14.2f %14.2f %9.2fx %16llu %14.1f\n", disks, r5.mean_io_ms,
                af.mean_io_ms, r5.mean_io_ms / af.mean_io_ms,
                static_cast<unsigned long long>(af.disk_ops_rebuild), per_stripe);
  }
  PrintRule();
  std::printf("expected: rebuild cost per stripe grows linearly with width (N reads\n"
              "+ 1 write), which is why the paper targets small arrays.\n");
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
