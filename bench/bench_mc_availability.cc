// Empirical availability: Monte-Carlo fault-injection campaigns (src/faultsim/)
// cross-checking the Section 3 analytic model.
//
// For each policy -- baseline AFRAID, RAID 5, RAID 0, and MTTDL_x -- the
// campaign runs hundreds of independent seeded array lifetimes. Each lifetime
// draws disk failures (with Table 1's 50% prediction coverage) from the fault
// timeline and injects the unpredicted ones into a live simulated array
// mid-workload, measuring loss through the controller's own accounting. The
// result is an empirical MTTDL and MDLR with 95% confidence intervals, printed
// beside the model's prediction evaluated at the same measured exposure inputs.
//
// The arrays use tiny disks so that every reconstruction sweep is fast; the
// analytic comparison column is computed for the same tiny geometry, so the
// empirical/analytic ratio is scale-free.
//
// Environment overrides:
//   AFRAID_MC_LIFETIMES=500   lifetimes per campaign (default 240)
//   AFRAID_MC_THREADS=8       worker threads (default: hardware concurrency)
//   AFRAID_MC_SEED=7          base seed (default 1996)
//   AFRAID_MC_WORKLOAD=name   workload preset (default: first paper workload)
//   AFRAID_MC_JSON=path.json  also emit the machine-readable report
//   AFRAID_MC_CSV=path.csv    also emit the CSV report
//   AFRAID_MC_VR=mode         rare-event acceleration: off|forcing|biasing
//   AFRAID_MC_BIAS=8          failure-rate inflation when AFRAID_MC_VR=biasing
//   AFRAID_MC_CAP=hours       override every campaign's per-lifetime cap
//                             (forcing pays off when fault-rate x cap <~ 1)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_common.h"
#include "faultsim/report.h"
#include "faultsim/runner.h"

namespace afraid {
namespace {

int64_t EnvInt(const char* name, int64_t fallback) {
  if (const char* env = std::getenv(name)) {
    return std::strtoll(env, nullptr, 10);
  }
  return fallback;
}

double EnvDouble(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    return std::strtod(env, nullptr);
  }
  return fallback;
}

// Tiny disks: a drill's reconstruction sweep touches every stripe, so the
// array must be small for hundreds of lifetimes to finish in seconds.
ArrayConfig McArrayConfig() {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;
  return cfg;
}

// One campaign per policy. Lifetime caps are per-scheme: long enough that a
// campaign accumulates a useful number of loss events, short enough that
// timeline event counts stay small. (RAID 5 needs the longest cap -- its
// losses are rare dual failures; RAID 0 loses on roughly the first failure.)
CampaignConfig McCampaign(const PolicySpec& policy, double cap_hours,
                          const WorkloadParams& workload, int32_t lifetimes,
                          uint64_t seed) {
  CampaignConfig c;
  c.array = McArrayConfig();
  c.policy = policy;
  c.workload = workload;
  c.faults = FaultModelParams::From(AvailabilityParamsFor(c.array),
                                    SchemeFor(policy));
  c.lifetimes = lifetimes;
  c.base_seed = seed;
  c.max_lifetime_hours = cap_hours;
  return c;
}

int Run() {
  const auto lifetimes = static_cast<int32_t>(EnvInt("AFRAID_MC_LIFETIMES", 240));
  const auto threads = static_cast<int32_t>(EnvInt("AFRAID_MC_THREADS", 0));
  const auto seed = static_cast<uint64_t>(EnvInt("AFRAID_MC_SEED", 1996));

  WorkloadParams workload = PaperWorkloads().front();
  if (const char* env = std::getenv("AFRAID_MC_WORKLOAD")) {
    if (!FindWorkload(env, &workload)) {
      std::fprintf(stderr, "unknown workload '%s'\n", env);
      return 1;
    }
  }

  VarianceReduction vr;
  if (const char* env = std::getenv("AFRAID_MC_VR")) {
    if (!ParseVrMode(env, &vr.mode)) {
      std::fprintf(stderr, "unknown AFRAID_MC_VR mode '%s' (off|forcing|biasing)\n",
                   env);
      return 1;
    }
  }
  vr.failure_bias = EnvDouble("AFRAID_MC_BIAS", vr.failure_bias);
  if (vr.failure_bias <= 0.0) {
    std::fprintf(stderr, "AFRAID_MC_BIAS must be positive\n");
    return 1;
  }
  const double cap_override = EnvDouble("AFRAID_MC_CAP", 0.0);

  PrintHeader("Empirical availability: Monte-Carlo fault injection vs Section 3 model");
  std::printf("%d lifetimes/campaign, workload '%s', base seed %llu, %d threads\n\n",
              lifetimes, workload.name.c_str(),
              static_cast<unsigned long long>(seed),
              EffectiveThreads(threads, lifetimes));

  std::vector<CampaignConfig> campaigns = {
      McCampaign(PolicySpec::AfraidBaseline(), 5e7, workload, lifetimes, seed),
      McCampaign(PolicySpec::Raid5(), 1e8, workload, lifetimes, seed),
      McCampaign(PolicySpec::Raid0(), 5e6, workload, lifetimes, seed),
      McCampaign(PolicySpec::MttdlTarget(1e7), 5e7, workload, lifetimes, seed),
  };
  for (CampaignConfig& c : campaigns) {
    c.vr = vr;
    if (cap_override > 0.0) {
      c.max_lifetime_hours = cap_override;
    }
  }

  std::vector<SchemeComparison> rows;
  for (const CampaignConfig& c : campaigns) {
    const CampaignSummary summary = RunCampaign(c, threads);
    rows.push_back(CompareWithModel(c, summary));
    std::printf("  %-18s done: %llu losses in %llu lifetimes "
                "(%llu drills, %llu failures, %llu averted)",
                summary.label.c_str(),
                static_cast<unsigned long long>(summary.loss_events),
                static_cast<unsigned long long>(summary.lifetimes),
                static_cast<unsigned long long>(summary.drills),
                static_cast<unsigned long long>(summary.disk_failures),
                static_cast<unsigned long long>(summary.predicted_averted));
    if (vr.Enabled()) {
      std::printf(" ess=%.1f", summary.ess);
    }
    std::printf("\n");
  }
  std::printf("\n");
  PrintComparisonTable(stdout, rows);

  if (const char* path = std::getenv("AFRAID_MC_JSON")) {
    if (!WriteTextFile(path, ComparisonJson(rows))) {
      std::fprintf(stderr, "failed to write %s\n", path);
      return 1;
    }
    std::printf("wrote %s\n", path);
  }
  if (const char* path = std::getenv("AFRAID_MC_CSV")) {
    if (!WriteTextFile(path, ComparisonCsv(rows))) {
      std::fprintf(stderr, "failed to write %s\n", path);
      return 1;
    }
    std::printf("wrote %s\n", path);
  }
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
