// Ablation: host device-driver scheduling.
//
// The paper's host driver "used the clook policy [Worthington94a]". This
// sweep compares CLOOK against plain FCFS queueing across the array schemes
// on a seek-heavy workload: CLOOK's offset-ordered dispatch shortens seeks
// and smooths queueing whenever the driver queue is non-trivial.

#include <cstdio>

#include "bench/bench_common.h"

namespace afraid {
namespace {

int Run() {
  const uint64_t max_requests = BenchRequests();
  const SimDuration max_duration = BenchDuration();
  WorkloadParams wl;
  FindWorkload("ATT", &wl);  // Random and busy: driver queues form.

  PrintHeader("Ablation: host-driver scheduling, CLOOK vs FCFS (workload ATT)");
  std::printf("%-10s %14s %14s %12s\n", "scheme", "CLOOK ms", "FCFS ms", "FCFS/CLOOK");
  PrintRule();
  BenchReportSink sink("ablation_host_sched");
  for (const PolicySpec& spec :
       {PolicySpec::Raid5(), PolicySpec::AfraidBaseline(), PolicySpec::Raid0()}) {
    ArrayConfig cfg = PaperArrayConfig();
    cfg.host_sched = HostSched::kClook;
    const SimReport clook = Experiment(cfg).Policy(spec)
        .Workload(wl, max_requests, max_duration).Run();
    cfg.host_sched = HostSched::kFcfs;
    const SimReport fcfs = Experiment(cfg).Policy(spec)
        .Workload(wl, max_requests, max_duration).Run();
    sink.Add(clook.policy + "/clook", clook);
    sink.Add(fcfs.policy + "/fcfs", fcfs);
    std::printf("%-10s %14.2f %14.2f %11.2fx\n", clook.policy.c_str(),
                clook.mean_io_ms, fcfs.mean_io_ms,
                fcfs.mean_io_ms / clook.mean_io_ms);
  }
  PrintRule();
  std::printf("expected: FCFS is no better than CLOOK everywhere; the gap is widest\n"
              "where driver queues are longest (RAID 5 under write pressure).\n");
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
