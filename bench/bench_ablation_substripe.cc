// Ablation: sub-stripe marking (Section 5).
//
// "The units of parity-reconstruction can have a smaller 'height' than the
// stripes used for data layout if more marker memory can be provided. For
// example, if M memory bits can be afforded per stripe, then parity
// computations will still be efficient for small writes that update only
// 1/M of a stripe unit." This sweep trades marker memory against parity lag
// and rebuild traffic on a small-write-heavy workload.

#include <cstdio>

#include "array/layout.h"
#include "bench/bench_common.h"
#include "disk/geometry.h"

namespace afraid {
namespace {

int Run() {
  const uint64_t max_requests = BenchRequests();
  const SimDuration max_duration = BenchDuration();
  WorkloadParams wl;
  FindWorkload("ATT", &wl);  // Lots of 2 KB writes into 8 KB stripe units.

  PrintHeader("Ablation: sub-stripe marking M (workload ATT, baseline AFRAID)");
  std::printf("%4s %12s %12s %12s %16s %16s\n", "M", "mean ms", "lag (KB)",
              "NVRAM bits", "bands rebuilt", "rebuild I/Os");
  PrintRule();
  BenchReportSink sink("ablation_substripe");
  for (int32_t marks : {1, 2, 4, 8, 16}) {
    ArrayConfig cfg = PaperArrayConfig();
    cfg.marks_per_stripe = marks;
    const SimReport rep = Experiment(cfg).Policy(PolicySpec::AfraidBaseline())
        .Workload(wl, max_requests, max_duration).Run();
    sink.Add("marks=" + std::to_string(marks), rep);
    // NVRAM cost: M bits per stripe.
    const StripeLayout layout(cfg.num_disks, cfg.stripe_unit_bytes,
                              DiskGeometry(cfg.disk_spec.zones, cfg.disk_spec.heads,
                                           cfg.disk_spec.sector_bytes)
                                  .CapacityBytes(),
                              cfg.parity_blocks);
    std::printf("%4d %12.2f %12.1f %12lld %16llu %16llu\n", marks, rep.mean_io_ms,
                rep.mean_parity_lag_bytes / 1024.0,
                static_cast<long long>(layout.num_stripes() * marks),
                static_cast<unsigned long long>(rep.stripes_rebuilt),
                static_cast<unsigned long long>(rep.disk_ops_rebuild));
  }
  PrintRule();
  std::printf("expected: larger M shrinks the parity lag (exposure) toward the\n"
              "fraction of each stripe actually written, at the cost of M bits of\n"
              "NVRAM per stripe and more (but individually smaller) rebuild I/Os.\n");
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
