// Reproduces Figure 3 of the AFRAID paper: the performance/availability
// trade-off frontier, relative to RAID 5, as the parity-update policy sweeps
// from pure RAID 5 through MTTDL_x targets down to pure (baseline) AFRAID.
// Each point is the geometric mean across all nine workloads.
//
// Paper headline: "AFRAID offers 42% better performance for only 10% less
// availability, and 97% better for 23% less. By the time pure AFRAID is
// reached ... performance is 4.1 times better than RAID 5, at a cost of less
// than half its availability."

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/sweep.h"
#include "stats/summary.h"

namespace afraid {
namespace {

int Run() {
  const ArrayConfig cfg = PaperArrayConfig();
  const AvailabilityParams ap = AvailabilityParamsFor(cfg);
  const uint64_t max_requests = BenchRequests();
  const SimDuration max_duration = BenchDuration();

  struct Point {
    PolicySpec spec;
    std::string label;
  };
  std::vector<Point> points;
  points.push_back({PolicySpec::Raid5(), "RAID5"});
  for (double t : {20.0e6, 10.0e6, 5.0e6, 3.0e6, 2.0e6, 1.5e6, 1.0e6, 0.75e6, 0.5e6,
                   0.25e6}) {
    points.push_back({PolicySpec::MttdlTarget(t), PolicySpec::MttdlTarget(t).Label()});
  }
  points.push_back({PolicySpec::AfraidBaseline(), "pure-AFRAID"});

  const double raid5_overall =
      CombineMttdlHours({MttdlRaidCatastrophicHours(ap), ap.mttdl_support_hours});

  PrintHeader("Figure 3: relative performance vs relative availability (vs RAID 5)");
  std::printf("%-14s %18s %18s %14s\n", "policy", "rel. performance",
              "rel. availability", "perf gain %");
  PrintRule();

  // Per-policy geometric means across workloads of (RAID5 mean I/O time /
  // policy mean I/O time) and (policy overall MTTDL / RAID5 overall MTTDL).
  // The whole (point x workload) grid fans out over a thread pool; each cell
  // is deterministic in its inputs, so the frontier is bit-identical for any
  // AFRAID_BENCH_THREADS. Points[0] is RAID 5 itself: its row doubles as the
  // ratio baseline (the serial harness recomputed it to identical values).
  const std::vector<WorkloadParams> workloads = PaperWorkloads();
  const int64_t per_point = static_cast<int64_t>(workloads.size());
  const std::vector<SimReport> reports = ParallelSweep(
      static_cast<int64_t>(points.size()) * per_point, [&](int64_t cell) {
        return Experiment(cfg).Policy(points[static_cast<size_t>(cell / per_point)].spec)
            .Workload(workloads[static_cast<size_t>(cell % per_point)], max_requests,
                      max_duration)
            .Run();
      });
  BenchReportSink sink("fig3_tradeoff");
  for (size_t p = 0; p < points.size(); ++p) {
    for (size_t w = 0; w < workloads.size(); ++w) {
      sink.Add(points[p].label + "/" + workloads[w].name,
               reports[p * workloads.size() + w]);
    }
  }
  for (size_t p = 0; p < points.size(); ++p) {
    std::vector<double> perf_ratios;
    std::vector<double> avail_ratios;
    for (size_t w = 0; w < workloads.size(); ++w) {
      const SimReport& rep = reports[p * workloads.size() + w];
      perf_ratios.push_back(reports[w].mean_io_ms / rep.mean_io_ms);
      avail_ratios.push_back(rep.avail.mttdl_overall_hours / raid5_overall);
    }
    const double perf = GeometricMean(perf_ratios);
    const double avail = GeometricMean(avail_ratios);
    std::printf("%-14s %18.2f %18.3f %13.0f%%\n", points[p].label.c_str(), perf,
                avail, (perf - 1.0) * 100.0);
  }
  PrintRule();
  std::printf("paper reference points: +42%% perf at 0.90x avail; +97%% at 0.77x; "
              "4.1x perf at >0.5x avail (pure AFRAID)\n");
  return 0;
}

}  // namespace
}  // namespace afraid

int main() { return afraid::Run(); }
