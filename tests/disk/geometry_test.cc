#include "disk/geometry.h"

#include <gtest/gtest.h>

#include "disk/disk_spec.h"
#include "sim/random.h"

namespace afraid {
namespace {

DiskGeometry Hp() {
  const DiskSpec spec = DiskSpec::HpC3325Like();
  return DiskGeometry(spec.zones, spec.heads, spec.sector_bytes);
}

TEST(Geometry, HpPresetCapacityIsAbout2GB) {
  const DiskGeometry g = Hp();
  EXPECT_EQ(g.CapacityBytes(), 2'146'176'000);
  EXPECT_EQ(g.TotalSectors(), 4'191'750);
  EXPECT_EQ(g.TotalCylinders(), 4315);
}

TEST(Geometry, FirstAndLastSector) {
  const DiskGeometry g = Hp();
  const Chs first = g.ToChs(0);
  EXPECT_EQ(first.zone, 0);
  EXPECT_EQ(first.cylinder, 0);
  EXPECT_EQ(first.head, 0);
  EXPECT_EQ(first.sector, 0);
  EXPECT_EQ(first.sectors_per_track, 126);

  const Chs last = g.ToChs(g.TotalSectors() - 1);
  EXPECT_EQ(last.zone, 2);
  EXPECT_EQ(last.cylinder, g.TotalCylinders() - 1);
  EXPECT_EQ(last.head, g.Heads() - 1);
  EXPECT_EQ(last.sector, 89);
  EXPECT_EQ(last.sectors_per_track, 90);
}

TEST(Geometry, ZoneBoundaries) {
  const DiskGeometry g = Hp();
  // Zone 0: 1400 cylinders x 9 heads x 126 spt.
  const int64_t zone0_sectors = 1400LL * 9 * 126;
  EXPECT_EQ(g.ToChs(zone0_sectors - 1).zone, 0);
  EXPECT_EQ(g.ToChs(zone0_sectors).zone, 1);
  EXPECT_EQ(g.ToChs(zone0_sectors).cylinder, 1400);
  EXPECT_EQ(g.ToChs(zone0_sectors).sector, 0);
}

TEST(Geometry, MappingIsBijective) {
  const DiskGeometry g = Hp();
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const int64_t lba = rng.UniformInt(0, g.TotalSectors() - 1);
    const Chs chs = g.ToChs(lba);
    EXPECT_EQ(g.ToLba(chs), lba);
    EXPECT_GE(chs.sector, 0);
    EXPECT_LT(chs.sector, chs.sectors_per_track);
    EXPECT_GE(chs.head, 0);
    EXPECT_LT(chs.head, g.Heads());
  }
}

TEST(Geometry, ConsecutiveLbasAreConsecutiveOnTrack) {
  const DiskGeometry g = Hp();
  const Chs a = g.ToChs(100);
  const Chs b = g.ToChs(101);
  EXPECT_EQ(a.cylinder, b.cylinder);
  EXPECT_EQ(a.head, b.head);
  EXPECT_EQ(a.sector + 1, b.sector);
}

TEST(Geometry, TrackBoundaryAdvancesHeadThenCylinder) {
  const DiskGeometry g = Hp();
  // End of the first track.
  const Chs end_track = g.ToChs(125);
  EXPECT_EQ(end_track.sector, 125);
  const Chs next = g.ToChs(126);
  EXPECT_EQ(next.head, 1);
  EXPECT_EQ(next.sector, 0);
  EXPECT_EQ(next.cylinder, 0);
  // End of the first cylinder.
  const Chs last_of_cyl = g.ToChs(126 * 9 - 1);
  EXPECT_EQ(last_of_cyl.head, 8);
  const Chs first_of_next = g.ToChs(126 * 9);
  EXPECT_EQ(first_of_next.cylinder, 1);
  EXPECT_EQ(first_of_next.head, 0);
}

TEST(Geometry, TinyDiskPreset) {
  const DiskSpec spec = DiskSpec::TinyTestDisk();
  const DiskGeometry g(spec.zones, spec.heads, spec.sector_bytes);
  EXPECT_EQ(g.TotalSectors(), 64 * 16 * 4);
  EXPECT_EQ(g.CapacityBytes(), 2 * 1024 * 1024);
}

TEST(Geometry, TrackIndexIsGlobal) {
  const DiskGeometry g = Hp();
  const Chs chs = g.ToChs(126LL * 9 * 3 + 126 * 2 + 7);  // Cyl 3, head 2, sector 7.
  EXPECT_EQ(chs.track_index, 3 * 9 + 2);
}

}  // namespace
}  // namespace afraid
