#include "disk/disk_model.h"

#include <gtest/gtest.h>

#include <vector>

#include "disk/geometry.h"
#include "disk/seek_model.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

TEST(SeekModel, ZeroDistanceIsFree) {
  SeekModel m(DiskSpec::HpC3325Like().seek);
  EXPECT_EQ(m.SeekTime(0), 0);
}

TEST(SeekModel, SingleCylinderCost) {
  SeekModel m(DiskSpec::HpC3325Like().seek);
  EXPECT_EQ(m.SeekTime(1), MillisecondsF(1.0));
  EXPECT_EQ(m.SeekTime(-1), m.SeekTime(1));
}

TEST(SeekModel, MonotoneNonDecreasing) {
  SeekModel m(DiskSpec::HpC3325Like().seek);
  SimDuration prev = 0;
  for (int64_t d = 0; d < 4315; d += 7) {
    const SimDuration t = m.SeekTime(d);
    EXPECT_GE(t, prev) << "at distance " << d;
    prev = t;
  }
}

TEST(SeekModel, ContinuousAtBoundary) {
  const SeekModelParams p = DiskSpec::HpC3325Like().seek;
  SeekModel m(p);
  const SimDuration before = m.SeekTime(p.boundary_cylinders - 1);
  const SimDuration after = m.SeekTime(p.boundary_cylinders);
  EXPECT_LT(std::abs(after - before), MillisecondsF(0.2));
}

TEST(SeekModel, FullStrokeUnder20ms) {
  SeekModel m(DiskSpec::HpC3325Like().seek);
  EXPECT_LT(m.SeekTime(4314), MillisecondsF(20.0));
  EXPECT_GT(m.SeekTime(4314), MillisecondsF(10.0));
}

// The lookup table must be indistinguishable from the analytic curve: exact
// equality at every representable distance, for both in-tree disk specs.
TEST(SeekModel, TableExactAtEveryDistance) {
  for (const DiskSpec& spec :
       {DiskSpec::HpC3325Like(), DiskSpec::TinyTestDisk()}) {
    const DiskGeometry geom(spec.zones, spec.heads, spec.sector_bytes);
    const int64_t max_distance = geom.TotalCylinders() - 1;
    SeekModel m(spec.seek);
    m.PrecomputeTable(static_cast<int32_t>(max_distance));
    ASSERT_EQ(m.TableSize(), max_distance + 1);
    for (int64_t d = 0; d <= max_distance; ++d) {
      ASSERT_EQ(m.SeekTime(d), m.AnalyticSeekTime(d))
          << spec.name << " at distance " << d;
      ASSERT_EQ(m.SeekTime(-d), m.AnalyticSeekTime(d))
          << spec.name << " at distance -" << d;
    }
    // Past the table: falls back to the analytic curve, still exact.
    EXPECT_EQ(m.SeekTime(max_distance + 5),
              m.AnalyticSeekTime(max_distance + 5));
  }
}

class DiskModelTest : public ::testing::Test {
 protected:
  DiskModelTest() : disk_(&sim_, DiskSpec::HpC3325Like(), 0) {}

  DiskOpResult RunOne(int64_t lba, int32_t sectors, bool is_write) {
    DiskOpResult out;
    disk_.Submit(DiskOp{lba, sectors, is_write},
                 [&out](const DiskOpResult& r) { out = r; });
    sim_.RunToEnd();
    return out;
  }

  Simulator sim_;
  DiskModel disk_;
};

TEST_F(DiskModelTest, SingleSectorReadTiming) {
  const DiskOpResult r = RunOne(1000, 1, /*is_write=*/false);
  EXPECT_TRUE(r.ok);
  const SimDuration total = r.breakdown.Total();
  // Overhead (0.5) + seek (0 cylinders -> 0... lba 1000 is cylinder 0) +
  // rotation (0..11.1ms) + one sector transfer (~0.088ms).
  EXPECT_GE(total, MillisecondsF(0.5));
  EXPECT_LE(total, MillisecondsF(0.5 + 11.2 + 0.1));
  EXPECT_EQ(r.breakdown.seek, 0);  // Same cylinder as the arm's start.
}

TEST_F(DiskModelTest, WriteAddsSettle) {
  // Use a 1-cylinder seek so the settle applies on a real seek.
  const DiskSpec spec = DiskSpec::HpC3325Like();
  const int64_t cyl_sectors = 126LL * 9;
  const DiskOpResult w = RunOne(cyl_sectors, 4, /*is_write=*/true);
  EXPECT_TRUE(w.ok);
  EXPECT_EQ(w.breakdown.seek, MillisecondsF(1.0) + spec.write_settle);
}

TEST_F(DiskModelTest, SequentialTransferApproachesMediaRate) {
  // 1 MB sequential read from sector 0: media rate in zone 0 is
  // 126 sectors per 11.111 ms rev = 5.8 MB/s.
  const int32_t sectors = 2048;  // 1 MiB.
  const DiskOpResult r = RunOne(0, sectors, /*is_write=*/false);
  EXPECT_TRUE(r.ok);
  const double secs = ToSeconds(r.finish - r.service_start);
  const double mbps = 1.0 / secs;
  EXPECT_GT(mbps, 4.0);
  EXPECT_LT(mbps, 6.0);
}

TEST_F(DiskModelTest, FcfsQueueing) {
  std::vector<int> completions;
  disk_.Submit(DiskOp{0, 8, false}, [&](const DiskOpResult&) {
    completions.push_back(1);
  });
  disk_.Submit(DiskOp{500000, 8, false}, [&](const DiskOpResult&) {
    completions.push_back(2);
  });
  disk_.Submit(DiskOp{100, 8, false}, [&](const DiskOpResult&) {
    completions.push_back(3);
  });
  sim_.RunToEnd();
  EXPECT_EQ(completions, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(disk_.OpsCompleted(), 3u);
}

TEST_F(DiskModelTest, BackToBackSameSectorCostsAboutOneRevolution) {
  // Read then write the same sector: the write must wait for the platter to
  // come around again -- the core of the RAID 5 small-update penalty.
  SimTime first_done = 0;
  SimTime second_done = 0;
  disk_.Submit(DiskOp{5000, 16, false},
               [&](const DiskOpResult& r) { first_done = r.finish; });
  disk_.Submit(DiskOp{5000, 16, true},
               [&](const DiskOpResult& r) { second_done = r.finish; });
  sim_.RunToEnd();
  const SimDuration gap = second_done - first_done;
  const SimDuration rev = DiskSpec::HpC3325Like().RevolutionTime();
  // Between 0.8 and 1.3 revolutions (overheads shift the exact phase).
  EXPECT_GT(gap, rev * 8 / 10);
  EXPECT_LT(gap, rev * 13 / 10);
}

TEST_F(DiskModelTest, TrackBoundaryCrossingDoesNotLoseARevolution) {
  // 126 + 10 sectors starting at sector 0: crosses one track boundary. With
  // skew, the post-switch realign should be far less than a revolution.
  const DiskOpResult r = RunOne(0, 136, /*is_write=*/false);
  const SimDuration rev = DiskSpec::HpC3325Like().RevolutionTime();
  // Pure media time is (136/126) revs; allow < 1.6 revs total after rotation.
  EXPECT_LT(r.breakdown.transfer, rev * 16 / 10);
}

TEST_F(DiskModelTest, UtilizationTracksBusyTime) {
  disk_.Submit(DiskOp{0, 64, false}, [](const DiskOpResult&) {});
  sim_.RunToEnd();
  const SimTime busy_end = sim_.Now();
  // Let it idle as long again: utilization should be ~50%.
  sim_.RunUntil(busy_end * 2);
  EXPECT_NEAR(disk_.UtilizationTo(sim_.Now()), 0.5, 0.01);
}

TEST_F(DiskModelTest, FailFailsInFlightAndQueued) {
  std::vector<bool> oks;
  disk_.Submit(DiskOp{0, 8, false}, [&](const DiskOpResult& r) { oks.push_back(r.ok); });
  disk_.Submit(DiskOp{90, 8, false}, [&](const DiskOpResult& r) { oks.push_back(r.ok); });
  sim_.After(MicrosecondsF(100), [&] { disk_.Fail(); });
  sim_.RunToEnd();
  ASSERT_EQ(oks.size(), 2u);
  EXPECT_FALSE(oks[0]);
  EXPECT_FALSE(oks[1]);
  EXPECT_TRUE(disk_.failed());
  EXPECT_EQ(disk_.OpsCompleted(), 0u);
}

TEST_F(DiskModelTest, SubmitAfterFailFailsImmediately) {
  disk_.Fail();
  bool ok = true;
  SimTime done_at = -1;
  disk_.Submit(DiskOp{0, 8, false}, [&](const DiskOpResult& r) {
    ok = r.ok;
    done_at = r.finish;
  });
  sim_.RunToEnd();
  EXPECT_FALSE(ok);
  EXPECT_EQ(done_at, 0);
}

TEST_F(DiskModelTest, ReplaceRestoresService) {
  disk_.Fail();
  sim_.RunToEnd();
  disk_.Replace();
  EXPECT_FALSE(disk_.failed());
  const DiskOpResult r = RunOne(0, 8, false);
  EXPECT_TRUE(r.ok);
}

TEST_F(DiskModelTest, ComputeServiceIsPure) {
  DiskOp op{123456, 16, false};
  int32_t end1 = 0;
  int32_t end2 = 0;
  const auto a = disk_.ComputeService(Milliseconds(5), op, 0, &end1);
  const auto b = disk_.ComputeService(Milliseconds(5), op, 0, &end2);
  EXPECT_EQ(a.Total(), b.Total());
  EXPECT_EQ(end1, end2);
}

TEST_F(DiskModelTest, SpinSynchronizedDisksShareAngularPosition) {
  // Two disks of the same spec at the same simulated time must compute the
  // same rotational delay for the same op (the paper assumes spin sync).
  DiskModel other(&sim_, DiskSpec::HpC3325Like(), 1);
  DiskOp op{777777, 8, false};
  int32_t end = 0;
  const auto a = disk_.ComputeService(Seconds(1), op, 10, &end);
  const auto b = other.ComputeService(Seconds(1), op, 10, &end);
  EXPECT_EQ(a.rotation, b.rotation);
}

TEST(DiskModelProperty, ServiceTimesWithinPhysicalBounds) {
  Simulator sim;
  DiskModel disk(&sim, DiskSpec::HpC3325Like(), 0);
  Rng rng(77);
  const SimDuration rev = DiskSpec::HpC3325Like().RevolutionTime();
  for (int i = 0; i < 3000; ++i) {
    DiskOp op;
    op.sectors = static_cast<int32_t>(rng.UniformInt(1, 64));
    op.lba = rng.UniformInt(0, disk.TotalSectors() - op.sectors);
    op.is_write = rng.Bernoulli(0.5);
    int32_t end = 0;
    const auto bd = disk.ComputeService(rng.UniformInt(0, Seconds(100)), op,
                                        static_cast<int32_t>(rng.UniformInt(0, 4314)),
                                        &end);
    EXPECT_GE(bd.seek, 0);
    EXPECT_GE(bd.rotation, 0);
    // Initial rotational latency is < 1 rev; a <=64-sector op crosses at
    // most one track boundary, whose skewed realign is a couple of ms.
    EXPECT_LE(bd.rotation, rev + MillisecondsF(2.5));
    EXPECT_GT(bd.transfer, 0);
    // A small op can never exceed overhead + max seek + settle + one rev +
    // transfer incl. a couple of switches.
    EXPECT_LT(bd.Total(), MillisecondsF(42.0));
  }
}

}  // namespace
}  // namespace afraid
