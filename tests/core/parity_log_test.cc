// The parity-logging comparison baseline [Stodolsky93] (Section 2).

#include "core/parity_log_controller.h"

#include <gtest/gtest.h>

#include <memory>

#include "array/host_driver.h"
#include "core/afraid_controller.h"
#include "core/experiment.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

ArrayConfig TinyConfig() {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;
  return cfg;
}

ParityLogConfig TinyLog() {
  ParityLogConfig lc;
  lc.nvram_buffer_bytes = 16 * 1024;
  lc.log_region_bytes = 64 * 1024;
  lc.replay_batch_stripes = 4;
  return lc;
}

class PlRig : public ::testing::Test {
 protected:
  void Build(ParityLogConfig lc = TinyLog()) {
    ctl_ = std::make_unique<ParityLogController>(&sim_, TinyConfig(), lc);
    driver_ = std::make_unique<HostDriver>(&sim_, ctl_.get(), 5);
  }

  Simulator sim_;
  std::unique_ptr<ParityLogController> ctl_;
  std::unique_ptr<HostDriver> driver_;
};

TEST_F(PlRig, SmallWriteCostsTwoDataIos) {
  Build();
  driver_->Submit(0, 8192, true);
  sim_.RunToEnd();
  // Read old data + write new data; the image stays in NVRAM (no flush yet).
  EXPECT_EQ(ctl_->DiskOpsIssued(), 2u);
  EXPECT_EQ(ctl_->LogFlushes(), 0u);
  EXPECT_EQ(ctl_->PendingImagesBytes(), 8192);
}

TEST_F(PlRig, CapacityExcludesLogRegion) {
  Build();
  // 2 MiB disks minus 64 KB log region, 4/5 data fraction.
  EXPECT_EQ(ctl_->DataCapacityBytes(),
            ((2 * 1024 * 1024 - 64 * 1024) / 8192) * 4 * 8192);
}

TEST_F(PlRig, BufferFillTriggersSequentialFlush) {
  Build();
  for (int i = 0; i < 3; ++i) {  // 3 x 8 KB images > 16 KB buffer.
    driver_->Submit(i * 4 * 8192, 8192, true);
    sim_.RunToEnd();
  }
  EXPECT_GE(ctl_->LogFlushes(), 1u);
  EXPECT_EQ(ctl_->LogReplays(), 0u);
}

TEST_F(PlRig, LogFillTriggersReplayAndReclaims) {
  Build();
  // 64 KB log = 8 x 8 KB images; write enough to overflow it.
  for (int i = 0; i < 12; ++i) {
    driver_->Submit(i * 4 * 8192, 8192, true);
    sim_.RunToEnd();
  }
  EXPECT_GE(ctl_->LogReplays(), 1u);
  EXPECT_FALSE(ctl_->ReplayInProgress());
  EXPECT_LT(ctl_->PendingImagesBytes(), 64 * 1024);
}

TEST_F(PlRig, WritesHardStallWhenLogOutpacesReplay) {
  Build();
  // A dense burst produces images faster than replay batches reclaim them:
  // the log hits hard-full and writes stall until space frees up.
  for (int i = 0; i < 24; ++i) {
    driver_->Submit(i * 4 * 8192, 8192, true);
  }
  sim_.RunToEnd();
  EXPECT_GE(ctl_->LogReplays(), 1u);
  EXPECT_GT(ctl_->HardStalls(), 0u);
  EXPECT_EQ(driver_->Completed(), 24u);  // Everything eventually lands.
  EXPECT_FALSE(ctl_->ReplayInProgress());
}

TEST_F(PlRig, ReadsAreSingleIos) {
  Build();
  driver_->Submit(0, 8192, false);
  sim_.RunToEnd();
  EXPECT_EQ(ctl_->DiskOpsIssued(), 1u);
}

TEST_F(PlRig, AlwaysFullyRedundant) {
  Build();
  for (int i = 0; i < 20; ++i) {
    driver_->Submit(i * 4 * 8192, 8192, true);
  }
  sim_.RunToEnd();
  EXPECT_DOUBLE_EQ(ctl_->TUnprotFraction(), 0.0);
  EXPECT_DOUBLE_EQ(ctl_->MeanParityLagBytes(), 0.0);
}

// The Section 2 comparison. For a *lone* small write, parity logging and
// RAID 5 have the same latency (both are a coupled read-then-write on the
// data disk; RAID 5's extra parity pair runs in parallel) while AFRAID
// "avoids a pre-read of the old data in the critical path ... and thus
// saves a complete disk revolution". Under a *burst*, RAID 5's doubled I/O
// count congests the disks and parity logging pulls ahead of it too.
TEST(ParityLogComparison, SmallWriteLatencyAndBurstOrdering) {
  const ArrayConfig cfg = TinyConfig();
  // A production-sized log: no replay within this test (the replay
  // pathology is covered by WritesStallBehindReplay above).
  ParityLogConfig roomy;
  roomy.nvram_buffer_bytes = 64 * 1024;
  roomy.log_region_bytes = 512 * 1024;
  auto run_pl = [&](int writes) {
    Simulator sim;
    ParityLogController ctl(&sim, cfg, roomy);
    HostDriver driver(&sim, &ctl, 5);
    Rng rng(3);
    for (int i = 0; i < writes; ++i) {
      driver.Submit(rng.UniformInt(0, 50) * 4 * 8192, 8192, true);
    }
    sim.RunToEnd();
    return driver.AllLatencies().Mean();
  };
  auto run_std = [&](const PolicySpec& spec, int writes) {
    Simulator sim;
    AfraidController ctl(&sim, cfg, MakePolicy(spec), AvailabilityParamsFor(cfg));
    HostDriver driver(&sim, &ctl, 5);
    Rng rng(3);
    for (int i = 0; i < writes; ++i) {
      driver.Submit(rng.UniformInt(0, 50) * 4 * 8192, 8192, true);
    }
    while (!driver.Drained()) {
      sim.Step();
    }
    return driver.AllLatencies().Mean();
  };
  // Lone write: AFRAID strictly fastest; parity logging == RAID 5.
  const double pl1 = run_pl(1);
  const double af1 = run_std(PolicySpec::AfraidBaseline(), 1);
  const double r51 = run_std(PolicySpec::Raid5(), 1);
  EXPECT_LT(af1, pl1);
  EXPECT_NEAR(pl1, r51, 2.0);
  // Burst of 40: AFRAID < parity logging < RAID 5.
  const double pl40 = run_pl(40);
  const double af40 = run_std(PolicySpec::AfraidBaseline(), 40);
  const double r540 = run_std(PolicySpec::Raid5(), 40);
  EXPECT_LT(af40, pl40);
  EXPECT_LT(pl40, r540);
}

}  // namespace
}  // namespace afraid
