// Property-based integration tests: random operation sequences against every
// policy, with the functional content model as the oracle.
//
// Invariants checked after quiescing (TEST_P over policy x seed):
//   1. Read-back equals last write for every logical sector ever written.
//   2. After RebuildAll(), every touched stripe xor-checks.
//   3. Parity-lag accounting equals (dirty stripes) x N x S at all times.
//   4. With one injected disk failure at a random moment, data is
//      recoverable iff its stripe was redundant at failure time.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "array/host_driver.h"
#include "core/afraid_controller.h"
#include "core/experiment.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

ArrayConfig TinyConfig() {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;
  cfg.track_content = true;
  return cfg;
}

PolicySpec SpecFor(const std::string& name) {
  if (name == "raid0") {
    return PolicySpec::Raid0();
  }
  if (name == "raid5") {
    return PolicySpec::Raid5();
  }
  if (name == "afraid") {
    return PolicySpec::AfraidBaseline();
  }
  if (name == "mttdl") {
    return PolicySpec::MttdlTarget(1e6);
  }
  if (name == "thresh") {
    return PolicySpec::StripeThreshold(5);
  }
  return PolicySpec::AutoSwitch(0.2);
}

using Param = std::tuple<std::string, uint64_t>;

class RandomOpsTest : public ::testing::TestWithParam<Param> {};

TEST_P(RandomOpsTest, ReadbackAndParityInvariants) {
  const auto& [policy_name, seed] = GetParam();
  const ArrayConfig cfg = TinyConfig();
  Simulator sim;
  AfraidController ctl(&sim, cfg, MakePolicy(SpecFor(policy_name)),
                       AvailabilityParamsFor(cfg));
  HostDriver driver(&sim, &ctl, cfg.MaxActive());
  Rng rng(seed);
  const int64_t cap = ctl.DataCapacityBytes();
  const int64_t n_times_s =
      ctl.layout().data_blocks_per_stripe() * ctl.layout().stripe_unit();

  // Shadow map: logical sector -> tag of the last *completed* write. Writes
  // are serialised per run step here (we drain between batches), so "last
  // submitted" == "last completed".
  std::map<int64_t, uint64_t> expected;

  for (int batch = 0; batch < 12; ++batch) {
    const int64_t ops = rng.UniformInt(1, 8);
    struct PendingWrite {
      int64_t offset;
      int32_t size;
      uint64_t id;
    };
    std::vector<PendingWrite> writes;
    std::map<int64_t, int64_t> batch_cover;  // offset -> end, to avoid overlap.
    for (int64_t i = 0; i < ops; ++i) {
      const int32_t size = static_cast<int32_t>(512 * rng.UniformInt(1, 48));
      const int64_t offset =
          512 * rng.UniformInt(0, (cap - size) / 512);
      const bool is_write = rng.Bernoulli(0.7);
      if (is_write) {
        // Skip overlapping writes within a batch: concurrent overlapping
        // writes have no deterministic "last writer" to assert against.
        bool overlaps = false;
        for (const auto& [o, e] : batch_cover) {
          if (offset < e && o < offset + size) {
            overlaps = true;
            break;
          }
        }
        if (overlaps) {
          continue;
        }
        batch_cover[offset] = offset + size;
        driver.Submit(offset, size, true);
        writes.push_back({offset, size, driver.Accepted()});
      } else {
        driver.Submit(offset, size, false);
      }
    }
    // Let the batch land (plus any idle rebuilds).
    sim.RunUntil(sim.Now() + Seconds(2));
    ASSERT_TRUE(driver.Drained());
    for (const PendingWrite& w : writes) {
      for (int64_t s = w.offset / 512; s < (w.offset + w.size) / 512; ++s) {
        expected[s] = w.id;
      }
    }

    // Invariant 3: lag accounting is exactly dirty x N x S.
    EXPECT_DOUBLE_EQ(ctl.CurrentParityLagBytes(),
                     static_cast<double>(ctl.nvram().DirtyCount()) *
                         static_cast<double>(n_times_s));

    // Invariant 1: every sector ever written reads back its last write.
    for (const auto& [sector, tag] : expected) {
      const auto vals = ctl.ReadLogicalCurrent(sector * 512, 512);
      ASSERT_EQ(vals.size(), 1u);
      EXPECT_EQ(vals[0], ContentModel::MixTag(tag, sector))
          << policy_name << " seed " << seed << " sector " << sector;
    }
  }

  // Invariant 2: quiesce, then every touched stripe xor-checks.
  bool drained = false;
  ctl.RebuildAll([&drained] { drained = true; });
  sim.RunToEnd();
  ASSERT_TRUE(drained);
  EXPECT_EQ(ctl.nvram().DirtyCount(), 0);
  EXPECT_DOUBLE_EQ(ctl.CurrentParityLagBytes(), 0.0);
  for (int64_t s : ctl.content()->TouchedStripes()) {
    EXPECT_TRUE(ctl.content()->StripeConsistent(s))
        << policy_name << " seed " << seed << " stripe " << s;
  }
}

TEST_P(RandomOpsTest, SingleDiskFailureLosesExactlyUnprotectedStripes) {
  const auto& [policy_name, seed] = GetParam();
  const ArrayConfig cfg = TinyConfig();
  Simulator sim;
  AfraidController ctl(&sim, cfg, MakePolicy(SpecFor(policy_name)),
                       AvailabilityParamsFor(cfg));
  HostDriver driver(&sim, &ctl, cfg.MaxActive());
  Rng rng(seed * 977 + 5);
  const int64_t cap = ctl.DataCapacityBytes();

  // A burst of random block-aligned writes; remember each block's tag.
  std::map<int64_t, uint64_t> block_tag;  // block index -> tag.
  for (int i = 0; i < 30; ++i) {
    const int64_t block = rng.UniformInt(0, cap / 8192 - 1);
    driver.Submit(block * 8192, 8192, true);
    block_tag[block] = driver.Accepted();
    if (rng.Bernoulli(0.3)) {
      sim.RunUntil(sim.Now() + Milliseconds(rng.UniformInt(1, 400)));
    }
  }
  // Fail a random disk at a random near-future moment; drain I/O first so
  // "state at failure time" is unambiguous.
  sim.RunUntil(sim.Now() + Milliseconds(rng.UniformInt(0, 300)));
  while (!driver.Drained()) {
    sim.Step();
  }
  const auto victim = static_cast<int32_t>(rng.UniformInt(0, cfg.num_disks - 1));
  // Snapshot which stripes are unprotected right now (materialised: the
  // bitmap view is invalidated by the failure below).
  const auto dirty_view = ctl.nvram().DirtyStripes();
  const std::set<int64_t> dirty_at_failure(dirty_view.begin(), dirty_view.end());
  ctl.FailDisk(victim);

  // Recoverability check per written block.
  for (const auto& [block, tag] : block_tag) {
    const int64_t stripe = block / 4;
    const auto j = static_cast<int32_t>(block % 4);
    const int32_t disk = ctl.layout().DataDisk(stripe, j);
    const auto vals = ctl.ReadLogicalCurrent(block * 8192, 8192);
    const bool intact = vals[0] == ContentModel::MixTag(tag, block * 16);
    if (disk != victim) {
      EXPECT_TRUE(intact) << "untouched disk lost data: block " << block;
    } else if (dirty_at_failure.contains(stripe)) {
      EXPECT_FALSE(intact) << "stale parity cannot reconstruct block " << block;
    } else {
      EXPECT_TRUE(intact) << "redundant stripe must reconstruct block " << block;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicedSeeds, RandomOpsTest,
    ::testing::Combine(::testing::Values("raid0", "raid5", "afraid", "mttdl",
                                         "thresh", "autoswitch"),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace afraid
