// Failure injection and recovery: degraded reads/writes, the AFRAID loss
// mode (unprotected stripes on a single-disk failure), replacement-disk
// reconstruction, and recoverability invariants.

#include <gtest/gtest.h>

#include <memory>

#include "array/host_driver.h"
#include "core/afraid_controller.h"
#include "core/experiment.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

ArrayConfig TinyConfig() {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;
  cfg.track_content = true;
  return cfg;
}

class FailRig : public ::testing::Test {
 protected:
  void Build(PolicySpec spec = PolicySpec::AfraidBaseline()) {
    ctl_ = std::make_unique<AfraidController>(&sim_, TinyConfig(), MakePolicy(spec),
                                              AvailabilityParamsFor(TinyConfig()));
    driver_ = std::make_unique<HostDriver>(&sim_, ctl_.get(), 5);
  }

  // Writes one full block via request and returns its driver-assigned id.
  uint64_t WriteBlock(int64_t offset) {
    driver_->Submit(offset, 8192, true);
    sim_.RunToEnd();
    return driver_->Accepted();
  }

  void ExpectLogical(int64_t offset, int64_t len, uint64_t tag) {
    const auto vals = ctl_->ReadLogicalCurrent(offset, len);
    const int64_t first = offset / 512;
    for (size_t i = 0; i < vals.size(); ++i) {
      EXPECT_EQ(vals[i], ContentModel::MixTag(tag, first + static_cast<int64_t>(i)))
          << "sector " << i << " of block at " << offset;
    }
  }

  Simulator sim_;
  std::unique_ptr<AfraidController> ctl_;
  std::unique_ptr<HostDriver> driver_;
};

TEST_F(FailRig, DegradedReadReconstructsRedundantData) {
  Build();
  const uint64_t tag = WriteBlock(0);  // Rebuilt to redundancy by idle task.
  ASSERT_TRUE(ctl_->content()->StripeConsistent(0));
  const int32_t victim = ctl_->layout().DataDisk(0, 0);
  ctl_->FailDisk(victim);
  driver_->Submit(0, 8192, false);
  sim_.RunToEnd();
  EXPECT_EQ(driver_->Completed(), 2u);
  EXPECT_EQ(ctl_->LossEvents(), 0u);
  ExpectLogical(0, 8192, tag);  // Reconstruction returns the written data.
}

TEST_F(FailRig, DegradedReadOfUnprotectedStripeIsALoss) {
  Build(PolicySpec::Raid0());  // Parity never rebuilt: stripe stays exposed.
  WriteBlock(0);
  ASSERT_TRUE(ctl_->nvram().IsDirty(0));
  const int32_t victim = ctl_->layout().DataDisk(0, 0);
  ctl_->FailDisk(victim);
  driver_->Submit(0, 8192, false);
  sim_.RunToEnd();
  EXPECT_GT(ctl_->LossEvents(), 0u);
  EXPECT_GE(ctl_->BytesLost(), 8192);
  // And the reconstructed value is indeed NOT what was written.
  const auto vals = ctl_->ReadLogicalCurrent(0, 512);
  EXPECT_NE(vals[0], ContentModel::MixTag(1, 0));
}

TEST_F(FailRig, ParityDiskFailureLosesNothingEvenWhenDirty) {
  Build(PolicySpec::Raid0());
  WriteBlock(0);
  ASSERT_TRUE(ctl_->nvram().IsDirty(0));
  const int32_t parity_disk = ctl_->layout().ParityDisk(0);
  ctl_->FailDisk(parity_disk);
  driver_->Submit(0, 8192, false);  // Data disks alive: plain read.
  sim_.RunToEnd();
  EXPECT_EQ(ctl_->LossEvents(), 0u);
  ExpectLogical(0, 8192, 1);
}

TEST_F(FailRig, DegradedWriteKeepsDataRetrievable) {
  Build();
  WriteBlock(0);
  const int32_t victim = ctl_->layout().DataDisk(0, 1);  // Block of offset 8192.
  ctl_->FailDisk(victim);
  // Write the block that lives on the dead disk: it must be stored via
  // parity (reconstruct-write) and read back correctly through xor.
  driver_->Submit(8192, 8192, true);
  sim_.RunToEnd();
  EXPECT_EQ(driver_->Completed(), 2u);
  ExpectLogical(8192, 8192, 2);
}

TEST_F(FailRig, WritesDuringFailureRouteAroundDeadDisk) {
  Build();
  const int32_t victim = 2;
  ctl_->FailDisk(victim);
  for (int i = 0; i < 8; ++i) {
    driver_->Submit(i * 4 * 8192, 8192, true);
  }
  sim_.RunToEnd();
  EXPECT_EQ(driver_->Completed(), 8u);
  for (int i = 0; i < 8; ++i) {
    ExpectLogical(static_cast<int64_t>(i) * 4 * 8192, 8192,
                  static_cast<uint64_t>(i) + 1);
  }
}

TEST_F(FailRig, FailureMidFlightRetriesDegraded) {
  Build();
  // Start a write, kill the target disk while it is in flight.
  driver_->Submit(0, 8192, true);
  const int32_t victim = ctl_->layout().DataDisk(0, 0);
  sim_.After(MicrosecondsF(700), [&] { ctl_->FailDisk(victim); });
  sim_.RunToEnd();
  EXPECT_EQ(driver_->Completed(), 1u);
  ExpectLogical(0, 8192, 1);  // Readable via parity reconstruction.
}

TEST_F(FailRig, ReconstructionRestoresFullRedundancy) {
  Build();
  uint64_t tags[6];
  for (int i = 0; i < 6; ++i) {
    tags[i] = WriteBlock(i * 4 * 8192);
  }
  const int32_t victim = 1;
  ctl_->FailDisk(victim);
  ctl_->ReplaceDisk(victim);
  bool done = false;
  ctl_->StartReconstruction([&done] { done = true; });
  sim_.RunToEnd();
  ASSERT_TRUE(done);
  EXPECT_EQ(ctl_->recovering_disk(), -1);
  EXPECT_EQ(ctl_->LossEvents(), 0u);  // Everything was redundant.
  for (int i = 0; i < 6; ++i) {
    ExpectLogical(static_cast<int64_t>(i) * 4 * 8192, 8192, tags[i]);
  }
  for (int64_t s : ctl_->content()->TouchedStripes()) {
    EXPECT_TRUE(ctl_->content()->StripeConsistent(s)) << "stripe " << s;
  }
}

TEST_F(FailRig, ReconstructionCountsDirtyStripeLosses) {
  Build(PolicySpec::Raid0());
  WriteBlock(0);  // Stripe 0 dirty forever under RAID 0 policy.
  ASSERT_TRUE(ctl_->nvram().IsDirty(0));
  const int32_t victim = ctl_->layout().DataDisk(0, 0);
  ctl_->FailDisk(victim);
  ctl_->ReplaceDisk(victim);
  bool done = false;
  ctl_->StartReconstruction([&done] { done = true; });
  sim_.RunToEnd();
  ASSERT_TRUE(done);
  EXPECT_EQ(ctl_->LossEvents(), 1u);
  EXPECT_EQ(ctl_->BytesLost(), 8192);
  // After reconstruction the stripe is consistent again (but with the
  // reconstructed-from-stale-parity value).
  EXPECT_TRUE(ctl_->content()->StripeConsistent(0));
  EXPECT_FALSE(ctl_->nvram().IsDirty(0));
}

TEST_F(FailRig, ClientIoContinuesDuringReconstruction) {
  Build();
  for (int i = 0; i < 4; ++i) {
    WriteBlock(i * 4 * 8192);
  }
  const int32_t victim = 3;
  ctl_->FailDisk(victim);
  ctl_->ReplaceDisk(victim);
  bool done = false;
  ctl_->StartReconstruction([&done] { done = true; });
  // Interleave client traffic with the sweep.
  driver_->Submit(200 * 4 * 8192, 8192, true);
  driver_->Submit(0, 8192, false);
  sim_.RunToEnd();
  EXPECT_TRUE(done);
  EXPECT_EQ(driver_->Completed(), 6u);
  ExpectLogical(200 * 4 * 8192, 8192, 5);
}

TEST_F(FailRig, NoRebuildsWhileDiskFailed) {
  Build();
  WriteBlock(0);
  ASSERT_EQ(ctl_->nvram().DirtyCount(), 0);  // Idle rebuild already ran.
  ctl_->FailDisk(0);
  driver_->Submit(50 * 4 * 8192, 8192, true);  // Degraded write path.
  sim_.RunToEnd();
  // Degraded writes keep parity synchronous, so nothing is dirty and no
  // background rebuild activity happened while degraded.
  EXPECT_EQ(ctl_->DiskOps(DiskOpPurpose::kRebuildWrite), 1u);  // The first one.
}

}  // namespace
}  // namespace afraid
