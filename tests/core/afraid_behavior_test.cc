// AFRAID-specific behaviour: marking, idle-triggered rebuilds, preemption,
// parity-lag accounting, paritypoints, and the policy machinery.

#include <gtest/gtest.h>

#include <memory>

#include "array/host_driver.h"
#include "core/afraid_controller.h"
#include "core/experiment.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

ArrayConfig TinyConfig() {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;
  cfg.track_content = true;
  return cfg;
}

class AfraidRig : public ::testing::Test {
 protected:
  void Build(PolicySpec spec, ArrayConfig cfg) {
    cfg_ = cfg;
    ctl_ = std::make_unique<AfraidController>(&sim_, cfg_, MakePolicy(spec),
                                              AvailabilityParamsFor(cfg_));
    driver_ = std::make_unique<HostDriver>(&sim_, ctl_.get(), cfg_.MaxActive());
  }
  void Build(PolicySpec spec = PolicySpec::AfraidBaseline()) {
    Build(spec, TinyConfig());
  }

  ArrayConfig cfg_;
  Simulator sim_;
  std::unique_ptr<AfraidController> ctl_;
  std::unique_ptr<HostDriver> driver_;
};

TEST_F(AfraidRig, WriteMarksAllTouchedStripes) {
  Build();
  driver_->Submit(3 * 8192, 3 * 8192, true);  // Last block of stripe 0 + 2 more.
  sim_.RunUntil(Milliseconds(50));
  EXPECT_TRUE(ctl_->nvram().IsDirty(0));
  EXPECT_TRUE(ctl_->nvram().IsDirty(1));
  EXPECT_EQ(ctl_->nvram().DirtyCount(), 2);
}

TEST_F(AfraidRig, ParityLagCountsWholeStripes) {
  // "Any write to a stripe unprotects it all": lag = N * S per dirty stripe.
  Build();
  driver_->Submit(0, 512, true);  // A single sector still exposes N blocks.
  sim_.RunUntil(Milliseconds(50));
  EXPECT_DOUBLE_EQ(ctl_->CurrentParityLagBytes(), 4.0 * 8192.0);
}

TEST_F(AfraidRig, IdleRebuildAfterConfiguredDelay) {
  ArrayConfig cfg = TinyConfig();
  cfg.idle_delay = Milliseconds(250);
  Build(PolicySpec::AfraidBaseline(), cfg);
  driver_->Submit(0, 8192, true);
  sim_.RunToEnd();  // Write finishes, 250 ms later the rebuild runs.
  EXPECT_EQ(ctl_->nvram().DirtyCount(), 0);
  EXPECT_EQ(ctl_->StripesRebuilt(), 1u);
  EXPECT_DOUBLE_EQ(ctl_->CurrentParityLagBytes(), 0.0);
  EXPECT_TRUE(ctl_->content()->StripeConsistent(0));
}

TEST_F(AfraidRig, RebuildCoalescesAdjacentStripesInOrder) {
  Build();
  // Dirty stripes 5, 6, 7 and 20 out of order.
  driver_->Submit(20 * 4 * 8192, 8192, true);
  driver_->Submit(6 * 4 * 8192, 8192, true);
  driver_->Submit(5 * 4 * 8192, 8192, true);
  driver_->Submit(7 * 4 * 8192, 8192, true);
  sim_.RunToEnd();
  EXPECT_EQ(ctl_->StripesRebuilt(), 4u);
  EXPECT_EQ(ctl_->nvram().DirtyCount(), 0);
}

TEST_F(AfraidRig, RebuildPreemptedByForegroundBetweenStripes) {
  Build();
  // Dirty a lot of stripes, let the rebuild start, then inject a client
  // request: the pass must stop early (baseline policy: idle-only).
  for (int i = 0; i < 12; ++i) {
    driver_->Submit(i * 4 * 8192, 8192, true);
  }
  sim_.RunToEnd();
  ASSERT_EQ(ctl_->nvram().DirtyCount(), 0);  // All rebuilt eventually.

  for (int i = 0; i < 12; ++i) {
    driver_->Submit(i * 4 * 8192, 8192, true);
  }
  // Run until just after the idle detector fires and one or two stripes
  // rebuild, then submit a burst of reads.
  const uint64_t rebuilt_before = ctl_->StripesRebuilt();
  sim_.RunUntil(sim_.Now() + Milliseconds(160));
  driver_->Submit(100 * 4 * 8192, 8192, false);
  driver_->Submit(101 * 4 * 8192, 8192, false);
  sim_.RunUntil(sim_.Now() + Milliseconds(30));
  // Rebuild stopped with work remaining (preempted between stripes).
  EXPECT_GT(ctl_->nvram().DirtyCount(), 0);
  sim_.RunToEnd();
  EXPECT_EQ(ctl_->nvram().DirtyCount(), 0);
  EXPECT_GT(ctl_->StripesRebuilt(), rebuilt_before);
}

TEST_F(AfraidRig, ConcurrentWritesToOneStripeProceedInParallel) {
  Build();
  // Two writes to different blocks of stripe 0 at the same instant: both
  // should finish within a single disk-op time of each other (shared lock).
  driver_->Submit(0, 8192, true);
  driver_->Submit(8192, 8192, true);
  sim_.RunUntil(Milliseconds(60));
  EXPECT_EQ(driver_->Completed(), 2u);
  const double spread = driver_->AllLatencies().Max() - driver_->AllLatencies().Min();
  EXPECT_LT(spread, 15.0);  // Not serialised behind each other.
}

TEST_F(AfraidRig, WriteBlocksBehindInProgressRebuildOfSameStripe) {
  Build();
  driver_->Submit(0, 8192, true);
  sim_.RunToEnd();  // Stripe 0 clean again; rebuild done.
  // Dirty it, wait for the rebuild to be mid-stripe, then write again.
  driver_->Submit(0, 8192, true);
  while (!driver_->Drained()) {
    sim_.Step();
  }
  sim_.RunUntil(sim_.Now() + Milliseconds(105));  // Idle fires at +100ms.
  ASSERT_TRUE(ctl_->RebuildInProgress());
  driver_->Submit(8192, 8192, true);  // Same stripe: must wait for the lock.
  sim_.RunToEnd();
  EXPECT_EQ(driver_->Completed(), 3u);
  EXPECT_TRUE(ctl_->content()->StripeConsistent(0));
}

TEST_F(AfraidRig, ParityPointForcesRedundancy) {
  Build(PolicySpec::Raid0());  // Never rebuilds on its own.
  driver_->Submit(0, 8192, true);
  driver_->Submit(50 * 4 * 8192, 8192, true);
  sim_.RunToEnd();
  ASSERT_EQ(ctl_->nvram().DirtyCount(), 2);
  bool done = false;
  ctl_->ParityPoint(0, 8192, [&done] { done = true; });
  sim_.RunToEnd();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ctl_->nvram().IsDirty(0));
  EXPECT_TRUE(ctl_->content()->StripeConsistent(0));
}

TEST_F(AfraidRig, ParityPointOnCleanRangeCompletesImmediately) {
  Build();
  bool done = false;
  ctl_->ParityPoint(0, 4 * 8192, [&done] { done = true; });
  sim_.RunToEnd();
  EXPECT_TRUE(done);
}

TEST_F(AfraidRig, RebuildAllQuiesces) {
  Build(PolicySpec::Raid0());
  for (int i = 0; i < 5; ++i) {
    driver_->Submit(i * 4 * 8192, 8192, true);
  }
  sim_.RunToEnd();
  ASSERT_EQ(ctl_->nvram().DirtyCount(), 5);
  bool done = false;
  ctl_->RebuildAll([&done] { done = true; });
  sim_.RunToEnd();
  EXPECT_TRUE(done);
  EXPECT_EQ(ctl_->nvram().DirtyCount(), 0);
}

TEST_F(AfraidRig, TUnprotFractionTracksExposureWindow) {
  ArrayConfig cfg = TinyConfig();
  cfg.idle_delay = Milliseconds(100);
  Build(PolicySpec::AfraidBaseline(), cfg);
  driver_->Submit(0, 8192, true);
  sim_.RunToEnd();
  const SimTime end = sim_.Now();
  // Unprotected from the write start (~0) until the rebuild finished (end).
  // The fraction over [0, end] should be large (most of this short run).
  EXPECT_GT(ctl_->TUnprotFraction(), 0.5);
  // Now accrue protected time: the fraction decays.
  sim_.RunUntil(end * 10);
  EXPECT_LT(ctl_->TUnprotFraction(), 0.15);
}

TEST_F(AfraidRig, StripeThresholdPolicyForcesRebuildUnderLoad) {
  Build(PolicySpec::StripeThreshold(3));
  // Keep the array continuously busy while dirtying > 3 stripes.
  for (int i = 0; i < 8; ++i) {
    driver_->Submit(i * 4 * 8192, 8192, true);
  }
  sim_.RunUntil(Milliseconds(95));  // Before any idle firing.
  EXPECT_GT(ctl_->StripesRebuilt(), 0u);
  sim_.RunToEnd();
  EXPECT_EQ(ctl_->nvram().DirtyCount(), 0);
}

TEST_F(AfraidRig, NvramFailureForcesRaid5ModeWrites) {
  Build();
  ctl_->FailNvram();
  driver_->Submit(0, 8192, true);
  sim_.RunToEnd();
  // No marking possible; the write must have updated parity synchronously.
  EXPECT_EQ(ctl_->Raid5ModeStripeWrites(), 1u);
  EXPECT_EQ(ctl_->AfraidModeStripeWrites(), 0u);
  EXPECT_TRUE(ctl_->content()->StripeConsistent(0));
}

TEST_F(AfraidRig, FullScrubRestoresConsistencyAfterNvramLoss) {
  ArrayConfig cfg = TinyConfig();
  Build(PolicySpec::Raid0(), cfg);
  driver_->Submit(0, 8192, true);
  driver_->Submit(9 * 4 * 8192, 8192, true);
  sim_.RunToEnd();
  ASSERT_FALSE(ctl_->content()->StripeConsistent(0));
  ASSERT_FALSE(ctl_->content()->StripeConsistent(9));
  ctl_->FailNvram();
  EXPECT_EQ(ctl_->nvram().DirtyCount(), 0);  // Knowledge lost.
  bool done = false;
  ctl_->StartFullScrub([&done] { done = true; });
  sim_.RunToEnd();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ctl_->nvram().failed());
  for (int64_t s : ctl_->content()->TouchedStripes()) {
    EXPECT_TRUE(ctl_->content()->StripeConsistent(s)) << "stripe " << s;
  }
  EXPECT_DOUBLE_EQ(ctl_->CurrentParityLagBytes(), 0.0);
}

TEST_F(AfraidRig, ScrubTimeMatchesPaperBallpark) {
  // Section 3.1: full-array parity rebuild "about ten minutes for an array
  // using 2GB disks that can read at a sustained rate of 5MB/s". Our tiny
  // test disk is 2 MiB, so the scrub should take roughly (2 MiB / disk rate)
  // with overheads -- just sanity-check it is tens of seconds, not hours.
  Build(PolicySpec::AfraidBaseline());
  bool done = false;
  const SimTime start = sim_.Now();
  ctl_->StartFullScrub([&done] { done = true; });
  sim_.RunToEnd();
  ASSERT_TRUE(done);
  const double secs = ToSeconds(sim_.Now() - start);
  // 256 stripes x ~5 I/Os x ~10 ms each, with parallel reads: O(10 s).
  EXPECT_GT(secs, 1.0);
  EXPECT_LT(secs, 60.0);
}

TEST_F(AfraidRig, MttdlPolicyRevertsUnderSustainedExposure) {
  Build(PolicySpec::MttdlTarget(3e6));
  // Hammer writes with no idle: exposure accrues and the policy must start
  // issuing RAID 5-mode writes.
  for (int i = 0; i < 60; ++i) {
    driver_->Submit(i * 4 * 8192, 8192, true);
  }
  sim_.RunToEnd();
  EXPECT_GT(ctl_->Raid5ModeStripeWrites(), 0u);
}

TEST_F(AfraidRig, PolicyContextReflectsState) {
  Build();
  driver_->Submit(0, 8192, true);
  sim_.RunUntil(Milliseconds(50));
  const PolicyContext ctx = ctl_->MakePolicyContext();
  EXPECT_EQ(ctx.dirty_stripes, 1);
  EXPECT_GT(ctx.t_unprot_fraction, 0.0);
  EXPECT_EQ(ctx.avail->num_data_disks, 4);
}

}  // namespace
}  // namespace afraid
