// The experiment harness itself: determinism, report plausibility, and the
// qualitative orderings every table in the paper relies on.

#include "core/experiment.h"

#include <gtest/gtest.h>

#include "trace/workload_gen.h"

namespace afraid {
namespace {

ArrayConfig SmallConfig() {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;
  return cfg;
}

WorkloadParams FastWorkload() {
  WorkloadParams p;
  p.name = "fast";
  p.seed = 21;
  p.mean_burst_requests = 15;
  p.mean_idle_ms = 300;
  p.idle_pareto_alpha = 1.5;
  p.intra_burst_gap_ms = 8;
  p.write_fraction = 0.6;
  p.size_dist = {{4096, 0.5}, {8192, 0.5}};
  return p;
}

TEST(Experiment, Deterministic) {
  const SimReport a = Experiment(SmallConfig())
                          .Policy(PolicySpec::AfraidBaseline())
                          .Workload(FastWorkload(), 800, Minutes(30))
                          .Run();
  const SimReport b = Experiment(SmallConfig())
                          .Policy(PolicySpec::AfraidBaseline())
                          .Workload(FastWorkload(), 800, Minutes(30))
                          .Run();
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_DOUBLE_EQ(a.mean_io_ms, b.mean_io_ms);
  EXPECT_DOUBLE_EQ(a.mean_parity_lag_bytes, b.mean_parity_lag_bytes);
  EXPECT_EQ(a.stripes_rebuilt, b.stripes_rebuilt);
}

TEST(Experiment, ReportFieldsPlausible) {
  const SimReport rep = Experiment(SmallConfig())
                            .Policy(PolicySpec::AfraidBaseline())
                            .Workload(FastWorkload(), 800, Minutes(30))
                            .Run();
  EXPECT_EQ(rep.requests, 800u);
  EXPECT_EQ(rep.reads + rep.writes, rep.requests);
  EXPECT_GT(rep.mean_io_ms, 0.0);
  EXPECT_LE(rep.median_io_ms, rep.p95_io_ms);
  EXPECT_LE(rep.p95_io_ms, rep.max_io_ms);
  EXPECT_GT(rep.duration_s, 0.0);
  EXPECT_GT(rep.idle_fraction, 0.0);
  EXPECT_LT(rep.idle_fraction, 1.0);
  EXPECT_GT(rep.disk_ops_total, rep.requests);
  EXPECT_GT(rep.disk_utilization, 0.0);
  EXPECT_LT(rep.disk_utilization, 1.0);
  EXPECT_EQ(rep.policy, "AFRAID");
  EXPECT_EQ(rep.workload, "fast");
}

TEST(Experiment, SchemeOrderingsHold) {
  // The paper's core orderings on a bursty write-heavy load:
  //   latency: RAID 0 <= AFRAID < RAID 5
  //   availability (overall MTTDL): RAID 0 < AFRAID <= RAID 5.
  const SimReport r0 = Experiment(SmallConfig())
                           .Policy(PolicySpec::Raid0())
                           .Workload(FastWorkload(), 1200, Minutes(60))
                           .Run();
  const SimReport af = Experiment(SmallConfig())
                           .Policy(PolicySpec::AfraidBaseline())
                           .Workload(FastWorkload(), 1200, Minutes(60))
                           .Run();
  const SimReport r5 = Experiment(SmallConfig())
                           .Policy(PolicySpec::Raid5())
                           .Workload(FastWorkload(), 1200, Minutes(60))
                           .Run();
  EXPECT_LE(r0.mean_io_ms, af.mean_io_ms * 1.05);
  EXPECT_LT(af.mean_io_ms, r5.mean_io_ms);
  EXPECT_LT(r0.avail.mttdl_overall_hours, af.avail.mttdl_overall_hours);
  EXPECT_LE(af.avail.mttdl_overall_hours, r5.avail.mttdl_overall_hours);
  // RAID 5 never defers: no parity lag, no rebuilds.
  EXPECT_DOUBLE_EQ(r5.mean_parity_lag_bytes, 0.0);
  EXPECT_EQ(r5.stripes_rebuilt, 0u);
  EXPECT_EQ(r5.afraid_mode_writes, 0u);
  // RAID 0 never rebuilds and is always exposed once written to.
  EXPECT_EQ(r0.stripes_rebuilt, 0u);
  EXPECT_GT(r0.t_unprot_fraction, 0.9);
}

TEST(Experiment, MttdlTargetInterpolates) {
  // A mid target lands between RAID 5 and pure AFRAID on both axes.
  const SimReport af = Experiment(SmallConfig())
                           .Policy(PolicySpec::AfraidBaseline())
                           .Workload(FastWorkload(), 1200, Minutes(60))
                           .Run();
  const SimReport mid = Experiment(SmallConfig())
                             .Policy(PolicySpec::MttdlTarget(2e6))
                             .Workload(FastWorkload(), 1200, Minutes(60))
                             .Run();
  EXPECT_GE(mid.avail.mttdl_disk_hours, af.avail.mttdl_disk_hours * 0.99);
  EXPECT_GT(mid.raid5_mode_writes + mid.afraid_mode_writes, 0u);
}

TEST(Experiment, AvailabilityParamsFollowConfig) {
  ArrayConfig cfg = SmallConfig();
  cfg.num_disks = 8;
  const AvailabilityParams ap = AvailabilityParamsFor(cfg);
  EXPECT_EQ(ap.num_data_disks, 7);
  EXPECT_DOUBLE_EQ(ap.stripe_unit_bytes, 8192.0);
  EXPECT_DOUBLE_EQ(ap.disk_bytes, 2.0 * 1024 * 1024);
}

TEST(Experiment, BuilderOnExplicitTrace) {
  Trace trace;
  trace.name = "explicit";
  for (int i = 0; i < 50; ++i) {
    trace.records.push_back(
        {Milliseconds(i * 20), i * 8192, 8192, i % 2 == 0});
  }
  const SimReport rep =
      Experiment(SmallConfig()).Policy(PolicySpec::Raid5()).Trace(trace).Run();
  EXPECT_EQ(rep.requests, 50u);
  EXPECT_EQ(rep.workload, "explicit");
}

}  // namespace
}  // namespace afraid
