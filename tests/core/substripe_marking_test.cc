// Section 5 sub-stripe marking: M marking bits per stripe make the unit of
// parity reconstruction a band of height S/M, so small writes unprotect --
// and later rebuild -- only the touched fraction of the stripe.

#include <gtest/gtest.h>

#include <memory>

#include "array/host_driver.h"
#include "core/afraid_controller.h"
#include "core/experiment.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

ArrayConfig BandConfig(int32_t marks) {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;  // 16 sectors per unit.
  cfg.marks_per_stripe = marks;
  cfg.track_content = true;
  return cfg;
}

class BandRig : public ::testing::Test {
 protected:
  void Build(int32_t marks, PolicySpec spec = PolicySpec::AfraidBaseline()) {
    cfg_ = BandConfig(marks);
    ctl_ = std::make_unique<AfraidController>(&sim_, cfg_, MakePolicy(spec),
                                              AvailabilityParamsFor(cfg_));
    driver_ = std::make_unique<HostDriver>(&sim_, ctl_.get(), 5);
  }

  ArrayConfig cfg_;
  Simulator sim_;
  std::unique_ptr<AfraidController> ctl_;
  std::unique_ptr<HostDriver> driver_;
};

TEST_F(BandRig, SmallWriteMarksOnlyItsBand) {
  Build(4);  // Bands of 2 KB.
  driver_->Submit(0, 2048, true);  // Exactly band 0 of stripe 0.
  sim_.RunUntil(Milliseconds(50));
  EXPECT_EQ(ctl_->nvram().DirtyCount(), 1);
  // Lag counts one band: N * S / M = 4 * 8192 / 4.
  EXPECT_DOUBLE_EQ(ctl_->CurrentParityLagBytes(), 4.0 * 8192.0 / 4.0);
}

TEST_F(BandRig, SpanningWriteMarksAllCoveredBands) {
  Build(4);
  driver_->Submit(1024, 4096, true);  // Bytes 1K-5K: bands 0, 1, 2.
  sim_.RunUntil(Milliseconds(50));
  EXPECT_EQ(ctl_->nvram().DirtyCount(), 3);
}

TEST_F(BandRig, RebuildRefreshesBandByBand) {
  Build(4);
  driver_->Submit(0, 2048, true);
  sim_.RunToEnd();  // Idle rebuild runs.
  EXPECT_EQ(ctl_->nvram().DirtyCount(), 0);
  EXPECT_EQ(ctl_->StripesRebuilt(), 1u);  // One band.
  EXPECT_TRUE(ctl_->content()->StripeConsistent(0));
}

TEST_F(BandRig, RebuildTransfersOnlyTheBand) {
  // With M = 4 a band rebuild moves 1/4 of the data a stripe rebuild would.
  uint64_t ops_m1 = 0;
  int64_t sectors_m1 = 0;
  uint64_t ops_m4 = 0;
  int64_t sectors_m4 = 0;
  for (int32_t marks : {1, 4}) {
    Simulator sim;
    const ArrayConfig cfg = BandConfig(marks);
    AfraidController ctl(&sim, cfg, MakePolicy(PolicySpec::AfraidBaseline()),
                         AvailabilityParamsFor(cfg));
    HostDriver driver(&sim, &ctl, 5);
    driver.Submit(0, 2048, true);
    sim.RunToEnd();
    int64_t sectors = 0;
    for (int32_t d = 0; d < cfg.num_disks; ++d) {
      sectors += ctl.disk(d).SectorsTransferred();
    }
    if (marks == 1) {
      ops_m1 = ctl.TotalDiskOps();
      sectors_m1 = sectors;
    } else {
      ops_m4 = ctl.TotalDiskOps();
      sectors_m4 = sectors;
    }
  }
  EXPECT_EQ(ops_m1, ops_m4);  // Same I/O count (1 write + 4 reads + 1 write)...
  EXPECT_GT(sectors_m1, sectors_m4);  // ...but far fewer sectors moved.
}

TEST_F(BandRig, RmwAllowedWhenOtherBandDirty) {
  // Stripe has a dirty band; a RAID 5-mode write to a *clean* band of the
  // same stripe can still RMW (band-granular parity validity).
  Build(4, PolicySpec::Raid0());  // Dirty a band, never rebuild.
  driver_->Submit(0, 2048, true);  // Band 0 dirty.
  sim_.RunToEnd();
  ASSERT_EQ(ctl_->nvram().DirtyCount(), 1);

  // Inject a RAID 5-style write to band 3 via a forced-RAID 5 region.
  ctl_->SetRegionClass(0, 4 * 8192, AfraidController::RedundancyClass::kAlwaysRaid5);
  driver_->Submit(6144, 2048, true);  // Band 3 of block 0.
  sim_.RunToEnd();
  // RMW happened (old-parity read) and band 0 stayed dirty.
  EXPECT_EQ(ctl_->DiskOps(DiskOpPurpose::kOldParityRead), 1u);
  EXPECT_EQ(ctl_->nvram().DirtyCount(), 1);
  EXPECT_TRUE(ctl_->nvram().IsDirty(0));  // Band key 0 = stripe 0 band 0.
}

TEST_F(BandRig, WriteToDirtyBandForcesFullParityRefresh) {
  Build(4, PolicySpec::Raid0());
  driver_->Submit(0, 2048, true);  // Band 0 dirty.
  sim_.RunToEnd();
  ctl_->SetRegionClass(0, 4 * 8192, AfraidController::RedundancyClass::kAlwaysRaid5);
  driver_->Submit(0, 2048, true);  // Same dirty band, RAID 5-forced.
  sim_.RunToEnd();
  // Reconstruct-write path: parity rewritten from scratch, everything clean.
  EXPECT_EQ(ctl_->nvram().DirtyCount(), 0);
  EXPECT_TRUE(ctl_->content()->StripeConsistent(0));
}

TEST_F(BandRig, DegradedLossIsBandGranular) {
  Build(4, PolicySpec::Raid0());
  driver_->Submit(0, 2048, true);  // Band 0 of block 0 dirty.
  sim_.RunToEnd();
  const int32_t victim = ctl_->layout().DataDisk(0, 0);
  ctl_->FailDisk(victim);
  // Reading band 3 (clean) of the failed block reconstructs fine...
  driver_->Submit(6144, 2048, false);
  sim_.RunToEnd();
  EXPECT_EQ(ctl_->LossEvents(), 0u);
  // ...reading band 0 (dirty) is a loss.
  driver_->Submit(0, 2048, false);
  sim_.RunToEnd();
  EXPECT_EQ(ctl_->LossEvents(), 1u);
  EXPECT_EQ(ctl_->BytesLost(), 2048);
}

TEST_F(BandRig, RandomizedConsistencyAcrossMarkCounts) {
  for (int32_t marks : {1, 2, 4, 8, 16}) {
    Simulator sim;
    const ArrayConfig cfg = BandConfig(marks);
    AfraidController ctl(&sim, cfg, MakePolicy(PolicySpec::AfraidBaseline()),
                         AvailabilityParamsFor(cfg));
    HostDriver driver(&sim, &ctl, 5);
    Rng rng(1000 + static_cast<uint64_t>(marks));
    const int64_t cap = ctl.DataCapacityBytes();
    for (int i = 0; i < 50; ++i) {
      const int32_t size = static_cast<int32_t>(512 * rng.UniformInt(1, 24));
      driver.Submit(512 * rng.UniformInt(0, (cap - size) / 512), size,
                    rng.Bernoulli(0.7));
      if (rng.Bernoulli(0.3)) {
        sim.RunUntil(sim.Now() + Milliseconds(rng.UniformInt(1, 300)));
      }
    }
    sim.RunToEnd();
    bool drained = false;
    ctl.RebuildAll([&drained] { drained = true; });
    sim.RunToEnd();
    ASSERT_TRUE(drained) << "marks=" << marks;
    EXPECT_EQ(ctl.nvram().DirtyCount(), 0) << "marks=" << marks;
    for (int64_t s : ctl.content()->TouchedStripes()) {
      EXPECT_TRUE(ctl.content()->StripeConsistent(s))
          << "marks=" << marks << " stripe " << s;
    }
  }
}

}  // namespace
}  // namespace afraid
