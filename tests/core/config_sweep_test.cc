// Parameterized configuration sweeps: the core invariants must hold for
// every array geometry, not just the paper's 5-disk/8KB point. TEST_P over
// (num_disks, stripe_unit) exercises distinct parity rotations, segment
// splits and band arithmetic.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "array/host_driver.h"
#include "core/afraid_controller.h"
#include "core/experiment.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

using GeomParam = std::tuple<int32_t /*disks*/, int64_t /*stripe unit*/>;

class GeometrySweep : public ::testing::TestWithParam<GeomParam> {
 protected:
  ArrayConfig Config() const {
    ArrayConfig cfg;
    cfg.disk_spec = DiskSpec::TinyTestDisk();
    cfg.num_disks = std::get<0>(GetParam());
    cfg.stripe_unit_bytes = std::get<1>(GetParam());
    cfg.track_content = true;
    return cfg;
  }
};

TEST_P(GeometrySweep, RandomOpsStayConsistentUnderAfraid) {
  const ArrayConfig cfg = Config();
  Simulator sim;
  AfraidController ctl(&sim, cfg, MakePolicy(PolicySpec::AfraidBaseline()),
                       AvailabilityParamsFor(cfg));
  HostDriver driver(&sim, &ctl, cfg.MaxActive());
  Rng rng(std::get<0>(GetParam()) * 1000 + std::get<1>(GetParam()));
  const int64_t cap = ctl.DataCapacityBytes();
  ASSERT_GT(cap, 0);
  for (int i = 0; i < 60; ++i) {
    const int32_t size = static_cast<int32_t>(512 * rng.UniformInt(1, 40));
    driver.Submit(512 * rng.UniformInt(0, (cap - size) / 512), size,
                  rng.Bernoulli(0.7));
    if (rng.Bernoulli(0.25)) {
      sim.RunUntil(sim.Now() + Milliseconds(rng.UniformInt(1, 400)));
    }
  }
  sim.RunToEnd();
  bool drained = false;
  ctl.RebuildAll([&drained] { drained = true; });
  sim.RunToEnd();
  ASSERT_TRUE(drained);
  EXPECT_EQ(ctl.nvram().DirtyCount(), 0);
  EXPECT_DOUBLE_EQ(ctl.CurrentParityLagBytes(), 0.0);
  for (int64_t s : ctl.content()->TouchedStripes()) {
    EXPECT_TRUE(ctl.content()->StripeConsistent(s))
        << "disks=" << cfg.num_disks << " unit=" << cfg.stripe_unit_bytes
        << " stripe=" << s;
  }
}

TEST_P(GeometrySweep, Raid5WritesAlwaysConsistentImmediately) {
  const ArrayConfig cfg = Config();
  Simulator sim;
  AfraidController ctl(&sim, cfg, MakePolicy(PolicySpec::Raid5()),
                       AvailabilityParamsFor(cfg));
  HostDriver driver(&sim, &ctl, cfg.MaxActive());
  Rng rng(99 + std::get<0>(GetParam()));
  const int64_t cap = ctl.DataCapacityBytes();
  for (int i = 0; i < 40; ++i) {
    const int32_t size = static_cast<int32_t>(512 * rng.UniformInt(1, 64));
    driver.Submit(512 * rng.UniformInt(0, (cap - size) / 512), size, true);
    while (!driver.Drained()) {
      sim.Step();
    }
    EXPECT_EQ(ctl.nvram().DirtyCount(), 0);
  }
  for (int64_t s : ctl.content()->TouchedStripes()) {
    EXPECT_TRUE(ctl.content()->StripeConsistent(s));
  }
}

TEST_P(GeometrySweep, DegradedReadsRecoverRedundantData) {
  const ArrayConfig cfg = Config();
  Simulator sim;
  AfraidController ctl(&sim, cfg, MakePolicy(PolicySpec::AfraidBaseline()),
                       AvailabilityParamsFor(cfg));
  HostDriver driver(&sim, &ctl, cfg.MaxActive());
  const int64_t unit = cfg.stripe_unit_bytes;
  // One full-block write per stripe for a handful of stripes, then quiesce.
  const int32_t n = ctl.layout().data_blocks_per_stripe();
  for (int i = 0; i < 5; ++i) {
    driver.Submit(static_cast<int64_t>(i) * n * unit, static_cast<int32_t>(unit),
                  true);
  }
  sim.RunToEnd();
  bool drained = false;
  ctl.RebuildAll([&drained] { drained = true; });
  sim.RunToEnd();
  ASSERT_TRUE(drained);
  ctl.FailDisk(0);
  // Every written block must read back via reconstruction (tags intact).
  for (int i = 0; i < 5; ++i) {
    const auto vals =
        ctl.ReadLogicalCurrent(static_cast<int64_t>(i) * n * unit, unit);
    const int64_t first = static_cast<int64_t>(i) * n * unit / 512;
    for (size_t k = 0; k < vals.size(); ++k) {
      EXPECT_EQ(vals[k], ContentModel::MixTag(static_cast<uint64_t>(i) + 1,
                                              first + static_cast<int64_t>(k)));
    }
  }
  EXPECT_EQ(ctl.LossEvents(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Combine(::testing::Values(3, 4, 5, 6, 8),
                       ::testing::Values<int64_t>(4096, 8192, 16384)),
    [](const ::testing::TestParamInfo<GeomParam>& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_u" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace afraid
