// ParallelSweep: experiment fan-out must be bit-identical for any thread
// count. Mirrors the faultsim 1-vs-4-thread determinism test, but for the
// bench-style (workload x policy) grids built on the Experiment builder.

#include "core/sweep.h"

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/policy.h"
#include "core/report.h"
#include "trace/workload_gen.h"

namespace afraid {
namespace {

ArrayConfig TinyArray() {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;
  return cfg;
}

// Field-by-field exact comparison: any drift (a double ULP, a reordered
// reduction) is a determinism bug, not noise.
void ExpectReportsIdentical(const SimReport& a, const SimReport& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.mean_io_ms, b.mean_io_ms);
  EXPECT_EQ(a.mean_read_ms, b.mean_read_ms);
  EXPECT_EQ(a.mean_write_ms, b.mean_write_ms);
  EXPECT_EQ(a.median_io_ms, b.median_io_ms);
  EXPECT_EQ(a.p95_io_ms, b.p95_io_ms);
  EXPECT_EQ(a.max_io_ms, b.max_io_ms);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.idle_fraction, b.idle_fraction);
  EXPECT_EQ(a.mean_queue_depth, b.mean_queue_depth);
  EXPECT_EQ(a.mean_parity_lag_bytes, b.mean_parity_lag_bytes);
  EXPECT_EQ(a.t_unprot_fraction, b.t_unprot_fraction);
  EXPECT_EQ(a.max_dirty_stripes, b.max_dirty_stripes);
  EXPECT_EQ(a.stripes_rebuilt, b.stripes_rebuilt);
  EXPECT_EQ(a.rebuild_passes, b.rebuild_passes);
  EXPECT_EQ(a.afraid_mode_writes, b.afraid_mode_writes);
  EXPECT_EQ(a.raid5_mode_writes, b.raid5_mode_writes);
  EXPECT_EQ(a.disk_ops_total, b.disk_ops_total);
  EXPECT_EQ(a.disk_ops_rebuild, b.disk_ops_rebuild);
  EXPECT_EQ(a.disk_ops_parity, b.disk_ops_parity);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.disk_utilization, b.disk_utilization);
  EXPECT_EQ(a.avail.mttdl_overall_hours, b.avail.mttdl_overall_hours);
}

TEST(ParallelSweep, Table2ShapedGridIsThreadCountInvariant) {
  // A miniature bench_table2: 3 workloads x 3 policies, each cell replaying
  // the identical trace under a different policy.
  const ArrayConfig cfg = TinyArray();
  std::vector<WorkloadParams> workloads = PaperWorkloads();
  workloads.resize(3);
  const std::vector<PolicySpec> policies = {
      PolicySpec::Raid5(), PolicySpec::AfraidBaseline(), PolicySpec::Raid0()};
  auto cell_fn = [&](int64_t cell) {
    return Experiment(cfg)
        .Policy(policies[static_cast<size_t>(cell % 3)])
        .Workload(workloads[static_cast<size_t>(cell / 3)],
                  /*max_requests=*/400, Minutes(5))
        .Run();
  };
  const int64_t cells = static_cast<int64_t>(workloads.size()) * 3;
  const std::vector<SimReport> serial = ParallelSweep(cells, cell_fn, 1);
  const std::vector<SimReport> fanned = ParallelSweep(cells, cell_fn, 4);
  ASSERT_EQ(serial.size(), fanned.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectReportsIdentical(serial[i], fanned[i]);
  }
  // Sanity: the cells really differ from one another (the grid is not
  // trivially constant, which would mask scheduling bugs).
  EXPECT_NE(serial[0].mean_io_ms, serial[1].mean_io_ms);
}

TEST(ParallelSweep, MirrorSchemeAllWorkloadsThreadCountInvariant) {
  // The mirrored scheme replays every paper workload with bit-identical
  // reports whatever the fan-out (its replica-choice read dispatch consults
  // live queue depths and head positions, all inside one shard's sim).
  const ArrayConfig cfg = TinyArray();
  const std::vector<WorkloadParams> workloads = PaperWorkloads();
  auto cell_fn = [&](int64_t cell) {
    return Experiment(cfg)
        .Scheme("mirror")
        .Workload(workloads[static_cast<size_t>(cell)], /*max_requests=*/300,
                  Minutes(5))
        .Run();
  };
  const auto cells = static_cast<int64_t>(workloads.size());
  const std::vector<SimReport> serial = ParallelSweep(cells, cell_fn, 1);
  const std::vector<SimReport> fanned = ParallelSweep(cells, cell_fn, 8);
  ASSERT_EQ(serial.size(), fanned.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(workloads[i].name);
    EXPECT_EQ(serial[i].policy, "Mirror-SPTF");
    ExpectReportsIdentical(serial[i], fanned[i]);
  }
}

TEST(ParallelSweep, DerivedCellSeedsAreThreadCountInvariant) {
  // Cells that derive their own seed (per-cell RNG streams) stay identical
  // too: the seed is a pure function of (base, index), not of scheduling.
  const ArrayConfig cfg = TinyArray();
  auto cell_fn = [&](int64_t cell) {
    WorkloadParams wl = PaperWorkloads().front();
    wl.seed = SweepCellSeed(0xafa1d, cell);
    return Experiment(cfg)
        .Policy(PolicySpec::AfraidBaseline())
        .Workload(wl, /*max_requests=*/300, Minutes(5))
        .Run();
  };
  const std::vector<SimReport> serial = ParallelSweep(8, cell_fn, 1);
  const std::vector<SimReport> fanned = ParallelSweep(8, cell_fn, 4);
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectReportsIdentical(serial[i], fanned[i]);
  }
  // Different cells got genuinely different streams.
  EXPECT_NE(serial[0].mean_io_ms, serial[1].mean_io_ms);
  EXPECT_EQ(SweepCellSeed(0xafa1d, 3), DeriveStreamSeed(0xafa1d, 3));
}

TEST(ParallelSweep, PreservesIndexOrderAndHandlesEdgeCases) {
  auto square = [](int64_t i) { return i * i; };
  const std::vector<int64_t> r = ParallelSweep(100, square, 7);
  ASSERT_EQ(r.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(r[static_cast<size_t>(i)], i * i);
  }
  EXPECT_TRUE(ParallelSweep(0, square, 4).empty());
  EXPECT_TRUE(ParallelSweep(-3, square, 4).empty());
  // More threads than cells must not hang or skip work.
  EXPECT_EQ(ParallelSweep(2, square, 16), (std::vector<int64_t>{0, 1}));
}

TEST(SweepThreadsTest, HonoursEnvironmentKnob) {
  ASSERT_EQ(setenv("AFRAID_BENCH_THREADS", "3", 1), 0);
  EXPECT_EQ(SweepThreads(), 3);
  // Values < 1 fall back to hardware concurrency.
  ASSERT_EQ(setenv("AFRAID_BENCH_THREADS", "0", 1), 0);
  EXPECT_GE(SweepThreads(), 1);
  ASSERT_EQ(unsetenv("AFRAID_BENCH_THREADS"), 0);
  EXPECT_GE(SweepThreads(), 1);
}

}  // namespace
}  // namespace afraid
