// Streamed replay (Experiment::TraceFile) vs the monolithic compiled path
// (Experiment::Trace): the trajectory -- every latency percentile, counter,
// and availability output in the report -- must be identical at every chunk
// size, and the pipeline's memory must depend on the chunk, not the trace.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/experiment.h"
#include "core/policy.h"
#include "obs/report_io.h"
#include "trace/recorder.h"
#include "trace/trace.h"
#include "trace/workload_gen.h"

namespace afraid {
namespace {

std::string TempPath(const std::string& leaf) {
  return (std::filesystem::temp_directory_path() / leaf).string();
}

Trace PresetTrace(const std::string& name, uint64_t max_requests) {
  WorkloadParams p;
  EXPECT_TRUE(FindWorkload(name, &p));
  p.address_space_bytes = 1LL << 30;
  return GenerateWorkload(p, max_requests, Hours(24));
}

SimReport RunMonolithic(const Trace& trace, const PolicySpec& spec) {
  Experiment exp{ArrayConfig()};
  exp.Policy(spec).Trace(trace);
  return exp.Run();
}

SimReport RunStreamed(const std::string& path, const PolicySpec& spec,
                      size_t chunk_bytes, StreamStats* stats = nullptr) {
  Experiment exp{ArrayConfig()};
  StreamOptions opts;
  opts.chunk_bytes = chunk_bytes;
  exp.Policy(spec).TraceFile(path, opts);
  const SimReport rep = exp.Run();
  EXPECT_TRUE(exp.trace_status().ok) << exp.trace_status().message;
  if (stats != nullptr) {
    *stats = exp.stream_stats();
  }
  return rep;
}

// JSON carries every report field at full precision, so string equality is
// trajectory equality.
void ExpectSameReport(const SimReport& a, const SimReport& b) {
  EXPECT_EQ(SimReportToJson(a), SimReportToJson(b));
}

TEST(StreamReplay, MatchesMonolithicAcrossChunkSizes) {
  const Trace trace = PresetTrace("cello-usr", 1500);
  const std::string path = TempPath("afraid_stream_replay_cello.txt");
  ASSERT_TRUE(RecordTrace(trace, path).ok);

  const SimReport mono = RunMonolithic(trace, PolicySpec::AfraidBaseline());
  ASSERT_GT(mono.requests, 0u);

  // Tiny chunks force many feed/replay interleavings and plan-slot reuse;
  // the huge chunk degenerates to one plan, like the monolithic path.
  for (const size_t chunk : {200u, 1024u, 16384u, 4u << 20}) {
    StreamStats stats;
    const SimReport streamed =
        RunStreamed(path, PolicySpec::AfraidBaseline(), chunk, &stats);
    ExpectSameReport(streamed, mono);
    EXPECT_EQ(stats.records, trace.records.size()) << "chunk=" << chunk;
    EXPECT_GT(stats.peak_plan_bytes, 0u);
  }
  std::remove(path.c_str());
}

TEST(StreamReplay, MatchesMonolithicAcrossSchemesAndWorkloads) {
  for (const char* workload : {"cello-usr", "ATT"}) {
    const Trace trace = PresetTrace(workload, 800);
    const std::string path = TempPath("afraid_stream_replay_multi.txt");
    ASSERT_TRUE(RecordTrace(trace, path).ok);
    for (const PolicySpec& spec : {PolicySpec::Raid5(),
                                   PolicySpec::AfraidBaseline(),
                                   PolicySpec::Raid0()}) {
      const SimReport mono = RunMonolithic(trace, spec);
      const SimReport streamed = RunStreamed(path, spec, 4096);
      ExpectSameReport(streamed, mono);
    }
    std::remove(path.c_str());
  }
}

// The fixed-memory guarantee: growing the trace 8x leaves the plan ring and
// read buffers at the same high-water mark (same chunk size).
TEST(StreamReplay, PlanMemoryIndependentOfTraceLength) {
  const std::string short_path = TempPath("afraid_stream_replay_short.txt");
  const std::string long_path = TempPath("afraid_stream_replay_long.txt");
  ASSERT_TRUE(RecordTrace(PresetTrace("cello-usr", 1000), short_path).ok);
  ASSERT_TRUE(RecordTrace(PresetTrace("cello-usr", 8000), long_path).ok);

  const size_t chunk = 8192;
  StreamStats short_stats;
  StreamStats long_stats;
  RunStreamed(short_path, PolicySpec::AfraidBaseline(), chunk, &short_stats);
  RunStreamed(long_path, PolicySpec::AfraidBaseline(), chunk, &long_stats);

  EXPECT_EQ(long_stats.records, 8000u);
  EXPECT_GT(long_stats.chunks, 4 * short_stats.chunks);
  // More chunks, same bounded footprint (2x slack for per-chunk variation in
  // record counts and allocator rounding).
  EXPECT_LE(long_stats.peak_plan_bytes, 2 * short_stats.peak_plan_bytes);
  EXPECT_LE(long_stats.peak_buffer_bytes, 2 * short_stats.peak_buffer_bytes);
  std::remove(short_path.c_str());
  std::remove(long_path.c_str());
}

// A parse error mid-file surfaces through trace_status() with the monolithic
// parser's line number; the prefix before the error still replays.
TEST(StreamReplay, ParseErrorSurfacesWithLineNumber) {
  const std::string path = TempPath("afraid_stream_replay_bad.txt");
  {
    Trace good = PresetTrace("cello-usr", 50);
    ASSERT_TRUE(RecordTrace(good, path).ok);
    // Append a malformed record past the valid prefix.
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("not-a-time R 0 512\n", f);
    std::fclose(f);
  }
  Trace mono;
  const TraceStatus mono_st = LoadTraceFile(path, &mono);
  ASSERT_FALSE(mono_st.ok);

  Experiment exp{ArrayConfig()};
  StreamOptions opts;
  opts.chunk_bytes = 256;
  exp.Policy(PolicySpec::AfraidBaseline()).TraceFile(path, opts);
  const SimReport rep = exp.Run();
  EXPECT_FALSE(exp.trace_status().ok);
  EXPECT_EQ(exp.trace_status().line, mono_st.line);
  EXPECT_EQ(exp.trace_status().message, mono_st.message);
  EXPECT_EQ(rep.requests, 50u);  // The valid prefix was replayed.
  std::remove(path.c_str());
}

}  // namespace
}  // namespace afraid
