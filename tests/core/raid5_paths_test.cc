// RAID 5 write-path selection and correctness: read-modify-write,
// reconstruct-write, full-stripe write, cache-assisted RMW, and the parity
// algebra of each (checked through the content model).

#include <gtest/gtest.h>

#include "array/host_driver.h"
#include "core/afraid_controller.h"
#include "core/experiment.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

class Raid5Rig : public ::testing::Test {
 protected:
  Raid5Rig() {
    cfg_.disk_spec = DiskSpec::TinyTestDisk();
    cfg_.num_disks = 5;
    cfg_.stripe_unit_bytes = 8192;
    cfg_.track_content = true;
  }

  void Build(PolicySpec spec = PolicySpec::Raid5()) {
    ctl_ = std::make_unique<AfraidController>(&sim_, cfg_, MakePolicy(spec),
                                              AvailabilityParamsFor(cfg_));
    driver_ = std::make_unique<HostDriver>(&sim_, ctl_.get(), cfg_.MaxActive());
  }

  void Op(int64_t offset, int32_t size, bool is_write) {
    driver_->Submit(offset, size, is_write);
    sim_.RunToEnd();
  }

  uint64_t Ops(DiskOpPurpose p) { return ctl_->DiskOps(p); }

  ArrayConfig cfg_;
  Simulator sim_;
  std::unique_ptr<AfraidController> ctl_;
  std::unique_ptr<HostDriver> driver_;
};

TEST_F(Raid5Rig, SmallWriteUsesReadModifyWrite) {
  Build();
  Op(0, 8192, true);  // One of four data blocks: RMW.
  EXPECT_EQ(Ops(DiskOpPurpose::kOldDataRead), 1u);
  EXPECT_EQ(Ops(DiskOpPurpose::kOldParityRead), 1u);
  EXPECT_EQ(Ops(DiskOpPurpose::kClientWrite), 1u);
  EXPECT_EQ(Ops(DiskOpPurpose::kParityWrite), 1u);
  EXPECT_EQ(Ops(DiskOpPurpose::kReconstructRead), 0u);
  EXPECT_TRUE(ctl_->content()->StripeConsistent(0));
}

TEST_F(Raid5Rig, SubBlockWriteTransfersOnlyThatSpan) {
  Build();
  Op(1024, 2048, true);  // 2 KB inside block 0.
  // Still a full RMW, but the stripe stays consistent at sector granularity.
  EXPECT_EQ(Ops(DiskOpPurpose::kOldDataRead), 1u);
  EXPECT_TRUE(ctl_->content()->StripeConsistent(0));
  const auto vals = ctl_->ReadLogicalCurrent(1024, 2048);
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(vals[i], ContentModel::MixTag(1, 2 + static_cast<int64_t>(i)));
  }
}

TEST_F(Raid5Rig, ThreeBlockWriteUsesReconstructWrite) {
  Build();
  Op(0, 3 * 8192, true);  // 3 of 4 data blocks: reconstruct is cheaper.
  EXPECT_EQ(Ops(DiskOpPurpose::kReconstructRead), 1u);  // The missing block.
  EXPECT_EQ(Ops(DiskOpPurpose::kOldDataRead), 0u);
  EXPECT_EQ(Ops(DiskOpPurpose::kOldParityRead), 0u);
  EXPECT_EQ(Ops(DiskOpPurpose::kClientWrite), 3u);
  EXPECT_EQ(Ops(DiskOpPurpose::kParityWrite), 1u);
  EXPECT_TRUE(ctl_->content()->StripeConsistent(0));
}

TEST_F(Raid5Rig, FullStripeWriteNeedsNoReads) {
  Build();
  Op(0, 4 * 8192, true);
  EXPECT_EQ(Ops(DiskOpPurpose::kOldDataRead), 0u);
  EXPECT_EQ(Ops(DiskOpPurpose::kOldParityRead), 0u);
  EXPECT_EQ(Ops(DiskOpPurpose::kReconstructRead), 0u);
  EXPECT_EQ(Ops(DiskOpPurpose::kClientWrite), 4u);
  EXPECT_EQ(Ops(DiskOpPurpose::kParityWrite), 1u);
  EXPECT_TRUE(ctl_->content()->StripeConsistent(0));
}

TEST_F(Raid5Rig, CachedOldDataSkipsPreRead) {
  Build();
  Op(0, 8192, false);  // Populate the read cache with block 0.
  const uint64_t before = Ops(DiskOpPurpose::kOldDataRead);
  Op(0, 8192, true);  // RMW can use the cached old contents.
  EXPECT_EQ(Ops(DiskOpPurpose::kOldDataRead), before);
  EXPECT_EQ(Ops(DiskOpPurpose::kOldParityRead), 1u);  // Parity still read.
  EXPECT_TRUE(ctl_->content()->StripeConsistent(0));
}

TEST_F(Raid5Rig, WriteStagingServesOldDataForImmediateRewrite) {
  Build();
  Op(0, 8192, true);  // First write stages the block (write-through).
  const uint64_t before = Ops(DiskOpPurpose::kOldDataRead);
  Op(0, 8192, true);  // Rewrite: old data from the staging area.
  EXPECT_EQ(Ops(DiskOpPurpose::kOldDataRead), before);
  EXPECT_TRUE(ctl_->content()->StripeConsistent(0));
}

TEST_F(Raid5Rig, MultiStripeWriteKeepsEveryStripeConsistent) {
  Build();
  Op(2 * 8192, 6 * 8192, true);  // Tail of stripe 0 and into stripe 1.
  EXPECT_TRUE(ctl_->content()->StripeConsistent(0));
  EXPECT_TRUE(ctl_->content()->StripeConsistent(1));
  const auto vals = ctl_->ReadLogicalCurrent(2 * 8192, 6 * 8192);
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(vals[i], ContentModel::MixTag(1, 32 + static_cast<int64_t>(i)));
  }
}

TEST_F(Raid5Rig, Raid5ModeWriteToDirtyStripeStaysCheapAndDirty) {
  // Dirty the stripe with an AFRAID write, then switch behaviour: writes to
  // an already-unprotected stripe take the 1-I/O path even in RAID 5 mode
  // (they add no new exposure); the stripe is cleaned by the next rebuild.
  Build(PolicySpec::Raid0());  // Never rebuilds, never RAID 5 mode.
  driver_->Submit(0, 8192, true);
  sim_.RunToEnd();
  ASSERT_TRUE(ctl_->nvram().IsDirty(0));

  // Re-dispatch through a RAID 5-mode write: stripe is dirty, so it should
  // skip the RMW machinery entirely.
  const uint64_t rmw_reads_before = Ops(DiskOpPurpose::kOldParityRead);
  ClientRequest r;
  r.id = 77;
  r.offset = 8192;
  r.size = 8192;
  r.is_write = true;
  // (Same stripe 0, different block.)
  bool done = false;
  // Temporarily force RAID 5 decisions by injecting a raid5 policy write:
  // easiest is a fresh controller; instead verify via the dirty-stripe rule
  // by checking op counts on this controller's next write.
  ctl_->Submit(r, [&done] { done = true; });
  sim_.RunToEnd();
  EXPECT_TRUE(done);
  EXPECT_EQ(Ops(DiskOpPurpose::kOldParityRead), rmw_reads_before);
  EXPECT_TRUE(ctl_->nvram().IsDirty(0));
}

TEST_F(Raid5Rig, Raid5SmallWriteSlowerThanAfraidSmallWrite) {
  Build(PolicySpec::Raid5());
  Op(5 * 4 * 8192, 8192, true);
  const double raid5_ms = driver_->AllLatencies().Mean();

  // Fresh array, same op, AFRAID policy.
  Simulator sim2;
  AfraidController ctl2(&sim2, cfg_, MakePolicy(PolicySpec::AfraidBaseline()),
                        AvailabilityParamsFor(cfg_));
  HostDriver driver2(&sim2, &ctl2, cfg_.MaxActive());
  driver2.Submit(5 * 4 * 8192, 8192, true);
  sim2.RunToEnd();
  const double afraid_ms = driver2.AllLatencies().Mean();
  EXPECT_GT(raid5_ms, 1.5 * afraid_ms);
}

}  // namespace
}  // namespace afraid
