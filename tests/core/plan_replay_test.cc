// Planned replay must be invisible: feeding a controller precompiled
// RequestPlan segments (SubmitPlanned) has to walk the bit-identical event
// trajectory of plain record-by-record submission (Submit), because the plan
// is a pure precomputation of the same layout math. These tests replay the
// same trace both ways and require equal latency samples, counters, and end
// times -- the property all golden example/bench outputs rest on.

#include <gtest/gtest.h>

#include <vector>

#include "array/host_driver.h"
#include "array/plan.h"
#include "core/afraid_controller.h"
#include "core/experiment.h"
#include "disk/geometry.h"
#include "sim/simulator.h"
#include "trace/workload_gen.h"

namespace afraid {
namespace {

struct ReplayResult {
  std::vector<double> all_ms;
  std::vector<double> read_ms;
  std::vector<double> write_ms;
  uint64_t disk_ops = 0;
  SimTime end_time = 0;
};

ReplayResult RunOnce(const ArrayConfig& cfg, const Trace& trace, bool planned) {
  Simulator sim;
  AfraidController ctl(&sim, cfg, MakePolicy(PolicySpec::AfraidBaseline()),
                       AvailabilityParamsFor(cfg));
  HostDriver driver(&sim, &ctl, cfg.MaxActive());

  const DiskGeometry geom(cfg.disk_spec.zones, cfg.disk_spec.heads,
                          cfg.disk_spec.sector_bytes);
  const StripeLayout layout(cfg.num_disks, cfg.stripe_unit_bytes,
                            geom.CapacityBytes(), cfg.parity_blocks);
  const RequestPlan plan(trace, layout);
  for (size_t i = 0; i < plan.size(); ++i) {
    const PlanRecord& r = plan.record(i);
    sim.At(r.time, [&driver, &plan, r, i, planned] {
      if (planned) {
        const Span<Segment> segs = plan.segments(i);
        driver.SubmitPlanned(r.offset, r.size, r.is_write, segs.data,
                             segs.count);
      } else {
        driver.Submit(r.offset, r.size, r.is_write);
      }
    });
  }
  sim.RunToEnd();
  EXPECT_TRUE(driver.Drained());

  ReplayResult res;
  res.all_ms = driver.AllLatencies().Samples();
  res.read_ms = driver.ReadLatencies().Samples();
  res.write_ms = driver.WriteLatencies().Samples();
  res.disk_ops = ctl.TotalDiskOps();
  res.end_time = sim.Now();
  return res;
}

TEST(PlanReplay, PlannedAndUnplannedRunsAreBitIdentical) {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;

  WorkloadParams params;
  ASSERT_TRUE(FindWorkload("cello-usr", &params));
  const DiskGeometry geom(cfg.disk_spec.zones, cfg.disk_spec.heads,
                          cfg.disk_spec.sector_bytes);
  const StripeLayout layout(cfg.num_disks, cfg.stripe_unit_bytes,
                            geom.CapacityBytes(), cfg.parity_blocks);
  params.address_space_bytes = layout.data_capacity_bytes();
  const Trace trace = GenerateWorkload(params, 800, Hours(2));

  const ReplayResult planned = RunOnce(cfg, trace, /*planned=*/true);
  const ReplayResult unplanned = RunOnce(cfg, trace, /*planned=*/false);

  // Exact equality, not tolerance: the same doubles in the same order.
  EXPECT_EQ(planned.all_ms, unplanned.all_ms);
  EXPECT_EQ(planned.read_ms, unplanned.read_ms);
  EXPECT_EQ(planned.write_ms, unplanned.write_ms);
  EXPECT_EQ(planned.disk_ops, unplanned.disk_ops);
  EXPECT_EQ(planned.end_time, unplanned.end_time);
}

TEST(PlanReplay, ExperimentStillDeterministic) {
  // The Experiment front end replays through a RequestPlan internally; two
  // runs of the same config must agree exactly (the seed-stability property
  // the rest of the suite assumes).
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 4;
  cfg.stripe_unit_bytes = 8192;

  WorkloadParams params;
  ASSERT_TRUE(FindWorkload("hplajw", &params));
  const SimReport a =
      Experiment(cfg).Policy(PolicySpec::AfraidBaseline()).Workload(params, 300, Hours(1)).Run();
  const SimReport b =
      Experiment(cfg).Policy(PolicySpec::AfraidBaseline()).Workload(params, 300, Hours(1)).Run();
  EXPECT_EQ(a.mean_io_ms, b.mean_io_ms);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.disk_ops_total, b.disk_ops_total);
  EXPECT_EQ(a.duration_s, b.duration_s);
}

}  // namespace
}  // namespace afraid
