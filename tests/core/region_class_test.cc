// Section 5 per-region redundancy classes: stripe ranges pinned to RAID 5,
// AFRAID or RAID 0-style behaviour, overriding the installed policy.

#include <gtest/gtest.h>

#include <memory>

#include "array/host_driver.h"
#include "core/afraid_controller.h"
#include "core/experiment.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

ArrayConfig TinyConfig() {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;
  cfg.track_content = true;
  return cfg;
}

class RegionRig : public ::testing::Test {
 protected:
  void Build(PolicySpec spec) {
    ctl_ = std::make_unique<AfraidController>(&sim_, TinyConfig(), MakePolicy(spec),
                                              AvailabilityParamsFor(TinyConfig()));
    driver_ = std::make_unique<HostDriver>(&sim_, ctl_.get(), 5);
  }
  void Write(int64_t offset) {
    driver_->Submit(offset, 8192, true);
    sim_.RunToEnd();
  }

  Simulator sim_;
  std::unique_ptr<AfraidController> ctl_;
  std::unique_ptr<HostDriver> driver_;
};

constexpr int64_t kStripeBytes = 4 * 8192;  // N * S.

TEST_F(RegionRig, DefaultIsPolicyDefault) {
  Build(PolicySpec::AfraidBaseline());
  EXPECT_EQ(ctl_->RegionClassOf(0), AfraidController::RedundancyClass::kPolicyDefault);
}

TEST_F(RegionRig, RegionLookupAndPrecedence) {
  Build(PolicySpec::AfraidBaseline());
  ctl_->SetRegionClass(0, 10 * kStripeBytes,
                       AfraidController::RedundancyClass::kAlwaysRaid5);
  ctl_->SetRegionClass(5 * kStripeBytes, 2 * kStripeBytes,
                       AfraidController::RedundancyClass::kNeverParity);
  EXPECT_EQ(ctl_->RegionClassOf(0), AfraidController::RedundancyClass::kAlwaysRaid5);
  EXPECT_EQ(ctl_->RegionClassOf(5), AfraidController::RedundancyClass::kNeverParity);
  EXPECT_EQ(ctl_->RegionClassOf(6), AfraidController::RedundancyClass::kNeverParity);
  EXPECT_EQ(ctl_->RegionClassOf(7), AfraidController::RedundancyClass::kAlwaysRaid5);
  EXPECT_EQ(ctl_->RegionClassOf(10),
            AfraidController::RedundancyClass::kPolicyDefault);
}

TEST_F(RegionRig, AlwaysRaid5RegionWritesSynchronously) {
  Build(PolicySpec::AfraidBaseline());  // Policy would defer parity...
  ctl_->SetRegionClass(0, kStripeBytes,
                       AfraidController::RedundancyClass::kAlwaysRaid5);
  Write(0);  // ...but the region forces RAID 5.
  EXPECT_EQ(ctl_->Raid5ModeStripeWrites(), 1u);
  EXPECT_EQ(ctl_->nvram().DirtyCount(), 0);
  EXPECT_TRUE(ctl_->content()->StripeConsistent(0));
  // Outside the region, the policy rules: deferred write.
  Write(20 * kStripeBytes);
  EXPECT_EQ(ctl_->AfraidModeStripeWrites(), 1u);
}

TEST_F(RegionRig, AlwaysAfraidRegionDefersEvenUnderRaid5Policy) {
  Build(PolicySpec::Raid5());
  ctl_->SetRegionClass(0, kStripeBytes,
                       AfraidController::RedundancyClass::kAlwaysAfraid);
  driver_->Submit(0, 8192, true);
  while (!driver_->Drained()) {
    sim_.Step();
  }
  EXPECT_EQ(ctl_->AfraidModeStripeWrites(), 1u);
  EXPECT_TRUE(ctl_->nvram().IsDirty(0));
  sim_.RunToEnd();  // Idle rebuild still cleans it up.
  EXPECT_FALSE(ctl_->nvram().IsDirty(0));
}

TEST_F(RegionRig, NeverParityRegionIsSkippedByRebuilds) {
  Build(PolicySpec::AfraidBaseline());
  ctl_->SetRegionClass(0, kStripeBytes,
                       AfraidController::RedundancyClass::kNeverParity);
  Write(0);                   // RAID 0-style stripe.
  Write(30 * kStripeBytes);   // Normal stripe.
  // The rebuild pass cleaned the normal stripe but left the RAID 0 region.
  EXPECT_TRUE(ctl_->nvram().IsDirty(0));
  EXPECT_FALSE(ctl_->nvram().IsDirty(30));
  EXPECT_FALSE(ctl_->content()->StripeConsistent(0));
}

TEST_F(RegionRig, RebuildAllIgnoresNeverParityStripes) {
  Build(PolicySpec::Raid0());
  ctl_->SetRegionClass(0, kStripeBytes,
                       AfraidController::RedundancyClass::kNeverParity);
  Write(0);
  Write(10 * kStripeBytes);
  bool done = false;
  ctl_->RebuildAll([&done] { done = true; });
  sim_.RunToEnd();
  EXPECT_TRUE(done);  // Completes without waiting on the RAID 0 stripe.
  EXPECT_TRUE(ctl_->nvram().IsDirty(0));
  EXPECT_FALSE(ctl_->nvram().IsDirty(10));
}

TEST_F(RegionRig, MixedClassesCoexistInOneRun) {
  Build(PolicySpec::AfraidBaseline());
  ctl_->SetRegionClass(0, 4 * kStripeBytes,
                       AfraidController::RedundancyClass::kAlwaysRaid5);
  ctl_->SetRegionClass(8 * kStripeBytes, 4 * kStripeBytes,
                       AfraidController::RedundancyClass::kNeverParity);
  for (int64_t s = 0; s < 16; ++s) {
    Write(s * kStripeBytes);
  }
  sim_.RunToEnd();
  for (int64_t s = 0; s < 16; ++s) {
    if (s >= 8 && s < 12) {
      EXPECT_TRUE(ctl_->nvram().IsDirty(s)) << s;   // RAID 0 region.
    } else {
      EXPECT_FALSE(ctl_->nvram().IsDirty(s)) << s;  // RAID 5 or rebuilt.
      EXPECT_TRUE(ctl_->content()->StripeConsistent(s)) << s;
    }
  }
}

}  // namespace
}  // namespace afraid
