// End-to-end smoke tests: the whole stack (simulator, disks, layout, locks,
// NVRAM, caches, controller, host driver) on a tiny array with content
// tracking. These run first historically; the deeper behaviour is covered by
// the dedicated suites.

#include <gtest/gtest.h>

#include <memory>

#include "array/host_driver.h"
#include "core/afraid_controller.h"
#include "core/array_config.h"
#include "core/experiment.h"
#include "core/policy.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

ArrayConfig TinyConfig() {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;
  cfg.track_content = true;
  return cfg;
}

class Rig {
 public:
  explicit Rig(const ArrayConfig& cfg, PolicySpec spec = PolicySpec::AfraidBaseline())
      : cfg_(cfg),
        controller_(&sim_, cfg, MakePolicy(spec), AvailabilityParamsFor(cfg)),
        driver_(&sim_, &controller_, cfg.MaxActive()) {}

  Simulator& sim() { return sim_; }
  AfraidController& ctl() { return controller_; }
  HostDriver& driver() { return driver_; }

  // Issues a request now and runs the simulation until everything drains.
  void RunOp(int64_t offset, int32_t size, bool is_write) {
    driver_.Submit(offset, size, is_write);
    sim_.RunToEnd();
  }

 private:
  ArrayConfig cfg_;
  Simulator sim_;
  AfraidController controller_;
  HostDriver driver_;
};

TEST(ControllerSmoke, SingleAfraidWriteCompletesAndMarksStripe) {
  Rig rig(TinyConfig());
  rig.driver().Submit(0, 8192, /*is_write=*/true);
  // Run only a little: the write completes, then the idle rebuild kicks in
  // later; check the intermediate state first.
  rig.sim().RunUntil(Milliseconds(90));
  EXPECT_EQ(rig.driver().Completed(), 1u);
  EXPECT_EQ(rig.ctl().nvram().DirtyCount(), 1);
  EXPECT_FALSE(rig.ctl().content()->StripeConsistent(0));

  // After 100 ms of idleness the background rebuild restores redundancy.
  rig.sim().RunToEnd();
  EXPECT_EQ(rig.ctl().nvram().DirtyCount(), 0);
  EXPECT_TRUE(rig.ctl().content()->StripeConsistent(0));
  EXPECT_EQ(rig.ctl().StripesRebuilt(), 1u);
}

TEST(ControllerSmoke, Raid5WriteKeepsParityConsistentImmediately) {
  Rig rig(TinyConfig(), PolicySpec::Raid5());
  rig.RunOp(0, 8192, /*is_write=*/true);
  EXPECT_EQ(rig.ctl().nvram().DirtyCount(), 0);
  EXPECT_TRUE(rig.ctl().content()->StripeConsistent(0));
  EXPECT_EQ(rig.ctl().StripesRebuilt(), 0u);
  // RMW: old-data read + old-parity read + data write + parity write.
  EXPECT_EQ(rig.ctl().DiskOps(DiskOpPurpose::kOldParityRead), 1u);
  EXPECT_EQ(rig.ctl().DiskOps(DiskOpPurpose::kParityWrite), 1u);
}

TEST(ControllerSmoke, Raid0NeverRebuilds) {
  Rig rig(TinyConfig(), PolicySpec::Raid0());
  rig.RunOp(0, 8192, /*is_write=*/true);
  rig.RunOp(65536, 4096, /*is_write=*/true);
  EXPECT_GT(rig.ctl().nvram().DirtyCount(), 0);
  EXPECT_EQ(rig.ctl().StripesRebuilt(), 0u);
  EXPECT_EQ(rig.ctl().DiskOps(DiskOpPurpose::kParityWrite), 0u);
}

TEST(ControllerSmoke, ReadBackSeesWrittenData) {
  Rig rig(TinyConfig());
  rig.driver().Submit(16384, 16384, /*is_write=*/true);
  rig.sim().RunToEnd();
  // Request id 1 was assigned by the driver; verify the content round-trip.
  const auto vals = rig.ctl().ReadLogicalCurrent(16384, 16384);
  ASSERT_EQ(vals.size(), 32u);  // 16 KB / 512 B.
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(vals[i], ContentModel::MixTag(1, 32 + static_cast<int64_t>(i)));
  }
}

TEST(ControllerSmoke, ReadCompletesWithPlausibleLatency) {
  Rig rig(TinyConfig());
  rig.RunOp(123 * 8192, 8192, /*is_write=*/false);
  EXPECT_EQ(rig.driver().Completed(), 1u);
  const double ms = rig.driver().AllLatencies().Mean();
  EXPECT_GT(ms, 0.2);    // At least the command overhead.
  EXPECT_LT(ms, 40.0);   // Under a few revolutions + full seek.
}

TEST(ControllerSmoke, ExperimentHarnessRuns) {
  ArrayConfig cfg = TinyConfig();
  cfg.track_content = false;
  WorkloadParams wl;
  wl.name = "smoke";
  wl.seed = 7;
  wl.mean_burst_requests = 10;
  wl.mean_idle_ms = 300;
  wl.idle_pareto_alpha = 1.5;
  wl.intra_burst_gap_ms = 10;
  const SimReport rep = Experiment(cfg)
                            .Policy(PolicySpec::AfraidBaseline())
                            .Workload(wl, /*max_requests=*/500, Minutes(10))
                            .Run();
  EXPECT_EQ(rep.requests, 500u);
  EXPECT_GT(rep.mean_io_ms, 0.0);
  EXPECT_GT(rep.duration_s, 0.0);
  EXPECT_GT(rep.stripes_rebuilt, 0u);
  EXPECT_GT(rep.avail.mttdl_disk_hours, 0.0);
}

}  // namespace
}  // namespace afraid
