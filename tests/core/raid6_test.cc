// GF(256) algebra and the RAID 6 + AFRAID extension controller.

#include <gtest/gtest.h>

#include <memory>

#include "array/gf256.h"
#include "array/host_driver.h"
#include "core/raid6_controller.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

// --- GF(256) ------------------------------------------------------------------

TEST(Gf256, MulBasics) {
  EXPECT_EQ(Gf256::Mul(0, 77), 0);
  EXPECT_EQ(Gf256::Mul(1, 77), 77);
  EXPECT_EQ(Gf256::Mul(2, 0x80), 0x1d);  // The RAID 6 polynomial reduction.
}

TEST(Gf256, MulCommutativeAssociative) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<uint8_t>(rng.UniformInt(0, 255));
    const auto b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    const auto c = static_cast<uint8_t>(rng.UniformInt(0, 255));
    EXPECT_EQ(Gf256::Mul(a, b), Gf256::Mul(b, a));
    EXPECT_EQ(Gf256::Mul(Gf256::Mul(a, b), c), Gf256::Mul(a, Gf256::Mul(b, c)));
    // Distributivity over xor (field addition).
    EXPECT_EQ(Gf256::Mul(a, b ^ c),
              static_cast<uint8_t>(Gf256::Mul(a, b) ^ Gf256::Mul(a, c)));
  }
}

TEST(Gf256, DivAndInvInvertMul) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<uint8_t>(rng.UniformInt(0, 255));
    const auto b = static_cast<uint8_t>(rng.UniformInt(1, 255));
    EXPECT_EQ(Gf256::Div(Gf256::Mul(a, b), b), a);
    EXPECT_EQ(Gf256::Mul(b, Gf256::Inv(b)), 1);
  }
}

TEST(Gf256, Pow2Cycle) {
  EXPECT_EQ(Gf256::Pow2(0), 1);
  EXPECT_EQ(Gf256::Pow2(1), 2);
  EXPECT_EQ(Gf256::Pow2(8), 0x1d);
  EXPECT_EQ(Gf256::Pow2(255), 1);  // Multiplicative order of g divides 255.
  // All powers g^0..g^254 are distinct (g is a generator).
  std::set<uint8_t> seen;
  for (int i = 0; i < 255; ++i) {
    EXPECT_TRUE(seen.insert(Gf256::Pow2(i)).second) << i;
  }
}

TEST(Gf256, MulWordIsLanewise) {
  const uint64_t w = 0x0102030405060708ULL;
  const uint64_t r = Gf256::MulWord(w, 3);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(static_cast<uint8_t>(r >> (8 * i)),
              Gf256::Mul(static_cast<uint8_t>(w >> (8 * i)), 3));
  }
}

// Two-erasure recovery algebra: from P and Q, any two lost data blocks are
// solvable. With D_a and D_b lost:
//   P' = xor of surviving data,  Q' = weighted xor of surviving data,
//   D_a = [ (Q ^ Q') ^ g^b (P ^ P') ] / (g^a ^ g^b),  D_b = (P ^ P') ^ D_a.
TEST(Gf256, TwoErasureRecovery) {
  Rng rng(7);
  constexpr int kN = 4;
  for (int trial = 0; trial < 500; ++trial) {
    uint8_t d[kN];
    for (auto& x : d) {
      x = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    uint8_t p = 0;
    uint8_t q = 0;
    for (int j = 0; j < kN; ++j) {
      p ^= d[j];
      q ^= Gf256::Mul(d[j], Gf256::Pow2(j));
    }
    const int a = static_cast<int>(rng.UniformInt(0, kN - 1));
    int b = static_cast<int>(rng.UniformInt(0, kN - 1));
    if (b == a) {
      b = (a + 1) % kN;
    }
    uint8_t p_surv = 0;
    uint8_t q_surv = 0;
    for (int j = 0; j < kN; ++j) {
      if (j != a && j != b) {
        p_surv ^= d[j];
        q_surv ^= Gf256::Mul(d[j], Gf256::Pow2(j));
      }
    }
    const uint8_t pd = p ^ p_surv;  // d[a] ^ d[b].
    const uint8_t qd = q ^ q_surv;  // g^a d[a] ^ g^b d[b].
    const uint8_t denom = Gf256::Pow2(a) ^ Gf256::Pow2(b);
    const uint8_t da = Gf256::Div(qd ^ Gf256::Mul(Gf256::Pow2(b), pd), denom);
    const uint8_t db = pd ^ da;
    EXPECT_EQ(da, d[a]);
    EXPECT_EQ(db, d[b]);
  }
}

// --- Raid6Controller ------------------------------------------------------------

ArrayConfig TinyConfig() {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 6;  // 4 data + P + Q.
  cfg.stripe_unit_bytes = 8192;
  cfg.track_content = true;
  return cfg;
}

class Raid6Rig : public ::testing::Test {
 protected:
  void Build(Raid6Mode mode) {
    ctl_ = std::make_unique<Raid6Controller>(&sim_, TinyConfig(), mode);
    driver_ = std::make_unique<HostDriver>(&sim_, ctl_.get(), 6);
  }
  void Op(int64_t offset, int32_t size, bool is_write) {
    driver_->Submit(offset, size, is_write);
    sim_.RunToEnd();
  }

  Simulator sim_;
  std::unique_ptr<Raid6Controller> ctl_;
  std::unique_ptr<HostDriver> driver_;
};

TEST_F(Raid6Rig, SynchronousSmallWriteCostsSixIos) {
  Build(Raid6Mode::kSynchronous);
  Op(0, 8192, true);
  // Old data + old P + old Q + data + P + Q.
  EXPECT_EQ(ctl_->DiskOpsIssued(), 6u);
  EXPECT_EQ(ctl_->StaleP(), 0);
  EXPECT_EQ(ctl_->StaleQ(), 0);
  EXPECT_TRUE(ctl_->StripeFullyConsistent(0));
}

TEST_F(Raid6Rig, DeferQSmallWriteCostsFourIos) {
  Build(Raid6Mode::kDeferQ);
  driver_->Submit(0, 8192, true);
  while (!driver_->Drained()) {
    sim_.Step();
  }
  EXPECT_EQ(ctl_->DiskOpsIssued(), 4u);  // Old data + old P + data + P.
  EXPECT_EQ(ctl_->StaleP(), 0);
  EXPECT_EQ(ctl_->StaleQ(), 1);  // Partial protection immediately.
  EXPECT_FALSE(ctl_->StripeFullyConsistent(0));
  sim_.RunToEnd();  // Idle rebuild refreshes Q.
  EXPECT_EQ(ctl_->StaleQ(), 0);
  EXPECT_TRUE(ctl_->StripeFullyConsistent(0));
}

TEST_F(Raid6Rig, DeferBothSmallWriteCostsOneIo) {
  Build(Raid6Mode::kDeferBoth);
  driver_->Submit(0, 8192, true);
  while (!driver_->Drained()) {
    sim_.Step();
  }
  EXPECT_EQ(ctl_->DiskOpsIssued(), 1u);
  EXPECT_EQ(ctl_->StaleP(), 1);
  EXPECT_EQ(ctl_->StaleQ(), 1);
  sim_.RunToEnd();
  EXPECT_EQ(ctl_->StaleP(), 0);
  EXPECT_EQ(ctl_->StaleQ(), 0);
  EXPECT_TRUE(ctl_->StripeFullyConsistent(0));
  EXPECT_EQ(ctl_->StripesRebuilt(), 1u);
}

TEST_F(Raid6Rig, WriteLatencyAndThroughputOrderingAcrossModes) {
  // A lone small write: the pre-read phase costs a revolution that the pure
  // deferred mode avoids; sync RAID 6 and defer-Q have equal *latency* (the
  // extra Q I/Os run in parallel with P's) but different I/O counts.
  double lone_ms[3];
  uint64_t lone_ops[3];
  double burst_ms[3];
  const Raid6Mode modes[] = {Raid6Mode::kSynchronous, Raid6Mode::kDeferQ,
                             Raid6Mode::kDeferBoth};
  for (int i = 0; i < 3; ++i) {
    {
      Simulator sim;
      Raid6Controller ctl(&sim, TinyConfig(), modes[i]);
      HostDriver driver(&sim, &ctl, 6);
      driver.Submit(40 * 8192, 8192, true);
      while (!driver.Drained()) {
        sim.Step();
      }
      lone_ms[i] = driver.AllLatencies().Mean();
      lone_ops[i] = ctl.DiskOpsIssued();
    }
    {
      // A 40-write burst: the extra parity traffic of the synchronous modes
      // congests the disks, so mean latency orders by I/O count.
      Simulator sim;
      Raid6Controller ctl(&sim, TinyConfig(), modes[i]);
      HostDriver driver(&sim, &ctl, 6);
      Rng rng(17);
      for (int k = 0; k < 40; ++k) {
        driver.Submit(rng.UniformInt(0, 200) * 8192, 8192, true);
      }
      while (!driver.Drained()) {
        sim.Step();
      }
      burst_ms[i] = driver.AllLatencies().Mean();
    }
  }
  EXPECT_GT(lone_ops[0], lone_ops[1]);
  EXPECT_GT(lone_ops[1], lone_ops[2]);
  EXPECT_GT(lone_ms[0], lone_ms[2]);
  EXPECT_GT(lone_ms[1], lone_ms[2]);
  EXPECT_GT(burst_ms[0], burst_ms[1]);
  EXPECT_GT(burst_ms[1], burst_ms[2]);
}

TEST_F(Raid6Rig, RandomWritesConvergeToFullConsistency) {
  for (Raid6Mode mode : {Raid6Mode::kSynchronous, Raid6Mode::kDeferQ,
                         Raid6Mode::kDeferBoth}) {
    Simulator sim;
    Raid6Controller ctl(&sim, TinyConfig(), mode);
    HostDriver driver(&sim, &ctl, 6);
    Rng rng(11);
    const int64_t cap = ctl.DataCapacityBytes();
    for (int i = 0; i < 40; ++i) {
      const int32_t size = static_cast<int32_t>(512 * rng.UniformInt(1, 32));
      driver.Submit(512 * rng.UniformInt(0, (cap - size) / 512), size,
                    rng.Bernoulli(0.8));
      if (rng.Bernoulli(0.3)) {
        sim.RunUntil(sim.Now() + Milliseconds(rng.UniformInt(1, 200)));
      }
    }
    sim.RunToEnd();
    bool drained = false;
    ctl.RebuildAll([&drained] { drained = true; });
    sim.RunToEnd();
    ASSERT_TRUE(drained) << Raid6ModeName(mode);
    EXPECT_EQ(ctl.StaleQ(), 0);
    for (int64_t s : ctl.content()->TouchedStripes()) {
      EXPECT_TRUE(ctl.StripeFullyConsistent(s))
          << Raid6ModeName(mode) << " stripe " << s;
    }
  }
}

TEST_F(Raid6Rig, ExposureAccountingDistinguishesClasses) {
  Build(Raid6Mode::kDeferQ);
  driver_->Submit(0, 8192, true);
  while (!driver_->Drained()) {
    sim_.Step();
  }
  // Q stale, P fresh: single-failure-tolerant ("partial redundancy").
  EXPECT_GT(ctl_->TQStaleFraction(), 0.0);
  EXPECT_DOUBLE_EQ(ctl_->MeanFullyExposedBytes(), 0.0);
}

TEST(Raid6ModeNames, AllNamed) {
  EXPECT_EQ(Raid6ModeName(Raid6Mode::kSynchronous), "RAID6");
  EXPECT_EQ(Raid6ModeName(Raid6Mode::kDeferQ), "RAID6-deferQ");
  EXPECT_EQ(Raid6ModeName(Raid6Mode::kDeferBoth), "RAID6-AFRAID");
}

}  // namespace
}  // namespace afraid
