// Proves the steady-state client request path is allocation-free: after a
// warm-up that fills every pool (join blocks, scratch vectors, queue nodes,
// event slabs, disk in-flight slots, reserved latency samples), a further
// burst of reads and writes must perform zero heap allocations.
//
// The global operator new/delete overrides below count every allocation in
// the process; the test snapshots the counter between identical workload
// phases. Any new heap traffic on the request path -- a lambda too big for
// its SmallCallback buffer, a scratch vector acquired without pooling, a
// map node outside its NodePool -- fails this test.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "array/host_driver.h"
#include "core/afraid_controller.h"
#include "core/experiment.h"
#include "sim/simulator.h"

namespace {
std::atomic<uint64_t> g_new_calls{0};
}  // namespace

void* operator new(std::size_t n) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t al) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace afraid {
namespace {

// One workload phase: a deterministic mix of single-unit, sub-unit, and
// multi-stripe requests (reads and writes) with bursts and drains. Both the
// warm-up and the measured phase run this exact shape so pool high-water
// marks are identical.
void RunPhase(Simulator* sim, HostDriver* driver, int64_t cap, uint64_t salt) {
  const int64_t blocks = cap / 4096 - 8;  // Room for the largest request.
  for (int i = 0; i < 600; ++i) {
    const uint64_t h =
        (salt * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(i) * 7919u);
    const int64_t offset = static_cast<int64_t>(h % static_cast<uint64_t>(blocks)) * 4096;
    const int32_t size = (i % 7 == 0) ? 32768 : ((i % 3 == 0) ? 4096 : 8192);
    driver->Submit(offset, size, (i % 4) != 0);
    if (i % 16 == 15) {
      sim->RunUntil(sim->Now() + Milliseconds(40));
    }
  }
  sim->RunToEnd();
  ASSERT_TRUE(driver->Drained());
}

TEST(WritePathAllocTest, SteadyStateRequestPathIsAllocationFree) {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;
  cfg.track_content = false;  // Steady-state data path, not the test oracle.

  Simulator sim;
  AfraidController ctl(&sim, cfg, MakePolicy(PolicySpec::AfraidBaseline()),
                       AvailabilityParamsFor(cfg));
  HostDriver driver(&sim, &ctl, cfg.MaxActive());
  driver.ReserveLatencySamples(4096);  // Three phases x 600 requests fit.

  const int64_t cap = ctl.DataCapacityBytes();

  // Two warm-up rounds: the first grows pools to the workload's high-water
  // mark, the second confirms the marks are stable before measuring.
  RunPhase(&sim, &driver, cap, 1);
  RunPhase(&sim, &driver, cap, 2);

  const uint64_t before = g_new_calls.load(std::memory_order_relaxed);
  RunPhase(&sim, &driver, cap, 3);
  const uint64_t after = g_new_calls.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "steady-state request path performed " << (after - before)
      << " heap allocations";
}

}  // namespace
}  // namespace afraid
