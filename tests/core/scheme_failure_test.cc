// One failure/repair exercise for EVERY registered array scheme, through the
// ArrayScheme interface alone: seed known content, quiesce, fail a data
// disk, serve degraded reads and writes, replace the disk, run the
// reconstruction sweep with no concurrent traffic, and check every
// reconstructed sector against the functional ContentModel. A scheme added
// to the registry is picked up automatically.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "array/content.h"
#include "array/host_driver.h"
#include "array/scheme.h"
#include "core/experiment.h"
#include "core/scheme_registry.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

constexpr int64_t kBlock = 8192;

ArrayConfig TinyConfig() {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 5;  // Mirror normalises to 4.
  cfg.stripe_unit_bytes = kBlock;
  cfg.track_content = true;
  return cfg;
}

// Parameters are "<scheme>" or "<scheme>+declustered": the latter runs the
// identical end-to-end exercise with the declustered parity layout.
class SchemeFailureTest : public ::testing::TestWithParam<std::string> {
 protected:
  void Build() {
    scheme_ = GetParam();
    ArrayConfig base = TinyConfig();
    const auto plus = scheme_.find('+');
    if (plus != std::string::npos) {
      ASSERT_EQ(scheme_.substr(plus + 1), "declustered");
      base.layout = LayoutKind::kDeclustered;
      scheme_ = scheme_.substr(0, plus);
    }
    cfg_ = SchemeRegistry::Normalize(scheme_, base);
    SchemeContext ctx{&sim_, cfg_, PolicySpec::AfraidBaseline(),
                      AvailabilityParamsFor(cfg_), {}};
    ctl_ = SchemeRegistry::Create(scheme_, ctx);
    ASSERT_NE(ctl_, nullptr);
    if (base.layout == LayoutKind::kDeclustered) {
      // 5 disks always admit a non-degenerate width; the declustered run
      // must not silently fall back.
      ASSERT_STREQ(ctl_->layout().LayoutName(), "declustered");
    }
    driver_ = std::make_unique<HostDriver>(&sim_, ctl_.get(), 5);
  }

  // Writes one aligned block and quiesces (deferred redundancy settles via
  // the idle machinery); returns the driver-assigned tag.
  uint64_t WriteBlock(int64_t offset) {
    driver_->Submit(offset, kBlock, true);
    sim_.RunToEnd();
    return driver_->Accepted();
  }

  // Checks the stored content of the aligned block at `offset` against what
  // client write `tag` deposited, sector by sector.
  void ExpectBlock(int64_t offset, uint64_t tag) {
    const ArrayLayout& lay = ctl_->layout();
    const int64_t block_index = offset / lay.stripe_unit();
    const int64_t stripe = block_index / lay.data_blocks_per_stripe();
    const int32_t j =
        static_cast<int32_t>(block_index % lay.data_blocks_per_stripe());
    ASSERT_EQ(lay.LogicalOffsetOf(stripe, j), offset);
    const ContentModel* cm = ctl_->content();
    ASSERT_NE(cm, nullptr);
    const int64_t first = offset / cfg_.disk_spec.sector_bytes;
    for (int32_t s = 0; s < cm->sectors_per_unit(); ++s) {
      EXPECT_EQ(cm->GetData(stripe, j, s), ContentModel::MixTag(tag, first + s))
          << GetParam() << ": sector " << s << " of block at " << offset;
    }
  }

  std::string scheme_;  // Registry name, layout suffix stripped.
  ArrayConfig cfg_;
  Simulator sim_;
  std::unique_ptr<ArrayScheme> ctl_;
  std::unique_ptr<HostDriver> driver_;
};

TEST_P(SchemeFailureTest, FailDegradedRepairReconstructRoundTrip) {
  Build();

  // Phase 1: seed content across several stripes, fully quiesced.
  std::vector<std::pair<int64_t, uint64_t>> blocks;
  for (int64_t i = 0; i < 8; ++i) {
    const int64_t offset = i * 4 * kBlock;
    blocks.emplace_back(offset, WriteBlock(offset));
  }

  // Phase 2: a data disk of stripe 0 dies. Exactly one concurrent failure.
  const int32_t victim = ctl_->layout().DataDisk(0, 0);
  EXPECT_TRUE(ctl_->FailDisk(victim));
  EXPECT_FALSE(ctl_->FailDisk((victim + 1) % cfg_.num_disks));
  EXPECT_EQ(ctl_->State().failed_disk, victim);

  // Degraded reads of everything seeded complete (dead-disk blocks are
  // served from the surviving redundancy).
  const uint64_t completed_before = driver_->Completed();
  for (const auto& [offset, tag] : blocks) {
    driver_->Submit(offset, kBlock, false);
  }
  sim_.RunToEnd();
  EXPECT_EQ(driver_->Completed(), completed_before + blocks.size());

  // Degraded writes land new content, including onto the dead disk's block.
  blocks[0].second = WriteBlock(blocks[0].first);
  blocks[1].second = WriteBlock(blocks[1].first);

  // Phase 3: replacement + reconstruction sweep, no concurrent traffic.
  EXPECT_TRUE(ctl_->ReplaceDisk(victim));
  bool done = false;
  EXPECT_TRUE(ctl_->StartReconstruction([&done] { done = true; }));
  sim_.RunToEnd();
  ASSERT_TRUE(done);

  const SchemeState st = ctl_->State();
  EXPECT_EQ(st.failed_disk, -1);
  EXPECT_EQ(st.recovering_disk, -1);
  EXPECT_FALSE(st.reconstruction_active);
  // Everything was redundant at the failure (phase 1 quiesced), so the
  // round trip is loss-free on every scheme.
  EXPECT_EQ(st.loss_events, 0u);
  EXPECT_EQ(st.bytes_lost, 0);
  EXPECT_GT(ctl_->Stats().stripes_rebuilt, 0u);

  // Every seeded block reads back exactly as written.
  for (const auto& [offset, tag] : blocks) {
    ExpectBlock(offset, tag);
  }

  // The rebuilt redundancy itself is coherent again.
  const ContentModel* cm = ctl_->content();
  for (int64_t stripe : cm->TouchedStripes()) {
    if (scheme_ == "mirror") {
      // Parity slot j holds the twin copy of data block j.
      for (int32_t j = 0; j < ctl_->layout().data_blocks_per_stripe(); ++j) {
        for (int32_t s = 0; s < cm->sectors_per_unit(); ++s) {
          EXPECT_EQ(cm->GetParity(stripe, s, j), cm->GetData(stripe, j, s))
              << "stripe " << stripe;
        }
      }
    } else {
      EXPECT_TRUE(cm->StripeConsistent(stripe)) << "stripe " << stripe;
    }
  }
}

TEST_P(SchemeFailureTest, MistimedManagementOpsAreRefusedWithoutStateChange) {
  Build();
  EXPECT_FALSE(ctl_->ReplaceDisk(0));                 // Nothing failed.
  EXPECT_FALSE(ctl_->StartReconstruction([] {}));     // Nothing recovering.
  EXPECT_FALSE(ctl_->FailDisk(-1));
  EXPECT_FALSE(ctl_->FailDisk(cfg_.num_disks));
  EXPECT_EQ(ctl_->State().failed_disk, -1);

  EXPECT_TRUE(ctl_->FailDisk(0));
  EXPECT_FALSE(ctl_->FailDisk(1));   // One failure at a time.
  EXPECT_FALSE(ctl_->ReplaceDisk(1));  // Wrong disk.
  EXPECT_TRUE(ctl_->ReplaceDisk(0));
  bool done = false;
  EXPECT_TRUE(ctl_->StartReconstruction([&done] { done = true; }));
  EXPECT_FALSE(ctl_->StartReconstruction([] {}));  // Already sweeping.
  sim_.RunToEnd();
  EXPECT_TRUE(done);
  EXPECT_EQ(ctl_->State().failed_disk, -1);
  EXPECT_EQ(ctl_->State().recovering_disk, -1);
}

std::string SchemeTestName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (c == '-' || c == '+') {
      c = '_';
    }
  }
  return name;
}

std::vector<std::string> SchemeLayoutGrid() {
  std::vector<std::string> params = SchemeRegistry::List();
  for (const std::string& name : SchemeRegistry::List()) {
    if (name != "mirror") {  // Mirroring has no parity to decluster.
      params.push_back(name + "+declustered");
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredSchemes, SchemeFailureTest,
                         ::testing::ValuesIn(SchemeLayoutGrid()),
                         SchemeTestName);

}  // namespace
}  // namespace afraid
