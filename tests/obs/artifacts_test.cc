// The run-artifacts writer and the end-to-end acceptance path: an observed
// experiment must leave a run directory whose report.json, metrics.jsonl and
// trace.json all parse and agree with the in-memory results -- and observing
// a run must not change its report at all.

#include "obs/artifacts.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment.h"
#include "obs/json.h"
#include "obs/report_io.h"
#include "trace/workload_gen.h"

namespace afraid {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

ArrayConfig SmallConfig() {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;
  return cfg;
}

WorkloadParams FastWorkload() {
  WorkloadParams p;
  p.name = "fast";
  p.seed = 21;
  p.mean_burst_requests = 15;
  p.mean_idle_ms = 300;
  p.idle_pareto_alpha = 1.5;
  p.intra_burst_gap_ms = 8;
  p.write_fraction = 0.6;
  p.size_dist = {{4096, 0.5}, {8192, 0.5}};
  return p;
}

TEST(RunArtifacts, CreatesDirectoryAndWritesText) {
  const std::string dir = ::testing::TempDir() + "afraid_artifacts_text/nested";
  RunArtifacts artifacts(dir);
  ASSERT_TRUE(artifacts.ok()) << artifacts.error();
  EXPECT_EQ(artifacts.dir(), dir);
  ASSERT_TRUE(artifacts.WriteText("notes.txt", "hello\n"));
  EXPECT_EQ(Slurp(dir + "/notes.txt"), "hello\n");
}

TEST(RunArtifacts, ReportsUncreatableDirectory) {
  // A path through a regular file cannot be created as a directory.
  const std::string file = ::testing::TempDir() + "afraid_artifacts_blocker";
  std::ofstream(file) << "x";
  RunArtifacts artifacts(file + "/sub");
  EXPECT_FALSE(artifacts.ok());
  EXPECT_FALSE(artifacts.error().empty());
}

TEST(ObservedRun, ProducesValidRunDirectory) {
  const std::string dir = ::testing::TempDir() + "afraid_run_dir";
  ObserveOptions opts;
  opts.artifacts_dir = dir;
  const SimReport rep = Experiment(SmallConfig())
                            .Policy(PolicySpec::AfraidBaseline())
                            .Workload(FastWorkload(), 600, Minutes(30))
                            .Observe(opts)
                            .Run();

  // report.json is the one SimReport serializer's output and matches the
  // returned report exactly.
  const std::string report_text = Slurp(dir + "/report.json");
  EXPECT_EQ(report_text, SimReportToJson(rep) + "\n");
  JsonValue report;
  std::string err;
  ASSERT_TRUE(ParseJson(report_text, &report, &err)) << err;
  EXPECT_EQ(report.GetString("workload"), "fast");
  EXPECT_EQ(report.GetString("policy"), "AFRAID");
  EXPECT_DOUBLE_EQ(report.GetNumber("requests"), 600.0);
  EXPECT_DOUBLE_EQ(report.GetNumber("mean_io_ms"), rep.mean_io_ms);

  // metrics.jsonl: schema first, then snapshots whose rows match the schema
  // width, then the latency histogram covering every request.
  std::istringstream lines(Slurp(dir + "/metrics.jsonl"));
  std::string line;
  size_t schema_width = 0;
  size_t snapshots = 0;
  bool saw_latency_histogram = false;
  double last_t = -1.0;
  size_t line_no = 0;
  while (std::getline(lines, line)) {
    JsonValue v;
    ASSERT_TRUE(ParseJson(line, &v, &err)) << err << " at line " << line_no;
    const std::string type = v.GetString("type");
    if (line_no == 0) {
      ASSERT_EQ(type, "schema");
      schema_width = v.Get("metrics")->Items().size();
      EXPECT_GT(schema_width, 0u);
    } else if (type == "snapshot") {
      ++snapshots;
      EXPECT_EQ(v.Get("values")->Items().size(), schema_width);
      EXPECT_GE(v.GetNumber("t_s"), last_t);
      last_t = v.GetNumber("t_s");
    } else if (type == "histogram" && v.GetString("name") == "io_latency_ms") {
      saw_latency_histogram = true;
      EXPECT_DOUBLE_EQ(v.GetNumber("total"), 600.0);
    }
    ++line_no;
  }
  EXPECT_GT(snapshots, 10u);
  EXPECT_TRUE(saw_latency_histogram);

  // trace.json parses and holds a non-trivial timeline.
  JsonValue trace;
  ASSERT_TRUE(ParseJson(Slurp(dir + "/trace.json"), &trace, &err)) << err;
  ASSERT_NE(trace.Get("traceEvents"), nullptr);
  EXPECT_GT(trace.Get("traceEvents")->Items().size(), 100u);
}

TEST(ObservedRun, ReportIdenticalWithAndWithoutObservability) {
  // Observability must never perturb the simulation: the full serialized
  // report of an observed run equals the unobserved one field for field.
  const SimReport plain = Experiment(SmallConfig())
                              .Policy(PolicySpec::AfraidBaseline())
                              .Workload(FastWorkload(), 600, Minutes(30))
                              .Run();
  ObserveOptions opts;
  opts.artifacts_dir = ::testing::TempDir() + "afraid_run_identical";
  opts.metrics_interval = Milliseconds(10);  // Sample aggressively on purpose.
  const SimReport observed = Experiment(SmallConfig())
                                 .Policy(PolicySpec::AfraidBaseline())
                                 .Workload(FastWorkload(), 600, Minutes(30))
                                 .Observe(opts)
                                 .Run();
  EXPECT_EQ(SimReportToJson(plain), SimReportToJson(observed));
  EXPECT_EQ(SimReportCsvRow(plain), SimReportCsvRow(observed));
}

TEST(ObservedRun, MetricsOnlyAndTraceOnlyModes) {
  ObserveOptions opts;
  opts.artifacts_dir = ::testing::TempDir() + "afraid_run_metrics_only";
  opts.trace = false;
  Experiment(SmallConfig())
      .Policy(PolicySpec::Raid5())
      .Workload(FastWorkload(), 200, Minutes(30))
      .Observe(opts)
      .Run();
  EXPECT_TRUE(std::ifstream(opts.artifacts_dir + "/metrics.jsonl").good());
  EXPECT_FALSE(std::ifstream(opts.artifacts_dir + "/trace.json").good());

  ObserveOptions trace_only;
  trace_only.artifacts_dir = ::testing::TempDir() + "afraid_run_trace_only";
  trace_only.metrics = false;
  Experiment(SmallConfig())
      .Policy(PolicySpec::Raid5())
      .Workload(FastWorkload(), 200, Minutes(30))
      .Observe(trace_only)
      .Run();
  EXPECT_TRUE(std::ifstream(trace_only.artifacts_dir + "/trace.json").good());
  EXPECT_FALSE(std::ifstream(trace_only.artifacts_dir + "/metrics.jsonl").good());
  EXPECT_TRUE(std::ifstream(trace_only.artifacts_dir + "/report.json").good());
}

}  // namespace
}  // namespace afraid
