// Tracer unit tests plus well-formedness of the trace an observed experiment
// actually writes: balanced async spans, complete X spans, monotone per-track
// completion times, and byte-identical output across identical runs.

#include "obs/tracer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/experiment.h"
#include "obs/json.h"
#include "trace/workload_gen.h"

namespace afraid {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

ArrayConfig SmallConfig() {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;
  return cfg;
}

WorkloadParams FastWorkload() {
  WorkloadParams p;
  p.name = "fast";
  p.seed = 21;
  p.mean_burst_requests = 15;
  p.mean_idle_ms = 300;
  p.idle_pareto_alpha = 1.5;
  p.intra_burst_gap_ms = 8;
  p.write_fraction = 0.6;
  p.size_dist = {{4096, 0.5}, {8192, 0.5}};
  return p;
}

// Runs a small observed AFRAID experiment into `dir` and returns the report.
SimReport RunObservedInto(const std::string& dir) {
  ObserveOptions opts;
  opts.artifacts_dir = dir;
  return Experiment(SmallConfig())
      .Policy(PolicySpec::AfraidBaseline())
      .Workload(FastWorkload(), 600, Minutes(30))
      .Observe(opts)
      .Run();
}

TEST(Tracer, EventsCarryTheirPhaseFields) {
  Tracer t;
  const int32_t track = t.AddTrack("disk0");
  t.Complete(track, "client read", Milliseconds(1), Milliseconds(3));
  t.AsyncBegin(track, "write", 7, Milliseconds(2), "{\"bytes\":4096}");
  t.AsyncEnd(track, "write", 7, Milliseconds(5));
  t.Instant(track, "mode: RAID5", Milliseconds(4));
  t.Counter(track, "queue", Milliseconds(4), 3.0);
  ASSERT_EQ(t.NumEvents(), 5u);
  EXPECT_EQ(t.tracks(), std::vector<std::string>{"disk0"});
  EXPECT_EQ(t.events()[0].phase, 'X');
  EXPECT_EQ(t.events()[0].dur, Milliseconds(2));
  EXPECT_EQ(t.events()[1].id, 7u);
  EXPECT_EQ(t.events()[4].value, 3.0);
}

TEST(Tracer, ToJsonEmitsChromeTraceShape) {
  Tracer t;
  const int32_t track = t.AddTrack("disk0");
  t.Complete(track, "op", Milliseconds(1), Milliseconds(3));
  t.AsyncBegin(track, "req", 1, 0);
  t.AsyncEnd(track, "req", 1, Milliseconds(9));
  t.Instant(track, "flip", Milliseconds(2));
  t.Counter(track, "depth", Milliseconds(2), 2.0);

  JsonValue root;
  std::string err;
  ASSERT_TRUE(ParseJson(t.ToJson(), &root, &err)) << err;
  const JsonValue* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // thread_name metadata + the five events.
  ASSERT_EQ(events->Items().size(), 6u);

  const JsonValue& meta = events->Items()[0];
  EXPECT_EQ(meta.GetString("ph"), "M");
  EXPECT_EQ(meta.GetString("name"), "thread_name");
  EXPECT_EQ(meta.Get("args")->GetString("name"), "disk0");

  const JsonValue& x = events->Items()[1];
  EXPECT_EQ(x.GetString("ph"), "X");
  EXPECT_DOUBLE_EQ(x.GetNumber("ts"), 1000.0);   // 1 ms in us.
  EXPECT_DOUBLE_EQ(x.GetNumber("dur"), 2000.0);  // 2 ms in us.

  const JsonValue& b = events->Items()[2];
  EXPECT_EQ(b.GetString("ph"), "b");
  EXPECT_EQ(b.GetString("cat"), "disk0");
  ASSERT_NE(b.Get("id"), nullptr);

  EXPECT_EQ(events->Items()[4].GetString("s"), "t");
  EXPECT_DOUBLE_EQ(events->Items()[5].Get("args")->GetNumber("value"), 2.0);
}

TEST(TracerWellFormedness, ObservedRunTraceIsWellFormed) {
  const std::string dir = ::testing::TempDir() + "afraid_tracer_wf";
  const SimReport rep = RunObservedInto(dir);
  ASSERT_GT(rep.requests, 0u);

  JsonValue root;
  std::string err;
  ASSERT_TRUE(ParseJson(Slurp(dir + "/trace.json"), &root, &err)) << err;
  const JsonValue* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->Items().size(), 100u) << "observed run produced a near-empty trace";

  std::map<int64_t, std::string> track_names;
  std::map<int64_t, double> last_x_end;                           // tid -> ts+dur.
  std::map<std::tuple<int64_t, std::string, int64_t>, int> open;  // async spans.
  size_t x_spans = 0;
  size_t async_begins = 0;

  for (const JsonValue& ev : events->Items()) {
    const std::string ph = ev.GetString("ph");
    ASSERT_FALSE(ph.empty());
    ASSERT_NE(ev.Get("pid"), nullptr);
    ASSERT_NE(ev.Get("tid"), nullptr);
    const int64_t tid = ev.Get("tid")->AsInt();
    if (ph == "M") {
      ASSERT_EQ(ev.GetString("name"), "thread_name");
      track_names[tid] = ev.Get("args")->GetString("name");
      continue;
    }
    ASSERT_TRUE(ph == "X" || ph == "b" || ph == "e" || ph == "i" || ph == "C")
        << "unknown phase " << ph;
    // Every non-metadata event sits on a declared track and a valid clock.
    ASSERT_TRUE(track_names.count(tid)) << "event on undeclared track " << tid;
    ASSERT_NE(ev.Get("ts"), nullptr);
    EXPECT_GE(ev.GetNumber("ts"), 0.0);

    if (ph == "X") {
      ++x_spans;
      ASSERT_NE(ev.Get("dur"), nullptr) << "incomplete X span";
      EXPECT_GE(ev.GetNumber("dur"), 0.0);
      // X spans are emitted from completion callbacks, so per-track end
      // times (ts + dur) appear in non-decreasing simulated-time order.
      const double end = ev.GetNumber("ts") + ev.GetNumber("dur");
      auto it = last_x_end.find(tid);
      if (it != last_x_end.end()) {
        EXPECT_GE(end, it->second - 1e-9)
            << "X spans out of completion order on track " << track_names[tid];
      }
      last_x_end[tid] = end;
    } else if (ph == "b" || ph == "e") {
      ASSERT_NE(ev.Get("id"), nullptr);
      EXPECT_EQ(ev.GetString("cat"), track_names[tid]);
      const auto key =
          std::make_tuple(tid, ev.GetString("name"), ev.Get("id")->AsInt());
      if (ph == "b") {
        ++async_begins;
        ++open[key];
      } else {
        ASSERT_GT(open[key], 0) << "async end without begin: " << ev.GetString("name");
        --open[key];
      }
    }
  }

  for (const auto& [key, count] : open) {
    EXPECT_EQ(count, 0) << "unbalanced async span " << std::get<1>(key) << " id "
                        << std::get<2>(key);
  }
  // The run actually exercised the instrumentation: disk ops as X spans and
  // one async client span per request.
  EXPECT_GT(x_spans, rep.requests);
  EXPECT_GE(async_begins, rep.requests);

  // All expected tracks are present: driver, controller, rebuild, faults,
  // and one per disk.
  std::vector<std::string> names;
  for (const auto& [tid, name] : track_names) {
    names.push_back(name);
  }
  for (const char* expected :
       {"driver", "controller", "rebuild", "disk0", "disk4"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing track " << expected;
  }
}

TEST(TracerGolden, IdenticalRunsWriteIdenticalArtifacts) {
  const std::string dir_a = ::testing::TempDir() + "afraid_tracer_golden_a";
  const std::string dir_b = ::testing::TempDir() + "afraid_tracer_golden_b";
  RunObservedInto(dir_a);
  RunObservedInto(dir_b);
  EXPECT_EQ(Slurp(dir_a + "/trace.json"), Slurp(dir_b + "/trace.json"));
  EXPECT_EQ(Slurp(dir_a + "/metrics.jsonl"), Slurp(dir_b + "/metrics.jsonl"));
  EXPECT_EQ(Slurp(dir_a + "/report.json"), Slurp(dir_b + "/report.json"));
}

}  // namespace
}  // namespace afraid
