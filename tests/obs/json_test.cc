#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace afraid {
namespace {

TEST(JsonWriter, NestedContainersAndCommaPlacement) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").Value(int64_t{1});
  w.Key("b").BeginArray().Value(2.5).Value("x").Value(true).Null().EndArray();
  w.Key("c").BeginObject().Key("d").Value(uint64_t{7}).EndObject();
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(),
            "{\"a\":1,\"b\":[2.5,\"x\",true,null],\"c\":{\"d\":7}}");
}

TEST(JsonWriter, RawSplicesVerbatim) {
  JsonWriter w;
  w.BeginObject().Key("args").Raw("{\"k\":1}").EndObject();
  EXPECT_EQ(std::move(w).Take(), "{\"args\":{\"k\":1}}");
}

TEST(JsonEscape, QuotesBackslashesAndControlChars) {
  const std::string lit = JsonEscape("a\"b\\c\n\t\x01");
  JsonValue v;
  ASSERT_TRUE(ParseJson(lit, &v));
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "a\"b\\c\n\t\x01");
}

TEST(JsonRoundTrip, StringsSurviveWriterAndParser) {
  JsonWriter w;
  w.BeginArray().Value("plain").Value("q\"uote").Value("new\nline").EndArray();
  JsonValue v;
  ASSERT_TRUE(ParseJson(std::move(w).Take(), &v));
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.Items().size(), 3u);
  EXPECT_EQ(v.Items()[0].AsString(), "plain");
  EXPECT_EQ(v.Items()[1].AsString(), "q\"uote");
  EXPECT_EQ(v.Items()[2].AsString(), "new\nline");
}

TEST(JsonRoundTrip, NonFiniteDoubles) {
  // The availability model legitimately reports infinite MTTDLs; the writer
  // emits the bare literals and the reader must take them back.
  JsonWriter w;
  w.BeginArray()
      .Value(std::numeric_limits<double>::infinity())
      .Value(-std::numeric_limits<double>::infinity())
      .Value(std::numeric_limits<double>::quiet_NaN())
      .EndArray();
  JsonValue v;
  ASSERT_TRUE(ParseJson(std::move(w).Take(), &v));
  ASSERT_EQ(v.Items().size(), 3u);
  EXPECT_TRUE(std::isinf(v.Items()[0].AsDouble()));
  EXPECT_GT(v.Items()[0].AsDouble(), 0.0);
  EXPECT_TRUE(std::isinf(v.Items()[1].AsDouble()));
  EXPECT_LT(v.Items()[1].AsDouble(), 0.0);
  EXPECT_TRUE(std::isnan(v.Items()[2].AsDouble()));
}

TEST(JsonParser, ObjectLookupAndFallbacks) {
  JsonValue v;
  ASSERT_TRUE(ParseJson("{\"n\":3.5,\"s\":\"hi\",\"o\":{\"k\":false}}", &v));
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.GetNumber("n"), 3.5);
  EXPECT_EQ(v.GetString("s"), "hi");
  EXPECT_DOUBLE_EQ(v.GetNumber("absent", -1.0), -1.0);
  EXPECT_EQ(v.GetString("absent", "dflt"), "dflt");
  const JsonValue* o = v.Get("o");
  ASSERT_NE(o, nullptr);
  const JsonValue* k = o->Get("k");
  ASSERT_NE(k, nullptr);
  EXPECT_FALSE(k->AsBool());
  EXPECT_EQ(v.Get("absent"), nullptr);
}

TEST(JsonParser, RejectsMalformedInput) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(ParseJson("{", &v, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(ParseJson("[1,", &v));
  EXPECT_FALSE(ParseJson("tru", &v));
  EXPECT_FALSE(ParseJson("{\"a\" 1}", &v));
  EXPECT_FALSE(ParseJson("[1] trailing", &v));
  EXPECT_FALSE(ParseJson("", &v));
}

TEST(JsonParser, NumbersIntegerAndScientific) {
  JsonValue v;
  ASSERT_TRUE(ParseJson("[-42,0.125,6.02e23]", &v));
  EXPECT_EQ(v.Items()[0].AsInt(), -42);
  EXPECT_DOUBLE_EQ(v.Items()[1].AsDouble(), 0.125);
  EXPECT_DOUBLE_EQ(v.Items()[2].AsDouble(), 6.02e23);
}

}  // namespace
}  // namespace afraid
