#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "sim/time.h"

namespace afraid {
namespace {

TEST(MetricsRegistry, SnapshotRecordsOneRowOfAllScalars) {
  MetricsRegistry m;
  const MetricId c = m.AddCounter("ops");
  const MetricId g = m.AddGauge("depth");
  ASSERT_EQ(m.NumScalars(), 2u);

  m.Inc(c);
  m.Inc(c, 2.0);
  m.Set(g, 5.0);
  m.Snapshot(Seconds(1));
  m.Set(g, 1.0);
  m.Snapshot(Seconds(2));

  ASSERT_EQ(m.NumSnapshots(), 2u);
  EXPECT_EQ(m.rows()[0].time, Seconds(1));
  EXPECT_EQ(m.rows()[0].values, (std::vector<double>{3.0, 5.0}));
  EXPECT_EQ(m.rows()[1].values, (std::vector<double>{3.0, 1.0}));
}

TEST(MetricsRegistry, SamplersPullBeforeEachRow) {
  MetricsRegistry m;
  const MetricId g = m.AddGauge("live");
  double live_state = 7.0;
  int sampled_at = 0;
  m.AddSampler([&, g](SimTime) {
    m.Set(g, live_state);
    ++sampled_at;
  });

  m.Snapshot(0);
  live_state = 9.0;
  m.Snapshot(Seconds(1));
  EXPECT_EQ(sampled_at, 2);
  EXPECT_DOUBLE_EQ(m.rows()[0].values[0], 7.0);
  EXPECT_DOUBLE_EQ(m.rows()[1].values[0], 9.0);
}

TEST(MetricsRegistry, EqualSnapshotTimesAreAllowed) {
  // The experiment loop snapshots at t=0 and again at the first event if it
  // fires at t=0; non-decreasing times must be accepted.
  MetricsRegistry m;
  m.AddGauge("g");
  m.Snapshot(Seconds(3));
  m.Snapshot(Seconds(3));
  EXPECT_EQ(m.NumSnapshots(), 2u);
}

TEST(MetricsRegistry, FindHistogram) {
  MetricsRegistry m;
  Histogram* h = m.AddHistogram("lat", 0.0, 1.0, 4);
  h->Add(0.5);
  EXPECT_EQ(m.FindHistogram("lat"), h);
  EXPECT_EQ(m.FindHistogram("absent"), nullptr);
}

TEST(MetricsRegistry, JsonLinesAreSelfDescribingAndParse) {
  MetricsRegistry m;
  m.AddCounter("ops");
  m.AddGauge("depth");
  Histogram* h = m.AddHistogram("lat", 0.0, 2.0, 3);
  h->Add(-1.0);
  h->Add(1.0);
  h->Add(99.0);
  m.Snapshot(0);
  m.Snapshot(Milliseconds(100));

  std::istringstream lines(m.ToJsonLines());
  std::string line;
  std::vector<JsonValue> records;
  while (std::getline(lines, line)) {
    JsonValue v;
    std::string err;
    ASSERT_TRUE(ParseJson(line, &v, &err)) << err << " in: " << line;
    records.push_back(std::move(v));
  }
  // Schema, two snapshots, one histogram.
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].GetString("type"), "schema");
  const JsonValue* schema_metrics = records[0].Get("metrics");
  ASSERT_NE(schema_metrics, nullptr);
  ASSERT_EQ(schema_metrics->Items().size(), 2u);
  EXPECT_EQ(schema_metrics->Items()[0].GetString("name"), "ops");
  EXPECT_EQ(schema_metrics->Items()[0].GetString("kind"), "counter");
  EXPECT_EQ(schema_metrics->Items()[1].GetString("kind"), "gauge");

  for (size_t i = 1; i <= 2; ++i) {
    EXPECT_EQ(records[i].GetString("type"), "snapshot");
    const JsonValue* values = records[i].Get("values");
    ASSERT_NE(values, nullptr);
    // Every snapshot row carries exactly one value per schema entry.
    EXPECT_EQ(values->Items().size(), schema_metrics->Items().size());
  }
  EXPECT_DOUBLE_EQ(records[2].GetNumber("t_s"), 0.1);

  EXPECT_EQ(records[3].GetString("type"), "histogram");
  EXPECT_EQ(records[3].GetString("name"), "lat");
  EXPECT_DOUBLE_EQ(records[3].GetNumber("bucket_width"), 2.0);
  EXPECT_DOUBLE_EQ(records[3].GetNumber("underflow"), 1.0);
  EXPECT_DOUBLE_EQ(records[3].GetNumber("overflow"), 1.0);
  EXPECT_DOUBLE_EQ(records[3].GetNumber("total"), 3.0);
  ASSERT_EQ(records[3].Get("counts")->Items().size(), 3u);
}

}  // namespace
}  // namespace afraid
