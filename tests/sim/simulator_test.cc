#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace afraid {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_TRUE(sim.Idle());
}

TEST(Simulator, AfterAdvancesClockToEventTime) {
  Simulator sim;
  SimTime seen = -1;
  sim.After(Milliseconds(5), [&] { seen = sim.Now(); });
  sim.RunToEnd();
  EXPECT_EQ(seen, Milliseconds(5));
  EXPECT_EQ(sim.Now(), Milliseconds(5));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.After(Milliseconds(10), [&] { ++fired; });
  sim.After(Milliseconds(30), [&] { ++fired; });
  sim.RunUntil(Milliseconds(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Milliseconds(20));
  sim.RunToEnd();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), Milliseconds(30));
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.RunUntil(Seconds(3));
  EXPECT_EQ(sim.Now(), Seconds(3));
}

TEST(Simulator, EventsScheduleMoreEvents) {
  Simulator sim;
  std::vector<SimTime> times;
  std::function<void()> chain = [&] {
    times.push_back(sim.Now());
    if (times.size() < 5) {
      sim.After(Milliseconds(10), chain);
    }
  };
  sim.After(0, chain);
  sim.RunToEnd();
  ASSERT_EQ(times.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(times[i], Milliseconds(10) * static_cast<int64_t>(i));
  }
}

TEST(Simulator, CancelPendingEvent) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.After(Milliseconds(10), [&] { ++fired; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunToEnd();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.After(1, [&] { ++fired; });
  sim.After(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(Simulator, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.After(i, [] {});
  }
  sim.RunToEnd();
  EXPECT_EQ(sim.EventsProcessed(), 7u);
}

TEST(Simulator, NextEventTimeIsConstCorrect) {
  Simulator sim;
  const EventId id = sim.After(4, [] {});
  sim.After(9, [] {});
  sim.Cancel(id);
  const Simulator& csim = sim;  // Readable from const observers.
  EXPECT_EQ(csim.NextEventTime(), 9);
  EXPECT_FALSE(csim.Idle());
  EXPECT_EQ(csim.PendingEvents(), 1u);
}

TEST(Simulator, SameTimeEventsFifoEvenWhenScheduledFromEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.After(10, [&] {
    order.push_back(1);
    sim.After(0, [&] { order.push_back(3); });  // Same instant, but later seq.
  });
  sim.After(10, [&] { order.push_back(2); });
  sim.RunToEnd();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace afraid
