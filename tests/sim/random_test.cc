#include "sim/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace afraid {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1'000'000), b.UniformInt(0, 1'000'000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1'000'000) == b.UniformInt(0, 1'000'000)) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.ExponentialMean(25.0);
  }
  EXPECT_NEAR(sum / n, 25.0, 0.5);
}

TEST(Rng, ParetoRespectsMinimumAndCap) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Pareto(1.5, 10.0, 500.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 500.0);
  }
}

TEST(Rng, ParetoMeanMatchesTheory) {
  // Untruncated Pareto mean = alpha*xm/(alpha-1).
  Rng rng(17);
  const double alpha = 2.5;
  const double xm = 4.0;
  double sum = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Pareto(alpha, xm);
  }
  EXPECT_NEAR(sum / n, alpha * xm / (alpha - 1.0), 0.15);
}

TEST(Rng, BernoulliFraction) {
  Rng rng(19);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    heads += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(Rng, GeometricTrialsMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.GeometricTrials(0.1));
  }
  EXPECT_NEAR(sum / n, 10.0, 0.3);  // Mean trials = 1/p.
}

TEST(Rng, GeometricTrialsAtLeastOne) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.GeometricTrials(0.99), 1);
  }
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.Fork();
  // The child stream should not mirror the parent.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1'000'000) == child.UniformInt(0, 1'000'000)) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(DeriveStreamSeed, DeterministicAndOrderIndependent) {
  // Pure function of (base, stream): the same pair always maps to the same
  // seed, however many other streams were derived in between. This is what
  // makes parallel Monte-Carlo lifetimes independent of thread scheduling.
  EXPECT_EQ(DeriveStreamSeed(1, 0), DeriveStreamSeed(1, 0));
  EXPECT_NE(DeriveStreamSeed(1, 0), DeriveStreamSeed(1, 1));
  EXPECT_NE(DeriveStreamSeed(1, 0), DeriveStreamSeed(2, 0));
  // Zero base must not collapse to a degenerate stream family.
  EXPECT_NE(DeriveStreamSeed(0, 0), 0u);
  EXPECT_NE(DeriveStreamSeed(0, 0), DeriveStreamSeed(0, 1));
}

TEST(DeriveStreamSeed, AdjacentStreamsAreDecorrelated) {
  // Rngs seeded from adjacent stream indices should behave independently.
  Rng a(DeriveStreamSeed(7, 100));
  Rng b(DeriveStreamSeed(7, 101));
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.UniformInt(0, 1'000'000) == b.UniformInt(0, 1'000'000)) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace afraid
