#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/random.h"

namespace afraid {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
  EXPECT_EQ(q.NextTime(), kSimTimeNever);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  while (!q.Empty()) {
    q.PopNext().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(42, [&order, i] { order.push_back(i); });
  }
  while (!q.Empty()) {
    q.PopNext().fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, PopReturnsScheduledTime) {
  EventQueue q;
  q.Schedule(1234, [] {});
  EXPECT_EQ(q.NextTime(), 1234);
  auto fired = q.PopNext();
  EXPECT_EQ(fired.time, 1234);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.Schedule(10, [&] { ++fired; });
  q.Schedule(20, [&] { ++fired; });
  EXPECT_TRUE(q.Cancel(a));
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_EQ(q.NextTime(), 20);
  while (!q.Empty()) {
    q.PopNext().fn();
  }
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId a = q.Schedule(10, [] {});
  EXPECT_TRUE(q.Cancel(a));
  EXPECT_FALSE(q.Cancel(a));
}

TEST(EventQueue, CancelFiredEventFails) {
  EventQueue q;
  const EventId a = q.Schedule(10, [] {});
  q.PopNext();
  EXPECT_FALSE(q.Cancel(a));
}

TEST(EventQueue, CancelInvalidIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(999));
}

TEST(EventQueue, CancelHeadThenNextTimeSkips) {
  EventQueue q;
  const EventId a = q.Schedule(5, [] {});
  q.Schedule(10, [] {});
  q.Cancel(a);
  EXPECT_EQ(q.NextTime(), 10);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.Schedule(1, [] {});
  q.Schedule(2, [] {});
  q.Clear();
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.NextTime(), kSimTimeNever);
}

// Property: against a shadow model, random schedule/cancel/pop sequences
// always pop live events in (time, seq) order.
TEST(EventQueueProperty, RandomizedAgainstShadowModel) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    EventQueue q;
    struct Shadow {
      SimTime time;
      EventId id;
      bool cancelled = false;
      std::shared_ptr<bool> fired = std::make_shared<bool>(false);
    };
    std::vector<Shadow> shadow;

    for (int step = 0; step < 2000; ++step) {
      const double roll = rng.UniformDouble(0, 1);
      if (roll < 0.55) {
        const SimTime t = rng.UniformInt(0, 1000);
        Shadow s;
        s.time = t;
        s.id = q.Schedule(t, [flag = s.fired] { *flag = true; });
        shadow.push_back(std::move(s));
      } else if (roll < 0.75 && !shadow.empty()) {
        auto& s = shadow[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(shadow.size()) - 1))];
        EXPECT_EQ(q.Cancel(s.id), !s.cancelled && !*s.fired);
        s.cancelled = true;
      } else if (!q.Empty()) {
        q.PopNext().fn();
      }
    }
    // Whatever is left must drain in non-decreasing time order.
    SimTime prev = -1;
    while (!q.Empty()) {
      auto fired = q.PopNext();
      EXPECT_GE(fired.time, prev);
      prev = fired.time;
    }
  }
}

}  // namespace
}  // namespace afraid
