#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/random.h"

namespace afraid {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
  EXPECT_EQ(q.NextTime(), kSimTimeNever);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  while (!q.Empty()) {
    q.PopNext().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(42, [&order, i] { order.push_back(i); });
  }
  while (!q.Empty()) {
    q.PopNext().fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, PopReturnsScheduledTime) {
  EventQueue q;
  q.Schedule(1234, [] {});
  EXPECT_EQ(q.NextTime(), 1234);
  auto fired = q.PopNext();
  EXPECT_EQ(fired.time, 1234);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.Schedule(10, [&] { ++fired; });
  q.Schedule(20, [&] { ++fired; });
  EXPECT_TRUE(q.Cancel(a));
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_EQ(q.NextTime(), 20);
  while (!q.Empty()) {
    q.PopNext().fn();
  }
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId a = q.Schedule(10, [] {});
  EXPECT_TRUE(q.Cancel(a));
  EXPECT_FALSE(q.Cancel(a));
}

TEST(EventQueue, CancelFiredEventFails) {
  EventQueue q;
  const EventId a = q.Schedule(10, [] {});
  q.PopNext();
  EXPECT_FALSE(q.Cancel(a));
}

TEST(EventQueue, CancelInvalidIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(999));
}

TEST(EventQueue, CancelHeadThenNextTimeSkips) {
  EventQueue q;
  const EventId a = q.Schedule(5, [] {});
  q.Schedule(10, [] {});
  q.Cancel(a);
  EXPECT_EQ(q.NextTime(), 10);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.Schedule(1, [] {});
  q.Schedule(2, [] {});
  q.Clear();
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.NextTime(), kSimTimeNever);
}

TEST(EventQueue, MoveOnlyCaptureFires) {
  // std::function could not hold this callback at all; the slab queue's
  // SBO callback type must both store and fire a move-only capture.
  EventQueue q;
  auto owned = std::make_unique<int>(7);
  int seen = 0;
  q.Schedule(5, [owned = std::move(owned), &seen] { seen = *owned; });
  auto fired = q.PopNext();
  fired.fn();
  EXPECT_EQ(seen, 7);
}

TEST(EventQueue, MoveOnlyCaptureSurvivesCancelAndClear) {
  // Cancel/Clear must destroy move-only captures exactly once (ASan-checked).
  EventQueue q;
  auto shared = std::make_shared<int>(1);
  const EventId a = q.Schedule(5, [p = shared] { (void)p; });
  q.Schedule(6, [p = shared] { (void)p; });
  EXPECT_EQ(shared.use_count(), 3);
  EXPECT_TRUE(q.Cancel(a));
  EXPECT_EQ(shared.use_count(), 2);
  q.Clear();
  EXPECT_EQ(shared.use_count(), 1);
}

TEST(EventQueue, LargeCaptureFallsBackToHeapBox) {
  EventQueue q;
  struct Big {
    uint64_t pad[16];  // 128 bytes: beyond any reasonable inline buffer.
  };
  Big big{};
  big.pad[15] = 99;
  uint64_t seen = 0;
  q.Schedule(1, [big, &seen] { seen = big.pad[15]; });
  q.PopNext().fn();
  EXPECT_EQ(seen, 99u);
}

TEST(EventQueue, CancelAfterFireOnRecycledSlotFails) {
  // After event A fires, its slab slot may be reused by event B. A's stale
  // id must fail the generation check rather than cancelling B.
  EventQueue q;
  const EventId a = q.Schedule(10, [] {});
  q.PopNext();
  const EventId b = q.Schedule(20, [] {});
  EXPECT_NE(a, b);
  EXPECT_FALSE(q.Cancel(a));
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_TRUE(q.Cancel(b));
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueue, ClearThenReschedule) {
  EventQueue q;
  const EventId old_id = q.Schedule(10, [] { FAIL() << "cleared event fired"; });
  q.Clear();
  // Old ids are invalidated even though their slots will be recycled.
  EXPECT_FALSE(q.Cancel(old_id));
  int fired = 0;
  q.Schedule(3, [&] { ++fired; });
  const EventId c = q.Schedule(1, [&] { ++fired; });
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_EQ(q.NextTime(), 1);
  EXPECT_TRUE(q.Cancel(c));
  while (!q.Empty()) {
    q.PopNext().fn();
  }
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, SameInstantFifoSurvivesCancellations) {
  // FIFO among same-time survivors must hold even when earlier-scheduled
  // neighbours are cancelled around them.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 32; ++i) {
    ids.push_back(q.Schedule(7, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 32; i += 2) {
    q.Cancel(ids[static_cast<size_t>(i)]);
  }
  while (!q.Empty()) {
    q.PopNext().fn();
  }
  std::vector<int> expected;
  for (int i = 1; i < 32; i += 2) {
    expected.push_back(i);
  }
  EXPECT_EQ(order, expected);
}

TEST(EventQueue, NextTimeIsConstCorrect) {
  EventQueue q;
  const EventId a = q.Schedule(5, [] {});
  q.Schedule(9, [] {});
  q.Cancel(a);
  const EventQueue& cq = q;  // NextTime must be callable on a const queue.
  EXPECT_EQ(cq.NextTime(), 9);
  EXPECT_EQ(cq.Size(), 1u);
}

TEST(EventQueue, IdsStayUniqueAcrossSlotReuse) {
  EventQueue q;
  std::vector<EventId> seen;
  for (int round = 0; round < 100; ++round) {
    const EventId id = q.Schedule(round, [] {});
    for (EventId prior : seen) {
      EXPECT_NE(id, prior);
    }
    seen.push_back(id);
    q.PopNext();  // Frees the slot for reuse next round.
  }
}

// Property: against a shadow model, random schedule/cancel/pop sequences
// always pop live events in (time, seq) order.
TEST(EventQueueProperty, RandomizedAgainstShadowModel) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    EventQueue q;
    struct Shadow {
      SimTime time;
      EventId id;
      bool cancelled = false;
      std::shared_ptr<bool> fired = std::make_shared<bool>(false);
    };
    std::vector<Shadow> shadow;

    for (int step = 0; step < 2000; ++step) {
      const double roll = rng.UniformDouble(0, 1);
      if (roll < 0.55) {
        const SimTime t = rng.UniformInt(0, 1000);
        Shadow s;
        s.time = t;
        s.id = q.Schedule(t, [flag = s.fired] { *flag = true; });
        shadow.push_back(std::move(s));
      } else if (roll < 0.75 && !shadow.empty()) {
        auto& s = shadow[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(shadow.size()) - 1))];
        EXPECT_EQ(q.Cancel(s.id), !s.cancelled && !*s.fired);
        s.cancelled = true;
      } else if (!q.Empty()) {
        q.PopNext().fn();
      }
    }
    // Whatever is left must drain in non-decreasing time order.
    SimTime prev = -1;
    while (!q.Empty()) {
      auto fired = q.PopNext();
      EXPECT_GE(fired.time, prev);
      prev = fired.time;
    }
  }
}

}  // namespace
}  // namespace afraid
