// Recorder round-trip at fleet scale: a synthetic tenant-mix workload,
// recorded to the text trace format and streamed back through
// VolumeManager::RunStreamed, must produce a field-exact FleetReport vs
// replaying the in-memory workload directly -- at any thread count, any
// chunk size, and with online management ops (including destroy) in flight.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "fleet/recorder.h"
#include "fleet/tenants.h"
#include "fleet/volume_manager.h"
#include "trace/trace_stream.h"

namespace afraid {
namespace {

std::string TempPath(const std::string& leaf) {
  return (std::filesystem::temp_directory_path() / leaf).string();
}

FleetConfig SmallFleet() {
  FleetConfig cfg;
  cfg.array.disk_spec = DiskSpec::TinyTestDisk();
  cfg.array.num_disks = 4;
  cfg.num_shards = 8;
  cfg.chunk_bytes = 256 * 1024;
  cfg.seed = 5;
  return cfg;
}

FleetTrace SmallWorkload(const FleetConfig& cfg, uint64_t max_requests) {
  FleetWorkloadParams wp;
  wp.seed = 17;
  wp.num_tenants = 48;
  wp.max_requests = max_requests;
  wp.max_duration = Minutes(10);
  return GenerateFleetWorkload(wp, VolumeManager(cfg).VolumeBytes());
}

// Direct synthetic replay vs record + stream of the same workload.
TEST(FleetStream, RecorderRoundTripFieldExact) {
  const FleetConfig cfg = SmallFleet();
  const FleetTrace workload = SmallWorkload(cfg, 3000);
  const std::string path = TempPath("afraid_fleet_stream_rt.txt");
  ASSERT_TRUE(RecordFleetTrace(workload, path).ok);

  for (const int32_t threads : {1, 8}) {
    VolumeManager direct(cfg);
    VolumeManager::RunOptions opts;
    opts.threads = threads;
    const FleetReport want = direct.Run(workload, opts);
    ASSERT_GT(want.requests, 0u);
    EXPECT_EQ(want.num_tenants, 48);

    VolumeManager streamed(cfg);
    StreamOptions sopts;
    sopts.chunk_bytes = 4096;  // Many chunks: ~20 bytes per record.
    TraceStatus st;
    const FleetReport got = streamed.RunStreamed(path, sopts, opts, &st);
    ASSERT_TRUE(st.ok) << st.message;
    EXPECT_EQ(FleetReportToJson(got), FleetReportToJson(want))
        << "threads=" << threads;
  }
  std::remove(path.c_str());
}

// Chunk size must not perturb the trajectory.
TEST(FleetStream, ChunkSizeInvariance) {
  const FleetConfig cfg = SmallFleet();
  const FleetTrace workload = SmallWorkload(cfg, 1500);
  const std::string path = TempPath("afraid_fleet_stream_chunk.txt");
  ASSERT_TRUE(RecordFleetTrace(workload, path).ok);

  VolumeManager::RunOptions opts;
  opts.threads = 1;
  std::string baseline;
  for (const size_t chunk : {512u, 8192u, 4u << 20}) {
    VolumeManager vm(cfg);
    StreamOptions sopts;
    sopts.chunk_bytes = chunk;
    TraceStatus st;
    const FleetReport rep = vm.RunStreamed(path, sopts, opts, &st);
    ASSERT_TRUE(st.ok) << st.message;
    const std::string json = FleetReportToJson(rep);
    if (baseline.empty()) {
      baseline = json;
    } else {
      EXPECT_EQ(json, baseline) << "chunk=" << chunk;
    }
  }
  std::remove(path.c_str());
}

// Online management -- a failure/repair cycle, an info snapshot, and a
// destroy -- lands identically whether the workload arrives monolithic or
// in chunks, at 1 and 8 threads.
TEST(FleetStream, ManagementOpsMatchUnderStreaming) {
  const FleetConfig cfg = SmallFleet();
  const FleetTrace workload = SmallWorkload(cfg, 3000);
  const std::string path = TempPath("afraid_fleet_stream_mgmt.txt");
  ASSERT_TRUE(RecordFleetTrace(workload, path).ok);
  const SimTime mid = workload.records[workload.records.size() / 2].time;
  const SimTime late = workload.records[(workload.records.size() * 3) / 4].time;

  for (const int32_t threads : {1, 8}) {
    auto schedule = [&](VolumeManager* vm) {
      vm->DiskFail(mid, /*shard=*/2, /*disk=*/1);
      vm->DiskRepaired(late, /*shard=*/2, /*disk=*/1);
      vm->InfoAt(late, /*shard=*/0);
      vm->Destroy(mid, /*shard=*/5);
    };
    VolumeManager::RunOptions opts;
    opts.threads = threads;

    VolumeManager direct(cfg);
    schedule(&direct);
    const FleetReport want = direct.Run(workload, opts);
    EXPECT_TRUE(want.shards[2].disk_failed);
    EXPECT_TRUE(want.shards[5].destroyed);
    EXPECT_EQ(want.shards_destroyed, 1);

    VolumeManager streamed(cfg);
    schedule(&streamed);
    StreamOptions sopts;
    sopts.chunk_bytes = 2048;
    TraceStatus st;
    const FleetReport got = streamed.RunStreamed(path, sopts, opts, &st);
    ASSERT_TRUE(st.ok) << st.message;
    EXPECT_EQ(FleetReportToJson(got), FleetReportToJson(want))
        << "threads=" << threads;
  }
  std::remove(path.c_str());
}

// A missing file surfaces through the status out-param with an empty report.
TEST(FleetStream, MissingFileReportsError) {
  VolumeManager vm(SmallFleet());
  TraceStatus st;
  const FleetReport rep = vm.RunStreamed(
      TempPath("afraid_no_such_fleet_trace.txt"), StreamOptions(),
      VolumeManager::RunOptions(), &st);
  EXPECT_FALSE(st.ok);
  EXPECT_EQ(rep.requests, 0u);
}

}  // namespace
}  // namespace afraid
