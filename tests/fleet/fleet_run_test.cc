// End-to-end fleet runs: thread-count invariance (the acceptance bar for
// the sharded sweep), online management while traffic flows, and the
// split-request latency join.

#include "fleet/volume_manager.h"

#include <gtest/gtest.h>

#include "fleet/tenants.h"

namespace afraid {
namespace {

FleetConfig TinyFleet() {
  FleetConfig cfg;
  cfg.array.disk_spec = DiskSpec::TinyTestDisk();
  cfg.array.num_disks = 4;
  cfg.array.stripe_unit_bytes = 8192;
  cfg.num_shards = 8;
  cfg.chunk_bytes = 512 * 1024;
  cfg.seed = 5;
  return cfg;
}

FleetTrace TinyTenants(int64_t volume_bytes, int32_t tenants = 64,
                       uint64_t requests = 4000) {
  FleetWorkloadParams wp;
  wp.seed = 11;
  wp.num_tenants = tenants;
  wp.max_requests = requests;
  wp.max_duration = Minutes(5);
  return GenerateFleetWorkload(wp, volume_bytes);
}

void ExpectShardReportsIdentical(const ShardReport& a, const ShardReport& b) {
  EXPECT_EQ(a.shard, b.shard);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.mean_ms, b.mean_ms);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
  EXPECT_EQ(a.max_ms, b.max_ms);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.disk_utilization, b.disk_utilization);
  EXPECT_EQ(a.mean_parity_lag_bytes, b.mean_parity_lag_bytes);
  EXPECT_EQ(a.stripes_rebuilt, b.stripes_rebuilt);
  EXPECT_EQ(a.degraded_s, b.degraded_s);
}

// Field-by-field exact equality: any double ULP of drift between thread
// counts is a determinism bug.
void ExpectFleetReportsIdentical(const FleetReport& a, const FleetReport& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.split_requests, b.split_requests);
  EXPECT_EQ(a.mean_ms, b.mean_ms);
  EXPECT_EQ(a.p50_ms, b.p50_ms);
  EXPECT_EQ(a.p90_ms, b.p90_ms);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
  EXPECT_EQ(a.p999_ms, b.p999_ms);
  EXPECT_EQ(a.max_ms, b.max_ms);
  EXPECT_EQ(a.mean_read_ms, b.mean_read_ms);
  EXPECT_EQ(a.mean_write_ms, b.mean_write_ms);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.imbalance_max_mean, b.imbalance_max_mean);
  EXPECT_EQ(a.imbalance_cv, b.imbalance_cv);
  EXPECT_EQ(a.degraded_shard_s, b.degraded_shard_s);
  EXPECT_EQ(a.loss_events, b.loss_events);
  EXPECT_EQ(a.bytes_lost, b.bytes_lost);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (size_t i = 0; i < a.shards.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectShardReportsIdentical(a.shards[i], b.shards[i]);
  }
}

TEST(FleetRun, ThreadCountInvariant) {
  for (ShardingKind kind :
       {ShardingKind::kRange, ShardingKind::kConsistentHash}) {
    SCOPED_TRACE(ShardingKindName(kind));
    FleetConfig cfg = TinyFleet();
    cfg.sharding = kind;
    VolumeManager vm1(cfg);
    // A mid-run failure + repair must also replay identically.
    vm1.DiskFail(Seconds(1), /*shard=*/2, /*disk=*/1);
    vm1.DiskRepaired(Seconds(20), /*shard=*/2, /*disk=*/1);
    const FleetTrace trace = TinyTenants(vm1.VolumeBytes());
    ASSERT_GT(trace.Size(), 1000u);

    VolumeManager::RunOptions serial;
    serial.threads = 1;
    const FleetReport a = vm1.Run(trace, serial);

    VolumeManager vm8(cfg);
    vm8.DiskFail(Seconds(1), 2, 1);
    vm8.DiskRepaired(Seconds(20), 2, 1);
    VolumeManager::RunOptions fanned;
    fanned.threads = 8;
    const FleetReport b = vm8.Run(trace, fanned);

    ExpectFleetReportsIdentical(a, b);
    EXPECT_GT(a.requests, 0u);
    EXPECT_GT(a.p999_ms, 0.0);
    EXPECT_GE(a.p999_ms, a.p99_ms);
    EXPECT_GE(a.imbalance_max_mean, 1.0);
  }
}

TEST(FleetRun, SplitRequestsJoinAtMaxOfPieces) {
  // chunk == stripe unit makes straddles common; every logical request must
  // be accounted for exactly once and split latencies must bound the pieces.
  FleetConfig cfg = TinyFleet();
  cfg.sharding = ShardingKind::kConsistentHash;  // Scatters adjacent chunks.
  cfg.chunk_bytes = 64 * 1024;
  VolumeManager vm(cfg);
  const FleetTrace trace = TinyTenants(vm.VolumeBytes(), 32, 2000);
  const FleetReport rep = vm.Run(trace);
  EXPECT_EQ(rep.requests + rep.dropped, trace.Size());
  EXPECT_EQ(rep.dropped, 0u);
  EXPECT_GT(rep.split_requests, 0u);
  // Shard-served pieces >= logical requests (splits fan out).
  uint64_t pieces = 0;
  for (const ShardReport& s : rep.shards) {
    pieces += s.requests;
  }
  EXPECT_GE(pieces, rep.requests);
  EXPECT_GE(rep.max_ms, rep.p999_ms);
}

TEST(FleetRun, OnlineFailRepairDegradesOneShardOnly) {
  FleetConfig cfg = TinyFleet();
  VolumeManager vm(cfg);
  vm.DiskFail(Seconds(2), /*shard=*/3, /*disk=*/0);
  vm.DiskRepaired(Seconds(30), /*shard=*/3, /*disk=*/0);
  vm.InfoAt(Seconds(5), /*shard=*/-1);  // Broadcast snapshot mid-failure.
  const FleetTrace trace = TinyTenants(vm.VolumeBytes());
  const FleetReport rep = vm.Run(trace);

  const ShardReport& failed = rep.shards[3];
  EXPECT_TRUE(failed.disk_failed);
  EXPECT_TRUE(failed.repaired);
  EXPECT_GT(failed.degraded_s, 0.0);
  EXPECT_GT(failed.requests, 0u);  // Kept serving while degraded.
  EXPECT_DOUBLE_EQ(rep.degraded_shard_s, failed.degraded_s);
  for (int32_t s = 0; s < rep.num_shards; ++s) {
    if (s == 3) {
      continue;
    }
    EXPECT_FALSE(rep.shards[static_cast<size_t>(s)].disk_failed);
    EXPECT_EQ(rep.shards[static_cast<size_t>(s)].degraded_s, 0.0);
    EXPECT_GT(rep.shards[static_cast<size_t>(s)].requests, 0u);
  }
  // The broadcast info op snapshotted every shard; shard 3's snapshot shows
  // the failed disk.
  ASSERT_EQ(failed.infos.size(), 1u);
  EXPECT_EQ(failed.infos[0].failed_disk, 0);
  for (const ShardReport& s : rep.shards) {
    ASSERT_EQ(s.infos.size(), 1u);
    EXPECT_EQ(s.infos[0].time, Seconds(5));
  }
}

TEST(FleetRun, DestroyDropsRemainingTrafficOnThatShardOnly) {
  FleetConfig cfg = TinyFleet();
  VolumeManager vm(cfg);
  vm.Destroy(Seconds(1), /*shard=*/0);
  const FleetTrace trace = TinyTenants(vm.VolumeBytes());
  const FleetReport rep = vm.Run(trace);
  EXPECT_EQ(rep.shards_destroyed, 1);
  EXPECT_TRUE(rep.shards[0].destroyed);
  EXPECT_GT(rep.shards[0].dropped, 0u);
  EXPECT_GT(rep.dropped, 0u);
  EXPECT_EQ(rep.requests + rep.dropped, trace.Size());
  for (size_t s = 1; s < rep.shards.size(); ++s) {
    EXPECT_EQ(rep.shards[s].dropped, 0u);
  }
}

TEST(FleetRun, InvalidMgmtOpsAreRefusedAndCountedByKind) {
  // Every registered scheme now supports fail/repair; refusals come from
  // *invalid* ops: failing an out-of-range disk, repairing a disk that never
  // failed. Each lands in its own per-kind counter and leaves the shard
  // serving normally.
  FleetConfig cfg = TinyFleet();
  cfg.scheme = "raid6-deferQ";
  cfg.num_shards = 2;
  VolumeManager vm(cfg);
  vm.DiskFail(Seconds(1), 0, /*disk=*/99);      // Out of range: refused.
  vm.DiskRepaired(Seconds(2), 0, /*disk=*/1);   // Nothing failed: refused.
  const FleetTrace trace = TinyTenants(vm.VolumeBytes(), 16, 500);
  const FleetReport rep = vm.Run(trace);
  EXPECT_EQ(rep.shards[0].mgmt_unsupported_fail, 1u);
  EXPECT_EQ(rep.shards[0].mgmt_unsupported_repair, 1u);
  EXPECT_EQ(rep.shards[0].mgmt_unsupported_info, 0u);
  EXPECT_EQ(rep.shards[0].mgmt_unsupported_destroy, 0u);
  EXPECT_EQ(rep.shards[0].MgmtUnsupportedTotal(), 2u);
  EXPECT_FALSE(rep.shards[0].disk_failed);
  EXPECT_GT(rep.requests, 0u);
}

TEST(FleetRun, ValidFailRepairIsAppliedOnEveryRegisteredScheme) {
  // The old behaviour (non-afraid schemes refuse fail/repair) is gone: a
  // well-formed incident must degrade and then repair the shard under every
  // scheme the registry knows.
  for (const char* scheme :
       {"afraid", "raid6", "raid6-deferQ", "raid6-deferPQ", "parity-log",
        "mirror"}) {
    SCOPED_TRACE(scheme);
    FleetConfig cfg = TinyFleet();
    cfg.scheme = scheme;
    cfg.num_shards = 2;
    VolumeManager vm(cfg);
    vm.DiskFail(Seconds(1), 0, /*disk=*/1);
    vm.DiskRepaired(Seconds(20), 0, /*disk=*/1);
    const FleetTrace trace = TinyTenants(vm.VolumeBytes(), 16, 500);
    const FleetReport rep = vm.Run(trace);
    EXPECT_TRUE(rep.shards[0].disk_failed);
    EXPECT_TRUE(rep.shards[0].repaired);
    EXPECT_GT(rep.shards[0].degraded_s, 0.0);
    EXPECT_EQ(rep.shards[0].MgmtUnsupportedTotal(), 0u);
    EXPECT_EQ(rep.shards[1].MgmtUnsupportedTotal(), 0u);
    EXPECT_GT(rep.requests, 0u);
  }
}

TEST(FleetRun, SparePoolGatesRepairsAndRestocksOnline) {
  // With a zero-spare pool the first repair is refused outright (the shard
  // keeps serving degraded); a spare_add restocks the pool and a later
  // repair succeeds, drawing the pool back down.
  FleetConfig cfg = TinyFleet();
  cfg.num_shards = 2;
  cfg.spares = 0;
  VolumeManager vm(cfg);
  vm.DiskFail(Seconds(1), 0, /*disk=*/1);
  vm.DiskRepaired(Seconds(5), 0, /*disk=*/1);  // Pool empty: refused.
  vm.InfoAt(Seconds(8), 0);
  vm.SpareAdd(Seconds(10), 0);
  vm.DiskRepaired(Seconds(20), 0, /*disk=*/1);  // Spare available: applied.
  vm.InfoAt(Seconds(50), 0);
  const FleetTrace trace = TinyTenants(vm.VolumeBytes(), 16, 800);
  const FleetReport rep = vm.Run(trace);
  const ShardReport& s0 = rep.shards[0];
  EXPECT_TRUE(s0.disk_failed);
  EXPECT_EQ(s0.repairs_refused_no_spare, 1u);
  EXPECT_EQ(s0.spares_added, 1u);
  EXPECT_EQ(s0.spares_used, 1u);
  EXPECT_TRUE(s0.repaired);
  EXPECT_EQ(s0.mgmt_unsupported_repair, 0u);
  ASSERT_EQ(s0.infos.size(), 2u);
  EXPECT_EQ(s0.infos[0].spares_free, 0);    // Before the restock.
  EXPECT_EQ(s0.infos[0].failed_disk, 1);    // Still degraded: repair refused.
  EXPECT_EQ(s0.infos[1].spares_free, 0);    // Restocked, then consumed.
  // The untouched shard's pool is intact and uncounted.
  EXPECT_EQ(rep.shards[1].spares_added, 0u);
  EXPECT_EQ(rep.shards[1].spares_used, 0u);
}

TEST(FleetRun, SpareAddWithoutPoolIsRefused) {
  // Legacy unlimited stock (spares < 0): repairs never consume spares and
  // spare_add is meaningless, counted in its own refusal bucket.
  FleetConfig cfg = TinyFleet();
  cfg.num_shards = 2;
  VolumeManager vm(cfg);
  vm.DiskFail(Seconds(1), 0, /*disk=*/1);
  vm.SpareAdd(Seconds(2), 0);
  vm.DiskRepaired(Seconds(20), 0, /*disk=*/1);
  const FleetTrace trace = TinyTenants(vm.VolumeBytes(), 16, 500);
  const FleetReport rep = vm.Run(trace);
  EXPECT_EQ(rep.shards[0].mgmt_unsupported_spare_add, 1u);
  EXPECT_EQ(rep.shards[0].spares_added, 0u);
  EXPECT_EQ(rep.shards[0].spares_used, 0u);
  EXPECT_TRUE(rep.shards[0].repaired);
  ASSERT_TRUE(rep.shards[0].infos.empty());
}

TEST(FleetRun, Raid6SchemeForcesTwoParityBlocks) {
  FleetConfig cfg = TinyFleet();
  cfg.scheme = "raid6-deferPQ";
  cfg.num_shards = 2;
  const VolumeManager vm(cfg);
  EXPECT_EQ(vm.config().array.parity_blocks, 2);
  FleetConfig a = TinyFleet();
  a.num_shards = 2;
  const VolumeManager plain(a);
  // Two parities leave less data capacity per shard.
  EXPECT_LT(vm.ShardCapacityBytes(), plain.ShardCapacityBytes());
}

TEST(FleetRun, MirrorSchemeRoundsDisksToPairsAndHalvesCapacity) {
  FleetConfig cfg = TinyFleet();
  cfg.array.num_disks = 5;
  cfg.scheme = "mirror";
  cfg.num_shards = 2;
  const VolumeManager vm(cfg);
  EXPECT_EQ(vm.config().array.num_disks, 4);
  EXPECT_EQ(vm.config().array.parity_blocks, 0);
  FleetConfig a = TinyFleet();
  a.num_shards = 2;
  const VolumeManager plain(a);  // 4 disks, RAID 5: 3 data disks.
  // Two mirrored columns < three data disks of capacity.
  EXPECT_LT(vm.ShardCapacityBytes(), plain.ShardCapacityBytes());
}

}  // namespace
}  // namespace afraid
