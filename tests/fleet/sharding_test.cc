// Shard routing is verified exhaustively against naive reference
// implementations built from first principles: every chunk of every map is
// checked against an independent re-derivation of the placement, and
// SplitRange is checked byte-for-byte against single-byte routing.

#include "fleet/sharding.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace afraid {
namespace {

constexpr int64_t kKiB = 1024;

// ---------------------------------------------------------------------------
// Naive references. These reimplement the placement rules directly from the
// documented contract, sharing only the hash primitives with the real code.

// Range: chunk c belongs to shard c / (chunks / num_shards), local index
// c % (chunks / num_shards).
ShardTarget NaiveRangeRoute(int64_t offset, int32_t num_shards,
                            int64_t chunk_bytes, int64_t volume_bytes) {
  const int64_t chunks = volume_bytes / chunk_bytes;
  const int64_t per_shard = chunks / num_shards;
  const int64_t c = offset / chunk_bytes;
  return ShardTarget{static_cast<int32_t>(c / per_shard),
                     (c % per_shard) * chunk_bytes + offset % chunk_bytes};
}

// Consistent hash: sort all (point, shard) vnodes; assign chunks in
// ascending chunk order to the first vnode at or after FleetChunkPoint(c)
// whose shard is below cap_chunks, walking the ring (wrapping) otherwise.
// A linear scan stands in for the real builder's binary search.
struct NaiveChashMap {
  std::vector<int32_t> chunk_shard;
  std::vector<int64_t> chunk_local;
  std::vector<int64_t> per_shard;
  int64_t spilled = 0;
};

NaiveChashMap BuildNaive(int32_t num_shards, int64_t chunk_bytes,
                         int64_t volume_bytes, int64_t shard_capacity_bytes,
                         int32_t vnodes_per_shard, uint64_t seed) {
  struct Pt {
    uint64_t point;
    int32_t shard;
  };
  std::vector<Pt> ring;
  for (int32_t s = 0; s < num_shards; ++s) {
    for (int32_t v = 0; v < vnodes_per_shard; ++v) {
      ring.push_back(Pt{FleetVnodePoint(seed, s, v), s});
    }
  }
  std::sort(ring.begin(), ring.end(), [](const Pt& a, const Pt& b) {
    return a.point != b.point ? a.point < b.point : a.shard < b.shard;
  });
  const int64_t chunks = volume_bytes / chunk_bytes;
  const int64_t cap = shard_capacity_bytes / chunk_bytes;
  NaiveChashMap m;
  m.chunk_shard.resize(static_cast<size_t>(chunks));
  m.chunk_local.resize(static_cast<size_t>(chunks));
  m.per_shard.assign(static_cast<size_t>(num_shards), 0);
  for (int64_t c = 0; c < chunks; ++c) {
    const uint64_t key = FleetChunkPoint(c);
    size_t pos = 0;
    while (pos < ring.size() && ring[pos].point < key) {
      ++pos;
    }
    pos %= ring.size();
    for (size_t step = 0; step < ring.size(); ++step) {
      const int32_t s = ring[(pos + step) % ring.size()].shard;
      if (m.per_shard[static_cast<size_t>(s)] < cap) {
        m.chunk_shard[static_cast<size_t>(c)] = s;
        m.chunk_local[static_cast<size_t>(c)] =
            m.per_shard[static_cast<size_t>(s)]++;
        if (step > 0) {
          ++m.spilled;
        }
        break;
      }
    }
  }
  return m;
}

// ---------------------------------------------------------------------------

TEST(ShardMapRange, ExhaustiveRouteMatchesNaive) {
  const int32_t shards = 8;
  const int64_t chunk = 4 * kKiB;
  const int64_t volume = chunk * shards * 6;  // 48 chunks.
  const ShardMap m = ShardMap::Range(shards, chunk, volume);
  EXPECT_EQ(m.kind(), ShardingKind::kRange);
  EXPECT_EQ(m.num_chunks(), 48);
  EXPECT_EQ(m.SpilledChunks(), 0);
  // Every 512-aligned offset plus the chunk-edge neighbourhoods.
  for (int64_t off = 0; off < volume; off += 512) {
    const ShardTarget got = m.Route(off);
    const ShardTarget want = NaiveRangeRoute(off, shards, chunk, volume);
    ASSERT_EQ(got.shard, want.shard) << "offset " << off;
    ASSERT_EQ(got.local_offset, want.local_offset) << "offset " << off;
  }
  for (int64_t s : m.ChunksPerShard()) {
    EXPECT_EQ(s, 6);
  }
}

TEST(ShardMapConsistentHash, ExhaustiveOwnershipMatchesNaive) {
  const int32_t shards = 7;  // Deliberately not a power of two.
  const int64_t chunk = 4 * kKiB;
  const int64_t cap = 64 * kKiB;  // 16 chunks per shard.
  const int64_t volume = ShardMap::SizeVolume(shards, cap, chunk, 0.8);
  ASSERT_GT(volume, 0);
  ASSERT_EQ(volume % (chunk * shards), 0);
  const uint64_t seed = 42;
  const int32_t vnodes = 16;
  const ShardMap m =
      ShardMap::ConsistentHash(shards, chunk, volume, cap, vnodes, seed);
  const NaiveChashMap naive =
      BuildNaive(shards, chunk, volume, cap, vnodes, seed);

  ASSERT_EQ(m.num_chunks(), static_cast<int64_t>(naive.chunk_shard.size()));
  for (int64_t c = 0; c < m.num_chunks(); ++c) {
    const ShardTarget t = m.Route(c * chunk);
    ASSERT_EQ(t.shard, naive.chunk_shard[static_cast<size_t>(c)])
        << "chunk " << c;
    ASSERT_EQ(t.local_offset,
              naive.chunk_local[static_cast<size_t>(c)] * chunk)
        << "chunk " << c;
  }
  EXPECT_EQ(m.SpilledChunks(), naive.spilled);

  // Capacity is a hard bound and local indices are dense per shard.
  const int64_t cap_chunks = cap / chunk;
  std::vector<std::vector<int64_t>> locals(static_cast<size_t>(shards));
  for (int64_t c = 0; c < m.num_chunks(); ++c) {
    const ShardTarget t = m.Route(c * chunk);
    EXPECT_LE(t.local_offset + chunk, cap);
    locals[static_cast<size_t>(t.shard)].push_back(t.local_offset / chunk);
  }
  for (int32_t s = 0; s < shards; ++s) {
    auto& l = locals[static_cast<size_t>(s)];
    EXPECT_LE(static_cast<int64_t>(l.size()), cap_chunks);
    std::sort(l.begin(), l.end());
    for (size_t i = 0; i < l.size(); ++i) {
      EXPECT_EQ(l[i], static_cast<int64_t>(i)) << "shard " << s;
    }
  }
}

TEST(ShardMapConsistentHash, TightCapacityForcesSpillButStaysValid) {
  // fill_fraction 1.0: the volume equals total capacity, so the hash's
  // natural imbalance must spill -- and every shard still ends exactly full.
  const int32_t shards = 4;
  const int64_t chunk = kKiB;
  const int64_t cap = 8 * kKiB;  // 8 chunks per shard.
  const int64_t volume = ShardMap::SizeVolume(shards, cap, chunk, 1.0);
  EXPECT_EQ(volume, 32 * kKiB);
  const ShardMap m = ShardMap::ConsistentHash(shards, chunk, volume, cap,
                                              /*vnodes=*/8, /*seed=*/7);
  EXPECT_GT(m.SpilledChunks(), 0);
  for (int64_t per : m.ChunksPerShard()) {
    EXPECT_EQ(per, 8);
  }
}

TEST(ShardMapConsistentHash, DeterministicAcrossRebuilds) {
  const int64_t volume = 4 * kKiB * 8 * 4;
  const ShardMap a = ShardMap::ConsistentHash(8, 4 * kKiB, volume, 64 * kKiB,
                                              32, 123);
  const ShardMap b = ShardMap::ConsistentHash(8, 4 * kKiB, volume, 64 * kKiB,
                                              32, 123);
  for (int64_t c = 0; c < a.num_chunks(); ++c) {
    EXPECT_EQ(a.Route(c * 4 * kKiB).shard, b.Route(c * 4 * kKiB).shard);
  }
  // A different seed moves at least one chunk (else the ring ignores it).
  const ShardMap c = ShardMap::ConsistentHash(8, 4 * kKiB, volume, 64 * kKiB,
                                              32, 124);
  bool any_moved = false;
  for (int64_t i = 0; i < a.num_chunks(); ++i) {
    any_moved |= a.Route(i * 4 * kKiB).shard != c.Route(i * 4 * kKiB).shard;
  }
  EXPECT_TRUE(any_moved);
}

// SplitRange must agree byte-for-byte with Route: every byte of every piece
// maps back to the same (shard, local) the single-byte router gives.
void CheckSplitAgainstRoute(const ShardMap& m, int64_t offset, int32_t length,
                            std::vector<ShardPiece>* scratch) {
  m.SplitRange(offset, length, scratch);
  int64_t covered = 0;
  for (const ShardPiece& p : *scratch) {
    ASSERT_GT(p.length, 0);
    for (int64_t i = 0; i < p.length; i += 512) {
      const ShardTarget t = m.Route(offset + covered + i);
      ASSERT_EQ(t.shard, p.shard);
      ASSERT_EQ(t.local_offset, p.local_offset + i);
    }
    covered += p.length;
  }
  ASSERT_EQ(covered, length);
  // Adjacent pieces never coalescable (else SplitRange missed a merge).
  for (size_t i = 1; i < scratch->size(); ++i) {
    const ShardPiece& a = (*scratch)[i - 1];
    const ShardPiece& b = (*scratch)[i];
    EXPECT_FALSE(a.shard == b.shard &&
                 a.local_offset + a.length == b.local_offset);
  }
}

TEST(ShardMap, SplitRangeExhaustiveBothPolicies) {
  const int32_t shards = 4;
  const int64_t chunk = 2 * kKiB;
  const int64_t volume = chunk * shards * 4;
  const ShardMap maps[] = {
      ShardMap::Range(shards, chunk, volume),
      ShardMap::ConsistentHash(shards, chunk, volume, 16 * kKiB, 16, 99),
  };
  std::vector<ShardPiece> scratch;
  for (const ShardMap& m : maps) {
    for (int64_t off = 0; off < volume; off += 512) {
      for (int32_t len : {512, 1024, 3 * 512, 4096, 5120}) {
        if (off + len > volume) {
          continue;
        }
        CheckSplitAgainstRoute(m, off, len, &scratch);
      }
    }
    // A whole-volume scan splits into exactly the per-shard runs.
    CheckSplitAgainstRoute(m, 0, static_cast<int32_t>(volume), &scratch);
  }
}

TEST(ShardMap, RangeShardingCoalescesWithinShard) {
  // Under range sharding a request inside one shard span is one piece no
  // matter how many chunks it crosses.
  const ShardMap m = ShardMap::Range(4, kKiB, 16 * kKiB);  // 4 KiB per shard.
  std::vector<ShardPiece> pieces;
  m.SplitRange(0, 4 * 1024, &pieces);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].shard, 0);
  EXPECT_EQ(pieces[0].length, 4 * 1024);
  m.SplitRange(3 * 1024, 2 * 1024, &pieces);  // Straddles shards 0 and 1.
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0].shard, 0);
  EXPECT_EQ(pieces[1].shard, 1);
}

TEST(ShardMap, SizeVolumeRespectsFillFraction) {
  for (double f : {0.25, 0.5, 0.8, 1.0}) {
    const int64_t v = ShardMap::SizeVolume(8, 1000 * kKiB, 4 * kKiB, f);
    EXPECT_EQ(v % (4 * kKiB * 8), 0);
    EXPECT_LE(static_cast<double>(v), 8 * 1000.0 * kKiB * f);
    EXPECT_GT(v, 0);
  }
}

}  // namespace
}  // namespace afraid
