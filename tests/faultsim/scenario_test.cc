#include "faultsim/scenario.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace afraid {
namespace {

TEST(TimelineScaleTest, RoundTripsAndCoversDiskLifetimes) {
  EXPECT_EQ(TimelineFromHours(0.0), 0);
  EXPECT_EQ(TimelineFromHours(1.0), 1000000);
  EXPECT_NEAR(TimelineToHours(TimelineFromHours(4.2e9)), 4.2e9, 1.0);
  // The whole point of the microhour tick: RAID 5 MTTDLs (~4e9 h) must fit.
  EXPECT_GT(TimelineFromHours(4.2e9), 0);
}

TEST(ScenarioEngineTest, FailureRateMatchesRawMttf) {
  // 5 disks at raw MTTF 1e6 h over 1e8 h: expect ~500 raw failure draws,
  // about half predicted (C = 0.5) and half going degraded.
  FaultModelParams params;
  params.mttf_disk_raw_hours = 1e6;
  params.coverage = 0.5;
  ScenarioEngine engine(params, /*num_disks=*/5, /*seed=*/11, {});
  engine.RunUntil(1e8);
  const double total =
      static_cast<double>(engine.DiskFailures() + engine.PredictedAverted());
  EXPECT_NEAR(total, 500.0, 80.0);  // ~3.5 sigma of a Poisson(500).
  const double predicted_fraction =
      static_cast<double>(engine.PredictedAverted()) / total;
  EXPECT_NEAR(predicted_fraction, 0.5, 0.1);
}

TEST(ScenarioEngineTest, RepairCompletesAfterMttr) {
  FaultModelParams params;
  params.coverage = 0.0;  // Every failure goes degraded.
  std::vector<double> fail_times;
  std::vector<double> repair_times;
  ScenarioEvents events;
  events.on_disk_failure = [&](int32_t, double now) { fail_times.push_back(now); };
  events.on_repair_complete = [&](int32_t, double now) {
    repair_times.push_back(now);
  };
  ScenarioEngine engine(params, /*num_disks=*/3, /*seed=*/5, events);
  engine.RunUntil(2e7);
  ASSERT_FALSE(fail_times.empty());
  ASSERT_EQ(fail_times.size(), repair_times.size());
  for (size_t i = 0; i < fail_times.size(); ++i) {
    EXPECT_NEAR(repair_times[i] - fail_times[i], params.mttr_hours, 1e-3);
  }
}

TEST(ScenarioEngineTest, FailedSetTracksRepairWindows) {
  FaultModelParams params;
  params.coverage = 0.0;
  int32_t max_failed = 0;
  bool saw_failed_during_window = false;
  ScenarioEngine* eng = nullptr;
  ScenarioEvents events;
  events.on_disk_failure = [&](int32_t disk, double) {
    max_failed = std::max(max_failed, eng->FailedDisks());
    saw_failed_during_window |= eng->IsFailed(disk);
  };
  events.on_repair_complete = [&](int32_t disk, double) {
    EXPECT_FALSE(eng->IsFailed(disk));
  };
  ScenarioEngine engine(params, /*num_disks=*/4, /*seed=*/3, events);
  eng = &engine;
  engine.RunUntil(5e7);
  EXPECT_GE(max_failed, 1);
  EXPECT_TRUE(saw_failed_during_window);
}

TEST(ScenarioEngineTest, DualFailuresOccurAtExpectedRarity) {
  // With MTTR 48 h and effective MTTF 1e6 h, a dual overlap needs a second
  // failure inside a 48-hour window: rare but present in a long run.
  FaultModelParams params;
  params.coverage = 0.0;
  params.mttf_disk_raw_hours = 1e5;  // Accelerated to make overlaps testable.
  uint64_t duals = 0;
  ScenarioEngine* eng = nullptr;
  ScenarioEvents events;
  events.on_disk_failure = [&](int32_t, double) {
    if (eng->FailedDisks() >= 2) {
      ++duals;
    }
  };
  ScenarioEngine engine(params, /*num_disks=*/5, /*seed=*/17, events);
  eng = &engine;
  engine.RunUntil(5e8);
  // Expected ~ (failures) * 4 disks * (48 h / 1e5 h) ~ 25000 * 0.00192 ~ 48.
  EXPECT_GT(duals, 5u);
  EXPECT_LT(duals, 500u);
}

TEST(ScenarioEngineTest, PredictionDisabledMeansNoAversions) {
  FaultModelParams params;
  params.coverage = 0.5;
  params.prediction_averts_loss = false;  // RAID 0: nothing to migrate onto.
  ScenarioEngine engine(params, /*num_disks=*/5, /*seed=*/2, {});
  engine.RunUntil(1e7);
  EXPECT_EQ(engine.PredictedAverted(), 0u);
  EXPECT_GT(engine.DiskFailures(), 0u);
}

TEST(ScenarioEngineTest, NvramAndSupportClocksFire) {
  FaultModelParams params;
  params.nvram_mttf_hours = 15000.0;
  params.support_mttdl_hours = 2e6;
  ScenarioEngine engine(params, /*num_disks=*/5, /*seed=*/8, {});
  engine.RunUntil(1e6);
  EXPECT_GT(engine.NvramLosses(), 0u);   // ~67 expected.
  EXPECT_NEAR(static_cast<double>(engine.NvramLosses()), 1e6 / 15000.0, 30.0);
  // Support losses: ~0.5 expected; just check the clock is wired, not rates.
  EXPECT_LE(engine.SupportLosses(), 5u);
}

TEST(ScenarioEngineTest, StopHaltsFromInsideACallback) {
  FaultModelParams params;
  params.coverage = 0.0;
  ScenarioEngine* eng = nullptr;
  uint64_t seen = 0;
  ScenarioEvents events;
  events.on_disk_failure = [&](int32_t, double) {
    ++seen;
    eng->Stop();
  };
  ScenarioEngine engine(params, /*num_disks=*/5, /*seed=*/21, events);
  eng = &engine;
  engine.RunUntil(1e9);
  EXPECT_EQ(seen, 1u);
  EXPECT_TRUE(engine.Stopped());
  EXPECT_LT(engine.NowHours(), 1e9);
}

TEST(ScenarioEngineTest, DeterministicForFixedSeed) {
  FaultModelParams params;
  std::vector<double> run1;
  std::vector<double> run2;
  for (std::vector<double>* out : {&run1, &run2}) {
    ScenarioEvents events;
    events.on_disk_failure = [out](int32_t disk, double now) {
      out->push_back(now + disk);
    };
    ScenarioEngine engine(params, /*num_disks=*/5, /*seed=*/99, events);
    engine.RunUntil(1e8);
  }
  EXPECT_EQ(run1, run2);
  EXPECT_FALSE(run1.empty());
}

}  // namespace
}  // namespace afraid
