#include "faultsim/scenario.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/confidence.h"

namespace afraid {
namespace {

TEST(TimelineScaleTest, RoundTripsAndCoversDiskLifetimes) {
  EXPECT_EQ(TimelineFromHours(0.0), 0);
  EXPECT_EQ(TimelineFromHours(1.0), 1000000);
  EXPECT_NEAR(TimelineToHours(TimelineFromHours(4.2e9)), 4.2e9, 1.0);
  // The whole point of the microhour tick: RAID 5 MTTDLs (~4e9 h) must fit.
  EXPECT_GT(TimelineFromHours(4.2e9), 0);
}

TEST(ScenarioEngineTest, FailureRateMatchesRawMttf) {
  // 5 disks at raw MTTF 1e6 h over 1e8 h: expect ~500 raw failure draws,
  // about half predicted (C = 0.5) and half going degraded.
  FaultModelParams params;
  params.mttf_disk_raw_hours = 1e6;
  params.coverage = 0.5;
  ScenarioEngine engine(params, /*num_disks=*/5, /*seed=*/11, {});
  engine.RunUntil(1e8);
  const double total =
      static_cast<double>(engine.DiskFailures() + engine.PredictedAverted());
  EXPECT_NEAR(total, 500.0, 80.0);  // ~3.5 sigma of a Poisson(500).
  const double predicted_fraction =
      static_cast<double>(engine.PredictedAverted()) / total;
  EXPECT_NEAR(predicted_fraction, 0.5, 0.1);
}

TEST(ScenarioEngineTest, RepairCompletesAfterMttr) {
  FaultModelParams params;
  params.coverage = 0.0;  // Every failure goes degraded.
  std::vector<double> fail_times;
  std::vector<double> repair_times;
  ScenarioEvents events;
  events.on_disk_failure = [&](int32_t, double now) { fail_times.push_back(now); };
  events.on_repair_complete = [&](int32_t, double now) {
    repair_times.push_back(now);
  };
  ScenarioEngine engine(params, /*num_disks=*/3, /*seed=*/5, events);
  engine.RunUntil(2e7);
  ASSERT_FALSE(fail_times.empty());
  ASSERT_EQ(fail_times.size(), repair_times.size());
  for (size_t i = 0; i < fail_times.size(); ++i) {
    EXPECT_NEAR(repair_times[i] - fail_times[i], params.mttr_hours, 1e-3);
  }
}

TEST(ScenarioEngineTest, FailedSetTracksRepairWindows) {
  FaultModelParams params;
  params.coverage = 0.0;
  int32_t max_failed = 0;
  bool saw_failed_during_window = false;
  ScenarioEngine* eng = nullptr;
  ScenarioEvents events;
  events.on_disk_failure = [&](int32_t disk, double) {
    max_failed = std::max(max_failed, eng->FailedDisks());
    saw_failed_during_window |= eng->IsFailed(disk);
  };
  events.on_repair_complete = [&](int32_t disk, double) {
    EXPECT_FALSE(eng->IsFailed(disk));
  };
  ScenarioEngine engine(params, /*num_disks=*/4, /*seed=*/3, events);
  eng = &engine;
  engine.RunUntil(5e7);
  EXPECT_GE(max_failed, 1);
  EXPECT_TRUE(saw_failed_during_window);
}

TEST(ScenarioEngineTest, DualFailuresOccurAtExpectedRarity) {
  // With MTTR 48 h and effective MTTF 1e6 h, a dual overlap needs a second
  // failure inside a 48-hour window: rare but present in a long run.
  FaultModelParams params;
  params.coverage = 0.0;
  params.mttf_disk_raw_hours = 1e5;  // Accelerated to make overlaps testable.
  uint64_t duals = 0;
  ScenarioEngine* eng = nullptr;
  ScenarioEvents events;
  events.on_disk_failure = [&](int32_t, double) {
    if (eng->FailedDisks() >= 2) {
      ++duals;
    }
  };
  ScenarioEngine engine(params, /*num_disks=*/5, /*seed=*/17, events);
  eng = &engine;
  engine.RunUntil(5e8);
  // Expected ~ (failures) * 4 disks * (48 h / 1e5 h) ~ 25000 * 0.00192 ~ 48.
  EXPECT_GT(duals, 5u);
  EXPECT_LT(duals, 500u);
}

TEST(ScenarioEngineTest, PredictionDisabledMeansNoAversions) {
  FaultModelParams params;
  params.coverage = 0.5;
  params.prediction_averts_loss = false;  // RAID 0: nothing to migrate onto.
  ScenarioEngine engine(params, /*num_disks=*/5, /*seed=*/2, {});
  engine.RunUntil(1e7);
  EXPECT_EQ(engine.PredictedAverted(), 0u);
  EXPECT_GT(engine.DiskFailures(), 0u);
}

TEST(ScenarioEngineTest, NvramAndSupportClocksFire) {
  FaultModelParams params;
  params.nvram_mttf_hours = 15000.0;
  params.support_mttdl_hours = 2e6;
  ScenarioEngine engine(params, /*num_disks=*/5, /*seed=*/8, {});
  engine.RunUntil(1e6);
  EXPECT_GT(engine.NvramLosses(), 0u);   // ~67 expected.
  EXPECT_NEAR(static_cast<double>(engine.NvramLosses()), 1e6 / 15000.0, 30.0);
  // Support losses: ~0.5 expected; just check the clock is wired, not rates.
  EXPECT_LE(engine.SupportLosses(), 5u);
}

TEST(ScenarioEngineTest, StopHaltsFromInsideACallback) {
  FaultModelParams params;
  params.coverage = 0.0;
  ScenarioEngine* eng = nullptr;
  uint64_t seen = 0;
  ScenarioEvents events;
  events.on_disk_failure = [&](int32_t, double) {
    ++seen;
    eng->Stop();
  };
  ScenarioEngine engine(params, /*num_disks=*/5, /*seed=*/21, events);
  eng = &engine;
  engine.RunUntil(1e9);
  EXPECT_EQ(seen, 1u);
  EXPECT_TRUE(engine.Stopped());
  EXPECT_LT(engine.NowHours(), 1e9);
}

// --- Rare-event acceleration: exact likelihood-ratio weights ---------------

TEST(ScenarioVrTest, ForcingWeightIsExactlyTheWindowMass) {
  // With forcing alone (bias 1) the only likelihood-ratio term is the
  // first-event window mass F = 1 - exp(-Lambda * H): per-clock fired and
  // censored terms all carry the factor (b - 1) = 0.
  FaultModelParams params;
  params.mttf_disk_raw_hours = 2e5;
  params.coverage = 0.0;
  const double horizon = 1e5;
  VarianceReduction vr;
  vr.mode = VrMode::kForcing;
  ScenarioEngine engine(params, /*num_disks=*/1, /*seed=*/7, {}, vr, horizon);
  engine.RunUntil(horizon);
  // Forcing guarantees the first fault landed inside the window.
  EXPECT_GE(engine.DiskFailures() + engine.PredictedAverted(), 1u);
  const double lambda = TotalFaultRatePerHour(params, 1);
  const double expected = std::log(-std::expm1(-lambda * horizon));
  EXPECT_NEAR(engine.FinalLogWeight(horizon), expected, 1e-12);
  // The weight is a path-independent constant under pure forcing: any
  // stopping time gives the same value.
  EXPECT_NEAR(engine.FinalLogWeight(horizon / 3.0), expected, 1e-12);
}

TEST(ScenarioVrTest, BiasedFiredDrawHasClosedFormWeight) {
  // One disk, coverage 0, stop at its first failure at age t1. The exact log
  // weight is log F' - log b + (b - 1) * t1 / m, with F' the *biased* window
  // mass (forcing samples the first event at the inflated rate).
  FaultModelParams params;
  params.mttf_disk_raw_hours = 2e5;
  params.coverage = 0.0;
  const double horizon = 1e5;
  VarianceReduction vr;
  vr.mode = VrMode::kBiasing;
  vr.failure_bias = 6.0;
  double t1 = -1.0;
  ScenarioEngine* eng = nullptr;
  ScenarioEvents events;
  events.on_disk_failure = [&](int32_t, double now) {
    t1 = now;
    eng->Stop();
  };
  ScenarioEngine engine(params, /*num_disks=*/1, /*seed=*/13, events, vr, horizon);
  eng = &engine;
  engine.RunUntil(horizon);
  ASSERT_GT(t1, 0.0);
  const double m = params.mttf_disk_raw_hours;
  const double b = vr.failure_bias;
  const double biased_mass = -std::expm1(-(b / m) * horizon);
  const double expected =
      std::log(biased_mass) - std::log(b) + (b - 1.0) * t1 / m;
  EXPECT_NEAR(engine.FinalLogWeight(t1), expected, 1e-9);
}

TEST(ScenarioVrTest, CensoredClockCarriesSurvivalRatio) {
  // Query the weight at a stopping time before the forced event fires: the
  // single clock is right-censored there, contributing (b - 1) * t / m.
  FaultModelParams params;
  params.mttf_disk_raw_hours = 2e5;
  params.coverage = 0.0;
  const double horizon = 1e5;
  VarianceReduction vr;
  vr.mode = VrMode::kBiasing;
  vr.failure_bias = 4.0;
  ScenarioEngine engine(params, /*num_disks=*/1, /*seed=*/3, {}, vr, horizon);
  const double early = 1.0;  // Virtually certain to precede the first event.
  engine.RunUntil(early);
  ASSERT_EQ(engine.DiskFailures() + engine.PredictedAverted(), 0u);
  const double m = params.mttf_disk_raw_hours;
  const double b = vr.failure_bias;
  const double biased_mass = -std::expm1(-(b / m) * horizon);
  const double expected = std::log(biased_mass) + (b - 1.0) * early / m;
  EXPECT_NEAR(engine.FinalLogWeight(early), expected, 1e-12);
}

TEST(ScenarioVrTest, MultiDiskAggregateWeightIdentity) {
  // n disks all started at 0; stop at the first failure t1. One clock fired
  // (fired term), the other n-1 are censored at t1, so the total is
  //   log F' - log b + n * (b - 1) * t1 / m.
  FaultModelParams params;
  params.mttf_disk_raw_hours = 1e5;
  params.coverage = 0.0;
  const int32_t n = 5;
  const double horizon = 4e4;
  VarianceReduction vr;
  vr.mode = VrMode::kBiasing;
  vr.failure_bias = 3.0;
  double t1 = -1.0;
  ScenarioEngine* eng = nullptr;
  ScenarioEvents events;
  events.on_disk_failure = [&](int32_t, double now) {
    t1 = now;
    eng->Stop();
  };
  ScenarioEngine engine(params, n, /*seed=*/23, events, vr, horizon);
  eng = &engine;
  engine.RunUntil(horizon);
  ASSERT_GT(t1, 0.0);
  const double m = params.mttf_disk_raw_hours;
  const double b = vr.failure_bias;
  const double biased_mass =
      -std::expm1(-(b * static_cast<double>(n) / m) * horizon);
  const double expected = std::log(biased_mass) - std::log(b) +
                          static_cast<double>(n) * (b - 1.0) * t1 / m;
  EXPECT_NEAR(engine.FinalLogWeight(t1), expected, 1e-9);
}

TEST(ScenarioVrTest, OffModeWeightIsExactlyZero) {
  FaultModelParams params;
  ScenarioEngine engine(params, /*num_disks=*/5, /*seed=*/99, {});
  engine.RunUntil(1e7);
  EXPECT_EQ(engine.FinalLogWeight(1e7), 0.0);
}

TEST(ScenarioVrTest, WeightedDualFailureEstimatorMatchesEq1) {
  // End-to-end unbiasedness against an analytic value from avail/model.cc:
  // with coverage 0 the catastrophic dual-failure MTTDL is Eq. (1),
  // MTTF^2 / (N (N+1) MTTR). Run biased timeline-only lifetimes (loss =
  // second failure inside an open repair window), estimate the weighted
  // MTTDL, and require the analytic value inside the 95% CI.
  FaultModelParams params;
  params.mttf_disk_raw_hours = 1e5;
  params.coverage = 0.0;
  params.mttr_hours = 48.0;
  AvailabilityParams avail;
  avail.mttf_disk_raw_hours = params.mttf_disk_raw_hours;
  avail.coverage = 0.0;
  avail.mttr_hours = params.mttr_hours;
  avail.num_data_disks = 4;  // 5 disks total, like the engine below.
  const double analytic = MttdlRaidCatastrophicHours(avail);

  const double cap = 2e4;
  VarianceReduction vr;
  vr.mode = VrMode::kBiasing;
  vr.failure_bias = 4.0;
  const int kLifetimes = 1500;
  std::vector<double> log_w;
  std::vector<double> loss;
  std::vector<double> hours;
  for (int i = 0; i < kLifetimes; ++i) {
    const uint64_t seed = DeriveStreamSeed(4242, static_cast<uint64_t>(i));
    double loss_hours = -1.0;
    ScenarioEngine* eng = nullptr;
    ScenarioEvents events;
    events.on_disk_failure = [&](int32_t, double now) {
      if (eng->FailedDisks() >= 2) {
        loss_hours = now;
        eng->Stop();
      }
    };
    ScenarioEngine engine(params, avail.TotalDisks(), seed, events, vr, cap);
    eng = &engine;
    engine.RunUntil(cap);
    const double stop = loss_hours > 0.0 ? loss_hours : cap;
    log_w.push_back(engine.FinalLogWeight(stop));
    loss.push_back(loss_hours > 0.0 ? 1.0 : 0.0);
    hours.push_back(stop);
  }
  const double censored_mass =
      std::exp(-TotalFaultRatePerHour(params, avail.TotalDisks()) * cap) * cap;
  const ConfidenceInterval mttdl =
      WeightedMttdlCiHours(log_w, loss, hours, censored_mass);
  EXPECT_TRUE(mttdl.Contains(analytic))
      << "analytic " << analytic << " not in [" << mttdl.lo << ", " << mttdl.hi
      << "] (point " << mttdl.point << ")";
  // And the biased campaign actually observed a useful number of events.
  double events_seen = 0.0;
  for (double l : loss) {
    events_seen += l;
  }
  EXPECT_GE(events_seen, 10.0);
}

TEST(ScenarioEngineTest, DeterministicForFixedSeed) {
  FaultModelParams params;
  std::vector<double> run1;
  std::vector<double> run2;
  for (std::vector<double>* out : {&run1, &run2}) {
    ScenarioEvents events;
    events.on_disk_failure = [out](int32_t disk, double now) {
      out->push_back(now + disk);
    };
    ScenarioEngine engine(params, /*num_disks=*/5, /*seed=*/99, events);
    engine.RunUntil(1e8);
  }
  EXPECT_EQ(run1, run2);
  EXPECT_FALSE(run1.empty());
}

}  // namespace
}  // namespace afraid
