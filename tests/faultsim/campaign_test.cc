#include "faultsim/campaign.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "avail/model.h"
#include "core/experiment.h"
#include "faultsim/report.h"
#include "faultsim/runner.h"
#include "trace/workload_gen.h"

namespace afraid {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

CampaignConfig TestCampaign(const PolicySpec& policy, int32_t lifetimes,
                            double cap_hours) {
  CampaignConfig c;
  c.array.disk_spec = DiskSpec::TinyTestDisk();
  c.array.num_disks = 5;
  c.array.stripe_unit_bytes = 8192;
  c.policy = policy;
  c.workload = PaperWorkloads().front();
  c.faults = FaultModelParams::From(AvailabilityParamsFor(c.array),
                                    SchemeFor(policy));
  c.lifetimes = lifetimes;
  c.base_seed = 20240817;
  c.max_lifetime_hours = cap_hours;
  return c;
}

TEST(CampaignTest, ThreadCountDoesNotChangeResults) {
  const CampaignConfig cfg =
      TestCampaign(PolicySpec::AfraidBaseline(), /*lifetimes=*/12, 2e7);
  const std::vector<LifetimeResult> serial = RunCampaignLifetimes(cfg, 1);
  const std::vector<LifetimeResult> parallel = RunCampaignLifetimes(cfg, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].seed, parallel[i].seed) << i;
    EXPECT_EQ(serial[i].data_loss, parallel[i].data_loss) << i;
    EXPECT_EQ(serial[i].hours_observed, parallel[i].hours_observed) << i;
    EXPECT_EQ(serial[i].bytes_lost, parallel[i].bytes_lost) << i;
    EXPECT_EQ(serial[i].disk_failures, parallel[i].disk_failures) << i;
    EXPECT_EQ(serial[i].drills, parallel[i].drills) << i;
    EXPECT_EQ(serial[i].t_unprot_fraction, parallel[i].t_unprot_fraction) << i;
  }
  const CampaignSummary s1 = Summarize(cfg, serial);
  const CampaignSummary s4 = Summarize(cfg, parallel);
  EXPECT_EQ(s1.mttdl_hours.point, s4.mttdl_hours.point);
  EXPECT_EQ(s1.mdlr_bph.point, s4.mdlr_bph.point);
  EXPECT_EQ(s1.total_bytes_lost, s4.total_bytes_lost);
}

TEST(CampaignTest, Raid0LosesOnFirstFailureNearAnalyticRate) {
  // RAID 0: never rebuilds, so (after warmup writes) every stripe written
  // stays unprotected and the first unpredicted failure loses data.
  const CampaignConfig cfg = TestCampaign(PolicySpec::Raid0(), 40, 5e6);
  const CampaignSummary s = RunCampaign(cfg, 0);
  EXPECT_EQ(s.loss_events, static_cast<uint64_t>(s.lifetimes));
  EXPECT_EQ(s.catastrophic_events, 0u);
  EXPECT_EQ(s.predicted_averted, 0u);  // Prediction cannot help RAID 0.
  const double analytic = MttdlRaid0Hours(AvailabilityParamsFor(cfg.array));
  EXPECT_GT(s.mttdl_hours.point, 0.3 * analytic);
  EXPECT_LT(s.mttdl_hours.point, 3.0 * analytic);
  EXPECT_GT(s.total_bytes_lost, 0);
}

TEST(CampaignTest, Raid5NeverLosesToSingleFailures) {
  // RAID 5 keeps parity fresh: every single-failure drill is screened out
  // (nothing dirty) and losses can only be catastrophic dual failures.
  const CampaignConfig cfg = TestCampaign(PolicySpec::Raid5(), 15, 2e7);
  const CampaignSummary s = RunCampaign(cfg, 0);
  EXPECT_EQ(s.unprotected_loss_events, 0u);
  EXPECT_EQ(s.drills, 0u);
  EXPECT_NEAR(s.mean_t_unprot_fraction, 0.0, 1e-9);
  EXPECT_EQ(s.loss_events, s.catastrophic_events);
  // Loss events are astronomically rare here; whether zero or not, the CI
  // machinery must produce a usable finite lower bound.
  EXPECT_GT(s.mttdl_hours.lo, 0.0);
  EXPECT_LT(s.mttdl_hours.lo, kInf);
}

TEST(CampaignTest, AfraidSitsBetweenRaid0AndRaid5) {
  const CampaignSummary afraid =
      RunCampaign(TestCampaign(PolicySpec::AfraidBaseline(), 30, 5e7), 0);
  const CampaignSummary raid0 =
      RunCampaign(TestCampaign(PolicySpec::Raid0(), 30, 5e6), 0);
  ASSERT_GT(afraid.loss_events, 0u);
  ASSERT_GT(raid0.loss_events, 0u);
  // The paper's ordering: RAID 0 << AFRAID < RAID 5.
  EXPECT_GT(afraid.mttdl_hours.point, 10.0 * raid0.mttdl_hours.point);
  const double raid5_analytic = MttdlRaidCatastrophicHours(
      AvailabilityParamsFor(TestCampaign(PolicySpec::Raid5(), 1, 1.0).array));
  EXPECT_LT(afraid.mttdl_hours.point, raid5_analytic);
  // AFRAID's loss mode is the unprotected-stripe one.
  EXPECT_EQ(afraid.loss_events,
            afraid.unprotected_loss_events + afraid.catastrophic_events);
  EXPECT_GT(afraid.drills, 0u);
  EXPECT_GT(afraid.mean_t_unprot_fraction, 0.0);
  EXPECT_LT(afraid.mean_t_unprot_fraction, 1.0);
}

TEST(CampaignTest, SummaryAccountingIsConsistent) {
  const CampaignConfig cfg =
      TestCampaign(PolicySpec::AfraidBaseline(), 10, 2e7);
  const std::vector<LifetimeResult> lifetimes = RunCampaignLifetimes(cfg, 0);
  const CampaignSummary s = Summarize(cfg, lifetimes);
  EXPECT_EQ(s.lifetimes, 10);
  EXPECT_EQ(s.loss_events, s.unprotected_loss_events + s.catastrophic_events +
                               s.nvram_loss_events + s.support_loss_events);
  double hours = 0.0;
  for (const LifetimeResult& r : lifetimes) {
    EXPECT_LE(r.hours_observed, cfg.max_lifetime_hours);
    EXPECT_EQ(r.data_loss, r.bytes_lost > 0);
    hours += r.hours_observed;
  }
  EXPECT_DOUBLE_EQ(s.total_hours, hours);
  if (s.loss_events > 0) {
    EXPECT_DOUBLE_EQ(s.mttdl_hours.point,
                     s.total_hours / static_cast<double>(s.loss_events));
  }
}

// --- Rare-event acceleration -----------------------------------------------

// High failure rate so the naive estimator converges in few lifetimes; used
// to validate that the biased estimators agree with it.
CampaignConfig HighRateCampaign(int32_t lifetimes) {
  CampaignConfig c = TestCampaign(PolicySpec::AfraidBaseline(), lifetimes, 4e4);
  c.faults.mttf_disk_raw_hours = 1e5;
  c.base_seed = 20260808;
  return c;
}

TEST(CampaignVrTest, BiasedResultsAreThreadCountInvariant) {
  CampaignConfig cfg = HighRateCampaign(16);
  cfg.vr.mode = VrMode::kBiasing;
  cfg.vr.failure_bias = 4.0;
  const std::vector<LifetimeResult> serial = RunCampaignLifetimes(cfg, 1);
  const std::vector<LifetimeResult> parallel = RunCampaignLifetimes(cfg, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].seed, parallel[i].seed) << i;
    EXPECT_EQ(serial[i].data_loss, parallel[i].data_loss) << i;
    EXPECT_EQ(serial[i].hours_observed, parallel[i].hours_observed) << i;
    EXPECT_EQ(serial[i].bytes_lost, parallel[i].bytes_lost) << i;
    // The weight too is a pure function of (config, index): bit-identical
    // regardless of which worker ran the lifetime.
    EXPECT_EQ(serial[i].log_weight, parallel[i].log_weight) << i;
  }
  const CampaignSummary s1 = Summarize(cfg, serial);
  const CampaignSummary s8 = Summarize(cfg, parallel);
  EXPECT_EQ(s1.mttdl_hours.point, s8.mttdl_hours.point);
  EXPECT_EQ(s1.loss_probability.point, s8.loss_probability.point);
  EXPECT_EQ(s1.ess, s8.ess);
}

TEST(CampaignVrTest, ArenaReuseIsResultIdentical) {
  // One arena run through several lifetimes (with and without variance
  // reduction) must reproduce the fresh-construction results exactly.
  for (const bool vr_on : {false, true}) {
    CampaignConfig cfg = HighRateCampaign(4);
    if (vr_on) {
      cfg.vr.mode = VrMode::kBiasing;
      cfg.vr.failure_bias = 4.0;
    }
    LifetimeArena arena;
    for (int32_t i = 0; i < cfg.lifetimes; ++i) {
      const LifetimeResult fresh = RunLifetime(cfg, i);
      const LifetimeResult reused = RunLifetime(cfg, i, &arena);
      EXPECT_EQ(fresh.seed, reused.seed) << i;
      EXPECT_EQ(fresh.data_loss, reused.data_loss) << i;
      EXPECT_EQ(fresh.hours_observed, reused.hours_observed) << i;
      EXPECT_EQ(fresh.bytes_lost, reused.bytes_lost) << i;
      EXPECT_EQ(fresh.disk_failures, reused.disk_failures) << i;
      EXPECT_EQ(fresh.drills, reused.drills) << i;
      EXPECT_EQ(fresh.t_unprot_fraction, reused.t_unprot_fraction) << i;
      EXPECT_EQ(fresh.log_weight, reused.log_weight) << i;
    }
  }
}

TEST(CampaignVrTest, OffModeHasUnitWeightsAndFullEss) {
  const CampaignConfig cfg = HighRateCampaign(8);
  const std::vector<LifetimeResult> results = RunCampaignLifetimes(cfg, 0);
  for (const LifetimeResult& r : results) {
    EXPECT_EQ(r.log_weight, 0.0);
  }
  const CampaignSummary s = Summarize(cfg, results);
  EXPECT_EQ(s.vr_mode, VrMode::kOff);
  EXPECT_DOUBLE_EQ(s.ess, 8.0);
  EXPECT_DOUBLE_EQ(s.weighted_loss_events,
                   static_cast<double>(s.loss_events));
}

TEST(CampaignVrTest, BiasedEstimateLandsInsideNaiveCi) {
  // The unbiasedness validation from the issue: on a high-failure-rate
  // config where the naive estimator converges, the biased point estimates
  // must land inside the naive 95% CIs.
  const CampaignSummary naive = RunCampaign(HighRateCampaign(400), 0);
  ASSERT_GE(naive.loss_events, 5u);

  CampaignConfig biased_cfg = HighRateCampaign(400);
  biased_cfg.vr.mode = VrMode::kBiasing;
  biased_cfg.vr.failure_bias = 2.0;
  const CampaignSummary biased = RunCampaign(biased_cfg, 0);

  EXPECT_TRUE(naive.mttdl_hours.Contains(biased.mttdl_hours.point))
      << "biased MTTDL " << biased.mttdl_hours.point << " outside naive ["
      << naive.mttdl_hours.lo << ", " << naive.mttdl_hours.hi << "]";
  EXPECT_TRUE(naive.loss_probability.Contains(biased.loss_probability.point))
      << "biased P[loss] " << biased.loss_probability.point
      << " outside naive [" << naive.loss_probability.lo << ", "
      << naive.loss_probability.hi << "]";
  // Biasing multiplies observed loss events and keeps the weights healthy at
  // this mild factor.
  EXPECT_GT(biased.loss_events, naive.loss_events);
  EXPECT_GT(biased.ess, 0.4 * 400);
}

TEST(CampaignVrTest, ForcingAcceleratesRareLossConfig) {
  // At a rare-event cap (fault-rate x cap << 1) forcing must put faults in
  // every lifetime while the naive campaign mostly samples nothing.
  CampaignConfig cfg = TestCampaign(PolicySpec::AfraidBaseline(), 60, 2000.0);
  cfg.faults.mttf_disk_raw_hours = 1e5;
  cfg.base_seed = 20260808;
  const CampaignSummary naive = RunCampaign(cfg, 0);

  CampaignConfig forced_cfg = cfg;
  forced_cfg.vr.mode = VrMode::kForcing;
  const CampaignSummary forced = RunCampaign(forced_cfg, 0);

  // Every forced lifetime saw at least one fault; the naive one mostly none.
  EXPECT_GE(forced.disk_failures + forced.predicted_averted,
            static_cast<uint64_t>(forced.lifetimes));
  EXPECT_LT(naive.disk_failures + naive.predicted_averted,
            forced.disk_failures + forced.predicted_averted);
  // Pure forcing weights are the constant window mass: no weight degeneracy.
  EXPECT_NEAR(forced.ess, 60.0, 1e-6);
}

TEST(CampaignTest, NvramVulnerableBytesCauseLossEvents) {
  // A PrestoServe-style single-copy NVRAM holding client data: each NVRAM
  // loss is a data-loss event (Section 3.4).
  CampaignConfig cfg = TestCampaign(PolicySpec::Raid5(), 10, 2e7);
  cfg.faults.nvram_mttf_hours = 15000.0;
  cfg.faults.nvram_vulnerable_bytes = 1 << 20;
  const CampaignSummary s = RunCampaign(cfg, 0);
  // MTTF 15k hours vs a 2e7-hour window: every lifetime loses, immediately
  // on its first NVRAM loss.
  EXPECT_EQ(s.loss_events, static_cast<uint64_t>(s.lifetimes));
  EXPECT_EQ(s.loss_events, s.nvram_loss_events);
  EXPECT_EQ(s.total_bytes_lost, 10 * (1 << 20));
  // And the empirical MTTDL should sit near the NVRAM MTTF.
  EXPECT_GT(s.mttdl_hours.point, 0.3 * 15000.0);
  EXPECT_LT(s.mttdl_hours.point, 3.0 * 15000.0);
}

TEST(CampaignTest, ComparisonReportMatchesModelHelpers) {
  const CampaignConfig cfg = TestCampaign(PolicySpec::Raid0(), 20, 5e6);
  const CampaignSummary s = RunCampaign(cfg, 0);
  const SchemeComparison cmp = CompareWithModel(cfg, s);
  EXPECT_EQ(cmp.scheme, RedundancyScheme::kRaid0);
  const AvailabilityParams p = AvailabilityParamsFor(cfg.array);
  EXPECT_DOUBLE_EQ(cmp.analytic_mttdl_hours, MttdlRaid0Hours(p));
  EXPECT_DOUBLE_EQ(cmp.analytic_mdlr_bph, MdlrRaid0Bph(p));
  EXPECT_GT(cmp.mttdl_ratio, 0.0);
  EXPECT_EQ(cmp.mttdl_in_ci, s.mttdl_hours.Contains(cmp.analytic_mttdl_hours));
  // The emitters must serialize without infinities leaking into JSON.
  const std::string json = ComparisonJson({cmp});
  EXPECT_NE(json.find("\"scheme\": \"RAID 0\""), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  const std::string csv = ComparisonCsv({cmp});
  EXPECT_NE(csv.find("RAID 0"), std::string::npos);
}

}  // namespace
}  // namespace afraid
