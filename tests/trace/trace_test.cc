#include "trace/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/workload_gen.h"

namespace afraid {
namespace {

Trace SmallTrace() {
  Trace t;
  t.name = "unit test trace";
  t.records = {
      {0, 0, 8192, false},
      {Milliseconds(5), 16384, 4096, true},
      {Milliseconds(250), 1 << 20, 512, true},
  };
  return t;
}

TEST(TraceIo, SerializeParseRoundTrip) {
  const Trace t = SmallTrace();
  Trace back;
  ASSERT_TRUE(ParseTrace(SerializeTrace(t), &back));
  EXPECT_EQ(back.name, t.name);
  ASSERT_EQ(back.records.size(), t.records.size());
  for (size_t i = 0; i < t.records.size(); ++i) {
    EXPECT_EQ(back.records[i].time, t.records[i].time);
    EXPECT_EQ(back.records[i].offset, t.records[i].offset);
    EXPECT_EQ(back.records[i].size, t.records[i].size);
    EXPECT_EQ(back.records[i].is_write, t.records[i].is_write);
  }
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "afraid_trace_test.txt").string();
  const Trace t = SmallTrace();
  ASSERT_TRUE(WriteTraceFile(path, t));
  Trace back;
  ASSERT_TRUE(ReadTraceFile(path, &back));
  EXPECT_EQ(back.records.size(), t.records.size());
  std::remove(path.c_str());
}

TEST(TraceIo, ParseRejectsGarbage) {
  Trace out;
  EXPECT_FALSE(ParseTrace("123 X 0 512\n", &out));     // Bad op letter.
  EXPECT_FALSE(ParseTrace("abc R 0 512\n", &out));     // Bad time.
  EXPECT_FALSE(ParseTrace("5 R 0 -12\n", &out));       // Negative size.
  EXPECT_FALSE(ParseTrace("5 R\n", &out));             // Truncated row.
  EXPECT_TRUE(ParseTrace("# only comments\n", &out));  // Empty trace is fine.
  EXPECT_TRUE(out.Empty());
}

TEST(TraceIo, ReadMissingFileFails) {
  Trace out;
  EXPECT_FALSE(ReadTraceFile("/nonexistent/path/trace.txt", &out));
}

// --- Fast scanner diagnostics -------------------------------------------------

TEST(TraceIo, MissingFileReportsFileLevelError) {
  Trace out;
  const TraceStatus st = LoadTraceFile("/nonexistent/path/trace.txt", &out);
  EXPECT_FALSE(st.ok);
  EXPECT_EQ(st.line, 0);
  EXPECT_EQ(st.message, "cannot open trace file");
  EXPECT_EQ(st.Format("trace.txt"), "trace.txt: cannot open trace file");
}

TEST(TraceIo, TruncatedLastLineReportsLineNumber) {
  Trace out;
  const TraceStatus st =
      ParseTraceText("# name t\n0 R 0 512\n100 W 4096\n", &out);
  EXPECT_FALSE(st.ok);
  EXPECT_EQ(st.line, 3);  // 1-based, counting the header line.
  EXPECT_NE(st.message.find("truncated"), std::string::npos);
}

TEST(TraceIo, MalformedFieldsNameTheLineAndField) {
  struct Case {
    const char* text;
    int64_t line;
    const char* substr;
  };
  const Case cases[] = {
      {"0 R 0 512\nx W 0 512\n", 2, "time"},
      {"0 R 0 512\n5 Q 0 512\n", 2, "op"},
      {"0 R 0 512\n5 W zz 512\n", 2, "offset"},
      {"0 R 0 512\n5 W 0 9999999999999\n", 2, "size"},
      {"0 R 0 512\n5 W 0 512 junk\n", 2, "trailing"},
      {"0 R 0 512\n-5 W 0 512\n", 2, "negative time"},
      {"0 R 0 512\n5 W -8 512\n", 2, "negative offset"},
      {"0 R 0 512\n5 W 0 0\n", 2, "non-positive size"},
      {"99999999999999999999 R 0 512\n", 1, "time"},  // int64 overflow.
  };
  for (const Case& c : cases) {
    Trace out;
    const TraceStatus st = ParseTraceText(c.text, &out);
    EXPECT_FALSE(st.ok) << c.text;
    EXPECT_EQ(st.line, c.line) << c.text;
    EXPECT_NE(st.message.find(c.substr), std::string::npos)
        << c.text << " -> " << st.message;
  }
}

TEST(TraceIo, FormatIncludesSourceAndLine) {
  const TraceStatus st = TraceStatus::Error(12, "malformed size field");
  EXPECT_EQ(st.Format("cello.trace"), "cello.trace:12: malformed size field");
}

TEST(TraceIo, ScannerAcceptsFormattingVariants) {
  Trace out;
  // Tabs, repeated separators, CRLF line endings, blank lines, and comments
  // anywhere -- all accepted by the legacy stream parser too.
  const TraceStatus st = ParseTraceText(
      "# afraid-trace v1\r\n"
      "# name  spaced out  \n"
      "\n"
      "0\tR\t0\t512\r\n"
      "  5   W   4096    1024\n"
      "# trailing comment\n",
      &out);
  ASSERT_TRUE(st.ok) << st.Format("inline");
  EXPECT_EQ(out.name, "spaced out  ");
  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.records[1].offset, 4096);
  EXPECT_EQ(out.records[1].size, 1024);
  EXPECT_TRUE(out.records[1].is_write);
}

// The fast scanner against the legacy stream parser, record for record, on
// every serialized paper workload. This is the golden equivalence the
// compiled replay pipeline rests on: both parsers must see the same trace.
TEST(TraceIo, FastScannerMatchesStreamParserOnPaperWorkloads) {
  for (const WorkloadParams& p : PaperWorkloads()) {
    WorkloadParams params = p;
    params.address_space_bytes = 1LL << 30;
    Trace t = GenerateWorkload(params, 2000, Hours(24));
    const std::string text = SerializeTrace(t);

    Trace fast;
    Trace legacy;
    ASSERT_TRUE(ParseTraceText(text, &fast).ok) << p.name;
    ASSERT_TRUE(ParseTraceStreamRef(text, &legacy)) << p.name;
    EXPECT_EQ(fast.name, legacy.name);
    ASSERT_EQ(fast.records.size(), legacy.records.size()) << p.name;
    for (size_t i = 0; i < fast.records.size(); ++i) {
      EXPECT_EQ(fast.records[i].time, legacy.records[i].time);
      EXPECT_EQ(fast.records[i].offset, legacy.records[i].offset);
      EXPECT_EQ(fast.records[i].size, legacy.records[i].size);
      EXPECT_EQ(fast.records[i].is_write, legacy.records[i].is_write);
    }
  }
}

TEST(TraceStats, BasicAccounting) {
  const TraceStats s = ComputeTraceStats(SmallTrace());
  EXPECT_EQ(s.requests, 3u);
  EXPECT_EQ(s.writes, 2u);
  EXPECT_EQ(s.bytes_read, 8192);
  EXPECT_EQ(s.bytes_written, 4096 + 512);
  EXPECT_NEAR(s.write_fraction, 2.0 / 3.0, 1e-12);
  EXPECT_GT(s.idle_fraction_100ms, 0.0);  // The 245 ms gap counts.
}

TEST(TraceStats, EmptyTrace) {
  const TraceStats s = ComputeTraceStats(Trace{});
  EXPECT_EQ(s.requests, 0u);
  EXPECT_EQ(s.mean_size_bytes, 0.0);
}

// --- Workload generator -------------------------------------------------------

WorkloadParams TestParams() {
  WorkloadParams p;
  p.name = "gen-test";
  p.seed = 99;
  p.address_space_bytes = 1LL << 30;
  p.mean_burst_requests = 20;
  p.mean_idle_ms = 400;
  p.idle_pareto_alpha = 1.4;
  p.intra_burst_gap_ms = 10;
  p.write_fraction = 0.6;
  p.size_dist = {{4096, 0.5}, {8192, 0.5}};
  return p;
}

TEST(WorkloadGen, Deterministic) {
  const Trace a = GenerateWorkload(TestParams(), 500, Hours(1));
  const Trace b = GenerateWorkload(TestParams(), 500, Hours(1));
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].time, b.records[i].time);
    EXPECT_EQ(a.records[i].offset, b.records[i].offset);
  }
}

TEST(WorkloadGen, RespectsRequestCap) {
  const Trace t = GenerateWorkload(TestParams(), 123, Hours(100));
  EXPECT_EQ(t.records.size(), 123u);
}

TEST(WorkloadGen, RespectsDurationCap) {
  const Trace t = GenerateWorkload(TestParams(), 1'000'000, Seconds(30));
  EXPECT_GT(t.records.size(), 10u);
  // The generator may overshoot by at most one burst after the deadline.
  EXPECT_LE(t.Duration(), Seconds(31));
}

TEST(WorkloadGen, RecordsWellFormed) {
  const WorkloadParams p = TestParams();
  const Trace t = GenerateWorkload(p, 5000, Hours(10));
  SimTime prev = 0;
  for (const TraceRecord& r : t.records) {
    EXPECT_GE(r.time, prev);
    prev = r.time;
    EXPECT_GE(r.offset, 0);
    EXPECT_GT(r.size, 0);
    EXPECT_EQ(r.offset % p.align_bytes, 0);
    EXPECT_LE(r.offset + r.size, p.address_space_bytes);
    EXPECT_TRUE(r.size == 4096 || r.size == 8192);
  }
}

TEST(WorkloadGen, WriteFractionApproximatelyHonored) {
  const Trace t = GenerateWorkload(TestParams(), 20000, Hours(100));
  const TraceStats s = ComputeTraceStats(t);
  EXPECT_NEAR(s.write_fraction, 0.6, 0.05);
}

TEST(WorkloadGen, BurstyWorkloadHasIdleGaps) {
  const Trace t = GenerateWorkload(TestParams(), 10000, Hours(100));
  const TraceStats s = ComputeTraceStats(t);
  // Mean idle 400ms between ~200ms bursts: well over a third of the time
  // should be in >100ms arrival gaps.
  EXPECT_GT(s.idle_fraction_100ms, 0.3);
}

TEST(WorkloadGen, LongIdlePeriodsIncreaseIdleFraction) {
  WorkloadParams p = TestParams();
  const Trace base = GenerateWorkload(p, 5000, Hours(100));
  p.long_idle_prob = 0.3;
  p.mean_long_idle_ms = 60000;
  const Trace with_long = GenerateWorkload(p, 5000, Hours(100));
  EXPECT_GT(ComputeTraceStats(with_long).idle_fraction_100ms,
            ComputeTraceStats(base).idle_fraction_100ms);
}

TEST(WorkloadGen, PaperSuiteComplete) {
  const auto all = PaperWorkloads();
  ASSERT_EQ(all.size(), 10u);
  const char* expected[] = {"hplajw",  "snake",   "cello-usr", "cello-news",
                            "netware", "ATT",     "AS400-1",   "AS400-2",
                            "AS400-3", "AS400-4"};
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].name, expected[i]);
    EXPECT_GT(all[i].write_fraction, 0.0);
    EXPECT_LT(all[i].write_fraction, 1.0);
    EXPECT_GE(all[i].mean_burst_requests, 1.0);
  }
}

TEST(WorkloadGen, FindWorkloadByName) {
  WorkloadParams p;
  EXPECT_TRUE(FindWorkload("ATT", &p));
  EXPECT_EQ(p.name, "ATT");
  EXPECT_FALSE(FindWorkload("no-such-trace", &p));
}

TEST(WorkloadGen, HeavyTracesBusierThanLightOnes) {
  WorkloadParams hplajw;
  WorkloadParams att;
  ASSERT_TRUE(FindWorkload("hplajw", &hplajw));
  ASSERT_TRUE(FindWorkload("ATT", &att));
  hplajw.address_space_bytes = att.address_space_bytes = 1LL << 30;
  const TraceStats sl = ComputeTraceStats(GenerateWorkload(hplajw, 4000, Hours(24)));
  const TraceStats sh = ComputeTraceStats(GenerateWorkload(att, 4000, Hours(24)));
  EXPECT_LT(sh.mean_interarrival_ms, sl.mean_interarrival_ms / 5.0);
  EXPECT_LT(sh.idle_fraction_100ms, sl.idle_fraction_100ms);
}

}  // namespace
}  // namespace afraid
