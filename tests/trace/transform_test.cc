#include "trace/transform.h"

#include <gtest/gtest.h>

#include "trace/workload_gen.h"

namespace afraid {
namespace {

Trace Sample() {
  Trace t;
  t.name = "s";
  t.records = {
      {Milliseconds(0), 0, 512, false},
      {Milliseconds(100), 8192, 4096, true},
      {Milliseconds(250), 1 << 20, 8192, true},
      {Milliseconds(900), 123 * 512, 1024, false},
  };
  return t;
}

TEST(Transform, ScaleTimeHalvesGaps) {
  const Trace out = ScaleTime(Sample(), 0.5);
  ASSERT_EQ(out.records.size(), 4u);
  EXPECT_EQ(out.records[1].time, Milliseconds(50));
  EXPECT_EQ(out.records[3].time, Milliseconds(450));
  EXPECT_EQ(out.records[1].offset, 8192);  // Space untouched.
}

TEST(Transform, ClipWindowShiftsToZero) {
  const Trace out = ClipWindow(Sample(), Milliseconds(100), Milliseconds(900));
  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.records[0].time, 0);
  EXPECT_EQ(out.records[1].time, Milliseconds(150));
}

TEST(Transform, ClipWindowEmptyWhenOutside) {
  const Trace out = ClipWindow(Sample(), Seconds(10), Seconds(20));
  EXPECT_TRUE(out.Empty());
}

TEST(Transform, FitToCapacityBoundsEveryRecord) {
  const Trace out = FitToCapacity(Sample(), 64 * 1024);
  for (const TraceRecord& r : out.records) {
    EXPECT_GE(r.offset, 0);
    EXPECT_LE(r.offset + r.size, 64 * 1024);
    EXPECT_EQ(r.offset % 512, 0);
  }
}

TEST(Transform, FitToCapacityPreservesInRangeRecords) {
  const Trace out = FitToCapacity(Sample(), 1LL << 30);
  EXPECT_EQ(out.records[1].offset, 8192);
}

TEST(Transform, MergeInterleavesByTime) {
  Trace a;
  a.records = {{10, 0, 512, false}, {30, 0, 512, false}};
  Trace b;
  b.records = {{20, 512, 512, true}, {40, 512, 512, true}};
  const Trace out = MergeTraces({a, b});
  ASSERT_EQ(out.records.size(), 4u);
  EXPECT_EQ(out.records[0].time, 10);
  EXPECT_EQ(out.records[1].time, 20);
  EXPECT_EQ(out.records[2].time, 30);
  EXPECT_EQ(out.records[3].time, 40);
}

TEST(Transform, ConcatenateShiftsSecondTrace) {
  const Trace a = Sample();
  const Trace out = Concatenate(a, a, Seconds(1));
  ASSERT_EQ(out.records.size(), 8u);
  EXPECT_EQ(out.records[4].time, a.Duration() + Seconds(1));
  // Still time-sorted.
  SimTime prev = 0;
  for (const TraceRecord& r : out.records) {
    EXPECT_GE(r.time, prev);
    prev = r.time;
  }
}

TEST(Transform, PipelineComposition) {
  // A realistic prep pipeline: clip a window of a generated trace, double
  // its intensity, and fit it to a small array.
  WorkloadParams p;
  p.name = "pipe";
  p.seed = 3;
  p.address_space_bytes = 8LL << 30;
  const Trace raw = GenerateWorkload(p, 2000, Hours(10));
  const Trace ready = FitToCapacity(
      ScaleTime(ClipWindow(raw, Seconds(10), Seconds(2000)), 0.5), 256 << 20);
  for (const TraceRecord& r : ready.records) {
    EXPECT_LE(r.offset + r.size, 256 << 20);
  }
  EXPECT_GT(ready.records.size(), 10u);
}

}  // namespace
}  // namespace afraid
