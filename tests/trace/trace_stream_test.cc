// Chunked streaming ingest (TraceChunkReader) and workload recording
// (WorkloadRecorder): chunk-boundary edge cases, error parity with the
// monolithic parser, fixed-memory bounds, and byte-exact serialization.

#include "trace/trace_stream.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "trace/recorder.h"
#include "trace/trace.h"
#include "trace/workload_gen.h"

namespace afraid {
namespace {

std::string TempPath(const std::string& leaf) {
  return (std::filesystem::temp_directory_path() / leaf).string();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

Trace MediumTrace() {
  WorkloadParams p = PaperWorkloads()[2];  // cello-usr.
  p.address_space_bytes = 1LL << 30;
  Trace t = GenerateWorkload(p, 500, Hours(2));
  t.name = "stream test";
  return t;
}

// Streams `path` to completion and concatenates all chunks.
Trace StreamAll(const std::string& path, const StreamOptions& opts) {
  TraceChunkReader reader(path, opts);
  Trace all;
  while (reader.Next()) {
    for (const TraceRecord& r : reader.chunk().records) {
      all.records.push_back(r);
    }
  }
  EXPECT_TRUE(reader.status().ok) << reader.status().message;
  all.name = reader.name();
  all.tenants = reader.tenants();
  return all;
}

void ExpectSameRecords(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].time, b.records[i].time) << "record " << i;
    EXPECT_EQ(a.records[i].offset, b.records[i].offset) << "record " << i;
    EXPECT_EQ(a.records[i].size, b.records[i].size) << "record " << i;
    EXPECT_EQ(a.records[i].is_write, b.records[i].is_write) << "record " << i;
  }
}

// Records split across chunk boundaries must reassemble exactly, at every
// chunk size -- including sizes far below one line, which exercise the
// grow-window-until-newline path.
TEST(TraceStream, ChunkBoundarySplitsMatchMonolithic) {
  const std::string path = TempPath("afraid_stream_split.txt");
  const Trace t = MediumTrace();
  ASSERT_TRUE(RecordTrace(t, path).ok);

  Trace mono;
  ASSERT_TRUE(LoadTraceFile(path, &mono).ok);
  ASSERT_EQ(mono.records.size(), t.records.size());

  for (const size_t chunk : {64u, 65u, 97u, 256u, 1024u, 65536u, 1u << 22}) {
    for (const bool read_ahead : {false, true}) {
      StreamOptions opts;
      opts.chunk_bytes = chunk;
      opts.read_ahead = read_ahead;
      const Trace streamed = StreamAll(path, opts);
      EXPECT_EQ(streamed.name, mono.name) << "chunk=" << chunk;
      ExpectSameRecords(streamed, mono);
    }
  }
  std::remove(path.c_str());
}

// A final line without a trailing newline is a complete record.
TEST(TraceStream, FinalLineWithoutNewline) {
  const std::string path = TempPath("afraid_stream_nonl.txt");
  WriteFileBytes(path,
                 "# afraid-trace v1\n"
                 "# name tail\n"
                 "0 R 0 512\n"
                 "1000 W 8192 4096");  // No trailing newline.
  StreamOptions opts;
  opts.chunk_bytes = 64;
  const Trace streamed = StreamAll(path, opts);
  ASSERT_EQ(streamed.records.size(), 2u);
  EXPECT_EQ(streamed.name, "tail");
  EXPECT_EQ(streamed.records[1].time, 1000);
  EXPECT_EQ(streamed.records[1].offset, 8192);
  EXPECT_EQ(streamed.records[1].size, 4096);
  EXPECT_TRUE(streamed.records[1].is_write);
  std::remove(path.c_str());
}

// A record truncated mid-field (EOF inside a line) must produce the same
// structured, line-numbered error as the monolithic parser -- regardless of
// where chunk boundaries fall.
TEST(TraceStream, TruncatedRecordMatchesMonolithicError) {
  const std::string path = TempPath("afraid_stream_trunc.txt");
  const std::string text =
      "# afraid-trace v1\n"
      "0 R 0 512\n"
      "1000 W 8192\n"  // Truncated: missing size field.
      "2000 R 0 512\n";
  WriteFileBytes(path, text);

  Trace mono;
  const TraceStatus mono_st = LoadTraceFile(path, &mono);
  ASSERT_FALSE(mono_st.ok);
  EXPECT_EQ(mono_st.line, 3);

  for (const size_t chunk : {64u, 65u, 128u, 4096u}) {
    StreamOptions opts;
    opts.chunk_bytes = chunk;
    TraceChunkReader reader(path, opts);
    while (reader.Next()) {
    }
    EXPECT_FALSE(reader.status().ok) << "chunk=" << chunk;
    EXPECT_EQ(reader.status().line, mono_st.line) << "chunk=" << chunk;
    EXPECT_EQ(reader.status().message, mono_st.message) << "chunk=" << chunk;
  }
  std::remove(path.c_str());
}

// Same parity for a malformed field in the middle of a long trace: the
// absolute line number survives chunking.
TEST(TraceStream, MidTraceErrorKeepsAbsoluteLineNumber) {
  const std::string path = TempPath("afraid_stream_midline.txt");
  std::string text = "# afraid-trace v1\n# name broken\n";
  for (int i = 0; i < 200; ++i) {
    text += std::to_string(i * 1000) + " R 0 512\n";
  }
  text += "999999 Q 0 512\n";  // Line 203: bad op letter.
  WriteFileBytes(path, text);

  Trace mono;
  const TraceStatus mono_st = LoadTraceFile(path, &mono);
  ASSERT_FALSE(mono_st.ok);
  ASSERT_EQ(mono_st.line, 203);

  StreamOptions opts;
  opts.chunk_bytes = 128;
  TraceChunkReader reader(path, opts);
  uint64_t before_error = 0;
  while (reader.Next()) {
    before_error += reader.chunk().records.size();
  }
  EXPECT_FALSE(reader.status().ok);
  EXPECT_EQ(reader.status().line, mono_st.line);
  EXPECT_EQ(reader.status().message, mono_st.message);
  // Everything before the bad line was still delivered.
  EXPECT_EQ(before_error, 200u);
  std::remove(path.c_str());
}

TEST(TraceStream, MissingFileReportsOpenError) {
  TraceChunkReader reader(TempPath("afraid_no_such_trace.txt"));
  EXPECT_FALSE(reader.Next());
  EXPECT_FALSE(reader.status().ok);
  EXPECT_EQ(reader.status().line, 0);
}

// The "# tenants N" header round-trips through record + stream.
TEST(TraceStream, TenantsHeaderRoundTrips) {
  const std::string path = TempPath("afraid_stream_tenants.txt");
  Trace t;
  t.name = "fleet mix";
  t.tenants = 37;
  t.records = {{0, 0, 512, false}, {5, 8192, 512, true}};
  ASSERT_TRUE(RecordTrace(t, path).ok);

  TraceChunkReader reader(path);
  ASSERT_TRUE(reader.Next());
  EXPECT_EQ(reader.name(), "fleet mix");
  EXPECT_EQ(reader.tenants(), 37);
  EXPECT_FALSE(reader.Next());
  EXPECT_TRUE(reader.status().ok);

  Trace mono;
  ASSERT_TRUE(LoadTraceFile(path, &mono).ok);
  EXPECT_EQ(mono.tenants, 37);
  std::remove(path.c_str());
}

// Fixed memory: the reader's high-water mark is bounded by a small multiple
// of the chunk size and does not grow when the trace gets 8x longer.
TEST(TraceStream, PeakBufferBoundedByChunkNotTraceLength) {
  WorkloadParams p = PaperWorkloads()[2];
  p.address_space_bytes = 1LL << 30;
  const std::string short_path = TempPath("afraid_stream_short.txt");
  const std::string long_path = TempPath("afraid_stream_long.txt");
  ASSERT_TRUE(RecordTrace(GenerateWorkload(p, 1000, Hours(24)), short_path).ok);
  ASSERT_TRUE(RecordTrace(GenerateWorkload(p, 8000, Hours(24)), long_path).ok);

  StreamOptions opts;
  opts.chunk_bytes = 4096;
  size_t peak_short = 0;
  size_t peak_long = 0;
  {
    TraceChunkReader reader(short_path, opts);
    while (reader.Next()) {
    }
    ASSERT_TRUE(reader.status().ok);
    peak_short = reader.peak_buffer_bytes();
  }
  {
    TraceChunkReader reader(long_path, opts);
    while (reader.Next()) {
    }
    ASSERT_TRUE(reader.status().ok);
    EXPECT_EQ(reader.records_read(), 8000u);
    EXPECT_GT(reader.chunks_read(), 10);
    peak_long = reader.peak_buffer_bytes();
  }
  // 8x the records, same bounded footprint (allow slack for allocator
  // rounding and per-chunk record counts that vary with line lengths).
  EXPECT_LE(peak_long, peak_short * 2);
  // And the footprint is a small multiple of the chunk size, not the file.
  EXPECT_LE(peak_long, opts.chunk_bytes * 16);
  std::remove(short_path.c_str());
  std::remove(long_path.c_str());
}

// WorkloadRecorder's byte format is exactly SerializeTrace's.
TEST(WorkloadRecorderTest, BytesMatchSerializeTrace) {
  Trace t = MediumTrace();
  t.tenants = 12;
  const std::string path = TempPath("afraid_recorder_bytes.txt");
  ASSERT_TRUE(RecordTrace(t, path).ok);

  std::ifstream in(path, std::ios::binary);
  std::string recorded((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(recorded, SerializeTrace(t));
  std::remove(path.c_str());
}

// Tiny write buffers force many flushes; bytes must be unchanged.
TEST(WorkloadRecorderTest, TinyBufferFlushesKeepBytes) {
  const Trace t = MediumTrace();
  const std::string path = TempPath("afraid_recorder_tinybuf.txt");
  {
    WorkloadRecorder rec(path, /*buffer_bytes=*/1);
    ASSERT_TRUE(rec.ok());
    rec.SetName(t.name);
    for (const TraceRecord& r : t.records) {
      rec.Append(r);
    }
    ASSERT_TRUE(rec.Close());
    EXPECT_EQ(rec.records(), t.records.size());
  }
  std::ifstream in(path, std::ios::binary);
  std::string recorded((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(recorded, SerializeTrace(t));
  std::remove(path.c_str());
}

TEST(WorkloadRecorderTest, UnwritablePathReportsError) {
  const TraceStatus st = RecordTrace(Trace(), "/nonexistent-dir/x/trace.txt");
  EXPECT_FALSE(st.ok);
}

// ScanTraceChunk append semantics: feeding a serialized trace in two windows
// equals one ParseTraceText, with absolute line numbers across the seam.
TEST(TraceStream, ScanTraceChunkAppendsWithAbsoluteLines) {
  const Trace t = MediumTrace();
  const std::string text = SerializeTrace(t);
  // Split at a line boundary near the middle.
  const size_t cut = text.find('\n', text.size() / 2) + 1;
  const std::string_view first(text.data(), cut);
  const std::string_view second(text.data() + cut, text.size() - cut);

  Trace out;
  int64_t next_line = 1;
  ASSERT_TRUE(ScanTraceChunk(first, next_line, &out, &next_line).ok);
  const size_t after_first = out.records.size();
  ASSERT_TRUE(ScanTraceChunk(second, next_line, &out, &next_line).ok);
  EXPECT_GT(after_first, 0u);
  EXPECT_GT(out.records.size(), after_first);
  ExpectSameRecords(out, t);

  Trace whole;
  ASSERT_TRUE(ParseTraceText(text, &whole).ok);
  ExpectSameRecords(out, whole);
}

}  // namespace
}  // namespace afraid
