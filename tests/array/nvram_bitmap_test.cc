// Randomized equivalence test: NvramBitmap against a std::set<int64_t>
// reference model. The bitmap replaced an ordered set in the controller, so
// every observable -- Mark/Clear return values, IsDirty, DirtyCount,
// NextDirty's wrap-around sweep, and ascending iteration -- must match the
// set semantics exactly.

#include "array/nvram.h"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

namespace afraid {
namespace {

// The ordered-set semantics NextDirty replaced: smallest element >= from,
// wrapping to the smallest overall; -1 when empty. `from` outside the valid
// range behaves like 0 (callers probe with last_rebuilt_key + 1, which can
// run one past the end).
int64_t ReferenceNext(const std::set<int64_t>& ref, int64_t from, int64_t n) {
  if (ref.empty()) {
    return -1;
  }
  if (from < 0 || from >= n) {
    from = 0;
  }
  auto it = ref.lower_bound(from);
  if (it == ref.end()) {
    it = ref.begin();
  }
  return *it;
}

void CheckAgainstReference(const NvramBitmap& bm, const std::set<int64_t>& ref,
                           int64_t n) {
  ASSERT_EQ(bm.DirtyCount(), static_cast<int64_t>(ref.size()));
  // Full iteration must produce the set's ascending order.
  const auto view = bm.DirtyStripes();
  EXPECT_EQ(view.empty(), ref.empty());
  EXPECT_EQ(view.size(), ref.size());
  std::vector<int64_t> got(view.begin(), view.end());
  std::vector<int64_t> want(ref.begin(), ref.end());
  ASSERT_EQ(got, want);
}

TEST(NvramBitmapTest, RandomizedEquivalenceWithSetReference) {
  // Sizes straddle the word (64) and summary-word (4096) boundaries, plus a
  // non-multiple to exercise the partial last word.
  for (const int64_t n : {1, 63, 64, 65, 130, 4096, 4100, 9000}) {
    std::mt19937_64 rng(0x5eed0000 + static_cast<uint64_t>(n));
    std::uniform_int_distribution<int64_t> stripe_dist(0, n - 1);
    std::uniform_int_distribution<int> op_dist(0, 99);

    NvramBitmap bm(n);
    std::set<int64_t> ref;

    for (int step = 0; step < 3000; ++step) {
      const int op = op_dist(rng);
      if (op < 45) {
        const int64_t s = stripe_dist(rng);
        EXPECT_EQ(bm.Mark(s), ref.insert(s).second);
      } else if (op < 85) {
        const int64_t s = stripe_dist(rng);
        EXPECT_EQ(bm.Clear(s), ref.erase(s) > 0);
      } else if (op < 95) {
        // Probe NextDirty at an arbitrary point, including one past the end
        // (the rebuild cursor's wrap probe) and far out of range.
        std::uniform_int_distribution<int64_t> from_dist(0, n + 2);
        const int64_t from = from_dist(rng);
        EXPECT_EQ(bm.NextDirty(from), ReferenceNext(ref, from, n))
            << "n=" << n << " from=" << from;
      } else {
        const int64_t s = stripe_dist(rng);
        EXPECT_EQ(bm.IsDirty(s), ref.contains(s));
      }
      if (step % 250 == 0) {
        CheckAgainstReference(bm, ref, n);
      }
    }
    CheckAgainstReference(bm, ref, n);

    // Sweep NextDirty across every possible cursor position once at the end.
    for (int64_t from = 0; from <= n; ++from) {
      ASSERT_EQ(bm.NextDirty(from), ReferenceNext(ref, from, n))
          << "n=" << n << " from=" << from;
    }
  }
}

TEST(NvramBitmapTest, FailLosesAllMarksAndRepairRestores) {
  NvramBitmap bm(5000);
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<int64_t> stripe_dist(0, 4999);
  for (int i = 0; i < 400; ++i) {
    bm.Mark(stripe_dist(rng));
  }
  ASSERT_GT(bm.DirtyCount(), 0);
  ASSERT_FALSE(bm.failed());

  bm.Fail();
  EXPECT_TRUE(bm.failed());
  EXPECT_EQ(bm.DirtyCount(), 0);
  EXPECT_EQ(bm.NextDirty(0), -1);
  EXPECT_TRUE(bm.DirtyStripes().empty());
  for (int64_t s = 0; s < 5000; ++s) {
    ASSERT_FALSE(bm.IsDirty(s));
  }

  // The part is replaced; marking works again from a clean slate.
  bm.Repair();
  EXPECT_FALSE(bm.failed());
  EXPECT_TRUE(bm.Mark(4097));
  EXPECT_EQ(bm.DirtyCount(), 1);
  EXPECT_EQ(bm.NextDirty(0), 4097);
  EXPECT_EQ(bm.NextDirty(4098), 4097);  // Wraps to the only dirty stripe.
}

TEST(NvramBitmapTest, FirstMarkAfterAllClearIsFoundFromAnyCursor) {
  NvramBitmap bm(8192);
  EXPECT_EQ(bm.NextDirty(0), -1);
  EXPECT_TRUE(bm.Mark(7000));
  EXPECT_FALSE(bm.Mark(7000));  // Re-marking is a no-op.
  EXPECT_EQ(bm.NextDirty(0), 7000);
  EXPECT_EQ(bm.NextDirty(7000), 7000);
  EXPECT_EQ(bm.NextDirty(7001), 7000);  // Wrap.
  EXPECT_TRUE(bm.Clear(7000));
  EXPECT_FALSE(bm.Clear(7000));
  EXPECT_EQ(bm.NextDirty(0), -1);
  EXPECT_EQ(bm.DirtyCount(), 0);
  EXPECT_EQ(bm.HardwareBits(), 8192);
}

}  // namespace
}  // namespace afraid
