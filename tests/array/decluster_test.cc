// Placement invariants for the declustered layout, checked against the same
// properties the left-symmetric layout guarantees: every logical block maps
// to exactly one physical unit, no two blocks share a unit, the design tiles
// every disk perfectly, and -- when the compiled design is a 2-design -- the
// rebuild reads of a failed disk land on every survivor exactly equally.

#include "array/decluster.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "sim/random.h"

namespace afraid {
namespace {

// Rebuild-read histogram: for every stripe that uses `failed`, one unit is
// read from each other member disk. This is exactly what the controllers'
// reconstruction sweeps issue (n-1 data + parity reads per affected stripe).
std::map<int32_t, int64_t> SurvivorReads(const ArrayLayout& lay,
                                         int32_t failed) {
  std::map<int32_t, int64_t> reads;
  for (int64_t s = 0; s < lay.num_stripes(); ++s) {
    if (!lay.StripeUsesDisk(s, failed)) {
      continue;
    }
    for (int32_t w = 0; w < lay.parity_blocks(); ++w) {
      const int32_t d = lay.ParityDisk(s, w);
      if (d != failed) {
        ++reads[d];
      }
    }
    for (int32_t j = 0; j < lay.data_blocks_per_stripe(); ++j) {
      const int32_t d = lay.DataDisk(s, j);
      if (d != failed) {
        ++reads[d];
      }
    }
  }
  return reads;
}

// Every (disk, byte_offset) cell each layout touches, with multiplicity
// checked to be one. Shared by the per-layout invariant tests below.
void ExpectCollisionFreePerfectTiling(const ArrayLayout& lay) {
  std::set<std::pair<int32_t, int64_t>> cells;
  std::vector<int64_t> per_disk(static_cast<size_t>(lay.num_disks()), 0);
  for (int64_t s = 0; s < lay.num_stripes(); ++s) {
    std::set<int32_t> in_stripe;
    for (int32_t w = 0; w < lay.parity_blocks(); ++w) {
      const BlockLoc pl = lay.ParityLocation(s, w);
      EXPECT_EQ(pl.disk, lay.ParityDisk(s, w));
      EXPECT_EQ(pl.byte_offset % lay.stripe_unit(), 0);
      EXPECT_LT(pl.byte_offset, lay.DiskDataBytes());
      EXPECT_TRUE(cells.insert({pl.disk, pl.byte_offset}).second)
          << "parity collision at stripe " << s;
      EXPECT_TRUE(in_stripe.insert(pl.disk).second);
      ++per_disk[static_cast<size_t>(pl.disk)];
    }
    for (int32_t j = 0; j < lay.data_blocks_per_stripe(); ++j) {
      const BlockLoc dl = lay.DataLocation(s, j);
      EXPECT_EQ(dl.disk, lay.DataDisk(s, j));
      EXPECT_EQ(dl.byte_offset % lay.stripe_unit(), 0);
      EXPECT_LT(dl.byte_offset, lay.DiskDataBytes());
      EXPECT_TRUE(cells.insert({dl.disk, dl.byte_offset}).second)
          << "data collision at stripe " << s << " block " << j;
      EXPECT_TRUE(in_stripe.insert(dl.disk).second)
          << "stripe " << s << " repeats a disk";
      ++per_disk[static_cast<size_t>(dl.disk)];
    }
    EXPECT_EQ(in_stripe.size(), static_cast<size_t>(lay.stripe_width()));
  }
  // Exactly num_stripes * k units, spread evenly: the design tiles each
  // disk's data region with no holes below DiskDataBytes.
  EXPECT_EQ(cells.size(),
            static_cast<size_t>(lay.num_stripes()) * lay.stripe_width());
  const int64_t units_per_disk = lay.DiskDataBytes() / lay.stripe_unit();
  for (int32_t d = 0; d < lay.num_disks(); ++d) {
    EXPECT_EQ(per_disk[static_cast<size_t>(d)], units_per_disk)
        << "disk " << d << " not perfectly tiled";
  }
}

TEST(Decluster, TabulatedDifferenceSetsAreTwoDesigns) {
  struct Case {
    int32_t c, k;
  };
  for (const auto& tc : {Case{7, 3}, Case{11, 5}, Case{13, 4}, Case{21, 5}}) {
    DeclusteredLayout lay(tc.c, 8192, 3000 * 8192, 1, tc.k);
    EXPECT_EQ(lay.blocks_per_rotation(), tc.c);
    EXPECT_TRUE(lay.pair_balanced()) << "(" << tc.c << "," << tc.k << ")";
    // 2-design identity: lambda * (C-1) = r * (k-1), with b = C so r = k.
    EXPECT_EQ(lay.pair_lambda() * (tc.c - 1), tc.k * (tc.k - 1));
  }
}

TEST(Decluster, CompleteDesignIsTwoDesign) {
  // No tabulated (10, 4); binom(10, 4) = 210 fits the table budget.
  DeclusteredLayout lay(10, 8192, 3000 * 8192, 1, 4);
  EXPECT_EQ(lay.blocks_per_rotation(), 210);
  EXPECT_TRUE(lay.pair_balanced());
  EXPECT_EQ(lay.pair_lambda(), 28);  // binom(C-2, k-2) = binom(8, 2).
}

TEST(Decluster, IntervalFallbackIsDeclusteredButNotBalanced) {
  // binom(24, 3) = 2024 exceeds the complete-design budget, no tabulated
  // set: the consecutive-interval fallback kicks in.
  DeclusteredLayout lay(24, 8192, 3000 * 8192, 1, 3);
  EXPECT_EQ(lay.blocks_per_rotation(), 24);
  EXPECT_FALSE(lay.pair_balanced());
  EXPECT_EQ(lay.pair_lambda(), 0);
  ExpectCollisionFreePerfectTiling(lay);
}

TEST(Decluster, CollisionFreePerfectTilingBothLayouts) {
  for (int32_t parity : {1, 2}) {
    StripeLayout stripe(8, 8192, 200 * 8192, parity);
    ExpectCollisionFreePerfectTiling(stripe);
    DeclusteredLayout decl(8, 8192, 200 * 8192, parity, 5);
    ExpectCollisionFreePerfectTiling(decl);
  }
  DeclusteredLayout fano(7, 8192, 500 * 8192, 1, 3);
  ExpectCollisionFreePerfectTiling(fano);
}

TEST(Decluster, StripeUsesDiskMatchesMembership) {
  DeclusteredLayout lay(13, 8192, 1000 * 8192, 1, 4);
  for (int64_t s = 0; s < lay.num_stripes(); ++s) {
    std::set<int32_t> members;
    members.insert(lay.ParityDisk(s));
    for (int32_t j = 0; j < lay.data_blocks_per_stripe(); ++j) {
      members.insert(lay.DataDisk(s, j));
    }
    for (int32_t d = 0; d < lay.num_disks(); ++d) {
      EXPECT_EQ(lay.StripeUsesDisk(s, d), members.count(d) > 0)
          << "stripe " << s << " disk " << d;
    }
  }
}

TEST(Decluster, RebuildReadsExactlyBalancedForTwoDesigns) {
  // Fano plane: lambda = 1, every survivor is read exactly once per
  // rotation. The left-symmetric reference reads every survivor on every
  // stripe -- the full array, which is exactly the imbalance-free but
  // unthrottled behavior declustering improves on.
  DeclusteredLayout lay(7, 8192, 700 * 8192, 1, 3);
  ASSERT_TRUE(lay.pair_balanced());
  for (int32_t failed : {0, 3, 6}) {
    const auto reads = SurvivorReads(lay, failed);
    ASSERT_EQ(reads.size(), static_cast<size_t>(lay.num_disks() - 1));
    for (const auto& [disk, count] : reads) {
      EXPECT_EQ(count, lay.pair_lambda() * lay.rotations())
          << "survivor " << disk << " after failing " << failed;
    }
  }
  // Work touched: lambda*(C-1) units per rotation out of r*C total, i.e.
  // the declustering ratio alpha = (k-1)/(C-1) of each survivor.
  const auto reads = SurvivorReads(lay, 0);
  const int64_t units_per_disk = lay.DiskDataBytes() / lay.stripe_unit();
  for (const auto& [disk, count] : reads) {
    EXPECT_DOUBLE_EQ(static_cast<double>(count) / units_per_disk,
                     lay.declustering_ratio());
  }
}

TEST(Decluster, NaiveIntervalMapperIsNotBalanced) {
  // The reference point for the 2-design guarantee: consecutive-interval
  // placement declusters (only k-1 survivors per affected stripe) but piles
  // rebuild reads onto the failed disk's near neighbors.
  DeclusteredLayout lay(24, 8192, 3000 * 8192, 1, 3);
  ASSERT_FALSE(lay.pair_balanced());
  const auto reads = SurvivorReads(lay, 5);
  int64_t lo = INT64_MAX;
  int64_t hi = 0;
  for (const auto& [disk, count] : reads) {
    lo = std::min(lo, count);
    hi = std::max(hi, count);
  }
  // Neighbors at distance 1 co-occur in two interval blocks per rotation,
  // distance 2 in one: a 2:1 skew a 2-design would never show.
  EXPECT_GT(hi, lo);
}

TEST(Decluster, LeftSymmetricUsesEveryDiskEveryStripe) {
  StripeLayout lay(8, 8192, 100 * 8192, 1);
  for (int64_t s = 0; s < lay.num_stripes(); ++s) {
    for (int32_t d = 0; d < lay.num_disks(); ++d) {
      EXPECT_TRUE(lay.StripeUsesDisk(s, d));
    }
  }
}

TEST(Decluster, SplitIsExactCoverOverDeclusteredCapacity) {
  Rng rng(11);
  DeclusteredLayout lay(13, 8192, 4000 * 8192, 1, 4);
  const int64_t cap = lay.data_capacity_bytes();
  EXPECT_EQ(cap, lay.num_stripes() * 3 * 8192);  // k - parity data blocks.
  for (int i = 0; i < 1000; ++i) {
    const int64_t size = rng.UniformInt(1, 100 * 1024);
    const int64_t off = rng.UniformInt(0, cap - size);
    const auto segs = lay.Split(off, size);
    int64_t expect = off;
    int64_t total = 0;
    for (const Segment& seg : segs) {
      EXPECT_EQ(seg.logical_offset, expect);
      EXPECT_GT(seg.length, 0);
      EXPECT_LE(seg.offset_in_block + seg.length, 8192);
      EXPECT_LT(seg.block_in_stripe, lay.data_blocks_per_stripe());
      EXPECT_EQ(lay.LogicalOffsetOf(seg.stripe, seg.block_in_stripe) +
                    seg.offset_in_block,
                seg.logical_offset);
      expect += seg.length;
      total += seg.length;
    }
    EXPECT_EQ(total, size);
  }
}

TEST(Decluster, RotationsShiftParityAcrossMembers) {
  // Within one block of the design, the parity role must rotate across the
  // member disks as rotations advance (no fixed parity disk per block).
  DeclusteredLayout lay(7, 8192, 700 * 8192, 1, 3);
  ASSERT_GE(lay.rotations(), 3);
  const int64_t b = lay.blocks_per_rotation();
  std::set<int32_t> parity_disks;
  for (int64_t rot = 0; rot < 3; ++rot) {
    parity_disks.insert(lay.ParityDisk(rot * b));  // Block 0 each rotation.
  }
  EXPECT_EQ(parity_disks.size(), 3u);
}

TEST(Decluster, MakeLayoutSelectsAndFallsBack) {
  auto decl = MakeLayout(LayoutKind::kDeclustered, 13, 8192, 1000 * 8192, 1, 4);
  EXPECT_STREQ(decl->LayoutName(), "declustered");
  auto left = MakeLayout(LayoutKind::kLeftSymmetric, 13, 8192, 1000 * 8192, 1, 0);
  EXPECT_STREQ(left->LayoutName(), "left-symmetric");
  // Too few disks for any k with parity+2 <= k < C: degrade gracefully.
  auto tiny = MakeLayout(LayoutKind::kDeclustered, 3, 8192, 1000 * 8192, 1, 0);
  EXPECT_STREQ(tiny->LayoutName(), "left-symmetric");
  // Width 0 picks AutoWidth.
  auto autow = MakeLayout(LayoutKind::kDeclustered, 10, 8192, 1000 * 8192, 1, 0);
  EXPECT_STREQ(autow->LayoutName(), "declustered");
  EXPECT_EQ(autow->stripe_width(),
            DeclusteredLayout::AutoWidth(10, 1));
}

TEST(Decluster, AutoWidthStaysInRange) {
  for (int32_t parity : {1, 2}) {
    for (int32_t c = parity + 3; c <= 40; ++c) {
      const int32_t k = DeclusteredLayout::AutoWidth(c, parity);
      EXPECT_GE(k, parity + 2) << "C=" << c;
      EXPECT_LT(k, c) << "C=" << c;
    }
  }
}

TEST(Decluster, LayoutKindNamesRoundTrip) {
  LayoutKind kind = LayoutKind::kLeftSymmetric;
  EXPECT_TRUE(LayoutKindFromName("declustered", &kind));
  EXPECT_EQ(kind, LayoutKind::kDeclustered);
  EXPECT_TRUE(LayoutKindFromName("left-symmetric", &kind));
  EXPECT_EQ(kind, LayoutKind::kLeftSymmetric);
  EXPECT_FALSE(LayoutKindFromName("zigzag", &kind));
  EXPECT_STREQ(LayoutKindName(LayoutKind::kDeclustered), "declustered");
  EXPECT_STREQ(LayoutKindName(LayoutKind::kLeftSymmetric), "left-symmetric");
}

}  // namespace
}  // namespace afraid
