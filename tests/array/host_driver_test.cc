#include "array/host_driver.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace afraid {
namespace {

// A scripted controller: completes each request after a fixed service time,
// recording dispatch order.
class FakeArray : public ArrayController {
 public:
  FakeArray(Simulator* sim, SimDuration service) : sim_(sim), service_(service) {}

  void Submit(const ClientRequest& request, RequestDone done) override {
    dispatched_.push_back(request.offset);
    ++in_flight_;
    max_in_flight_ = std::max(max_in_flight_, in_flight_);
    sim_->After(service_, [this, done = std::move(done)]() mutable {
      --in_flight_;
      done();
    });
  }
  int64_t DataCapacityBytes() const override { return 1LL << 40; }

  std::vector<int64_t> dispatched_;
  int32_t in_flight_ = 0;
  int32_t max_in_flight_ = 0;

 private:
  Simulator* sim_;
  SimDuration service_;
};

TEST(HostDriver, CompletesAndMeasuresLatency) {
  Simulator sim;
  FakeArray array(&sim, Milliseconds(10));
  HostDriver driver(&sim, &array, 4);
  driver.Submit(0, 512, false);
  sim.RunToEnd();
  EXPECT_TRUE(driver.Drained());
  EXPECT_EQ(driver.Completed(), 1u);
  EXPECT_NEAR(driver.AllLatencies().Mean(), 10.0, 1e-9);
}

TEST(HostDriver, EnforcesConcurrencyLimit) {
  Simulator sim;
  FakeArray array(&sim, Milliseconds(10));
  HostDriver driver(&sim, &array, 3);
  for (int i = 0; i < 10; ++i) {
    driver.Submit(i * 512, 512, false);
  }
  sim.RunToEnd();
  EXPECT_EQ(array.max_in_flight_, 3);
  EXPECT_EQ(driver.Completed(), 10u);
}

TEST(HostDriver, UnlimitedWhenMaxActiveZero) {
  Simulator sim;
  FakeArray array(&sim, Milliseconds(10));
  HostDriver driver(&sim, &array, 0);
  for (int i = 0; i < 10; ++i) {
    driver.Submit(i * 512, 512, false);
  }
  sim.RunToEnd();
  EXPECT_EQ(array.max_in_flight_, 10);
}

TEST(HostDriver, ClookDispatchOrder) {
  Simulator sim;
  FakeArray array(&sim, Milliseconds(10));
  HostDriver driver(&sim, &array, 1);
  // First request dispatches immediately (offset 5000); the rest queue.
  driver.Submit(5000, 512, false);
  driver.Submit(9000, 512, false);
  driver.Submit(1000, 512, false);
  driver.Submit(7000, 512, false);
  driver.Submit(3000, 512, false);
  sim.RunToEnd();
  // CLOOK from 5000: 7000, 9000, then wrap to 1000, 3000.
  EXPECT_EQ(array.dispatched_,
            (std::vector<int64_t>{5000, 7000, 9000, 1000, 3000}));
}

TEST(HostDriver, ClookDoesNotStarveLowOffsets) {
  Simulator sim;
  FakeArray array(&sim, Milliseconds(10));
  HostDriver driver(&sim, &array, 1);
  driver.Submit(100000, 512, false);
  // While the sweep is high, feed a low-offset request; it must be served on
  // the wrap, not starve.
  driver.Submit(50, 512, false);
  sim.RunToEnd();
  EXPECT_EQ(driver.Completed(), 2u);
  EXPECT_EQ(array.dispatched_.back(), 50);
}

TEST(HostDriver, SeparatesReadAndWriteLatencies) {
  Simulator sim;
  FakeArray array(&sim, Milliseconds(10));
  HostDriver driver(&sim, &array, 8);
  driver.Submit(0, 512, false);
  driver.Submit(512, 512, true);
  driver.Submit(1024, 512, true);
  sim.RunToEnd();
  EXPECT_EQ(driver.ReadLatencies().Count(), 1u);
  EXPECT_EQ(driver.WriteLatencies().Count(), 2u);
  EXPECT_EQ(driver.AllLatencies().Count(), 3u);
}

TEST(HostDriver, LatencyIncludesQueueingDelay) {
  Simulator sim;
  FakeArray array(&sim, Milliseconds(10));
  HostDriver driver(&sim, &array, 1);
  driver.Submit(0, 512, false);
  driver.Submit(512, 512, false);  // Waits 10 ms in the driver queue.
  sim.RunToEnd();
  EXPECT_NEAR(driver.AllLatencies().Max(), 20.0, 1e-9);
  EXPECT_NEAR(driver.AllLatencies().Min(), 10.0, 1e-9);
}

TEST(HostDriver, OccupancyTimeAverage) {
  Simulator sim;
  FakeArray array(&sim, Milliseconds(10));
  HostDriver driver(&sim, &array, 4);
  driver.Submit(0, 512, false);
  sim.RunToEnd();       // Busy 10 ms with 1 request.
  sim.RunUntil(Milliseconds(20));  // Idle 10 ms.
  EXPECT_NEAR(driver.Occupancy().MeanTo(sim.Now()), 0.5, 1e-9);
}

TEST(HostDriverFcfs, DispatchesInArrivalOrder) {
  Simulator sim;
  FakeArray array(&sim, Milliseconds(10));
  HostDriver driver(&sim, &array, 1, HostSched::kFcfs);
  driver.Submit(5000, 512, false);
  driver.Submit(9000, 512, false);
  driver.Submit(1000, 512, false);
  driver.Submit(7000, 512, false);
  sim.RunToEnd();
  EXPECT_EQ(array.dispatched_, (std::vector<int64_t>{5000, 9000, 1000, 7000}));
}

TEST(HostDriverFcfs, SameLatencyAccounting) {
  Simulator sim;
  FakeArray array(&sim, Milliseconds(10));
  HostDriver driver(&sim, &array, 1, HostSched::kFcfs);
  driver.Submit(0, 512, false);
  driver.Submit(512, 512, true);
  sim.RunToEnd();
  EXPECT_EQ(driver.Completed(), 2u);
  EXPECT_NEAR(driver.AllLatencies().Max(), 20.0, 1e-9);
}

}  // namespace
}  // namespace afraid
