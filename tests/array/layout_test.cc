#include "array/layout.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <vector>

#include "sim/random.h"

namespace afraid {
namespace {

TEST(Layout, ClassicLeftSymmetricPicture) {
  // The 5-disk picture from the header comment.
  StripeLayout layout(5, 8192, 50 * 8192, 1);
  // Parity rotates right-to-left.
  EXPECT_EQ(layout.ParityDisk(0), 4);
  EXPECT_EQ(layout.ParityDisk(1), 3);
  EXPECT_EQ(layout.ParityDisk(2), 2);
  EXPECT_EQ(layout.ParityDisk(3), 1);
  EXPECT_EQ(layout.ParityDisk(4), 0);
  EXPECT_EQ(layout.ParityDisk(5), 4);  // Wraps.
  // Stripe 0: D0..D3 on disks 0..3.
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(layout.DataDisk(0, j), j);
  }
  // Stripe 1: D4 on disk 4, D5..D7 on disks 0..2.
  EXPECT_EQ(layout.DataDisk(1, 0), 4);
  EXPECT_EQ(layout.DataDisk(1, 1), 0);
  EXPECT_EQ(layout.DataDisk(1, 2), 1);
  EXPECT_EQ(layout.DataDisk(1, 3), 2);
}

TEST(Layout, ConsecutiveDataBlocksVisitAllDisks) {
  // The left-symmetric property: logical blocks 0..num_disks-1 land on
  // distinct disks (full parallelism for sequential access).
  StripeLayout layout(5, 8192, 50 * 8192, 1);
  std::set<int32_t> disks;
  for (int64_t b = 0; b < 5; ++b) {
    const int64_t stripe = b / 4;
    const auto j = static_cast<int32_t>(b % 4);
    disks.insert(layout.DataDisk(stripe, j));
  }
  EXPECT_EQ(disks.size(), 5u);
}

TEST(Layout, ParityNeverCollidesWithData) {
  for (int32_t nd : {3, 4, 5, 8}) {
    StripeLayout layout(nd, 8192, 100 * 8192, 1);
    for (int64_t s = 0; s < 50; ++s) {
      std::set<int32_t> used;
      used.insert(layout.ParityDisk(s));
      for (int32_t j = 0; j < layout.data_blocks_per_stripe(); ++j) {
        EXPECT_TRUE(used.insert(layout.DataDisk(s, j)).second)
            << "collision at stripe " << s << " block " << j;
      }
      EXPECT_EQ(used.size(), static_cast<size_t>(nd));
    }
  }
}

TEST(Layout, Raid6ParityDisksDistinct) {
  StripeLayout layout(6, 8192, 100 * 8192, 2);
  EXPECT_EQ(layout.data_blocks_per_stripe(), 4);
  for (int64_t s = 0; s < 60; ++s) {
    std::set<int32_t> used;
    EXPECT_TRUE(used.insert(layout.ParityDisk(s, 0)).second);
    EXPECT_TRUE(used.insert(layout.ParityDisk(s, 1)).second);
    for (int32_t j = 0; j < 4; ++j) {
      EXPECT_TRUE(used.insert(layout.DataDisk(s, j)).second);
    }
  }
  // Both parity blocks rotate across all disks.
  std::set<int32_t> p_disks;
  std::set<int32_t> q_disks;
  for (int64_t s = 0; s < 6; ++s) {
    p_disks.insert(layout.ParityDisk(s, 0));
    q_disks.insert(layout.ParityDisk(s, 1));
  }
  EXPECT_EQ(p_disks.size(), 6u);
  EXPECT_EQ(q_disks.size(), 6u);
}

TEST(Layout, CapacityArithmetic) {
  StripeLayout layout(5, 8192, 1'000'000, 1);
  EXPECT_EQ(layout.num_stripes(), 1'000'000 / 8192);
  EXPECT_EQ(layout.data_capacity_bytes(), layout.num_stripes() * 4 * 8192);
}

TEST(Layout, SplitSingleAlignedBlock) {
  StripeLayout layout(5, 8192, 100 * 8192, 1);
  const auto segs = layout.Split(8192 * 4, 8192);  // Stripe 1, block 0.
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].stripe, 1);
  EXPECT_EQ(segs[0].block_in_stripe, 0);
  EXPECT_EQ(segs[0].offset_in_block, 0);
  EXPECT_EQ(segs[0].length, 8192);
}

TEST(Layout, SplitUnalignedSmallWrite) {
  StripeLayout layout(5, 8192, 100 * 8192, 1);
  const auto segs = layout.Split(1024, 2048);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].stripe, 0);
  EXPECT_EQ(segs[0].block_in_stripe, 0);
  EXPECT_EQ(segs[0].offset_in_block, 1024);
  EXPECT_EQ(segs[0].length, 2048);
}

TEST(Layout, SplitSpanningBlocksAndStripes) {
  StripeLayout layout(5, 8192, 100 * 8192, 1);
  // From mid-block 3 of stripe 0 into block 0 of stripe 1.
  const auto segs = layout.Split(3 * 8192 + 4096, 8192);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].stripe, 0);
  EXPECT_EQ(segs[0].block_in_stripe, 3);
  EXPECT_EQ(segs[0].offset_in_block, 4096);
  EXPECT_EQ(segs[0].length, 4096);
  EXPECT_EQ(segs[1].stripe, 1);
  EXPECT_EQ(segs[1].block_in_stripe, 0);
  EXPECT_EQ(segs[1].offset_in_block, 0);
  EXPECT_EQ(segs[1].length, 4096);
}

TEST(FastDiv, MatchesHardwareDivide) {
  Rng rng(7);
  for (int64_t d : std::initializer_list<int64_t>{
           1, 2, 3, 4, 5, 7, 8, 12, 4096, 8192, 8191, 65536, 1'000'003,
           int64_t{1} << 40}) {
    const FastDiv64 fd(d);
    // Edge values plus a random spray across the full non-negative range.
    for (int64_t n : {int64_t{0}, int64_t{1}, d - 1, d, d + 1, 2 * d - 1,
                      std::numeric_limits<int64_t>::max() - 1,
                      std::numeric_limits<int64_t>::max()}) {
      EXPECT_EQ(fd.Div(n), n / d) << n << " / " << d;
      EXPECT_EQ(fd.Mod(n), n % d) << n << " % " << d;
    }
    for (int i = 0; i < 10000; ++i) {
      const int64_t n =
          rng.UniformInt(0, std::numeric_limits<int64_t>::max() - 1);
      ASSERT_EQ(fd.Div(n), n / d) << n << " / " << d;
      ASSERT_EQ(fd.Mod(n), n % d) << n << " % " << d;
    }
  }
}

TEST(LayoutProperty, SplitIsExactCover) {
  Rng rng(9);
  StripeLayout layout(5, 8192, 5000 * 8192, 1);
  const int64_t cap = layout.data_capacity_bytes();
  for (int i = 0; i < 2000; ++i) {
    const int64_t size = rng.UniformInt(1, 100 * 1024);
    const int64_t off = rng.UniformInt(0, cap - size);
    const auto segs = layout.Split(off, size);
    int64_t expect = off;
    int64_t total = 0;
    for (const Segment& seg : segs) {
      EXPECT_EQ(seg.logical_offset, expect);
      EXPECT_GT(seg.length, 0);
      EXPECT_LE(seg.offset_in_block + seg.length, 8192);
      // The (stripe, block, offset) triple maps back to the logical offset.
      EXPECT_EQ(layout.LogicalOffsetOf(seg.stripe, seg.block_in_stripe) +
                    seg.offset_in_block,
                seg.logical_offset);
      expect += seg.length;
      total += seg.length;
    }
    EXPECT_EQ(total, size);
  }
}

}  // namespace
}  // namespace afraid
