// Equivalence of the flat open-addressed ContentModel against the original
// map-of-vectors semantics: a randomized op sequence is replayed against a
// tiny reference implementation (kept here, mirroring the pre-flattening
// code) and every observable -- Get/Set, XorOfData, ReconstructData,
// StripeConsistent, TouchedStripes -- must agree exactly.

#include "array/content.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "sim/random.h"

namespace afraid {
namespace {

// The original sparse representation: stripe -> one vector holding all
// (N + P) * sectors_per_unit values, block-major.
class ReferenceContentModel {
 public:
  ReferenceContentModel(int32_t n, int32_t pb, int32_t spu)
      : n_(n), pb_(pb), spu_(spu) {}

  uint64_t GetData(int64_t stripe, int32_t j, int32_t sector) const {
    return Get(stripe, j, sector);
  }
  void SetData(int64_t stripe, int32_t j, int32_t sector, uint64_t v) {
    Set(stripe, j, sector, v);
  }
  uint64_t GetParity(int64_t stripe, int32_t sector, int32_t which = 0) const {
    return Get(stripe, n_ + which, sector);
  }
  void SetParity(int64_t stripe, int32_t sector, uint64_t v, int32_t which = 0) {
    Set(stripe, n_ + which, sector, v);
  }
  uint64_t XorOfData(int64_t stripe, int32_t sector) const {
    uint64_t x = 0;
    for (int32_t j = 0; j < n_; ++j) {
      x ^= GetData(stripe, j, sector);
    }
    return x;
  }
  uint64_t ReconstructData(int64_t stripe, int32_t j, int32_t sector) const {
    uint64_t x = GetParity(stripe, sector);
    for (int32_t k = 0; k < n_; ++k) {
      if (k != j) {
        x ^= GetData(stripe, k, sector);
      }
    }
    return x;
  }
  bool StripeConsistent(int64_t stripe) const {
    for (int32_t s = 0; s < spu_; ++s) {
      if (GetParity(stripe, s) != XorOfData(stripe, s)) {
        return false;
      }
    }
    return true;
  }
  std::vector<int64_t> TouchedStripes() const {
    std::vector<int64_t> out;
    for (const auto& [s, _] : stripes_) {
      out.push_back(s);
    }
    return out;
  }

 private:
  uint64_t Get(int64_t stripe, int32_t slot, int32_t sector) const {
    auto it = stripes_.find(stripe);
    if (it == stripes_.end()) {
      return 0;
    }
    return it->second[static_cast<size_t>(slot) * spu_ + sector];
  }
  void Set(int64_t stripe, int32_t slot, int32_t sector, uint64_t v) {
    auto it = stripes_.find(stripe);
    if (it == stripes_.end()) {
      it = stripes_.emplace(stripe, std::vector<uint64_t>(
                                        static_cast<size_t>(n_ + pb_) * spu_, 0)).first;
    }
    it->second[static_cast<size_t>(slot) * spu_ + sector] = v;
  }

  int32_t n_;
  int32_t pb_;
  int32_t spu_;
  std::unordered_map<int64_t, std::vector<uint64_t>> stripes_;
};

std::vector<int64_t> Sorted(std::vector<int64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(ContentModelEquivalence, RandomizedOpSequenceMatchesReference) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const int32_t n = 4, pb = 1, spu = 16;
    ContentModel model(n, pb, spu);
    ReferenceContentModel ref(n, pb, spu);
    Rng rng(seed);
    // Key set mixes dense small stripes, sparse large ones, and collisions
    // of the probe sequence; enough distinct stripes to force rehash growth.
    auto random_stripe = [&]() -> int64_t {
      switch (rng.UniformInt(0, 2)) {
        case 0:
          return rng.UniformInt(0, 40);
        case 1:
          return rng.UniformInt(0, 200) * 64;  // Same low bits, stresses probing.
        default:
          return rng.UniformInt(1'000'000'000LL, 1'000'000'400LL);
      }
    };
    for (int step = 0; step < 20000; ++step) {
      const int64_t stripe = random_stripe();
      const int32_t sector = static_cast<int32_t>(rng.UniformInt(0, spu - 1));
      const double roll = rng.UniformDouble(0, 1);
      if (roll < 0.35) {
        const int32_t j = static_cast<int32_t>(rng.UniformInt(0, n - 1));
        const uint64_t v = ContentModel::MixTag(static_cast<uint64_t>(step), stripe);
        model.SetData(stripe, j, sector, v);
        ref.SetData(stripe, j, sector, v);
      } else if (roll < 0.5) {
        const uint64_t v = rng.Bernoulli(0.3) ? ref.XorOfData(stripe, sector)
                                              : static_cast<uint64_t>(step);
        model.SetParity(stripe, sector, v);
        ref.SetParity(stripe, sector, v);
      } else if (roll < 0.65) {
        const int32_t j = static_cast<int32_t>(rng.UniformInt(0, n - 1));
        ASSERT_EQ(model.GetData(stripe, j, sector), ref.GetData(stripe, j, sector));
      } else if (roll < 0.8) {
        ASSERT_EQ(model.GetParity(stripe, sector), ref.GetParity(stripe, sector));
      } else if (roll < 0.9) {
        ASSERT_EQ(model.XorOfData(stripe, sector), ref.XorOfData(stripe, sector));
      } else {
        const int32_t j = static_cast<int32_t>(rng.UniformInt(0, n - 1));
        ASSERT_EQ(model.ReconstructData(stripe, j, sector),
                  ref.ReconstructData(stripe, j, sector));
        ASSERT_EQ(model.StripeConsistent(stripe), ref.StripeConsistent(stripe));
      }
    }
    // Touched-stripe sets (order is representation-defined in both) agree.
    EXPECT_EQ(Sorted(model.TouchedStripes()), Sorted(ref.TouchedStripes()));
    // Full-model scan agrees stripe by stripe.
    for (int64_t s : model.TouchedStripes()) {
      ASSERT_EQ(model.StripeConsistent(s), ref.StripeConsistent(s));
      for (int32_t sec = 0; sec < spu; ++sec) {
        ASSERT_EQ(model.XorOfData(s, sec), ref.XorOfData(s, sec));
      }
    }
  }
}

TEST(ContentModelEquivalence, Raid6TwoParityBlocks) {
  ContentModel model(3, 2, 4);
  ReferenceContentModel ref(3, 2, 4);
  Rng rng(99);
  for (int step = 0; step < 3000; ++step) {
    const int64_t stripe = rng.UniformInt(0, 60);
    const int32_t sector = static_cast<int32_t>(rng.UniformInt(0, 3));
    const int32_t which = static_cast<int32_t>(rng.UniformInt(0, 1));
    if (rng.Bernoulli(0.5)) {
      const uint64_t v = static_cast<uint64_t>(step) * 0x9e37ULL + 1;
      model.SetParity(stripe, sector, v, which);
      ref.SetParity(stripe, sector, v, which);
    } else {
      ASSERT_EQ(model.GetParity(stripe, sector, which),
                ref.GetParity(stripe, sector, which));
    }
  }
}

TEST(ContentModel, UntouchedStripesAreZeroAndConsistent) {
  ContentModel m(4, 1, 8);
  EXPECT_EQ(m.GetData(123, 0, 0), 0u);
  EXPECT_EQ(m.GetParity(123, 7), 0u);
  EXPECT_EQ(m.XorOfData(-5, 3), 0u);  // Negative keys hash fine.
  EXPECT_TRUE(m.StripeConsistent(1LL << 40));
  EXPECT_TRUE(m.TouchedStripes().empty());
  // Reads never mark a stripe as touched.
  EXPECT_TRUE(m.TouchedStripes().empty());
}

// The word-batched parity sweep against the per-sector primitives it
// replaces: XorOfDataRange must equal XorOfData at each sector, and
// SetParityRange must store exactly what per-sector SetParity would.
TEST(ContentModel, BatchedXorMatchesPerSectorReference) {
  ContentModel m(4, 2, 8);
  Rng rng(2026);
  for (int64_t stripe = 0; stripe < 40; ++stripe) {
    // A mix of untouched, sparsely touched, and fully written stripes.
    const int writes = static_cast<int>(rng.UniformInt(0, 20));
    for (int w = 0; w < writes; ++w) {
      m.SetData(stripe, static_cast<int32_t>(rng.UniformInt(0, 3)),
                static_cast<int32_t>(rng.UniformInt(0, 7)),
                rng.UniformInt(1, 1 << 30));
    }
  }
  std::vector<uint64_t> batch(8);
  for (int64_t stripe = -3; stripe < 45; ++stripe) {
    for (int32_t first = 0; first < 8; ++first) {
      for (int32_t count = 1; count <= 8 - first; ++count) {
        m.XorOfDataRange(stripe, first, count, batch.data());
        for (int32_t i = 0; i < count; ++i) {
          ASSERT_EQ(batch[i], m.XorOfData(stripe, first + i))
              << "stripe " << stripe << " sector " << (first + i);
        }
      }
    }
    m.XorOfDataAll(stripe, batch.data());
    for (int32_t s = 0; s < 8; ++s) {
      ASSERT_EQ(batch[s], m.XorOfData(stripe, s));
    }
  }
}

TEST(ContentModel, SetParityRangeMatchesPerSectorStores) {
  for (int32_t which : {0, 1}) {
    ContentModel batched(3, 2, 8);
    ContentModel scalar(3, 2, 8);
    Rng rng(17);
    for (int step = 0; step < 200; ++step) {
      const int64_t stripe = rng.UniformInt(-5, 30);  // Includes untouched.
      const auto first = static_cast<int32_t>(rng.UniformInt(0, 7));
      const auto count = static_cast<int32_t>(rng.UniformInt(1, 8 - first));
      std::vector<uint64_t> vals(static_cast<size_t>(count));
      for (uint64_t& v : vals) {
        v = rng.UniformInt(0, 1 << 30);
      }
      batched.SetParityRange(stripe, first, count, vals.data(), which);
      for (int32_t i = 0; i < count; ++i) {
        scalar.SetParity(stripe, first + i, vals[static_cast<size_t>(i)], which);
      }
      for (int32_t s = 0; s < 8; ++s) {
        ASSERT_EQ(batched.GetParity(stripe, s, which),
                  scalar.GetParity(stripe, s, which));
      }
    }
  }
}

TEST(ContentModel, TouchedStripesReportsFirstTouchOrder) {
  ContentModel m(2, 1, 2);
  m.SetData(30, 0, 0, 1);
  m.SetData(10, 0, 0, 2);
  m.SetData(30, 1, 1, 3);  // Re-touch must not duplicate.
  m.SetParity(20, 0, 4);
  EXPECT_EQ(m.TouchedStripes(), (std::vector<int64_t>{30, 10, 20}));
}

}  // namespace
}  // namespace afraid
