#include "array/idle_predictor.h"

#include <gtest/gtest.h>

#include "array/host_driver.h"
#include "core/afraid_controller.h"
#include "core/experiment.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

TEST(IdlePredictor, NoPredictionWithoutHistory) {
  IdlePredictor p;
  EXPECT_EQ(p.PredictIdleDuration(), 0);
  p.ObserveIdlePeriod(Seconds(1));
  p.ObserveIdlePeriod(Seconds(1));
  EXPECT_EQ(p.PredictIdleDuration(), 0);  // Below the minimum history.
}

TEST(IdlePredictor, ConvergesOnSteadyInput) {
  IdlePredictor p;
  for (int i = 0; i < 50; ++i) {
    p.ObserveIdlePeriod(Milliseconds(500));
  }
  // Deviation goes to ~0, so the prediction approaches the mean.
  EXPECT_NEAR(static_cast<double>(p.PredictIdleDuration()),
              static_cast<double>(Milliseconds(500)), 1e7);
}

TEST(IdlePredictor, DiscountsForVariance) {
  IdlePredictor steady;
  IdlePredictor noisy;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    steady.ObserveIdlePeriod(Milliseconds(500));
    noisy.ObserveIdlePeriod(Milliseconds(rng.Bernoulli(0.5) ? 100 : 900));
  }
  // Same mean, but the noisy stream predicts less (conservative).
  EXPECT_LT(noisy.PredictIdleDuration(), steady.PredictIdleDuration());
}

TEST(IdlePredictor, AdaptsToRegimeChange) {
  IdlePredictor p;
  for (int i = 0; i < 50; ++i) {
    p.ObserveIdlePeriod(Milliseconds(100));
  }
  const SimDuration before = p.PredictIdleDuration();
  for (int i = 0; i < 50; ++i) {
    p.ObserveIdlePeriod(Seconds(10));
  }
  EXPECT_GT(p.PredictIdleDuration(), before * 10);
}

TEST(IdlePredictor, RemainingHasSurvivalFloor) {
  IdlePredictor p;
  for (int i = 0; i < 50; ++i) {
    p.ObserveIdlePeriod(Seconds(1));
  }
  const SimDuration base = p.PredictIdleDuration();
  // Deep into the period, the estimate floors at a quarter of base rather
  // than going negative (idle periods are heavy-tailed).
  EXPECT_EQ(p.PredictRemaining(base * 3), base / 4);
  EXPECT_GT(p.PredictRemaining(Milliseconds(100)), base / 2);
}

// End-to-end: with the predictor on, a workload made of many too-short gaps
// plus rare long gaps should see fewer rebuild passes started in the short
// gaps (counted as predictor skips), without losing eventual redundancy.
TEST(IdlePredictor, ControllerSkipsHopelessGaps) {
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;
  cfg.use_idle_predictor = true;
  cfg.idle_delay = Milliseconds(20);

  Simulator sim;
  AfraidController ctl(&sim, cfg, MakePolicy(PolicySpec::AfraidBaseline()),
                       AvailabilityParamsFor(cfg));
  HostDriver driver(&sim, &ctl, 5);
  Rng rng(9);
  // Train: bursts separated by ~35 ms gaps (too short for a ~30 ms rebuild
  // after the 20 ms detector delay).
  for (int burst = 0; burst < 40; ++burst) {
    for (int i = 0; i < 3; ++i) {
      driver.Submit(rng.UniformInt(0, 200) * 8192, 8192, true);
    }
    while (!driver.Drained()) {
      sim.Step();
    }
    sim.RunUntil(sim.Now() + Milliseconds(35));
  }
  EXPECT_GT(ctl.PredictorSkips(), 0u);
  EXPECT_GT(ctl.idle_predictor().Observations(), 10u);
  // A long quiet spell still lets everything rebuild... eventually the
  // predictor cannot veto forever because RebuildAll forces it.
  bool drained = false;
  ctl.RebuildAll([&drained] { drained = true; });
  sim.RunToEnd();
  EXPECT_TRUE(drained);
  EXPECT_EQ(ctl.nvram().DirtyCount(), 0);
}

}  // namespace
}  // namespace afraid
