// RequestPlan is a pure precomputation of StripeLayout: the compiled replay
// pipeline is only sound if the plan's records and segments equal what the
// layout derives per request. These tests check that equality over randomized
// traces across array widths and both parity configurations.

#include "array/plan.h"

#include <gtest/gtest.h>

#include "array/decluster.h"
#include "array/layout.h"
#include "sim/random.h"
#include "trace/trace.h"

namespace afraid {
namespace {

Trace RandomTrace(Rng* rng, int64_t capacity, int n) {
  Trace t;
  t.name = "plan-test";
  SimTime now = 0;
  for (int i = 0; i < n; ++i) {
    TraceRecord r;
    now += rng->UniformInt(0, 1'000'000);
    r.time = now;
    r.size = static_cast<int32_t>(rng->UniformInt(1, 96 * 1024));
    r.offset = rng->UniformInt(0, capacity - r.size);
    r.is_write = rng->UniformInt(0, 1) == 1;
    t.records.push_back(r);
  }
  return t;
}

TEST(RequestPlan, MatchesLayoutSplitAcrossWidthsAndParity) {
  Rng rng(20260807);
  for (int32_t parity_blocks : {1, 2}) {
    for (int32_t nd = 3; nd <= 16; ++nd) {
      if (nd <= parity_blocks + 1) {
        continue;  // Need at least two data blocks per stripe.
      }
      const StripeLayout layout(nd, 8192, 4000 * 8192, parity_blocks);
      const int64_t cap = layout.data_capacity_bytes();
      // ~10k addresses total, spread over the (parity, width) grid.
      const Trace t = RandomTrace(&rng, cap, 370);
      const RequestPlan plan(t, layout);

      ASSERT_EQ(plan.size(), t.records.size());
      size_t pool_cursor = 0;
      for (size_t i = 0; i < t.records.size(); ++i) {
        const TraceRecord& rec = t.records[i];
        const PlanRecord& pr = plan.record(i);
        EXPECT_EQ(pr.time, rec.time);
        EXPECT_EQ(pr.offset, rec.offset);
        EXPECT_EQ(pr.size, rec.size);
        EXPECT_EQ(pr.is_write, rec.is_write);

        const auto ref = layout.Split(rec.offset, rec.size);
        const Span<Segment> got = plan.segments(i);
        ASSERT_EQ(static_cast<size_t>(got.count), ref.size());
        for (size_t j = 0; j < ref.size(); ++j) {
          EXPECT_EQ(got.data[j].stripe, ref[j].stripe);
          EXPECT_EQ(got.data[j].block_in_stripe, ref[j].block_in_stripe);
          EXPECT_EQ(got.data[j].offset_in_block, ref[j].offset_in_block);
          EXPECT_EQ(got.data[j].length, ref[j].length);
          EXPECT_EQ(got.data[j].logical_offset, ref[j].logical_offset);
        }

        // The pre-resolved first-unit placement matches the layout's answer.
        ASSERT_FALSE(ref.empty());
        EXPECT_EQ(pr.stripe, ref[0].stripe);
        EXPECT_EQ(pr.block_in_stripe, ref[0].block_in_stripe);
        EXPECT_EQ(pr.disk, layout.DataDisk(ref[0].stripe, ref[0].block_in_stripe));
        EXPECT_EQ(pr.disk_offset,
                  ref[0].stripe * layout.stripe_unit() + ref[0].offset_in_block);

        // Segments pack back to back in trace order.
        EXPECT_EQ(pr.seg_begin, pool_cursor);
        pool_cursor += ref.size();
      }
      EXPECT_EQ(plan.TotalSegments(), pool_cursor);
    }
  }
}

TEST(RequestPlan, MatchesDeclusteredLayoutPlacement) {
  // PR-5 style plan-vs-layout equivalence, now under the declustered layout:
  // the precompiled first-unit disk/offset and all segments must equal what
  // the layout derives per request.
  Rng rng(20260808);
  for (int32_t parity_blocks : {1, 2}) {
    for (int32_t nd : {7, 10, 13, 16}) {
      const auto layout =
          MakeLayout(LayoutKind::kDeclustered, nd, 8192, 4000 * 8192,
                     parity_blocks, /*decluster_width=*/0);
      ASSERT_STREQ(layout->LayoutName(), "declustered");
      const int64_t cap = layout->data_capacity_bytes();
      const Trace t = RandomTrace(&rng, cap, 300);
      const RequestPlan plan(t, *layout);

      ASSERT_EQ(plan.size(), t.records.size());
      for (size_t i = 0; i < t.records.size(); ++i) {
        const TraceRecord& rec = t.records[i];
        const PlanRecord& pr = plan.record(i);
        const auto ref = layout->Split(rec.offset, rec.size);
        const Span<Segment> got = plan.segments(i);
        ASSERT_EQ(static_cast<size_t>(got.count), ref.size());
        for (size_t j = 0; j < ref.size(); ++j) {
          EXPECT_EQ(got.data[j].stripe, ref[j].stripe);
          EXPECT_EQ(got.data[j].block_in_stripe, ref[j].block_in_stripe);
          EXPECT_EQ(got.data[j].offset_in_block, ref[j].offset_in_block);
          EXPECT_EQ(got.data[j].length, ref[j].length);
        }
        ASSERT_FALSE(ref.empty());
        const BlockLoc loc =
            layout->DataLocation(ref[0].stripe, ref[0].block_in_stripe);
        EXPECT_EQ(pr.disk, loc.disk);
        EXPECT_EQ(pr.disk_offset, loc.byte_offset + ref[0].offset_in_block);
      }
    }
  }
}

TEST(RequestPlan, EmptyTraceYieldsEmptyPlan) {
  const StripeLayout layout(5, 8192, 100 * 8192, 1);
  const RequestPlan plan(Trace{}, layout);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.TotalSegments(), 0u);
}

}  // namespace
}  // namespace afraid
