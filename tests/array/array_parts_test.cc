// Unit tests for the smaller array-substrate pieces: NVRAM bitmap, LRU
// caches, stripe locks, idle detector, content model.

#include <gtest/gtest.h>

#include <vector>

#include "array/cache.h"
#include "array/content.h"
#include "array/idle_detector.h"
#include "array/nvram.h"
#include "array/stripe_lock.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

// --- NvramBitmap -------------------------------------------------------------

TEST(Nvram, MarkClearCount) {
  NvramBitmap nv(100);
  EXPECT_EQ(nv.DirtyCount(), 0);
  EXPECT_TRUE(nv.Mark(5));
  EXPECT_FALSE(nv.Mark(5));  // Re-marking is a no-op.
  EXPECT_TRUE(nv.Mark(17));
  EXPECT_EQ(nv.DirtyCount(), 2);
  EXPECT_TRUE(nv.IsDirty(5));
  EXPECT_FALSE(nv.IsDirty(6));
  EXPECT_TRUE(nv.Clear(5));
  EXPECT_FALSE(nv.Clear(5));
  EXPECT_EQ(nv.DirtyCount(), 1);
}

TEST(Nvram, NextDirtySweepsAscendingAndWraps) {
  NvramBitmap nv(100);
  nv.Mark(10);
  nv.Mark(50);
  nv.Mark(90);
  EXPECT_EQ(nv.NextDirty(0), 10);
  EXPECT_EQ(nv.NextDirty(11), 50);
  EXPECT_EQ(nv.NextDirty(91), 10);  // Wraps.
  EXPECT_EQ(nv.NextDirty(50), 50);  // Inclusive.
  nv.Clear(10);
  nv.Clear(50);
  nv.Clear(90);
  EXPECT_EQ(nv.NextDirty(0), -1);
}

TEST(Nvram, FailLosesAllKnowledge) {
  NvramBitmap nv(100);
  nv.Mark(1);
  nv.Mark(2);
  nv.Fail();
  EXPECT_TRUE(nv.failed());
  EXPECT_EQ(nv.DirtyCount(), 0);
  nv.Repair();
  EXPECT_FALSE(nv.failed());
}

TEST(Nvram, HardwareCostIsOneBitPerStripe) {
  // The paper: ~3 KB of NVRAM per GB of data for a 5-wide, 8 KB-unit array.
  const int64_t stripes_per_gb_of_data = (1LL << 30) / (4 * 8192);
  NvramBitmap nv(stripes_per_gb_of_data);
  EXPECT_EQ(nv.HardwareBits(), stripes_per_gb_of_data);
  EXPECT_NEAR(static_cast<double>(nv.HardwareBits()) / 8.0 / 1024.0, 4.0, 0.1);
}

// --- BlockLruCache -----------------------------------------------------------

TEST(Cache, HitAndMissAccounting) {
  BlockLruCache c(4 * 8192, 8192);
  EXPECT_EQ(c.Capacity(), 4);
  EXPECT_FALSE(c.Lookup(1));
  c.Insert(1);
  EXPECT_TRUE(c.Lookup(1));
  EXPECT_EQ(c.Hits(), 1u);
  EXPECT_EQ(c.Misses(), 1u);
}

TEST(Cache, EvictsLeastRecentlyUsed) {
  BlockLruCache c(3 * 8192, 8192);
  c.Insert(1);
  c.Insert(2);
  c.Insert(3);
  EXPECT_TRUE(c.Lookup(1));  // 1 becomes most recent; 2 is now LRU.
  c.Insert(4);               // Evicts 2.
  EXPECT_FALSE(c.Contains(2));
  EXPECT_TRUE(c.Contains(1));
  EXPECT_TRUE(c.Contains(3));
  EXPECT_TRUE(c.Contains(4));
  EXPECT_EQ(c.Size(), 3);
}

TEST(Cache, InsertExistingRefreshesWithoutGrowth) {
  BlockLruCache c(2 * 8192, 8192);
  c.Insert(1);
  c.Insert(2);
  c.Insert(1);  // Refresh, not duplicate: now 2 is LRU.
  c.Insert(3);
  EXPECT_FALSE(c.Contains(2));
  EXPECT_TRUE(c.Contains(1));
  EXPECT_EQ(c.Size(), 2);
}

TEST(Cache, InvalidateRemoves) {
  BlockLruCache c(2 * 8192, 8192);
  c.Insert(7);
  c.Invalidate(7);
  EXPECT_FALSE(c.Contains(7));
  c.Invalidate(7);  // Idempotent.
}

TEST(Cache, ZeroCapacityNeverStores) {
  BlockLruCache c(0, 8192);
  c.Insert(1);
  EXPECT_FALSE(c.Contains(1));
}

// --- StripeLockTable ---------------------------------------------------------

TEST(StripeLock, SharedHoldersCoexist) {
  StripeLockTable locks;
  int granted = 0;
  locks.Acquire(1, LockMode::kShared, [&] { ++granted; });
  locks.Acquire(1, LockMode::kShared, [&] { ++granted; });
  EXPECT_EQ(granted, 2);
  locks.Release(1, LockMode::kShared);
  locks.Release(1, LockMode::kShared);
  EXPECT_FALSE(locks.Busy(1));
}

TEST(StripeLock, ExclusiveWaitsForShared) {
  StripeLockTable locks;
  bool excl = false;
  locks.Acquire(1, LockMode::kShared, [] {});
  locks.Acquire(1, LockMode::kExclusive, [&] { excl = true; });
  EXPECT_FALSE(excl);
  locks.Release(1, LockMode::kShared);
  EXPECT_TRUE(excl);
  EXPECT_TRUE(locks.HeldExclusive(1));
  locks.Release(1, LockMode::kExclusive);
  EXPECT_FALSE(locks.Busy(1));
}

TEST(StripeLock, SharedWaitsBehindQueuedExclusive) {
  // FIFO fairness: a shared request arriving after a waiting exclusive must
  // not starve it.
  StripeLockTable locks;
  std::vector<int> order;
  locks.Acquire(1, LockMode::kShared, [&] { order.push_back(1); });
  locks.Acquire(1, LockMode::kExclusive, [&] { order.push_back(2); });
  locks.Acquire(1, LockMode::kShared, [&] { order.push_back(3); });
  EXPECT_EQ(order, (std::vector<int>{1}));
  locks.Release(1, LockMode::kShared);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  locks.Release(1, LockMode::kExclusive);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  locks.Release(1, LockMode::kShared);
  EXPECT_FALSE(locks.Busy(1));
}

TEST(StripeLock, IndependentStripesDoNotInterfere) {
  StripeLockTable locks;
  bool a = false;
  bool b = false;
  locks.Acquire(1, LockMode::kExclusive, [&] { a = true; });
  locks.Acquire(2, LockMode::kExclusive, [&] { b = true; });
  EXPECT_TRUE(a);
  EXPECT_TRUE(b);
}

TEST(StripeLock, BatchedSharedAdmissionAfterExclusive) {
  StripeLockTable locks;
  int shared = 0;
  locks.Acquire(9, LockMode::kExclusive, [] {});
  locks.Acquire(9, LockMode::kShared, [&] { ++shared; });
  locks.Acquire(9, LockMode::kShared, [&] { ++shared; });
  EXPECT_EQ(shared, 0);
  locks.Release(9, LockMode::kExclusive);
  EXPECT_EQ(shared, 2);  // Both shared admitted together.
}

// --- IdleDetector ------------------------------------------------------------

TEST(IdleDetector, FiresAfterDelayFromStart) {
  Simulator sim;
  int fires = 0;
  IdleDetector det(&sim, Milliseconds(100), [&] { ++fires; });
  sim.RunUntil(Milliseconds(99));
  EXPECT_EQ(fires, 0);
  sim.RunUntil(Milliseconds(101));
  EXPECT_EQ(fires, 1);
}

TEST(IdleDetector, BusyCancelsAndIdleRearms) {
  Simulator sim;
  int fires = 0;
  IdleDetector det(&sim, Milliseconds(100), [&] { ++fires; });
  sim.RunUntil(Milliseconds(50));
  det.NoteBusy();
  sim.RunUntil(Milliseconds(300));
  EXPECT_EQ(fires, 0);  // Still busy: never fires.
  det.NoteIdle();
  sim.RunUntil(Milliseconds(399));
  EXPECT_EQ(fires, 0);
  sim.RunUntil(Milliseconds(401));
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(det.Firings(), 1u);
}

TEST(IdleDetector, FiresOncePerIdlePeriod) {
  Simulator sim;
  int fires = 0;
  IdleDetector det(&sim, Milliseconds(100), [&] { ++fires; });
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(fires, 1);  // Not repeatedly during one long idle period.
}

// --- ContentModel ------------------------------------------------------------

TEST(Content, FreshStripesAreConsistent) {
  ContentModel m(4, 1, 16);
  EXPECT_TRUE(m.StripeConsistent(0));
  EXPECT_TRUE(m.StripeConsistent(12345));
}

TEST(Content, ParityAlgebra) {
  ContentModel m(4, 1, 4);
  m.SetData(7, 0, 2, 0xAAAA);
  m.SetData(7, 3, 2, 0x5555);
  EXPECT_FALSE(m.StripeConsistent(7));
  m.SetParity(7, 2, m.XorOfData(7, 2));
  // Sectors 0, 1, 3 are all-zero data with zero parity -- consistent; sector
  // 2 was just fixed, so the whole stripe is now consistent.
  EXPECT_TRUE(m.StripeConsistent(7));
  EXPECT_EQ(m.GetParity(7, 2), 0xAAAAu ^ 0x5555u);
}

TEST(Content, ReconstructRecoversData) {
  ContentModel m(4, 1, 2);
  for (int32_t j = 0; j < 4; ++j) {
    m.SetData(3, j, 0, ContentModel::MixTag(42, j));
  }
  m.SetParity(3, 0, m.XorOfData(3, 0));
  for (int32_t j = 0; j < 4; ++j) {
    EXPECT_EQ(m.ReconstructData(3, j, 0), ContentModel::MixTag(42, j));
  }
}

TEST(Content, ReconstructWrongWhenParityStale) {
  ContentModel m(4, 1, 2);
  m.SetData(3, 0, 0, 111);
  m.SetParity(3, 0, m.XorOfData(3, 0));
  m.SetData(3, 0, 0, 222);  // Deferred parity: not refreshed.
  EXPECT_NE(m.ReconstructData(3, 0, 0), 222u);
  EXPECT_EQ(m.ReconstructData(3, 0, 0), 111u);  // Xor returns the stale view.
}

TEST(Content, MixTagNonZeroAndSpread) {
  Rng rng(1);
  int collisions = 0;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t a = ContentModel::MixTag(rng.UniformInt(1, 1000),
                                            rng.UniformInt(0, 100000));
    EXPECT_NE(a, 0u);
    if (a == ContentModel::MixTag(rng.UniformInt(1, 1000),
                                  rng.UniformInt(0, 100000))) {
      ++collisions;
    }
  }
  EXPECT_LT(collisions, 3);
}

}  // namespace
}  // namespace afraid
