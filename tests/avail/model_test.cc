// Tests of the Section 3 availability equations against the paper's own
// worked numbers, plus algebraic sanity properties.

#include "avail/model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace afraid {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(AvailModel, Table1Defaults) {
  AvailabilityParams p;
  EXPECT_DOUBLE_EQ(p.mttf_disk_raw_hours, 1e6);
  EXPECT_DOUBLE_EQ(p.mttdl_support_hours, 2e6);
  EXPECT_DOUBLE_EQ(p.coverage, 0.5);
  EXPECT_DOUBLE_EQ(p.mttr_hours, 48.0);
  EXPECT_EQ(p.TotalDisks(), 5);
  // Coverage 0.5 doubles the effective MTTF of unexpected failures.
  EXPECT_DOUBLE_EQ(p.EffectiveDiskMttfHours(), 2e6);
}

TEST(AvailModel, Eq1MatchesPaper) {
  // "With a 5-disk array, and the parameters of Table 1, this gives a
  // theoretical MTTDL of ~4.10^9 hours, or about 475,000 years."
  AvailabilityParams p;
  const double mttdl = MttdlRaidCatastrophicHours(p);
  EXPECT_NEAR(mttdl, 4.17e9, 0.05e9);
  EXPECT_NEAR(mttdl / (24 * 365.25), 475'000, 5'000);  // Years.
}

TEST(AvailModel, Eq2ReducesToRaidWhenAlwaysProtected) {
  AvailabilityParams p;
  EXPECT_EQ(MttdlAfraidUnprotectedHours(p, 0.0), kInf);
  EXPECT_DOUBLE_EQ(MttdlAfraidHours(p, 0.0), MttdlRaidCatastrophicHours(p));
}

TEST(AvailModel, Eq2FloorWhenAlwaysUnprotected) {
  // Permanently unprotected: MTTDL -> MTTF_eff/(N+1) = 400k hours, slightly
  // reduced by the (tiny) RAID-mode term at fraction 1 (which vanishes).
  AvailabilityParams p;
  EXPECT_DOUBLE_EQ(MttdlAfraidUnprotectedHours(p, 1.0), 2e6 / 5.0);
  EXPECT_DOUBLE_EQ(MttdlAfraidHours(p, 1.0), 2e6 / 5.0);
}

TEST(AvailModel, MttdlAfraidMonotoneInUnprotFraction) {
  AvailabilityParams p;
  double prev = kInf;
  for (double f = 0.0; f <= 1.0; f += 0.05) {
    const double m = MttdlAfraidHours(p, f);
    EXPECT_LE(m, prev);
    prev = m;
  }
}

TEST(AvailModel, AfraidAlwaysBetweenRaid0AndRaid5) {
  AvailabilityParams p;
  for (double f : {0.001, 0.01, 0.1, 0.5, 0.99}) {
    const double m = MttdlAfraidHours(p, f);
    EXPECT_GT(m, MttdlRaid0Hours(p));
    EXPECT_LT(m, MttdlRaidCatastrophicHours(p));
  }
}

TEST(AvailModel, Eq3MatchesPaper) {
  // "The RAID 5 array we considered earlier would have a MDLR of ~0.8
  // bytes/hour from this failure mode."
  AvailabilityParams p;
  EXPECT_NEAR(MdlrRaidCatastrophicBph(p), 0.82, 0.05);
}

TEST(AvailModel, Eq4LinearInParityLag) {
  AvailabilityParams p;
  EXPECT_DOUBLE_EQ(MdlrUnprotectedBph(p, 0.0), 0.0);
  const double one_mb = MdlrUnprotectedBph(p, 1 << 20);
  EXPECT_DOUBLE_EQ(MdlrUnprotectedBph(p, 2 << 20), 2 * one_mb);
  // (lag/N)*(N+1)/MTTF = (1MB/4)*5/2e6 = 0.655 bytes/hour.
  EXPECT_NEAR(one_mb, 0.655, 0.01);
}

TEST(AvailModel, SupportMdlrMatchesPaper) {
  // "With a 2M hour MTTDL, our 5-disk array would suffer a MDLR of
  // 4.0KB/hour; using the 150k hour figure from [Gibson93] would increase
  // this to 53KB/hour."
  AvailabilityParams p;
  EXPECT_NEAR(MdlrSupportBph(p) / 1024.0, 4.1, 0.2);
  p.mttdl_support_hours = 150e3;
  EXPECT_NEAR(MdlrSupportBph(p) / 1024.0, 54.6, 2.0);
}

TEST(AvailModel, NvramPrestoServeMatchesPaper) {
  // "the popular PrestoServe card has a predicted MTTF of 15k hours; with
  // 1MB of vulnerable data, this corresponds to an MDLR of 67 bytes/hour."
  EXPECT_NEAR(MdlrNvramBph(15e3, 1 << 20), 69.9, 3.0);
}

TEST(AvailModel, PowerFailureMatchesPaper) {
  // "a 10% write duty cycle on a 5-disk RAID 5 gives a MTTDL of only 43k
  // hours ... a high-grade ups with an MTTF of 200k hours ... returns the
  // MTTDL for the array's external power components to 2M hours."
  EXPECT_DOUBLE_EQ(MttdlPowerHours(4300, 0.10), 43e3);
  EXPECT_DOUBLE_EQ(MttdlPowerHours(200e3, 0.10), 2e6);
}

TEST(AvailModel, LossProbabilityMatchesPaper) {
  // "An aggregate MTTDL of a million hours (114 years) translates into only
  // a 2.6% likelihood of any data loss at all during a typical 3-year array
  // lifetime."
  EXPECT_NEAR(1e6 / (24 * 365.25), 114, 1.0);
  EXPECT_NEAR(LossProbability(1e6, 26e3) * 100.0, 2.6, 0.05);
}

TEST(AvailModel, CombineMttdlIsHarmonic) {
  EXPECT_DOUBLE_EQ(CombineMttdlHours({2e6, 2e6}), 1e6);
  EXPECT_DOUBLE_EQ(CombineMttdlHours({kInf, 5e5}), 5e5);
  EXPECT_EQ(CombineMttdlHours({kInf, kInf}), kInf);
  // Combination is commutative and bounded by the minimum.
  EXPECT_DOUBLE_EQ(CombineMttdlHours({1e6, 3e6}), CombineMttdlHours({3e6, 1e6}));
  EXPECT_LT(CombineMttdlHours({1e6, 3e6}), 1e6);
}

TEST(AvailModel, ReportRaid5) {
  AvailabilityParams p;
  const auto r = MakeAvailabilityReport(p, RedundancyScheme::kRaid5, 0, 0);
  EXPECT_NEAR(r.mttdl_disk_hours, 4.17e9, 0.05e9);
  // Support-dominated overall (the Section 3.3 lesson).
  EXPECT_NEAR(r.mttdl_overall_hours, 2e6, 0.01e6);
  EXPECT_NEAR(r.mdlr_overall_bph, MdlrSupportBph(p) + 0.82, 0.1);
}

TEST(AvailModel, ReportRaid0) {
  AvailabilityParams p;
  const auto r = MakeAvailabilityReport(p, RedundancyScheme::kRaid0, 1.0, 1e9);
  EXPECT_DOUBLE_EQ(r.mttdl_disk_hours, 200e3);
  EXPECT_LT(r.mttdl_overall_hours, 200e3);
  // A whole disk per loss event.
  EXPECT_NEAR(r.mdlr_disk_bph, 2.147e9 / 200e3, 100.0);
}

TEST(AvailModel, ReportAfraidUsesMeasuredInputs) {
  AvailabilityParams p;
  const auto r = MakeAvailabilityReport(p, RedundancyScheme::kAfraid, 0.05, 64 * 1024);
  EXPECT_DOUBLE_EQ(r.mttdl_disk_hours, MttdlAfraidHours(p, 0.05));
  EXPECT_DOUBLE_EQ(r.mdlr_disk_bph, MdlrAfraidBph(p, 0.05, 64 * 1024));
  EXPECT_EQ(r.t_unprot_fraction, 0.05);
}

TEST(AvailModel, SchemeNames) {
  EXPECT_EQ(SchemeName(RedundancyScheme::kRaid0), "RAID 0");
  EXPECT_EQ(SchemeName(RedundancyScheme::kRaid5), "RAID 5");
  EXPECT_EQ(SchemeName(RedundancyScheme::kAfraid), "AFRAID");
}

TEST(AvailModel, Eq2RaidTermDivergesWhenAlwaysUnprotected) {
  // At fraction 1 the array spends no time in RAID mode, so the RAID-mode
  // loss channel (2b) contributes nothing: its MTTDL is +infinity, and the
  // combination (2c) is carried entirely by the unprotected term (2a).
  AvailabilityParams p;
  EXPECT_EQ(MttdlAfraidRaidHours(p, 1.0), kInf);
  EXPECT_DOUBLE_EQ(MttdlAfraidHours(p, 1.0), MttdlAfraidUnprotectedHours(p, 1.0));
}

TEST(AvailModel, SingleDataDiskDegenerateArray) {
  // N = 1: a two-disk mirror-like array. Every equation must stay finite
  // and ordered; this exercises the N*(N+1) and (N+1)/N factors at their
  // smallest legal value.
  AvailabilityParams p;
  p.num_data_disks = 1;
  EXPECT_EQ(p.TotalDisks(), 2);
  // Eq. (1): MTTF_eff^2 / (1*2*48).
  EXPECT_DOUBLE_EQ(MttdlRaidCatastrophicHours(p), 2e6 * 2e6 / (1.0 * 2.0 * 48.0));
  // Eq. (2a) at full exposure: MTTF_eff / 2.
  EXPECT_DOUBLE_EQ(MttdlAfraidUnprotectedHours(p, 1.0), 1e6);
  // RAID 0 with both disks holding data: raw MTTF / 2.
  EXPECT_DOUBLE_EQ(MttdlRaid0Hours(p), 5e5);
  // Eq. (3): two disks' worth less the parity half = one disk per event.
  EXPECT_DOUBLE_EQ(MdlrRaidCatastrophicBph(p),
                   p.disk_bytes / MttdlRaidCatastrophicHours(p));
  // Eq. (4): lag/N doubles the per-lag weight at N = 1.
  EXPECT_GT(MdlrUnprotectedBph(p, 1 << 20), 0.0);
  // Eq. (5) combines both without blowing up.
  const double mdlr = MdlrAfraidBph(p, 0.5, 1 << 20);
  EXPECT_TRUE(std::isfinite(mdlr));
  EXPECT_GT(mdlr, 0.0);
  // Ordering survives the degenerate width.
  EXPECT_LT(MttdlRaid0Hours(p), MttdlAfraidHours(p, 0.1));
  EXPECT_LT(MttdlAfraidHours(p, 0.1), MttdlRaidCatastrophicHours(p));
}

TEST(AvailModel, MttdlAfraidStrictlyMonotoneOnFineGrid) {
  // Monotonicity on a fine grid, including the near-0 and near-1 ends where
  // the harmonic combination switches between its two regimes.
  AvailabilityParams p;
  double prev = MttdlAfraidHours(p, 0.0);
  for (int i = 1; i <= 1000; ++i) {
    const double f = static_cast<double>(i) / 1000.0;
    const double m = MttdlAfraidHours(p, f);
    EXPECT_LT(m, prev) << "not strictly decreasing at f=" << f;
    EXPECT_TRUE(std::isfinite(m)) << f;
    prev = m;
  }
  EXPECT_DOUBLE_EQ(prev, MttdlAfraidHours(p, 1.0));
}

TEST(AvailModel, SchemeDispatchedHelpersMatchDirectEquations) {
  AvailabilityParams p;
  EXPECT_DOUBLE_EQ(MttdlDiskHoursFor(p, RedundancyScheme::kRaid0, 0.3),
                   MttdlRaid0Hours(p));
  EXPECT_DOUBLE_EQ(MttdlDiskHoursFor(p, RedundancyScheme::kRaid5, 0.3),
                   MttdlRaidCatastrophicHours(p));
  EXPECT_DOUBLE_EQ(MttdlDiskHoursFor(p, RedundancyScheme::kAfraid, 0.3),
                   MttdlAfraidHours(p, 0.3));
  EXPECT_DOUBLE_EQ(MdlrDiskBphFor(p, RedundancyScheme::kRaid0, 0.3, 1 << 20),
                   MdlrRaid0Bph(p));
  EXPECT_DOUBLE_EQ(MdlrDiskBphFor(p, RedundancyScheme::kRaid5, 0.3, 1 << 20),
                   MdlrRaidCatastrophicBph(p));
  EXPECT_DOUBLE_EQ(MdlrDiskBphFor(p, RedundancyScheme::kAfraid, 0.3, 1 << 20),
                   MdlrAfraidBph(p, 0.3, 1 << 20));
  // The report path and the helpers must agree (one switch, two callers).
  const auto r = MakeAvailabilityReport(p, RedundancyScheme::kAfraid, 0.3, 1 << 20);
  EXPECT_DOUBLE_EQ(r.mttdl_disk_hours,
                   MttdlDiskHoursFor(p, RedundancyScheme::kAfraid, 0.3));
}

TEST(AvailModel, MeasuredOverPredictedHandlesInfinities) {
  EXPECT_DOUBLE_EQ(MeasuredOverPredicted(2.0, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(MeasuredOverPredicted(kInf, kInf), 1.0);
  EXPECT_DOUBLE_EQ(MeasuredOverPredicted(5.0, kInf), 0.0);
  EXPECT_EQ(MeasuredOverPredicted(kInf, 5.0), kInf);
}

// The end-to-end availability argument of Section 3.6: once the disk-related
// MTTDL exceeds a few million hours, support components dominate and further
// disk-layer heroics buy nothing.
TEST(AvailModel, EndToEndAvailabilityArgument) {
  AvailabilityParams p;
  const double raid5 = CombineMttdlHours({MttdlRaidCatastrophicHours(p),
                                          p.mttdl_support_hours});
  const double afraid_good = CombineMttdlHours({MttdlAfraidHours(p, 0.01),
                                                p.mttdl_support_hours});
  // A bursty-workload AFRAID gives up only a sliver of overall availability.
  EXPECT_GT(afraid_good / raid5, 0.90);
}

}  // namespace
}  // namespace afraid
