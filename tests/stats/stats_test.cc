#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/random.h"
#include "stats/histogram.h"
#include "stats/sample_set.h"
#include "stats/streaming.h"
#include "stats/summary.h"
#include "stats/time_weighted.h"

namespace afraid {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(StreamingStats, BasicMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.Count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(StreamingStats, MergeEqualsCombinedStream) {
  Rng rng(5);
  StreamingStats all;
  StreamingStats a;
  StreamingStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(10, 3);
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), all.Count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-7);
  EXPECT_EQ(a.Min(), all.Min());
  EXPECT_EQ(a.Max(), all.Max());
}

TEST(SampleSet, PercentilesExact) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 100.0);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(0.95), 95.05, 1e-9);
}

TEST(SampleSet, AddAfterPercentileStillCorrect) {
  SampleSet s;
  s.Add(1.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Median(), 2.0);
  s.Add(100.0);
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
  EXPECT_EQ(s.Count(), 3u);
}

TEST(TimeWeighted, PiecewiseConstantIntegration) {
  TimeWeightedValue v(0, 0.0);
  v.Set(Seconds(10), 4.0);   // 0 for 10 s, then 4.
  v.Set(Seconds(20), 0.0);   // 4 for 10 s, then 0.
  EXPECT_DOUBLE_EQ(v.IntegralTo(Seconds(30)), 40.0);
  EXPECT_DOUBLE_EQ(v.MeanTo(Seconds(30)), 40.0 / 30.0);
  EXPECT_DOUBLE_EQ(v.PositiveSecondsTo(Seconds(30)), 10.0);
  EXPECT_DOUBLE_EQ(v.PositiveFractionTo(Seconds(30)), 1.0 / 3.0);
}

TEST(TimeWeighted, AddAccumulates) {
  TimeWeightedValue v(0, 0.0);
  v.Add(Seconds(1), 2.0);
  v.Add(Seconds(2), 3.0);
  EXPECT_DOUBLE_EQ(v.Current(), 5.0);
  v.Add(Seconds(3), -5.0);
  EXPECT_DOUBLE_EQ(v.Current(), 0.0);
  // Integral: 0*1 + 2*1 + 5*1 = 7.
  EXPECT_DOUBLE_EQ(v.IntegralTo(Seconds(3)), 7.0);
}

TEST(TimeWeighted, NonZeroStart) {
  TimeWeightedValue v(Seconds(100), 1.0);
  EXPECT_DOUBLE_EQ(v.MeanTo(Seconds(110)), 1.0);
  EXPECT_DOUBLE_EQ(v.PositiveFractionTo(Seconds(110)), 1.0);
}

TEST(TimeWeightedProperty, MatchesBruteForceReplay) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    TimeWeightedValue v(0, 0.0);
    std::vector<std::pair<SimTime, double>> changes;  // (time, new value)
    SimTime t = 0;
    double value = 0.0;
    for (int i = 0; i < 200; ++i) {
      t += Milliseconds(rng.UniformInt(1, 1000));
      value = rng.UniformInt(0, 3) == 0 ? 0.0 : rng.UniformDouble(0.5, 10.0);
      v.Set(t, value);
      changes.emplace_back(t, value);
    }
    const SimTime end = t + Seconds(5);
    // Brute force.
    double integral = 0.0;
    double positive = 0.0;
    SimTime prev = 0;
    double cur = 0.0;
    for (const auto& [ct, cv] : changes) {
      integral += cur * ToSeconds(ct - prev);
      if (cur > 0) {
        positive += ToSeconds(ct - prev);
      }
      prev = ct;
      cur = cv;
    }
    integral += cur * ToSeconds(end - prev);
    if (cur > 0) {
      positive += ToSeconds(end - prev);
    }
    EXPECT_NEAR(v.IntegralTo(end), integral, 1e-6);
    EXPECT_NEAR(v.PositiveSecondsTo(end), positive, 1e-9);
  }
}

TEST(Summary, GeometricMean) {
  EXPECT_DOUBLE_EQ(GeometricMean({4.0}), 4.0);
  EXPECT_NEAR(GeometricMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(GeometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Summary, MeansOrdering) {
  // HM <= GM <= AM for positive values.
  const std::vector<double> xs = {1.0, 3.0, 9.0, 27.0};
  EXPECT_LE(HarmonicMean(xs), GeometricMean(xs) + 1e-12);
  EXPECT_LE(GeometricMean(xs), ArithmeticMean(xs) + 1e-12);
}

TEST(StreamingStats, MergeWithEmptySides) {
  StreamingStats filled;
  filled.Add(1.0);
  filled.Add(3.0);

  StreamingStats empty_lhs;
  empty_lhs.Merge(filled);  // Empty left side adopts the other stream.
  EXPECT_EQ(empty_lhs.Count(), 2u);
  EXPECT_DOUBLE_EQ(empty_lhs.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(empty_lhs.Min(), 1.0);
  EXPECT_DOUBLE_EQ(empty_lhs.Max(), 3.0);
  EXPECT_DOUBLE_EQ(empty_lhs.Variance(), 2.0);

  StreamingStats empty_rhs;
  filled.Merge(empty_rhs);  // Empty right side is a no-op.
  EXPECT_EQ(filled.Count(), 2u);
  EXPECT_DOUBLE_EQ(filled.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(filled.Variance(), 2.0);

  StreamingStats a;
  StreamingStats b;
  a.Merge(b);  // Both empty stays empty (and all-zero, not NaN).
  EXPECT_EQ(a.Count(), 0u);
  EXPECT_DOUBLE_EQ(a.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.Variance(), 0.0);
}

TEST(TimeWeighted, ZeroElapsedIsCurrentValueNotNan) {
  TimeWeightedValue positive(Seconds(5), 3.0);
  EXPECT_DOUBLE_EQ(positive.MeanTo(Seconds(5)), 3.0);
  EXPECT_DOUBLE_EQ(positive.PositiveFractionTo(Seconds(5)), 1.0);
  EXPECT_DOUBLE_EQ(positive.IntegralTo(Seconds(5)), 0.0);

  TimeWeightedValue zero(Seconds(5), 0.0);
  EXPECT_DOUBLE_EQ(zero.MeanTo(Seconds(5)), 0.0);
  EXPECT_DOUBLE_EQ(zero.PositiveFractionTo(Seconds(5)), 0.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 5);  // [0,50) in 5 buckets.
  h.Add(-1);
  h.Add(0);
  h.Add(9.99);
  h.Add(10);
  h.Add(49.9);
  h.Add(50);
  h.Add(1000);
  EXPECT_EQ(h.Underflow(), 1u);
  EXPECT_EQ(h.Overflow(), 2u);
  EXPECT_EQ(h.Counts()[0], 2u);
  EXPECT_EQ(h.Counts()[1], 1u);
  EXPECT_EQ(h.Counts()[4], 1u);
  EXPECT_EQ(h.Total(), 7u);
  EXPECT_FALSE(h.Render().empty());
}

TEST(Histogram, QuantileEmptyAndSingleSample) {
  Histogram empty(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(empty.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.Median(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Quantile(1.0), 0.0);

  Histogram one(0.0, 10.0, 5);
  one.Add(23.0);  // Lands in [20, 30).
  for (double p : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(one.Quantile(p), 25.0) << "p=" << p;  // Bucket midpoint.
  }
}

TEST(Histogram, QuantileUnderflowAndOverflowMass) {
  // Out-of-range samples are retained exactly, so the extremes are the real
  // extremes, not the bucket edges.
  Histogram h(10.0, 5.0, 4);  // Covers [10, 30).
  h.Add(-100.0);
  h.Add(-50.0);
  h.Add(1000.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), -100.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), -50.0);
}

TEST(Histogram, TailQuantilesExactVersusSortedSamples) {
  // A latency-shaped distribution where the p999 tail lives far past the top
  // bucket: every quantile that lands in the overflow (or underflow) region
  // must match SampleSet::Percentile on the same data exactly, because both
  // interpolate over the same sorted samples with the same rank convention.
  Histogram h(0.0, 1.0, 50);  // Bucketed range [0, 50).
  SampleSet s;
  for (int i = 0; i < 5000; ++i) {
    // Bulk in-range mass plus a long deterministic tail to ~2000.
    const double x = (i % 997 < 960)
                         ? static_cast<double>(i % 47) + 0.25
                         : 50.0 + static_cast<double>((i * 37) % 1951);
    h.Add(x);
    s.Add(x);
  }
  h.Add(-3.5);  // A lone underflow sample.
  s.Add(-3.5);
  EXPECT_GT(h.Overflow(), 0u);
  for (double p : {0.995, 0.999, 0.9999, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(p), s.Percentile(p)) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), s.Percentile(0.0));
  // In-range quantiles keep the bucket-resolution guarantee.
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(h.Quantile(p), s.Percentile(p), 1.0) << "p=" << p;
  }
}

TEST(Histogram, QuantileTracksExactPercentiles) {
  // Dense-bucket histogram vs the exact SampleSet on the same data: with one
  // sample per bucket midpoint the two rank conventions must agree exactly;
  // on arbitrary data they agree to within one bucket width.
  Histogram h(0.0, 1.0, 100);
  SampleSet s;
  for (int i = 0; i < 100; ++i) {
    const double x = static_cast<double>(i) + 0.5;
    h.Add(x);
    s.Add(x);
  }
  for (double p : {0.0, 0.1, 0.5, 0.9, 0.95, 1.0}) {
    EXPECT_NEAR(h.Quantile(p), s.Percentile(p), 1.0) << "p=" << p;
  }
  EXPECT_NEAR(h.Median(), s.Median(), 1.0);
}

}  // namespace
}  // namespace afraid
