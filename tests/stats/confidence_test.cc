#include "stats/confidence.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace afraid {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ChiSquareQuantileTest, MatchesTabulatedValues) {
  // chi2_{2, 0.975} = 7.3778 and chi2_{2, 0.025} = 0.050636; df = 2 is the
  // exact exponential branch, so these are tight.
  EXPECT_NEAR(ChiSquareQuantile(2.0, kZ975), 7.3778, 1e-3);
  EXPECT_NEAR(ChiSquareQuantile(2.0, -kZ975), 0.050636, 1e-4);
  // chi2_{10, 0.975} = 20.483, chi2_{10, 0.025} = 3.2470.
  EXPECT_NEAR(ChiSquareQuantile(10.0, kZ975), 20.483, 0.1);
  EXPECT_NEAR(ChiSquareQuantile(10.0, -kZ975), 3.2470, 0.05);
  // The median of a chi-square is a bit below its mean (df).
  EXPECT_LT(ChiSquareQuantile(4.0, 0.0), 4.0);
  EXPECT_GT(ChiSquareQuantile(4.0, 0.0), 3.0);
}

TEST(MttdlCiTest, ZeroEventsGivesFiniteLowerBoundOnly) {
  const ConfidenceInterval ci = MttdlCiHours(0, 1000.0);
  EXPECT_EQ(ci.point, kInf);
  EXPECT_EQ(ci.hi, kInf);
  // One-sided 95% bound: 2T / chi2_{2,0.975} = 2000/7.38 ~ 271 ("rule of
  // three" shape: with zero events in T hours, MTTDL > ~T/3.7).
  EXPECT_GT(ci.lo, 200.0);
  EXPECT_LT(ci.lo, 300.0);
  EXPECT_TRUE(ci.Contains(kInf));
}

TEST(MttdlCiTest, PointIsTotalOverEvents) {
  const ConfidenceInterval ci = MttdlCiHours(4, 1000.0);
  EXPECT_DOUBLE_EQ(ci.point, 250.0);
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
  EXPECT_TRUE(ci.Contains(ci.point));
  EXPECT_FALSE(ci.Contains(0.0));
}

TEST(MttdlCiTest, IntervalNarrowsWithMoreEvents) {
  // Same rate (1 event / 100 h), increasing sample: the relative width of
  // the interval must shrink.
  const ConfidenceInterval few = MttdlCiHours(4, 400.0);
  const ConfidenceInterval many = MttdlCiHours(100, 10000.0);
  EXPECT_DOUBLE_EQ(few.point, many.point);
  EXPECT_LT(many.hi - many.lo, few.hi - few.lo);
  EXPECT_GT(many.lo, few.lo);
  EXPECT_LT(many.hi, few.hi);
}

TEST(MttdlCiTest, CoverageOnExactExponentialData) {
  // With d events in total time T from a true-rate process, the CI should
  // contain the truth for "typical" data (d ~ T * rate).
  const double true_mttdl = 500.0;
  const ConfidenceInterval ci = MttdlCiHours(20, 20 * true_mttdl);
  EXPECT_TRUE(ci.Contains(true_mttdl));
}

TEST(RatioCiTest, PointIsCombinedRatio) {
  const ConfidenceInterval ci = RatioCi({10.0, 20.0, 30.0}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ci.point, 10.0);
  // All pairs agree exactly: zero residuals, zero-width interval.
  EXPECT_DOUBLE_EQ(ci.lo, 10.0);
  EXPECT_DOUBLE_EQ(ci.hi, 10.0);
}

TEST(RatioCiTest, DisagreementWidensInterval) {
  const ConfidenceInterval ci = RatioCi({0.0, 40.0}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(ci.point, 10.0);
  EXPECT_LT(ci.lo, 10.0);
  EXPECT_GT(ci.hi, 10.0);
}

TEST(RatioCiTest, LowerBoundClampedToZero) {
  // Mostly-zero numerators with one outlier: the normal interval would dip
  // below zero; a loss rate cannot.
  const ConfidenceInterval ci =
      RatioCi({0.0, 0.0, 0.0, 0.0, 100.0}, {1.0, 1.0, 1.0, 1.0, 1.0});
  EXPECT_GE(ci.lo, 0.0);
  EXPECT_GT(ci.hi, ci.point);
}

TEST(RatioCiTest, SinglePairIsDegenerate) {
  const ConfidenceInterval ci = RatioCi({5.0}, {2.0});
  EXPECT_DOUBLE_EQ(ci.point, 2.5);
  EXPECT_DOUBLE_EQ(ci.lo, 2.5);
  EXPECT_DOUBLE_EQ(ci.hi, 2.5);
}

}  // namespace
}  // namespace afraid
