#include "stats/confidence.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace afraid {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ChiSquareQuantileTest, MatchesTabulatedValues) {
  // chi2_{2, 0.975} = 7.3778 and chi2_{2, 0.025} = 0.050636; df = 2 is the
  // exact exponential branch, so these are tight.
  EXPECT_NEAR(ChiSquareQuantile(2.0, kZ975), 7.3778, 1e-3);
  EXPECT_NEAR(ChiSquareQuantile(2.0, -kZ975), 0.050636, 1e-4);
  // chi2_{10, 0.975} = 20.483, chi2_{10, 0.025} = 3.2470.
  EXPECT_NEAR(ChiSquareQuantile(10.0, kZ975), 20.483, 0.1);
  EXPECT_NEAR(ChiSquareQuantile(10.0, -kZ975), 3.2470, 0.05);
  // The median of a chi-square is a bit below its mean (df).
  EXPECT_LT(ChiSquareQuantile(4.0, 0.0), 4.0);
  EXPECT_GT(ChiSquareQuantile(4.0, 0.0), 3.0);
}

TEST(MttdlCiTest, ZeroEventsGivesFiniteLowerBoundOnly) {
  const ConfidenceInterval ci = MttdlCiHours(0, 1000.0);
  EXPECT_EQ(ci.point, kInf);
  EXPECT_EQ(ci.hi, kInf);
  // One-sided 95% bound: 2T / chi2_{2,0.975} = 2000/7.38 ~ 271 ("rule of
  // three" shape: with zero events in T hours, MTTDL > ~T/3.7).
  EXPECT_GT(ci.lo, 200.0);
  EXPECT_LT(ci.lo, 300.0);
  EXPECT_TRUE(ci.Contains(kInf));
}

TEST(MttdlCiTest, PointIsTotalOverEvents) {
  const ConfidenceInterval ci = MttdlCiHours(4, 1000.0);
  EXPECT_DOUBLE_EQ(ci.point, 250.0);
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
  EXPECT_TRUE(ci.Contains(ci.point));
  EXPECT_FALSE(ci.Contains(0.0));
}

TEST(MttdlCiTest, IntervalNarrowsWithMoreEvents) {
  // Same rate (1 event / 100 h), increasing sample: the relative width of
  // the interval must shrink.
  const ConfidenceInterval few = MttdlCiHours(4, 400.0);
  const ConfidenceInterval many = MttdlCiHours(100, 10000.0);
  EXPECT_DOUBLE_EQ(few.point, many.point);
  EXPECT_LT(many.hi - many.lo, few.hi - few.lo);
  EXPECT_GT(many.lo, few.lo);
  EXPECT_LT(many.hi, few.hi);
}

TEST(MttdlCiTest, CoverageOnExactExponentialData) {
  // With d events in total time T from a true-rate process, the CI should
  // contain the truth for "typical" data (d ~ T * rate).
  const double true_mttdl = 500.0;
  const ConfidenceInterval ci = MttdlCiHours(20, 20 * true_mttdl);
  EXPECT_TRUE(ci.Contains(true_mttdl));
}

TEST(RatioCiTest, PointIsCombinedRatio) {
  const ConfidenceInterval ci = RatioCi({10.0, 20.0, 30.0}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ci.point, 10.0);
  // All pairs agree exactly: zero residuals, zero-width interval.
  EXPECT_DOUBLE_EQ(ci.lo, 10.0);
  EXPECT_DOUBLE_EQ(ci.hi, 10.0);
}

TEST(RatioCiTest, DisagreementWidensInterval) {
  const ConfidenceInterval ci = RatioCi({0.0, 40.0}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(ci.point, 10.0);
  EXPECT_LT(ci.lo, 10.0);
  EXPECT_GT(ci.hi, 10.0);
}

TEST(RatioCiTest, LowerBoundClampedToZero) {
  // Mostly-zero numerators with one outlier: the normal interval would dip
  // below zero; a loss rate cannot.
  const ConfidenceInterval ci =
      RatioCi({0.0, 0.0, 0.0, 0.0, 100.0}, {1.0, 1.0, 1.0, 1.0, 1.0});
  EXPECT_GE(ci.lo, 0.0);
  EXPECT_GT(ci.hi, ci.point);
}

TEST(RatioCiTest, SinglePairIsDegenerate) {
  const ConfidenceInterval ci = RatioCi({5.0}, {2.0});
  EXPECT_DOUBLE_EQ(ci.point, 2.5);
  EXPECT_DOUBLE_EQ(ci.lo, 2.5);
  EXPECT_DOUBLE_EQ(ci.hi, 2.5);
}

// --- Weighted (importance-sampled) estimators -------------------------------

TEST(WeightEssTest, UnitWeightsGiveFullSampleSize) {
  EXPECT_DOUBLE_EQ(WeightEss({0.0, 0.0, 0.0, 0.0}), 4.0);
  EXPECT_DOUBLE_EQ(WeightEss({}), 0.0);
}

TEST(WeightEssTest, ScaleInvariant) {
  // Shifting every log weight by a constant (even a huge one) cannot change
  // the ESS: the weights only matter up to normalization.
  const std::vector<double> base = {0.0, -1.0, 0.5, -2.0};
  std::vector<double> shifted_up;
  std::vector<double> shifted_down;
  for (double lw : base) {
    shifted_up.push_back(lw + 5000.0);
    shifted_down.push_back(lw - 5000.0);
  }
  EXPECT_NEAR(WeightEss(shifted_up), WeightEss(base), 1e-9);
  EXPECT_NEAR(WeightEss(shifted_down), WeightEss(base), 1e-9);
}

TEST(WeightEssTest, SingleDominatingWeightCollapsesTowardOne) {
  // One lifetime carrying e^20 times the weight of the rest: the effective
  // sample size must collapse to ~1, flagging a useless campaign.
  std::vector<double> log_w(100, 0.0);
  log_w[7] = 20.0;
  const double ess = WeightEss(log_w);
  EXPECT_GT(ess, 1.0);
  EXPECT_LT(ess, 1.01);
}

TEST(WeightedMeanCiTest, UnitWeightsMatchSampleMean) {
  const std::vector<double> log_w(4, 0.0);
  const ConfidenceInterval ci = WeightedMeanCi(log_w, {1.0, 0.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(ci.point, 0.5);
  EXPECT_LT(ci.lo, 0.5);
  EXPECT_GT(ci.hi, 0.5);
  EXPECT_GE(ci.lo, 0.0);
}

TEST(WeightedMeanCiTest, ExtremeLogWeightsDoNotProduceNan) {
  // Weight overflow: log weights beyond double range must degrade to a
  // usable [0, inf) interval, never NaN.
  const ConfidenceInterval over =
      WeightedMeanCi({1000.0, 0.0, -3.0}, {1.0, 1.0, 0.0});
  EXPECT_FALSE(std::isnan(over.point));
  EXPECT_FALSE(std::isnan(over.lo));
  EXPECT_FALSE(std::isnan(over.hi));
  EXPECT_GE(over.lo, 0.0);
  // Weight underflow: all weights tiny, the mean itself underflows to ~0
  // but stays a number.
  const ConfidenceInterval under =
      WeightedMeanCi({-800.0, -805.0}, {1.0, 1.0});
  EXPECT_FALSE(std::isnan(under.point));
  EXPECT_GE(under.point, 0.0);
  EXPECT_LT(under.point, 1e-300);
}

TEST(WeightedRatioCiTest, UnitWeightsMatchRatioCi) {
  const std::vector<double> num = {0.0, 40.0};
  const std::vector<double> den = {2.0, 2.0};
  const ConfidenceInterval unweighted = RatioCi(num, den);
  const ConfidenceInterval weighted = WeightedRatioCi({0.0, 0.0}, num, den);
  EXPECT_DOUBLE_EQ(weighted.point, unweighted.point);
  EXPECT_DOUBLE_EQ(weighted.lo, unweighted.lo);
  EXPECT_DOUBLE_EQ(weighted.hi, unweighted.hi);
}

TEST(WeightedRatioCiTest, DenominatorOffsetEntersWithUnitWeight) {
  // Two observations at weight 1 plus a per-observation offset of 3: the
  // denominator is 2 + 2 + 2*3 = 10.
  const ConfidenceInterval ci =
      WeightedRatioCi({0.0, 0.0}, {5.0, 5.0}, {2.0, 2.0}, 3.0);
  EXPECT_DOUBLE_EQ(ci.point, 1.0);
  // And the offset survives extreme down-weighting: with tiny weights the
  // ratio tends to weighted-num / (offset mass), not 0/0.
  const ConfidenceInterval tiny =
      WeightedRatioCi({-700.0, -700.0}, {5.0, 5.0}, {2.0, 2.0}, 3.0);
  EXPECT_FALSE(std::isnan(tiny.point));
  EXPECT_GE(tiny.point, 0.0);
  EXPECT_LT(tiny.point, 1e-250);
}

TEST(WeightedMttdlCiTest, UnitWeightZeroEventsMatchesUnweighted) {
  // Zero loss events with unit weights and no offset must reproduce the
  // chi-square zero-event lower bound exactly.
  const std::vector<double> log_w(4, 0.0);
  const std::vector<double> loss(4, 0.0);
  const std::vector<double> hours(4, 250.0);
  const ConfidenceInterval weighted = WeightedMttdlCiHours(log_w, loss, hours);
  const ConfidenceInterval unweighted = MttdlCiHours(0, 1000.0);
  EXPECT_EQ(weighted.point, kInf);
  EXPECT_EQ(weighted.hi, kInf);
  EXPECT_DOUBLE_EQ(weighted.lo, unweighted.lo);
}

TEST(WeightedMttdlCiTest, ZeroEventsUnderBiasingUsesEssLowerBound) {
  // Degenerate weights with no losses: the lower bound must shrink with the
  // effective (not nominal) sample size -- a collapsed campaign proves less.
  const std::vector<double> healthy_w(10, -0.5);
  std::vector<double> collapsed_w(10, -8.0);
  collapsed_w[0] = 0.0;  // One lifetime dominates.
  const std::vector<double> loss(10, 0.0);
  const std::vector<double> hours(10, 100.0);
  const ConfidenceInterval healthy = WeightedMttdlCiHours(healthy_w, loss, hours);
  const ConfidenceInterval collapsed =
      WeightedMttdlCiHours(collapsed_w, loss, hours);
  EXPECT_EQ(healthy.point, kInf);
  EXPECT_GT(healthy.lo, 0.0);
  EXPECT_GT(collapsed.lo, 0.0);
  EXPECT_LT(collapsed.lo, healthy.lo);
}

TEST(WeightedMttdlCiTest, SingleWeightedEventGivesFiniteInterval) {
  // One loss event carrying nearly all the weight: ESS collapses toward 1
  // and the delta-method interval must stay finite and ordered (single-event
  // campaigns are exactly where naive CIs lie).
  std::vector<double> log_w(8, -6.0);
  log_w[3] = 0.0;
  std::vector<double> loss(8, 0.0);
  loss[3] = 1.0;
  const std::vector<double> hours(8, 500.0);
  const ConfidenceInterval ci = WeightedMttdlCiHours(log_w, loss, hours);
  EXPECT_GT(ci.point, 0.0);
  EXPECT_LT(ci.point, kInf);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_LT(WeightEss(log_w), 1.5);
}

TEST(WeightedMttdlCiTest, ExtremeBiasingWeightsDoNotProduceNan) {
  const ConfidenceInterval ci = WeightedMttdlCiHours(
      {900.0, -900.0, 0.0}, {1.0, 0.0, 0.0}, {10.0, 10.0, 10.0}, 5.0);
  EXPECT_FALSE(std::isnan(ci.point));
  EXPECT_FALSE(std::isnan(ci.lo));
  EXPECT_FALSE(std::isnan(ci.hi));
  EXPECT_GE(ci.lo, 0.0);
}

}  // namespace
}  // namespace afraid
