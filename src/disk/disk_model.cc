#include "disk/disk_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace afraid {

DiskModel::DiskModel(Simulator* sim, DiskSpec spec, int32_t disk_id, Probe probe)
    : sim_(sim),
      spec_(std::move(spec)),
      geometry_(spec_.zones, spec_.heads, spec_.sector_bytes),
      seek_model_(spec_.seek),
      disk_id_(disk_id),
      probe_(probe),
      busy_time_(sim->Now()) {
  // Freeze the seek curve into a per-distance table: the longest possible
  // move is TotalCylinders-1, so every SeekTime the mechanism can ask for
  // becomes a load instead of a sqrt. The table is exact (see seek_model.h).
  seek_model_.PrecomputeTable(geometry_.TotalCylinders() - 1);
  if (probe_) {
    queue_counter_name_ = "disk" + std::to_string(disk_id_) + " queue";
  }
}

int32_t DiskModel::TrackSkew(int32_t sectors_per_track) const {
  // One skew value stands in for both track skew and cylinder skew: enough
  // sectors to hide the worst single-track move -- a head switch, or a
  // track-to-track seek plus write settle -- plus one sector of margin.
  // (Real disks use a smaller skew for head switches; the approximation
  // costs well under a millisecond per head switch.)
  const double rev = static_cast<double>(spec_.RevolutionTime());
  const double worst_move = std::max<double>(
      static_cast<double>(spec_.head_switch),
      static_cast<double>(seek_model_.SeekTime(1) + spec_.write_settle));
  const double frac = worst_move / rev;
  return static_cast<int32_t>(std::ceil(frac * sectors_per_track)) + 1;
}

SimDuration DiskModel::RotationalWait(SimTime now, const Chs& chs) const {
  const int64_t rev = spec_.RevolutionTime();
  const int32_t spt = chs.sectors_per_track;
  const int64_t skew = static_cast<int64_t>(TrackSkew(spt)) * chs.track_index;
  const int32_t slot = static_cast<int32_t>((chs.sector + skew) % spt);
  const double target_frac = static_cast<double>(slot) / spt;
  const double cur_frac = static_cast<double>(now % rev) / static_cast<double>(rev);
  double wait_frac = target_frac - cur_frac;
  if (wait_frac < 0.0) {
    wait_frac += 1.0;
  }
  return static_cast<SimDuration>(wait_frac * static_cast<double>(rev) + 0.5);
}

ServiceBreakdown DiskModel::ComputeService(SimTime start, const DiskOp& op,
                                           int32_t from_cylinder,
                                           int32_t* end_cylinder) const {
  assert(op.sectors > 0);
  assert(op.lba >= 0 && op.lba + op.sectors <= geometry_.TotalSectors());

  ServiceBreakdown bd;
  bd.overhead = spec_.controller_overhead;
  SimTime t = start + bd.overhead;

  Chs chs = geometry_.ToChs(op.lba);
  bd.seek = seek_model_.SeekTime(chs.cylinder - from_cylinder);
  if (op.is_write) {
    bd.seek += spec_.write_settle;
  }
  t += bd.seek;

  const int64_t rev = spec_.RevolutionTime();
  int64_t lba = op.lba;
  int32_t remaining = op.sectors;
  bool first_track = true;
  while (remaining > 0) {
    if (!first_track) {
      // Move to the next track: same cylinder -> head switch; otherwise a
      // (short) seek. Writes settle again after the repositioning.
      const Chs next = geometry_.ToChs(lba);
      SimDuration move = 0;
      if (next.cylinder == chs.cylinder) {
        move = spec_.head_switch;
      } else {
        move = seek_model_.SeekTime(next.cylinder - chs.cylinder);
        if (op.is_write) {
          move += spec_.write_settle;
        }
      }
      bd.transfer += move;
      t += move;
      chs = next;
    }
    const SimDuration rot = RotationalWait(t, chs);
    bd.rotation += rot;
    t += rot;

    const int32_t on_track = std::min<int32_t>(remaining, chs.sectors_per_track - chs.sector);
    const auto media = static_cast<SimDuration>(
        static_cast<double>(rev) * on_track / chs.sectors_per_track + 0.5);
    bd.transfer += media;
    t += media;
    lba += on_track;
    remaining -= on_track;
    first_track = false;
  }

  if (end_cylinder != nullptr) {
    // Arm finishes over the cylinder holding the final sector.
    *end_cylinder = geometry_.ToChs(lba - 1).cylinder;
  }
  return bd;
}

void DiskModel::Submit(const DiskOp& op, DiskOpCallback done) {
  assert(op.sectors > 0);
  const SimTime now = sim_->Now();
  if (failed_) {
    DiskOpResult result;
    result.ok = false;
    result.submitted = now;
    result.service_start = now;
    result.finish = now;
    sim_->After(0, [done = std::move(done), result]() mutable { done(result); });
    return;
  }
  queue_.push_back(Pending{op, std::move(done), now});
  if (probe_) {
    probe_.Counter(queue_counter_name_, now, static_cast<double>(QueueDepth()));
  }
  if (!busy_) {
    StartNext();
  }
}

void DiskModel::StartNext() {
  assert(!busy_);
  if (queue_.empty() || failed_) {
    return;
  }
  if (inflight_free_.empty()) {
    inflight_slots_.push_back(std::make_unique<InFlight>());
    inflight_free_.push_back(static_cast<int32_t>(inflight_slots_.size()) - 1);
  }
  const int32_t slot = inflight_free_.back();
  inflight_free_.pop_back();
  InFlight& f = *inflight_slots_[slot];
  f.p = std::move(queue_.front());
  queue_.pop_front();
  busy_ = true;
  busy_time_.Set(sim_->Now(), 1.0);

  f.service_start = sim_->Now();
  int32_t end_cylinder = current_cylinder_;
  f.bd = ComputeService(f.service_start, f.p.op, current_cylinder_, &end_cylinder);
  current_cylinder_ = end_cylinder;
  sim_->After(f.bd.Total(), [this, slot] { CompleteSlot(slot); });
}

void DiskModel::CompleteSlot(int32_t slot) {
  InFlight& f = *inflight_slots_[slot];
  Pending p = std::move(f.p);
  const ServiceBreakdown bd = f.bd;
  const SimTime service_start = f.service_start;
  // The slot is free for reuse before the completion callback runs -- the
  // callback may re-enter Submit and start the next operation.
  f.p = Pending{};
  inflight_free_.push_back(slot);
  CompleteCurrent(p, bd, service_start);
}

void DiskModel::CompleteCurrent(Pending& p, const ServiceBreakdown& breakdown,
                                SimTime service_start) {
  const SimTime now = sim_->Now();
  busy_ = false;
  busy_time_.Set(now, 0.0);
  if (probe_) {
    probe_.Counter(queue_counter_name_, now, static_cast<double>(QueueDepth()));
  }

  DiskOpResult result;
  result.submitted = p.submitted;
  result.service_start = service_start;
  result.finish = now;
  if (failed_) {
    // The mechanism died mid-flight; report failure, do not count the op.
    result.ok = false;
  } else {
    result.ok = true;
    result.breakdown = breakdown;
    ++ops_completed_;
    sectors_transferred_ += p.op.sectors;
    service_times_.Add(ToMilliseconds(now - service_start));
  }
  p.done(result);
  if (!failed_) {
    StartNext();
  }
}

void DiskModel::Fail() {
  if (failed_) {
    return;
  }
  failed_ = true;
  // Everything queued (not yet started) fails now. The in-flight op, if any,
  // will observe failed_ when its completion event fires.
  const SimTime now = sim_->Now();
  while (!queue_.empty()) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    DiskOpResult result;
    result.ok = false;
    result.submitted = p.submitted;
    result.service_start = now;
    result.finish = now;
    sim_->After(0, [done = std::move(p.done), result]() mutable { done(result); });
  }
}

void DiskModel::Replace() {
  assert(queue_.empty());
  assert(!busy_);
  failed_ = false;
  current_cylinder_ = 0;
}

}  // namespace afraid
