// Zoned disk geometry and logical-block addressing.
//
// Models a multi-zone (zone-bit-recorded) disk: outer zones hold more sectors
// per track than inner ones, which is what gives modern disks their higher
// sustained transfer rate on outer cylinders. Logical blocks are mapped in
// the conventional order: zone (outer to inner), then cylinder, then head
// (surface), then sector within the track.

#ifndef AFRAID_DISK_GEOMETRY_H_
#define AFRAID_DISK_GEOMETRY_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace afraid {

struct DiskZone {
  int32_t cylinders = 0;          // Number of cylinders in this zone.
  int32_t sectors_per_track = 0;  // Sectors on each track of this zone.
};

// Physical coordinates of a logical block.
struct Chs {
  int32_t zone = 0;
  int32_t cylinder = 0;        // Global cylinder index (0 = outermost).
  int32_t head = 0;            // Surface index.
  int32_t sector = 0;          // Sector index within the track.
  int64_t track_index = 0;     // Global track index = cylinder * heads + head.
  int32_t sectors_per_track = 0;
};

class DiskGeometry {
 public:
  DiskGeometry(std::vector<DiskZone> zones, int32_t heads, int32_t sector_bytes);

  int64_t TotalSectors() const { return total_sectors_; }
  int64_t CapacityBytes() const { return total_sectors_ * sector_bytes_; }
  int32_t Heads() const { return heads_; }
  int32_t SectorBytes() const { return sector_bytes_; }
  int32_t TotalCylinders() const { return total_cylinders_; }
  const std::vector<DiskZone>& Zones() const { return zones_; }

  // Maps a logical block address (sector number) to physical coordinates.
  // Precondition: 0 <= lba < TotalSectors().
  Chs ToChs(int64_t lba) const;

  // Inverse of ToChs (used by tests to prove the mapping is a bijection).
  int64_t ToLba(const Chs& chs) const;

  // Sectors per track in the zone that holds `lba`.
  int32_t SectorsPerTrackAt(int64_t lba) const { return ToChs(lba).sectors_per_track; }

 private:
  std::vector<DiskZone> zones_;
  int32_t heads_;
  int32_t sector_bytes_;
  int32_t total_cylinders_ = 0;
  int64_t total_sectors_ = 0;
  // Precomputed per-zone cumulative values for O(#zones) lookup.
  std::vector<int64_t> zone_first_sector_;
  std::vector<int32_t> zone_first_cylinder_;
};

}  // namespace afraid

#endif  // AFRAID_DISK_GEOMETRY_H_
