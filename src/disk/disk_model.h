// An event-driven model of a single disk mechanism.
//
// Timing follows [Ruemmler94]: per-command controller overhead, a
// distance-dependent seek (plus write settle on writes), rotational latency
// against a continuously spinning platter, and zone-dependent media transfer
// with head-switch and track-switch costs. Tracks are skewed so that
// sequential transfers crossing a track boundary lose only the switch time,
// not a full revolution.
//
// The disk services its queue FCFS (the paper's arrays used FCFS at the
// back-end device drivers) and is non-preemptive: once started, an operation
// runs to completion. Spin-synchronisation across an array falls out of the
// model for free: all disks share the simulator clock and have the same RPM,
// so their angular positions are identical at all times.

#ifndef AFRAID_DISK_DISK_MODEL_H_
#define AFRAID_DISK_DISK_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/arena.h"
#include "sim/callback.h"

#include "disk/disk_spec.h"
#include "disk/geometry.h"
#include "disk/seek_model.h"
#include "obs/probe.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "stats/streaming.h"
#include "stats/time_weighted.h"

namespace afraid {

// One contiguous sector-level operation against a disk.
struct DiskOp {
  int64_t lba = 0;        // First sector.
  int32_t sectors = 0;    // Number of sectors (> 0).
  bool is_write = false;
};

// Where the service time went, for tests and analysis.
struct ServiceBreakdown {
  SimDuration overhead = 0;
  SimDuration seek = 0;      // Includes write settle for writes.
  SimDuration rotation = 0;  // Rotational latency plus mid-transfer realigns.
  SimDuration transfer = 0;  // Media time moving sectors, plus head switches.

  SimDuration Total() const { return overhead + seek + rotation + transfer; }
};

struct DiskOpResult {
  bool ok = true;                 // False if the disk failed.
  SimTime submitted = 0;          // When Submit() was called.
  SimTime service_start = 0;      // When the mechanism picked the op up.
  SimTime finish = 0;             // Completion time.
  ServiceBreakdown breakdown;     // Zero for failed ops.
};

// Sized for the controllers' completion continuations (the probe-wrapped
// purpose-labelled span emitter carrying a DiskDone is the fattest capture
// today, at 104 bytes).
using DiskOpCallback = SmallCallback<void(const DiskOpResult&), 112>;

class DiskModel {
 public:
  // `probe`, when non-null, should be bound to this disk's trace track; the
  // model emits a queue-depth counter timeline on it (array-level code emits
  // the purpose-labelled service spans).
  DiskModel(Simulator* sim, DiskSpec spec, int32_t disk_id, Probe probe = {});
  DiskModel(const DiskModel&) = delete;
  DiskModel& operator=(const DiskModel&) = delete;

  // Enqueues an operation. The callback fires at completion time; if the disk
  // is (or becomes) failed, it fires with ok=false.
  void Submit(const DiskOp& op, DiskOpCallback done);

  // Marks the disk failed. The in-flight operation and everything queued
  // complete immediately with ok=false; later Submits fail at submit time.
  void Fail();

  // Installs a fresh (replacement) mechanism: clears the failure, resets the
  // arm to cylinder 0. Queue must be empty (callers drain by failing first).
  void Replace();

  bool failed() const { return failed_; }
  int32_t disk_id() const { return disk_id_; }
  const DiskSpec& spec() const { return spec_; }
  const DiskGeometry& geometry() const { return geometry_; }
  int64_t TotalSectors() const { return geometry_.TotalSectors(); }

  // True when no operation is in flight or queued.
  bool Idle() const { return !busy_ && queue_.empty(); }
  size_t QueueDepth() const { return queue_.size() + (busy_ ? 1 : 0); }

  // Where the arm currently rests (the position a replica-choice dispatcher
  // estimates positioning cost from; see core/mirror_controller.h).
  int32_t CurrentCylinder() const { return current_cylinder_; }

  // Pure timing query: what would servicing `op` cost if started at `start`
  // with the arm at cylinder `from_cylinder`? Does not disturb disk state.
  // Also reports the cylinder where the arm ends up.
  ServiceBreakdown ComputeService(SimTime start, const DiskOp& op,
                                  int32_t from_cylinder, int32_t* end_cylinder) const;

  // Lifetime statistics.
  uint64_t OpsCompleted() const { return ops_completed_; }
  int64_t SectorsTransferred() const { return sectors_transferred_; }
  double UtilizationTo(SimTime now) const { return busy_time_.PositiveFractionTo(now); }
  const StreamingStats& ServiceTimes() const { return service_times_; }

 private:
  struct Pending {
    DiskOp op;
    DiskOpCallback done;
    SimTime submitted = 0;
  };
  // In-flight operation context, pooled so the completion event captures only
  // [this, slot] and the hot path never heap-allocates. A slot per op (not a
  // single member) deliberately preserves the existing completion semantics:
  // CompleteCurrent runs the callback after releasing the mechanism, so a
  // re-entrant Submit can overlap with StartNext (see ROADMAP).
  struct InFlight {
    Pending p;
    ServiceBreakdown bd;
    SimTime service_start = 0;
  };

  void StartNext();
  void CompleteSlot(int32_t slot);
  void CompleteCurrent(Pending& p, const ServiceBreakdown& breakdown,
                       SimTime service_start);
  // Time from `now` until the start of sector `sector` (with skew applied) of
  // the track described by `chs` passes under the head.
  SimDuration RotationalWait(SimTime now, const Chs& chs) const;
  // Skew, in sectors, applied per global track index in the given zone.
  int32_t TrackSkew(int32_t sectors_per_track) const;

  Simulator* sim_;
  DiskSpec spec_;
  DiskGeometry geometry_;
  SeekModel seek_model_;
  int32_t disk_id_;
  Probe probe_;
  std::string queue_counter_name_;  // Built once; empty when probe_ is null.

  RingQueue<Pending> queue_;
  std::vector<std::unique_ptr<InFlight>> inflight_slots_;
  std::vector<int32_t> inflight_free_;
  bool busy_ = false;
  bool failed_ = false;
  int32_t current_cylinder_ = 0;

  uint64_t ops_completed_ = 0;
  int64_t sectors_transferred_ = 0;
  TimeWeightedValue busy_time_;
  StreamingStats service_times_;  // Milliseconds.
};

}  // namespace afraid

#endif  // AFRAID_DISK_DISK_MODEL_H_
