#include "disk/geometry.h"

#include <cstddef>

namespace afraid {

DiskGeometry::DiskGeometry(std::vector<DiskZone> zones, int32_t heads, int32_t sector_bytes)
    : zones_(std::move(zones)), heads_(heads), sector_bytes_(sector_bytes) {
  assert(!zones_.empty());
  assert(heads_ > 0);
  assert(sector_bytes_ > 0);
  for (const DiskZone& z : zones_) {
    assert(z.cylinders > 0 && z.sectors_per_track > 0);
    zone_first_sector_.push_back(total_sectors_);
    zone_first_cylinder_.push_back(total_cylinders_);
    total_sectors_ +=
        static_cast<int64_t>(z.cylinders) * heads_ * z.sectors_per_track;
    total_cylinders_ += z.cylinders;
  }
}

Chs DiskGeometry::ToChs(int64_t lba) const {
  assert(lba >= 0 && lba < total_sectors_);
  // Find the zone (few zones, so linear scan is fine and branch-predictable).
  size_t zi = zones_.size() - 1;
  for (size_t i = 0; i + 1 < zones_.size(); ++i) {
    if (lba < zone_first_sector_[i + 1]) {
      zi = i;
      break;
    }
  }
  const DiskZone& z = zones_[zi];
  const int64_t in_zone = lba - zone_first_sector_[zi];
  const int64_t sectors_per_cyl = static_cast<int64_t>(heads_) * z.sectors_per_track;
  Chs chs;
  chs.zone = static_cast<int32_t>(zi);
  const int64_t cyl_in_zone = in_zone / sectors_per_cyl;
  chs.cylinder = zone_first_cylinder_[zi] + static_cast<int32_t>(cyl_in_zone);
  const int64_t in_cyl = in_zone - cyl_in_zone * sectors_per_cyl;
  chs.head = static_cast<int32_t>(in_cyl / z.sectors_per_track);
  chs.sector = static_cast<int32_t>(in_cyl % z.sectors_per_track);
  chs.track_index = static_cast<int64_t>(chs.cylinder) * heads_ + chs.head;
  chs.sectors_per_track = z.sectors_per_track;
  return chs;
}

int64_t DiskGeometry::ToLba(const Chs& chs) const {
  const auto zi = static_cast<size_t>(chs.zone);
  assert(zi < zones_.size());
  const DiskZone& z = zones_[zi];
  const int64_t cyl_in_zone = chs.cylinder - zone_first_cylinder_[zi];
  return zone_first_sector_[zi] +
         (cyl_in_zone * heads_ + chs.head) * static_cast<int64_t>(z.sectors_per_track) +
         chs.sector;
}

}  // namespace afraid
