// Ruemmler-Wilkes seek-time model [Ruemmler94].
//
// Seek time as a function of seek distance d (in cylinders):
//   d == 0               -> 0
//   0 < d < boundary     -> single_cyl + short_coeff * sqrt(d - 1)
//   d >= boundary        -> long_base + long_slope * d
// The square-root region models the acceleration-limited portion of the arm
// trajectory; the linear region models the coast-at-max-velocity portion.
// Parameters are chosen so the curve is continuous and monotone.

#ifndef AFRAID_DISK_SEEK_MODEL_H_
#define AFRAID_DISK_SEEK_MODEL_H_

#include <cassert>
#include <cmath>
#include <cstdint>

#include "sim/time.h"

namespace afraid {

struct SeekModelParams {
  double single_cylinder_ms = 1.0;  // Track-to-track seek.
  double short_coeff_ms = 0.42;     // sqrt-region coefficient.
  int32_t boundary_cylinders = 400;
  double long_base_ms = 8.8;
  double long_slope_ms = 0.0015;  // ms per cylinder in the linear region.
};

class SeekModel {
 public:
  explicit SeekModel(const SeekModelParams& p) : p_(p) {
    assert(p_.single_cylinder_ms >= 0.0);
    assert(p_.boundary_cylinders >= 1);
  }

  // Seek time for a move of `distance` cylinders (absolute value taken).
  SimDuration SeekTime(int64_t distance) const {
    if (distance < 0) {
      distance = -distance;
    }
    if (distance == 0) {
      return 0;
    }
    double ms = 0.0;
    if (distance < p_.boundary_cylinders) {
      ms = p_.single_cylinder_ms +
           p_.short_coeff_ms * std::sqrt(static_cast<double>(distance - 1));
    } else {
      ms = p_.long_base_ms + p_.long_slope_ms * static_cast<double>(distance);
    }
    return MillisecondsF(ms);
  }

  const SeekModelParams& params() const { return p_; }

 private:
  SeekModelParams p_;
};

}  // namespace afraid

#endif  // AFRAID_DISK_SEEK_MODEL_H_
