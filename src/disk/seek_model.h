// Ruemmler-Wilkes seek-time model [Ruemmler94].
//
// Seek time as a function of seek distance d (in cylinders):
//   d == 0               -> 0
//   0 < d < boundary     -> single_cyl + short_coeff * sqrt(d - 1)
//   d >= boundary        -> long_base + long_slope * d
// The square-root region models the acceleration-limited portion of the arm
// trajectory; the linear region models the coast-at-max-velocity portion.
// Parameters are chosen so the curve is continuous and monotone.
//
// The analytic curve costs a sqrt per evaluation, and the disk model
// evaluates it once (sometimes twice) per disk operation. Since seek
// distances are bounded by the disk's cylinder count, PrecomputeTable()
// freezes the curve into one table entry per distance; SeekTime() then is a
// bounds-checked load. The table is exact -- each entry is the analytic
// value at that integer distance, so a tabulated model is indistinguishable
// from the analytic one (tests assert equality at every distance).

#ifndef AFRAID_DISK_SEEK_MODEL_H_
#define AFRAID_DISK_SEEK_MODEL_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace afraid {

struct SeekModelParams {
  double single_cylinder_ms = 1.0;  // Track-to-track seek.
  double short_coeff_ms = 0.42;     // sqrt-region coefficient.
  int32_t boundary_cylinders = 400;
  double long_base_ms = 8.8;
  double long_slope_ms = 0.0015;  // ms per cylinder in the linear region.
};

class SeekModel {
 public:
  explicit SeekModel(const SeekModelParams& p) : p_(p) {
    assert(p_.single_cylinder_ms >= 0.0);
    assert(p_.boundary_cylinders >= 1);
  }

  // The analytic Ruemmler-Wilkes curve. Source of truth: PrecomputeTable()
  // fills the lookup table from it, and tests use it as the oracle.
  SimDuration AnalyticSeekTime(int64_t distance) const {
    if (distance < 0) {
      distance = -distance;
    }
    if (distance == 0) {
      return 0;
    }
    double ms = 0.0;
    if (distance < p_.boundary_cylinders) {
      ms = p_.single_cylinder_ms +
           p_.short_coeff_ms * std::sqrt(static_cast<double>(distance - 1));
    } else {
      ms = p_.long_base_ms + p_.long_slope_ms * static_cast<double>(distance);
    }
    return MillisecondsF(ms);
  }

  // Tabulates distances [0, max_distance]. Every distance a disk of
  // max_distance+1 cylinders can produce becomes a single load.
  void PrecomputeTable(int32_t max_distance) {
    assert(max_distance >= 0);
    lut_.resize(static_cast<size_t>(max_distance) + 1);
    for (int32_t d = 0; d <= max_distance; ++d) {
      lut_[static_cast<size_t>(d)] = AnalyticSeekTime(d);
    }
  }

  // Seek time for a move of `distance` cylinders (absolute value taken).
  // A table load when the distance is covered by PrecomputeTable(), the
  // analytic curve otherwise.
  SimDuration SeekTime(int64_t distance) const {
    const uint64_t d =
        static_cast<uint64_t>(distance < 0 ? -distance : distance);
    if (d < lut_.size()) {
      return lut_[d];
    }
    return AnalyticSeekTime(static_cast<int64_t>(d));
  }

  const SeekModelParams& params() const { return p_; }
  int64_t TableSize() const { return static_cast<int64_t>(lut_.size()); }

 private:
  SeekModelParams p_;
  std::vector<SimDuration> lut_;  // lut_[d] == AnalyticSeekTime(d).
};

}  // namespace afraid

#endif  // AFRAID_DISK_SEEK_MODEL_H_
