#include "disk/disk_spec.h"

namespace afraid {

DiskSpec DiskSpec::HpC3325Like() {
  DiskSpec spec;
  spec.name = "HP-C3325-like 2GB 5400rpm";
  // Three zones, 9 surfaces, 512-byte sectors:
  //   1400 cyl x 126 spt + 1500 cyl x 108 spt + 1415 cyl x 90 spt
  // = 4,191,750 sectors = 2,146,176,000 bytes (~2.0 GB).
  // Outer-zone media rate: 126*512 B / 11.11 ms = 5.8 MB/s; inner: 4.1 MB/s.
  spec.zones = {{1400, 126}, {1500, 108}, {1415, 90}};
  spec.heads = 9;
  spec.sector_bytes = 512;
  spec.rpm = 5400.0;
  spec.seek = SeekModelParams{
      .single_cylinder_ms = 1.0,
      .short_coeff_ms = 0.42,
      .boundary_cylinders = 400,
      .long_base_ms = 8.8,
      .long_slope_ms = 0.0015,
  };
  spec.head_switch = MillisecondsF(0.8);
  spec.write_settle = MillisecondsF(0.5);
  spec.controller_overhead = MillisecondsF(0.5);
  return spec;
}

DiskSpec DiskSpec::TinyTestDisk() {
  DiskSpec spec;
  spec.name = "tiny-test-disk 2MiB";
  spec.zones = {{64, 16}};
  spec.heads = 4;
  spec.sector_bytes = 512;
  spec.rpm = 6000.0;  // 10 ms revolution: round numbers for hand checks.
  spec.seek = SeekModelParams{
      .single_cylinder_ms = 1.0,
      .short_coeff_ms = 0.5,
      .boundary_cylinders = 16,
      .long_base_ms = 2.0,
      .long_slope_ms = 0.05,
  };
  spec.head_switch = MillisecondsF(0.5);
  spec.write_settle = MillisecondsF(0.25);
  spec.controller_overhead = MillisecondsF(0.25);
  return spec;
}

}  // namespace afraid
