// Parameter bundle describing one disk mechanism, plus calibrated presets.
//
// The AFRAID paper modelled HP C3325 2 GB 3.5" 5400 RPM disks [HPC3324] using
// the calibrated models of [Ruemmler94]. The HpC3325Like() preset reproduces
// the characteristics the paper's results depend on: ~2 GB capacity, 11.1 ms
// revolution, ~1-15 ms seeks, and ~5 MB/s sustained media rate.

#ifndef AFRAID_DISK_DISK_SPEC_H_
#define AFRAID_DISK_DISK_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "disk/geometry.h"
#include "disk/seek_model.h"
#include "sim/time.h"

namespace afraid {

struct DiskSpec {
  std::string name;
  std::vector<DiskZone> zones;
  int32_t heads = 0;
  int32_t sector_bytes = 512;
  double rpm = 5400.0;
  SeekModelParams seek;
  SimDuration head_switch = MillisecondsF(0.8);       // Surface change on one cylinder.
  SimDuration write_settle = MillisecondsF(0.5);      // Extra settle before writing.
  SimDuration controller_overhead = MillisecondsF(0.5);  // Per-command fixed cost.

  // Time for one full revolution.
  SimDuration RevolutionTime() const {
    return SecondsF(60.0 / rpm);
  }

  // A preset approximating the HP C3325 used in the paper: 2 GB, 5400 RPM,
  // 9 surfaces, three recording zones averaging ~5 MB/s.
  static DiskSpec HpC3325Like();

  // A deliberately tiny disk for unit tests (fast to reason about by hand):
  // 1 zone, 4 heads, 16 sectors/track, 64 cylinders -> 4096 sectors = 2 MiB.
  static DiskSpec TinyTestDisk();
};

}  // namespace afraid

#endif  // AFRAID_DISK_DISK_SPEC_H_
