// The run-artifacts writer: one directory per observed run, holding the
// single source of truth for that run's output.
//
//   <dir>/report.json    -- the SimReport (obs/report_io.h serializer).
//   <dir>/metrics.jsonl  -- metric snapshots (obs/metrics.h, JSONL).
//   <dir>/trace.json     -- Chrome Trace Event Format (obs/tracer.h); open
//                           in chrome://tracing or https://ui.perfetto.dev.
//
// The directory (and parents) are created on construction. Writers return
// false on I/O failure and leave a diagnostic in error().

#ifndef AFRAID_OBS_ARTIFACTS_H_
#define AFRAID_OBS_ARTIFACTS_H_

#include <string>

#include "core/report.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace afraid {

class RunArtifacts {
 public:
  explicit RunArtifacts(std::string dir);

  // False if the run directory could not be created.
  bool ok() const { return ok_; }
  const std::string& dir() const { return dir_; }
  const std::string& error() const { return error_; }

  bool WriteReport(const SimReport& rep);
  bool WriteMetrics(const MetricsRegistry& metrics);
  bool WriteTrace(const Tracer& tracer);
  // Escape hatch for auxiliary artifacts (input traces, notes).
  bool WriteText(const std::string& filename, const std::string& content);

 private:
  std::string dir_;
  bool ok_ = false;
  std::string error_;
};

}  // namespace afraid

#endif  // AFRAID_OBS_ARTIFACTS_H_
