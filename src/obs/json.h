// Minimal JSON support for the observability layer: a streaming writer used
// by every artifact serializer (report.json, metrics.jsonl, trace.json), and
// a small recursive-descent reader used by the validation tooling and tests
// to parse those artifacts back.
//
// The writer emits non-finite doubles as the bare literals Infinity /
// -Infinity / NaN (the availability model legitimately produces infinite
// MTTDLs). Python's json module and the reader below both accept them;
// strictly-conforming consumers should treat report fields as possibly
// non-finite.

#ifndef AFRAID_OBS_JSON_H_
#define AFRAID_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace afraid {

// --- Writer -------------------------------------------------------------------

// Streaming JSON writer with automatic comma placement. Usage:
//   JsonWriter w;
//   w.BeginObject().Key("requests").Value(int64_t{42}).EndObject();
//   std::string out = std::move(w).Take();
// The caller is responsible for well-formed nesting (asserted in debug).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& Value(std::string_view s);
  JsonWriter& Value(const char* s) { return Value(std::string_view(s)); }
  JsonWriter& Value(double d);
  JsonWriter& Value(int64_t i);
  JsonWriter& Value(uint64_t u);
  JsonWriter& Value(int32_t i) { return Value(static_cast<int64_t>(i)); }
  JsonWriter& Value(bool b);
  JsonWriter& Null();
  // Appends pre-serialized JSON verbatim (e.g. a nested object built earlier).
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string Take() && { return std::move(out_); }

 private:
  void MaybeComma();
  std::string out_;
  // One entry per open container: true until the first element is written.
  std::vector<bool> first_;
  bool pending_key_ = false;
};

// Escapes `s` into a double-quoted JSON string literal.
std::string JsonEscape(std::string_view s);

// --- Reader -------------------------------------------------------------------

// A parsed JSON value. Arrays/objects own their children; object key order is
// preserved (Get() does a linear scan -- artifacts are small).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& Items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& Members() const {
    return members_;
  }

  // Object member lookup; nullptr if absent or not an object.
  const JsonValue* Get(std::string_view key) const;
  // Convenience: Get(key)->AsDouble() with a default for absent members.
  double GetNumber(std::string_view key, double fallback = 0.0) const;
  std::string GetString(std::string_view key, std::string fallback = "") const;

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Parses `text` into *out. Returns false (with a position/diagnostic in
// *error if non-null) on malformed input. Accepts the writer's non-finite
// literals (Infinity, -Infinity, NaN).
bool ParseJson(std::string_view text, JsonValue* out, std::string* error = nullptr);

}  // namespace afraid

#endif  // AFRAID_OBS_JSON_H_
