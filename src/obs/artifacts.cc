#include "obs/artifacts.h"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "obs/report_io.h"

namespace afraid {

RunArtifacts::RunArtifacts(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // create_directories reports success-with-no-op for an existing directory;
  // double-check the path is usable either way.
  if (std::filesystem::is_directory(dir_, ec)) {
    ok_ = true;
  } else {
    error_ = "cannot create run directory " + dir_ + ": " + ec.message();
  }
}

bool RunArtifacts::WriteText(const std::string& filename, const std::string& content) {
  if (!ok_) {
    return false;
  }
  const std::string path = dir_ + "/" + filename;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    error_ = "cannot open " + path;
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != content.size() || !closed) {
    error_ = "short write to " + path;
    return false;
  }
  return true;
}

bool RunArtifacts::WriteReport(const SimReport& rep) {
  return WriteText("report.json", SimReportToJson(rep) + "\n");
}

bool RunArtifacts::WriteMetrics(const MetricsRegistry& metrics) {
  return WriteText("metrics.jsonl", metrics.ToJsonLines());
}

bool RunArtifacts::WriteTrace(const Tracer& tracer) {
  return WriteText("trace.json", tracer.ToJson() + "\n");
}

}  // namespace afraid
