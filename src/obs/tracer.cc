#include "obs/tracer.h"

#include <utility>

#include "obs/json.h"

namespace afraid {
namespace {

// Chrome trace timestamps are microseconds; keep sub-us precision (our clock
// is ns) as a fractional part.
double ToTraceUs(SimTime t) { return static_cast<double>(t) / 1e3; }

}  // namespace

int32_t Tracer::AddTrack(const std::string& name) {
  track_names_.push_back(name);
  return static_cast<int32_t>(track_names_.size() - 1);
}

void Tracer::Complete(int32_t track, std::string name, SimTime start, SimTime end,
                      std::string args_json) {
  TraceEvent ev;
  ev.phase = 'X';
  ev.track = track;
  ev.name = std::move(name);
  ev.ts = start;
  ev.dur = end - start;
  ev.args_json = std::move(args_json);
  events_.push_back(std::move(ev));
}

void Tracer::AsyncBegin(int32_t track, std::string name, uint64_t id, SimTime ts,
                        std::string args_json) {
  TraceEvent ev;
  ev.phase = 'b';
  ev.track = track;
  ev.name = std::move(name);
  ev.ts = ts;
  ev.id = id;
  ev.args_json = std::move(args_json);
  events_.push_back(std::move(ev));
}

void Tracer::AsyncEnd(int32_t track, std::string name, uint64_t id, SimTime ts) {
  TraceEvent ev;
  ev.phase = 'e';
  ev.track = track;
  ev.name = std::move(name);
  ev.ts = ts;
  ev.id = id;
  events_.push_back(std::move(ev));
}

void Tracer::Instant(int32_t track, std::string name, SimTime ts) {
  TraceEvent ev;
  ev.phase = 'i';
  ev.track = track;
  ev.name = std::move(name);
  ev.ts = ts;
  events_.push_back(std::move(ev));
}

void Tracer::Counter(int32_t track, std::string name, SimTime ts, double value) {
  TraceEvent ev;
  ev.phase = 'C';
  ev.track = track;
  ev.name = std::move(name);
  ev.ts = ts;
  ev.value = value;
  events_.push_back(std::move(ev));
}

std::string Tracer::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").Value("ms");
  w.Key("traceEvents").BeginArray();
  // Track-name metadata first: viewers sort tracks by these records.
  for (size_t tid = 0; tid < track_names_.size(); ++tid) {
    w.BeginObject();
    w.Key("ph").Value("M");
    w.Key("name").Value("thread_name");
    w.Key("pid").Value(int64_t{1});
    w.Key("tid").Value(static_cast<int64_t>(tid));
    w.Key("args").BeginObject().Key("name").Value(track_names_[tid]).EndObject();
    w.EndObject();
  }
  for (const TraceEvent& ev : events_) {
    w.BeginObject();
    w.Key("ph").Value(std::string_view(&ev.phase, 1));
    w.Key("name").Value(ev.name);
    w.Key("pid").Value(int64_t{1});
    w.Key("tid").Value(static_cast<int64_t>(ev.track));
    w.Key("ts").Value(ToTraceUs(ev.ts));
    switch (ev.phase) {
      case 'X':
        w.Key("dur").Value(ToTraceUs(ev.dur));
        break;
      case 'b':
      case 'e':
        // Async spans need a category + id; scope ids per track so request
        // ids can never collide with rebuild-pass ids.
        w.Key("cat").Value(track_names_[static_cast<size_t>(ev.track)]);
        w.Key("id").Value(ev.id);
        break;
      case 'i':
        w.Key("s").Value("t");  // Thread-scoped instant.
        break;
      case 'C':
        break;
      default:
        break;
    }
    if (ev.phase == 'C') {
      w.Key("args").BeginObject().Key("value").Value(ev.value).EndObject();
    } else if (!ev.args_json.empty()) {
      w.Key("args").Raw(ev.args_json);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

}  // namespace afraid
