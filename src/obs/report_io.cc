#include "obs/report_io.h"

#include <cmath>
#include <cstdio>

#include "avail/model.h"

namespace afraid {
namespace {

std::string FormatDouble(double d) {
  if (std::isnan(d)) {
    return "nan";
  }
  if (std::isinf(d)) {
    return d > 0 ? "inf" : "-inf";
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

// One field walk drives both serializations so they cannot diverge.
template <typename StringFn, typename UintFn, typename IntFn, typename DoubleFn>
void ForEachField(const SimReport& rep, StringFn on_string, UintFn on_uint,
                  IntFn on_int, DoubleFn on_double) {
  on_string("workload", rep.workload);
  on_string("policy", rep.policy);
  on_uint("requests", rep.requests);
  on_uint("reads", rep.reads);
  on_uint("writes", rep.writes);
  on_double("mean_io_ms", rep.mean_io_ms);
  on_double("mean_read_ms", rep.mean_read_ms);
  on_double("mean_write_ms", rep.mean_write_ms);
  on_double("median_io_ms", rep.median_io_ms);
  on_double("p95_io_ms", rep.p95_io_ms);
  on_double("max_io_ms", rep.max_io_ms);
  on_double("duration_s", rep.duration_s);
  on_double("idle_fraction", rep.idle_fraction);
  on_double("mean_queue_depth", rep.mean_queue_depth);
  on_double("mean_parity_lag_bytes", rep.mean_parity_lag_bytes);
  on_double("t_unprot_fraction", rep.t_unprot_fraction);
  on_int("max_dirty_stripes", rep.max_dirty_stripes);
  on_uint("stripes_rebuilt", rep.stripes_rebuilt);
  on_uint("rebuild_passes", rep.rebuild_passes);
  on_uint("afraid_mode_writes", rep.afraid_mode_writes);
  on_uint("raid5_mode_writes", rep.raid5_mode_writes);
  on_uint("disk_ops_total", rep.disk_ops_total);
  on_uint("disk_ops_rebuild", rep.disk_ops_rebuild);
  on_uint("disk_ops_parity", rep.disk_ops_parity);
  on_uint("cache_hits", rep.cache_hits);
  on_double("disk_utilization", rep.disk_utilization);
  on_string("avail_scheme", SchemeName(rep.avail.scheme));
  on_double("mttdl_disk_hours", rep.avail.mttdl_disk_hours);
  on_double("mttdl_overall_hours", rep.avail.mttdl_overall_hours);
  on_double("mdlr_disk_bph", rep.avail.mdlr_disk_bph);
  on_double("mdlr_overall_bph", rep.avail.mdlr_overall_bph);
}

}  // namespace

void AppendSimReportJson(JsonWriter& w, const SimReport& rep) {
  w.BeginObject();
  ForEachField(
      rep,
      [&](const char* name, const std::string& v) { w.Key(name).Value(v); },
      [&](const char* name, uint64_t v) { w.Key(name).Value(v); },
      [&](const char* name, int64_t v) { w.Key(name).Value(v); },
      [&](const char* name, double v) { w.Key(name).Value(v); });
  w.EndObject();
}

std::string SimReportToJson(const SimReport& rep) {
  JsonWriter w;
  AppendSimReportJson(w, rep);
  return std::move(w).Take();
}

std::string SimReportCsvHeader() {
  std::string out;
  SimReport dummy;
  ForEachField(
      dummy,
      [&](const char* name, const std::string&) { out += name; out += ','; },
      [&](const char* name, uint64_t) { out += name; out += ','; },
      [&](const char* name, int64_t) { out += name; out += ','; },
      [&](const char* name, double) { out += name; out += ','; });
  if (!out.empty()) {
    out.pop_back();
  }
  return out;
}

std::string SimReportCsvRow(const SimReport& rep) {
  std::string out;
  ForEachField(
      rep,
      [&](const char*, const std::string& v) { out += v; out += ','; },
      [&](const char*, uint64_t v) { out += std::to_string(v); out += ','; },
      [&](const char*, int64_t v) { out += std::to_string(v); out += ','; },
      [&](const char*, double v) { out += FormatDouble(v); out += ','; });
  if (!out.empty()) {
    out.pop_back();
  }
  return out;
}

}  // namespace afraid
