#include "obs/json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace afraid {

// --- Writer -------------------------------------------------------------------

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // Value completing a "key": pair; no comma.
  }
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ += ',';
    }
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!first_.empty());
  first_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!first_.empty());
  first_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  assert(!pending_key_);
  MaybeComma();
  out_ += JsonEscape(key);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view s) {
  MaybeComma();
  out_ += JsonEscape(s);
  return *this;
}

JsonWriter& JsonWriter::Value(double d) {
  MaybeComma();
  if (std::isnan(d)) {
    out_ += "NaN";
  } else if (std::isinf(d)) {
    out_ += d > 0 ? "Infinity" : "-Infinity";
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out_ += buf;
  }
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t i) {
  MaybeComma();
  out_ += std::to_string(i);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t u) {
  MaybeComma();
  out_ += std::to_string(u);
  return *this;
}

JsonWriter& JsonWriter::Value(bool b) {
  MaybeComma();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  MaybeComma();
  out_ += json;
  return *this;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// --- Reader -------------------------------------------------------------------

const JsonValue* JsonValue::Get(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

double JsonValue::GetNumber(std::string_view key, double fallback) const {
  const JsonValue* v = Get(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : fallback;
}

std::string JsonValue::GetString(std::string_view key, std::string fallback) const {
  const JsonValue* v = Get(key);
  return v != nullptr && v->is_string() ? v->AsString() : std::move(fallback);
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipWs();
    if (!ParseValue(out)) {
      if (error != nullptr) {
        *error = error_ + " at offset " + std::to_string(pos_);
      }
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing data at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  bool Fail(const char* why) {
    if (error_.empty()) {
      error_ = why;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return Literal("true") || Fail("bad literal");
      case 'f':
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return Literal("false") || Fail("bad literal");
      case 'n':
        out->type_ = JsonValue::Type::kNull;
        return Literal("null") || Fail("bad literal");
      case 'N':
        out->type_ = JsonValue::Type::kNumber;
        out->number_ = std::nan("");
        return Literal("NaN") || Fail("bad literal");
      case 'I':
        out->type_ = JsonValue::Type::kNumber;
        out->number_ = HUGE_VAL;
        return Literal("Infinity") || Fail("bad literal");
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type_ = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWs();
      JsonValue child;
      if (!ParseValue(&child)) {
        return false;
      }
      out->members_.emplace_back(std::move(key), std::move(child));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type_ = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      JsonValue child;
      if (!ParseValue(&child)) {
        return false;
      }
      out->items_.push_back(std::move(child));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("bad \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // by our artifacts; encode them as-is).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    out->type_ = JsonValue::Type::kNumber;
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
      if (Literal("Infinity")) {
        out->number_ = text_[start] == '-' ? -HUGE_VAL : HUGE_VAL;
        return true;
      }
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->number_ = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Fail("malformed number");
    }
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  return JsonParser(text).Parse(out, error);
}

}  // namespace afraid
