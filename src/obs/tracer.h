// Chrome Trace Event Format emitter.
//
// Components push events through Probe handles (obs/probe.h); the tracer
// buffers them in memory and serializes the whole run to the JSON object
// format ({"traceEvents": [...]}) that chrome://tracing and Perfetto load
// directly. One simulated run maps onto one trace "process"; every modelled
// component (host driver, controller, each disk, the rebuild engine, the
// fault injector) gets its own named track (a trace "thread").
//
// Event phases used:
//   X  complete span (ts + dur)        -- disk ops, rebuild band steps.
//   b/e async span (id-matched)        -- client requests (they overlap
//                                         arbitrarily, so they cannot nest on
//                                         a synchronous track), rebuild
//                                         passes, recovery sweeps.
//   i  instant                          -- mode flips, injected faults,
//                                         data-loss incidents.
//   C  counter                          -- queue depths, parity-lag bytes.
//
// Timestamps are simulated time converted to microseconds (the format's
// unit). All spans are emitted at completion time, so per-track X events are
// appended in completion order (the invariant tests/obs/ asserts). Viewers
// re-sort by start time when rendering.

#ifndef AFRAID_OBS_TRACER_H_
#define AFRAID_OBS_TRACER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace afraid {

struct TraceEvent {
  char phase = 'X';       // X, b, e, i, C.
  int32_t track = 0;      // tid.
  std::string name;
  SimTime ts = 0;         // Nanoseconds (converted to us on serialization).
  SimDuration dur = 0;    // X only.
  uint64_t id = 0;        // b/e only.
  double value = 0.0;     // C only.
  std::string args_json;  // Optional pre-serialized args object ("{...}").
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Registers a named track; returns its tid. Emitted as thread_name
  // metadata so viewers show the name instead of a bare number.
  int32_t AddTrack(const std::string& name);

  void Complete(int32_t track, std::string name, SimTime start, SimTime end,
                std::string args_json = {});
  void AsyncBegin(int32_t track, std::string name, uint64_t id, SimTime ts,
                  std::string args_json = {});
  void AsyncEnd(int32_t track, std::string name, uint64_t id, SimTime ts);
  void Instant(int32_t track, std::string name, SimTime ts);
  void Counter(int32_t track, std::string name, SimTime ts, double value);

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<std::string>& tracks() const { return track_names_; }
  size_t NumEvents() const { return events_.size(); }

  // Serializes to the Chrome Trace Event Format JSON object form.
  std::string ToJson() const;

 private:
  std::vector<std::string> track_names_;
  std::vector<TraceEvent> events_;
};

}  // namespace afraid

#endif  // AFRAID_OBS_TRACER_H_
