// The single SimReport serializer: JSON and CSV forms of a run's results.
//
// Every machine-readable report in the repository goes through these two
// functions -- the RunArtifacts writer (report.json), the bench harnesses'
// AFRAID_BENCH_OUT emitters, and any future exporter -- so field names and
// ordering can never drift between outputs.

#ifndef AFRAID_OBS_REPORT_IO_H_
#define AFRAID_OBS_REPORT_IO_H_

#include <string>
#include <vector>

#include "core/report.h"
#include "obs/json.h"

namespace afraid {

// Appends the report as a JSON object to an in-flight writer (for embedding
// in larger documents, e.g. a bench's array of rows).
void AppendSimReportJson(JsonWriter& w, const SimReport& rep);

// The report as a standalone JSON object.
std::string SimReportToJson(const SimReport& rep);

// CSV: a fixed header and matching row. Field order matches the JSON.
std::string SimReportCsvHeader();
std::string SimReportCsvRow(const SimReport& rep);

}  // namespace afraid

#endif  // AFRAID_OBS_REPORT_IO_H_
