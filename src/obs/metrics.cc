#include "obs/metrics.h"

#include <cassert>
#include <utility>

#include "obs/json.h"

namespace afraid {

MetricId MetricsRegistry::AddScalar(std::string name, bool counter) {
  assert(rows_.empty() && "register all metrics before the first snapshot");
  names_.push_back(std::move(name));
  is_counter_.push_back(counter);
  values_.push_back(0.0);
  return names_.size() - 1;
}

Histogram* MetricsRegistry::AddHistogram(std::string name, double lo,
                                         double bucket_width, size_t num_buckets) {
  histograms_.push_back(
      {std::move(name), std::make_unique<Histogram>(lo, bucket_width, num_buckets)});
  return histograms_.back().histogram.get();
}

void MetricsRegistry::AddSampler(std::function<void(SimTime)> sampler) {
  samplers_.push_back(std::move(sampler));
}

void MetricsRegistry::Snapshot(SimTime now) {
  assert(rows_.empty() || now >= rows_.back().time);
  for (const auto& sampler : samplers_) {
    sampler(now);
  }
  rows_.push_back({now, values_});
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  for (const NamedHistogram& h : histograms_) {
    if (h.name == name) {
      return h.histogram.get();
    }
  }
  return nullptr;
}

std::string MetricsRegistry::ToJsonLines() const {
  std::string out;
  {
    JsonWriter w;
    w.BeginObject();
    w.Key("type").Value("schema");
    w.Key("metrics").BeginArray();
    for (size_t i = 0; i < names_.size(); ++i) {
      w.BeginObject();
      w.Key("name").Value(names_[i]);
      w.Key("kind").Value(is_counter_[i] ? "counter" : "gauge");
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    out += std::move(w).Take();
    out += '\n';
  }
  for (const SnapshotRow& row : rows_) {
    JsonWriter w;
    w.BeginObject();
    w.Key("type").Value("snapshot");
    w.Key("t_s").Value(ToSeconds(row.time));
    w.Key("values").BeginArray();
    for (double v : row.values) {
      w.Value(v);
    }
    w.EndArray();
    w.EndObject();
    out += std::move(w).Take();
    out += '\n';
  }
  for (const NamedHistogram& h : histograms_) {
    const Histogram& hist = *h.histogram;
    JsonWriter w;
    w.BeginObject();
    w.Key("type").Value("histogram");
    w.Key("name").Value(h.name);
    w.Key("lo").Value(hist.BucketLow(0));
    w.Key("bucket_width").Value(hist.BucketLow(1) - hist.BucketLow(0));
    w.Key("counts").BeginArray();
    for (uint64_t c : hist.Counts()) {
      w.Value(c);
    }
    w.EndArray();
    w.Key("underflow").Value(hist.Underflow());
    w.Key("overflow").Value(hist.Overflow());
    w.Key("total").Value(hist.Total());
    w.EndObject();
    out += std::move(w).Take();
    out += '\n';
  }
  return out;
}

}  // namespace afraid
