// The instrumentation handle threaded through the simulated components.
//
// A Probe is a pointer-sized value type: a Tracer pointer plus a default
// track id. Default-constructed probes are *null* -- every emit helper is an
// inline early-return on the null check, so instrumented code paths cost one
// predictable branch when observability is off and components need no #ifdef
// seams. Construction of event payloads (name strings, args JSON) happens
// only behind the null check; callers that must do work *before* the call
// (formatting args, capturing timestamps in lambdas) should guard it with
// `if (probe) { ... }` themselves.
//
// Components receive a Probe at construction (defaulted, so existing call
// sites are untouched) and register their own named tracks via AddTrack.

#ifndef AFRAID_OBS_PROBE_H_
#define AFRAID_OBS_PROBE_H_

#include <cstdint>
#include <string>
#include <utility>

#include "obs/tracer.h"
#include "sim/time.h"

namespace afraid {

class Probe {
 public:
  constexpr Probe() = default;
  explicit constexpr Probe(Tracer* tracer, int32_t track = 0)
      : tracer_(tracer), track_(track) {}

  explicit operator bool() const { return tracer_ != nullptr; }
  Tracer* tracer() const { return tracer_; }
  int32_t track() const { return track_; }

  // A probe on the same tracer with a different default track.
  Probe WithTrack(int32_t track) const { return Probe(tracer_, track); }

  // Registers a named track; returns a probe bound to it. On a null probe
  // this is a no-op returning another null probe, so components can
  // unconditionally set up their tracks.
  Probe NewTrack(const std::string& name) const {
    if (tracer_ == nullptr) {
      return Probe();
    }
    return Probe(tracer_, tracer_->AddTrack(name));
  }

  // --- Emit helpers (no-ops when null) ---------------------------------------

  void Complete(std::string name, SimTime start, SimTime end,
                std::string args_json = {}) const {
    if (tracer_ == nullptr) {
      return;
    }
    tracer_->Complete(track_, std::move(name), start, end, std::move(args_json));
  }

  void AsyncBegin(std::string name, uint64_t id, SimTime ts,
                  std::string args_json = {}) const {
    if (tracer_ == nullptr) {
      return;
    }
    tracer_->AsyncBegin(track_, std::move(name), id, ts, std::move(args_json));
  }

  void AsyncEnd(std::string name, uint64_t id, SimTime ts) const {
    if (tracer_ == nullptr) {
      return;
    }
    tracer_->AsyncEnd(track_, std::move(name), id, ts);
  }

  void Instant(std::string name, SimTime ts) const {
    if (tracer_ == nullptr) {
      return;
    }
    tracer_->Instant(track_, std::move(name), ts);
  }

  void Counter(std::string name, SimTime ts, double value) const {
    if (tracer_ == nullptr) {
      return;
    }
    tracer_->Counter(track_, std::move(name), ts, value);
  }

 private:
  Tracer* tracer_ = nullptr;
  int32_t track_ = 0;
};

}  // namespace afraid

#endif  // AFRAID_OBS_PROBE_H_
