// The metrics registry: named counters, gauges and histograms with periodic
// simulated-time snapshots.
//
// Scalar metrics (counters and gauges) live in one flat slot array; a
// snapshot first runs every registered sampler (a pull hook that reads live
// component state -- per-disk utilization, queue depths, dirty-stripe count,
// parity-lag bytes -- into its gauges) and then records one row of all slot
// values at the given simulated time. The experiment runner takes snapshots
// *between* simulation events, so sampling can never perturb the simulated
// trajectory: a run with metrics enabled executes the exact same event
// sequence as one without.
//
// Serialization (ToJsonLines) is JSONL, one self-describing record per line:
//   {"type":"schema","metrics":[{"name":...,"kind":"counter"|"gauge"},...]}
//   {"type":"snapshot","t_s":<seconds>,"values":[...]}   (one per snapshot)
//   {"type":"histogram","name":...,"lo":...,"bucket_width":...,
//    "counts":[...],"underflow":N,"overflow":N,"total":N}

#ifndef AFRAID_OBS_METRICS_H_
#define AFRAID_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.h"
#include "stats/histogram.h"

namespace afraid {

using MetricId = size_t;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration. Names should be unique; duplicates are kept verbatim
  // (consumers key rows by position, not name).
  MetricId AddCounter(std::string name) { return AddScalar(std::move(name), true); }
  MetricId AddGauge(std::string name) { return AddScalar(std::move(name), false); }
  Histogram* AddHistogram(std::string name, double lo, double bucket_width,
                          size_t num_buckets);

  // Scalar updates (cheap stores; safe on any simulation hot path).
  void Set(MetricId id, double value) { values_[id] = value; }
  void Inc(MetricId id, double delta = 1.0) { values_[id] += delta; }
  double Value(MetricId id) const { return values_[id]; }

  // Pull hooks run at the start of every Snapshot(), in registration order.
  void AddSampler(std::function<void(SimTime)> sampler);

  // Runs the samplers, then appends one row of all scalar values at `now`.
  // `now` must be monotonically non-decreasing across calls.
  void Snapshot(SimTime now);

  struct SnapshotRow {
    SimTime time = 0;
    std::vector<double> values;
  };

  size_t NumScalars() const { return names_.size(); }
  size_t NumSnapshots() const { return rows_.size(); }
  const std::vector<std::string>& names() const { return names_; }
  const std::vector<SnapshotRow>& rows() const { return rows_; }
  const Histogram* FindHistogram(const std::string& name) const;

  std::string ToJsonLines() const;

 private:
  MetricId AddScalar(std::string name, bool counter);

  std::vector<std::string> names_;
  std::vector<bool> is_counter_;
  std::vector<double> values_;
  std::vector<std::function<void(SimTime)>> samplers_;
  std::vector<SnapshotRow> rows_;

  struct NamedHistogram {
    std::string name;
    std::unique_ptr<Histogram> histogram;
  };
  std::vector<NamedHistogram> histograms_;
};

}  // namespace afraid

#endif  // AFRAID_OBS_METRICS_H_
