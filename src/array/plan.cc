#include "array/plan.h"

namespace afraid {

RequestPlan::RequestPlan(const Trace& trace, const StripeLayout& layout) {
  records_.reserve(trace.records.size());
  // Lower bound: one segment per record; multi-unit requests add more as
  // they are resolved.
  segments_.reserve(trace.records.size());
  std::vector<Segment> scratch;
  for (const TraceRecord& t : trace.records) {
    PlanRecord r;
    r.time = t.time;
    r.offset = t.offset;
    r.size = t.size;
    r.is_write = t.is_write;
    layout.SplitInto(t.offset, t.size, &scratch);
    r.seg_begin = static_cast<uint32_t>(segments_.size());
    r.seg_count = static_cast<uint32_t>(scratch.size());
    const Segment& first = scratch.front();
    r.stripe = first.stripe;
    r.block_in_stripe = first.block_in_stripe;
    r.disk = layout.DataDisk(first.stripe, first.block_in_stripe);
    r.disk_offset =
        first.stripe * layout.stripe_unit() + first.offset_in_block;
    segments_.insert(segments_.end(), scratch.begin(), scratch.end());
    records_.push_back(r);
  }
}

}  // namespace afraid
