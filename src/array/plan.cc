#include "array/plan.h"

namespace afraid {

void RequestPlan::Compile(const TraceRecord* records, size_t count,
                          const ArrayLayout& layout) {
  records_.clear();
  segments_.clear();
  records_.reserve(count);
  // Lower bound: one segment per record; multi-unit requests add more as
  // they are resolved.
  segments_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const TraceRecord& t = records[i];
    PlanRecord r;
    r.time = t.time;
    r.offset = t.offset;
    r.size = t.size;
    r.is_write = t.is_write;
    layout.SplitInto(t.offset, t.size, &scratch_);
    r.seg_begin = static_cast<uint32_t>(segments_.size());
    r.seg_count = static_cast<uint32_t>(scratch_.size());
    const Segment& first = scratch_.front();
    r.stripe = first.stripe;
    r.block_in_stripe = first.block_in_stripe;
    const BlockLoc loc = layout.DataLocation(first.stripe, first.block_in_stripe);
    r.disk = loc.disk;
    r.disk_offset = loc.byte_offset + first.offset_in_block;
    segments_.insert(segments_.end(), scratch_.begin(), scratch_.end());
    records_.push_back(r);
  }
}

}  // namespace afraid
