// The common lifecycle interface every array organization implements.
//
// An ArrayScheme is an ArrayController (it serves client requests) plus the
// management surface the rest of the system drives uniformly: single-disk
// failure injection, replacement and reconstruction, an optional NVRAM
// marking-memory loss drill, a degraded/rebuild state snapshot, a flat
// statistics block, and the data-loss observer hook. Experiment, the fleet
// volume manager, faultsim and the bench grids all construct schemes through
// the registry (src/core/scheme_registry.h) and talk only to this interface;
// no caller switches on the concrete controller type.
//
// Management calls return bool rather than asserting: `false` means the
// operation is refused in the current state (disk index out of range, no
// failure outstanding, capability not implemented) and the array state is
// unchanged. The fleet layer counts refusals per operation kind instead of
// crashing a shard on a mistimed management op.

#ifndef AFRAID_ARRAY_SCHEME_H_
#define AFRAID_ARRAY_SCHEME_H_

#include <cstdint>
#include <functional>
#include <string>

#include "array/controller.h"
#include "array/layout.h"
#include "sim/time.h"

namespace afraid {

class ContentModel;
class DiskModel;

// Why data was lost (Section 3.2's small-loss modes, as the controllers'
// failure machinery actually encounters them).
enum class LossCause : int32_t {
  // A degraded read reconstructed a range whose redundancy was stale when
  // the disk died: the bytes returned are not what the client wrote.
  kStaleParityDegradedRead = 0,
  // The replacement-disk sweep rebuilt a data block from stale redundancy:
  // the stale bands of that block are unrecoverable.
  kStaleParityReconstruction,
};

// One data-loss incident, as observed by a scheme's failure machinery.
// The Monte-Carlo fault-injection campaign (src/faultsim/) and the failure
// drill example consume these instead of re-deriving loss from counters.
struct LossEvent {
  SimTime time = 0;
  LossCause cause = LossCause::kStaleParityDegradedRead;
  int64_t stripe = -1;
  int64_t bytes = 0;
};

const char* LossCauseName(LossCause cause);

// Observer of data-loss incidents. At most one listener; pass nullptr to
// clear. Listeners fire synchronously from the simulation event that detects
// the loss, after the scheme's counters have been updated.
using LossListener = std::function<void(const LossEvent&)>;

// Instantaneous degraded/rebuild state, cheap enough to sample per metrics
// snapshot (plain loads, no allocation).
struct SchemeState {
  int32_t failed_disk = -1;       // -1 = all disks healthy.
  int32_t recovering_disk = -1;   // Replacement installed, sweep not finished.
  bool reconstruction_active = false;
  bool rebuild_active = false;    // Background redundancy-freshening pass.
  // Scheme-specific stale-redundancy marks currently outstanding (NVRAM
  // dirty bands for AFRAID, stale P+Q stripes for deferred RAID 6, buffered
  // parity-update images for the parity log, 0 for always-sync schemes).
  int64_t dirty_marks = 0;
  double parity_lag_bytes = 0.0;  // Bytes of data not currently redundant.
  bool last_write_raid5 = false;  // Mode gauge for deferred-parity schemes.
  uint64_t loss_events = 0;
  int64_t bytes_lost = 0;
};

// Whole-run statistics block: every field the report harvest and the fleet
// shard reports consume. Schemes fill what applies and leave the rest zero.
struct SchemeStats {
  double mean_parity_lag_bytes = 0.0;
  double t_unprot_fraction = 0.0;
  int64_t max_dirty_stripes = 0;
  uint64_t stripes_rebuilt = 0;
  uint64_t rebuild_passes = 0;
  uint64_t afraid_mode_writes = 0;
  uint64_t raid5_mode_writes = 0;
  uint64_t disk_ops_total = 0;
  uint64_t disk_ops_rebuild = 0;
  uint64_t disk_ops_parity = 0;
  uint64_t cache_hits = 0;
  double idle_fraction = 0.0;
  uint64_t loss_events = 0;
  int64_t bytes_lost = 0;
};

class ArrayScheme : public ArrayController {
 public:
  // The registry name this instance was constructed under ("afraid",
  // "raid6-deferQ", "mirror", ...).
  virtual const char* SchemeName() const = 0;
  // The per-run label reports print in their policy column (the parity
  // policy's name for AFRAID, the mode/scheme label otherwise).
  virtual std::string PolicyLabel() const = 0;

  // The logical-to-physical layout client offsets are resolved through.
  // Request plans must be compiled against this exact layout.
  virtual const ArrayLayout& layout() const = 0;
  virtual int32_t num_disks() const = 0;
  virtual DiskModel& disk(int32_t d) = 0;
  // Functional content tracking, if enabled; nullptr otherwise.
  virtual const ContentModel* content() const { return nullptr; }

  // --- Management -------------------------------------------------------------
  // Fails one disk (at most one failure is tolerated at a time).
  virtual bool FailDisk(int32_t disk) = 0;
  // Installs a blank replacement for the previously failed disk.
  virtual bool ReplaceDisk(int32_t disk) = 0;
  // Rebuilds the replaced disk's contents stripe by stripe, concurrent with
  // client I/O; `done` fires when the array is fully redundant again.
  virtual bool StartReconstruction(std::function<void()> done) = 0;
  // NVRAM marking-memory loss + conservative whole-array scrub. Only
  // meaningful for schemes that keep deferred-redundancy marks.
  virtual bool FailNvram() { return false; }
  virtual bool StartFullScrub(std::function<void()> done) {
    (void)done;
    return false;
  }

  // --- Introspection ----------------------------------------------------------
  virtual SchemeState State() const = 0;
  virtual SchemeStats Stats() const = 0;
  virtual void SetLossListener(LossListener listener) { (void)listener; }
};

}  // namespace afraid

#endif  // AFRAID_ARRAY_SCHEME_H_
