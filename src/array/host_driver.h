// The host device driver: request queueing, CLOOK dispatch, and the latency
// clock the experiments report.
//
// Matching Section 4.1 of the paper:
//   * "We limited the number of concurrently active client requests inside
//     the array to the number of physical disks it had";
//   * "the host device driver used the clook policy [Worthington94a]";
//   * "The I/O times we report ... start when a request is given to the
//     device driver, and stop when the request is completed by the array.
//     They include both the time spent in the array itself and any time
//     spent queued in the device driver."
//
// CLOOK (circular LOOK): dispatch the queued request with the smallest
// starting offset at or beyond the last dispatched offset; when none
// remains, wrap to the smallest offset overall.

#ifndef AFRAID_ARRAY_HOST_DRIVER_H_
#define AFRAID_ARRAY_HOST_DRIVER_H_

#include <cstdint>
#include <functional>
#include <map>

#include "array/controller.h"
#include "array/request.h"
#include "obs/probe.h"
#include "sim/arena.h"
#include "sim/simulator.h"
#include "stats/sample_set.h"
#include "stats/time_weighted.h"

namespace afraid {

// Queueing discipline for requests waiting in the driver.
enum class HostSched {
  kClook,  // The paper's choice [Worthington94a].
  kFcfs,   // Arrival order; baseline for the scheduler ablation.
};

class HostDriver {
 public:
  // `max_active` <= 0 means "unlimited". A non-null `probe` makes the driver
  // open a "driver" trace track carrying one async span per client request
  // (arrival -> completion) and an occupancy counter timeline.
  HostDriver(Simulator* sim, ArrayController* array, int32_t max_active,
             HostSched sched = HostSched::kClook, Probe probe = {});
  HostDriver(const HostDriver&) = delete;
  HostDriver& operator=(const HostDriver&) = delete;

  // Accepts a request at the current simulated time (its arrival).
  // The id field is assigned by the driver.
  void Submit(int64_t offset, int32_t size, bool is_write);

  // Planned variant: same acceptance semantics, but the request carries its
  // precompiled segments (`segs`/`seg_count`, owned by a RequestPlan that
  // outlives the run) so the controller skips the per-request SplitInto.
  void SubmitPlanned(int64_t offset, int32_t size, bool is_write,
                     const Segment* segs, int32_t seg_count);

  // Number of requests accepted / completed so far.
  uint64_t Accepted() const { return accepted_; }
  uint64_t Completed() const { return completed_; }
  bool Drained() const { return accepted_ == completed_; }

  // Latency distributions in milliseconds (arrival -> completion).
  SampleSet& AllLatencies() { return all_ms_; }
  SampleSet& ReadLatencies() { return read_ms_; }
  SampleSet& WriteLatencies() { return write_ms_; }

  // Time-weighted number of requests in the driver (queued + active).
  const TimeWeightedValue& Occupancy() const { return occupancy_; }

  // Pre-sizes the latency sample vectors for `n` expected requests, so a
  // measured steady state never reallocates them (allocation-free path).
  void ReserveLatencySamples(size_t n) {
    all_ms_.Reserve(n);
    read_ms_.Reserve(n);
    write_ms_.Reserve(n);
  }

  // Per-request completion hook: fires after the latency samples are
  // recorded, with the driver-assigned id (1-based, in submission order)
  // and the measured arrival->completion latency. The fleet layer uses it
  // to join split requests across shards; null (the default) costs nothing.
  using CompletionListener = std::function<void(uint64_t id, double ms, bool is_write)>;
  void SetCompletionListener(CompletionListener listener) {
    completion_listener_ = std::move(listener);
  }

 private:
  void TryDispatch();
  void OnComplete(uint64_t id, bool is_write, SimTime arrival);

  Simulator* sim_;
  ArrayController* array_;
  int32_t max_active_;
  HostSched sched_;
  Probe probe_;  // Bound to the driver's own track when tracing.

  // Queued (not yet dispatched) requests. For CLOOK the key is the starting
  // offset; for FCFS it is the arrival sequence number. multimap: several
  // queued requests may share a key. Tree nodes come from the recycling
  // NodePool, so a bounded queue population stops allocating after warm-up.
  NodePool queue_nodes_;
  std::multimap<int64_t, ClientRequest, std::less<int64_t>,
                PoolAllocator<std::pair<const int64_t, ClientRequest>>>
      queue_;
  int64_t sweep_offset_ = 0;  // CLOOK arm position.
  int32_t active_ = 0;

  uint64_t next_id_ = 1;
  uint64_t accepted_ = 0;
  uint64_t completed_ = 0;
  SampleSet all_ms_;
  SampleSet read_ms_;
  SampleSet write_ms_;
  TimeWeightedValue occupancy_;
  CompletionListener completion_listener_;
};

}  // namespace afraid

#endif  // AFRAID_ARRAY_HOST_DRIVER_H_
