#include "array/stripe_lock.h"

#include <utility>

namespace afraid {

StripeLockTable::State* StripeLockTable::AcquireState() {
  if (state_free_.empty()) {
    state_storage_.push_back(std::make_unique<State>());
    state_free_.push_back(state_storage_.back().get());
  }
  State* st = state_free_.back();
  state_free_.pop_back();
  assert(st->shared_held == 0 && !st->exclusive_held && st->waiters.empty());
  return st;
}

void StripeLockTable::Acquire(int64_t stripe, LockMode mode, Grant granted) {
  auto it = stripes_.find(stripe);
  if (it == stripes_.end()) {
    it = stripes_.emplace(stripe, AcquireState()).first;
  }
  State& st = *it->second;
  const bool free_for_shared =
      !st.exclusive_held && st.waiters.empty() && mode == LockMode::kShared;
  const bool free_for_exclusive = !st.exclusive_held && st.shared_held == 0 &&
                                  st.waiters.empty() && mode == LockMode::kExclusive;
  if (free_for_shared) {
    ++st.shared_held;
    granted();
    return;
  }
  if (free_for_exclusive) {
    st.exclusive_held = true;
    granted();
    return;
  }
  st.waiters.push_back(Waiter{mode, std::move(granted)});
}

void StripeLockTable::Release(int64_t stripe, LockMode mode) {
  auto it = stripes_.find(stripe);
  assert(it != stripes_.end());
  State* st = it->second;
  if (mode == LockMode::kShared) {
    assert(st->shared_held > 0);
    --st->shared_held;
  } else {
    assert(st->exclusive_held);
    st->exclusive_held = false;
  }
  Pump(stripe, st);
}

void StripeLockTable::Pump(int64_t stripe, State* st) {
  // Collect the grants to run *after* mutating state: a grant callback may
  // re-enter Acquire/Release on this same stripe. The scratch vector is
  // shared across nested Pumps stack-wise, so steady state never allocates.
  const size_t base = pump_run_.size();
  while (!st->waiters.empty()) {
    Waiter& w = st->waiters.front();
    if (w.mode == LockMode::kShared) {
      if (st->exclusive_held) {
        break;
      }
      ++st->shared_held;
      pump_run_.push_back(std::move(w.granted));
      st->waiters.pop_front();
    } else {
      if (st->exclusive_held || st->shared_held > 0) {
        break;
      }
      st->exclusive_held = true;
      pump_run_.push_back(std::move(w.granted));
      st->waiters.pop_front();
      break;  // Exclusive admits exactly one.
    }
  }
  if (st->shared_held == 0 && !st->exclusive_held && st->waiters.empty()) {
    stripes_.erase(stripe);
    state_free_.push_back(st);
  }
  const size_t admitted = pump_run_.size() - base;
  for (size_t i = 0; i < admitted; ++i) {
    // Move out before invoking: a re-entrant Pump may push into (and grow)
    // pump_run_ while this grant runs.
    Grant g = std::move(pump_run_[base + i]);
    g();
  }
  pump_run_.resize(base);
}

}  // namespace afraid
