#include "array/stripe_lock.h"

#include <utility>
#include <vector>

namespace afraid {

void StripeLockTable::Acquire(int64_t stripe, LockMode mode, Grant granted) {
  State& st = stripes_[stripe];
  const bool free_for_shared =
      !st.exclusive_held && st.waiters.empty() && mode == LockMode::kShared;
  const bool free_for_exclusive = !st.exclusive_held && st.shared_held == 0 &&
                                  st.waiters.empty() && mode == LockMode::kExclusive;
  if (free_for_shared) {
    ++st.shared_held;
    granted();
    return;
  }
  if (free_for_exclusive) {
    st.exclusive_held = true;
    granted();
    return;
  }
  st.waiters.push_back(Waiter{mode, std::move(granted)});
}

void StripeLockTable::Release(int64_t stripe, LockMode mode) {
  auto it = stripes_.find(stripe);
  assert(it != stripes_.end());
  State& st = it->second;
  if (mode == LockMode::kShared) {
    assert(st.shared_held > 0);
    --st.shared_held;
  } else {
    assert(st.exclusive_held);
    st.exclusive_held = false;
  }
  Pump(stripe, st);
}

void StripeLockTable::Pump(int64_t stripe, State& st) {
  // Collect the grants to run *after* mutating state: a grant callback may
  // re-enter Acquire/Release on this same stripe.
  std::vector<Grant> to_run;
  while (!st.waiters.empty()) {
    Waiter& w = st.waiters.front();
    if (w.mode == LockMode::kShared) {
      if (st.exclusive_held) {
        break;
      }
      ++st.shared_held;
      to_run.push_back(std::move(w.granted));
      st.waiters.pop_front();
    } else {
      if (st.exclusive_held || st.shared_held > 0) {
        break;
      }
      st.exclusive_held = true;
      to_run.push_back(std::move(w.granted));
      st.waiters.pop_front();
      break;  // Exclusive admits exactly one.
    }
  }
  if (st.shared_held == 0 && !st.exclusive_held && st.waiters.empty()) {
    stripes_.erase(stripe);
  }
  for (Grant& g : to_run) {
    g();
  }
}

}  // namespace afraid
