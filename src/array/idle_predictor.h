// Adaptive idle-period prediction, after the ideas in [Golding95]
// ("Idleness is not sloth").
//
// The AFRAID paper triggers rebuilds with a plain 100 ms timer and notes
// that "the output from the idle-period predictor was ignored" in its
// baseline; this class provides the predictor for the adaptive
// configurations. It watches the lengths of past idle periods and predicts
// how long the current one will last; a rebuilder can then skip starting
// work in gaps predicted to be too short to fit even one stripe rebuild.
//
// Predictor: exponentially weighted moving average (EWMA) of past idle
// durations with an EWMA of the absolute deviation, conservatively
// discounted: predicted = max(0, mean - kDeviationWeight * deviation).

#ifndef AFRAID_ARRAY_IDLE_PREDICTOR_H_
#define AFRAID_ARRAY_IDLE_PREDICTOR_H_

#include <algorithm>
#include <cstdint>

#include "sim/time.h"

namespace afraid {

class IdlePredictor {
 public:
  // `alpha` is the EWMA smoothing weight for new observations.
  explicit IdlePredictor(double alpha = 0.25) : alpha_(alpha) {}

  // Feed one completed idle-period duration.
  void ObserveIdlePeriod(SimDuration duration) {
    const double x = static_cast<double>(duration);
    if (observations_ == 0) {
      mean_ = x;
      deviation_ = x / 2;
    } else {
      const double err = x - mean_;
      mean_ += alpha_ * err;
      deviation_ += alpha_ * ((err < 0 ? -err : err) - deviation_);
    }
    ++observations_;
  }

  // Conservative prediction of how long a just-started idle period will
  // last. Returns 0 until enough history exists. Idle-period populations
  // are heavy-tailed, so the deviation can exceed the mean; the prediction
  // is floored at a fraction of the mean rather than collapsing to zero.
  SimDuration PredictIdleDuration() const {
    if (observations_ < kMinObservations) {
      return 0;
    }
    const double predicted =
        std::max(kMeanFloor * mean_, mean_ - kDeviationWeight * deviation_);
    return static_cast<SimDuration>(predicted);
  }

  // Same, but after `already_idle` has elapsed in the current period: past
  // survival is weak evidence of more to come (idle periods are heavy-
  // tailed), so the remaining estimate never goes below a fraction of the
  // base prediction.
  SimDuration PredictRemaining(SimDuration already_idle) const {
    const SimDuration base = PredictIdleDuration();
    if (base <= 0) {
      return 0;
    }
    const SimDuration remaining = base - already_idle;
    const SimDuration floor = base / 4;
    return remaining > floor ? remaining : floor;
  }

  uint64_t Observations() const { return observations_; }
  double MeanIdleNs() const { return mean_; }

 private:
  static constexpr uint64_t kMinObservations = 4;
  static constexpr double kDeviationWeight = 0.5;
  static constexpr double kMeanFloor = 0.25;

  double alpha_;
  double mean_ = 0.0;
  double deviation_ = 0.0;
  uint64_t observations_ = 0;
};

}  // namespace afraid

#endif  // AFRAID_ARRAY_IDLE_PREDICTOR_H_
