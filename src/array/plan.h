// Precompiled request plans: the replay-time half of the compiled replay
// pipeline.
//
// Every trace record's layout mapping -- its Split() into stripe-unit
// segments, plus the (disk, physical offset) of its first unit -- depends
// only on the record and the array geometry, not on any simulated state. A
// RequestPlan therefore resolves the whole trace through the ArrayLayout once,
// at load time, into two flat POD arrays: one PlanRecord per trace record
// and one shared Segment pool the records' spans point into. Replay then
// walks the plan instead of re-deriving the mapping per request, and the
// controllers consume the precompiled segments via
// ClientRequest::plan_segs/plan_seg_count (see request.h) instead of calling
// SplitInto in the hot loop.
//
// The plan encodes the *same* mapping SplitInto produces (a pure
// precomputation; tests assert segment-for-segment equality), so a planned
// replay follows the bit-identical event trajectory of an unplanned one.

#ifndef AFRAID_ARRAY_PLAN_H_
#define AFRAID_ARRAY_PLAN_H_

#include <cstdint>
#include <vector>

#include "array/layout.h"
#include "sim/arena.h"
#include "sim/time.h"
#include "trace/trace.h"

namespace afraid {

// One trace record, pre-resolved through the layout. POD; lives in a flat
// array sized len(trace).
struct PlanRecord {
  SimTime time = 0;              // Arrival time (same as the trace record).
  int64_t offset = 0;            // Logical byte offset.
  int32_t size = 0;              // Bytes.
  bool is_write = false;
  int64_t stripe = 0;            // Stripe of the first touched unit.
  int32_t block_in_stripe = 0;   // Data-block index of the first unit.
  int32_t disk = 0;              // Disk holding that unit.
  int64_t disk_offset = 0;       // Physical byte offset of the first touched byte.
  uint32_t seg_begin = 0;        // First segment in the plan's segment pool.
  uint32_t seg_count = 0;        // Number of segments.
};

class RequestPlan {
 public:
  // An empty plan, to be filled by Compile(). The streaming pipeline keeps a
  // small ring of these and recompiles them in place, chunk after chunk.
  RequestPlan() = default;

  // Pre-resolves every record of `trace` against `layout`. The layout must
  // match the array the plan will replay against (same disks, stripe unit,
  // capacity, parity blocks).
  RequestPlan(const Trace& trace, const ArrayLayout& layout) {
    Compile(trace.records.data(), trace.records.size(), layout);
  }

  // Recompiles this plan over `records`, reusing the flat arrays' capacity.
  // Any Span previously returned by segments() is invalidated -- callers
  // (the slot ring) must not recompile a plan while replay still holds
  // segments into it.
  void Compile(const TraceRecord* records, size_t count,
               const ArrayLayout& layout);

  // Resident bytes of the flat arrays (capacity, not size): the streaming
  // pipeline's per-slot contribution to peak-memory accounting.
  size_t MemoryBytes() const {
    return records_.capacity() * sizeof(PlanRecord) +
           segments_.capacity() * sizeof(Segment) +
           scratch_.capacity() * sizeof(Segment);
  }

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const PlanRecord& record(size_t i) const { return records_[i]; }

  // The precompiled Split() of record i. Stable for the plan's lifetime, so
  // controllers can hold it across asynchronous continuations without
  // copying into pooled scratch.
  Span<Segment> segments(size_t i) const {
    const PlanRecord& r = records_[i];
    return Span<Segment>{segments_.data() + r.seg_begin,
                         static_cast<int32_t>(r.seg_count)};
  }

  size_t TotalSegments() const { return segments_.size(); }

 private:
  std::vector<PlanRecord> records_;
  std::vector<Segment> segments_;  // All records' segments, back to back.
  std::vector<Segment> scratch_;   // SplitInto scratch, reused per record.
};

}  // namespace afraid

#endif  // AFRAID_ARRAY_PLAN_H_
