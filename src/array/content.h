// Functional content tracking for integrity verification.
//
// Instead of storing real bytes, every 512-byte sector carries a 64-bit
// value; parity sectors hold the xor of the corresponding data sectors,
// exactly as real RAID 5 parity holds the xor of the data bytes (xor on
// tags commutes with xor on bytes, so all parity algebra -- read-modify-
// write deltas, reconstruct-writes, rebuilds, degraded reconstruction --
// is exact). Controllers mutate this model at the simulated instant the
// corresponding disk transfer completes, so tests can fail a disk at an
// arbitrary time and check precisely which data is recoverable.
//
// Storage is sparse per stripe: untouched stripes are implicitly all-zero,
// which is parity-consistent by construction (a freshly initialised array).
//
// Layout: a single open-addressed hash table maps stripe number to a slot in
// one contiguous value array. Each stripe's values are stored sector-major --
// all N+P block values for sector 0, then for sector 1, ... -- so XorOfData
// (the rebuild/degraded-read inner loop) reduces over a contiguous run of
// data values that the compiler can vectorise. A one-entry lookup cache
// short-circuits the probe for the per-transfer bursts of Get/Set the
// controllers issue against a single stripe.

#ifndef AFRAID_ARRAY_CONTENT_H_
#define AFRAID_ARRAY_CONTENT_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace afraid {

class ContentModel {
 public:
  // `data_blocks` = N; `parity_blocks` = 1 (RAID 5) or 2 (RAID 6);
  // `sectors_per_unit` = stripe_unit_bytes / sector_bytes.
  ContentModel(int32_t data_blocks, int32_t parity_blocks, int32_t sectors_per_unit)
      : n_(data_blocks),
        pb_(parity_blocks),
        spu_(sectors_per_unit),
        width_(data_blocks + parity_blocks),
        stride_(static_cast<size_t>(data_blocks + parity_blocks) *
                static_cast<size_t>(sectors_per_unit)),
        buckets_(kInitialBuckets, kEmptyBucket) {
    assert(n_ > 0 && pb_ >= 1 && spu_ > 0);
  }

  int32_t sectors_per_unit() const { return spu_; }

  // --- Physical (on-disk) state ---------------------------------------------

  uint64_t GetData(int64_t stripe, int32_t j, int32_t sector) const {
    assert(j >= 0 && j < n_);
    return Get(stripe, j, sector);
  }
  void SetData(int64_t stripe, int32_t j, int32_t sector, uint64_t v) {
    assert(j >= 0 && j < n_);
    Set(stripe, j, sector, v);
  }
  uint64_t GetParity(int64_t stripe, int32_t sector, int32_t which = 0) const {
    assert(which >= 0 && which < pb_);
    return Get(stripe, n_ + which, sector);
  }
  void SetParity(int64_t stripe, int32_t sector, uint64_t v, int32_t which = 0) {
    assert(which >= 0 && which < pb_);
    Set(stripe, n_ + which, sector, v);
  }

  // --- Parity algebra --------------------------------------------------------

  // Xor of all data blocks of the stripe at one sector position: what a full
  // parity rebuild computes, and what degraded-mode reconstruction recovers.
  // The reduction runs over `n_` contiguous values.
  uint64_t XorOfData(int64_t stripe, int32_t sector) const {
    assert(sector >= 0 && sector < spu_);
    const uint32_t slot = FindSlot(stripe);
    if (slot == kNoStripe) {
      return 0;
    }
    const uint64_t* row = RowPtr(slot, sector);
    uint64_t x = 0;
    for (int32_t j = 0; j < n_; ++j) {
      x ^= row[j];
    }
    return x;
  }

  // Word-batched variant: out[i] = XorOfData(stripe, first + i) for i in
  // [0, count). One slot lookup and one contiguous sweep over the stripe's
  // sector-major rows instead of a lookup + reduction call per sector --
  // the shape the parity rebuild and scrub paths consume.
  void XorOfDataRange(int64_t stripe, int32_t first, int32_t count,
                      uint64_t* out) const {
    assert(first >= 0 && count >= 0 && first + count <= spu_);
    const uint32_t slot = FindSlot(stripe);
    if (slot == kNoStripe) {
      for (int32_t i = 0; i < count; ++i) {
        out[i] = 0;
      }
      return;
    }
    const uint64_t* row = RowPtr(slot, first);
    for (int32_t i = 0; i < count; ++i, row += width_) {
      uint64_t x = 0;
      for (int32_t j = 0; j < n_; ++j) {
        x ^= row[j];
      }
      out[i] = x;
    }
  }

  // All sector positions of the stripe; `out` must hold sectors_per_unit()
  // values.
  void XorOfDataAll(int64_t stripe, uint64_t* out) const {
    XorOfDataRange(stripe, 0, spu_, out);
  }

  // Batch parity store: SetParity(stripe, first + i, vals[i], which) for i in
  // [0, count), with a single slot resolution.
  void SetParityRange(int64_t stripe, int32_t first, int32_t count,
                      const uint64_t* vals, int32_t which = 0) {
    assert(which >= 0 && which < pb_);
    assert(first >= 0 && count >= 0 && first + count <= spu_);
    if (count == 0) {
      return;
    }
    const uint32_t slot = FindOrInsertSlot(stripe);
    uint64_t* cell = values_.data() + ValueIndex(slot, n_ + which, first);
    for (int32_t i = 0; i < count; ++i, cell += width_) {
      *cell = vals[i];
    }
  }

  // Reconstruction of data block j from the other data blocks and P parity:
  // xor of everything except block j.
  uint64_t ReconstructData(int64_t stripe, int32_t j, int32_t sector) const {
    return XorOfData(stripe, sector) ^ GetData(stripe, j, sector) ^
           GetParity(stripe, sector);
  }

  // True iff P parity equals the xor of the data at every sector position.
  bool StripeConsistent(int64_t stripe) const {
    const uint32_t slot = FindSlot(stripe);
    if (slot == kNoStripe) {
      return true;  // Implicitly all-zero, hence consistent.
    }
    for (int32_t s = 0; s < spu_; ++s) {
      const uint64_t* row = RowPtr(slot, s);
      uint64_t x = 0;
      for (int32_t j = 0; j < n_; ++j) {
        x ^= row[j];
      }
      if (row[n_] != x) {
        return false;
      }
    }
    return true;
  }

  // Stripes that have ever been written (for whole-model consistency scans),
  // in first-touch order.
  std::vector<int64_t> TouchedStripes() const { return stripe_of_slot_; }

  // The unique value a client write `tag` deposits into logical sector
  // `logical_sector`. Tests recompute this to know what to expect.
  static uint64_t MixTag(uint64_t tag, int64_t logical_sector) {
    uint64_t x = tag * 0x9e3779b97f4a7c15ULL ^
                 static_cast<uint64_t>(logical_sector) * 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 31;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 29;
    // Avoid producing 0 so "never written" is distinguishable in practice.
    return x == 0 ? 1 : x;
  }

 private:
  static constexpr uint32_t kEmptyBucket = 0;   // Buckets hold slot index + 1.
  static constexpr uint32_t kNoStripe = 0xffffffffu;
  static constexpr size_t kInitialBuckets = 64;  // Power of two.

  static uint64_t HashStripe(int64_t stripe) {
    uint64_t z = static_cast<uint64_t>(stripe) + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  const uint64_t* RowPtr(uint32_t slot, int32_t sector) const {
    return values_.data() + static_cast<size_t>(slot) * stride_ +
           static_cast<size_t>(sector) * static_cast<size_t>(width_);
  }

  size_t ValueIndex(uint32_t slot, int32_t block, int32_t sector) const {
    return static_cast<size_t>(slot) * stride_ +
           static_cast<size_t>(sector) * static_cast<size_t>(width_) +
           static_cast<size_t>(block);
  }

  // Linear-probe lookup; kNoStripe if the stripe was never written.
  uint32_t FindSlot(int64_t stripe) const {
    if (cached_slot_ != kNoStripe && cached_stripe_ == stripe) {
      return cached_slot_;
    }
    const size_t mask = buckets_.size() - 1;
    for (size_t b = HashStripe(stripe) & mask;; b = (b + 1) & mask) {
      const uint32_t entry = buckets_[b];
      if (entry == kEmptyBucket) {
        return kNoStripe;
      }
      const uint32_t slot = entry - 1;
      if (stripe_of_slot_[slot] == stripe) {
        cached_stripe_ = stripe;
        cached_slot_ = slot;
        return slot;
      }
    }
  }

  uint32_t FindOrInsertSlot(int64_t stripe) {
    const uint32_t found = FindSlot(stripe);
    if (found != kNoStripe) {
      return found;
    }
    // Grow at 50% load so probe sequences stay short.
    if ((stripe_of_slot_.size() + 1) * 2 > buckets_.size()) {
      Rehash(buckets_.size() * 2);
    }
    const uint32_t slot = static_cast<uint32_t>(stripe_of_slot_.size());
    stripe_of_slot_.push_back(stripe);
    values_.resize(values_.size() + stride_, 0);
    const size_t mask = buckets_.size() - 1;
    size_t b = HashStripe(stripe) & mask;
    while (buckets_[b] != kEmptyBucket) {
      b = (b + 1) & mask;
    }
    buckets_[b] = slot + 1;
    cached_stripe_ = stripe;
    cached_slot_ = slot;
    return slot;
  }

  void Rehash(size_t new_buckets) {
    buckets_.assign(new_buckets, kEmptyBucket);
    const size_t mask = new_buckets - 1;
    for (uint32_t slot = 0; slot < stripe_of_slot_.size(); ++slot) {
      size_t b = HashStripe(stripe_of_slot_[slot]) & mask;
      while (buckets_[b] != kEmptyBucket) {
        b = (b + 1) & mask;
      }
      buckets_[b] = slot + 1;
    }
  }

  uint64_t Get(int64_t stripe, int32_t block, int32_t sector) const {
    assert(sector >= 0 && sector < spu_);
    const uint32_t slot = FindSlot(stripe);
    if (slot == kNoStripe) {
      return 0;
    }
    return values_[ValueIndex(slot, block, sector)];
  }
  void Set(int64_t stripe, int32_t block, int32_t sector, uint64_t v) {
    assert(sector >= 0 && sector < spu_);
    values_[ValueIndex(FindOrInsertSlot(stripe), block, sector)] = v;
  }

  int32_t n_;
  int32_t pb_;
  int32_t spu_;
  int32_t width_;   // n_ + pb_: values per sector row.
  size_t stride_;   // Values per stripe.

  std::vector<uint32_t> buckets_;        // Open-addressed: slot index + 1.
  std::vector<int64_t> stripe_of_slot_;  // Slot -> stripe key, touch order.
  std::vector<uint64_t> values_;         // Slot-contiguous, sector-major.

  mutable int64_t cached_stripe_ = 0;
  mutable uint32_t cached_slot_ = kNoStripe;
};

}  // namespace afraid

#endif  // AFRAID_ARRAY_CONTENT_H_
