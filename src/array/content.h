// Functional content tracking for integrity verification.
//
// Instead of storing real bytes, every 512-byte sector carries a 64-bit
// value; parity sectors hold the xor of the corresponding data sectors,
// exactly as real RAID 5 parity holds the xor of the data bytes (xor on
// tags commutes with xor on bytes, so all parity algebra -- read-modify-
// write deltas, reconstruct-writes, rebuilds, degraded reconstruction --
// is exact). Controllers mutate this model at the simulated instant the
// corresponding disk transfer completes, so tests can fail a disk at an
// arbitrary time and check precisely which data is recoverable.
//
// Storage is sparse per stripe: untouched stripes are implicitly all-zero,
// which is parity-consistent by construction (a freshly initialised array).

#ifndef AFRAID_ARRAY_CONTENT_H_
#define AFRAID_ARRAY_CONTENT_H_

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace afraid {

class ContentModel {
 public:
  // `data_blocks` = N; `parity_blocks` = 1 (RAID 5) or 2 (RAID 6);
  // `sectors_per_unit` = stripe_unit_bytes / sector_bytes.
  ContentModel(int32_t data_blocks, int32_t parity_blocks, int32_t sectors_per_unit)
      : n_(data_blocks), pb_(parity_blocks), spu_(sectors_per_unit) {
    assert(n_ > 0 && pb_ >= 1 && spu_ > 0);
  }

  int32_t sectors_per_unit() const { return spu_; }

  // --- Physical (on-disk) state ---------------------------------------------

  uint64_t GetData(int64_t stripe, int32_t j, int32_t sector) const {
    assert(j >= 0 && j < n_);
    return Get(stripe, j, sector);
  }
  void SetData(int64_t stripe, int32_t j, int32_t sector, uint64_t v) {
    assert(j >= 0 && j < n_);
    Set(stripe, j, sector, v);
  }
  uint64_t GetParity(int64_t stripe, int32_t sector, int32_t which = 0) const {
    assert(which >= 0 && which < pb_);
    return Get(stripe, n_ + which, sector);
  }
  void SetParity(int64_t stripe, int32_t sector, uint64_t v, int32_t which = 0) {
    assert(which >= 0 && which < pb_);
    Set(stripe, n_ + which, sector, v);
  }

  // --- Parity algebra --------------------------------------------------------

  // Xor of all data blocks of the stripe at one sector position: what a full
  // parity rebuild computes, and what degraded-mode reconstruction recovers.
  uint64_t XorOfData(int64_t stripe, int32_t sector) const {
    uint64_t x = 0;
    for (int32_t j = 0; j < n_; ++j) {
      x ^= GetData(stripe, j, sector);
    }
    return x;
  }

  // Reconstruction of data block j from the other data blocks and P parity:
  // xor of everything except block j.
  uint64_t ReconstructData(int64_t stripe, int32_t j, int32_t sector) const {
    uint64_t x = GetParity(stripe, sector);
    for (int32_t k = 0; k < n_; ++k) {
      if (k != j) {
        x ^= GetData(stripe, k, sector);
      }
    }
    return x;
  }

  // True iff P parity equals the xor of the data at every sector position.
  bool StripeConsistent(int64_t stripe) const {
    for (int32_t s = 0; s < spu_; ++s) {
      if (GetParity(stripe, s) != XorOfData(stripe, s)) {
        return false;
      }
    }
    return true;
  }

  // Stripes that have ever been written (for whole-model consistency scans).
  std::vector<int64_t> TouchedStripes() const {
    std::vector<int64_t> out;
    out.reserve(stripes_.size());
    for (const auto& [s, _] : stripes_) {
      out.push_back(s);
    }
    return out;
  }

  // The unique value a client write `tag` deposits into logical sector
  // `logical_sector`. Tests recompute this to know what to expect.
  static uint64_t MixTag(uint64_t tag, int64_t logical_sector) {
    uint64_t x = tag * 0x9e3779b97f4a7c15ULL ^
                 static_cast<uint64_t>(logical_sector) * 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 31;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 29;
    // Avoid producing 0 so "never written" is distinguishable in practice.
    return x == 0 ? 1 : x;
  }

 private:
  uint64_t Get(int64_t stripe, int32_t slot, int32_t sector) const {
    assert(sector >= 0 && sector < spu_);
    auto it = stripes_.find(stripe);
    if (it == stripes_.end()) {
      return 0;
    }
    return it->second[static_cast<size_t>(slot) * spu_ + sector];
  }
  void Set(int64_t stripe, int32_t slot, int32_t sector, uint64_t v) {
    assert(sector >= 0 && sector < spu_);
    auto it = stripes_.find(stripe);
    if (it == stripes_.end()) {
      it = stripes_.emplace(stripe, std::vector<uint64_t>(
                                        static_cast<size_t>(n_ + pb_) * spu_, 0)).first;
    }
    it->second[static_cast<size_t>(slot) * spu_ + sector] = v;
  }

  int32_t n_;
  int32_t pb_;
  int32_t spu_;
  std::unordered_map<int64_t, std::vector<uint64_t>> stripes_;
};

}  // namespace afraid

#endif  // AFRAID_ARRAY_CONTENT_H_
