#include "array/plan_stream.h"

#include <algorithm>

namespace afraid {

void StreamingPlanReplayer::Feed(const RequestPlan* plan) {
  if (destroyed_) {
    dropped_ += plan->size();
    if (ring_ != nullptr) {
      ring_->Release(plan);
    }
    return;
  }
  live_.push_back(LivePlan{plan});
  if (starved_) {
    starved_ = false;
    ScheduleNext();
  }
}

void StreamingPlanReplayer::ScheduleNext() {
  // Skip exhausted plans (including freshly fed empty ones).
  while (cur_ < live_.size() && next_rec_ >= live_[cur_].plan->size()) {
    live_[cur_].exhausted = true;
    ++cur_;
    next_rec_ = 0;
  }
  TryRetire();
  if (cur_ >= live_.size()) {
    starved_ = true;
    return;
  }
  const PlanRecord& r = live_[cur_].plan->record(next_rec_);
  pending_ = sim_->At(std::max(r.time, sim_->Now()), [this] { Fire(); });
  pending_valid_ = true;
}

void StreamingPlanReplayer::Fire() {
  pending_valid_ = false;
  LivePlan& lp = live_[cur_];
  const PlanRecord& r = lp.plan->record(next_rec_);
  const Span<Segment> segs = lp.plan->segments(next_rec_);
  // Bookkeeping first: the driver assigns this submission id next_id_, and
  // its completion (always via a later event, but never assume) must find
  // the outstanding count already raised.
  const uint64_t id = next_id_++;
  if (lp.first_id == 0) {
    lp.first_id = id;
  }
  lp.last_id = id;
  ++lp.outstanding;
  ++submitted_;
  if (r.is_write) {
    submitted_write_bytes_ += r.size;
  } else {
    submitted_read_bytes_ += r.size;
  }
  ++next_rec_;
  driver_->SubmitPlanned(r.offset, r.size, r.is_write, segs.data, segs.count);
  ScheduleNext();
}

void StreamingPlanReplayer::TryRetire() {
  // Only plans strictly before the current one are retirable (cur_ > 0
  // guards the plan still being submitted, even when it is exhausted and
  // cur_ has not yet moved past it -- it has, by construction, whenever its
  // exhausted flag is set).
  while (cur_ > 0 && !live_.empty() && live_.front().exhausted &&
         live_.front().outstanding == 0) {
    if (ring_ != nullptr) {
      ring_->Release(live_.front().plan);
    }
    live_.pop_front();
    --cur_;
  }
}

void StreamingPlanReplayer::OnComplete(uint64_t id) {
  for (LivePlan& lp : live_) {
    if (lp.first_id != 0 && id >= lp.first_id && id <= lp.last_id) {
      --lp.outstanding;
      break;
    }
  }
  TryRetire();
}

void StreamingPlanReplayer::Destroy() {
  if (destroyed_) {
    return;
  }
  destroyed_ = true;
  if (pending_valid_) {
    sim_->Cancel(pending_);
    pending_valid_ = false;
  }
  // Everything not yet submitted is dropped; mark the tail plans exhausted
  // so they retire as soon as their in-flight requests (if any) complete.
  for (size_t i = cur_; i < live_.size(); ++i) {
    const size_t first = (i == cur_) ? next_rec_ : 0;
    dropped_ += live_[i].plan->size() - first;
    live_[i].exhausted = true;
  }
  cur_ = live_.size();
  next_rec_ = 0;
  starved_ = false;  // Destroyed shards just drain; no more feeding needed.
  TryRetire();
}

}  // namespace afraid
