#include "array/layout.h"

#include <algorithm>
#include <cstring>

namespace afraid {

const char* LayoutKindName(LayoutKind kind) {
  switch (kind) {
    case LayoutKind::kLeftSymmetric:
      return "left-symmetric";
    case LayoutKind::kDeclustered:
      return "declustered";
  }
  return "?";
}

bool LayoutKindFromName(const char* name, LayoutKind* kind) {
  if (std::strcmp(name, "left-symmetric") == 0) {
    *kind = LayoutKind::kLeftSymmetric;
    return true;
  }
  if (std::strcmp(name, "declustered") == 0) {
    *kind = LayoutKind::kDeclustered;
    return true;
  }
  return false;
}

ArrayLayout::ArrayLayout(int32_t num_disks, int64_t stripe_unit_bytes,
                         int32_t parity_blocks, int32_t stripe_width,
                         int64_t num_stripes)
    : num_disks_(num_disks),
      stripe_unit_(stripe_unit_bytes),
      parity_blocks_(parity_blocks),
      stripe_width_(stripe_width),
      num_stripes_(num_stripes) {
  // 0 parity blocks = a pure rotated striping layout (mirrored arrays use it
  // for their column space; ParityDisk is never asked for).
  assert(parity_blocks_ >= 0 && parity_blocks_ <= 2);
  assert(stripe_width_ >= parity_blocks_ + 1);
  assert(stripe_width_ <= num_disks_);
  assert(stripe_unit_ > 0);
  assert(num_stripes_ > 0);
  unit_div_ = FastDiv64(stripe_unit_);
  data_div_ = FastDiv64(data_blocks_per_stripe());
  stripe_bytes_div_ = FastDiv64(stripe_unit_ * data_blocks_per_stripe());
}

std::vector<Segment> ArrayLayout::Split(int64_t logical_offset, int64_t length) const {
  std::vector<Segment> segments;
  SplitInto(logical_offset, length, &segments);
  return segments;
}

void ArrayLayout::SplitInto(int64_t logical_offset, int64_t length,
                            std::vector<Segment>* segments) const {
  assert(logical_offset >= 0);
  assert(length > 0);
  assert(logical_offset + length <= data_capacity_bytes());
  segments->clear();
  int64_t off = logical_offset;
  int64_t remaining = length;
  while (remaining > 0) {
    const int64_t unit_index = unit_div_.Div(off);  // Global data-block index.
    const auto in_block = static_cast<int32_t>(off - unit_index * stripe_unit_);
    const auto len = static_cast<int32_t>(
        std::min<int64_t>(remaining, stripe_unit_ - in_block));
    const int64_t stripe = data_div_.Div(unit_index);
    Segment seg;
    seg.stripe = stripe;
    seg.block_in_stripe = static_cast<int32_t>(
        unit_index - stripe * data_blocks_per_stripe());
    seg.logical_offset = off;
    seg.offset_in_block = in_block;
    seg.length = len;
    segments->push_back(seg);
    off += len;
    remaining -= len;
  }
}

StripeLayout::StripeLayout(int32_t num_disks, int64_t stripe_unit_bytes,
                           int64_t disk_capacity_bytes, int32_t parity_blocks)
    : ArrayLayout(num_disks, stripe_unit_bytes, parity_blocks,
                  /*stripe_width=*/num_disks,
                  /*num_stripes=*/disk_capacity_bytes / stripe_unit_bytes),
      disks_div_(num_disks) {}

int32_t StripeLayout::ParityDisk(int64_t stripe, int32_t which) const {
  assert(which >= 0 && which < parity_blocks());
  // The "anchor" parity (Q when there are two) rotates right-to-left; P sits
  // immediately to its left (mod num_disks). With one parity block, the
  // anchor *is* P, giving the classic left-symmetric rotation.
  const int32_t anchor = AnchorDisk(stripe);
  if (which == parity_blocks() - 1) {
    return anchor;
  }
  const int32_t left = anchor + num_disks() - 1;  // < 2 * num_disks().
  return left >= num_disks() ? left - num_disks() : left;
}

int32_t StripeLayout::DataDisk(int64_t stripe, int32_t j) const {
  assert(j >= 0 && j < data_blocks_per_stripe());
  // Data blocks fill the slots just right of the anchor, wrapping; with two
  // parity blocks the slot at anchor-1 (i.e. anchor + num_disks - 1) is P,
  // which the range anchor+1 .. anchor+num_disks-2 never reaches.
  const int32_t slot = AnchorDisk(stripe) + 1 + j;  // < 2 * num_disks().
  return slot >= num_disks() ? slot - num_disks() : slot;
}

BlockLoc StripeLayout::DataLocation(int64_t stripe, int32_t j) const {
  return BlockLoc{DataDisk(stripe, j), stripe * stripe_unit()};
}

BlockLoc StripeLayout::ParityLocation(int64_t stripe, int32_t which) const {
  return BlockLoc{ParityDisk(stripe, which), stripe * stripe_unit()};
}

}  // namespace afraid
