#include "array/layout.h"

#include <algorithm>

namespace afraid {

StripeLayout::StripeLayout(int32_t num_disks, int64_t stripe_unit_bytes,
                           int64_t disk_capacity_bytes, int32_t parity_blocks)
    : num_disks_(num_disks),
      stripe_unit_(stripe_unit_bytes),
      parity_blocks_(parity_blocks) {
  // 0 parity blocks = a pure rotated striping layout (mirrored arrays use it
  // for their column space; ParityDisk is never asked for).
  assert(parity_blocks_ >= 0 && parity_blocks_ <= 2);
  assert(num_disks_ >= parity_blocks_ + 1);
  assert(stripe_unit_ > 0);
  num_stripes_ = disk_capacity_bytes / stripe_unit_;
  assert(num_stripes_ > 0);
  unit_div_ = FastDiv64(stripe_unit_);
  data_div_ = FastDiv64(data_blocks_per_stripe());
  stripe_bytes_div_ = FastDiv64(stripe_unit_ * data_blocks_per_stripe());
  disks_div_ = FastDiv64(num_disks_);
}

int32_t StripeLayout::ParityDisk(int64_t stripe, int32_t which) const {
  assert(which >= 0 && which < parity_blocks_);
  // The "anchor" parity (Q when there are two) rotates right-to-left; P sits
  // immediately to its left (mod num_disks). With one parity block, the
  // anchor *is* P, giving the classic left-symmetric rotation.
  const int32_t anchor = AnchorDisk(stripe);
  if (which == parity_blocks_ - 1) {
    return anchor;
  }
  const int32_t left = anchor + num_disks_ - 1;  // < 2 * num_disks_.
  return left >= num_disks_ ? left - num_disks_ : left;
}

int32_t StripeLayout::DataDisk(int64_t stripe, int32_t j) const {
  assert(j >= 0 && j < data_blocks_per_stripe());
  // Data blocks fill the slots just right of the anchor, wrapping; with two
  // parity blocks the slot at anchor-1 (i.e. anchor + num_disks - 1) is P,
  // which the range anchor+1 .. anchor+num_disks-2 never reaches.
  const int32_t slot = AnchorDisk(stripe) + 1 + j;  // < 2 * num_disks_.
  return slot >= num_disks_ ? slot - num_disks_ : slot;
}

BlockLoc StripeLayout::DataLocation(int64_t stripe, int32_t j) const {
  return BlockLoc{DataDisk(stripe, j), stripe * stripe_unit_};
}

BlockLoc StripeLayout::ParityLocation(int64_t stripe, int32_t which) const {
  return BlockLoc{ParityDisk(stripe, which), stripe * stripe_unit_};
}

int64_t StripeLayout::StripeOfOffset(int64_t logical_offset) const {
  assert(logical_offset >= 0 && logical_offset < data_capacity_bytes());
  return stripe_bytes_div_.Div(logical_offset);
}

std::vector<Segment> StripeLayout::Split(int64_t logical_offset, int64_t length) const {
  std::vector<Segment> segments;
  SplitInto(logical_offset, length, &segments);
  return segments;
}

void StripeLayout::SplitInto(int64_t logical_offset, int64_t length,
                             std::vector<Segment>* segments) const {
  assert(logical_offset >= 0);
  assert(length > 0);
  assert(logical_offset + length <= data_capacity_bytes());
  segments->clear();
  int64_t off = logical_offset;
  int64_t remaining = length;
  while (remaining > 0) {
    const int64_t unit_index = unit_div_.Div(off);  // Global data-block index.
    const auto in_block = static_cast<int32_t>(off - unit_index * stripe_unit_);
    const auto len = static_cast<int32_t>(
        std::min<int64_t>(remaining, stripe_unit_ - in_block));
    const int64_t stripe = data_div_.Div(unit_index);
    Segment seg;
    seg.stripe = stripe;
    seg.block_in_stripe = static_cast<int32_t>(
        unit_index - stripe * data_blocks_per_stripe());
    seg.logical_offset = off;
    seg.offset_in_block = in_block;
    seg.length = len;
    segments->push_back(seg);
    off += len;
    remaining -= len;
  }
}

}  // namespace afraid
