// The AFRAID marking memory: one bit per stripe in NVRAM.
//
// "A write in AFRAID ... causes the target stripes to be marked
// unredundant... indicated by setting a bit per stripe in a non-volatile
// memory in the array controller; attempting to re-mark an already-marked
// stripe does nothing." (Section 1.1.)
//
// The hardware cost is ~1 bit per stripe (3 KB of NVRAM per GB of storage
// for a 5-wide, 8 KB-stripe-unit array). The in-simulator representation is
// a two-level 64-bit word bitmap: `words_` holds the dirty bits themselves,
// and `summary_` holds one bit per word of `words_` (set iff that word is
// nonzero). Mark/Clear/IsDirty are O(1) bit twiddles; NextDirty ctz-scans
// the summary level so a sweep over a sparse bitmap skips 4096 stripes per
// summary word probed. Ascending iteration order -- the rebuilder's sweep
// order, which coalesces adjacent dirty stripes into near-sequential disk
// accesses -- is preserved by construction.
//
// Fail() models the loss of the marking memory: the dirty information is
// gone, and the array must conservatively rebuild parity everywhere
// (Section 3.1 bounds that exposure window at ~10 minutes).

#ifndef AFRAID_ARRAY_NVRAM_H_
#define AFRAID_ARRAY_NVRAM_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

namespace afraid {

class NvramBitmap {
 public:
  explicit NvramBitmap(int64_t num_stripes)
      : num_stripes_(num_stripes),
        words_(static_cast<size_t>((num_stripes + 63) / 64), 0),
        summary_((words_.size() + 63) / 64, 0) {}

  // Marks a stripe unredundant. Returns true if the stripe was newly marked,
  // false if it was already marked (re-marking is a no-op).
  bool Mark(int64_t stripe) {
    assert(stripe >= 0 && stripe < num_stripes_);
    const auto w = static_cast<size_t>(stripe >> 6);
    const uint64_t bit = 1ull << (stripe & 63);
    if ((words_[w] & bit) != 0) {
      return false;
    }
    words_[w] |= bit;
    summary_[w >> 6] |= 1ull << (w & 63);
    ++dirty_count_;
    return true;
  }

  // Clears the mark after a successful parity rebuild. Returns true if the
  // stripe was marked.
  bool Clear(int64_t stripe) {
    assert(stripe >= 0 && stripe < num_stripes_);
    const auto w = static_cast<size_t>(stripe >> 6);
    const uint64_t bit = 1ull << (stripe & 63);
    if ((words_[w] & bit) == 0) {
      return false;
    }
    words_[w] &= ~bit;
    if (words_[w] == 0) {
      summary_[w >> 6] &= ~(1ull << (w & 63));
    }
    --dirty_count_;
    return true;
  }

  bool IsDirty(int64_t stripe) const {
    assert(stripe >= 0 && stripe < num_stripes_);
    return (words_[static_cast<size_t>(stripe >> 6)] >> (stripe & 63) & 1) != 0;
  }

  int64_t DirtyCount() const { return dirty_count_; }
  int64_t NumStripes() const { return num_stripes_; }
  bool failed() const { return failed_; }

  // Smallest dirty stripe >= `from`, wrapping to the smallest overall;
  // -1 if nothing is dirty. This is the rebuilder's sweep order. `from` past
  // the end of the bitmap wraps, matching the ordered-set semantics this
  // replaced (callers probe with last_rebuilt_key + 1).
  int64_t NextDirty(int64_t from) const {
    if (dirty_count_ == 0) {
      return -1;
    }
    if (from < 0 || from >= num_stripes_) {
      from = 0;
    }
    const int64_t found = ScanFrom(from);
    return found >= 0 ? found : ScanFrom(0);
  }

  // Forward iteration over the dirty stripes in ascending order. The view is
  // invalidated by any Mark/Clear/Fail, like the set iterators it replaced.
  class DirtyIterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = int64_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const int64_t*;
    using reference = int64_t;

    DirtyIterator() = default;
    DirtyIterator(const NvramBitmap* bitmap, int64_t cur)
        : bitmap_(bitmap), cur_(cur) {}

    int64_t operator*() const { return cur_; }
    DirtyIterator& operator++() {
      cur_ = cur_ + 1 < bitmap_->num_stripes_ ? bitmap_->ScanFrom(cur_ + 1) : -1;
      return *this;
    }
    DirtyIterator operator++(int) {
      DirtyIterator old = *this;
      ++*this;
      return old;
    }
    bool operator==(const DirtyIterator& o) const { return cur_ == o.cur_; }
    bool operator!=(const DirtyIterator& o) const { return cur_ != o.cur_; }

   private:
    const NvramBitmap* bitmap_ = nullptr;
    int64_t cur_ = -1;
  };

  class DirtyView {
   public:
    explicit DirtyView(const NvramBitmap* bitmap) : bitmap_(bitmap) {}
    DirtyIterator begin() const {
      return DirtyIterator(bitmap_,
                           bitmap_->dirty_count_ == 0 ? -1 : bitmap_->ScanFrom(0));
    }
    DirtyIterator end() const { return DirtyIterator(bitmap_, -1); }
    bool empty() const { return bitmap_->dirty_count_ == 0; }
    size_t size() const { return static_cast<size_t>(bitmap_->dirty_count_); }

   private:
    const NvramBitmap* bitmap_;
  };

  DirtyView DirtyStripes() const { return DirtyView(this); }

  // Models NVRAM failure: all marking knowledge is lost.
  void Fail() {
    failed_ = true;
    std::fill(words_.begin(), words_.end(), 0);
    std::fill(summary_.begin(), summary_.end(), 0);
    dirty_count_ = 0;
  }

  // Replacement of the failed part (after the recovery scrub).
  void Repair() { failed_ = false; }

  // NVRAM bits this bitmap would occupy in hardware (the summary level is a
  // simulator acceleration, not part of the modelled hardware).
  int64_t HardwareBits() const { return num_stripes_; }

 private:
  // First dirty stripe >= `from` without wrapping; -1 if none.
  int64_t ScanFrom(int64_t from) const {
    auto w = static_cast<size_t>(from >> 6);
    const uint64_t head = words_[w] & (~0ull << (from & 63));
    if (head != 0) {
      return static_cast<int64_t>(w << 6) + Ctz(head);
    }
    // Summary scan: bits for words strictly after w. `2ull << 63` wraps to 0,
    // correctly masking out the whole word when w is its last bit.
    size_t s = w >> 6;
    uint64_t sword = summary_[s] & ~((2ull << (w & 63)) - 1);
    for (;;) {
      if (sword != 0) {
        const size_t w2 = (s << 6) + static_cast<size_t>(Ctz(sword));
        return static_cast<int64_t>(w2 << 6) + Ctz(words_[w2]);
      }
      if (++s >= summary_.size()) {
        return -1;
      }
      sword = summary_[s];
    }
  }

  static int32_t Ctz(uint64_t x) { return __builtin_ctzll(x); }

  int64_t num_stripes_;
  std::vector<uint64_t> words_;    // Bit per stripe.
  std::vector<uint64_t> summary_;  // Bit per word of words_ (set iff nonzero).
  int64_t dirty_count_ = 0;
  bool failed_ = false;
};

}  // namespace afraid

#endif  // AFRAID_ARRAY_NVRAM_H_
