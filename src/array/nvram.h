// The AFRAID marking memory: one bit per stripe in NVRAM.
//
// "A write in AFRAID ... causes the target stripes to be marked
// unredundant... indicated by setting a bit per stripe in a non-volatile
// memory in the array controller; attempting to re-mark an already-marked
// stripe does nothing." (Section 1.1.)
//
// The hardware cost is ~1 bit per stripe (3 KB of NVRAM per GB of storage
// for a 5-wide, 8 KB-stripe-unit array). We keep an ordered set alongside
// the semantic bitmap so the rebuilder can sweep dirty stripes in ascending
// order, which naturally coalesces adjacent dirty stripes into near-
// sequential disk accesses.
//
// Fail() models the loss of the marking memory: the dirty information is
// gone, and the array must conservatively rebuild parity everywhere
// (Section 3.1 bounds that exposure window at ~10 minutes).

#ifndef AFRAID_ARRAY_NVRAM_H_
#define AFRAID_ARRAY_NVRAM_H_

#include <cassert>
#include <cstdint>
#include <set>

namespace afraid {

class NvramBitmap {
 public:
  explicit NvramBitmap(int64_t num_stripes) : num_stripes_(num_stripes) {}

  // Marks a stripe unredundant. Returns true if the stripe was newly marked,
  // false if it was already marked (re-marking is a no-op).
  bool Mark(int64_t stripe) {
    assert(stripe >= 0 && stripe < num_stripes_);
    return dirty_.insert(stripe).second;
  }

  // Clears the mark after a successful parity rebuild. Returns true if the
  // stripe was marked.
  bool Clear(int64_t stripe) {
    assert(stripe >= 0 && stripe < num_stripes_);
    return dirty_.erase(stripe) > 0;
  }

  bool IsDirty(int64_t stripe) const { return dirty_.contains(stripe); }
  int64_t DirtyCount() const { return static_cast<int64_t>(dirty_.size()); }
  int64_t NumStripes() const { return num_stripes_; }
  bool failed() const { return failed_; }

  // Smallest dirty stripe >= `from`, wrapping to the smallest overall;
  // -1 if nothing is dirty. This is the rebuilder's sweep order.
  int64_t NextDirty(int64_t from) const {
    if (dirty_.empty()) {
      return -1;
    }
    auto it = dirty_.lower_bound(from);
    if (it == dirty_.end()) {
      it = dirty_.begin();
    }
    return *it;
  }

  const std::set<int64_t>& DirtyStripes() const { return dirty_; }

  // Models NVRAM failure: all marking knowledge is lost.
  void Fail() {
    failed_ = true;
    dirty_.clear();
  }

  // Replacement of the failed part (after the recovery scrub).
  void Repair() { failed_ = false; }

  // NVRAM bits this bitmap would occupy in hardware.
  int64_t HardwareBits() const { return num_stripes_; }

 private:
  int64_t num_stripes_;
  std::set<int64_t> dirty_;
  bool failed_ = false;
};

}  // namespace afraid

#endif  // AFRAID_ARRAY_NVRAM_H_
