// Timer-based idleness detection.
//
// The paper's baseline configuration: "we used a timer-based idleness
// detector with a 100ms delay: that is, AFRAID started processing parity
// updates once the array had been completely idle for 100ms" (Section 4.1;
// idleness detection in general is the subject of [Golding95]).
//
// The controller reports busy/idle transitions; after `delay` of continuous
// idleness the callback fires once. It re-arms automatically after the next
// busy period.

#ifndef AFRAID_ARRAY_IDLE_DETECTOR_H_
#define AFRAID_ARRAY_IDLE_DETECTOR_H_

#include <cassert>
#include <functional>
#include <utility>

#include "sim/simulator.h"
#include "sim/time.h"

namespace afraid {

class IdleDetector {
 public:
  using IdleCallback = std::function<void()>;

  IdleDetector(Simulator* sim, SimDuration delay, IdleCallback on_idle)
      : sim_(sim), delay_(delay), on_idle_(std::move(on_idle)) {
    assert(delay_ >= 0);
    Arm();
  }
  IdleDetector(const IdleDetector&) = delete;
  IdleDetector& operator=(const IdleDetector&) = delete;
  ~IdleDetector() { Disarm(); }

  // The array transitioned from idle to having work in flight.
  void NoteBusy() {
    busy_ = true;
    Disarm();
  }

  // The array's last in-flight work completed.
  void NoteIdle() {
    busy_ = false;
    Arm();
  }

  bool busy() const { return busy_; }
  SimDuration delay() const { return delay_; }

  // Number of times the idle callback has fired.
  uint64_t Firings() const { return firings_; }

 private:
  void Arm() {
    Disarm();
    timer_ = sim_->After(delay_, [this] {
      timer_ = kInvalidEventId;
      ++firings_;
      on_idle_();
    });
  }
  void Disarm() {
    if (timer_ != kInvalidEventId) {
      sim_->Cancel(timer_);
      timer_ = kInvalidEventId;
    }
  }

  Simulator* sim_;
  SimDuration delay_;
  IdleCallback on_idle_;
  EventId timer_ = kInvalidEventId;
  bool busy_ = false;
  uint64_t firings_ = 0;
};

}  // namespace afraid

#endif  // AFRAID_ARRAY_IDLE_DETECTOR_H_
