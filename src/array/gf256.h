// GF(2^8) arithmetic for the RAID 6 Q parity (Section 5 extension).
//
// The field is GF(256) with the conventional RAID 6 polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d) and generator g = 2. Q parity is the
// Reed-Solomon-style weighted sum  Q = sum_j g^j * D_j,  which together with
// P = xor sum_j D_j tolerates any two erasures.
//
// The content model stores 64-bit tags per sector; GF operations act
// bytewise on the eight lanes, exactly as real RAID 6 math acts bytewise on
// sector payloads, so all Q algebra on tags mirrors the algebra on data.

#ifndef AFRAID_ARRAY_GF256_H_
#define AFRAID_ARRAY_GF256_H_

#include <array>
#include <cassert>
#include <cstdint>

namespace afraid {

class Gf256 {
 public:
  // Multiplication of single field elements.
  static uint8_t Mul(uint8_t a, uint8_t b) {
    if (a == 0 || b == 0) {
      return 0;
    }
    const Tables& t = tables();
    return t.exp[(t.log[a] + t.log[b]) % 255];
  }

  static uint8_t Div(uint8_t a, uint8_t b) {
    assert(b != 0);
    if (a == 0) {
      return 0;
    }
    const Tables& t = tables();
    return t.exp[(t.log[a] + 255 - t.log[b]) % 255];
  }

  static uint8_t Inv(uint8_t a) {
    assert(a != 0);
    const Tables& t = tables();
    return t.exp[(255 - t.log[a]) % 255];
  }

  // g^n for generator g = 2.
  static uint8_t Pow2(int32_t n) {
    const Tables& t = tables();
    n %= 255;
    if (n < 0) {
      n += 255;
    }
    return t.exp[n];
  }

  // Bytewise multiply of all eight lanes of a 64-bit word by a scalar.
  static uint64_t MulWord(uint64_t word, uint8_t scalar) {
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      const auto lane = static_cast<uint8_t>(word >> (8 * i));
      out |= static_cast<uint64_t>(Mul(lane, scalar)) << (8 * i);
    }
    return out;
  }

 private:
  struct Tables {
    std::array<uint8_t, 255> exp{};
    std::array<int32_t, 256> log{};
    Tables() {
      uint8_t x = 1;
      for (int i = 0; i < 255; ++i) {
        exp[static_cast<size_t>(i)] = x;
        log[x] = i;
        // Multiply by g = 2 modulo 0x11d.
        const bool carry = (x & 0x80) != 0;
        x = static_cast<uint8_t>(x << 1);
        if (carry) {
          x ^= 0x1d;
        }
      }
      log[0] = -1;
    }
  };
  static const Tables& tables() {
    static const Tables t;
    return t;
  }
};

}  // namespace afraid

#endif  // AFRAID_ARRAY_GF256_H_
