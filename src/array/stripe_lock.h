// Per-stripe reader/writer locks for parity consistency.
//
// The paper: "Multiple writes to the same stripe were allowed to proceed in
// parallel, but would block if a parity-rebuild on that stripe was in
// progress." We generalise slightly: any operation that *recomputes* parity
// (an AFRAID background rebuild, or a RAID 5 read-modify-write /
// reconstruct-write group) takes the stripe exclusively; plain AFRAID data
// writes take the stripe shared. Reads take no lock at all (they never touch
// parity).
//
// Grants are FIFO within a stripe to avoid starvation; everything is
// single-threaded simulation code, so "lock" here means deferred-callback
// admission control, not a mutex.
//
// Storage is pooled for the allocation-free request path: stripe states are
// recycled through a free list (keeping their waiter-queue capacity), the map
// nodes come from a NodePool, and Pump's to-run scratch is a reused stack.

#ifndef AFRAID_ARRAY_STRIPE_LOCK_H_
#define AFRAID_ARRAY_STRIPE_LOCK_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/arena.h"
#include "sim/callback.h"

namespace afraid {

enum class LockMode { kShared, kExclusive };

class StripeLockTable {
 public:
  // Sized for the controllers' lock-grant continuations (request id, stripe,
  // segment span, join pointer).
  using Grant = SmallCallback<void(), 64>;

  StripeLockTable() : stripes_(0, Hash(), std::equal_to<int64_t>(),
                               PoolAllocator<MapEntry>(&node_pool_)) {}

  // Requests the stripe in `mode`; `granted` runs immediately (re-entrantly)
  // if the lock is free, otherwise when predecessors release.
  void Acquire(int64_t stripe, LockMode mode, Grant granted);

  // Releases one previously granted hold (shared holds release once each).
  void Release(int64_t stripe, LockMode mode);

  // True if anyone holds or awaits the stripe (used by tests).
  bool Busy(int64_t stripe) const { return stripes_.contains(stripe); }

  // True if an exclusive hold is active on the stripe.
  bool HeldExclusive(int64_t stripe) const {
    auto it = stripes_.find(stripe);
    return it != stripes_.end() && it->second->exclusive_held;
  }

 private:
  struct Waiter {
    LockMode mode = LockMode::kShared;
    Grant granted;
  };
  struct State {
    int32_t shared_held = 0;
    bool exclusive_held = false;
    RingQueue<Waiter> waiters;
  };
  using Hash = std::hash<int64_t>;
  using MapEntry = std::pair<const int64_t, State*>;

  // Admits as many waiters as compatible; erases the entry when idle.
  void Pump(int64_t stripe, State* st);

  State* AcquireState();

  NodePool node_pool_;
  std::vector<std::unique_ptr<State>> state_storage_;
  std::vector<State*> state_free_;  // Recycled states keep waiter capacity.
  std::unordered_map<int64_t, State*, Hash, std::equal_to<int64_t>,
                     PoolAllocator<MapEntry>>
      stripes_;
  // Reused grant scratch, used as a stack so re-entrant Pumps nest: each call
  // runs only the entries it pushed, then truncates back to its base.
  std::vector<Grant> pump_run_;
};

}  // namespace afraid

#endif  // AFRAID_ARRAY_STRIPE_LOCK_H_
