// Per-stripe reader/writer locks for parity consistency.
//
// The paper: "Multiple writes to the same stripe were allowed to proceed in
// parallel, but would block if a parity-rebuild on that stripe was in
// progress." We generalise slightly: any operation that *recomputes* parity
// (an AFRAID background rebuild, or a RAID 5 read-modify-write /
// reconstruct-write group) takes the stripe exclusively; plain AFRAID data
// writes take the stripe shared. Reads take no lock at all (they never touch
// parity).
//
// Grants are FIFO within a stripe to avoid starvation; everything is
// single-threaded simulation code, so "lock" here means deferred-callback
// admission control, not a mutex.

#ifndef AFRAID_ARRAY_STRIPE_LOCK_H_
#define AFRAID_ARRAY_STRIPE_LOCK_H_

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

namespace afraid {

enum class LockMode { kShared, kExclusive };

class StripeLockTable {
 public:
  using Grant = std::function<void()>;

  // Requests the stripe in `mode`; `granted` runs immediately (re-entrantly)
  // if the lock is free, otherwise when predecessors release.
  void Acquire(int64_t stripe, LockMode mode, Grant granted);

  // Releases one previously granted hold (shared holds release once each).
  void Release(int64_t stripe, LockMode mode);

  // True if anyone holds or awaits the stripe (used by tests).
  bool Busy(int64_t stripe) const { return stripes_.contains(stripe); }

  // True if an exclusive hold is active on the stripe.
  bool HeldExclusive(int64_t stripe) const {
    auto it = stripes_.find(stripe);
    return it != stripes_.end() && it->second.exclusive_held;
  }

 private:
  struct Waiter {
    LockMode mode;
    Grant granted;
  };
  struct State {
    int32_t shared_held = 0;
    bool exclusive_held = false;
    std::deque<Waiter> waiters;
  };

  // Admits as many waiters as compatible; erases the entry when idle.
  void Pump(int64_t stripe, State& st);

  std::unordered_map<int64_t, State> stripes_;
};

}  // namespace afraid

#endif  // AFRAID_ARRAY_STRIPE_LOCK_H_
