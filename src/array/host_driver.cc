#include "array/host_driver.h"

#include <cassert>

namespace afraid {

HostDriver::HostDriver(Simulator* sim, ArrayController* array, int32_t max_active,
                       HostSched sched, Probe probe)
    : sim_(sim),
      array_(array),
      max_active_(max_active),
      sched_(sched),
      probe_(probe.NewTrack("driver")),
      queue_(std::less<int64_t>(),
             PoolAllocator<std::pair<const int64_t, ClientRequest>>(&queue_nodes_)),
      occupancy_(sim->Now()) {}

void HostDriver::Submit(int64_t offset, int32_t size, bool is_write) {
  SubmitPlanned(offset, size, is_write, nullptr, 0);
}

void HostDriver::SubmitPlanned(int64_t offset, int32_t size, bool is_write,
                               const Segment* segs, int32_t seg_count) {
  assert(size > 0);
  assert(offset >= 0 && offset + size <= array_->DataCapacityBytes());
  ClientRequest r;
  r.id = next_id_++;
  r.offset = offset;
  r.size = size;
  r.is_write = is_write;
  r.arrival = sim_->Now();
  r.plan_segs = segs;
  r.plan_seg_count = seg_count;
  ++accepted_;
  occupancy_.Add(sim_->Now(), +1.0);
  if (probe_) {
    probe_.AsyncBegin(is_write ? "write" : "read", r.id, r.arrival,
                      "{\"offset\":" + std::to_string(offset) +
                          ",\"bytes\":" + std::to_string(size) + "}");
    probe_.Counter("driver occupancy", r.arrival, occupancy_.Current());
  }
  // The queue key selects the discipline: offset order for CLOOK, arrival
  // order for FCFS (the request id is the arrival sequence number).
  queue_.emplace(sched_ == HostSched::kClook ? offset : static_cast<int64_t>(r.id),
                 r);
  TryDispatch();
}

void HostDriver::TryDispatch() {
  while (!queue_.empty() && (max_active_ <= 0 || active_ < max_active_)) {
    auto it = queue_.begin();
    if (sched_ == HostSched::kClook) {
      // CLOOK: next request at or beyond the sweep position, else wrap.
      it = queue_.lower_bound(sweep_offset_);
      if (it == queue_.end()) {
        it = queue_.begin();
      }
    }
    ClientRequest r = it->second;
    queue_.erase(it);
    sweep_offset_ = r.offset;
    ++active_;
    // Capture only the fields the completion needs: the whole ClientRequest
    // (with its plan span) no longer fits RequestDone's inline buffer.
    array_->Submit(r, [this, id = r.id, is_write = r.is_write,
                       arrival = r.arrival] { OnComplete(id, is_write, arrival); });
  }
}

void HostDriver::OnComplete(uint64_t id, bool is_write, SimTime arrival) {
  --active_;
  ++completed_;
  occupancy_.Add(sim_->Now(), -1.0);
  if (probe_) {
    probe_.AsyncEnd(is_write ? "write" : "read", id, sim_->Now());
    probe_.Counter("driver occupancy", sim_->Now(), occupancy_.Current());
  }
  const double ms = ToMilliseconds(sim_->Now() - arrival);
  all_ms_.Add(ms);
  if (is_write) {
    write_ms_.Add(ms);
  } else {
    read_ms_.Add(ms);
  }
  if (completion_listener_) {
    completion_listener_(id, ms, is_write);
  }
  TryDispatch();
}

}  // namespace afraid
