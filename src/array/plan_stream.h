// The streaming half of the compiled replay pipeline: compile each trace
// chunk into a recycled RequestPlan slot while the previous chunk replays.
//
// Lifetime is the crux. Controllers hold Span<Segment> views into a plan
// across asynchronous continuations (request.h), so a plan slot must not be
// recompiled while any request submitted from it is still in flight. The
// replayer therefore keeps every fed plan "live" until (a) all its records
// have been submitted and (b) all its submitted requests have completed --
// tracked via the driver's 1-based sequential completion ids, which the
// replayer mirrors because it is the driver's only submitter. Only then does
// the slot return to the ring for reuse. Under the paper's open-loop
// arrivals the in-flight window is tiny, so the ring converges to two or
// three slots: memory is O(chunk + outstanding window), independent of trace
// length.
//
// Trajectory equivalence with the monolithic PlanReplayer (experiment.cc) is
// by construction: arrivals are chained -- each arrival event submits, then
// schedules the next arrival at max(record.time, now) -- exactly like the
// monolithic replayer. When a chunk runs dry mid-event the replayer goes
// "starved"; the driving loop feeds the next chunk *before* stepping the
// simulator again, so the next arrival is inserted into the event queue at
// the same point in the event sequence as if the whole trace were one plan.
// Tests assert byte-identical latencies and reports on every workload.

#ifndef AFRAID_ARRAY_PLAN_STREAM_H_
#define AFRAID_ARRAY_PLAN_STREAM_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "array/host_driver.h"
#include "array/layout.h"
#include "array/plan.h"
#include "sim/simulator.h"
#include "trace/trace_stream.h"

namespace afraid {

// A grow-on-demand pool of reusable RequestPlan slots. Acquire() prefers a
// released slot; the ring only grows while replay genuinely needs more
// chunks in flight at once.
class PlanSlotRing {
 public:
  RequestPlan* Acquire() {
    if (free_.empty()) {
      slots_.push_back(std::make_unique<RequestPlan>());
      return slots_.back().get();
    }
    RequestPlan* plan = free_.back();
    free_.pop_back();
    return plan;
  }

  void Release(const RequestPlan* plan) {
    // The ring owns the slots non-const; consumers only see const plans.
    free_.push_back(const_cast<RequestPlan*>(plan));
  }

  // Refresh the high-water mark of all slots' resident bytes. Call after
  // each Compile; capacity only changes there.
  void NotePeak() {
    size_t now = 0;
    for (const auto& slot : slots_) {
      now += slot->MemoryBytes();
    }
    if (now > peak_bytes_) {
      peak_bytes_ = now;
    }
  }

  int32_t slots() const { return static_cast<int32_t>(slots_.size()); }
  size_t peak_bytes() const { return peak_bytes_; }

 private:
  std::vector<std::unique_ptr<RequestPlan>> slots_;
  std::vector<RequestPlan*> free_;
  size_t peak_bytes_ = 0;
};

// Pulls chunks from a TraceChunkReader and compiles each into a ring slot.
// The caller must Release() plans back to ring() when replay retires them
// (StreamingPlanReplayer does this automatically).
class StreamingPlanCompiler {
 public:
  // `layout` must outlive the compiler (the owning controller does).
  StreamingPlanCompiler(TraceChunkReader* reader, const ArrayLayout& layout)
      : reader_(reader), layout_(&layout) {}

  // Compiles the next non-empty chunk; nullptr at end of trace or on error
  // (check status()).
  const RequestPlan* Next() {
    if (!reader_->Next()) {
      return nullptr;
    }
    RequestPlan* plan = ring_.Acquire();
    plan->Compile(reader_->chunk().records.data(),
                  reader_->chunk().records.size(), *layout_);
    ring_.NotePeak();
    return plan;
  }

  const TraceStatus& status() const { return reader_->status(); }
  PlanSlotRing* ring() { return &ring_; }

 private:
  TraceChunkReader* reader_;
  const ArrayLayout* layout_;
  PlanSlotRing ring_;
};

// Replays a sequence of fed plans through chained arrival events, retiring
// each plan's slot once fully submitted and completed. Push model: the
// driving loop alternates Feed(plan) with stepping the simulator until
// starved() (out of records) or Idle().
//
// The replayer must be the driver's only submitter, and the driver's
// completion listener must forward every completion id to OnComplete()
// (composing with any other listener work, e.g. per-request latency capture).
class StreamingPlanReplayer {
 public:
  StreamingPlanReplayer(Simulator* sim, HostDriver* driver, PlanSlotRing* ring)
      : sim_(sim), driver_(driver), ring_(ring) {}

  // Hands the replayer the next plan. If it was starved, the next arrival is
  // scheduled immediately (before any simulator step, preserving event
  // order). A destroyed replayer counts the plan's records as dropped and
  // releases the slot at once.
  void Feed(const RequestPlan* plan);

  // No more plans will arrive; after this, starved() means "trace done".
  void FinishFeeding() { feeding_done_ = true; }

  // Out of records to submit: the driving loop must Feed the next chunk (or
  // FinishFeeding and drain).
  bool starved() const { return starved_; }

  // Forward from the driver's completion listener.
  void OnComplete(uint64_t id);

  // Stop submitting (fleet mgmt "destroy"): cancels the pending arrival and
  // counts every unsubmitted record -- current and future feeds -- as
  // dropped. In-flight requests still complete and retire their slots.
  void Destroy();
  bool destroyed() const { return destroyed_; }

  uint64_t submitted() const { return submitted_; }
  uint64_t dropped() const { return dropped_; }
  int64_t submitted_read_bytes() const { return submitted_read_bytes_; }
  int64_t submitted_write_bytes() const { return submitted_write_bytes_; }

 private:
  struct LivePlan {
    const RequestPlan* plan = nullptr;
    uint64_t outstanding = 0;  // Submitted but not yet completed.
    uint64_t first_id = 0;     // Driver ids of this plan's submissions
    uint64_t last_id = 0;      // (0 = none submitted yet).
    bool exhausted = false;    // All records submitted (or dropped).
  };

  void ScheduleNext();
  void Fire();
  void TryRetire();

  Simulator* sim_;
  HostDriver* driver_;
  PlanSlotRing* ring_;
  std::deque<LivePlan> live_;
  size_t cur_ = 0;       // Index into live_ of the plan being submitted.
  size_t next_rec_ = 0;  // Next record within live_[cur_].
  uint64_t next_id_ = 1;  // Mirrors the driver's sequential id assignment.
  EventId pending_{};
  bool pending_valid_ = false;
  bool starved_ = true;
  bool feeding_done_ = false;
  bool destroyed_ = false;
  uint64_t submitted_ = 0;
  uint64_t dropped_ = 0;
  int64_t submitted_read_bytes_ = 0;
  int64_t submitted_write_bytes_ = 0;
};

}  // namespace afraid

#endif  // AFRAID_ARRAY_PLAN_STREAM_H_
