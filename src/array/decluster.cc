#include "array/decluster.h"

#include <algorithm>
#include <cassert>

namespace afraid {

namespace {

// Largest complete design compiled into tables; above this the construction
// falls back to the cyclic-interval design. binom(12,6) = 924 fits; the
// corresponding tables are a few tens of kilobytes.
constexpr int64_t kMaxCompleteBlocks = 1024;

int64_t Binomial(int32_t n, int32_t k) {
  if (k < 0 || k > n) {
    return 0;
  }
  k = std::min(k, n - k);
  int64_t result = 1;
  for (int32_t i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
    if (result > (int64_t{1} << 40)) {  // Plenty past kMaxCompleteBlocks.
      return result;
    }
  }
  return result;
}

// Cyclic difference sets D mod C: developing D (adding 0..C-1 to every
// element) yields a 2-design with b = C blocks and
// lambda = k*(k-1)/(C-1). The classics cover the small widths the
// projective-plane geometries exist for.
struct DifferenceSet {
  int32_t c;
  int32_t k;
  int32_t base[5];
};
constexpr DifferenceSet kDifferenceSets[] = {
    {7, 3, {0, 1, 3}},        // Fano plane, lambda = 1.
    {11, 5, {1, 3, 4, 5, 9}},  // Biplane, lambda = 2.
    {13, 4, {0, 1, 3, 9}},    // PG(2,3), lambda = 1.
    {21, 5, {0, 1, 6, 8, 18}},  // PG(2,4), lambda = 1.
};

}  // namespace

// Block design on num_disks points with block size stripe_width: `members`
// holds b sorted k-subsets, flattened.
struct DeclusteredLayout::Design {
  int32_t blocks = 0;
  std::vector<int32_t> members;  // [blocks * k], each block sorted.
};

DeclusteredLayout::Design DeclusteredLayout::BuildDesign(int32_t num_disks,
                                                         int32_t stripe_width) {
  Design design;
  const int32_t c = num_disks;
  const int32_t k = stripe_width;
  // 1. Tabulated cyclic difference set: b = C, smallest tables, 2-design.
  for (const DifferenceSet& ds : kDifferenceSets) {
    if (ds.c != c || ds.k != k) {
      continue;
    }
    design.blocks = c;
    design.members.reserve(static_cast<size_t>(c) * k);
    std::vector<int32_t> block(k);
    for (int32_t shift = 0; shift < c; ++shift) {
      for (int32_t i = 0; i < k; ++i) {
        const int32_t m = ds.base[i] + shift;
        block[i] = m >= c ? m - c : m;
      }
      std::sort(block.begin(), block.end());
      design.members.insert(design.members.end(), block.begin(), block.end());
    }
    return design;
  }
  // 2. Complete design (every k-subset): always a 2-design with
  // lambda = binom(C-2, k-2), when it fits the table budget.
  const int64_t complete_blocks = Binomial(c, k);
  if (complete_blocks <= kMaxCompleteBlocks) {
    design.blocks = static_cast<int32_t>(complete_blocks);
    design.members.reserve(static_cast<size_t>(complete_blocks) * k);
    std::vector<int32_t> subset(k);
    for (int32_t i = 0; i < k; ++i) {
      subset[i] = i;
    }
    while (true) {
      design.members.insert(design.members.end(), subset.begin(), subset.end());
      // Next k-subset in lexicographic order.
      int32_t i = k - 1;
      while (i >= 0 && subset[i] == c - k + i) {
        --i;
      }
      if (i < 0) {
        break;
      }
      ++subset[i];
      for (int32_t j = i + 1; j < k; ++j) {
        subset[j] = subset[j - 1] + 1;
      }
    }
    return design;
  }
  // 3. Cyclic consecutive intervals {i, .., i+k-1} mod C: b = C, r = k.
  // Declustered (every rebuild step reads only k-1 survivors) but not a
  // 2-design -- near neighbors of the failed disk absorb more rebuild reads
  // than distant ones.
  design.blocks = c;
  design.members.reserve(static_cast<size_t>(c) * k);
  std::vector<int32_t> block(k);
  for (int32_t start = 0; start < c; ++start) {
    for (int32_t i = 0; i < k; ++i) {
      const int32_t m = start + i;
      block[i] = m >= c ? m - c : m;
    }
    std::sort(block.begin(), block.end());
    design.members.insert(design.members.end(), block.begin(), block.end());
  }
  return design;
}

int64_t DeclusteredLayout::StripesFor(const Design& design, int32_t num_disks,
                                      int32_t stripe_width,
                                      int64_t disk_capacity_bytes,
                                      int64_t stripe_unit_bytes) {
  const int64_t units_per_disk = disk_capacity_bytes / stripe_unit_bytes;
  const int64_t r =
      static_cast<int64_t>(design.blocks) * stripe_width / num_disks;
  const int64_t rotations = units_per_disk / r;
  return rotations * design.blocks;
}

DeclusteredLayout::DeclusteredLayout(int32_t num_disks,
                                     int64_t stripe_unit_bytes,
                                     int64_t disk_capacity_bytes,
                                     int32_t parity_blocks,
                                     int32_t stripe_width)
    : DeclusteredLayout(num_disks, stripe_unit_bytes, disk_capacity_bytes,
                        parity_blocks, stripe_width,
                        BuildDesign(num_disks, stripe_width)) {}

DeclusteredLayout::DeclusteredLayout(int32_t num_disks,
                                     int64_t stripe_unit_bytes,
                                     int64_t disk_capacity_bytes,
                                     int32_t parity_blocks,
                                     int32_t stripe_width, Design design)
    : ArrayLayout(num_disks, stripe_unit_bytes, parity_blocks, stripe_width,
                  StripesFor(design, num_disks, stripe_width,
                             disk_capacity_bytes, stripe_unit_bytes)),
      blocks_(design.blocks),
      block_div_(design.blocks),
      period_div_(static_cast<int64_t>(design.blocks) * stripe_width) {
  assert(stripe_width < num_disks);
  assert(stripe_width >= parity_blocks + 1);
  // Every disk must appear in the same number of blocks (r); the generators
  // above guarantee it, this recomputes it from the tables.
  const int32_t c = num_disks;
  const int32_t k = stripe_width;
  assert(static_cast<int64_t>(blocks_) * k % c == 0);
  units_per_disk_per_rotation_ = static_cast<int32_t>(
      static_cast<int64_t>(blocks_) * k / c);
  rotations_ = num_stripes() / blocks_;
  assert(rotations_ > 0 &&
         "disk too small for one design rotation; use a smaller width or unit");

  member_disk_ = std::move(design.members);
  member_slot_.resize(member_disk_.size());
  uses_.assign(static_cast<size_t>(blocks_) * c, 0);
  std::vector<int32_t> used_so_far(c, 0);  // Blocks before t containing disk d.
  for (int32_t t = 0; t < blocks_; ++t) {
    for (int32_t pos = 0; pos < k; ++pos) {
      const int32_t d = member_disk_[static_cast<size_t>(t) * k + pos];
      assert(d >= 0 && d < c);
      assert(uses_[static_cast<size_t>(t) * c + d] == 0 &&
             "design block repeats a disk");
      uses_[static_cast<size_t>(t) * c + d] = 1;
      member_slot_[static_cast<size_t>(t) * k + pos] = used_so_far[d]++;
    }
  }
  for (int32_t d = 0; d < c; ++d) {
    assert(used_so_far[d] == units_per_disk_per_rotation_ &&
           "design is not disk-regular");
    (void)d;
  }

  // Role tables over the placement period b*k: stripe s sits in block
  // u mod b of rotation s / b, and the anchor parity position
  // (t + rot) mod k = (u mod b + u / b) mod k depends on s only through
  // u = s mod (b*k). Tabulating both turns every disk query into a single
  // FastDiv plus loads.
  const int64_t period = static_cast<int64_t>(blocks_) * k;
  u_to_t_.resize(period);
  anchor_pos_u_.resize(period);
  for (int64_t u = 0; u < period; ++u) {
    const auto t = static_cast<int32_t>(u % blocks_);
    const auto rot_mod_k = static_cast<int32_t>(u / blocks_);
    u_to_t_[u] = t;
    const int32_t p = t % k + rot_mod_k;  // < 2k.
    anchor_pos_u_[u] = p >= k ? p - k : p;
  }

  // Classify: 2-design iff every disk pair co-occurs in the same number of
  // blocks. Sets the balance guarantee tests and docs report.
  std::vector<int32_t> pair_count(static_cast<size_t>(c) * c, 0);
  for (int32_t t = 0; t < blocks_; ++t) {
    const int32_t* block = &member_disk_[static_cast<size_t>(t) * k];
    for (int32_t i = 0; i < k; ++i) {
      for (int32_t j = i + 1; j < k; ++j) {
        ++pair_count[static_cast<size_t>(block[i]) * c + block[j]];
      }
    }
  }
  pair_lambda_ = pair_count[1];  // Pair (0, 1).
  pair_balanced_ = true;
  for (int32_t i = 0; i < c && pair_balanced_; ++i) {
    for (int32_t j = i + 1; j < c; ++j) {
      if (pair_count[static_cast<size_t>(i) * c + j] != pair_lambda_) {
        pair_balanced_ = false;
        break;
      }
    }
  }
  if (!pair_balanced_) {
    pair_lambda_ = 0;
  }
}

int32_t DeclusteredLayout::ParityDisk(int64_t stripe, int32_t which) const {
  assert(which >= 0 && which < parity_blocks());
  const int64_t u = period_div_.Mod(stripe);
  // Parity fills the positions just left of the anchor (inclusive), data the
  // ones right of it -- the same role ring as the left-symmetric layout,
  // rotated by block index and rotation so every member disk takes every
  // role across a full k rotations.
  int32_t pos = AnchorPosAt(u) - (parity_blocks() - 1 - which);
  if (pos < 0) {
    pos += stripe_width();
  }
  return member_disk_[static_cast<size_t>(u_to_t_[u]) * stripe_width() + pos];
}

int32_t DeclusteredLayout::DataDisk(int64_t stripe, int32_t j) const {
  assert(j >= 0 && j < data_blocks_per_stripe());
  const int64_t u = period_div_.Mod(stripe);
  int32_t pos = AnchorPosAt(u) + 1 + j;  // < 2k.
  if (pos >= stripe_width()) {
    pos -= stripe_width();
  }
  return member_disk_[static_cast<size_t>(u_to_t_[u]) * stripe_width() + pos];
}

BlockLoc DeclusteredLayout::DataLocation(int64_t stripe, int32_t j) const {
  assert(j >= 0 && j < data_blocks_per_stripe());
  const int64_t u = period_div_.Mod(stripe);
  const int64_t rot = block_div_.Div(stripe);
  int32_t pos = AnchorPosAt(u) + 1 + j;
  if (pos >= stripe_width()) {
    pos -= stripe_width();
  }
  return LocAt(u_to_t_[u], rot, pos);
}

BlockLoc DeclusteredLayout::ParityLocation(int64_t stripe, int32_t which) const {
  assert(which >= 0 && which < parity_blocks());
  const int64_t u = period_div_.Mod(stripe);
  const int64_t rot = block_div_.Div(stripe);
  int32_t pos = AnchorPosAt(u) - (parity_blocks() - 1 - which);
  if (pos < 0) {
    pos += stripe_width();
  }
  return LocAt(u_to_t_[u], rot, pos);
}

int32_t DeclusteredLayout::AutoWidth(int32_t num_disks, int32_t parity_blocks) {
  int32_t k = (num_disks + 2) / 2;
  k = std::max(k, parity_blocks + 2);
  k = std::min(k, num_disks - 1);
  return k;
}

std::unique_ptr<ArrayLayout> MakeLayout(LayoutKind kind, int32_t num_disks,
                                        int64_t stripe_unit_bytes,
                                        int64_t disk_capacity_bytes,
                                        int32_t parity_blocks,
                                        int32_t decluster_width) {
  if (kind == LayoutKind::kDeclustered) {
    const int32_t k = decluster_width > 0
                          ? decluster_width
                          : DeclusteredLayout::AutoWidth(num_disks, parity_blocks);
    if (k >= parity_blocks + 2 && k < num_disks) {
      return std::make_unique<DeclusteredLayout>(
          num_disks, stripe_unit_bytes, disk_capacity_bytes, parity_blocks, k);
    }
    // Too few disks to decluster (a k-unit stripe needs k < C): fall back.
  }
  return std::make_unique<StripeLayout>(num_disks, stripe_unit_bytes,
                                        disk_capacity_bytes, parity_blocks);
}

}  // namespace afraid
