// Array layouts: mappings between the array's logical data space and
// per-disk block addresses.
//
// Two placements implement the common ArrayLayout concept:
//
//  * StripeLayout -- the paper's "straightforward left-symmetric RAID 5 data
//    layout" (Section 2). With num_disks = 5 the placement is the classic
//    picture:
//
//      disk:    0    1    2    3    4
//      S0:     D0   D1   D2   D3   P0
//      S1:     D5   D6   D7   P1   D4
//      S2:    D10  D11   P2   D8   D9
//      S3:    D15   P3  D12  D13  D14
//      S4:     P4  D16  D17  D18  D19
//
//    Parity rotates right-to-left; the data blocks of a stripe start just
//    right of the parity (wrapping), so consecutive logical blocks visit
//    every disk once per num_disks blocks -- the property that makes large
//    sequential accesses N+1-way parallel. The same class also supports a
//    second rotating parity block (P+Q) for the Section 5 RAID 6 + AFRAID
//    extension.
//
//  * DeclusteredLayout (array/decluster.h) -- parity declustering via block
//    designs: stripes are only `k < num_disks` units wide, placed by a
//    balanced incomplete block design so a rebuild reads just a fraction
//    (k-1)/(num_disks-1) of each surviving disk.
//
// Everything that depends only on the stripe *geometry* (unit size, data
// blocks per stripe) -- request splitting, logical<->stripe address math --
// lives non-virtually in the base class on strength-reduced divisors, so the
// request hot path is shared and branch-free. Only the placement queries
// (which disk, which byte offset) dispatch virtually, and both concrete
// layouts are `final`, so calls through a concrete type devirtualize.

#ifndef AFRAID_ARRAY_LAYOUT_H_
#define AFRAID_ARRAY_LAYOUT_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace afraid {

// Unsigned division by a positive divisor fixed at construction,
// strength-reduced Granlund-Montgomery style: a power-of-two divisor becomes
// a shift, anything else a 128-bit multiply by floor(2^64/d)+1. With
// m = floor(2^64/d)+1 and e = m*d - 2^64 (0 < e <= d), mulhi(n, m) equals
// floor(n/d) exactly for every n with n*e < 2^64; dividends above that bound
// (never hit by byte offsets into an array) fall back to hardware divide.
// The request hot loop (Split/StripeOfOffset/DataDisk per segment) runs on
// these instead of div/mod against runtime-variable operands.
class FastDiv64 {
 public:
  FastDiv64() : FastDiv64(1) {}
  explicit FastDiv64(int64_t divisor) {
    assert(divisor > 0);
    d_ = static_cast<uint64_t>(divisor);
    shift_ = 0;
    while ((uint64_t{1} << shift_) < d_) {
      ++shift_;
    }
    if ((uint64_t{1} << shift_) == d_) {  // Power of two (including 1).
      magic_ = 0;
      limit_ = ~uint64_t{0};
      return;
    }
    magic_ = ~uint64_t{0} / d_ + 1;                  // floor(2^64/d) + 1.
    const uint64_t excess = magic_ * d_;             // e = m*d mod 2^64.
    limit_ = ~uint64_t{0} / excess;                  // n <= limit_ => n*e < 2^64.
  }

  int64_t divisor() const { return static_cast<int64_t>(d_); }

  // Requires n >= 0.
  int64_t Div(int64_t n) const {
    assert(n >= 0);
    const auto u = static_cast<uint64_t>(n);
    if (magic_ == 0) {
      return static_cast<int64_t>(u >> shift_);
    }
    if (u > limit_) {
      return static_cast<int64_t>(u / d_);
    }
    return static_cast<int64_t>(static_cast<uint64_t>(
        (static_cast<unsigned __int128>(u) * magic_) >> 64));
  }

  int64_t Mod(int64_t n) const { return n - Div(n) * static_cast<int64_t>(d_); }

 private:
  uint64_t d_ = 1;
  uint64_t magic_ = 0;   // 0 marks the shift path.
  uint64_t limit_ = 0;   // Largest exact dividend for the multiply path.
  int32_t shift_ = 0;
};

// Which placement maps stripes onto disks (core/array_config.h selects one;
// MakeLayout in array/decluster.h constructs it).
enum class LayoutKind : int32_t {
  kLeftSymmetric = 0,  // Classic rotated RAID 5/6 placement (StripeLayout).
  kDeclustered = 1,    // Block-design parity declustering (DeclusteredLayout).
};

const char* LayoutKindName(LayoutKind kind);
// Parses "left-symmetric" / "declustered" (CLI --layout values). Returns
// false, leaving *kind untouched, for anything else.
bool LayoutKindFromName(const char* name, LayoutKind* kind);

// Physical location of one stripe unit: disk index and byte offset on disk.
struct BlockLoc {
  int32_t disk = 0;
  int64_t byte_offset = 0;

  bool operator==(const BlockLoc&) const = default;
};

// A stripe-unit-aligned fragment of a client request.
struct Segment {
  int64_t stripe = 0;        // Stripe index.
  int32_t block_in_stripe = 0;  // Data-block index j within the stripe, [0, N).
  int64_t logical_offset = 0;   // Byte offset in the array's data space.
  int32_t offset_in_block = 0;  // Byte offset within the stripe unit.
  int32_t length = 0;           // Bytes, <= stripe_unit - offset_in_block.
};

// The placement concept every controller, plan compiler and test talks to.
// A layout is immutable after construction; all queries are const and
// allocation-free (SplitInto appends into a caller-owned vector).
class ArrayLayout {
 public:
  virtual ~ArrayLayout() = default;

  int32_t num_disks() const { return num_disks_; }
  int64_t stripe_unit() const { return stripe_unit_; }
  int32_t parity_blocks() const { return parity_blocks_; }
  // k: units per stripe (data + parity). num_disks for the left-symmetric
  // layout, the design's block size for a declustered one.
  int32_t stripe_width() const { return stripe_width_; }
  // N: data blocks per stripe.
  int32_t data_blocks_per_stripe() const {
    return stripe_width_ - parity_blocks_;
  }
  int64_t num_stripes() const { return num_stripes_; }
  // Client-visible capacity.
  int64_t data_capacity_bytes() const {
    return num_stripes_ * data_blocks_per_stripe() * stripe_unit_;
  }

  // Registry-stable placement name ("left-symmetric", "declustered").
  virtual const char* LayoutName() const = 0;

  // Bytes of each disk occupied by stripe units (data + parity). Anything
  // beyond this on a disk is free for scheme-private regions (the parity
  // log's on-disk log region starts here).
  virtual int64_t DiskDataBytes() const = 0;

  // Disk holding parity block `which` (0 = P, 1 = Q) of `stripe`.
  virtual int32_t ParityDisk(int64_t stripe, int32_t which = 0) const = 0;
  // Disk holding data block j of `stripe`.
  virtual int32_t DataDisk(int64_t stripe, int32_t j) const = 0;

  // Physical location of data block j of `stripe` / parity of `stripe`.
  virtual BlockLoc DataLocation(int64_t stripe, int32_t j) const = 0;
  virtual BlockLoc ParityLocation(int64_t stripe, int32_t which = 0) const = 0;

  // True when `stripe` places any unit (data or parity) on `disk`. The
  // rebuild sweeps skip stripes that do not involve the replaced disk;
  // always true for the left-symmetric layout, where every stripe spans
  // every disk.
  virtual bool StripeUsesDisk(int64_t stripe, int32_t disk) const {
    (void)stripe;
    (void)disk;
    return true;
  }

  // --- Geometry-only math, shared by all placements -------------------------

  // Logical (byte) address -> stripe of the containing unit.
  int64_t StripeOfOffset(int64_t logical_offset) const {
    assert(logical_offset >= 0 && logical_offset < data_capacity_bytes());
    return stripe_bytes_div_.Div(logical_offset);
  }

  // Splits a byte range of the logical data space into stripe-unit segments.
  // Segments come out with monotonically nondecreasing stripe numbers, so a
  // per-stripe grouping is a contiguous-run scan of the result.
  std::vector<Segment> Split(int64_t logical_offset, int64_t length) const;

  // Allocation-free variant: clears `segments` and appends into it, reusing
  // its capacity. The request fast path feeds this from a pooled vector.
  void SplitInto(int64_t logical_offset, int64_t length,
                 std::vector<Segment>* segments) const;

  // Inverse check helper: logical byte offset of data block j of stripe s.
  int64_t LogicalOffsetOf(int64_t stripe, int32_t j) const {
    return (stripe * data_blocks_per_stripe() + j) * stripe_unit_;
  }

 protected:
  ArrayLayout(int32_t num_disks, int64_t stripe_unit_bytes,
              int32_t parity_blocks, int32_t stripe_width, int64_t num_stripes);

  ArrayLayout(const ArrayLayout&) = default;
  ArrayLayout& operator=(const ArrayLayout&) = default;

 private:
  int32_t num_disks_;
  int64_t stripe_unit_;
  int32_t parity_blocks_;
  int32_t stripe_width_;
  int64_t num_stripes_;
  // Strength-reduced divisors for the per-request mapping math.
  FastDiv64 unit_div_;          // By stripe_unit_.
  FastDiv64 data_div_;          // By data_blocks_per_stripe().
  FastDiv64 stripe_bytes_div_;  // By stripe_unit_ * data_blocks_per_stripe().
};

class StripeLayout final : public ArrayLayout {
 public:
  // `disk_capacity_bytes` is the usable capacity of each (identical) disk;
  // `parity_blocks` is 1 for RAID 5 / AFRAID (and RAID 0 modelled as an
  // AFRAID that never rebuilds), or 2 for RAID 6.
  StripeLayout(int32_t num_disks, int64_t stripe_unit_bytes, int64_t disk_capacity_bytes,
               int32_t parity_blocks = 1);

  const char* LayoutName() const override { return "left-symmetric"; }
  // Every stripe stores one unit per disk at byte offset stripe * unit.
  int64_t DiskDataBytes() const override { return num_stripes() * stripe_unit(); }

  int32_t ParityDisk(int64_t stripe, int32_t which = 0) const override;
  int32_t DataDisk(int64_t stripe, int32_t j) const override;
  BlockLoc DataLocation(int64_t stripe, int32_t j) const override;
  BlockLoc ParityLocation(int64_t stripe, int32_t which = 0) const override;

 private:
  // Anchor parity disk of `stripe` (Q when there are two parity blocks).
  int32_t AnchorDisk(int64_t stripe) const {
    return static_cast<int32_t>(num_disks() - 1 - disks_div_.Mod(stripe));
  }

  FastDiv64 disks_div_;  // By num_disks().
};

}  // namespace afraid

#endif  // AFRAID_ARRAY_LAYOUT_H_
