// Array-controller caches.
//
// The paper deliberately made these small so that AFRAID's effects, not
// caching effects, dominate: "we chose a small (256KB) write staging area
// with a write-through policy together with a small (256KB) read cache with
// no array-level readahead" (Section 4.1). Because the staging area is
// write-through, a cached block always equals the on-disk block, which is
// what lets a RAID 5 read-modify-write skip the old-data pre-read on a cache
// hit ("unless it is already cached in the array controller", Section 1).
//
// Granularity is one stripe unit; a 256 KB cache over 8 KB units is 32 slots.

#ifndef AFRAID_ARRAY_CACHE_H_
#define AFRAID_ARRAY_CACHE_H_

#include <cassert>
#include <cstdint>
#include <list>
#include <unordered_map>

namespace afraid {

// LRU set of stripe-unit indices (logical data-block numbers). Presence
// means "the controller holds a copy identical to the on-disk contents".
class BlockLruCache {
 public:
  BlockLruCache(int64_t capacity_bytes, int64_t block_bytes)
      : max_blocks_(capacity_bytes / block_bytes) {
    assert(block_bytes > 0);
  }

  // True (and refreshes recency) if the block is cached. Counts a hit or a
  // miss for the statistics.
  bool Lookup(int64_t block) {
    auto it = index_.find(block);
    if (it == index_.end()) {
      ++misses_;
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
  }

  // Peek without stats/recency side effects.
  bool Contains(int64_t block) const { return index_.contains(block); }

  // Inserts (or refreshes) a block, evicting the least recently used.
  void Insert(int64_t block) {
    if (max_blocks_ == 0) {
      return;
    }
    auto it = index_.find(block);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.push_front(block);
    index_[block] = lru_.begin();
    if (static_cast<int64_t>(lru_.size()) > max_blocks_) {
      index_.erase(lru_.back());
      lru_.pop_back();
    }
  }

  // Drops a block (e.g. contents no longer match disk).
  void Invalidate(int64_t block) {
    auto it = index_.find(block);
    if (it != index_.end()) {
      lru_.erase(it->second);
      index_.erase(it);
    }
  }

  int64_t Size() const { return static_cast<int64_t>(lru_.size()); }
  int64_t Capacity() const { return max_blocks_; }
  uint64_t Hits() const { return hits_; }
  uint64_t Misses() const { return misses_; }

 private:
  int64_t max_blocks_;
  std::list<int64_t> lru_;  // Front = most recent.
  std::unordered_map<int64_t, std::list<int64_t>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace afraid

#endif  // AFRAID_ARRAY_CACHE_H_
