// Array-controller caches.
//
// The paper deliberately made these small so that AFRAID's effects, not
// caching effects, dominate: "we chose a small (256KB) write staging area
// with a write-through policy together with a small (256KB) read cache with
// no array-level readahead" (Section 4.1). Because the staging area is
// write-through, a cached block always equals the on-disk block, which is
// what lets a RAID 5 read-modify-write skip the old-data pre-read on a cache
// hit ("unless it is already cached in the array controller", Section 1).
//
// Granularity is one stripe unit; a 256 KB cache over 8 KB units is 32 slots.
// The representation is flat and allocation-free after construction: fixed
// slot array, intrusive index-linked LRU list, and an open-addressed index
// with backward-shift deletion -- no std::list / node-map churn on the
// per-request path.

#ifndef AFRAID_ARRAY_CACHE_H_
#define AFRAID_ARRAY_CACHE_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace afraid {

// LRU set of stripe-unit indices (logical data-block numbers). Presence
// means "the controller holds a copy identical to the on-disk contents".
class BlockLruCache {
 public:
  BlockLruCache(int64_t capacity_bytes, int64_t block_bytes)
      : max_blocks_(capacity_bytes / block_bytes) {
    assert(block_bytes > 0);
    slots_.resize(static_cast<size_t>(max_blocks_));
    free_slots_.reserve(static_cast<size_t>(max_blocks_));
    for (int32_t i = static_cast<int32_t>(max_blocks_) - 1; i >= 0; --i) {
      free_slots_.push_back(i);
    }
    // Bucket count: smallest power of two >= 2 * capacity (min 8), so the
    // open-addressed index stays at most half full.
    size_t buckets = 8;
    while (buckets < static_cast<size_t>(max_blocks_) * 2) {
      buckets *= 2;
    }
    buckets_.assign(buckets, kEmpty);
  }

  // True (and refreshes recency) if the block is cached. Counts a hit or a
  // miss for the statistics.
  bool Lookup(int64_t block) {
    const int32_t s = FindSlot(block);
    if (s == kEmpty) {
      ++misses_;
      return false;
    }
    MoveToFront(s);
    ++hits_;
    return true;
  }

  // Peek without stats/recency side effects.
  bool Contains(int64_t block) const { return FindSlot(block) != kEmpty; }

  // Inserts (or refreshes) a block, evicting the least recently used.
  void Insert(int64_t block) {
    if (max_blocks_ == 0) {
      return;
    }
    const int32_t existing = FindSlot(block);
    if (existing != kEmpty) {
      MoveToFront(existing);
      return;
    }
    if (free_slots_.empty()) {
      EvictTail();
    }
    const int32_t s = free_slots_.back();
    free_slots_.pop_back();
    slots_[s].key = block;
    LinkFront(s);
    IndexInsert(block, s);
  }

  // Drops a block (e.g. contents no longer match disk).
  void Invalidate(int64_t block) {
    const int32_t s = FindSlot(block);
    if (s != kEmpty) {
      IndexErase(block);
      Unlink(s);
      free_slots_.push_back(s);
    }
  }

  int64_t Size() const {
    return max_blocks_ - static_cast<int64_t>(free_slots_.size());
  }
  int64_t Capacity() const { return max_blocks_; }
  uint64_t Hits() const { return hits_; }
  uint64_t Misses() const { return misses_; }

 private:
  static constexpr int32_t kEmpty = -1;

  struct Slot {
    int64_t key = 0;
    int32_t prev = kEmpty;  // LRU links (index into slots_).
    int32_t next = kEmpty;
  };

  size_t Bucket(int64_t key) const {
    // Fibonacci hash of the block number onto the bucket ring.
    return static_cast<size_t>(
               (static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull) >> 32) &
           (buckets_.size() - 1);
  }

  int32_t FindSlot(int64_t key) const {
    if (max_blocks_ == 0) {
      return kEmpty;
    }
    const size_t mask = buckets_.size() - 1;
    for (size_t b = Bucket(key);; b = (b + 1) & mask) {
      const int32_t s = buckets_[b];
      if (s == kEmpty) {
        return kEmpty;
      }
      if (slots_[s].key == key) {
        return s;
      }
    }
  }

  void IndexInsert(int64_t key, int32_t slot) {
    const size_t mask = buckets_.size() - 1;
    size_t b = Bucket(key);
    while (buckets_[b] != kEmpty) {
      b = (b + 1) & mask;
    }
    buckets_[b] = slot;
  }

  void IndexErase(int64_t key) {
    const size_t mask = buckets_.size() - 1;
    size_t b = Bucket(key);
    while (slots_[buckets_[b]].key != key) {
      b = (b + 1) & mask;
    }
    // Backward-shift deletion keeps probe chains contiguous.
    size_t hole = b;
    buckets_[hole] = kEmpty;
    for (size_t i = (hole + 1) & mask; buckets_[i] != kEmpty;
         i = (i + 1) & mask) {
      const size_t home = Bucket(slots_[buckets_[i]].key);
      // Move i's entry into the hole if its probe chain passes through it,
      // i.e. the hole lies in [home, i] on the ring.
      const size_t dist_hole = (hole - home) & mask;
      const size_t dist_i = (i - home) & mask;
      if (dist_hole <= dist_i) {
        buckets_[hole] = buckets_[i];
        buckets_[i] = kEmpty;
        hole = i;
      }
    }
  }

  void LinkFront(int32_t s) {
    slots_[s].prev = kEmpty;
    slots_[s].next = head_;
    if (head_ != kEmpty) {
      slots_[head_].prev = s;
    }
    head_ = s;
    if (tail_ == kEmpty) {
      tail_ = s;
    }
  }

  void Unlink(int32_t s) {
    Slot& sl = slots_[s];
    if (sl.prev != kEmpty) {
      slots_[sl.prev].next = sl.next;
    } else {
      head_ = sl.next;
    }
    if (sl.next != kEmpty) {
      slots_[sl.next].prev = sl.prev;
    } else {
      tail_ = sl.prev;
    }
  }

  void MoveToFront(int32_t s) {
    if (head_ == s) {
      return;
    }
    Unlink(s);
    LinkFront(s);
  }

  void EvictTail() {
    const int32_t s = tail_;
    assert(s != kEmpty);
    IndexErase(slots_[s].key);
    Unlink(s);
    free_slots_.push_back(s);
  }

  int64_t max_blocks_;
  std::vector<Slot> slots_;          // Fixed at max_blocks_ entries.
  std::vector<int32_t> free_slots_;  // Unused slot indices.
  std::vector<int32_t> buckets_;     // Open-addressed index into slots_.
  int32_t head_ = kEmpty;            // Most recently used.
  int32_t tail_ = kEmpty;            // Least recently used.
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace afraid

#endif  // AFRAID_ARRAY_CACHE_H_
