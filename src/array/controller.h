// Abstract interface of an array controller, as seen by the host driver.

#ifndef AFRAID_ARRAY_CONTROLLER_H_
#define AFRAID_ARRAY_CONTROLLER_H_

#include <cstdint>

#include "array/request.h"

namespace afraid {

class ArrayController {
 public:
  virtual ~ArrayController() = default;

  // Starts a client request; `done` fires at its completion time. The caller
  // (host driver) is responsible for concurrency limiting; the controller
  // accepts everything it is given.
  virtual void Submit(const ClientRequest& request, RequestDone done) = 0;

  // Client-visible capacity in bytes.
  virtual int64_t DataCapacityBytes() const = 0;
};

}  // namespace afraid

#endif  // AFRAID_ARRAY_CONTROLLER_H_
