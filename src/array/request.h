// Client-visible request type for the array.

#ifndef AFRAID_ARRAY_REQUEST_H_
#define AFRAID_ARRAY_REQUEST_H_

#include <cstdint>

#include "array/layout.h"
#include "sim/callback.h"
#include "sim/time.h"

namespace afraid {

struct ClientRequest {
  uint64_t id = 0;       // Unique per request (assigned by the host driver).
  int64_t offset = 0;    // Byte offset into the array's logical data space.
  int32_t size = 0;      // Bytes; > 0, sector-aligned.
  bool is_write = false;
  SimTime arrival = 0;   // When the request entered the host device driver.
  // Precompiled Split() of [offset, offset+size), when the request comes
  // from a RequestPlan (see array/plan.h). Owned by the plan and stable for
  // the whole run, so controllers use it in place of SplitInto and hold
  // spans into it across continuations. Null for unplanned requests.
  const Segment* plan_segs = nullptr;
  int32_t plan_seg_count = 0;
};

// Completion notification: fires when the array has finished the request.
// Sized so the host driver's [driver, request] capture stays inline.
using RequestDone = SmallCallback<void(), 48>;

}  // namespace afraid

#endif  // AFRAID_ARRAY_REQUEST_H_
