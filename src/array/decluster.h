// Parity declustering: block-design placement with stripes narrower than the
// array (Holland & Gibson; the t-design construction from the PAPERS.md entry
// "Parity Declustering for Fault-Tolerant Storage Systems via t-designs").
//
// A stripe is k < C units wide (C = disks). Which k disks each stripe lives
// on comes from a block design on C points with block size k: b blocks, each
// disk a member of r = b*k/C of them. Stripe s maps to block s mod b within
// rotation s / b; one rotation consumes exactly r units of every disk, so the
// placement tiles each disk perfectly. When the design is a 2-design (every
// disk *pair* co-occurs in exactly lambda blocks), the rebuild of one disk
// reads exactly lambda units per rotation from every survivor -- perfectly
// balanced -- while touching only the fraction
//
//     alpha = (k-1) / (C-1)
//
// of each survivor (the declustering ratio). That shortens the
// reconstruction window AFRAID's vulnerability periods are dominated by, at
// the cost of parity overhead 1/k instead of 1/C.
//
// The design is compiled at construction into flat per-block tables (member
// disk, per-rotation slot, membership bitmap), so the request hot path stays
// exactly what the left-symmetric layout's is: FastDiv64 + table loads. No
// per-segment modular search. Table memory is O(b * (k + C)) int32s --
// independent of disk capacity; rotations reuse the same tables with a
// rotated role assignment (anchor position shifts by rotation mod k) so
// parity still spreads across all members. The role rotation is itself
// periodic in stripe mod (b*k), so block index and anchor position are
// precompiled over that period and a disk query costs one FastDiv.
//
// Design sources, in order of preference for given (C, k):
//   1. Tabulated cyclic difference sets (Fano plane (7,3), projective plane
//      (13,4)): b = C blocks, lambda = 1 -- minimal tables, perfect balance.
//   2. The complete design (all C-choose-k subsets) when it fits in a small
//      table budget: lambda = (C-2 choose k-2), always a 2-design.
//   3. Cyclic consecutive intervals {i, .., i+k-1} mod C: b = C, always
//      available; rebuild still touches only k-1 units per stripe but
//      per-survivor balance is approximate (pair_balanced() == false).

#ifndef AFRAID_ARRAY_DECLUSTER_H_
#define AFRAID_ARRAY_DECLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "array/layout.h"

namespace afraid {

class DeclusteredLayout final : public ArrayLayout {
 public:
  // `stripe_width` = k, must satisfy parity_blocks + 1 <= k < num_disks.
  // Capacity is consumed in whole rotations (r units per disk each); the
  // remainder past the last whole rotation is unused, mirroring how
  // StripeLayout drops the partial trailing stripe.
  DeclusteredLayout(int32_t num_disks, int64_t stripe_unit_bytes,
                    int64_t disk_capacity_bytes, int32_t parity_blocks,
                    int32_t stripe_width);

  const char* LayoutName() const override { return "declustered"; }
  int64_t DiskDataBytes() const override {
    return rotations_ * units_per_disk_per_rotation_ * stripe_unit();
  }

  int32_t ParityDisk(int64_t stripe, int32_t which = 0) const override;
  int32_t DataDisk(int64_t stripe, int32_t j) const override;
  BlockLoc DataLocation(int64_t stripe, int32_t j) const override;
  BlockLoc ParityLocation(int64_t stripe, int32_t which = 0) const override;
  bool StripeUsesDisk(int64_t stripe, int32_t disk) const override {
    return uses_[block_div_.Mod(stripe) * num_disks() + disk] != 0;
  }

  // --- Design introspection (tests, docs, benches) --------------------------

  // b: blocks (stripes) per rotation.
  int32_t blocks_per_rotation() const { return blocks_; }
  // r = b*k/C: stripe units every disk contributes to one rotation.
  int32_t units_per_disk_per_rotation() const {
    return units_per_disk_per_rotation_;
  }
  int64_t rotations() const { return rotations_; }
  // True when the compiled design is a 2-design: every disk pair co-occurs
  // in exactly lambda blocks, so rebuild reads are exactly balanced across
  // survivors. The consecutive-interval fallback is declustered but only
  // approximately balanced.
  bool pair_balanced() const { return pair_balanced_; }
  // lambda of the 2-design (0 when !pair_balanced()).
  int32_t pair_lambda() const { return pair_lambda_; }
  // Fraction of each surviving disk a single-disk rebuild reads.
  double declustering_ratio() const {
    return static_cast<double>(stripe_width() - 1) / (num_disks() - 1);
  }
  // Bytes of compiled placement tables.
  size_t TableBytes() const {
    return (member_disk_.size() + member_slot_.size() + u_to_t_.size() +
            anchor_pos_u_.size()) *
               sizeof(int32_t) +
           uses_.size();
  }

  // Default stripe width for C disks: about half the array, clamped so a
  // stripe keeps at least two data blocks and stays narrower than the array.
  static int32_t AutoWidth(int32_t num_disks, int32_t parity_blocks);

 private:
  struct Design;  // A compiled block design (decluster.cc).
  static Design BuildDesign(int32_t num_disks, int32_t stripe_width);
  static int64_t StripesFor(const Design& design, int32_t num_disks,
                            int32_t stripe_width, int64_t disk_capacity_bytes,
                            int64_t stripe_unit_bytes);
  DeclusteredLayout(int32_t num_disks, int64_t stripe_unit_bytes,
                    int64_t disk_capacity_bytes, int32_t parity_blocks,
                    int32_t stripe_width, Design design);

  // The block index and anchor parity position depend on the stripe only
  // through u = stripe mod (b*k), so both are precompiled into tables over
  // that period: a disk query is ONE FastDiv plus loads, the same op count
  // as the left-symmetric layout (the BM_LayoutMapDecl gate pins this).
  int32_t AnchorPosAt(int64_t u) const { return anchor_pos_u_[u]; }
  // Unit position -> physical location within block t of rotation rot.
  BlockLoc LocAt(int64_t t, int64_t rot, int32_t pos) const {
    const size_t cell = static_cast<size_t>(t) * stripe_width() + pos;
    return BlockLoc{member_disk_[cell],
                    (rot * units_per_disk_per_rotation_ + member_slot_[cell]) *
                        stripe_unit()};
  }

  int32_t blocks_ = 0;                      // b
  int32_t units_per_disk_per_rotation_ = 0;  // r
  int64_t rotations_ = 0;
  bool pair_balanced_ = false;
  int32_t pair_lambda_ = 0;
  std::vector<int32_t> member_disk_;  // [b*k]: sorted member disks per block.
  std::vector<int32_t> member_slot_;  // [b*k]: per-rotation slot on that disk.
  std::vector<uint8_t> uses_;         // [b*C]: membership bitmap.
  std::vector<int32_t> u_to_t_;       // [b*k]: stripe mod b*k -> block index.
  std::vector<int32_t> anchor_pos_u_;  // [b*k]: -> anchor parity position.
  FastDiv64 block_div_;               // By b: stripe -> (rotation, block).
  FastDiv64 period_div_;              // By b*k: stripe -> role-table index.
};

// Constructs the layout `kind` selects. `decluster_width` is the declustered
// stripe width k; 0 picks DeclusteredLayout::AutoWidth. Falls back to the
// left-symmetric layout when declustering is degenerate for the geometry
// (k >= num_disks after clamping -- e.g. 3-disk arrays).
std::unique_ptr<ArrayLayout> MakeLayout(LayoutKind kind, int32_t num_disks,
                                        int64_t stripe_unit_bytes,
                                        int64_t disk_capacity_bytes,
                                        int32_t parity_blocks,
                                        int32_t decluster_width = 0);

}  // namespace afraid

#endif  // AFRAID_ARRAY_DECLUSTER_H_
