#include "sim/time.h"

#include <cinttypes>
#include <cstdio>

namespace afraid {

std::string FormatDuration(SimDuration d) {
  char buf[64];
  const double abs = d < 0 ? -static_cast<double>(d) : static_cast<double>(d);
  if (abs < 1e3) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", d);
  } else if (abs < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3gus", static_cast<double>(d) / 1e3);
  } else if (abs < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.4gms", static_cast<double>(d) / 1e6);
  } else if (abs < 3.6e12) {
    std::snprintf(buf, sizeof(buf), "%.4gs", static_cast<double>(d) / 1e9);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4gh", static_cast<double>(d) / 3.6e12);
  }
  return buf;
}

}  // namespace afraid
