#include "sim/simulator.h"

namespace afraid {

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.Empty()) {
    const SimTime next = queue_.NextTime();
    if (next > deadline) {
      break;
    }
    auto fired = queue_.PopNext();
    now_ = fired.time;
    ++events_processed_;
    fired.fn();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void Simulator::RunToEnd() {
  while (Step()) {
  }
}

bool Simulator::Step() {
  if (queue_.Empty()) {
    return false;
  }
  auto fired = queue_.PopNext();
  now_ = fired.time;
  ++events_processed_;
  fired.fn();
  return true;
}

}  // namespace afraid
