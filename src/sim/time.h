// Simulated time for the AFRAID discrete-event simulator.
//
// All simulated time is kept as a signed 64-bit count of nanoseconds. A signed
// type makes interval arithmetic (deadline - now) safe, and 64 bits of
// nanoseconds covers ~292 years of simulated time, far beyond any experiment
// in this repository.

#ifndef AFRAID_SIM_TIME_H_
#define AFRAID_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace afraid {

// A point in simulated time, in nanoseconds since the start of the simulation.
using SimTime = int64_t;

// A span of simulated time, in nanoseconds.
using SimDuration = int64_t;

inline constexpr SimTime kSimTimeNever = INT64_MAX;

// Duration constructors. Usage: `Milliseconds(100)`, `Seconds(3.5)`.
constexpr SimDuration Nanoseconds(int64_t n) { return n; }
constexpr SimDuration Microseconds(int64_t n) { return n * 1'000; }
constexpr SimDuration Milliseconds(int64_t n) { return n * 1'000'000; }
constexpr SimDuration Seconds(int64_t n) { return n * 1'000'000'000; }
constexpr SimDuration Minutes(int64_t n) { return n * 60'000'000'000; }
constexpr SimDuration Hours(int64_t n) { return n * 3'600'000'000'000; }

// Floating-point duration constructors, for model parameters that are
// naturally fractional (e.g. a 9.4 ms seek). Rounds to the nearest nanosecond.
constexpr SimDuration MicrosecondsF(double us) {
  return static_cast<SimDuration>(us * 1e3 + (us >= 0 ? 0.5 : -0.5));
}
constexpr SimDuration MillisecondsF(double ms) {
  return static_cast<SimDuration>(ms * 1e6 + (ms >= 0 ? 0.5 : -0.5));
}
constexpr SimDuration SecondsF(double s) {
  return static_cast<SimDuration>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

// Conversions back to floating point units.
constexpr double ToMicroseconds(SimDuration d) { return static_cast<double>(d) / 1e3; }
constexpr double ToMilliseconds(SimDuration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / 1e9; }
constexpr double ToHours(SimDuration d) { return static_cast<double>(d) / 3.6e12; }

// Renders a duration with an adaptive unit, e.g. "12.3ms", "4.56s".
std::string FormatDuration(SimDuration d);

}  // namespace afraid

#endif  // AFRAID_SIM_TIME_H_
