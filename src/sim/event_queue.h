// A cancellable min-heap event queue for discrete-event simulation.
//
// Events scheduled for the same instant fire in scheduling order (a strict
// FIFO tie-break on an insertion sequence number), which keeps simulations
// deterministic regardless of heap internals. The pop order is therefore a
// pure function of the Schedule/Cancel history -- heap arity and slab layout
// cannot change results.
//
// Internals: callbacks live in a slab of reusable slots; the heap itself is a
// 4-ary implicit heap of small POD entries (time, seq, slot, generation).
// EventIds embed the slot index and a per-slot generation stamp, so Cancel()
// is a bounds check plus a generation compare -- O(1), no hashing -- and a
// stale id (already fired, already cancelled, or recycled) simply fails the
// compare. Cancellation is lazy: the dead heap entry is skimmed when it
// reaches the top. Callbacks use EventCallback (small-buffer, move-only), so
// scheduling an event performs no per-event heap allocation for ordinary
// captures.

#ifndef AFRAID_SIM_EVENT_QUEUE_H_
#define AFRAID_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace afraid {

// Opaque handle identifying a scheduled event: generation stamp in the high
// 32 bits, slot index in the low 32. Zero is never a valid id (generation
// stamps start at 1).
using EventId = uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = EventCallback;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` to run at absolute time `when`. Returns a handle usable
  // with Cancel(). `when` may be in the past relative to other queued events;
  // ordering is purely by (time, insertion sequence).
  EventId Schedule(SimTime when, Callback fn);

  // Cancels a pending event. Returns true if the event was pending (and is
  // now cancelled), false if it already fired, was already cancelled, or the
  // id is invalid.
  bool Cancel(EventId id);

  // True if no live (non-cancelled) events remain.
  bool Empty() const { return live_ == 0; }

  // Number of live events.
  size_t Size() const { return live_; }

  // Time of the earliest live event; kSimTimeNever when empty. Logically
  // const: it may skim dead heap entries, which never changes the sequence
  // of events observed.
  SimTime NextTime() const;

  // Removes and returns the earliest live event. Precondition: !Empty().
  // The returned time is the event's scheduled time.
  struct Fired {
    SimTime time = 0;
    Callback fn;
  };
  Fired PopNext();

  // Drops every pending event, destroying its callback, and invalidates all
  // outstanding EventIds (their slots' generations are bumped, so a
  // post-Clear Cancel of a pre-Clear id fails). The queue is immediately
  // reusable; slot storage is retained for reuse.
  void Clear();

 private:
  static constexpr uint32_t kNoSlot = 0xffffffffu;

  // Callback storage, reused across events. `gen` must match the heap
  // entry's stamp for the event to be live; it is bumped when the event
  // fires, is cancelled, or the queue is cleared.
  struct Slot {
    Callback fn;
    uint32_t gen = 1;
    uint32_t next_free = kNoSlot;
  };

  // One 4-ary-heap element. 24 bytes, trivially copyable: sifting moves
  // these, never the callbacks.
  struct HeapEntry {
    SimTime time;
    uint64_t seq;   // Insertion order; the FIFO tie-break at equal times.
    uint32_t slot;
    uint32_t gen;
  };

  // The heap order (time, then insertion seq) packed into one signed 128-bit
  // key: a single-flag comparison the sift loops can turn into conditional
  // moves instead of data-dependent branches. Identical ordering to
  // lexicographic (time, seq) -- the high half compares signed times, and at
  // equal times the low half compares seqs as unsigned.
  using OrderKey = __int128;
  static OrderKey Key(const HeapEntry& e) {
    return (static_cast<OrderKey>(e.time) << 64) |
           static_cast<unsigned __int128>(e.seq);
  }

  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    return Key(a) < Key(b);
  }

  bool Live(const HeapEntry& e) const { return slots_[e.slot].gen == e.gen; }

  // Bumps the slot's generation (invalidating its id), destroys the
  // callback, and returns the slot to the free list.
  void ReleaseSlot(uint32_t s) const;

  // Removes dead entries from the top of the heap.
  void SkimDead() const;

  void SiftUp(size_t i) const;
  void SiftDown(size_t i) const;
  void PopRoot() const;  // Removes heap_[0], restoring the heap property.

  // Filters every dead entry out of the heap and Floyd-rebuilds it: O(n)
  // once, versus one O(log n) sift per dead entry skimmed at the top.
  // Triggered from Cancel() when dead entries outnumber live ones.
  void Compact() const;

  // Mutable so NextTime() can skim lazily-cancelled entries; skimming is
  // invisible to callers (it only discards entries that can never fire).
  mutable std::vector<HeapEntry> heap_;
  mutable std::vector<Slot> slots_;
  mutable uint32_t free_head_ = kNoSlot;
  mutable size_t dead_ = 0;  // Stale entries still physically in the heap.
  size_t live_ = 0;
  uint64_t next_seq_ = 1;
};

}  // namespace afraid

#endif  // AFRAID_SIM_EVENT_QUEUE_H_
