// A cancellable min-heap event queue for discrete-event simulation.
//
// Events scheduled for the same instant fire in scheduling order (a strict
// FIFO tie-break), which keeps simulations deterministic regardless of heap
// internals. Cancellation is lazy: a cancelled event stays in the heap but is
// skipped when popped, so Cancel() is O(1).

#ifndef AFRAID_SIM_EVENT_QUEUE_H_
#define AFRAID_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace afraid {

// Opaque handle identifying a scheduled event. Zero is never a valid id.
using EventId = uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` to run at absolute time `when`. Returns a handle usable
  // with Cancel(). `when` may be in the past relative to other queued events;
  // ordering is purely by (time, insertion sequence).
  EventId Schedule(SimTime when, Callback fn);

  // Cancels a pending event. Returns true if the event was pending (and is
  // now cancelled), false if it already fired, was already cancelled, or the
  // id is invalid.
  bool Cancel(EventId id);

  // True if no live (non-cancelled) events remain.
  bool Empty() const { return pending_.empty(); }

  // Number of live events.
  size_t Size() const { return pending_.size(); }

  // Time of the earliest live event; kSimTimeNever when empty.
  SimTime NextTime();

  // Removes and returns the earliest live event. Precondition: !Empty().
  // The returned time is the event's scheduled time.
  struct Fired {
    SimTime time = 0;
    Callback fn;
  };
  Fired PopNext();

  // Drops everything, including pending cancellations.
  void Clear();

 private:
  struct Entry {
    SimTime time = 0;
    uint64_t seq = 0;  // Insertion order; also the EventId.
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  // Pops cancelled entries off the top of the heap.
  void SkimCancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;    // Live (scheduled, not yet fired/cancelled) ids.
  std::unordered_set<EventId> cancelled_;  // Cancelled ids still physically in the heap.
  uint64_t next_seq_ = 1;
};

}  // namespace afraid

#endif  // AFRAID_SIM_EVENT_QUEUE_H_
