#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace afraid {

EventId EventQueue::Schedule(SimTime when, Callback fn) {
  const EventId id = next_seq_++;
  heap_.push(Entry{when, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

bool EventQueue::Cancel(EventId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return false;  // Never scheduled, already fired, or already cancelled.
  }
  pending_.erase(it);
  cancelled_.insert(id);
  return true;
}

void EventQueue::SkimCancelled() {
  while (!heap_.empty()) {
    const EventId id = heap_.top().seq;
    auto it = cancelled_.find(id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() {
  SkimCancelled();
  if (heap_.empty()) {
    return kSimTimeNever;
  }
  return heap_.top().time;
}

EventQueue::Fired EventQueue::PopNext() {
  SkimCancelled();
  assert(!heap_.empty());
  // priority_queue::top() returns a const reference; the callback must be
  // moved out, so we const_cast the entry. This is safe because we pop
  // immediately and never compare the moved-from element.
  Entry& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.time, std::move(top.fn)};
  pending_.erase(top.seq);
  heap_.pop();
  return fired;
}

void EventQueue::Clear() {
  while (!heap_.empty()) {
    heap_.pop();
  }
  cancelled_.clear();
  pending_.clear();
}

}  // namespace afraid
