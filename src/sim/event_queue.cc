#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace afraid {

EventId EventQueue::Schedule(SimTime when, Callback fn) {
  uint32_t s;
  if (free_head_ != kNoSlot) {
    s = free_head_;
    free_head_ = slots_[s].next_free;
  } else {
    s = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[s];
  slot.fn = std::move(fn);
  heap_.push_back(HeapEntry{when, next_seq_++, s, slot.gen});
  SiftUp(heap_.size() - 1);
  ++live_;
  return (static_cast<uint64_t>(slot.gen) << 32) | s;
}

bool EventQueue::Cancel(EventId id) {
  const uint32_t s = static_cast<uint32_t>(id);
  const uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (gen == 0 || s >= slots_.size() || slots_[s].gen != gen) {
    return false;  // Never scheduled, already fired/cancelled, or recycled.
  }
  // The heap entry goes stale (its stamp no longer matches) and is removed
  // lazily; the slot is immediately reusable because a recycled slot gets a
  // fresh generation.
  ReleaseSlot(s);
  --live_;
  // Under cancel-heavy churn the heap would otherwise fill with stale
  // entries, each costing a full sift when it reaches the top. Once they
  // outnumber live events, one linear compaction removes them all.
  if (++dead_ > live_ && heap_.size() >= 64) {
    Compact();
  }
  return true;
}

void EventQueue::ReleaseSlot(uint32_t s) const {
  Slot& slot = slots_[s];
  if (++slot.gen == 0) {
    slot.gen = 1;  // Keep generation 0 permanently invalid across wraps.
  }
  slot.fn.Reset();
  slot.next_free = free_head_;
  free_head_ = s;
}

void EventQueue::SkimDead() const {
  while (!heap_.empty() && !Live(heap_.front())) {
    PopRoot();
    --dead_;
  }
}

SimTime EventQueue::NextTime() const {
  SkimDead();
  if (heap_.empty()) {
    return kSimTimeNever;
  }
  return heap_.front().time;
}

EventQueue::Fired EventQueue::PopNext() {
  SkimDead();
  assert(!heap_.empty());
  const HeapEntry top = heap_.front();
  Fired fired{top.time, std::move(slots_[top.slot].fn)};
  ReleaseSlot(top.slot);
  --live_;
  PopRoot();
  return fired;
}

void EventQueue::Clear() {
  // Release every live slot so outstanding ids stop matching and captured
  // state is destroyed now, not at queue destruction.
  for (const HeapEntry& e : heap_) {
    if (Live(e)) {
      ReleaseSlot(e.slot);
    }
  }
  heap_.clear();
  dead_ = 0;
  live_ = 0;
}

void EventQueue::SiftUp(size_t i) const {
  const HeapEntry e = heap_[i];
  const OrderKey k = Key(e);
  while (i > 0) {
    const size_t parent = (i - 1) / 4;
    if (k >= Key(heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::SiftDown(size_t i) const {
  const HeapEntry e = heap_[i];
  const size_t n = heap_.size();
  const OrderKey k = Key(e);
  for (;;) {
    const size_t first_child = 4 * i + 1;
    if (first_child >= n) {
      break;
    }
    // Branchless best-of-children: child times are effectively random, so a
    // compare-and-branch here mispredicts constantly; conditional moves on
    // the packed key don't.
    size_t best = first_child;
    OrderKey bestk = Key(heap_[first_child]);
    const size_t end = std::min(first_child + 4, n);
    for (size_t c = first_child + 1; c < end; ++c) {
      const OrderKey ck = Key(heap_[c]);
      const bool lt = ck < bestk;
      best = lt ? c : best;
      bestk = lt ? ck : bestk;
    }
    if (bestk >= k) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::PopRoot() const {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  if (n == 0) {
    return;
  }
  const OrderKey lastk = Key(last);
  size_t i = 0;
  for (;;) {
    const size_t first_child = 4 * i + 1;
    if (first_child >= n) {
      break;
    }
    size_t best = first_child;
    OrderKey bestk = Key(heap_[first_child]);
    const size_t end = std::min(first_child + 4, n);
    for (size_t c = first_child + 1; c < end; ++c) {
      const OrderKey ck = Key(heap_[c]);
      const bool lt = ck < bestk;
      best = lt ? c : best;
      bestk = lt ? ck : bestk;
    }
    if (bestk >= lastk) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

void EventQueue::Compact() const {
  size_t out = 0;
  for (size_t i = 0; i < heap_.size(); ++i) {
    if (Live(heap_[i])) {
      heap_[out++] = heap_[i];
    }
  }
  heap_.resize(out);
  dead_ = 0;
  if (out > 1) {
    for (size_t i = (out - 2) / 4 + 1; i-- > 0;) {
      SiftDown(i);
    }
  }
}

}  // namespace afraid
