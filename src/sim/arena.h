// Reusable-storage primitives for the steady-state request path.
//
// The controllers' fast path (client request -> controller -> disk and back)
// must not heap-allocate once warmed up: every structure it needs per request
// is drawn from one of these pools and returned when the request completes.
// The pools never shrink -- capacity reached during warm-up is capacity kept
// -- which is exactly the behaviour a real array controller's preallocated
// request contexts would have.
//
// Contract for all pooled storage: a borrower must not retain a pointer/span
// past the completion callback that releases it (see DESIGN.md, "Arena reuse
// contract").

#ifndef AFRAID_SIM_ARENA_H_
#define AFRAID_SIM_ARENA_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "sim/callback.h"

namespace afraid {

// A borrowed view over pooled contiguous storage (e.g. a request's Split
// segments). Plain pointer+count so it fits in small callback captures.
template <typename T>
struct Span {
  const T* data = nullptr;
  int32_t count = 0;

  const T* begin() const { return data; }
  const T* end() const { return data + count; }
  const T& operator[](int32_t i) const { return data[i]; }
  int32_t size() const { return count; }
  bool empty() const { return count == 0; }
};

// FIFO queue over a power-of-two ring buffer; replaces std::deque on the
// request path (libstdc++'s deque allocates even when default-constructed
// empty, and node churn defeats the allocation-free goal). T must be
// default-constructible and movable.
template <typename T>
class RingQueue {
 public:
  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }

  T& front() {
    assert(count_ > 0);
    return buf_[head_];
  }

  void push_back(T v) {
    if (count_ == buf_.size()) {
      Grow();
    }
    buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(v);
    ++count_;
  }

  void pop_front() {
    assert(count_ > 0);
    buf_[head_] = T();  // Drop held resources (callback captures) eagerly.
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
  }

 private:
  void Grow() {
    const size_t new_cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(new_cap);
    for (size_t i = 0; i < count_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_.swap(next);
    head_ = 0;
  }

  std::vector<T> buf_;  // Capacity is always a power of two.
  size_t head_ = 0;
  size_t count_ = 0;
};

// Size-bucketed free-list backing for node-based containers (the host
// driver's sweep queue, the lock table's stripe map). Nodes are carved from
// slabs and recycled by size class, so a container that churns nodes at a
// bounded population allocates only during warm-up.
class NodePool {
 public:
  NodePool() = default;
  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  void* Allocate(size_t bytes) {
    const size_t bucket = BucketOf(bytes);
    if (bucket >= free_.size()) {
      free_.resize(bucket + 1);
    }
    auto& list = free_[bucket];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      return p;
    }
    const size_t need = bucket * kAlign;
    if (bump_left_ < need) {
      const size_t slab = need > kSlabBytes ? need : kSlabBytes;
      slabs_.push_back(std::make_unique<unsigned char[]>(slab));
      bump_ = slabs_.back().get();
      bump_left_ = slab;
    }
    void* p = bump_;
    bump_ += need;
    bump_left_ -= need;
    return p;
  }

  void Deallocate(void* p, size_t bytes) {
    free_[BucketOf(bytes)].push_back(p);
  }

 private:
  static constexpr size_t kAlign = alignof(std::max_align_t);
  static constexpr size_t kSlabBytes = 16 * 1024;

  static size_t BucketOf(size_t bytes) { return (bytes + kAlign - 1) / kAlign; }

  std::vector<std::vector<void*>> free_;  // Indexed by size bucket.
  std::vector<std::unique_ptr<unsigned char[]>> slabs_;
  unsigned char* bump_ = nullptr;
  size_t bump_left_ = 0;
};

// Minimal std allocator over a NodePool. Single-object allocations (the
// node-based containers' steady diet) go through the pool; array allocations
// (hash-table bucket vectors during a rehash) fall through to operator new.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(NodePool* pool) : pool_(pool) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& o) : pool_(o.pool_) {}  // NOLINT

  T* allocate(size_t n) {
    if (n == 1) {
      return static_cast<T*>(pool_->Allocate(sizeof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) {
    if (n == 1) {
      pool_->Deallocate(p, sizeof(T));
    } else {
      ::operator delete(p);
    }
  }

  bool operator==(const PoolAllocator& o) const { return pool_ == o.pool_; }
  bool operator!=(const PoolAllocator& o) const { return pool_ != o.pool_; }

  NodePool* pool_;
};

// Free list of std::vector<T> scratch buffers. Acquire() hands out a cleared
// vector whose capacity survives from previous uses; Release() returns it.
template <typename T>
class VecPool {
 public:
  std::vector<T>* Acquire() {
    if (free_.empty()) {
      storage_.push_back(std::make_unique<std::vector<T>>());
      free_.push_back(storage_.back().get());
    }
    std::vector<T>* v = free_.back();
    free_.pop_back();
    v->clear();
    return v;
  }

  void Release(std::vector<T>* v) { free_.push_back(v); }

 private:
  std::vector<std::unique_ptr<std::vector<T>>> storage_;
  std::vector<std::vector<T>*> free_;
};

// Disk-completion continuation handed to the controllers' IssueDiskOp
// helpers. Sized for the fattest per-segment capture (this + Segment + key +
// join pointer).
using DiskDone = SmallCallback<void(bool), 64>;

// Pooled fan-in block: one completion callback runs after `count` Dec()s,
// with failure latching, replacing the per-request shared_ptr<Join>. Blocks
// live in a stable-address pool and are recycled the moment they fire, so a
// warmed-up controller's joins never touch the heap. Sized for the
// controllers' fattest finish continuation.
using JoinDone = SmallCallback<void(bool), 128>;

class JoinPool;

struct JoinBlock {
  int32_t remaining = 0;
  bool failed = false;
  JoinDone done;
  JoinPool* pool = nullptr;

  inline void Dec(bool ok);
};

class JoinPool {
 public:
  JoinBlock* Make(int32_t count, JoinDone done) {
    assert(count > 0);
    if (free_.empty()) {
      blocks_.push_back(std::make_unique<JoinBlock>());
      free_.push_back(blocks_.back().get());
    }
    JoinBlock* j = free_.back();
    free_.pop_back();
    j->remaining = count;
    j->failed = false;
    j->done = std::move(done);
    j->pool = this;
    return j;
  }

  void Release(JoinBlock* j) { free_.push_back(j); }

 private:
  std::vector<std::unique_ptr<JoinBlock>> blocks_;
  std::vector<JoinBlock*> free_;
};

// The block is released before its callback runs, so the callback may itself
// draw new joins from the pool (and may reuse this very block).
inline void JoinBlock::Dec(bool ok) {
  if (!ok) {
    failed = true;
  }
  if (--remaining == 0) {
    JoinDone d = std::move(done);
    const bool all_ok = !failed;
    pool->Release(this);
    d(all_ok);
  }
}

}  // namespace afraid

#endif  // AFRAID_SIM_ARENA_H_
