// The discrete-event simulation driver: a clock plus an event queue.
//
// Components schedule callbacks against the Simulator; RunUntil()/RunToEnd()
// advance the clock to each event in order and invoke it. This mirrors the
// structure of the Pantheon simulator used in the AFRAID paper: everything in
// the modelled array (disk mechanics, controller state machines, idle
// detection, trace arrival processes) is expressed as events.

#ifndef AFRAID_SIM_SIMULATOR_H_
#define AFRAID_SIM_SIMULATOR_H_

#include <cassert>
#include <cstdint>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace afraid {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time.
  SimTime Now() const { return now_; }

  // Schedules `fn` at absolute time `when`, which must not be in the past.
  EventId At(SimTime when, EventQueue::Callback fn) {
    assert(when >= now_);
    return queue_.Schedule(when, std::move(fn));
  }

  // Schedules `fn` after a non-negative delay from now.
  EventId After(SimDuration delay, EventQueue::Callback fn) {
    assert(delay >= 0);
    return queue_.Schedule(now_ + delay, std::move(fn));
  }

  // Cancels a pending event; see EventQueue::Cancel.
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Runs events until the queue is empty or the next event is after
  // `deadline`; the clock finishes at min(deadline, last event time) — i.e.
  // RunUntil leaves Now() at `deadline` if the queue drained earlier events.
  void RunUntil(SimTime deadline);

  // Runs until no events remain.
  void RunToEnd();

  // Executes exactly one event, if any. Returns false if the queue was empty.
  bool Step();

  // True if no pending events remain.
  bool Idle() const { return queue_.Empty(); }

  // Number of pending events.
  size_t PendingEvents() const { return queue_.Size(); }

  // Total events executed since construction.
  uint64_t EventsProcessed() const { return events_processed_; }

  // Time of the next pending event (kSimTimeNever if none).
  SimTime NextEventTime() const { return queue_.NextTime(); }

  // Returns the simulator to its just-constructed state: clock at 0, no
  // pending events, counters cleared. Event-queue slot storage is retained,
  // so a reset simulator re-runs without reallocating — this is what lets a
  // campaign worker reuse one arena across lifetimes (faultsim/campaign.h).
  void Reset() {
    queue_.Clear();
    now_ = 0;
    events_processed_ = 0;
  }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  uint64_t events_processed_ = 0;
};

}  // namespace afraid

#endif  // AFRAID_SIM_SIMULATOR_H_
