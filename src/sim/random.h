// Seeded random-number utilities for reproducible workload generation.
//
// Every stochastic component in the simulator takes an explicit seed; two
// runs with the same seed produce bit-identical traces and results. Pareto
// and exponential draws are provided because disk-workload burst/idle-period
// lengths are classically modelled as heavy-tailed [Ruemmler93, Golding95].

#ifndef AFRAID_SIM_RANDOM_H_
#define AFRAID_SIM_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <iterator>
#include <limits>
#include <random>

namespace afraid {

// Derives statistically independent seeds from a (base seed, stream index)
// pair via the SplitMix64 finalizer. Unlike Rng::Fork(), which depends on how
// many draws the parent has made, the derived seed is a pure function of its
// inputs -- so parallel workers (one RNG stream per worker or per Monte-Carlo
// lifetime) get identical streams no matter how work is scheduled across
// threads. Stream 0 with base b differs from Rng(b) itself.
constexpr uint64_t DeriveStreamSeed(uint64_t base, uint64_t stream) {
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi], inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // True with probability p.
  bool Bernoulli(double p) {
    assert(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  // Exponential with the given mean (not rate).
  double ExponentialMean(double mean) {
    assert(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Pareto with shape `alpha` and minimum `xm`, optionally truncated at
  // `cap` (<=0 means uncapped). Heavy-tailed for alpha in (1, 2].
  double Pareto(double alpha, double xm, double cap = 0.0) {
    assert(alpha > 0.0 && xm > 0.0);
    const double u = std::uniform_real_distribution<double>(
        std::numeric_limits<double>::min(), 1.0)(engine_);
    double v = xm / std::pow(u, 1.0 / alpha);
    if (cap > 0.0 && v > cap) {
      v = cap;
    }
    return v;
  }

  // Lognormal parameterized by the mean and sigma of the underlying normal.
  double Lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  // Normal (Gaussian).
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Geometric number of trials >= 1 with success probability p: models run
  // lengths (e.g. sequential-access runs).
  int64_t GeometricTrials(double p) {
    assert(p > 0.0 && p <= 1.0);
    return 1 + std::geometric_distribution<int64_t>(p)(engine_);
  }

  // Picks an index in [0, weights.size()) proportionally to the weights.
  template <typename Container>
  size_t WeightedIndex(const Container& weights) {
    double total = 0.0;
    for (double w : weights) {
      total += w;
    }
    assert(total > 0.0);
    double x = UniformDouble(0.0, total);
    size_t i = 0;
    for (double w : weights) {
      if (x < w || i + 1 == static_cast<size_t>(std::size(weights))) {
        return i;
      }
      x -= w;
      ++i;
    }
    return static_cast<size_t>(std::size(weights)) - 1;
  }

  // Derives an independent child RNG; used to give each workload component
  // its own stream so adding draws to one does not perturb another.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace afraid

#endif  // AFRAID_SIM_RANDOM_H_
