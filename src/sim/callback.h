// A move-only `void()` callable with small-buffer optimisation, used for
// simulation events.
//
// std::function is the wrong shape for an event queue: it requires copyable
// captures (so completion continuations cannot own their state via
// unique_ptr), and captures beyond the implementation's tiny inline buffer
// cost a heap allocation per scheduled event. EventCallback stores captures
// up to kInlineBytes directly inside the object -- sized so every callback
// the simulator schedules today fits -- and falls back to a heap box only for
// oversized captures. Move-only captures are fully supported.

#ifndef AFRAID_SIM_CALLBACK_H_
#define AFRAID_SIM_CALLBACK_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace afraid {

class EventCallback {
 public:
  // Generous enough for the fattest controller continuation (a lambda over a
  // handful of pointers, 64-bit scalars and a shared_ptr join handle).
  static constexpr size_t kInlineBytes = 48;

  EventCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (kFitsInline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventCallback(EventCallback&& other) noexcept { MoveFrom(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  // Destroys the held callable (and its captures), leaving the object empty.
  void Reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) {
        ops_->destroy(storage_);
      }
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    // Move-constructs `dst` from `src`, then destroys `src`. Null when a raw
    // byte copy of the buffer is equivalent (the common case: lambdas over
    // pointers and scalars), letting moves skip the indirect call.
    void (*relocate)(void* src, void* dst);
    // Null when destruction is a no-op.
    void (*destroy)(void* self);
  };

  template <typename Fn>
  static constexpr bool kFitsInline =
      sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static constexpr bool kTriviallyRelocatable =
      std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>;

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* self) { (*std::launder(reinterpret_cast<Fn*>(self)))(); },
      kTriviallyRelocatable<Fn>
          ? nullptr
          : +[](void* src, void* dst) {
              Fn* from = std::launder(reinterpret_cast<Fn*>(src));
              ::new (dst) Fn(std::move(*from));
              from->~Fn();
            },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* self) { std::launder(reinterpret_cast<Fn*>(self))->~Fn(); },
  };

  // Heap-boxed callables relocate by copying the owning pointer.
  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* self) { (**std::launder(reinterpret_cast<Fn**>(self)))(); },
      nullptr,
      [](void* self) { delete *std::launder(reinterpret_cast<Fn**>(self)); },
  };

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
// The fast path deliberately copies the whole fixed-size buffer (three vector
// moves) rather than just sizeof(Fn) bytes; the tail past the capture is
// indeterminate, which is fine for unsigned char, but GCC flags the read.
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
  void MoveFrom(EventCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      if (ops_->relocate != nullptr) {
        ops_->relocate(other.storage_, storage_);
      } else {
        std::memcpy(storage_, other.storage_, kInlineBytes);
      }
      other.ops_ = nullptr;
    }
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace afraid

#endif  // AFRAID_SIM_CALLBACK_H_
