// Move-only callables with small-buffer optimisation, used for simulation
// events and the controllers' completion continuations.
//
// std::function is the wrong shape for these paths: it requires copyable
// captures (so completion continuations cannot own their state via
// unique_ptr), and captures beyond the implementation's tiny inline buffer
// cost a heap allocation per callback. SmallCallback<Sig, N> stores captures
// up to N bytes directly inside the object -- each seam sizes its alias so
// every callback it carries today fits -- and falls back to a heap box only
// for oversized captures. Move-only captures are fully supported.

#ifndef AFRAID_SIM_CALLBACK_H_
#define AFRAID_SIM_CALLBACK_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace afraid {

template <typename Signature, size_t InlineBytes = 48>
class SmallCallback;  // Only the R(Args...) specialisation exists.

template <typename R, typename... Args, size_t InlineBytes>
class SmallCallback<R(Args...), InlineBytes> {
 public:
  static constexpr size_t kInlineBytes = InlineBytes;

  SmallCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (kFitsInline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SmallCallback(SmallCallback&& other) noexcept { MoveFrom(other); }
  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  // Destroys the held callable (and its captures), leaving the object empty.
  void Reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) {
        ops_->destroy(storage_);
      }
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void* self, Args&&... args);
    // Move-constructs `dst` from `src`, then destroys `src`. Null when a raw
    // byte copy of the buffer is equivalent (the common case: lambdas over
    // pointers and scalars), letting moves skip the indirect call.
    void (*relocate)(void* src, void* dst);
    // Null when destruction is a no-op.
    void (*destroy)(void* self);
  };

  template <typename Fn>
  static constexpr bool kFitsInline =
      sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static constexpr bool kTriviallyRelocatable =
      std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>;

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* self, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(self)))(
            std::forward<Args>(args)...);
      },
      kTriviallyRelocatable<Fn>
          ? nullptr
          : +[](void* src, void* dst) {
              Fn* from = std::launder(reinterpret_cast<Fn*>(src));
              ::new (dst) Fn(std::move(*from));
              from->~Fn();
            },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* self) { std::launder(reinterpret_cast<Fn*>(self))->~Fn(); },
  };

  // Heap-boxed callables relocate by copying the owning pointer.
  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* self, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<Fn**>(self)))(
            std::forward<Args>(args)...);
      },
      nullptr,
      [](void* self) { delete *std::launder(reinterpret_cast<Fn**>(self)); },
  };

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
// The fast path deliberately copies the whole fixed-size buffer rather than
// just sizeof(Fn) bytes; the tail past the capture is indeterminate, which is
// fine for unsigned char, but GCC flags the read.
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
  void MoveFrom(SmallCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      if (ops_->relocate != nullptr) {
        ops_->relocate(other.storage_, storage_);
      } else {
        std::memcpy(storage_, other.storage_, kInlineBytes);
      }
      other.ops_ = nullptr;
    }
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

// The event queue's callback: a move-only void() sized so every callback the
// simulator schedules today fits inline.
using EventCallback = SmallCallback<void(), 48>;

}  // namespace afraid

#endif  // AFRAID_SIM_CALLBACK_H_
