// I/O trace records: the unit of workload in all experiments.
//
// A trace is an open-loop arrival schedule: each record carries the wall time
// at which the client issued the request, independent of when earlier
// requests complete. The paper stresses that its traces are replayed open
// loop ("given that we are using an open-queueing, trace-driven workload"),
// so queueing delay is fully visible in the measured I/O times.

#ifndef AFRAID_TRACE_TRACE_H_
#define AFRAID_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace afraid {

struct TraceRecord {
  SimTime time = 0;          // Arrival (issue) time.
  int64_t offset = 0;        // Byte offset into the array's logical space.
  int32_t size = 0;          // Bytes; positive, sector-aligned.
  bool is_write = false;
};

struct Trace {
  std::string name;
  // Tenant-stream count ("# tenants N" header) for traces recorded from a
  // fleet workload; 0 when the trace carries no tenant metadata.
  int32_t tenants = 0;
  std::vector<TraceRecord> records;

  bool Empty() const { return records.empty(); }
  size_t Size() const { return records.size(); }
  SimTime Duration() const { return records.empty() ? 0 : records.back().time; }
};

// Simple arrival-side statistics of a trace (no simulation involved).
struct TraceStats {
  uint64_t requests = 0;
  uint64_t writes = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  double mean_size_bytes = 0.0;
  double mean_interarrival_ms = 0.0;
  double write_fraction = 0.0;
  // Fraction of the trace duration lying in arrival gaps longer than 100 ms:
  // a cheap burstiness proxy (idle time available to an AFRAID rebuilder).
  double idle_fraction_100ms = 0.0;
};

TraceStats ComputeTraceStats(const Trace& trace);

// Text serialisation. Format: '#'-prefixed comment/header lines, then one
// record per line: "<time_ns> <R|W> <offset_bytes> <size_bytes>".
std::string SerializeTrace(const Trace& trace);

// Outcome of parsing or loading a trace: success, or a diagnostic carrying
// the 1-based line number of the offending record (0 for file-level errors
// such as a missing file) and a human-readable message.
struct TraceStatus {
  bool ok = true;
  int64_t line = 0;
  std::string message;

  static TraceStatus Ok() { return TraceStatus{}; }
  static TraceStatus Error(int64_t line, std::string message) {
    return TraceStatus{false, line, std::move(message)};
  }
  // "trace.txt:12: malformed size field" -- for surfacing to users.
  std::string Format(const std::string& source) const;
};

// The fast scanner: a hand-rolled integer/decimal parser over the in-memory
// text, no streams and no per-line string allocation. Populates *out and
// returns Ok(), or a TraceStatus naming the first malformed line. Strictly
// validates each record (unlike the stream parser, trailing junk after the
// size field is an error, not silently ignored).
TraceStatus ParseTraceText(std::string_view text, Trace* out);

// Chunk-mode entry to the same scanner, used by the streaming reader
// (trace_stream.h): appends the records of `text` to out->records WITHOUT
// clearing them, numbering diagnostics from `first_line` so a chunked parse
// reports the same file-absolute line as a monolithic one. `text` must
// contain only whole lines (the reader carries partial tails across chunk
// boundaries), except that the final chunk of a file may end mid-line.
// Header lines ("# name", "# tenants") still apply wherever they appear.
// On success *next_line receives the first_line value for the next chunk.
TraceStatus ScanTraceChunk(std::string_view text, int64_t first_line,
                           Trace* out, int64_t* next_line);

// Zero-copy ingest: loads the whole file with a single read into an owned
// buffer, then runs the fast scanner over it. File-level failures (missing
// file, short read) report with line 0.
TraceStatus LoadTraceFile(const std::string& path, Trace* out);

// The legacy getline-plus-stream-extraction parser, kept as the reference
// oracle for the fast scanner: tests assert record-for-record equality on
// every in-tree workload, and BM_TraceParseStreamRef benchmarks against it.
bool ParseTraceStreamRef(const std::string& text, Trace* out);

// Compatibility wrappers over the fast path; return false on any error.
bool ParseTrace(const std::string& text, Trace* out);
bool WriteTraceFile(const std::string& path, const Trace& trace);
bool ReadTraceFile(const std::string& path, Trace* out);

}  // namespace afraid

#endif  // AFRAID_TRACE_TRACE_H_
