// Trace transformations: the utilities a trace-driven study needs to adapt
// foreign traces to a target array (the paper, e.g., replayed one-day
// subsets of multi-day traces and remapped multi-disk traces onto arrays).

#ifndef AFRAID_TRACE_TRANSFORM_H_
#define AFRAID_TRACE_TRANSFORM_H_

#include <vector>

#include "trace/trace.h"

namespace afraid {

// Scales all arrival times by `factor` (> 0): factor 0.5 doubles the offered
// load; 2.0 halves it. Sizes and offsets are untouched.
Trace ScaleTime(const Trace& in, double factor);

// Keeps only records with time in [start, end), shifting times so the
// window starts at 0.
Trace ClipWindow(const Trace& in, SimTime start, SimTime end);

// Remaps offsets into [0, capacity) by modulo on the request's start, then
// clamps so no request crosses the end. Alignment is preserved for
// `align`-aligned capacities.
Trace FitToCapacity(const Trace& in, int64_t capacity, int64_t align = 512);

// Merges traces by arrival time (stable for ties in argument order).
Trace MergeTraces(const std::vector<Trace>& traces);

// Appends `b` after `a`, shifting b's times by a's duration plus `gap`.
Trace Concatenate(const Trace& a, const Trace& b, SimDuration gap);

}  // namespace afraid

#endif  // AFRAID_TRACE_TRANSFORM_H_
