// Streaming trace ingest: fixed-memory chunked reads over the text trace
// format, with optional double-buffered read-ahead.
//
// The monolithic path (LoadTraceFile) reads the whole file and scans it in
// place -- simple, but memory scales with trace length, which caps replay at
// what fits in RAM. TraceChunkReader instead pulls the file through a pair of
// fixed-size buffers: a prefetch thread (pure freads, no parsing, so the
// parse order stays deterministic) fills the next block while the caller
// parses the current one. Partial lines at a chunk boundary are carried into
// the next parse window, and the scanner is handed a running absolute line
// number, so diagnostics ("trace.txt:712934: malformed size field") are
// byte-identical to what a monolithic parse of the same file would report.
//
// Memory is O(chunk_bytes + longest line), independent of trace length.

#ifndef AFRAID_TRACE_TRACE_STREAM_H_
#define AFRAID_TRACE_TRACE_STREAM_H_

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "trace/trace.h"

namespace afraid {

struct StreamOptions {
  // Bytes of trace text ingested (and compiled) per chunk. The floor is one
  // line: a pathological line longer than a chunk grows the window until a
  // newline appears, then the window shrinks back.
  size_t chunk_bytes = 4u << 20;
  // Prefetch the next block on a helper thread while the current chunk is
  // parsed and replayed. The thread only freads bytes -- all parsing happens
  // on the calling thread in file order -- so results are identical with it
  // on or off; it just hides I/O latency.
  bool read_ahead = true;
};

class TraceChunkReader {
 public:
  explicit TraceChunkReader(const std::string& path,
                            const StreamOptions& opts = StreamOptions());
  ~TraceChunkReader();

  TraceChunkReader(const TraceChunkReader&) = delete;
  TraceChunkReader& operator=(const TraceChunkReader&) = delete;

  // Parses the next chunk of whole records into chunk(). Returns false at
  // end of file or on the first error -- check status() to tell them apart.
  // Chunks that contain only headers/comments are skipped internally, so a
  // true return always means chunk().records is non-empty. On a parse error
  // the records preceding the erroring line (exactly the prefix a monolithic
  // parse would have accepted) are delivered first; the call after that
  // returns false with the error in status().
  bool Next();

  // The records of the current chunk. Storage is reused across Next() calls.
  const Trace& chunk() const { return chunk_; }

  // Ok() until the first file or parse error; errors carry the same absolute
  // line numbers and messages as a monolithic LoadTraceFile of the file.
  const TraceStatus& status() const { return status_; }

  // Header metadata seen so far (headers precede records in the format).
  const std::string& name() const { return name_; }
  int32_t tenants() const { return tenants_; }

  int64_t chunks_read() const { return chunks_read_; }
  uint64_t records_read() const { return records_read_; }

  // High-water mark of all reader-owned memory: parse window + carry + block
  // + prefetch mailbox + the reused record vector. This is the "fixed" in
  // fixed-memory -- it must not grow with trace length, only with chunk size
  // (and the longest single line).
  size_t peak_buffer_bytes() const { return peak_buffer_bytes_; }

 private:
  void StartPrefetch();
  // Blocks until the next block of at most chunk_bytes is available and
  // swaps it into *dst; sets *at_eof / *read_err from the underlying fread.
  void TakeBlock(std::string* dst, bool* at_eof, bool* read_err);
  void FillBlock(std::string* dst, bool* at_eof, bool* read_err);
  void NotePeak();

  const size_t chunk_bytes_;
  std::FILE* file_ = nullptr;
  TraceStatus status_;
  Trace chunk_;
  std::string name_;
  int32_t tenants_ = 0;

  std::string window_;  // carry + fresh bytes, parsed up to its last newline.
  std::string carry_;   // partial trailing line awaiting the next chunk.
  std::string block_;   // scratch the next block is swapped into.
  int64_t next_line_ = 1;
  bool input_done_ = false;  // no more bytes will arrive from the file.
  bool finished_ = false;    // final window parsed; Next() is done.
  int64_t chunks_read_ = 0;
  uint64_t records_read_ = 0;
  size_t peak_buffer_bytes_ = 0;

  // Depth-1 prefetch mailbox (one block ready + one being parsed = double
  // buffering). Unused when read_ahead is off or the file failed to open.
  std::thread prefetch_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::string ready_block_;
  bool ready_ = false;
  bool ready_eof_ = false;
  bool ready_err_ = false;
  bool stop_ = false;
};

}  // namespace afraid

#endif  // AFRAID_TRACE_TRACE_STREAM_H_
