#include "trace/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

namespace afraid {

TraceStats ComputeTraceStats(const Trace& trace) {
  TraceStats s;
  s.requests = trace.records.size();
  if (trace.records.empty()) {
    return s;
  }
  int64_t total_bytes = 0;
  SimDuration idle_100ms = 0;
  SimTime prev = 0;
  for (const TraceRecord& r : trace.records) {
    if (r.is_write) {
      ++s.writes;
      s.bytes_written += r.size;
    } else {
      s.bytes_read += r.size;
    }
    total_bytes += r.size;
    const SimDuration gap = r.time - prev;
    if (gap > Milliseconds(100)) {
      idle_100ms += gap - Milliseconds(100);
    }
    prev = r.time;
  }
  s.mean_size_bytes = static_cast<double>(total_bytes) / static_cast<double>(s.requests);
  const SimDuration duration = trace.Duration();
  if (s.requests > 1 && duration > 0) {
    s.mean_interarrival_ms =
        ToMilliseconds(duration) / static_cast<double>(s.requests - 1);
    s.idle_fraction_100ms = static_cast<double>(idle_100ms) / static_cast<double>(duration);
  }
  s.write_fraction = static_cast<double>(s.writes) / static_cast<double>(s.requests);
  return s;
}

std::string SerializeTrace(const Trace& trace) {
  std::string out;
  out += "# afraid-trace v1\n";
  out += "# name " + trace.name + "\n";
  if (trace.tenants > 0) {
    out += "# tenants " + std::to_string(trace.tenants) + "\n";
  }
  char line[96];
  for (const TraceRecord& r : trace.records) {
    std::snprintf(line, sizeof(line), "%" PRId64 " %c %" PRId64 " %d\n", r.time,
                  r.is_write ? 'W' : 'R', r.offset, r.size);
    out += line;
  }
  return out;
}

std::string TraceStatus::Format(const std::string& source) const {
  if (ok) {
    return source + ": ok";
  }
  if (line <= 0) {
    return source + ": " + message;
  }
  return source + ":" + std::to_string(line) + ": " + message;
}

// --- The fast scanner ---------------------------------------------------------

namespace {

inline bool IsFieldSep(char c) { return c == ' ' || c == '\t'; }

// Consumes [ \t]+; false if no separator was present.
inline bool SkipSep(const char*& p, const char* end) {
  if (p >= end || !IsFieldSep(*p)) {
    return false;
  }
  do {
    ++p;
  } while (p < end && IsFieldSep(*p));
  return true;
}

// Decimal int64 with optional leading '-'. False on no digits or overflow.
inline bool ScanInt64(const char*& p, const char* end, int64_t* out) {
  bool neg = false;
  if (p < end && *p == '-') {
    neg = true;
    ++p;
  }
  if (p >= end || *p < '0' || *p > '9') {
    return false;
  }
  uint64_t v = 0;
  constexpr uint64_t kMax = static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
  do {
    const uint64_t d = static_cast<uint64_t>(*p - '0');
    if (v > (kMax - d) / 10) {
      return false;
    }
    v = v * 10 + d;
    ++p;
  } while (p < end && *p >= '0' && *p <= '9');
  const auto sv = static_cast<int64_t>(v);
  *out = neg ? -sv : sv;
  return true;
}

}  // namespace

TraceStatus ParseTraceText(std::string_view text, Trace* out) {
  out->name.clear();
  out->tenants = 0;
  out->records.clear();
  // One reservation up front: at most one record per newline, so the record
  // vector never reallocates during the scan.
  out->records.reserve(
      static_cast<size_t>(std::count(text.begin(), text.end(), '\n')) + 1);
  int64_t next_line = 0;
  return ScanTraceChunk(text, 1, out, &next_line);
}

TraceStatus ScanTraceChunk(std::string_view text, int64_t first_line,
                           Trace* out, int64_t* next_line) {
  const char* p = text.data();
  const char* const end = p + text.size();
  int64_t line_no = first_line - 1;
  while (p < end) {
    ++line_no;
    const char* eol = static_cast<const char*>(
        memchr(p, '\n', static_cast<size_t>(end - p)));
    const char* line_end = eol != nullptr ? eol : end;
    if (line_end > p && line_end[-1] == '\r') {
      --line_end;
    }
    const char* next = eol != nullptr ? eol + 1 : end;
    if (p == line_end) {  // Empty line.
      p = next;
      continue;
    }
    if (*p == '#') {  // Comment / header line.
      const char* h = p + 1;
      SkipSep(h, line_end);
      const char* key_begin = h;
      while (h < line_end && !IsFieldSep(*h)) {
        ++h;
      }
      const std::string_view key(key_begin, static_cast<size_t>(h - key_begin));
      if (key == "name") {
        SkipSep(h, line_end);
        out->name.assign(h, static_cast<size_t>(line_end - h));
      } else if (key == "tenants") {
        SkipSep(h, line_end);
        int64_t tenants = 0;
        // Header lines are comments; a malformed value is ignored, not fatal.
        if (ScanInt64(h, line_end, &tenants) && tenants > 0 &&
            tenants <= std::numeric_limits<int32_t>::max()) {
          out->tenants = static_cast<int32_t>(tenants);
        }
      }
      p = next;
      continue;
    }

    // "<time> <R|W> <offset> <size>".
    TraceRecord r;
    SkipSep(p, line_end);
    if (!ScanInt64(p, line_end, &r.time)) {
      return TraceStatus::Error(line_no, "malformed time field");
    }
    if (!SkipSep(p, line_end) || p >= line_end) {
      return TraceStatus::Error(line_no, "truncated record (expected '<time> <R|W> <offset> <size>')");
    }
    const char op = *p++;
    if (op != 'R' && op != 'W') {
      return TraceStatus::Error(line_no, "malformed op field (expected R or W)");
    }
    if (!SkipSep(p, line_end) || p >= line_end) {
      return TraceStatus::Error(line_no, "truncated record (expected '<time> <R|W> <offset> <size>')");
    }
    if (!ScanInt64(p, line_end, &r.offset)) {
      return TraceStatus::Error(line_no, "malformed offset field");
    }
    if (!SkipSep(p, line_end) || p >= line_end) {
      return TraceStatus::Error(line_no, "truncated record (expected '<time> <R|W> <offset> <size>')");
    }
    int64_t size64 = 0;
    if (!ScanInt64(p, line_end, &size64) ||
        size64 > std::numeric_limits<int32_t>::max() ||
        size64 < std::numeric_limits<int32_t>::min()) {
      return TraceStatus::Error(line_no, "malformed size field");
    }
    r.size = static_cast<int32_t>(size64);
    SkipSep(p, line_end);
    if (p != line_end) {
      return TraceStatus::Error(line_no, "trailing characters after record");
    }
    if (r.time < 0) {
      return TraceStatus::Error(line_no, "negative time");
    }
    if (r.offset < 0) {
      return TraceStatus::Error(line_no, "negative offset");
    }
    if (r.size <= 0) {
      return TraceStatus::Error(line_no, "non-positive size");
    }
    r.is_write = (op == 'W');
    out->records.push_back(r);
    p = next;
  }
  *next_line = line_no + 1;
  return TraceStatus::Ok();
}

TraceStatus LoadTraceFile(const std::string& path, Trace* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return TraceStatus::Error(0, "cannot open trace file");
  }
  std::string buf;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long size = std::ftell(f);
    if (size > 0) {
      buf.resize(static_cast<size_t>(size));
    }
    std::rewind(f);
  }
  // Single read into the owned buffer; the scanner works in place on it.
  const size_t got = buf.empty() ? 0 : std::fread(buf.data(), 1, buf.size(), f);
  const bool read_ok = std::ferror(f) == 0 && got == buf.size();
  std::fclose(f);
  if (!read_ok) {
    return TraceStatus::Error(0, "error reading trace file");
  }
  return ParseTraceText(buf, out);
}

// --- Legacy stream parser (reference oracle) ----------------------------------

bool ParseTraceStreamRef(const std::string& text, Trace* out) {
  out->name.clear();
  out->tenants = 0;
  out->records.clear();
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      std::istringstream hdr(line.substr(1));
      std::string key;
      hdr >> key;
      if (key == "name") {
        hdr >> std::ws;
        std::getline(hdr, out->name);
      } else if (key == "tenants") {
        int64_t tenants = 0;
        if (hdr >> tenants && tenants > 0 &&
            tenants <= std::numeric_limits<int32_t>::max()) {
          out->tenants = static_cast<int32_t>(tenants);
        }
      }
      continue;
    }
    TraceRecord r;
    char op = 0;
    std::istringstream row(line);
    if (!(row >> r.time >> op >> r.offset >> r.size)) {
      return false;
    }
    if (op != 'R' && op != 'W') {
      return false;
    }
    if (r.time < 0 || r.offset < 0 || r.size <= 0) {
      return false;
    }
    r.is_write = (op == 'W');
    out->records.push_back(r);
  }
  return true;
}

// --- Compatibility wrappers ---------------------------------------------------

bool ParseTrace(const std::string& text, Trace* out) {
  return ParseTraceText(text, out).ok;
}

bool WriteTraceFile(const std::string& path, const Trace& trace) {
  std::ofstream f(path, std::ios::out | std::ios::trunc);
  if (!f) {
    return false;
  }
  f << SerializeTrace(trace);
  return static_cast<bool>(f);
}

bool ReadTraceFile(const std::string& path, Trace* out) {
  return LoadTraceFile(path, out).ok;
}

}  // namespace afraid
