#include "trace/trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace afraid {

TraceStats ComputeTraceStats(const Trace& trace) {
  TraceStats s;
  s.requests = trace.records.size();
  if (trace.records.empty()) {
    return s;
  }
  int64_t total_bytes = 0;
  SimDuration idle_100ms = 0;
  SimTime prev = 0;
  for (const TraceRecord& r : trace.records) {
    if (r.is_write) {
      ++s.writes;
      s.bytes_written += r.size;
    } else {
      s.bytes_read += r.size;
    }
    total_bytes += r.size;
    const SimDuration gap = r.time - prev;
    if (gap > Milliseconds(100)) {
      idle_100ms += gap - Milliseconds(100);
    }
    prev = r.time;
  }
  s.mean_size_bytes = static_cast<double>(total_bytes) / static_cast<double>(s.requests);
  const SimDuration duration = trace.Duration();
  if (s.requests > 1 && duration > 0) {
    s.mean_interarrival_ms =
        ToMilliseconds(duration) / static_cast<double>(s.requests - 1);
    s.idle_fraction_100ms = static_cast<double>(idle_100ms) / static_cast<double>(duration);
  }
  s.write_fraction = static_cast<double>(s.writes) / static_cast<double>(s.requests);
  return s;
}

std::string SerializeTrace(const Trace& trace) {
  std::string out;
  out += "# afraid-trace v1\n";
  out += "# name " + trace.name + "\n";
  char line[96];
  for (const TraceRecord& r : trace.records) {
    std::snprintf(line, sizeof(line), "%" PRId64 " %c %" PRId64 " %d\n", r.time,
                  r.is_write ? 'W' : 'R', r.offset, r.size);
    out += line;
  }
  return out;
}

bool ParseTrace(const std::string& text, Trace* out) {
  out->name.clear();
  out->records.clear();
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      std::istringstream hdr(line.substr(1));
      std::string key;
      hdr >> key;
      if (key == "name") {
        hdr >> std::ws;
        std::getline(hdr, out->name);
      }
      continue;
    }
    TraceRecord r;
    char op = 0;
    std::istringstream row(line);
    if (!(row >> r.time >> op >> r.offset >> r.size)) {
      return false;
    }
    if (op != 'R' && op != 'W') {
      return false;
    }
    if (r.time < 0 || r.offset < 0 || r.size <= 0) {
      return false;
    }
    r.is_write = (op == 'W');
    out->records.push_back(r);
  }
  return true;
}

bool WriteTraceFile(const std::string& path, const Trace& trace) {
  std::ofstream f(path, std::ios::out | std::ios::trunc);
  if (!f) {
    return false;
  }
  f << SerializeTrace(trace);
  return static_cast<bool>(f);
}

bool ReadTraceFile(const std::string& path, Trace* out) {
  std::ifstream f(path);
  if (!f) {
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseTrace(buf.str(), out);
}

}  // namespace afraid
