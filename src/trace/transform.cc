#include "trace/transform.h"

#include <algorithm>
#include <cassert>

namespace afraid {

Trace ScaleTime(const Trace& in, double factor) {
  assert(factor > 0.0);
  Trace out;
  out.name = in.name + "*t" + std::to_string(factor);
  out.records.reserve(in.records.size());
  for (TraceRecord r : in.records) {
    r.time = static_cast<SimTime>(static_cast<double>(r.time) * factor);
    out.records.push_back(r);
  }
  return out;
}

Trace ClipWindow(const Trace& in, SimTime start, SimTime end) {
  assert(start <= end);
  Trace out;
  out.name = in.name + "[clip]";
  for (TraceRecord r : in.records) {
    if (r.time >= start && r.time < end) {
      r.time -= start;
      out.records.push_back(r);
    }
  }
  return out;
}

Trace FitToCapacity(const Trace& in, int64_t capacity, int64_t align) {
  assert(capacity > 0 && align > 0 && capacity % align == 0);
  Trace out;
  out.name = in.name + "[fit]";
  out.records.reserve(in.records.size());
  for (TraceRecord r : in.records) {
    if (r.size > capacity) {
      r.size = static_cast<int32_t>(capacity);
    }
    r.offset %= capacity;
    r.offset -= r.offset % align;
    if (r.offset + r.size > capacity) {
      r.offset = capacity - r.size;
      r.offset -= r.offset % align;
    }
    out.records.push_back(r);
  }
  return out;
}

Trace MergeTraces(const std::vector<Trace>& traces) {
  Trace out;
  out.name = "merged";
  size_t total = 0;
  for (const Trace& t : traces) {
    total += t.records.size();
  }
  out.records.reserve(total);
  // K-way merge by repeated min scan (K is small in practice).
  std::vector<size_t> next(traces.size(), 0);
  for (size_t emitted = 0; emitted < total; ++emitted) {
    int best = -1;
    for (size_t k = 0; k < traces.size(); ++k) {
      if (next[k] >= traces[k].records.size()) {
        continue;
      }
      if (best < 0 || traces[k].records[next[k]].time <
                          traces[static_cast<size_t>(best)]
                              .records[next[static_cast<size_t>(best)]]
                              .time) {
        best = static_cast<int>(k);
      }
    }
    const auto kbest = static_cast<size_t>(best);
    out.records.push_back(traces[kbest].records[next[kbest]]);
    ++next[kbest];
  }
  return out;
}

Trace Concatenate(const Trace& a, const Trace& b, SimDuration gap) {
  assert(gap >= 0);
  Trace out;
  out.name = a.name + "+" + b.name;
  out.records = a.records;
  const SimTime shift = a.Duration() + gap;
  for (TraceRecord r : b.records) {
    r.time += shift;
    out.records.push_back(r);
  }
  return out;
}

}  // namespace afraid
