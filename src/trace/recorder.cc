#include "trace/recorder.h"

#include <algorithm>
#include <cinttypes>

namespace afraid {

WorkloadRecorder::WorkloadRecorder(const std::string& path,
                                   size_t buffer_bytes)
    : buffer_bytes_(std::max<size_t>(buffer_bytes, 4096)) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = TraceStatus::Error(0, "cannot open trace file for writing");
    return;
  }
  buf_.reserve(buffer_bytes_ + 128);
  static constexpr char kHeader[] = "# afraid-trace v1\n";
  Emit(kHeader, sizeof(kHeader) - 1);
}

WorkloadRecorder::~WorkloadRecorder() { Close(); }

void WorkloadRecorder::Emit(const char* data, size_t n) {
  if (!status_.ok) {
    return;
  }
  buf_.append(data, n);
  if (buf_.size() >= buffer_bytes_) {
    Flush();
  }
}

void WorkloadRecorder::Flush() {
  if (!status_.ok || buf_.empty()) {
    return;
  }
  const size_t wrote = std::fwrite(buf_.data(), 1, buf_.size(), file_);
  if (wrote != buf_.size()) {
    status_ = TraceStatus::Error(0, "error writing trace file");
  }
  buf_.clear();
}

void WorkloadRecorder::SetName(std::string_view name) {
  std::string line = "# name ";
  line.append(name);
  line += '\n';
  Emit(line.data(), line.size());
}

void WorkloadRecorder::SetTenants(int32_t tenants) {
  if (tenants <= 0) {
    return;
  }
  char line[48];
  const int n =
      std::snprintf(line, sizeof(line), "# tenants %" PRId32 "\n", tenants);
  Emit(line, static_cast<size_t>(n));
}

void WorkloadRecorder::Append(const TraceRecord& r) {
  char line[96];
  const int n =
      std::snprintf(line, sizeof(line), "%" PRId64 " %c %" PRId64 " %d\n",
                    r.time, r.is_write ? 'W' : 'R', r.offset, r.size);
  Emit(line, static_cast<size_t>(n));
  ++records_;
}

bool WorkloadRecorder::Close() {
  if (file_ == nullptr) {
    return status_.ok;
  }
  Flush();
  if (std::fclose(file_) != 0 && status_.ok) {
    status_ = TraceStatus::Error(0, "error writing trace file");
  }
  file_ = nullptr;
  return status_.ok;
}

TraceStatus RecordTrace(const Trace& trace, const std::string& path) {
  WorkloadRecorder rec(path);
  rec.SetName(trace.name);
  rec.SetTenants(trace.tenants);
  for (const TraceRecord& r : trace.records) {
    rec.Append(r);
  }
  rec.Close();
  return rec.status();
}

}  // namespace afraid
