#include "trace/workload_gen.h"

#include <algorithm>
#include <cassert>

namespace afraid {
namespace {

// Picks a size from the discrete (size, weight) distribution.
int32_t PickSize(const WorkloadParams& p, Rng& rng) {
  std::vector<double> weights;
  weights.reserve(p.size_dist.size());
  for (const auto& [size, w] : p.size_dist) {
    weights.push_back(w);
  }
  return p.size_dist[rng.WeightedIndex(weights)].first;
}

int64_t AlignDown(int64_t x, int64_t align) { return x - (x % align); }

}  // namespace

Trace GenerateWorkload(const WorkloadParams& p, uint64_t max_requests,
                       SimDuration max_duration) {
  assert(p.address_space_bytes > 0);
  assert(p.align_bytes > 0);
  assert(!p.size_dist.empty());
  assert(p.idle_pareto_alpha > 1.0);
  assert(p.mean_burst_requests >= 1.0);

  Trace trace;
  trace.name = p.name;
  Rng rng(p.seed);

  // Hot-region placement: evenly spread starting points with a per-workload
  // random offset, so different seeds exercise different parts of the array.
  const int64_t region_bytes = std::max<int64_t>(
      p.align_bytes,
      AlignDown(static_cast<int64_t>(p.hot_region_frac *
                                     static_cast<double>(p.address_space_bytes)),
                p.align_bytes));
  std::vector<int64_t> hot_starts;
  for (int32_t i = 0; i < p.hot_regions; ++i) {
    const int64_t base = p.address_space_bytes * i / std::max(p.hot_regions, 1);
    const int64_t jitter =
        rng.UniformInt(0, std::max<int64_t>(1, p.address_space_bytes / 16));
    hot_starts.push_back((base + jitter) % p.address_space_bytes);
  }

  // Pareto scales chosen so the (untruncated) means match the parameters.
  const double idle_xm =
      p.mean_idle_ms * (p.idle_pareto_alpha - 1.0) / p.idle_pareto_alpha;
  const double long_idle_xm =
      p.mean_long_idle_ms * (p.long_idle_alpha - 1.0) / p.long_idle_alpha;

  SimTime now = 0;
  // Sequential-run state.
  int64_t run_next_offset = -1;
  bool run_is_write = false;

  while (trace.records.size() < max_requests && now <= max_duration) {
    const int64_t burst_len = rng.GeometricTrials(1.0 / p.mean_burst_requests);
    for (int64_t i = 0; i < burst_len; ++i) {
      if (trace.records.size() >= max_requests || now > max_duration) {
        break;
      }
      TraceRecord r;
      const int32_t size = PickSize(p, rng);
      const bool continue_run = run_next_offset >= 0 && rng.Bernoulli(p.seq_prob) &&
                                run_next_offset + size <= p.address_space_bytes;
      if (continue_run) {
        r.offset = run_next_offset;
        r.is_write = run_is_write;
      } else {
        // Start a new run, in a hot region or uniformly over the space.
        int64_t base = 0;
        int64_t span = p.address_space_bytes;
        if (p.hot_regions > 0 && rng.Bernoulli(p.hot_fraction)) {
          const auto region = static_cast<size_t>(rng.UniformInt(0, p.hot_regions - 1));
          base = hot_starts[region];
          span = region_bytes;
        }
        int64_t off = base + rng.UniformInt(0, std::max<int64_t>(span - 1, 0));
        off = AlignDown(off, p.align_bytes);
        if (off + size > p.address_space_bytes) {
          off = AlignDown(p.address_space_bytes - size, p.align_bytes);
        }
        r.offset = std::max<int64_t>(off, 0);
        r.is_write = rng.Bernoulli(p.write_fraction);
      }
      r.size = size;
      r.time = now;
      trace.records.push_back(r);

      run_next_offset = r.offset + r.size;
      run_is_write = r.is_write;

      now += MillisecondsF(rng.ExponentialMean(p.intra_burst_gap_ms));
    }
    // OFF period: heavy-tailed idle gap, occasionally a much longer quiet
    // spell (multi-timescale burstiness). A burst boundary also breaks any
    // sequential run (the client went away and came back elsewhere).
    run_next_offset = -1;
    if (p.long_idle_prob > 0.0 && rng.Bernoulli(p.long_idle_prob)) {
      now += MillisecondsF(
          rng.Pareto(p.long_idle_alpha, long_idle_xm, p.max_long_idle_ms));
    } else {
      now += MillisecondsF(rng.Pareto(p.idle_pareto_alpha, idle_xm, p.max_idle_ms));
    }
  }
  return trace;
}

std::vector<WorkloadParams> PaperWorkloads() {
  std::vector<WorkloadParams> all;

  {
    // hplajw: single-user HP-UX workstation (email, document editing).
    // Very light and very bursty; writes dominate (swap/metadata), small I/Os.
    WorkloadParams p;
    p.name = "hplajw";
    p.seed = 0xaf1001;
    p.mean_burst_requests = 8;
    p.mean_idle_ms = 2000;
    p.idle_pareto_alpha = 1.2;
    p.intra_burst_gap_ms = 40;
    p.write_fraction = 0.57;
    p.size_dist = {{4096, 0.5}, {8192, 0.4}, {16384, 0.1}};
    p.seq_prob = 0.30;
    p.hot_regions = 4;
    p.hot_fraction = 0.5;
    p.hot_region_frac = 0.005;
    p.long_idle_prob = 0.25;
    p.mean_long_idle_ms = 180000;
    all.push_back(p);
  }
  {
    // snake: HP-UX file server for a Berkeley workstation cluster.
    // Moderate load, bursty, read-leaning, some large sequential transfers.
    WorkloadParams p;
    p.name = "snake";
    p.seed = 0xaf1002;
    p.mean_burst_requests = 25;
    p.mean_idle_ms = 800;
    p.idle_pareto_alpha = 1.25;
    p.intra_burst_gap_ms = 12;
    p.write_fraction = 0.40;
    p.size_dist = {{4096, 0.3}, {8192, 0.45}, {16384, 0.15}, {32768, 0.10}};
    p.seq_prob = 0.45;
    p.hot_regions = 6;
    p.hot_fraction = 0.5;
    p.hot_region_frac = 0.01;
    p.long_idle_prob = 0.18;
    p.mean_long_idle_ms = 120000;
    all.push_back(p);
  }
  {
    // cello-usr: timesharing root//usr//users disks; ~20 developers.
    WorkloadParams p;
    p.name = "cello-usr";
    p.seed = 0xaf1003;
    p.mean_burst_requests = 20;
    p.mean_idle_ms = 600;
    p.idle_pareto_alpha = 1.25;
    p.intra_burst_gap_ms = 15;
    p.write_fraction = 0.54;
    p.size_dist = {{4096, 0.4}, {8192, 0.5}, {16384, 0.1}};
    p.seq_prob = 0.35;
    p.hot_regions = 5;
    p.hot_fraction = 0.55;
    p.hot_region_frac = 0.008;
    p.long_idle_prob = 0.15;
    p.mean_long_idle_ms = 90000;
    all.push_back(p);
  }
  {
    // cello-news: the Usenet news disk -- half of all I/Os on the system;
    // write-heavy with strong locality (news spool and its databases).
    WorkloadParams p;
    p.name = "cello-news";
    p.seed = 0xaf1004;
    p.mean_burst_requests = 60;
    p.mean_idle_ms = 300;
    p.idle_pareto_alpha = 1.3;
    p.intra_burst_gap_ms = 11;
    p.write_fraction = 0.70;
    p.size_dist = {{4096, 0.5}, {8192, 0.5}};
    p.seq_prob = 0.40;
    p.hot_regions = 3;
    p.hot_fraction = 0.7;
    p.hot_region_frac = 0.01;
    p.long_idle_prob = 0.08;
    p.mean_long_idle_ms = 45000;
    all.push_back(p);
  }
  {
    // netware: intensive database-loading benchmark on a Novell server.
    // Near saturation: long write bursts with short pauses.
    WorkloadParams p;
    p.name = "netware";
    p.seed = 0xaf1005;
    p.mean_burst_requests = 120;
    p.mean_idle_ms = 900;
    p.idle_pareto_alpha = 1.5;
    p.intra_burst_gap_ms = 10.0;
    p.write_fraction = 0.85;
    p.size_dist = {{2048, 0.3}, {4096, 0.4}, {8192, 0.2}, {16384, 0.1}};
    p.seq_prob = 0.50;
    p.hot_regions = 2;
    p.hot_fraction = 0.6;
    p.hot_region_frac = 0.02;
    p.long_idle_prob = 0.04;
    p.mean_long_idle_ms = 45000;
    all.push_back(p);
  }
  {
    // ATT: production telephone-company database (OLTP): high rate of small
    // random writes, little idle time.
    WorkloadParams p;
    p.name = "ATT";
    p.seed = 0xaf1006;
    p.mean_burst_requests = 120;
    p.mean_idle_ms = 120;
    p.idle_pareto_alpha = 1.5;
    p.intra_burst_gap_ms = 9.5;
    p.write_fraction = 0.75;
    p.size_dist = {{2048, 0.5}, {4096, 0.35}, {8192, 0.15}};
    p.seq_prob = 0.10;
    p.hot_regions = 8;
    p.hot_fraction = 0.8;
    p.hot_region_frac = 0.002;
    p.long_idle_prob = 0.0;  // The paper's MDLR exception: effectively no slack.
    all.push_back(p);
  }
  {
    // AS400-1..4: four production IBM AS/400 commercial systems, heaviest
    // to lightest.
    WorkloadParams p;
    p.name = "AS400-1";
    p.seed = 0xaf1007;
    p.mean_burst_requests = 100;
    p.mean_idle_ms = 180;
    p.idle_pareto_alpha = 1.4;
    p.intra_burst_gap_ms = 10;
    p.write_fraction = 0.60;
    p.size_dist = {{4096, 0.4}, {8192, 0.4}, {16384, 0.2}};
    p.seq_prob = 0.30;
    p.hot_regions = 6;
    p.hot_fraction = 0.6;
    p.hot_region_frac = 0.005;
    p.long_idle_prob = 0.04;
    p.mean_long_idle_ms = 45000;
    all.push_back(p);
  }
  {
    WorkloadParams p;
    p.name = "AS400-2";
    p.seed = 0xaf1008;
    p.mean_burst_requests = 60;
    p.mean_idle_ms = 350;
    p.idle_pareto_alpha = 1.3;
    p.intra_burst_gap_ms = 10;
    p.write_fraction = 0.50;
    p.size_dist = {{4096, 0.4}, {8192, 0.5}, {16384, 0.1}};
    p.seq_prob = 0.35;
    p.hot_regions = 6;
    p.hot_fraction = 0.6;
    p.hot_region_frac = 0.005;
    p.long_idle_prob = 0.10;
    p.mean_long_idle_ms = 60000;
    all.push_back(p);
  }
  {
    WorkloadParams p;
    p.name = "AS400-3";
    p.seed = 0xaf1009;
    p.mean_burst_requests = 35;
    p.mean_idle_ms = 500;
    p.idle_pareto_alpha = 1.3;
    p.intra_burst_gap_ms = 14;
    p.write_fraction = 0.45;
    p.size_dist = {{4096, 0.35}, {8192, 0.5}, {16384, 0.15}};
    p.seq_prob = 0.40;
    p.hot_regions = 5;
    p.hot_fraction = 0.55;
    p.hot_region_frac = 0.006;
    p.long_idle_prob = 0.15;
    p.mean_long_idle_ms = 90000;
    all.push_back(p);
  }
  {
    WorkloadParams p;
    p.name = "AS400-4";
    p.seed = 0xaf100a;
    p.mean_burst_requests = 90;
    p.mean_idle_ms = 250;
    p.idle_pareto_alpha = 1.35;
    p.intra_burst_gap_ms = 12;
    p.write_fraction = 0.65;
    p.size_dist = {{4096, 0.45}, {8192, 0.45}, {16384, 0.1}};
    p.seq_prob = 0.30;
    p.hot_regions = 6;
    p.hot_fraction = 0.6;
    p.hot_region_frac = 0.005;
    p.long_idle_prob = 0.08;
    p.mean_long_idle_ms = 45000;
    all.push_back(p);
  }
  return all;
}

bool FindWorkload(const std::string& name, WorkloadParams* out) {
  for (const WorkloadParams& p : PaperWorkloads()) {
    if (p.name == name) {
      *out = p;
      return true;
    }
  }
  return false;
}

}  // namespace afraid
