#include "trace/trace_stream.h"

#include <algorithm>
#include <cstring>

namespace afraid {

TraceChunkReader::TraceChunkReader(const std::string& path,
                                   const StreamOptions& opts)
    : chunk_bytes_(std::max<size_t>(opts.chunk_bytes, 64)) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    // Same message (and line 0) as the monolithic LoadTraceFile.
    status_ = TraceStatus::Error(0, "cannot open trace file");
    input_done_ = true;
    finished_ = true;
    return;
  }
  if (opts.read_ahead) {
    StartPrefetch();
  }
}

TraceChunkReader::~TraceChunkReader() {
  if (prefetch_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    prefetch_.join();
  }
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void TraceChunkReader::FillBlock(std::string* dst, bool* at_eof,
                                 bool* read_err) {
  dst->resize(chunk_bytes_);
  const size_t got = std::fread(dst->data(), 1, chunk_bytes_, file_);
  dst->resize(got);
  *read_err = std::ferror(file_) != 0;
  *at_eof = !*read_err && got < chunk_bytes_;
}

void TraceChunkReader::StartPrefetch() {
  prefetch_ = std::thread([this] {
    std::string local;
    for (;;) {
      bool eof = false;
      bool err = false;
      FillBlock(&local, &eof, &err);
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return !ready_ || stop_; });
        if (stop_) {
          return;
        }
        ready_block_.swap(local);
        ready_ = true;
        ready_eof_ = eof;
        ready_err_ = err;
      }
      cv_.notify_all();
      if (eof || err) {
        return;  // The final (possibly empty) block has been delivered.
      }
    }
  });
}

void TraceChunkReader::TakeBlock(std::string* dst, bool* at_eof,
                                 bool* read_err) {
  if (!prefetch_.joinable()) {
    FillBlock(dst, at_eof, read_err);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return ready_; });
  dst->swap(ready_block_);
  *at_eof = ready_eof_;
  *read_err = ready_err_;
  ready_ = false;
  lock.unlock();
  cv_.notify_all();
}

void TraceChunkReader::NotePeak() {
  const size_t now = window_.capacity() + carry_.capacity() +
                     block_.capacity() + ready_block_.capacity() +
                     chunk_.records.capacity() * sizeof(TraceRecord);
  peak_buffer_bytes_ = std::max(peak_buffer_bytes_, now);
}

bool TraceChunkReader::Next() {
  while (status_.ok && !finished_) {
    // Assemble the parse window: the carried partial line, then fresh blocks
    // until the window contains a newline (normally one block; more only for
    // a pathological line longer than a chunk) or the file ends.
    window_.clear();
    window_.append(carry_);  // Copy, not swap: both keep their capacity.
    carry_.clear();
    size_t search_from = 0;  // The carry never contains a newline.
    while (!input_done_ &&
           window_.find('\n', search_from) == std::string::npos) {
      search_from = window_.size();
      bool at_eof = false;
      bool read_err = false;
      TakeBlock(&block_, &at_eof, &read_err);
      window_.append(block_);
      if (read_err) {
        status_ = TraceStatus::Error(0, "error reading trace file");
        finished_ = true;
        return false;
      }
      if (at_eof) {
        input_done_ = true;
      }
    }

    // Parse up to the last newline; carry the tail. At end of file the final
    // partial line (a file with no trailing newline) is parsed as-is.
    size_t parse_len = window_.size();
    if (!input_done_) {
      const size_t last_nl = window_.rfind('\n');
      parse_len = last_nl + 1;  // A newline is guaranteed by the loop above.
      carry_.assign(window_, parse_len, std::string::npos);
    }

    chunk_.name.clear();
    chunk_.tenants = 0;
    chunk_.records.clear();
    status_ = ScanTraceChunk(std::string_view(window_.data(), parse_len),
                             next_line_, &chunk_, &next_line_);
    NotePeak();
    if (!chunk_.name.empty()) {
      name_ = chunk_.name;
    }
    if (chunk_.tenants > 0) {
      tenants_ = chunk_.tenants;
    }
    if (!status_.ok) {
      // Deliver the records scanned before the erroring line -- the replay
      // prefix matches what a monolithic parse would have accepted -- and
      // report the sticky error on the next call.
      finished_ = true;
      if (!chunk_.records.empty()) {
        ++chunks_read_;
        records_read_ += chunk_.records.size();
        return true;
      }
      return false;
    }
    if (input_done_) {
      finished_ = true;
    }
    if (!chunk_.records.empty()) {
      ++chunks_read_;
      records_read_ += chunk_.records.size();
      return true;
    }
    // Header/comment-only window: keep reading.
  }
  return false;
}

}  // namespace afraid
