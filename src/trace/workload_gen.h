// Synthetic bursty-workload generator (ON/OFF model).
//
// We do not have the HP trace archive the paper replayed (hplajw, snake,
// cello, netware, ATT, AS400), so each trace is replaced by a parameterised
// synthetic generator capturing the two properties AFRAID's results turn on:
//
//   * burstiness -- client activity arrives in bursts separated by idle gaps
//     (heavy-tailed, per [Ruemmler93]); the idle gaps are where AFRAID
//     rebuilds parity "for free";
//   * write intensity -- the fraction and size of writes determines both the
//     RAID 5 small-update penalty being avoided and the parity lag created.
//
// The model alternates ON (burst) and OFF (idle) periods. Idle-period
// lengths are Pareto-distributed (heavy tail: occasional very long quiet
// spells, as real systems show overnight). Burst lengths are geometric in
// request count; within a burst, inter-arrival gaps are exponential. Request
// addresses mix sequential runs, hot regions and a uniform background;
// request sizes come from a discrete distribution.

#ifndef AFRAID_TRACE_WORKLOAD_GEN_H_
#define AFRAID_TRACE_WORKLOAD_GEN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"
#include "trace/trace.h"

namespace afraid {

struct WorkloadParams {
  std::string name;
  uint64_t seed = 1;

  // Byte span of the logical address space to generate over. The experiment
  // harness overwrites this with the target array's data capacity.
  int64_t address_space_bytes = 0;

  // --- Burst (ON/OFF) structure ---
  double mean_burst_requests = 10.0;  // Geometric mean burst length, >= 1.
  double mean_idle_ms = 500.0;     // Mean OFF-period length...
  double idle_pareto_alpha = 1.3;  // ...with a Pareto tail of this shape (> 1).
  double max_idle_ms = 120000.0;   // Truncation to keep runs finite.
  // Multi-timescale burstiness: real systems are quiet for minutes-to-hours
  // between working sets (lunch, night), not just between request bursts.
  // With this probability an OFF period is drawn from the *long* idle
  // distribution instead. These long slack periods are exactly where AFRAID
  // recovers redundancy at zero client-visible cost.
  double long_idle_prob = 0.0;
  double mean_long_idle_ms = 60000.0;
  double long_idle_alpha = 1.5;
  double max_long_idle_ms = 1.8e6;  // 30 minutes.
  double intra_burst_gap_ms = 15.0;   // Mean exponential gap inside a burst.

  // --- Request mix ---
  double write_fraction = 0.5;
  // (size_bytes, weight) pairs; sizes must be multiples of align_bytes.
  std::vector<std::pair<int32_t, double>> size_dist = {{8192, 1.0}};
  double seq_prob = 0.3;        // P(request continues the current run).
  int32_t hot_regions = 4;      // Number of hot spots...
  double hot_fraction = 0.6;    // ...receiving this fraction of new runs...
  double hot_region_frac = 0.01;  // ...each spanning this fraction of space.
  int32_t align_bytes = 512;
};

// Generates a trace until either `max_requests` records exist or simulated
// time passes `max_duration` (whichever is first; either may be generous).
Trace GenerateWorkload(const WorkloadParams& params, uint64_t max_requests,
                       SimDuration max_duration);

// The nine named workloads of the paper's Section 4.1 (synthetic stand-ins;
// see DESIGN.md "Substitutions"). Address space is left 0 for the caller.
std::vector<WorkloadParams> PaperWorkloads();

// Finds a paper workload by name; returns false if unknown.
bool FindWorkload(const std::string& name, WorkloadParams* out);

}  // namespace afraid

#endif  // AFRAID_TRACE_WORKLOAD_GEN_H_
