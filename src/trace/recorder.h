// Workload recording: the inverse of trace ingest. Serializes any stream of
// TraceRecords to the text trace format ("# afraid-trace v1" header, one
// "<time_ns> <R|W> <offset> <size>" line per record) through a fixed-size
// write buffer, so synthetic workloads of any length can be pinned to disk
// and replayed -- monolithically or streamed -- through the one pipeline.
//
// The byte format is exactly SerializeTrace's: recording a Trace and writing
// SerializeTrace(trace) to a file produce identical bytes (tested).

#ifndef AFRAID_TRACE_RECORDER_H_
#define AFRAID_TRACE_RECORDER_H_

#include <cstdio>
#include <string>
#include <string_view>

#include "trace/trace.h"

namespace afraid {

class WorkloadRecorder {
 public:
  // Opens `path` for writing and emits the format header. Check ok().
  explicit WorkloadRecorder(const std::string& path,
                            size_t buffer_bytes = 1u << 20);
  ~WorkloadRecorder();  // Closes (flushing) if Close() was not called.

  WorkloadRecorder(const WorkloadRecorder&) = delete;
  WorkloadRecorder& operator=(const WorkloadRecorder&) = delete;

  bool ok() const { return status_.ok; }
  const TraceStatus& status() const { return status_; }

  // Header lines. Call before the first Append so readers -- which apply a
  // header wherever it appears but report metadata as "seen so far" -- see
  // them up front. SetName is emitted unconditionally by the format; call it
  // even with an empty name to match SerializeTrace bytes (the constructor
  // does NOT emit it, so the caller controls the name value).
  void SetName(std::string_view name);
  void SetTenants(int32_t tenants);  // Emitted only when positive.

  void Append(const TraceRecord& r);

  // Flushes and closes the file; returns overall success. Idempotent.
  bool Close();

  uint64_t records() const { return records_; }

 private:
  void Emit(const char* data, size_t n);
  void Flush();

  std::FILE* file_ = nullptr;
  TraceStatus status_;
  std::string buf_;
  size_t buffer_bytes_;
  uint64_t records_ = 0;
};

// Convenience one-shot: record a whole in-memory trace (name, tenants when
// positive, records) to `path`.
TraceStatus RecordTrace(const Trace& trace, const std::string& path);

}  // namespace afraid

#endif  // AFRAID_TRACE_RECORDER_H_
