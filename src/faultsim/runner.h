// Parallel campaign runner: spreads a campaign's independent lifetimes over
// the shared deterministic sweep pool (core/sweep.h).
//
// Each lifetime is a pure function of (config, index) -- it owns its
// Simulator, controller, and RNG streams, all seeded by
// DeriveStreamSeed(base_seed, index) -- so workers share nothing but the
// work-item counter and the result vector. Each result lands lock-free in
// its own index slot (distinct slots, one writer each), and the summary is
// reduced sequentially by index afterwards, making the output bit-identical
// for any thread count. Workers keep one LifetimeArena per thread so the
// event-queue storage of both simulators is recycled across lifetimes.

#ifndef AFRAID_FAULTSIM_RUNNER_H_
#define AFRAID_FAULTSIM_RUNNER_H_

#include <cstdint>
#include <vector>

#include "faultsim/campaign.h"

namespace afraid {

// Thread count actually used for `requested`: values < 1 mean "use the
// sweep default" (AFRAID_BENCH_THREADS if set, else hardware concurrency;
// see core/sweep.h SweepThreads), and the pool never exceeds the lifetime
// count.
int32_t EffectiveThreads(int32_t requested, int32_t lifetimes);

// Runs all lifetimes of the campaign on `num_threads` workers (see
// EffectiveThreads). Returns per-lifetime results ordered by index.
std::vector<LifetimeResult> RunCampaignLifetimes(const CampaignConfig& config,
                                                 int32_t num_threads);

// RunCampaignLifetimes + Summarize.
CampaignSummary RunCampaign(const CampaignConfig& config, int32_t num_threads);

}  // namespace afraid

#endif  // AFRAID_FAULTSIM_RUNNER_H_
