#include "faultsim/scenario.h"

#include <cassert>
#include <cmath>

namespace afraid {

ScenarioEngine::ScenarioEngine(const FaultModelParams& params, int32_t num_disks,
                               uint64_t seed, ScenarioEvents events,
                               const VarianceReduction& vr, double horizon_hours,
                               Simulator* sim)
    : params_(params),
      num_disks_(num_disks),
      owned_sim_(sim == nullptr ? std::make_unique<Simulator>() : nullptr),
      sim_(sim == nullptr ? owned_sim_.get() : sim),
      rng_(seed),
      events_(std::move(events)),
      vr_(vr),
      horizon_hours_(horizon_hours) {
  assert(num_disks_ > 0);
  assert(params_.mttf_disk_raw_hours > 0.0);
  assert(params_.coverage >= 0.0 && params_.coverage < 1.0);
  assert(params_.mttr_hours > 0.0);
  assert(sim_->Now() == 0 && sim_->Idle());
  if (vr_.Enabled()) {
    assert(horizon_hours_ > 0.0);
    assert(vr_.failure_bias > 0.0);
    ScheduleInitialForced();
    return;
  }
  // Variance reduction off: exactly the historical draw order, no clock
  // bookkeeping, log weight pinned at 0.
  for (int32_t d = 0; d < num_disks_; ++d) {
    ScheduleDiskFailure(d);
  }
  if (params_.nvram_mttf_hours > 0.0) {
    ScheduleNvramLoss();
  }
  if (params_.support_mttdl_hours > 0.0) {
    ScheduleSupportLoss();
  }
}

void ScenarioEngine::RunUntil(double hours) {
  const SimTime deadline = TimelineFromHours(hours);
  while (!stopped_ && !sim_->Idle() && sim_->NextEventTime() <= deadline) {
    sim_->Step();
  }
  if (!stopped_ && sim_->Now() < deadline) {
    sim_->RunUntil(deadline);  // No events remain before it: just advance the clock.
  }
}

void ScenarioEngine::ScheduleInitialForced() {
  const double b = vr_.RateMultiplier();
  const bool has_nvram = params_.nvram_mttf_hours > 0.0;
  const bool has_support = params_.support_mttdl_hours > 0.0;
  const size_t n_clocks =
      static_cast<size_t>(num_disks_) + (has_nvram ? 1 : 0) + (has_support ? 1 : 0);
  clocks_.assign(n_clocks, VrClock{});
  nvram_clock_ = static_cast<size_t>(num_disks_);
  support_clock_ = nvram_clock_ + (has_nvram ? 1 : 0);

  // Sampled (biased) per-clock rates, in clock-index order, and their total.
  const double disk_rate = b / params_.mttf_disk_raw_hours;
  const double nvram_rate = has_nvram ? b / params_.nvram_mttf_hours : 0.0;
  const double support_rate = has_support ? b / params_.support_mttdl_hours : 0.0;
  const double total_rate =
      disk_rate * static_cast<double>(num_disks_) + nvram_rate + support_rate;

  // Forcing: the superposed first event is Exp(total_rate) truncated to the
  // observation window [0, horizon). The sampled path's density is the
  // unconditioned one divided by the window mass F, so the likelihood ratio
  // against the nominal process picks up the factor F here; the per-clock
  // biased-vs-nominal terms are handled by VrClockFired / FinalLogWeight as
  // if all clocks were plain independent biased exponentials (memorylessness
  // makes the min/argmin/residual construction below equal in law to exactly
  // that, conditioned on the min landing in the window).
  const double trunc_mass = -std::expm1(-total_rate * horizon_hours_);
  const double u = rng_.UniformDouble(0.0, 1.0);
  const double t1_hours = -std::log1p(-u * trunc_mass) / total_rate;
  log_weight_ += std::log(trunc_mass);

  // Which clock fired first: proportional to the sampled rates.
  const double v = rng_.UniformDouble(0.0, 1.0) * total_rate;
  size_t winner = n_clocks - 1;
  double cumulative = 0.0;
  for (size_t c = 0; c < n_clocks; ++c) {
    const double rate = c < static_cast<size_t>(num_disks_) ? disk_rate
                        : (has_nvram && c == nvram_clock_) ? nvram_rate
                                                           : support_rate;
    cumulative += rate;
    if (v < cumulative) {
      winner = c;
      break;
    }
  }

  // The winner fires at t1; every other clock gets a memoryless residual
  // draw past t1. All clocks started at time 0 at their nominal means.
  for (size_t c = 0; c < n_clocks; ++c) {
    const double nominal_mean = c < static_cast<size_t>(num_disks_)
                                    ? params_.mttf_disk_raw_hours
                                : (has_nvram && c == nvram_clock_)
                                    ? params_.nvram_mttf_hours
                                    : params_.support_mttdl_hours;
    clocks_[c] = VrClock{0.0, nominal_mean, true};
    const double when_hours =
        c == winner ? t1_hours : t1_hours + rng_.ExponentialMean(nominal_mean / b);
    if (c < static_cast<size_t>(num_disks_)) {
      const int32_t disk = static_cast<int32_t>(c);
      sim_->After(TimelineFromHours(when_hours), [this, disk] {
        if (stopped_) {
          return;
        }
        OnDiskFails(disk);
      });
    } else if (has_nvram && c == nvram_clock_) {
      sim_->After(TimelineFromHours(when_hours), [this] {
        if (stopped_) {
          return;
        }
        OnNvramFails();
      });
    } else {
      sim_->After(TimelineFromHours(when_hours), [this] {
        if (stopped_) {
          return;
        }
        OnSupportFails();
      });
    }
  }
}

void ScenarioEngine::VrClockStarted(size_t clock, double mean_hours) {
  clocks_[clock] = VrClock{NowHours(), mean_hours, true};
}

void ScenarioEngine::VrClockFired(size_t clock) {
  VrClock& c = clocks_[clock];
  const double b = vr_.RateMultiplier();
  const double age_hours = NowHours() - c.start_hours;
  // Nominal-over-sampled density ratio of this draw:
  //   [(1/m) e^{-a/m}] / [(b/m) e^{-ba/m}] = (1/b) e^{(b-1)a/m}.
  log_weight_ += -std::log(b) + (b - 1.0) * age_hours / c.nominal_mean_hours;
  c.at_risk = false;
}

double ScenarioEngine::FinalLogWeight(double stop_hours) const {
  if (!vr_.Enabled()) {
    return 0.0;
  }
  const double b = vr_.RateMultiplier();
  double logw = log_weight_;
  // Clocks still pending at the stopping time are right-censored there: the
  // path only reveals that the draw exceeds its age, so each contributes the
  // survival ratio e^{-a/m} / e^{-ba/m} = e^{(b-1)a/m}. Clocks not at risk
  // (a disk mid-repair) accrue no hazard under either measure.
  for (const VrClock& c : clocks_) {
    if (!c.at_risk) {
      continue;
    }
    const double age_hours = stop_hours - c.start_hours;
    if (age_hours > 0.0) {
      logw += (b - 1.0) * age_hours / c.nominal_mean_hours;
    }
  }
  return logw;
}

void ScenarioEngine::ScheduleDiskFailure(int32_t disk) {
  double mean_hours = params_.mttf_disk_raw_hours;
  if (vr_.Enabled()) {
    VrClockStarted(static_cast<size_t>(disk), mean_hours);
    mean_hours /= vr_.RateMultiplier();
  }
  const double ttf_hours = rng_.ExponentialMean(mean_hours);
  sim_->After(TimelineFromHours(ttf_hours), [this, disk] {
    if (stopped_) {
      return;
    }
    OnDiskFails(disk);
  });
}

void ScenarioEngine::OnDiskFails(int32_t disk) {
  if (vr_.Enabled()) {
    VrClockFired(static_cast<size_t>(disk));  // The raw clock fired either way.
  }
  const bool predicted = rng_.Bernoulli(params_.coverage);
  if (predicted && params_.prediction_averts_loss) {
    // Caught in advance: the disk is migrated onto a replacement before it
    // dies, with no window of exposure. Good-as-new clock restart.
    ++predicted_averted_;
    if (events_.on_predicted_averted) {
      events_.on_predicted_averted(disk, NowHours());
    }
    if (!stopped_) {
      ScheduleDiskFailure(disk);
    }
    return;
  }
  ++disk_failures_;
  failed_.insert(disk);
  if (events_.on_disk_failure) {
    events_.on_disk_failure(disk, NowHours());
  }
  if (stopped_) {
    return;
  }
  sim_->After(TimelineFromHours(params_.mttr_hours), [this, disk] {
    if (stopped_) {
      return;
    }
    failed_.erase(disk);
    if (events_.on_repair_complete) {
      events_.on_repair_complete(disk, NowHours());
    }
    if (!stopped_) {
      ScheduleDiskFailure(disk);
    }
  });
}

void ScenarioEngine::ScheduleNvramLoss() {
  double mean_hours = params_.nvram_mttf_hours;
  if (vr_.Enabled()) {
    VrClockStarted(nvram_clock_, mean_hours);
    mean_hours /= vr_.RateMultiplier();
  }
  const double ttf_hours = rng_.ExponentialMean(mean_hours);
  sim_->After(TimelineFromHours(ttf_hours), [this] {
    if (stopped_) {
      return;
    }
    OnNvramFails();
  });
}

void ScenarioEngine::OnNvramFails() {
  if (vr_.Enabled()) {
    VrClockFired(nvram_clock_);
  }
  ++nvram_losses_;
  if (events_.on_nvram_loss) {
    events_.on_nvram_loss(NowHours());
  }
  if (!stopped_) {
    ScheduleNvramLoss();  // Immediate replacement of the failed part.
  }
}

void ScenarioEngine::ScheduleSupportLoss() {
  double mean_hours = params_.support_mttdl_hours;
  if (vr_.Enabled()) {
    VrClockStarted(support_clock_, mean_hours);
    mean_hours /= vr_.RateMultiplier();
  }
  const double ttf_hours = rng_.ExponentialMean(mean_hours);
  sim_->After(TimelineFromHours(ttf_hours), [this] {
    if (stopped_) {
      return;
    }
    OnSupportFails();
  });
}

void ScenarioEngine::OnSupportFails() {
  if (vr_.Enabled()) {
    VrClockFired(support_clock_);
  }
  ++support_losses_;
  if (events_.on_support_loss) {
    events_.on_support_loss(NowHours());
  }
  if (!stopped_) {
    ScheduleSupportLoss();
  }
}

}  // namespace afraid
