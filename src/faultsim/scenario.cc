#include "faultsim/scenario.h"

#include <cassert>

namespace afraid {

ScenarioEngine::ScenarioEngine(const FaultModelParams& params, int32_t num_disks,
                               uint64_t seed, ScenarioEvents events)
    : params_(params), num_disks_(num_disks), rng_(seed), events_(std::move(events)) {
  assert(num_disks_ > 0);
  assert(params_.mttf_disk_raw_hours > 0.0);
  assert(params_.coverage >= 0.0 && params_.coverage < 1.0);
  assert(params_.mttr_hours > 0.0);
  for (int32_t d = 0; d < num_disks_; ++d) {
    ScheduleDiskFailure(d);
  }
  if (params_.nvram_mttf_hours > 0.0) {
    ScheduleNvramLoss();
  }
  if (params_.support_mttdl_hours > 0.0) {
    ScheduleSupportLoss();
  }
}

void ScenarioEngine::RunUntil(double hours) {
  const SimTime deadline = TimelineFromHours(hours);
  while (!stopped_ && !sim_.Idle() && sim_.NextEventTime() <= deadline) {
    sim_.Step();
  }
  if (!stopped_ && sim_.Now() < deadline) {
    sim_.RunUntil(deadline);  // No events remain before it: just advance the clock.
  }
}

void ScenarioEngine::ScheduleDiskFailure(int32_t disk) {
  const double ttf_hours = rng_.ExponentialMean(params_.mttf_disk_raw_hours);
  sim_.After(TimelineFromHours(ttf_hours), [this, disk] {
    if (stopped_) {
      return;
    }
    OnDiskFails(disk);
  });
}

void ScenarioEngine::OnDiskFails(int32_t disk) {
  const bool predicted = rng_.Bernoulli(params_.coverage);
  if (predicted && params_.prediction_averts_loss) {
    // Caught in advance: the disk is migrated onto a replacement before it
    // dies, with no window of exposure. Good-as-new clock restart.
    ++predicted_averted_;
    if (events_.on_predicted_averted) {
      events_.on_predicted_averted(disk, NowHours());
    }
    if (!stopped_) {
      ScheduleDiskFailure(disk);
    }
    return;
  }
  ++disk_failures_;
  failed_.insert(disk);
  if (events_.on_disk_failure) {
    events_.on_disk_failure(disk, NowHours());
  }
  if (stopped_) {
    return;
  }
  sim_.After(TimelineFromHours(params_.mttr_hours), [this, disk] {
    if (stopped_) {
      return;
    }
    failed_.erase(disk);
    if (events_.on_repair_complete) {
      events_.on_repair_complete(disk, NowHours());
    }
    if (!stopped_) {
      ScheduleDiskFailure(disk);
    }
  });
}

void ScenarioEngine::ScheduleNvramLoss() {
  const double ttf_hours = rng_.ExponentialMean(params_.nvram_mttf_hours);
  sim_.After(TimelineFromHours(ttf_hours), [this] {
    if (stopped_) {
      return;
    }
    ++nvram_losses_;
    if (events_.on_nvram_loss) {
      events_.on_nvram_loss(NowHours());
    }
    if (!stopped_) {
      ScheduleNvramLoss();  // Immediate replacement of the failed part.
    }
  });
}

void ScenarioEngine::ScheduleSupportLoss() {
  const double ttf_hours = rng_.ExponentialMean(params_.support_mttdl_hours);
  sim_.After(TimelineFromHours(ttf_hours), [this] {
    if (stopped_) {
      return;
    }
    ++support_losses_;
    if (events_.on_support_loss) {
      events_.on_support_loss(NowHours());
    }
    if (!stopped_) {
      ScheduleSupportLoss();
    }
  });
}

}  // namespace afraid
