// The array exposure model: a live array scheme sampled by the fault
// timeline.
//
// Disk lifetimes span millions of hours; array mechanics play out in
// milliseconds. Simulating the client workload continuously for a whole
// lifetime is infeasible, and unnecessary: between faults the array's
// exposure state (which bands are unprotected) is a stationary stochastic
// process driven by the workload, and a fault occurring at a random wall
// time samples that process at a random instant. So each lifetime carries
// ONE ns-scale array simulation -- controller, host driver, and an endless
// chunked replay of the workload -- and each timeline fault:
//
//   1. advances the array sim by a random decorrelation interval (sampling a
//      fresh instant of the stationary exposure process, mid-burst or idle);
//   2. injects the fault through the controller's own failure machinery
//      (FailDisk / ReplaceDisk / StartReconstruction, or FailNvram /
//      StartFullScrub) with client requests still in flight;
//   3. reads the loss off the controller's loss-event hooks -- the exact
//      accounting the rest of the repository uses.
//
// The ~48-hour repair windows are not replayed at array scale (they are
// <0.01% of a lifetime); dual failures inside a window are priced by the
// campaign layer from the timeline alone, since the controller models at
// most one concurrent disk failure.

#ifndef AFRAID_FAULTSIM_EXPOSURE_H_
#define AFRAID_FAULTSIM_EXPOSURE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "array/host_driver.h"
#include "array/scheme.h"
#include "core/array_config.h"
#include "core/experiment.h"
#include "core/policy.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "trace/workload_gen.h"

namespace afraid {

// Outcome of one injected fault, as measured by the controller.
struct DrillResult {
  int64_t bytes_lost = 0;
  uint64_t loss_events = 0;
  // Exposure state at the instant of the fault.
  int64_t dirty_bands_at_failure = 0;
  double parity_lag_at_failure_bytes = 0.0;
  // Array-sim time from fault injection to full redundancy restored.
  SimDuration recovery_time = 0;
  // The individual incidents, from the controller's loss-event hooks.
  std::vector<LossEvent> events;
};

class ExposureModel {
 public:
  // `scheme` is a registry name (src/core/scheme_registry.h); the config is
  // normalised for it. A non-null `probe` traces the embedded array
  // simulation (disk, driver and controller tracks as usual) plus a "faults"
  // track marking each drill's injection and recovery completion. A non-null
  // `sim` is borrowed in place of the internal simulator (it must be freshly
  // reset); the campaign's per-worker LifetimeArena uses this to retain
  // event-queue storage across lifetimes.
  ExposureModel(const std::string& scheme, const ArrayConfig& config,
                const PolicySpec& policy, const WorkloadParams& workload,
                uint64_t seed, Simulator* sim = nullptr, Probe probe = {});
  ~ExposureModel();
  ExposureModel(const ExposureModel&) = delete;
  ExposureModel& operator=(const ExposureModel&) = delete;

  // Runs the workload forward by `d` of array-sim time (new requests keep
  // arriving; idle-triggered rebuilds run as usual).
  void Advance(SimDuration d);

  // Client requests completed so far (campaigns warm up until the array has
  // real write history, not just wall time -- a cold start into one of the
  // workload's long idle periods would sample an artificially empty array).
  uint64_t RequestsCompleted() const { return driver_->Completed(); }

  // Current exposure state (the screening the campaign uses to skip drills
  // that provably cannot lose data).
  int64_t DirtyBands() const { return controller_->State().dirty_marks; }
  double CurrentParityLagBytes() const {
    return controller_->State().parity_lag_bytes;
  }

  // Fails `disk` NOW (requests may be mid-flight), lets outstanding client
  // work finish degraded, then replaces the disk and runs the reconstruction
  // sweep to completion. Returns the measured loss. The array is fully
  // redundant again afterwards; the workload resumes on the next Advance().
  DrillResult FailureDrill(int32_t disk);

  // Loses the NVRAM marking memory and runs the conservative whole-array
  // scrub. With marking-only NVRAM this loses no data (the campaign layer
  // adds the Section 3.4 vulnerable-bytes loss when configured). A no-op
  // (zero loss, zero recovery time) on schemes without marking memory.
  DrillResult NvramDrill();

  // Time-weighted exposure statistics over everything simulated so far.
  double TUnprotFraction() const { return controller_->Stats().t_unprot_fraction; }
  double MeanParityLagBytes() const {
    return controller_->Stats().mean_parity_lag_bytes;
  }

  const ArrayScheme& controller() const { return *controller_; }
  ArrayScheme& controller() { return *controller_; }
  Simulator& sim() { return *sim_; }
  const HostDriver& driver() const { return *driver_; }

 private:
  void EnsureArrivalScheduled();
  void PauseFeeding();
  void ResumeFeeding();
  void RunUntilDrained();
  DrillResult FinishDrill(const DrillResult& partial, SimTime started);

  ArrayConfig cfg_;
  std::unique_ptr<Simulator> owned_sim_;  // Null when borrowing an arena sim.
  Simulator* sim_;
  Rng rng_;
  WorkloadParams workload_;
  Probe fault_probe_;  // "faults" track; null when not tracing.
  std::unique_ptr<ArrayScheme> controller_;
  std::unique_ptr<HostDriver> driver_;

  // Chunked workload feeding: one pending arrival event at a time, next
  // chunk generated lazily when the current one is exhausted.
  Trace chunk_;
  size_t next_record_ = 0;
  SimTime chunk_base_ = 0;
  bool feeding_paused_ = false;
  bool arrival_pending_ = false;
  EventId pending_arrival_ = 0;

  std::vector<LossEvent> drill_events_;
};

}  // namespace afraid

#endif  // AFRAID_FAULTSIM_EXPOSURE_H_
