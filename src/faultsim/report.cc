#include "faultsim/report.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "core/experiment.h"
#include "core/policy.h"
#include "core/scheme_registry.h"

namespace afraid {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string FmtG(double v) {
  if (std::isinf(v)) {
    return v > 0 ? "inf" : "-inf";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string JsonNum(double v) {
  if (std::isinf(v) || std::isnan(v)) {
    return "null";  // JSON has no infinities.
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

SchemeComparison CompareWithModel(const CampaignConfig& config,
                                  const CampaignSummary& summary) {
  SchemeComparison c;
  c.empirical = summary;
  c.scheme = SchemeRegistry::AvailSchemeFor(config.scheme, config.policy);
  c.params = AvailabilityParamsFor(config.array);

  // Disk-related predictions at the campaign's measured exposure inputs.
  std::vector<double> mttdls = {MttdlDiskHoursFor(c.params, c.scheme,
                                                  summary.mean_t_unprot_fraction)};
  double mdlr = MdlrDiskBphFor(c.params, c.scheme,
                               summary.mean_t_unprot_fraction,
                               summary.mean_parity_lag_bytes);
  // Non-disk fault processes the campaign injected, on the same scale.
  const FaultModelParams& f = config.faults;
  if (f.nvram_mttf_hours > 0.0 && f.nvram_vulnerable_bytes > 0.0) {
    mttdls.push_back(f.nvram_mttf_hours);
    mdlr += MdlrNvramBph(f.nvram_mttf_hours, f.nvram_vulnerable_bytes);
  }
  if (f.support_mttdl_hours > 0.0) {
    mttdls.push_back(f.support_mttdl_hours);
    mdlr += c.params.ArrayDataBytes() / f.support_mttdl_hours;
  }
  c.analytic_mttdl_hours = CombineMttdlHours(mttdls);
  c.analytic_mdlr_bph = mdlr;

  c.mttdl_ratio =
      MeasuredOverPredicted(summary.mttdl_hours.point, c.analytic_mttdl_hours);
  c.mdlr_ratio =
      MeasuredOverPredicted(summary.mdlr_bph.point, c.analytic_mdlr_bph);
  c.mttdl_in_ci = summary.mttdl_hours.Contains(c.analytic_mttdl_hours);
  return c;
}

void PrintComparisonTable(FILE* out, const std::vector<SchemeComparison>& rows) {
  std::fprintf(out,
               "%-18s %9s %7s %12s %26s %12s %8s %12s %24s %8s\n",
               "policy", "lifetimes", "losses", "mttdl(h)", "mttdl 95% CI",
               "model(h)", "ratio", "mdlr(B/h)", "mdlr 95% CI", "ratio");
  for (const SchemeComparison& c : rows) {
    const CampaignSummary& s = c.empirical;
    char mttdl_ci[64];
    std::snprintf(mttdl_ci, sizeof(mttdl_ci), "[%s, %s]%s",
                  FmtG(s.mttdl_hours.lo).c_str(), FmtG(s.mttdl_hours.hi).c_str(),
                  c.mttdl_in_ci ? "*" : " ");
    char mdlr_ci[64];
    std::snprintf(mdlr_ci, sizeof(mdlr_ci), "[%s, %s]",
                  FmtG(s.mdlr_bph.lo).c_str(), FmtG(s.mdlr_bph.hi).c_str());
    std::fprintf(out,
                 "%-18s %9d %7llu %12s %26s %12s %8s %12s %24s %8s\n",
                 s.label.c_str(), s.lifetimes,
                 static_cast<unsigned long long>(s.loss_events),
                 FmtG(s.mttdl_hours.point).c_str(), mttdl_ci,
                 FmtG(c.analytic_mttdl_hours).c_str(), FmtG(c.mttdl_ratio).c_str(),
                 FmtG(s.mdlr_bph.point).c_str(), mdlr_ci,
                 FmtG(c.mdlr_ratio).c_str());
  }
  std::fprintf(out,
               "  (* = analytic MTTDL inside the empirical 95%% CI; "
               "ratio = measured/predicted)\n");
  // Variance-reduction diagnostics, printed only for accelerated campaigns
  // so the default report stays byte-identical to the historical output.
  for (const SchemeComparison& c : rows) {
    const CampaignSummary& s = c.empirical;
    if (s.vr_mode == VrMode::kOff) {
      continue;
    }
    std::fprintf(out,
                 "  (vr %-16s %s x%g: ess %.1f/%d, weighted losses %.4g, "
                 "P[loss] %s [%s, %s])\n",
                 s.label.c_str(), VrModeName(s.vr_mode), s.failure_bias, s.ess,
                 s.lifetimes, s.weighted_loss_events,
                 FmtG(s.loss_probability.point).c_str(),
                 FmtG(s.loss_probability.lo).c_str(),
                 FmtG(s.loss_probability.hi).c_str());
  }
}

std::string ComparisonJson(const std::vector<SchemeComparison>& rows) {
  std::string out = "{\n  \"campaigns\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const SchemeComparison& c = rows[i];
    const CampaignSummary& s = c.empirical;
    out += "    {\n";
    out += "      \"label\": \"" + s.label + "\",\n";
    out += "      \"scheme\": \"" + SchemeName(c.scheme) + "\",\n";
    out += "      \"lifetimes\": " + std::to_string(s.lifetimes) + ",\n";
    out += "      \"loss_events\": " + std::to_string(s.loss_events) + ",\n";
    out += "      \"total_hours\": " + JsonNum(s.total_hours) + ",\n";
    out += "      \"total_bytes_lost\": " + std::to_string(s.total_bytes_lost) + ",\n";
    out += "      \"loss_breakdown\": {\"unprotected\": " +
           std::to_string(s.unprotected_loss_events) + ", \"catastrophic\": " +
           std::to_string(s.catastrophic_events) + ", \"nvram\": " +
           std::to_string(s.nvram_loss_events) + ", \"support\": " +
           std::to_string(s.support_loss_events) + "},\n";
    out += "      \"disk_failures\": " + std::to_string(s.disk_failures) + ",\n";
    out += "      \"predicted_averted\": " + std::to_string(s.predicted_averted) + ",\n";
    out += "      \"drills\": " + std::to_string(s.drills) + ",\n";
    out += "      \"mean_t_unprot_fraction\": " + JsonNum(s.mean_t_unprot_fraction) + ",\n";
    out += "      \"mean_parity_lag_bytes\": " + JsonNum(s.mean_parity_lag_bytes) + ",\n";
    out += "      \"mttdl_hours\": {\"point\": " + JsonNum(s.mttdl_hours.point) +
           ", \"lo\": " + JsonNum(s.mttdl_hours.lo) +
           ", \"hi\": " + JsonNum(s.mttdl_hours.hi) + "},\n";
    out += "      \"mdlr_bph\": {\"point\": " + JsonNum(s.mdlr_bph.point) +
           ", \"lo\": " + JsonNum(s.mdlr_bph.lo) +
           ", \"hi\": " + JsonNum(s.mdlr_bph.hi) + "},\n";
    out += "      \"loss_probability\": {\"point\": " +
           JsonNum(s.loss_probability.point) +
           ", \"lo\": " + JsonNum(s.loss_probability.lo) +
           ", \"hi\": " + JsonNum(s.loss_probability.hi) + "},\n";
    out += std::string("      \"vr\": {\"mode\": \"") + VrModeName(s.vr_mode) +
           "\", \"failure_bias\": " + JsonNum(s.failure_bias) +
           ", \"ess\": " + JsonNum(s.ess) +
           ", \"weighted_loss_events\": " + JsonNum(s.weighted_loss_events) +
           "},\n";
    out += "      \"analytic_mttdl_hours\": " + JsonNum(c.analytic_mttdl_hours) + ",\n";
    out += "      \"analytic_mdlr_bph\": " + JsonNum(c.analytic_mdlr_bph) + ",\n";
    out += "      \"mttdl_ratio\": " + JsonNum(c.mttdl_ratio) + ",\n";
    out += "      \"mdlr_ratio\": " + JsonNum(c.mdlr_ratio) + ",\n";
    out += std::string("      \"mttdl_in_ci\": ") +
           (c.mttdl_in_ci ? "true" : "false") + "\n";
    out += i + 1 < rows.size() ? "    },\n" : "    }\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string ComparisonCsv(const std::vector<SchemeComparison>& rows) {
  std::string out =
      "label,scheme,lifetimes,loss_events,total_hours,total_bytes_lost,"
      "unprotected,catastrophic,nvram,support,disk_failures,predicted_averted,"
      "drills,mean_t_unprot_fraction,mean_parity_lag_bytes,"
      "mttdl_hours,mttdl_lo,mttdl_hi,mdlr_bph,mdlr_lo,mdlr_hi,"
      "loss_prob,loss_prob_lo,loss_prob_hi,vr_mode,failure_bias,ess,"
      "weighted_loss_events,"
      "analytic_mttdl_hours,analytic_mdlr_bph,mttdl_ratio,mdlr_ratio,"
      "mttdl_in_ci\n";
  for (const SchemeComparison& c : rows) {
    const CampaignSummary& s = c.empirical;
    out += s.label + "," + SchemeName(c.scheme) + "," +
           std::to_string(s.lifetimes) + "," + std::to_string(s.loss_events) +
           "," + FmtG(s.total_hours) + "," + std::to_string(s.total_bytes_lost) +
           "," + std::to_string(s.unprotected_loss_events) + "," +
           std::to_string(s.catastrophic_events) + "," +
           std::to_string(s.nvram_loss_events) + "," +
           std::to_string(s.support_loss_events) + "," +
           std::to_string(s.disk_failures) + "," +
           std::to_string(s.predicted_averted) + "," + std::to_string(s.drills) +
           "," + FmtG(s.mean_t_unprot_fraction) + "," +
           FmtG(s.mean_parity_lag_bytes) + "," + FmtG(s.mttdl_hours.point) +
           "," + FmtG(s.mttdl_hours.lo) + "," + FmtG(s.mttdl_hours.hi) + "," +
           FmtG(s.mdlr_bph.point) + "," + FmtG(s.mdlr_bph.lo) + "," +
           FmtG(s.mdlr_bph.hi) + "," + FmtG(s.loss_probability.point) + "," +
           FmtG(s.loss_probability.lo) + "," + FmtG(s.loss_probability.hi) +
           "," + VrModeName(s.vr_mode) + "," + FmtG(s.failure_bias) + "," +
           FmtG(s.ess) + "," + FmtG(s.weighted_loss_events) + "," +
           FmtG(c.analytic_mttdl_hours) + "," +
           FmtG(c.analytic_mdlr_bph) + "," + FmtG(c.mttdl_ratio) + "," +
           FmtG(c.mdlr_ratio) + "," + (c.mttdl_in_ci ? "1" : "0") + "\n";
  }
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& body) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = n == body.size() && std::fclose(f) == 0;
  if (n != body.size()) {
    std::fclose(f);
  }
  return ok;
}

}  // namespace afraid
