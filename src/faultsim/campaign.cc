#include "faultsim/campaign.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "core/experiment.h"
#include "faultsim/exposure.h"
#include "faultsim/scenario.h"
#include "sim/random.h"

namespace afraid {
namespace {

// Bytes lost to a catastrophic dual failure: two disks' worth, less the
// parity fraction (the numerator of Eq. (3)).
double CatastrophicLossBytes(const AvailabilityParams& p) {
  return 2.0 * p.disk_bytes * p.num_data_disks / (p.num_data_disks + 1);
}

}  // namespace

LifetimeResult RunLifetime(const CampaignConfig& config, int32_t index) {
  return RunLifetime(config, index, nullptr);
}

LifetimeResult RunLifetime(const CampaignConfig& config, int32_t index,
                           LifetimeArena* arena) {
  if (arena != nullptr) {
    arena->Reset();
  }
  LifetimeResult res;
  res.seed = DeriveStreamSeed(config.base_seed, static_cast<uint64_t>(index));
  Rng seeds(res.seed);
  const uint64_t scenario_seed = static_cast<uint64_t>(seeds.engine()());
  const uint64_t exposure_seed = static_cast<uint64_t>(seeds.engine()());
  const uint64_t sample_seed = static_cast<uint64_t>(seeds.engine()());
  Rng sampler(sample_seed);

  const AvailabilityParams avail = AvailabilityParamsFor(config.array);

  ExposureModel exposure(config.scheme, config.array, config.policy,
                         config.workload, exposure_seed,
                         arena != nullptr ? &arena->array_sim : nullptr);
  exposure.Advance(config.exposure_warmup);
  while (exposure.RequestsCompleted() < config.warmup_requests) {
    exposure.Advance(Seconds(10));
  }

  auto sample_gap = [&]() -> SimDuration {
    return static_cast<SimDuration>(
        sampler.UniformDouble(static_cast<double>(config.min_sample_gap),
                              static_cast<double>(config.max_sample_gap)));
  };

  auto record_loss = [&](double now_hours, int64_t bytes) {
    res.data_loss = true;
    res.first_loss_hours = now_hours;
    res.bytes_lost += bytes;
  };

  ScenarioEngine* engine = nullptr;
  ScenarioEvents events;
  events.on_disk_failure = [&](int32_t disk, double now_hours) {
    if (engine->FailedDisks() >= 2) {
      // A second unpredicted failure inside an open repair window: the
      // redundant copy is gone too. Priced analytically (Eq. (3) numerator);
      // the array simulation models at most one concurrent failure. RAID 0
      // lifetimes almost never reach this: the first failure already loses.
      ++res.catastrophic_events;
      record_loss(now_hours,
                  static_cast<int64_t>(CatastrophicLossBytes(avail)));
      engine->Stop();
      return;
    }
    // Sample the stationary exposure process at a fresh random instant.
    exposure.Advance(sample_gap());
    if (exposure.DirtyBands() == 0) {
      // Every stripe has fresh parity: reconstruction provably loses
      // nothing, so skip the (expensive) drill. This is the common case for
      // RAID 5 and for AFRAID after a long idle period.
      return;
    }
    ++res.drills;
    const DrillResult drill = exposure.FailureDrill(disk);
    if (drill.bytes_lost > 0) {
      // One fault with stale stripes = one data-loss incident (Eq. (2a)'s
      // event), however many stripes it touched.
      ++res.unprotected_loss_events;
      record_loss(now_hours, drill.bytes_lost);
      engine->Stop();
    }
  };
  events.on_nvram_loss = [&](double now_hours) {
    // Exercise the controller's conservative scrub-the-world response; the
    // marking memory itself holds no client data, so loss only occurs when
    // the NVRAM is configured as also caching vulnerable client bytes.
    const DrillResult drill = exposure.NvramDrill();
    int64_t bytes = drill.bytes_lost;  // Scrub itself is lossless.
    bytes += static_cast<int64_t>(config.faults.nvram_vulnerable_bytes);
    if (bytes > 0) {
      ++res.nvram_loss_events;
      record_loss(now_hours, bytes);
      engine->Stop();
    }
  };
  events.on_support_loss = [&](double now_hours) {
    ++res.support_loss_events;
    record_loss(now_hours, static_cast<int64_t>(avail.ArrayDataBytes()));
    engine->Stop();
  };

  ScenarioEngine scenario(config.faults, config.array.num_disks, scenario_seed,
                          events, config.vr, config.max_lifetime_hours,
                          arena != nullptr ? &arena->timeline_sim : nullptr);
  engine = &scenario;
  scenario.RunUntil(config.max_lifetime_hours);

  res.hours_observed =
      res.data_loss ? res.first_loss_hours : config.max_lifetime_hours;
  res.log_weight = scenario.FinalLogWeight(res.hours_observed);
  res.disk_failures = scenario.DiskFailures();
  res.predicted_averted = scenario.PredictedAverted();
  res.nvram_losses = scenario.NvramLosses();
  res.t_unprot_fraction = exposure.TUnprotFraction();
  res.mean_parity_lag_bytes = exposure.MeanParityLagBytes();
  return res;
}

CampaignSummary Summarize(const CampaignConfig& config,
                          const std::vector<LifetimeResult>& lifetimes) {
  CampaignSummary s;
  s.label = config.Label();
  s.lifetimes = static_cast<int32_t>(lifetimes.size());
  if (lifetimes.empty()) {
    return s;  // The estimators below need at least one observed lifetime.
  }
  std::vector<double> loss_bytes;
  std::vector<double> hours;
  std::vector<double> log_w;
  std::vector<double> loss_ind;
  loss_bytes.reserve(lifetimes.size());
  hours.reserve(lifetimes.size());
  log_w.reserve(lifetimes.size());
  loss_ind.reserve(lifetimes.size());
  // Strictly sequential reduction in lifetime order: keeps the summary
  // bit-identical regardless of how many threads produced the results.
  for (const LifetimeResult& r : lifetimes) {
    s.total_hours += r.hours_observed;
    s.loss_events += r.data_loss ? 1 : 0;
    s.total_bytes_lost += r.bytes_lost;
    s.unprotected_loss_events += r.unprotected_loss_events;
    s.catastrophic_events += r.catastrophic_events;
    s.nvram_loss_events += r.nvram_loss_events;
    s.support_loss_events += r.support_loss_events;
    s.disk_failures += r.disk_failures;
    s.predicted_averted += r.predicted_averted;
    s.drills += r.drills;
    s.mean_t_unprot_fraction += r.t_unprot_fraction;
    s.mean_parity_lag_bytes += r.mean_parity_lag_bytes;
    loss_bytes.push_back(static_cast<double>(r.bytes_lost));
    hours.push_back(r.hours_observed);
    log_w.push_back(r.log_weight);
    loss_ind.push_back(r.data_loss ? 1.0 : 0.0);
  }
  s.mean_t_unprot_fraction /= static_cast<double>(lifetimes.size());
  s.mean_parity_lag_bytes /= static_cast<double>(lifetimes.size());
  s.vr_mode = config.vr.mode;
  s.failure_bias = config.vr.RateMultiplier();
  s.ess = WeightEss(log_w);  // == lifetimes when vr is off (all weights 1).
  s.loss_probability = WeightedMeanCi(log_w, loss_ind);
  if (config.vr.Enabled()) {
    // Forcing conditions every sampled lifetime on at least one fault inside
    // the window, so the fault-free path's censored observation mass
    // exp(-Lambda H) * H re-enters the hour denominators analytically.
    const double censored_mass_hours =
        std::exp(-TotalFaultRatePerHour(config.faults, config.array.num_disks) *
                 config.max_lifetime_hours) *
        config.max_lifetime_hours;
    s.mttdl_hours =
        WeightedMttdlCiHours(log_w, loss_ind, hours, censored_mass_hours);
    s.mdlr_bph = WeightedRatioCi(log_w, loss_bytes, hours, censored_mass_hours);
    for (size_t i = 0; i < log_w.size(); ++i) {
      s.weighted_loss_events += std::exp(log_w[i]) * loss_ind[i];
    }
  } else {
    s.mttdl_hours = MttdlCiHours(s.loss_events, s.total_hours);
    s.mdlr_bph = RatioCi(loss_bytes, hours);
    s.weighted_loss_events = static_cast<double>(s.loss_events);
  }
  return s;
}

}  // namespace afraid
