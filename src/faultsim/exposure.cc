#include "faultsim/exposure.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/scheme_registry.h"

namespace afraid {
namespace {

// Chunk sizing for the endless workload replay: small enough that lazily
// regenerating stays cheap, large enough that chunk seams (rare idle-period
// truncation) do not distort burst statistics.
constexpr uint64_t kChunkRequests = 4096;
constexpr SimDuration kChunkDuration = Minutes(10);

}  // namespace

ExposureModel::ExposureModel(const std::string& scheme, const ArrayConfig& config,
                             const PolicySpec& policy, const WorkloadParams& workload,
                             uint64_t seed, Simulator* sim, Probe probe)
    : cfg_(SchemeRegistry::Normalize(scheme, config)),
      owned_sim_(sim == nullptr ? std::make_unique<Simulator>() : nullptr),
      sim_(sim == nullptr ? owned_sim_.get() : sim), rng_(seed),
      workload_(workload), fault_probe_(probe.NewTrack("faults")) {
  assert(sim_->Now() == 0 && sim_->Idle());
  SchemeContext ctx{sim_, cfg_, policy, AvailabilityParamsFor(cfg_), probe};
  controller_ = SchemeRegistry::Create(scheme, ctx);
  assert(controller_ != nullptr && "ExposureModel: unknown scheme name");
  driver_ = std::make_unique<HostDriver>(sim_, controller_.get(), cfg_.MaxActive(),
                                         cfg_.host_sched, probe);
  workload_.address_space_bytes = controller_->DataCapacityBytes();
  controller_->SetLossListener(
      [this](const LossEvent& ev) { drill_events_.push_back(ev); });
  EnsureArrivalScheduled();
}

ExposureModel::~ExposureModel() = default;

void ExposureModel::EnsureArrivalScheduled() {
  if (feeding_paused_ || arrival_pending_) {
    return;
  }
  if (next_record_ >= chunk_.records.size()) {
    // Current chunk exhausted: generate the next one, rebased to now. Each
    // chunk gets a fresh derived seed so the process never repeats.
    workload_.seed = static_cast<uint64_t>(rng_.engine()());
    chunk_ = GenerateWorkload(workload_, kChunkRequests, kChunkDuration);
    assert(!chunk_.records.empty());
    next_record_ = 0;
    chunk_base_ = sim_->Now();
  }
  const SimTime due = chunk_base_ + chunk_.records[next_record_].time;
  arrival_pending_ = true;
  pending_arrival_ = sim_->At(std::max(due, sim_->Now()), [this] {
    arrival_pending_ = false;
    const TraceRecord& r = chunk_.records[next_record_];
    driver_->Submit(r.offset, r.size, r.is_write);
    ++next_record_;
    EnsureArrivalScheduled();
  });
}

void ExposureModel::PauseFeeding() {
  feeding_paused_ = true;
  if (arrival_pending_) {
    sim_->Cancel(pending_arrival_);
    arrival_pending_ = false;
  }
}

void ExposureModel::ResumeFeeding() {
  assert(feeding_paused_);
  feeding_paused_ = false;
  // Rebase the chunk so the next arrival preserves its inter-arrival gap
  // from the previous record rather than firing a burst of "overdue" work.
  if (next_record_ < chunk_.records.size()) {
    const SimTime prev =
        next_record_ > 0 ? chunk_.records[next_record_ - 1].time : 0;
    chunk_base_ = sim_->Now() - prev;
  }
  EnsureArrivalScheduled();
}

void ExposureModel::Advance(SimDuration d) {
  assert(d >= 0);
  assert(!feeding_paused_);
  sim_->RunUntil(sim_->Now() + d);
}

void ExposureModel::RunUntilDrained() {
  while (!driver_->Drained()) {
    const bool progressed = sim_->Step();
    assert(progressed);
    (void)progressed;
  }
}

DrillResult ExposureModel::FinishDrill(const DrillResult& partial, SimTime started) {
  if (fault_probe_) {
    fault_probe_.Instant("drill: recovered", sim_->Now());
  }
  DrillResult r = partial;
  r.recovery_time = sim_->Now() - started;
  r.events = std::move(drill_events_);
  drill_events_.clear();
  for (const LossEvent& ev : r.events) {
    r.bytes_lost += ev.bytes;
  }
  r.loss_events = r.events.size();
  ResumeFeeding();
  return r;
}

DrillResult ExposureModel::FailureDrill(int32_t disk) {
  assert(disk >= 0 && disk < cfg_.num_disks);
  DrillResult r;
  r.dirty_bands_at_failure = DirtyBands();
  r.parity_lag_at_failure_bytes = CurrentParityLagBytes();
  drill_events_.clear();
  const SimTime started = sim_->Now();

  // The disk dies at this very instant: whatever was queued or mid-flight
  // completes degraded, through the controller's own failure paths.
  PauseFeeding();
  if (fault_probe_) {
    fault_probe_.Instant("drill: fail disk" + std::to_string(disk), sim_->Now());
  }
  const bool failed = controller_->FailDisk(disk);
  assert(failed && "FailureDrill: scheme refused the failure");
  (void)failed;
  RunUntilDrained();

  // Replacement + reconstruction sweep; stale stripes with data on the dead
  // disk surface as loss events through the controller hooks.
  const bool replaced = controller_->ReplaceDisk(disk);
  assert(replaced && "FailureDrill: scheme refused the replacement");
  (void)replaced;
  bool done = false;
  const bool sweeping = controller_->StartReconstruction([&done] { done = true; });
  assert(sweeping && "FailureDrill: scheme refused reconstruction");
  (void)sweeping;
  while (!done) {
    const bool progressed = sim_->Step();
    assert(progressed);
    (void)progressed;
  }
  return FinishDrill(r, started);
}

DrillResult ExposureModel::NvramDrill() {
  DrillResult r;
  r.dirty_bands_at_failure = DirtyBands();
  r.parity_lag_at_failure_bytes = CurrentParityLagBytes();
  drill_events_.clear();
  const SimTime started = sim_->Now();

  // Quiesce first: StartFullScrub requires no rebuild pass in flight, and
  // the controller forbids new AFRAID-mode markings while the NVRAM is
  // failed. (The marking-loss semantics do not depend on the exposure state
  // the way a disk failure does.)
  PauseFeeding();
  RunUntilDrained();
  sim_->RunToEnd();  // Trailing idle-triggered rebuild passes finish here.
  if (fault_probe_) {
    fault_probe_.Instant("drill: nvram loss", sim_->Now());
  }
  // Schemes without marking memory refuse the drill; nothing to lose.
  if (!controller_->FailNvram()) {
    return FinishDrill(r, started);
  }
  bool done = false;
  if (!controller_->StartFullScrub([&done] { done = true; })) {
    return FinishDrill(r, started);
  }
  while (!done) {
    const bool progressed = sim_->Step();
    assert(progressed);
    (void)progressed;
  }
  return FinishDrill(r, started);
}

}  // namespace afraid
