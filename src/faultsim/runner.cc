#include "faultsim/runner.h"

#include <atomic>
#include <thread>

namespace afraid {

int32_t EffectiveThreads(int32_t requested, int32_t lifetimes) {
  int32_t n = requested;
  if (n < 1) {
    n = static_cast<int32_t>(std::thread::hardware_concurrency());
    if (n < 1) {
      n = 1;
    }
  }
  if (n > lifetimes) {
    n = lifetimes;
  }
  return n < 1 ? 1 : n;
}

std::vector<LifetimeResult> RunCampaignLifetimes(const CampaignConfig& config,
                                                 int32_t num_threads) {
  const int32_t count = config.lifetimes;
  std::vector<LifetimeResult> results(static_cast<size_t>(count < 0 ? 0 : count));
  if (count <= 0) {
    return results;
  }
  const int32_t threads = EffectiveThreads(num_threads, count);
  if (threads == 1) {
    for (int32_t i = 0; i < count; ++i) {
      results[static_cast<size_t>(i)] = RunLifetime(config, i);
    }
    return results;
  }

  std::atomic<int32_t> next{0};
  auto worker = [&] {
    for (;;) {
      const int32_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      // Entirely self-contained: which worker runs lifetime i cannot affect
      // its result, only where it is computed -- and each slot is written by
      // exactly one worker (the fetch_add hands out distinct indices), so no
      // lock is needed around the preallocated results vector. The joins
      // below publish the writes to the caller.
      results[static_cast<size_t>(i)] = RunLifetime(config, i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int32_t t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  return results;
}

CampaignSummary RunCampaign(const CampaignConfig& config, int32_t num_threads) {
  return Summarize(config, RunCampaignLifetimes(config, num_threads));
}

}  // namespace afraid
