#include "faultsim/runner.h"

#include "core/sweep.h"

namespace afraid {

int32_t EffectiveThreads(int32_t requested, int32_t lifetimes) {
  int32_t n = requested < 1 ? SweepThreads() : requested;
  if (n > lifetimes) {
    n = lifetimes;
  }
  return n < 1 ? 1 : n;
}

std::vector<LifetimeResult> RunCampaignLifetimes(const CampaignConfig& config,
                                                 int32_t num_threads) {
  const int32_t count = config.lifetimes;
  std::vector<LifetimeResult> results(static_cast<size_t>(count < 0 ? 0 : count));
  if (count <= 0) {
    return results;
  }
  // Each lifetime is a pure function of (config, index), so which worker
  // runs it cannot affect the result, only where it is computed -- and each
  // slot is written by exactly one worker (RunSweep hands out distinct
  // indices). The arena is per OS thread: it only recycles event-queue
  // storage, never state, since RunLifetime resets it before use.
  internal::RunSweep(count, EffectiveThreads(num_threads, count),
                     [&](int64_t i) {
                       thread_local LifetimeArena arena;
                       results[static_cast<size_t>(i)] =
                           RunLifetime(config, static_cast<int32_t>(i), &arena);
                     });
  return results;
}

CampaignSummary RunCampaign(const CampaignConfig& config, int32_t num_threads) {
  return Summarize(config, RunCampaignLifetimes(config, num_threads));
}

}  // namespace afraid
