// The Monte-Carlo availability campaign: many independent simulated array
// lifetimes, each running the fault timeline (scenario.h) against a live
// array (exposure.h), accumulated into empirical MTTDL/MDLR estimates with
// confidence intervals.
//
// One lifetime = one seeded realization of the fault process, run until the
// FIRST data-loss event or a time cap (right-censoring; the estimators in
// stats/confidence.h handle both). Loss modes detected:
//
//   * catastrophic dual failure -- a second unpredicted disk failure inside
//     an open repair window (Eq. 1/3's mode; priced from the timeline, since
//     the controller models at most one concurrent failure);
//   * unprotected-stripe loss on a single failure -- measured by injecting
//     the failure into the live controller and reading its loss-event hooks
//     (Eq. 2a/4's mode, with the controller's actual loss semantics);
//   * NVRAM loss -- the marking-memory scrub via the controller, plus the
//     Section 3.4 vulnerable-data loss when configured;
//   * support-hardware loss -- whole-array (Section 3.3), when configured.
//
// Every lifetime is a pure function of (config, lifetime index): seeds come
// from DeriveStreamSeed(base_seed, index), so results are bit-identical no
// matter how lifetimes are scheduled across worker threads (runner.h).

#ifndef AFRAID_FAULTSIM_CAMPAIGN_H_
#define AFRAID_FAULTSIM_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/array_config.h"
#include "core/policy.h"
#include "faultsim/fault_model.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "stats/confidence.h"
#include "trace/workload_gen.h"

namespace afraid {

struct CampaignConfig {
  std::string label;        // Row label in reports (defaults to policy label).
  ArrayConfig array;        // Keep it small: every drill sweeps all stripes.
  // Array organization, by registry name (src/core/scheme_registry.h).
  std::string scheme = "afraid";
  PolicySpec policy;
  WorkloadParams workload;  // Address space is sized to the array internally.
  FaultModelParams faults;
  int32_t lifetimes = 200;
  uint64_t base_seed = 1;
  // Cap per lifetime; lifetimes that never lose data are right-censored here.
  double max_lifetime_hours = 5e7;
  // Rare-event acceleration (fault_model.h): off by default, in which case
  // trajectories are byte-identical to the historical unweighted campaign.
  // When enabled, every lifetime carries a log likelihood-ratio weight and
  // Summarize() switches to the weighted estimators.
  VarianceReduction vr;
  // Array-sim warmup before the first sample: at least this much time AND at
  // least `warmup_requests` completed requests (so a cold start into one of
  // the workload's long idle periods still accumulates write history).
  SimDuration exposure_warmup = Seconds(30);
  uint64_t warmup_requests = 200;
  // Decorrelation advance of the array sim before each fault samples the
  // stationary exposure process.
  SimDuration min_sample_gap = Seconds(1);
  SimDuration max_sample_gap = Seconds(8);

  std::string Label() const { return label.empty() ? policy.Label() : label; }
};

// Outcome of one simulated lifetime.
struct LifetimeResult {
  uint64_t seed = 0;
  bool data_loss = false;
  double hours_observed = 0.0;  // first_loss_hours if loss, else the cap.
  double first_loss_hours = 0.0;
  int64_t bytes_lost = 0;

  // Which mode ended the lifetime (at most one fires; a lifetime stops at
  // its first loss).
  uint32_t unprotected_loss_events = 0;
  uint32_t catastrophic_events = 0;
  uint32_t nvram_loss_events = 0;
  uint32_t support_loss_events = 0;

  // Fault-process accounting.
  uint64_t disk_failures = 0;      // Unpredicted (degraded-window) failures.
  uint64_t predicted_averted = 0;  // Predicted and proactively migrated.
  uint64_t nvram_losses = 0;
  uint64_t drills = 0;             // Failures injected into the live array.

  // Exposure statistics measured by this lifetime's array simulation (the
  // analytic model's inputs, measured on exactly the hardware+workload the
  // campaign injected faults into).
  double t_unprot_fraction = 0.0;
  double mean_parity_lag_bytes = 0.0;

  // Log likelihood ratio of the nominal fault process against the sampled
  // one at this lifetime's stopping time. Exactly 0 with vr off; a pure
  // function of (config, lifetime index) either way.
  double log_weight = 0.0;
};

// Reusable per-worker simulation state: the two discrete-event simulators a
// lifetime needs (the array simulation and the fault timeline). Reset()
// between lifetimes retains their event-queue slab storage, so a sweep
// worker pays allocation cost once instead of per lifetime.
struct LifetimeArena {
  Simulator array_sim;
  Simulator timeline_sim;

  void Reset() {
    array_sim.Reset();
    timeline_sim.Reset();
  }
};

// Runs lifetime `index` of the campaign. Deterministic in (config, index).
LifetimeResult RunLifetime(const CampaignConfig& config, int32_t index);

// As above, reusing `arena`'s simulators (resets them first). Results are
// identical to the arena-free overload.
LifetimeResult RunLifetime(const CampaignConfig& config, int32_t index,
                           LifetimeArena* arena);

// Aggregated campaign estimates.
struct CampaignSummary {
  std::string label;
  int32_t lifetimes = 0;
  double total_hours = 0.0;
  uint64_t loss_events = 0;  // Lifetimes that ended in data loss.
  int64_t total_bytes_lost = 0;

  uint64_t unprotected_loss_events = 0;
  uint64_t catastrophic_events = 0;
  uint64_t nvram_loss_events = 0;
  uint64_t support_loss_events = 0;
  uint64_t disk_failures = 0;
  uint64_t predicted_averted = 0;
  uint64_t drills = 0;

  // Means over lifetimes of the measured exposure inputs.
  double mean_t_unprot_fraction = 0.0;
  double mean_parity_lag_bytes = 0.0;

  // Empirical estimates (95% CIs; see stats/confidence.h). With variance
  // reduction on these come from the weighted (importance-sampled)
  // estimators; otherwise they are the historical unweighted ones.
  ConfidenceInterval mttdl_hours;
  ConfidenceInterval mdlr_bph;
  // Probability a lifetime ends in data loss before the cap.
  ConfidenceInterval loss_probability;

  // Variance-reduction diagnostics. `ess` is the Kish effective sample size
  // of the lifetime weights (== lifetimes when vr is off);
  // `weighted_loss_events` is the weighted loss count sum(w_i * loss_i).
  VrMode vr_mode = VrMode::kOff;
  double failure_bias = 1.0;
  double ess = 0.0;
  double weighted_loss_events = 0.0;
};

CampaignSummary Summarize(const CampaignConfig& config,
                          const std::vector<LifetimeResult>& lifetimes);

}  // namespace afraid

#endif  // AFRAID_FAULTSIM_CAMPAIGN_H_
