// The fault scenario generator: one simulated array lifetime's worth of
// hardware faults as first-class discrete events.
//
// A ScenarioEngine owns a Simulator running at the timeline scale (one tick =
// one microhour; see fault_model.h) and keeps one exponential failure clock
// per disk, plus optional NVRAM and support-hardware clocks, all drawn from a
// single seeded Rng. Events:
//
//   * disk failure -- classified predicted (probability C) or unpredicted at
//     the instant it fires. A predicted failure on a redundant array is
//     averted: the disk is proactively migrated and its clock restarts (this
//     is exactly the EffectiveDiskMttfHours() model). An unpredicted failure
//     puts the disk in the failed set and schedules its repair completion
//     after MTTR.
//   * repair completion -- the disk leaves the failed set; its failure clock
//     restarts (good-as-new replacement).
//   * NVRAM marking-memory loss / support-hardware loss -- exponential, with
//     immediate replacement.
//
// The engine only *generates* the fault process; the campaign layer decides
// what each event costs by consulting the live array controller (exposure.h).
// Callbacks fire synchronously from timeline events; calling Stop() from a
// callback (first data loss detected) halts the run.
//
// Rare-event acceleration (fault_model.h VarianceReduction): with forcing
// and/or failure biasing enabled, the engine samples the fault process under
// a changed measure and keeps the exact log-likelihood ratio of the nominal
// process against the sampled one. FinalLogWeight(stop_hours) adds the
// censoring terms of every clock still at risk at the stopping time; the
// result is the per-lifetime log weight the campaign's weighted estimators
// consume. With variance reduction off the engine draws exactly as before
// (same RNG order, zero overhead) and the log weight is exactly 0.

#ifndef AFRAID_FAULTSIM_SCENARIO_H_
#define AFRAID_FAULTSIM_SCENARIO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "faultsim/fault_model.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace afraid {

// Observer of timeline events. Unset callbacks are skipped. `now_hours` is
// the timeline time of the event.
struct ScenarioEvents {
  // An unpredicted failure: the array is degraded until the repair completes.
  std::function<void(int32_t disk, double now_hours)> on_disk_failure;
  // A predicted failure that was averted by proactive migration.
  std::function<void(int32_t disk, double now_hours)> on_predicted_averted;
  std::function<void(int32_t disk, double now_hours)> on_repair_complete;
  std::function<void(double now_hours)> on_nvram_loss;
  std::function<void(double now_hours)> on_support_loss;
};

class ScenarioEngine {
 public:
  // `vr`/`horizon_hours` configure rare-event acceleration; the horizon is
  // the forcing window (the campaign's lifetime cap) and must be positive
  // when vr is enabled. A non-null `sim` is borrowed instead of the internal
  // simulator (it must be freshly reset); the campaign's per-worker
  // LifetimeArena uses this to retain event-queue storage across lifetimes.
  ScenarioEngine(const FaultModelParams& params, int32_t num_disks, uint64_t seed,
                 ScenarioEvents events, const VarianceReduction& vr = {},
                 double horizon_hours = 0.0, Simulator* sim = nullptr);

  // Runs timeline events in order until `hours` (exclusive), the event queue
  // drains (cannot happen before Stop()), or a callback calls Stop(). Leaves
  // NowHours() at the last processed event, or `hours` if none remained.
  void RunUntil(double hours);

  // Halts event processing; pending events are abandoned.
  void Stop() { stopped_ = true; }
  bool Stopped() const { return stopped_; }

  double NowHours() const { return TimelineToHours(sim_->Now()); }

  // Disks currently in an unpredicted-failure repair window.
  int32_t FailedDisks() const { return static_cast<int32_t>(failed_.size()); }
  bool IsFailed(int32_t disk) const { return failed_.contains(disk); }

  // Event counts so far.
  uint64_t DiskFailures() const { return disk_failures_; }
  uint64_t PredictedAverted() const { return predicted_averted_; }
  uint64_t NvramLosses() const { return nvram_losses_; }
  uint64_t SupportLosses() const { return support_losses_; }

  // The per-lifetime log likelihood ratio log(dP/dQ) of the nominal fault
  // process P against the sampled (forced/biased) process Q, for the path
  // observed on [0, stop_hours]: the accumulated per-event terms plus the
  // censoring (survival-ratio) term of every clock still at risk at
  // `stop_hours`. Exactly 0.0 when variance reduction is off. The campaign
  // calls this once, at the lifetime's stopping time (first loss or cap).
  double FinalLogWeight(double stop_hours) const;

 private:
  // Per-clock bookkeeping for the likelihood ratio: when the current draw
  // was started and at what nominal mean. Disks occupy [0, num_disks);
  // NVRAM and support clocks follow when enabled.
  struct VrClock {
    double start_hours = 0.0;
    double nominal_mean_hours = 0.0;
    bool at_risk = false;
  };

  void ScheduleDiskFailure(int32_t disk);
  void ScheduleNvramLoss();
  void ScheduleSupportLoss();
  void OnDiskFails(int32_t disk);
  void OnNvramFails();
  void OnSupportFails();

  // Forced initial scheduling: the first fault is drawn from the truncated
  // exponential on [0, horizon) at the (biased) total rate; the remaining
  // clocks get memoryless residual draws past it.
  void ScheduleInitialForced();

  // Likelihood-ratio bookkeeping around the clock with index `clock`
  // (re)starting now, or firing now.
  void VrClockStarted(size_t clock, double mean_hours);
  void VrClockFired(size_t clock);

  FaultModelParams params_;
  int32_t num_disks_;
  std::unique_ptr<Simulator> owned_sim_;
  Simulator* sim_;
  Rng rng_;
  ScenarioEvents events_;

  VarianceReduction vr_;
  double horizon_hours_ = 0.0;
  double log_weight_ = 0.0;
  std::vector<VrClock> clocks_;  // Empty when variance reduction is off.
  size_t nvram_clock_ = 0;       // Index into clocks_; valid when enabled.
  size_t support_clock_ = 0;

  std::set<int32_t> failed_;
  bool stopped_ = false;
  uint64_t disk_failures_ = 0;
  uint64_t predicted_averted_ = 0;
  uint64_t nvram_losses_ = 0;
  uint64_t support_losses_ = 0;
};

}  // namespace afraid

#endif  // AFRAID_FAULTSIM_SCENARIO_H_
