// Parameters of the Monte-Carlo fault-injection model, and the time scale of
// the fault timeline.
//
// The fault timeline runs on its own Simulator, but at a different scale from
// the array simulation: disk lifetimes span billions of hours while array
// mechanics play out in nanoseconds, and 4e9 hours of nanoseconds overflows
// SimTime. On the timeline, one tick is one MICROHOUR (1e-6 h = 3.6 ms),
// giving ~9e12 hours of range with resolution far below MTTR-scale dynamics.

#ifndef AFRAID_FAULTSIM_FAULT_MODEL_H_
#define AFRAID_FAULTSIM_FAULT_MODEL_H_

#include <cstdint>

#include "avail/model.h"
#include "sim/time.h"

namespace afraid {

// --- Timeline time scale -----------------------------------------------------

constexpr SimTime TimelineFromHours(double hours) {
  return static_cast<SimTime>(hours * 1e6 + 0.5);
}
constexpr double TimelineToHours(SimTime t) { return static_cast<double>(t) * 1e-6; }

// --- Fault process parameters ------------------------------------------------

struct FaultModelParams {
  // Per-disk raw failure process (Table 1): exponential with this mean. The
  // coverage model splits each failure into predicted (fraction C, repaired
  // before it bites when the array has redundancy to migrate from) and
  // unpredicted (the array goes degraded for the repair time).
  double mttf_disk_raw_hours = 1e6;
  double coverage = 0.5;
  double mttr_hours = 48.0;
  // Whether a predicted failure can be averted by proactive migration. True
  // for redundant schemes; false for RAID 0, where "prediction doesn't help
  // when there is no redundancy to migrate onto" (avail/model.cc).
  bool prediction_averts_loss = true;

  // NVRAM marking-memory faults; 0 disables NVRAM fault injection. When
  // `nvram_vulnerable_bytes` > 0 the NVRAM is modelled as also holding that
  // much client data (the Section 3.4 single-copy PrestoServe-style card),
  // so each NVRAM loss is itself a data-loss event.
  double nvram_mttf_hours = 0.0;
  double nvram_vulnerable_bytes = 0.0;

  // Support-hardware faults (Section 3.3): each loses the whole array;
  // 0 excludes them so empirical numbers compare against the *disk-related*
  // Eqs. (1)-(5).
  double support_mttdl_hours = 0.0;

  // Derives the fault process matching an analytic parameter set, so the
  // empirical campaign and the model price exactly the same hardware.
  static FaultModelParams From(const AvailabilityParams& p, RedundancyScheme scheme) {
    FaultModelParams f;
    f.mttf_disk_raw_hours = p.mttf_disk_raw_hours;
    f.coverage = p.coverage;
    f.mttr_hours = p.mttr_hours;
    f.prediction_averts_loss = scheme != RedundancyScheme::kRaid0;
    return f;
  }
};

}  // namespace afraid

#endif  // AFRAID_FAULTSIM_FAULT_MODEL_H_
