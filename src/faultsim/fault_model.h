// Parameters of the Monte-Carlo fault-injection model, and the time scale of
// the fault timeline.
//
// The fault timeline runs on its own Simulator, but at a different scale from
// the array simulation: disk lifetimes span billions of hours while array
// mechanics play out in nanoseconds, and 4e9 hours of nanoseconds overflows
// SimTime. On the timeline, one tick is one MICROHOUR (1e-6 h = 3.6 ms),
// giving ~9e12 hours of range with resolution far below MTTR-scale dynamics.

#ifndef AFRAID_FAULTSIM_FAULT_MODEL_H_
#define AFRAID_FAULTSIM_FAULT_MODEL_H_

#include <cstdint>
#include <string>

#include "avail/model.h"
#include "sim/time.h"

namespace afraid {

// --- Timeline time scale -----------------------------------------------------

constexpr SimTime TimelineFromHours(double hours) {
  return static_cast<SimTime>(hours * 1e6 + 0.5);
}
constexpr double TimelineToHours(SimTime t) { return static_cast<double>(t) * 1e-6; }

// --- Fault process parameters ------------------------------------------------

struct FaultModelParams {
  // Per-disk raw failure process (Table 1): exponential with this mean. The
  // coverage model splits each failure into predicted (fraction C, repaired
  // before it bites when the array has redundancy to migrate from) and
  // unpredicted (the array goes degraded for the repair time).
  double mttf_disk_raw_hours = 1e6;
  double coverage = 0.5;
  double mttr_hours = 48.0;
  // Whether a predicted failure can be averted by proactive migration. True
  // for redundant schemes; false for RAID 0, where "prediction doesn't help
  // when there is no redundancy to migrate onto" (avail/model.cc).
  bool prediction_averts_loss = true;

  // NVRAM marking-memory faults; 0 disables NVRAM fault injection. When
  // `nvram_vulnerable_bytes` > 0 the NVRAM is modelled as also holding that
  // much client data (the Section 3.4 single-copy PrestoServe-style card),
  // so each NVRAM loss is itself a data-loss event.
  double nvram_mttf_hours = 0.0;
  double nvram_vulnerable_bytes = 0.0;

  // Support-hardware faults (Section 3.3): each loses the whole array;
  // 0 excludes them so empirical numbers compare against the *disk-related*
  // Eqs. (1)-(5).
  double support_mttdl_hours = 0.0;

  // Derives the fault process matching an analytic parameter set, so the
  // empirical campaign and the model price exactly the same hardware.
  static FaultModelParams From(const AvailabilityParams& p, RedundancyScheme scheme) {
    FaultModelParams f;
    f.mttf_disk_raw_hours = p.mttf_disk_raw_hours;
    f.coverage = p.coverage;
    f.mttr_hours = p.mttr_hours;
    f.prediction_averts_loss = scheme != RedundancyScheme::kRaid0;
    return f;
  }
};

// Total nominal rate (per hour) of the superposed fault process: every
// enabled exponential clock in the scenario engine. This is the Lambda in
// the forcing correction P(first fault <= H) = 1 - exp(-Lambda H), and in
// the analytic no-fault censored-hours mass exp(-Lambda H) * H that the
// weighted estimators add back (a forced campaign never samples the
// fault-free path; see DESIGN.md section 15).
inline double TotalFaultRatePerHour(const FaultModelParams& f, int32_t num_disks) {
  double rate = static_cast<double>(num_disks) / f.mttf_disk_raw_hours;
  if (f.nvram_mttf_hours > 0.0) {
    rate += 1.0 / f.nvram_mttf_hours;
  }
  if (f.support_mttdl_hours > 0.0) {
    rate += 1.0 / f.support_mttdl_hours;
  }
  return rate;
}

// --- Rare-event acceleration (variance reduction) ----------------------------
//
// At realistic failure rates almost every simulated lifetime ends without
// data loss, so a naive campaign spends nearly all its CPU producing zero
// statistical information. Two classic accelerations close the gap, both
// carrying an exact per-lifetime likelihood ratio so the weighted estimators
// in stats/confidence.h stay unbiased:
//
//   * kForcing -- the first fault of the lifetime is drawn from the
//     conditional (truncated) exponential given that it lands inside the
//     observation window [0, horizon); the weight picks up the factor
//     P(first fault <= horizon) = 1 - exp(-Lambda * horizon).
//   * kBiasing -- forcing, plus every exponential fault clock is sampled at
//     `failure_bias` times its nominal rate; each fired draw contributes
//     (1/b) * exp((b-1) * lambda * age) to the weight and each clock still
//     pending at the end contributes the survival ratio exp((b-1) * lambda *
//     age). Repair completions are deterministic (same under both measures)
//     and cannot be biased: a shifted point mass has a degenerate likelihood
//     ratio.
//
// Weights are pure functions of (config, lifetime index) -- the biased draws
// come from the same per-lifetime seeded stream -- so campaign output stays
// bit-identical for any thread count.
enum class VrMode { kOff, kForcing, kBiasing };

struct VarianceReduction {
  VrMode mode = VrMode::kOff;
  // Rate inflation applied to every enabled fault clock when mode ==
  // kBiasing (kForcing and kOff sample at nominal rates).
  double failure_bias = 8.0;

  bool Enabled() const { return mode != VrMode::kOff; }
  double RateMultiplier() const {
    return mode == VrMode::kBiasing ? failure_bias : 1.0;
  }
};

inline const char* VrModeName(VrMode mode) {
  switch (mode) {
    case VrMode::kOff:
      return "off";
    case VrMode::kForcing:
      return "forcing";
    case VrMode::kBiasing:
      return "biasing";
  }
  return "off";
}

inline bool ParseVrMode(const std::string& name, VrMode* out) {
  if (name == "off") {
    *out = VrMode::kOff;
  } else if (name == "forcing") {
    *out = VrMode::kForcing;
  } else if (name == "biasing") {
    *out = VrMode::kBiasing;
  } else {
    return false;
  }
  return true;
}

}  // namespace afraid

#endif  // AFRAID_FAULTSIM_FAULT_MODEL_H_
