// Empirical-vs-analytic comparison reports for Monte-Carlo campaigns.
//
// For each campaign the analytic prediction is evaluated with the SAME
// parameters the fault process used (avail params derived from the array
// config) and the SAME exposure inputs the campaign measured (mean
// t_unprot_fraction / parity lag from the live array simulations), so any
// residual gap between columns is the model's own approximation error, not a
// parameter mismatch.

#ifndef AFRAID_FAULTSIM_REPORT_H_
#define AFRAID_FAULTSIM_REPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "avail/model.h"
#include "faultsim/campaign.h"

namespace afraid {

// One row of the comparison: a campaign next to its analytic prediction.
struct SchemeComparison {
  CampaignSummary empirical;
  RedundancyScheme scheme = RedundancyScheme::kAfraid;
  AvailabilityParams params;

  // Predictions at the measured exposure inputs. Disk-related (Eqs. (1)-(5))
  // plus NVRAM/support contributions when the fault model injected them.
  double analytic_mttdl_hours = 0.0;
  double analytic_mdlr_bph = 0.0;

  // measured / predicted (1.0 = perfect agreement; see MeasuredOverPredicted).
  double mttdl_ratio = 0.0;
  double mdlr_ratio = 0.0;

  // Whether the analytic prediction falls inside the empirical 95% CI.
  bool mttdl_in_ci = false;
};

SchemeComparison CompareWithModel(const CampaignConfig& config,
                                  const CampaignSummary& summary);

// Human-readable side-by-side table.
void PrintComparisonTable(FILE* out, const std::vector<SchemeComparison>& rows);

// Machine-readable emitters. JSON encodes infinities as null.
std::string ComparisonJson(const std::vector<SchemeComparison>& rows);
std::string ComparisonCsv(const std::vector<SchemeComparison>& rows);

// Convenience: writes `body` to `path`; returns false on I/O error.
bool WriteTextFile(const std::string& path, const std::string& body);

}  // namespace afraid

#endif  // AFRAID_FAULTSIM_REPORT_H_
