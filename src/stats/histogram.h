// A simple fixed-width histogram for distribution summaries in reports.

#ifndef AFRAID_STATS_HISTOGRAM_H_
#define AFRAID_STATS_HISTOGRAM_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace afraid {

class Histogram {
 public:
  // Buckets of width `bucket_width` starting at `lo`; values >= lo +
  // num_buckets*width land in the overflow bucket, values < lo in underflow.
  Histogram(double lo, double bucket_width, size_t num_buckets)
      : lo_(lo), width_(bucket_width), counts_(num_buckets, 0) {
    assert(bucket_width > 0.0 && num_buckets > 0);
  }

  void Add(double x) {
    ++total_;
    if (x < lo_) {
      ++underflow_;
      underflow_samples_.push_back(x);
      tails_sorted_ = false;
      return;
    }
    const auto idx = static_cast<size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) {
      ++overflow_;
      overflow_samples_.push_back(x);
      tails_sorted_ = false;
      return;
    }
    ++counts_[idx];
  }

  uint64_t Total() const { return total_; }
  uint64_t Underflow() const { return underflow_; }
  uint64_t Overflow() const { return overflow_; }
  const std::vector<uint64_t>& Counts() const { return counts_; }
  double BucketLow(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

  // Interpolated p-quantile (p in [0, 1]). Mass inside the bucketed range is
  // uniform within its bucket; underflow and overflow samples are retained
  // exactly (sorted on demand), so tail quantiles stay meaningful however far
  // past the top bucket the distribution reaches -- p999 at fleet sample
  // counts lands in the overflow region and is exact there, instead of being
  // pinned to the top bucket edge. Defined on all inputs: 0.0 with no
  // samples; a single in-range sample returns its bucket midpoint.
  double Quantile(double p) const;
  double Median() const { return Quantile(0.5); }

  // Renders an ASCII bar chart, `max_width` columns for the largest bucket.
  std::string Render(size_t max_width = 50) const;

 private:
  double lo_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
  // Out-of-range samples kept exactly; Quantile sorts them lazily.
  mutable std::vector<double> underflow_samples_;
  mutable std::vector<double> overflow_samples_;
  mutable bool tails_sorted_ = true;
};

}  // namespace afraid

#endif  // AFRAID_STATS_HISTOGRAM_H_
