#include "stats/histogram.h"

#include <algorithm>
#include <cstdio>

namespace afraid {

namespace {

// Value at (fractional) `rank` within one sorted tail, interpolating between
// adjacent retained samples -- the same convention SampleSet::Percentile uses
// over the full sample vector.
double TailAtRank(const std::vector<double>& sorted, double rank) {
  const auto idx = static_cast<size_t>(rank);
  if (idx + 1 >= sorted.size()) {
    return sorted.back();
  }
  const double frac = rank - static_cast<double>(idx);
  return sorted[idx] + frac * (sorted[idx + 1] - sorted[idx]);
}

}  // namespace

double Histogram::Quantile(double p) const {
  assert(p >= 0.0 && p <= 1.0);
  if (total_ == 0) {
    return 0.0;  // No samples: quantiles of an empty distribution are 0.
  }
  if (!tails_sorted_) {
    std::sort(underflow_samples_.begin(), underflow_samples_.end());
    std::sort(overflow_samples_.begin(), overflow_samples_.end());
    tails_sorted_ = true;
  }
  // Rank in [0, total-1], linearly interpolated -- the same convention as
  // SampleSet::Percentile, so the two agree on exact data.
  const double rank = p * static_cast<double>(total_ - 1);
  double cum = static_cast<double>(underflow_);
  if (rank < cum) {
    return TailAtRank(underflow_samples_, rank);  // Exact underflow sample.
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (c > 0.0 && rank < cum + c) {
      // Uniform within the bucket; the +0.5 centres each sample in its
      // 1/c-wide slice (a single sample maps to the bucket midpoint).
      return BucketLow(i) + width_ * ((rank - cum + 0.5) / c);
    }
    cum += c;
  }
  // Overflow mass: exact retained samples, not the top bucket edge.
  return TailAtRank(overflow_samples_, rank - cum);
}

std::string Histogram::Render(size_t max_width) const {
  uint64_t peak = 1;
  for (uint64_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::string out;
  char line[160];
  for (size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len =
        static_cast<size_t>(static_cast<double>(counts_[i]) / static_cast<double>(peak) *
                            static_cast<double>(max_width));
    std::snprintf(line, sizeof(line), "[%10.3g, %10.3g) %8llu ", BucketLow(i), BucketLow(i + 1),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar_len, '#');
    out += '\n';
  }
  if (underflow_ > 0) {
    std::snprintf(line, sizeof(line), "underflow: %llu\n",
                  static_cast<unsigned long long>(underflow_));
    out += line;
  }
  if (overflow_ > 0) {
    std::snprintf(line, sizeof(line), "overflow: %llu\n",
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace afraid
