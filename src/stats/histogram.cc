#include "stats/histogram.h"

#include <algorithm>
#include <cstdio>

namespace afraid {

double Histogram::Quantile(double p) const {
  assert(p >= 0.0 && p <= 1.0);
  if (total_ == 0) {
    return 0.0;  // No samples: quantiles of an empty distribution are 0.
  }
  // Rank in [0, total-1], linearly interpolated -- the same convention as
  // SampleSet::Percentile, so the two agree on exact data.
  const double rank = p * static_cast<double>(total_ - 1);
  double cum = static_cast<double>(underflow_);
  if (rank < cum) {
    return lo_;  // Underflow mass: best available estimate is the low edge.
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (c > 0.0 && rank < cum + c) {
      // Uniform within the bucket; the +0.5 centres each sample in its
      // 1/c-wide slice (a single sample maps to the bucket midpoint).
      return BucketLow(i) + width_ * ((rank - cum + 0.5) / c);
    }
    cum += c;
  }
  return BucketLow(counts_.size());  // Overflow mass: the top bucket edge.
}

std::string Histogram::Render(size_t max_width) const {
  uint64_t peak = 1;
  for (uint64_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::string out;
  char line[160];
  for (size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len =
        static_cast<size_t>(static_cast<double>(counts_[i]) / static_cast<double>(peak) *
                            static_cast<double>(max_width));
    std::snprintf(line, sizeof(line), "[%10.3g, %10.3g) %8llu ", BucketLow(i), BucketLow(i + 1),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar_len, '#');
    out += '\n';
  }
  if (underflow_ > 0) {
    std::snprintf(line, sizeof(line), "underflow: %llu\n",
                  static_cast<unsigned long long>(underflow_));
    out += line;
  }
  if (overflow_ > 0) {
    std::snprintf(line, sizeof(line), "overflow: %llu\n",
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace afraid
