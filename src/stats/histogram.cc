#include "stats/histogram.h"

#include <algorithm>
#include <cstdio>

namespace afraid {

std::string Histogram::Render(size_t max_width) const {
  uint64_t peak = 1;
  for (uint64_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::string out;
  char line[160];
  for (size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len =
        static_cast<size_t>(static_cast<double>(counts_[i]) / static_cast<double>(peak) *
                            static_cast<double>(max_width));
    std::snprintf(line, sizeof(line), "[%10.3g, %10.3g) %8llu ", BucketLow(i), BucketLow(i + 1),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar_len, '#');
    out += '\n';
  }
  if (underflow_ > 0) {
    std::snprintf(line, sizeof(line), "underflow: %llu\n",
                  static_cast<unsigned long long>(underflow_));
    out += line;
  }
  if (overflow_ > 0) {
    std::snprintf(line, sizeof(line), "overflow: %llu\n",
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace afraid
