// Time-weighted integration of a piecewise-constant signal.
//
// Used for the paper's availability accounting: the *parity lag* (bytes of
// unredundant non-parity data) is a step function of simulated time; its
// time-average is the "mean parity lag" of Section 3.2, and the fraction of
// time it is non-zero is Tunprot/Ttotal of Section 3.1.

#ifndef AFRAID_STATS_TIME_WEIGHTED_H_
#define AFRAID_STATS_TIME_WEIGHTED_H_

#include <cassert>
#include <cstdint>

#include "sim/time.h"

namespace afraid {

class TimeWeightedValue {
 public:
  // `start` is the time observation begins; the signal is `initial` there.
  explicit TimeWeightedValue(SimTime start = 0, double initial = 0.0)
      : start_(start), last_change_(start), value_(initial) {}

  // Records that the signal changed to `value` at time `now` (>= previous
  // change). Consecutive equal values are harmless.
  void Set(SimTime now, double value) {
    assert(now >= last_change_);
    Accumulate(now);
    value_ = value;
  }

  void Add(SimTime now, double delta) { Set(now, value_ + delta); }

  double Current() const { return value_; }

  // Integral of the signal from start to `now` (value x seconds).
  double IntegralTo(SimTime now) const {
    return integral_ + value_ * ToSeconds(now - last_change_);
  }

  // Time-average of the signal over [start, now]. At zero elapsed time the
  // average over the empty interval is defined as the current value (not the
  // 0/0 the integral form would produce).
  double MeanTo(SimTime now) const {
    const double span = ToSeconds(now - start_);
    return span <= 0.0 ? value_ : IntegralTo(now) / span;
  }

  // Total time (seconds) the signal has been strictly positive.
  double PositiveSecondsTo(SimTime now) const {
    double t = positive_seconds_;
    if (value_ > 0.0) {
      t += ToSeconds(now - last_change_);
    }
    return t;
  }

  // Fraction of [start, now] the signal has been strictly positive. At zero
  // elapsed time this is 1 if the signal is currently positive, else 0
  // (consistent with MeanTo's empty-interval convention, and never 0/0).
  double PositiveFractionTo(SimTime now) const {
    const double span = ToSeconds(now - start_);
    return span <= 0.0 ? (value_ > 0.0 ? 1.0 : 0.0) : PositiveSecondsTo(now) / span;
  }

 private:
  void Accumulate(SimTime now) {
    integral_ += value_ * ToSeconds(now - last_change_);
    if (value_ > 0.0) {
      positive_seconds_ += ToSeconds(now - last_change_);
    }
    last_change_ = now;
  }

  SimTime start_ = 0;
  SimTime last_change_ = 0;
  double value_ = 0.0;
  double integral_ = 0.0;          // value x seconds
  double positive_seconds_ = 0.0;  // seconds with value > 0
};

}  // namespace afraid

#endif  // AFRAID_STATS_TIME_WEIGHTED_H_
