// Confidence-interval estimators for the Monte-Carlo availability campaign.
//
// Two estimation problems arise when measuring MTTDL/MDLR empirically:
//
//   * Event *rates* from censored lifetimes: each simulated lifetime runs
//     until its first data loss or a time cap, so the data are exponential
//     observations with right-censoring. The MLE of the rate is
//     events/total-time; exact intervals follow from the chi-square
//     distribution of 2*events (+2) degrees of freedom. Zero observed events
//     still yield a finite lower bound on MTTDL (the "rule of three" shape).
//
//   * Ratio estimators over per-lifetime pairs (bytes lost, hours observed):
//     MDLR = sum(bytes)/sum(hours). The delta-method standard error of the
//     combined ratio handles unequal lifetime lengths (losses truncate early).
//
// Everything here is closed-form; the chi-square quantile is exact at df = 2
// and uses the Wilson-Hilferty cube approximation elsewhere.

#ifndef AFRAID_STATS_CONFIDENCE_H_
#define AFRAID_STATS_CONFIDENCE_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace afraid {

// A two-sided interval [lo, hi] around a point estimate.
struct ConfidenceInterval {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double x) const { return x >= lo && x <= hi; }
};

// Standard normal quantile for the central 95% interval.
inline constexpr double kZ975 = 1.959963984540054;

// Chi-square quantile with `df` degrees of freedom at probability p, where z
// is the standard normal quantile of p. df = 2 (the zero- and one-event
// interval bounds) is an exponential distribution and handled exactly; other
// df use the Wilson-Hilferty cube approximation, whose largest error here is
// the df = 4 lower tail (~8% low, i.e. slightly conservative intervals).
inline double ChiSquareQuantile(double df, double z) {
  assert(df > 0.0);
  if (df == 2.0) {
    const double p = 0.5 * std::erfc(-z / std::sqrt(2.0));
    return -2.0 * std::log1p(-p);
  }
  const double a = 2.0 / (9.0 * df);
  const double c = 1.0 - a + z * std::sqrt(a);
  return df * c * c * c;
}

// 95% CI for an exponential-event MTTDL estimated from `events` losses over
// `total_hours` of (censored) observation. The point estimate is the MLE
// total/events; with zero events the point and upper bound are +infinity and
// the lower bound is the 95% one-sided limit (2T / chi2_{2,0.975} ~ T/3.7).
inline ConfidenceInterval MttdlCiHours(uint64_t events, double total_hours) {
  assert(total_hours > 0.0);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ConfidenceInterval ci;
  const double d = static_cast<double>(events);
  // Rate interval: [chi2_{2d, 0.025}/2T, chi2_{2d+2, 0.975}/2T]; invert for
  // the mean-time interval.
  ci.lo = 2.0 * total_hours / ChiSquareQuantile(2.0 * d + 2.0, kZ975);
  if (events == 0) {
    ci.point = kInf;
    ci.hi = kInf;
  } else {
    ci.point = total_hours / d;
    ci.hi = 2.0 * total_hours / ChiSquareQuantile(2.0 * d, -kZ975);
  }
  return ci;
}

// 95% CI for a combined ratio sum(num)/sum(den) over paired per-lifetime
// observations, via the delta-method standard error. Suits MDLR (bytes lost
// per hour) where lifetimes have unequal lengths. Degenerates gracefully:
// fewer than two pairs yield a zero-width interval.
inline ConfidenceInterval RatioCi(const std::vector<double>& num,
                                  const std::vector<double>& den) {
  assert(num.size() == den.size());
  ConfidenceInterval ci;
  double sn = 0.0;
  double sd = 0.0;
  for (size_t i = 0; i < num.size(); ++i) {
    sn += num[i];
    sd += den[i];
  }
  assert(sd > 0.0);
  const double r = sn / sd;
  ci.point = r;
  const size_t k = num.size();
  if (k < 2) {
    ci.lo = ci.hi = r;
    return ci;
  }
  const double dbar = sd / static_cast<double>(k);
  double ss = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double resid = num[i] - r * den[i];
    ss += resid * resid;
  }
  const double se = std::sqrt(ss / static_cast<double>(k - 1) /
                              static_cast<double>(k)) /
                    dbar;
  ci.lo = std::max(0.0, r - kZ975 * se);
  ci.hi = r + kZ975 * se;
  return ci;
}

}  // namespace afraid

#endif  // AFRAID_STATS_CONFIDENCE_H_
