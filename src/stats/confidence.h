// Confidence-interval estimators for the Monte-Carlo availability campaign.
//
// Two estimation problems arise when measuring MTTDL/MDLR empirically:
//
//   * Event *rates* from censored lifetimes: each simulated lifetime runs
//     until its first data loss or a time cap, so the data are exponential
//     observations with right-censoring. The MLE of the rate is
//     events/total-time; exact intervals follow from the chi-square
//     distribution of 2*events (+2) degrees of freedom. Zero observed events
//     still yield a finite lower bound on MTTDL (the "rule of three" shape).
//
//   * Ratio estimators over per-lifetime pairs (bytes lost, hours observed):
//     MDLR = sum(bytes)/sum(hours). The delta-method standard error of the
//     combined ratio handles unequal lifetime lengths (losses truncate early).
//
// Everything here is closed-form; the chi-square quantile is exact at df = 2
// and uses the Wilson-Hilferty cube approximation elsewhere.
//
// The Weighted* variants extend both estimators to importance-sampled
// campaigns (faultsim forcing / failure biasing): each lifetime carries a
// log likelihood-ratio weight, estimators are weighted sums, and the Kish
// effective sample size diagnoses weight degeneracy. Weights enter in log
// space and are rescaled by the maximum before exponentiation, so extreme
// biasing factors degrade gracefully instead of overflowing.

#ifndef AFRAID_STATS_CONFIDENCE_H_
#define AFRAID_STATS_CONFIDENCE_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace afraid {

// A two-sided interval [lo, hi] around a point estimate.
struct ConfidenceInterval {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double x) const { return x >= lo && x <= hi; }
};

// Standard normal quantile for the central 95% interval.
inline constexpr double kZ975 = 1.959963984540054;

// Chi-square quantile with `df` degrees of freedom at probability p, where z
// is the standard normal quantile of p. df = 2 (the zero- and one-event
// interval bounds) is an exponential distribution and handled exactly; other
// df use the Wilson-Hilferty cube approximation, whose largest error here is
// the df = 4 lower tail (~8% low, i.e. slightly conservative intervals).
inline double ChiSquareQuantile(double df, double z) {
  assert(df > 0.0);
  if (df == 2.0) {
    const double p = 0.5 * std::erfc(-z / std::sqrt(2.0));
    return -2.0 * std::log1p(-p);
  }
  const double a = 2.0 / (9.0 * df);
  const double c = 1.0 - a + z * std::sqrt(a);
  return df * c * c * c;
}

// 95% CI for an exponential-event MTTDL estimated from `events` losses over
// `total_hours` of (censored) observation. The point estimate is the MLE
// total/events; with zero events the point and upper bound are +infinity and
// the lower bound is the 95% one-sided limit (2T / chi2_{2,0.975} ~ T/3.7).
inline ConfidenceInterval MttdlCiHours(uint64_t events, double total_hours) {
  assert(total_hours > 0.0);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ConfidenceInterval ci;
  const double d = static_cast<double>(events);
  // Rate interval: [chi2_{2d, 0.025}/2T, chi2_{2d+2, 0.975}/2T]; invert for
  // the mean-time interval.
  ci.lo = 2.0 * total_hours / ChiSquareQuantile(2.0 * d + 2.0, kZ975);
  if (events == 0) {
    ci.point = kInf;
    ci.hi = kInf;
  } else {
    ci.point = total_hours / d;
    ci.hi = 2.0 * total_hours / ChiSquareQuantile(2.0 * d, -kZ975);
  }
  return ci;
}

// 95% CI for a combined ratio sum(num)/sum(den) over paired per-lifetime
// observations, via the delta-method standard error. Suits MDLR (bytes lost
// per hour) where lifetimes have unequal lengths. Degenerates gracefully:
// fewer than two pairs yield a zero-width interval.
inline ConfidenceInterval RatioCi(const std::vector<double>& num,
                                  const std::vector<double>& den) {
  assert(num.size() == den.size());
  ConfidenceInterval ci;
  double sn = 0.0;
  double sd = 0.0;
  for (size_t i = 0; i < num.size(); ++i) {
    sn += num[i];
    sd += den[i];
  }
  assert(sd > 0.0);
  const double r = sn / sd;
  ci.point = r;
  const size_t k = num.size();
  if (k < 2) {
    ci.lo = ci.hi = r;
    return ci;
  }
  const double dbar = sd / static_cast<double>(k);
  double ss = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double resid = num[i] - r * den[i];
    ss += resid * resid;
  }
  const double se = std::sqrt(ss / static_cast<double>(k - 1) /
                              static_cast<double>(k)) /
                    dbar;
  ci.lo = std::max(0.0, r - kZ975 * se);
  ci.hi = r + kZ975 * se;
  return ci;
}

// --- Weighted (importance-sampled) estimators --------------------------------

// Kish effective sample size of a set of log weights: (sum w)^2 / sum w^2.
// Scale-invariant, so the weights are shifted by their maximum before
// exponentiation (at least one term is then exactly 1 and nothing can
// overflow). Equal weights give ESS = n; one dominating weight collapses it
// toward 1. Empty input gives 0.
inline double WeightEss(const std::vector<double>& log_w) {
  if (log_w.empty()) {
    return 0.0;
  }
  double max_log = log_w[0];
  for (double lw : log_w) {
    max_log = std::max(max_log, lw);
  }
  double s1 = 0.0;
  double s2 = 0.0;
  for (double lw : log_w) {
    const double u = std::exp(lw - max_log);
    s1 += u;
    s2 += u * u;
  }
  return s2 > 0.0 ? s1 * s1 / s2 : 0.0;
}

// 95% CI for the unnormalized importance-sampling mean (1/n) sum(w_i x_i) of
// a nominal-measure expectation E[x] from draws under the sampling measure
// (per-lifetime loss probability, for example, with x an indicator). With
// all weights log 0 this is the ordinary sample mean. Lower bound clamps at
// zero; a non-finite blow-up (weights beyond double range) degrades to
// [0, +inf) rather than NaN.
inline ConfidenceInterval WeightedMeanCi(const std::vector<double>& log_w,
                                         const std::vector<double>& x) {
  assert(log_w.size() == x.size());
  ConfidenceInterval ci;
  const size_t k = log_w.size();
  if (k == 0) {
    return ci;
  }
  double max_log = log_w[0];
  for (double lw : log_w) {
    max_log = std::max(max_log, lw);
  }
  // Scaled terms y_i = w_i x_i * exp(-max_log); the scale is restored at the
  // end so intermediate sums stay in range.
  double sum = 0.0;
  for (size_t i = 0; i < k; ++i) {
    sum += std::exp(log_w[i] - max_log) * x[i];
  }
  const double mean_scaled = sum / static_cast<double>(k);
  const double scale = std::exp(max_log);
  ci.point = mean_scaled * scale;
  if (k < 2) {
    ci.lo = ci.hi = ci.point;
    return ci;
  }
  double ss = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double resid = std::exp(log_w[i] - max_log) * x[i] - mean_scaled;
    ss += resid * resid;
  }
  const double se_scaled = std::sqrt(ss / static_cast<double>(k - 1) /
                                     static_cast<double>(k));
  ci.lo = std::max(0.0, (mean_scaled - kZ975 * se_scaled) * scale);
  ci.hi = (mean_scaled + kZ975 * se_scaled) * scale;
  if (!std::isfinite(ci.point) || !std::isfinite(ci.hi)) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    ci.lo = 0.0;
    ci.hi = kInf;
    if (!std::isfinite(ci.point)) {
      ci.point = kInf;
    }
  }
  return ci;
}

// 95% CI for the weighted combined ratio
//     sum(w_i num_i) / (sum(w_i den_i) + k * den_offset),
// the importance-sampled analogue of RatioCi. `den_offset` adds a constant
// unit-weight denominator mass per observation: a forced campaign never
// samples the fault-free lifetime, so its analytically known observed-hours
// contribution exp(-Lambda H) * H re-enters here (DESIGN.md section 15).
// The delta-method residuals treat each (w_i num_i, w_i den_i + den_offset)
// pair as one observation. Weights are max-rescaled in log space; when an
// offset is present the scale is clamped at log 1 so the offset's relative
// magnitude survives the rescale.
inline ConfidenceInterval WeightedRatioCi(const std::vector<double>& log_w,
                                          const std::vector<double>& num,
                                          const std::vector<double>& den,
                                          double den_offset = 0.0) {
  assert(log_w.size() == num.size());
  assert(log_w.size() == den.size());
  assert(den_offset >= 0.0);
  ConfidenceInterval ci;
  const size_t k = log_w.size();
  if (k == 0) {
    return ci;
  }
  double max_log = log_w[0];
  for (double lw : log_w) {
    max_log = std::max(max_log, lw);
  }
  if (den_offset > 0.0) {
    max_log = std::max(max_log, 0.0);  // The offset carries weight exactly 1.
  }
  const double offset_scaled = den_offset * std::exp(-max_log);
  double sn = 0.0;
  double sd = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double u = std::exp(log_w[i] - max_log);
    sn += u * num[i];
    sd += u * den[i] + offset_scaled;
  }
  if (sd <= 0.0) {
    return ci;  // Degenerate: all weights/denominators vanished.
  }
  const double r = sn / sd;
  ci.point = r;
  if (k < 2) {
    ci.lo = ci.hi = r;
    return ci;
  }
  const double dbar = sd / static_cast<double>(k);
  double ss = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double u = std::exp(log_w[i] - max_log);
    const double resid = u * num[i] - r * (u * den[i] + offset_scaled);
    ss += resid * resid;
  }
  const double se = std::sqrt(ss / static_cast<double>(k - 1) /
                              static_cast<double>(k)) /
                    dbar;
  ci.lo = std::max(0.0, r - kZ975 * se);
  ci.hi = r + kZ975 * se;
  if (!std::isfinite(ci.point)) {
    ci.point = ci.hi = std::numeric_limits<double>::infinity();
    ci.lo = 0.0;
  }
  return ci;
}

// 95% CI for the MTTDL from an importance-sampled campaign: per-lifetime
// loss counts (0/1), observed hours, and log weights, plus the per-lifetime
// fault-free censored-hours mass `censored_hours_offset` a forced campaign
// must add back analytically. The loss *rate* interval comes from
// WeightedRatioCi and inverts into mean-time bounds. With zero weighted loss
// events the delta-method SE degenerates, so the lower bound falls back to
// the chi-square zero-event limit with the effective sample size in place of
// n: lo = 2 * ESS * mean-hours / chi2_{2,0.975} (exactly MttdlCiHours when
// every weight is 1 and the offset is 0).
inline ConfidenceInterval WeightedMttdlCiHours(
    const std::vector<double>& log_w, const std::vector<double>& loss_events,
    const std::vector<double>& hours, double censored_hours_offset = 0.0) {
  assert(log_w.size() == loss_events.size());
  assert(log_w.size() == hours.size());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ConfidenceInterval ci;
  const size_t k = log_w.size();
  if (k == 0) {
    return ci;
  }
  double weighted_events = 0.0;
  double max_log = log_w[0];
  for (double lw : log_w) {
    max_log = std::max(max_log, lw);
  }
  const double scale_log = std::max(max_log, 0.0);
  double hours_scaled = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double u = std::exp(log_w[i] - scale_log);
    weighted_events += u * loss_events[i];
    hours_scaled += u * hours[i];
  }
  if (weighted_events <= 0.0) {
    // No (weighted) losses observed: point and upper bound are unbounded and
    // the one-sided lower limit uses the effective, not nominal, sample size.
    const double mean_hours =
        hours_scaled / static_cast<double>(k) * std::exp(scale_log) +
        censored_hours_offset;
    const double ess = WeightEss(log_w);
    ci.point = kInf;
    ci.hi = kInf;
    ci.lo = 2.0 * ess * mean_hours / ChiSquareQuantile(2.0, kZ975);
    if (!std::isfinite(ci.lo)) {
      ci.lo = 0.0;
    }
    return ci;
  }
  const ConfidenceInterval rate =
      WeightedRatioCi(log_w, loss_events, hours, censored_hours_offset);
  if (rate.point <= 0.0) {
    return ci;
  }
  ci.point = 1.0 / rate.point;
  ci.lo = rate.hi > 0.0 ? 1.0 / rate.hi : 0.0;
  ci.hi = rate.lo > 0.0 ? 1.0 / rate.lo : kInf;
  return ci;
}

}  // namespace afraid

#endif  // AFRAID_STATS_CONFIDENCE_H_
