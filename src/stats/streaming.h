// Streaming (single-pass) summary statistics.

#ifndef AFRAID_STATS_STREAMING_H_
#define AFRAID_STATS_STREAMING_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace afraid {

// Welford's online algorithm: numerically stable mean/variance without
// retaining samples.
class StreamingStats {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) {
      min_ = x;
    }
    if (x > max_) {
      max_ = x;
    }
    sum_ += x;
  }

  uint64_t Count() const { return count_; }
  double Sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }

  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double Variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double StdDev() const { return std::sqrt(Variance()); }

  void Merge(const StreamingStats& other) {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }

  void Reset() { *this = StreamingStats(); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace afraid

#endif  // AFRAID_STATS_STREAMING_H_
