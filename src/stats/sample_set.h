// A retained-sample collection supporting exact percentiles.
//
// Latency distributions in the experiments are small enough (<= a few million
// samples) that retaining everything is cheaper and more faithful than a
// sketch. Percentile() uses nth_element, so queries are O(n) but mutate only
// a scratch copy kept inside the object.

#ifndef AFRAID_STATS_SAMPLE_SET_H_
#define AFRAID_STATS_SAMPLE_SET_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "stats/streaming.h"

namespace afraid {

class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    summary_.Add(x);
    sorted_ = false;
  }

  uint64_t Count() const { return summary_.Count(); }
  double Mean() const { return summary_.Mean(); }
  double Min() const { return summary_.Min(); }
  double Max() const { return summary_.Max(); }
  double StdDev() const { return summary_.StdDev(); }
  double Sum() const { return summary_.Sum(); }

  // Exact p-quantile with linear interpolation, p in [0, 1].
  double Percentile(double p) {
    assert(p >= 0.0 && p <= 1.0);
    if (samples_.empty()) {
      return 0.0;
    }
    EnsureSorted();
    const double pos = p * static_cast<double>(samples_.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double Median() { return Percentile(0.5); }

  const std::vector<double>& Samples() const { return samples_; }

  // Pre-sizes the backing storage so a steady stream of Add()s does not
  // reallocate mid-run (used by allocation-free-path harnesses).
  void Reserve(size_t n) { samples_.reserve(n); }

  void Reset() {
    samples_.clear();
    summary_.Reset();
    sorted_ = false;
  }

 private:
  void EnsureSorted() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  StreamingStats summary_;
  bool sorted_ = false;
};

}  // namespace afraid

#endif  // AFRAID_STATS_SAMPLE_SET_H_
