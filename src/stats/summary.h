// Aggregation helpers used by the experiment harnesses.

#ifndef AFRAID_STATS_SUMMARY_H_
#define AFRAID_STATS_SUMMARY_H_

#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

namespace afraid {

// Geometric mean of strictly positive values; the paper reports geometric
// means across workloads (e.g. "AFRAID was a geometric mean of 4.1 times
// faster than RAID 5").
inline double GeometricMean(const std::vector<double>& xs) {
  assert(!xs.empty());
  double log_sum = 0.0;
  for (double x : xs) {
    assert(x > 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

inline double ArithmeticMean(const std::vector<double>& xs) {
  assert(!xs.empty());
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

// Harmonic mean of strictly positive values (useful for rate aggregation).
inline double HarmonicMean(const std::vector<double>& xs) {
  assert(!xs.empty());
  double inv_sum = 0.0;
  for (double x : xs) {
    assert(x > 0.0);
    inv_sum += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / inv_sum;
}

}  // namespace afraid

#endif  // AFRAID_STATS_SUMMARY_H_
