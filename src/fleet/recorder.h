// Fleet workload recording: serialize a synthetic multi-tenant workload
// (fleet/tenants.h) to the text trace format, so fleet experiments can pin a
// generated workload to disk and every scheme replays the identical bytes --
// monolithically (VolumeManager::Run on the re-parsed trace) or streamed
// (VolumeManager::RunStreamed). The "# tenants N" header carries the tenant
// count through the round trip into FleetReport::num_tenants.
//
// The per-record tenant id is NOT serialized: routing and latency join key
// off (time, offset, size, op) only, so a recorded replay is field-exact
// with the direct synthetic replay (tested for 1 and 8 threads).

#ifndef AFRAID_FLEET_RECORDER_H_
#define AFRAID_FLEET_RECORDER_H_

#include <string>

#include "fleet/tenants.h"
#include "trace/trace.h"

namespace afraid {

// Records `trace` (name, tenant count, records in time order) to `path`.
TraceStatus RecordFleetTrace(const FleetTrace& trace, const std::string& path);

// The in-memory equivalent of a record + re-parse round trip: flattens a
// fleet trace to plain TraceRecords (dropping tenant ids, keeping the tenant
// count in Trace::tenants).
Trace FlattenFleetTrace(const FleetTrace& trace);

}  // namespace afraid

#endif  // AFRAID_FLEET_RECORDER_H_
