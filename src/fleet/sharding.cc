#include "fleet/sharding.h"

#include <algorithm>

namespace afraid {

const char* ShardingKindName(ShardingKind kind) {
  switch (kind) {
    case ShardingKind::kRange:
      return "range";
    case ShardingKind::kConsistentHash:
      return "chash";
  }
  return "?";
}

int64_t ShardMap::SizeVolume(int32_t num_shards, int64_t shard_capacity_bytes,
                             int64_t chunk_bytes, double fill_fraction) {
  assert(num_shards > 0 && shard_capacity_bytes > 0 && chunk_bytes > 0);
  assert(fill_fraction > 0.0 && fill_fraction <= 1.0);
  const int64_t total = static_cast<int64_t>(
      static_cast<double>(shard_capacity_bytes) * num_shards * fill_fraction);
  const int64_t granule = chunk_bytes * num_shards;
  const int64_t volume = (total / granule) * granule;
  assert(volume > 0 && "fleet too small for one chunk per shard");
  return volume;
}

ShardMap ShardMap::Range(int32_t num_shards, int64_t chunk_bytes,
                         int64_t volume_bytes) {
  assert(num_shards > 0 && chunk_bytes > 0);
  assert(volume_bytes % chunk_bytes == 0);
  const int64_t chunks = volume_bytes / chunk_bytes;
  assert(chunks % num_shards == 0);
  const int64_t per_shard = chunks / num_shards;

  ShardMap m;
  m.kind_ = ShardingKind::kRange;
  m.num_shards_ = num_shards;
  m.chunk_bytes_ = chunk_bytes;
  m.volume_bytes_ = volume_bytes;
  m.chunk_shard_.resize(static_cast<size_t>(chunks));
  m.chunk_local_.resize(static_cast<size_t>(chunks));
  m.chunks_per_shard_.assign(static_cast<size_t>(num_shards), per_shard);
  for (int64_t c = 0; c < chunks; ++c) {
    m.chunk_shard_[static_cast<size_t>(c)] = static_cast<int32_t>(c / per_shard);
    m.chunk_local_[static_cast<size_t>(c)] = c % per_shard;
  }
  return m;
}

ShardMap ShardMap::ConsistentHash(int32_t num_shards, int64_t chunk_bytes,
                                  int64_t volume_bytes,
                                  int64_t shard_capacity_bytes,
                                  int32_t vnodes_per_shard, uint64_t seed) {
  assert(num_shards > 0 && chunk_bytes > 0 && vnodes_per_shard > 0);
  assert(volume_bytes % chunk_bytes == 0);
  const int64_t chunks = volume_bytes / chunk_bytes;
  const int64_t cap_chunks = shard_capacity_bytes / chunk_bytes;
  assert(cap_chunks * num_shards >= chunks && "volume exceeds fleet capacity");

  // Build the ring: (point, shard) for every virtual node, sorted by point.
  // Ties (astronomically unlikely) break by shard id for determinism.
  struct Vnode {
    uint64_t point;
    int32_t shard;
  };
  std::vector<Vnode> ring;
  ring.reserve(static_cast<size_t>(num_shards) *
               static_cast<size_t>(vnodes_per_shard));
  for (int32_t s = 0; s < num_shards; ++s) {
    for (int32_t v = 0; v < vnodes_per_shard; ++v) {
      ring.push_back(Vnode{FleetVnodePoint(seed, s, v), s});
    }
  }
  std::sort(ring.begin(), ring.end(), [](const Vnode& a, const Vnode& b) {
    return a.point != b.point ? a.point < b.point : a.shard < b.shard;
  });

  ShardMap m;
  m.kind_ = ShardingKind::kConsistentHash;
  m.num_shards_ = num_shards;
  m.chunk_bytes_ = chunk_bytes;
  m.volume_bytes_ = volume_bytes;
  m.chunk_shard_.resize(static_cast<size_t>(chunks));
  m.chunk_local_.resize(static_cast<size_t>(chunks));
  m.chunks_per_shard_.assign(static_cast<size_t>(num_shards), 0);

  // Assign chunks in ascending chunk order (so local indices are a pure
  // function of the map, not of request order). Each chunk goes to the
  // first vnode at or after its ring key whose shard still has capacity;
  // walking on past full shards is the deterministic spill path.
  for (int64_t c = 0; c < chunks; ++c) {
    const uint64_t key = FleetChunkPoint(c);
    const auto it = std::lower_bound(
        ring.begin(), ring.end(), key,
        [](const Vnode& v, uint64_t k) { return v.point < k; });
    size_t pos = static_cast<size_t>(it - ring.begin()) % ring.size();
    int32_t owner = -1;
    for (size_t step = 0; step < ring.size(); ++step) {
      const int32_t s = ring[(pos + step) % ring.size()].shard;
      if (m.chunks_per_shard_[static_cast<size_t>(s)] < cap_chunks) {
        owner = s;
        if (step > 0) {
          ++m.spilled_chunks_;
        }
        break;
      }
    }
    assert(owner >= 0);
    m.chunk_shard_[static_cast<size_t>(c)] = owner;
    m.chunk_local_[static_cast<size_t>(c)] =
        m.chunks_per_shard_[static_cast<size_t>(owner)]++;
  }
  return m;
}

void ShardMap::SplitRange(int64_t offset, int32_t length,
                          std::vector<ShardPiece>* pieces) const {
  pieces->clear();
  assert(offset >= 0 && length > 0 && offset + length <= volume_bytes_);
  int64_t at = offset;
  int64_t remaining = length;
  while (remaining > 0) {
    const int64_t chunk_end = (at / chunk_bytes_ + 1) * chunk_bytes_;
    const int64_t take = std::min(remaining, chunk_end - at);
    const ShardTarget t = Route(at);
    // Coalesce with the previous piece when it continues the same shard's
    // local address space (always true for intra-chunk continuation; also
    // true across chunks mapped to consecutive local indices).
    if (!pieces->empty()) {
      ShardPiece& back = pieces->back();
      if (back.shard == t.shard &&
          back.local_offset + back.length == t.local_offset) {
        back.length += static_cast<int32_t>(take);
        at += take;
        remaining -= take;
        continue;
      }
    }
    pieces->push_back(
        ShardPiece{t.shard, t.local_offset, static_cast<int32_t>(take)});
    at += take;
    remaining -= take;
  }
}

}  // namespace afraid
