// Sharding policies: how one large logical volume maps onto N arrays.
//
// A fleet-scale installation does not serve millions of users from one
// array; it stripes a large logical volume across many independent arrays
// ("shards") and routes each request to the shard owning its address. Two
// placement policies are provided, both compiled down to the same flat
// chunk table so the hot routing path is one bounds check plus two array
// loads regardless of policy (BM_FleetRoute):
//
//   * Range sharding: the volume is cut into num_shards contiguous spans;
//     chunk c lives on shard c / chunks_per_shard. Simple, preserves
//     locality (a tenant's whole slice usually lands on one shard), but a
//     hot address range concentrates on one array.
//   * Consistent hashing: each shard projects `vnodes_per_shard` virtual
//     nodes onto a 64-bit ring; chunk c is owned by the shard of the first
//     virtual node at or after hash(c). Spreads hot ranges across the
//     fleet and keeps reassignment incremental when shards join or leave.
//     Chunks that would overflow a shard's capacity spill deterministically
//     to the next virtual node with free space, so the map is always valid.
//
// The chunk table also pre-assigns every chunk a dense local index within
// its shard, so routing yields the shard-local byte offset directly: no
// per-request modular arithmetic over ring points, and the per-shard
// address spaces stay compact (they feed StripeLayout-based RequestPlans).

#ifndef AFRAID_FLEET_SHARDING_H_
#define AFRAID_FLEET_SHARDING_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace afraid {

enum class ShardingKind {
  kRange,
  kConsistentHash,
};

const char* ShardingKindName(ShardingKind kind);

// Where one logical byte lives.
struct ShardTarget {
  int32_t shard = 0;
  int64_t local_offset = 0;  // Byte offset within the shard's address space.
};

// One shard-contiguous piece of a routed request.
struct ShardPiece {
  int32_t shard = 0;
  int64_t local_offset = 0;
  int32_t length = 0;
};

// The 64-bit mixer both policies hash with (SplitMix64 finalizer). Exposed
// so tests can build a naive reference ring from first principles.
constexpr uint64_t FleetHash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Ring position of virtual node `vnode` of `shard` under `seed`.
constexpr uint64_t FleetVnodePoint(uint64_t seed, int32_t shard, int32_t vnode) {
  return FleetHash64(seed ^ FleetHash64(static_cast<uint64_t>(shard) * 0x10001ULL +
                                        static_cast<uint64_t>(vnode)));
}

// Ring key of chunk `chunk`.
constexpr uint64_t FleetChunkPoint(int64_t chunk) {
  return FleetHash64(static_cast<uint64_t>(chunk) * 0x9e3779b97f4a7c15ULL + 0x5bULL);
}

class ShardMap {
 public:
  // Contiguous range placement. `volume_bytes` must be a multiple of
  // `chunk_bytes`, and the chunks must divide evenly over the shards
  // (callers size the volume with SizeVolume below).
  static ShardMap Range(int32_t num_shards, int64_t chunk_bytes,
                        int64_t volume_bytes);

  // Consistent-hash placement with capacity-aware spill. `shard_capacity
  // _bytes` bounds how many chunks one shard may own; pass the per-shard
  // data capacity so the map can never address past a shard's end.
  static ShardMap ConsistentHash(int32_t num_shards, int64_t chunk_bytes,
                                 int64_t volume_bytes,
                                 int64_t shard_capacity_bytes,
                                 int32_t vnodes_per_shard, uint64_t seed);

  // Largest volume size (a multiple of chunk_bytes * num_shards, so both
  // policies can place it) not exceeding fill_fraction of the fleet's total
  // data capacity.
  static int64_t SizeVolume(int32_t num_shards, int64_t shard_capacity_bytes,
                            int64_t chunk_bytes, double fill_fraction);

  ShardingKind kind() const { return kind_; }
  int32_t num_shards() const { return num_shards_; }
  int64_t chunk_bytes() const { return chunk_bytes_; }
  int64_t volume_bytes() const { return volume_bytes_; }
  int64_t num_chunks() const { return static_cast<int64_t>(chunk_shard_.size()); }

  // Routes one logical byte offset. The fleet's hot path: two array loads.
  ShardTarget Route(int64_t offset) const {
    assert(offset >= 0 && offset < volume_bytes_);
    const int64_t chunk = offset / chunk_bytes_;
    const int64_t within = offset - chunk * chunk_bytes_;
    const size_t c = static_cast<size_t>(chunk);
    return ShardTarget{chunk_shard_[c],
                       chunk_local_[c] * chunk_bytes_ + within};
  }

  // Splits [offset, offset+length) into shard-contiguous pieces, in
  // ascending logical-offset order. Adjacent chunks owned by the same shard
  // at consecutive local indices coalesce into one piece.
  void SplitRange(int64_t offset, int32_t length,
                  std::vector<ShardPiece>* pieces) const;

  // Chunks owned per shard (load-balance introspection; sums to num_chunks).
  const std::vector<int64_t>& ChunksPerShard() const { return chunks_per_shard_; }

  // Chunks the consistent-hash builder had to spill past a full primary
  // owner (always 0 for range sharding).
  int64_t SpilledChunks() const { return spilled_chunks_; }

  // An empty map (no chunks); VolumeManager builds the real one in its
  // constructor via the factories above.
  ShardMap() = default;

 private:

  ShardingKind kind_ = ShardingKind::kRange;
  int32_t num_shards_ = 0;
  int64_t chunk_bytes_ = 0;
  int64_t volume_bytes_ = 0;
  std::vector<int32_t> chunk_shard_;  // chunk -> owning shard.
  std::vector<int64_t> chunk_local_;  // chunk -> dense index within shard.
  std::vector<int64_t> chunks_per_shard_;
  int64_t spilled_chunks_ = 0;
};

}  // namespace afraid

#endif  // AFRAID_FLEET_SHARDING_H_
