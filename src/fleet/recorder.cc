#include "fleet/recorder.h"

#include "trace/recorder.h"

namespace afraid {

TraceStatus RecordFleetTrace(const FleetTrace& trace, const std::string& path) {
  WorkloadRecorder rec(path);
  rec.SetName(trace.name);
  rec.SetTenants(trace.num_tenants);
  for (const FleetRecord& r : trace.records) {
    rec.Append(TraceRecord{r.time, r.offset, r.size, r.is_write});
  }
  rec.Close();
  return rec.status();
}

Trace FlattenFleetTrace(const FleetTrace& trace) {
  Trace out;
  out.name = trace.name;
  out.tenants = trace.num_tenants;
  out.records.reserve(trace.records.size());
  for (const FleetRecord& r : trace.records) {
    out.records.push_back(TraceRecord{r.time, r.offset, r.size, r.is_write});
  }
  return out;
}

}  // namespace afraid
