// Multi-tenant workload multiplexer: thousands of concurrent client
// sessions over one logical volume.
//
// A fleet does not see one trace; it sees many small clients at once, each
// with its own burst structure, locality and read/write mix. This module
// models that as N tenant *sessions*: every tenant owns a contiguous slice
// of the logical volume (its "home directory"), draws its behaviour from
// one of a few tenant classes (interactive, OLTP-like, analytics scans,
// backup streams), and runs the same ON/OFF source the single-array
// experiments use (trace/workload_gen.h) inside its slice -- so per-tenant
// behaviour is exactly the validated generator, just multiplexed.
//
// Determinism: tenant i's class assignment and request stream derive from
// DeriveStreamSeed(seed, i) -- pure functions of (seed, i) -- and the merge
// orders records by (time, tenant, per-tenant sequence). The resulting
// fleet trace is bit-identical for any generation or thread order.

#ifndef AFRAID_FLEET_TENANTS_H_
#define AFRAID_FLEET_TENANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "trace/workload_gen.h"

namespace afraid {

// One logical-volume request plus the session that issued it.
struct FleetRecord {
  SimTime time = 0;
  int64_t offset = 0;  // Byte offset into the logical volume.
  int32_t size = 0;
  bool is_write = false;
  int32_t tenant = 0;
};

struct FleetTrace {
  std::string name;
  std::vector<FleetRecord> records;
  int32_t num_tenants = 0;
  size_t Size() const { return records.size(); }
  SimTime Duration() const {
    return records.empty() ? 0 : records.back().time;
  }
};

// A tenant archetype: the ON/OFF shape its sessions run, plus a relative
// population weight.
struct TenantClass {
  std::string name;
  WorkloadParams shape;  // address_space_bytes is filled per slice.
  double weight = 1.0;
};

// The built-in mix: interactive desktops, OLTP-ish update streams,
// analytics scans, and backup writers.
std::vector<TenantClass> DefaultTenantClasses();

struct FleetWorkloadParams {
  std::string name = "fleet";
  uint64_t seed = 1;
  int32_t num_tenants = 1000;
  // Global caps; per-tenant caps are max_requests/num_tenants (min 1) and
  // the full duration.
  uint64_t max_requests = 50000;
  SimDuration max_duration = Minutes(10);
  // Each tenant's session starts at a deterministic uniform offset in
  // [0, start_jitter): real fleets don't see every client log in at t=0,
  // and without jitter the merged t=0 burst saturates every shard queue.
  SimDuration start_jitter = Minutes(2);
  std::vector<TenantClass> classes = DefaultTenantClasses();
};

// Generates the merged multi-tenant arrival stream over a volume of
// `volume_bytes`. Tenant slices tile the volume in tenant order.
FleetTrace GenerateFleetWorkload(const FleetWorkloadParams& params,
                                 int64_t volume_bytes);

}  // namespace afraid

#endif  // AFRAID_FLEET_TENANTS_H_
