// The fleet-scale volume manager: one large logical volume striped across N
// independent arrays, serving thousands of tenant sessions at once.
//
// A VolumeManager owns a ShardMap (fleet/sharding.h) that places the
// logical volume over `num_shards` arrays, each a full simulated array
// instance (disks, controller, host driver) built from the same ArrayConfig
// the single-array experiments use. Run() routes a multi-tenant arrival
// stream (fleet/tenants.h) through the map into per-shard traces, compiles
// each into the allocation-free RequestPlan/HostDriver fast path, and
// drives the shards in parallel with the deterministic sweep machinery
// (core/sweep.h): every shard is an independent simulation cell, so the
// fleet result is bit-identical for any AFRAID_BENCH_THREADS.
//
// Requests that straddle a chunk boundary split into per-shard pieces; the
// client-visible latency of a split request is the maximum over its pieces
// (all pieces are issued at the arrival instant, so the per-shard
// measurements compose exactly). The per-request completion listener on
// HostDriver feeds the join.
//
// Online management (modelled on the kimeta-OS2 raid ioctl surface:
// disk_fail / disk_repaired / info / destroy): operations are registered
// with a simulated timestamp and executed inside the owning shard's event
// loop while its traffic keeps flowing -- a disk failure mid-run degrades
// one shard, a repair triggers the online reconstruction sweep, destroy
// decommissions the shard (subsequent arrivals are dropped and counted),
// and info snapshots the shard's state into its report.

#ifndef AFRAID_FLEET_VOLUME_MANAGER_H_
#define AFRAID_FLEET_VOLUME_MANAGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/array_config.h"
#include "core/policy.h"
#include "fleet/sharding.h"
#include "fleet/tenants.h"
#include "sim/time.h"
#include "trace/trace.h"
#include "trace/trace_stream.h"

namespace afraid {

struct FleetConfig {
  ArrayConfig array;  // Per-shard array (disks, stripe unit, caches...).
  // Consulted by policy-driven schemes only ("afraid"), so RAID 0 / RAID 5 /
  // any AFRAID policy all come through the one scheme name.
  PolicySpec policy = PolicySpec::AfraidBaseline();
  // Which controller each shard runs, by registry name
  // (src/core/scheme_registry.h): "afraid", "raid6", "raid6-deferQ",
  // "raid6-deferPQ", "parity-log", "mirror", or any scheme registered later.
  std::string scheme = "afraid";
  int32_t num_shards = 8;
  ShardingKind sharding = ShardingKind::kRange;
  int64_t chunk_bytes = 1 << 20;
  int32_t vnodes_per_shard = 64;
  // Logical volume size as a fraction of total shard capacity; headroom
  // absorbs consistent-hash imbalance without overflowing any shard.
  double fill_fraction = 0.8;
  uint64_t seed = 1;
  // Hot-spare pool per shard. >= 0: disk_repaired consumes one spare per
  // installed replacement and is refused outright (the shard stays degraded)
  // when the pool is empty; spare_add restocks the pool online. < 0 keeps
  // the legacy unlimited replacement stock, under which spare_add is refused
  // as meaningless.
  int32_t spares = -1;
};

// One management operation, replayed online at `time` in the owning
// shard's simulation.
struct MgmtOp {
  enum class Kind { kDiskFail, kDiskRepaired, kInfo, kDestroy, kSpareAdd };
  Kind kind = Kind::kInfo;
  SimTime time = 0;
  int32_t shard = 0;
  int32_t disk = -1;  // kDiskFail / kDiskRepaired only.
};

const char* MgmtOpKindName(MgmtOp::Kind kind);

// Snapshot of one shard's state, taken by an `info` op at simulated time.
struct ShardInfo {
  SimTime time = 0;
  int32_t shard = 0;
  bool destroyed = false;
  int32_t failed_disk = -1;
  int32_t recovering_disk = -1;
  uint64_t accepted = 0;
  uint64_t completed = 0;
  int64_t dirty_bands = 0;  // Stale-parity marks (P+Q for RAID 6).
  uint64_t loss_events = 0;
  int64_t bytes_lost = 0;
  int32_t spares_free = -1;  // Hot spares left in the pool (-1: unlimited).
};

struct ShardReport {
  int32_t shard = 0;
  uint64_t requests = 0;  // Pieces served by this shard.
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t dropped = 0;  // Pieces discarded after a destroy.
  int64_t bytes = 0;
  double mean_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double duration_s = 0.0;
  double disk_utilization = 0.0;  // AFRAID-family shards only.
  double mean_parity_lag_bytes = 0.0;
  double t_unprot_fraction = 0.0;
  uint64_t stripes_rebuilt = 0;
  uint64_t loss_events = 0;
  int64_t bytes_lost = 0;
  // Failure/repair outcome. degraded_s covers disk-fail -> reconstruction
  // complete (or end of run if never repaired).
  bool disk_failed = false;
  bool repaired = false;
  double degraded_s = 0.0;
  bool destroyed = false;
  // Management ops this scheme/state refused, by op kind. A refusal leaves
  // the shard unchanged (e.g. failing an out-of-range disk, repairing a disk
  // that never failed, destroying an already-destroyed shard).
  uint64_t mgmt_unsupported_fail = 0;
  uint64_t mgmt_unsupported_repair = 0;
  uint64_t mgmt_unsupported_info = 0;
  uint64_t mgmt_unsupported_destroy = 0;
  uint64_t mgmt_unsupported_spare_add = 0;
  uint64_t MgmtUnsupportedTotal() const {
    return mgmt_unsupported_fail + mgmt_unsupported_repair +
           mgmt_unsupported_info + mgmt_unsupported_destroy +
           mgmt_unsupported_spare_add;
  }
  // Hot-spare pool traffic (FleetConfig::spares >= 0 only).
  uint64_t spares_added = 0;
  uint64_t spares_used = 0;
  // disk_repaired ops refused because the pool was empty; the shard kept
  // serving degraded until a spare_add (or the end of the run).
  uint64_t repairs_refused_no_spare = 0;
  std::vector<ShardInfo> infos;  // One per `info` op, in time order.
};

struct FleetReport {
  std::string workload;
  std::string scheme;
  std::string sharding;
  int32_t num_shards = 0;
  int32_t num_tenants = 0;
  int64_t volume_bytes = 0;

  // Client-visible (logical-request) latency across the whole fleet; split
  // requests count once, at the max of their pieces.
  uint64_t requests = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t dropped = 0;          // Logical requests with any dropped piece.
  uint64_t split_requests = 0;   // Logical requests that crossed shards.
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
  double mean_read_ms = 0.0;
  double mean_write_ms = 0.0;

  double duration_s = 0.0;  // Max simulated span over shards.

  // Load balance: per-shard served-piece counts.
  double imbalance_max_mean = 0.0;  // max(shard requests) / mean.
  double imbalance_cv = 0.0;        // Coefficient of variation.
  double byte_imbalance_max_mean = 0.0;

  // Availability under (possibly correlated) failures.
  double degraded_shard_s = 0.0;  // Sum of per-shard degraded seconds.
  uint64_t loss_events = 0;
  int64_t bytes_lost = 0;
  int32_t shards_destroyed = 0;

  std::vector<ShardReport> shards;
};

// Serializes a FleetReport as a JSON object (artifacts, CI validation).
std::string FleetReportToJson(const FleetReport& rep);

class VolumeManager {
 public:
  explicit VolumeManager(const FleetConfig& cfg);

  const FleetConfig& config() const { return cfg_; }
  const ShardMap& shard_map() const { return map_; }
  int64_t VolumeBytes() const { return map_.volume_bytes(); }
  int64_t ShardCapacityBytes() const { return shard_capacity_; }

  // --- Management timeline (applied online during Run) ----------------------
  void DiskFail(SimTime at, int32_t shard, int32_t disk);
  void DiskRepaired(SimTime at, int32_t shard, int32_t disk);
  void InfoAt(SimTime at, int32_t shard);
  void Destroy(SimTime at, int32_t shard);
  // Restocks the shard's hot-spare pool by one (shard -1: every shard).
  void SpareAdd(SimTime at, int32_t shard);
  const std::vector<MgmtOp>& Ops() const { return ops_; }

  struct RunOptions {
    int32_t threads = 0;        // <= 0: SweepThreads() (AFRAID_BENCH_THREADS).
    std::string artifacts_dir;  // Non-empty: write fleet.json here.
    bool trace_shards = false;  // Also write <dir>/shard<k>/trace.json.
  };

  // Routes `trace`, runs every shard to completion (parallel, deterministic)
  // and merges the fleet report.
  FleetReport Run(const FleetTrace& trace, const RunOptions& opts);
  FleetReport Run(const FleetTrace& trace) { return Run(trace, RunOptions()); }

  // Streams a recorded trace file (trace/recorder.h format; the "# tenants"
  // header carries the tenant count into the report) through the chunked
  // pipeline: each chunk is routed through the shard map, compiled into
  // per-shard plan rings and replayed -- all shards advancing under the
  // deterministic sweep -- before the next chunk is read. Trace text and
  // plans stay O(chunk); only the per-request completion join (one latency
  // and a flag byte per logical request, which the monolithic path keeps
  // too) scales with the trace. The FleetReport is field-exact vs loading
  // the same file and calling Run(), for any thread count. On a parse/file
  // error (*status if non-null) the report covers the replayed prefix.
  FleetReport RunStreamed(const std::string& path, const StreamOptions& sopts,
                          const RunOptions& opts,
                          TraceStatus* status = nullptr);

 private:
  void AddOp(MgmtOp::Kind kind, SimTime at, int32_t shard, int32_t disk);

  FleetConfig cfg_;
  int64_t shard_capacity_ = 0;
  ShardMap map_;
  std::vector<MgmtOp> ops_;
};

}  // namespace afraid

#endif  // AFRAID_FLEET_VOLUME_MANAGER_H_
