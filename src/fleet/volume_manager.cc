#include "fleet/volume_manager.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <utility>

#include "array/host_driver.h"
#include "array/plan.h"
#include "array/plan_stream.h"
#include "array/scheme.h"
#include "core/experiment.h"
#include "core/scheme_registry.h"
#include "core/sweep.h"
#include "disk/disk_model.h"
#include "obs/artifacts.h"
#include "obs/json.h"
#include "obs/probe.h"
#include "obs/tracer.h"
#include "sim/simulator.h"
#include "stats/sample_set.h"

namespace afraid {

const char* MgmtOpKindName(MgmtOp::Kind kind) {
  switch (kind) {
    case MgmtOp::Kind::kDiskFail:
      return "disk_fail";
    case MgmtOp::Kind::kDiskRepaired:
      return "disk_repaired";
    case MgmtOp::Kind::kInfo:
      return "info";
    case MgmtOp::Kind::kDestroy:
      return "destroy";
    case MgmtOp::Kind::kSpareAdd:
      return "spare_add";
  }
  return "?";
}

namespace {

// The per-shard half of a fleet run: everything derived from the shard's
// inputs only, so shards are pure parallel sweep cells.
struct ShardResult {
  ShardReport report;
  // Piece latency by shard-trace record index; < 0 means dropped.
  std::vector<double> lat;
  std::unique_ptr<Tracer> tracer;
};

// One shard as a persistent replay cell: simulator, controller, driver,
// plan-slot ring and streaming replayer all live across chunks, so the same
// cell serves both the monolithic path (one Feed with the whole shard trace)
// and the streamed path (one Feed per routed chunk). Management ops are
// scheduled lazily, after the first arrival is -- matching the event
// insertion order of the pre-streaming fleet runner exactly.
class ShardCell {
 public:
  ShardCell(const FleetConfig& cfg, int32_t shard,
            const std::vector<MgmtOp>& ops, bool trace_on)
      : cfg_(cfg), shard_(shard), ops_(&ops), spares_(cfg.spares) {
    result.report.shard = shard;
    if (trace_on) {
      result.tracer = std::make_unique<Tracer>();
    }
    const Probe probe(result.tracer.get());
    const ArrayConfig& acfg = cfg_.array;  // Normalised by VolumeManager.
    SchemeContext ctx;
    ctx.sim = &sim_;
    ctx.config = acfg;
    ctx.policy = cfg_.policy;
    ctx.avail = AvailabilityParamsFor(acfg);
    ctx.probe = probe;
    ctrl_ = SchemeRegistry::Create(cfg_.scheme, ctx);
    assert(ctrl_ != nullptr && "fleet: unknown scheme name");
    // Plans compile against the controller's exact layout (the same
    // precomputation the single-array Experiment does).
    assert(SchemeRegistry::DataCapacityBytes(cfg_.scheme, acfg) ==
           ctrl_->DataCapacityBytes());
    driver_ = std::make_unique<HostDriver>(&sim_, ctrl_.get(), acfg.MaxActive(),
                                           acfg.host_sched, probe);
    replayer_ =
        std::make_unique<StreamingPlanReplayer>(&sim_, driver_.get(), &ring_);
    // Piece latencies by submission order: driver ids are 1-based and
    // assigned in submission order, which is record order.
    driver_->SetCompletionListener(
        [this](uint64_t id, double ms, bool /*is_write*/) {
          result.lat[static_cast<size_t>(id - 1)] = ms;
          replayer_->OnComplete(id);
        });
  }

  // Compiles `n` routed records into a ring slot and hands them to the
  // replayer. Latency slots are appended (and stay -1.0 for pieces a
  // destroy later drops) so the completion join sees every routed piece.
  void Feed(const TraceRecord* recs, size_t n) {
    result.lat.resize(result.lat.size() + n, -1.0);
    if (n == 0) {
      return;
    }
    fed_ += n;
    driver_->ReserveLatencySamples(fed_);
    RequestPlan* plan = ring_.Acquire();
    plan->Compile(recs, n, ctrl_->layout());
    ring_.NotePeak();
    replayer_->Feed(plan);
  }

  // Steps this shard's simulation until the replayer starves for the next
  // chunk (or the shard drains).
  void Advance() {
    ScheduleOpsOnce();
    while (!replayer_->starved() && !sim_.Idle()) {
      sim_.Step();
    }
  }

  // No further chunks: drain to completion and harvest the shard report.
  void Finish() {
    ScheduleOpsOnce();
    replayer_->FinishFeeding();
    sim_.RunToEnd();
    assert(driver_->Drained());
    ShardReport& rep = result.report;
    if (degraded_from_ >= 0) {
      // Failed and never repaired: degraded until the end of the run.
      rep.degraded_s += ToSeconds(sim_.Now() - degraded_from_);
    }
    rep.requests = driver_->Completed();
    rep.reads = driver_->ReadLatencies().Count();
    rep.writes = driver_->WriteLatencies().Count();
    rep.dropped = replayer_->dropped();
    rep.bytes =
        replayer_->submitted_read_bytes() + replayer_->submitted_write_bytes();
    rep.mean_ms = driver_->AllLatencies().Mean();
    rep.p99_ms = driver_->AllLatencies().Percentile(0.99);
    rep.max_ms = driver_->AllLatencies().Max();
    rep.duration_s = ToSeconds(sim_.Now());
    double util = 0.0;
    for (int32_t d = 0; d < ctrl_->num_disks(); ++d) {
      util += ctrl_->disk(d).UtilizationTo(sim_.Now());
    }
    rep.disk_utilization = util / ctrl_->num_disks();
    const SchemeStats stats = ctrl_->Stats();
    rep.mean_parity_lag_bytes = stats.mean_parity_lag_bytes;
    rep.t_unprot_fraction = stats.t_unprot_fraction;
    rep.stripes_rebuilt = stats.stripes_rebuilt;
    rep.loss_events = stats.loss_events;
    rep.bytes_lost = stats.bytes_lost;
  }

  size_t peak_plan_bytes() const { return ring_.peak_bytes(); }

  ShardResult result;

 private:
  // The online management timeline: each op runs inside this shard's event
  // loop at its simulated time, with client traffic still flowing. Deferred
  // past the first arrival's scheduling (Feed before Advance/Finish) so the
  // event insertion order matches the pre-streaming runner, which called
  // replayer.Start() before scheduling ops.
  void ScheduleOpsOnce() {
    if (ops_scheduled_) {
      return;
    }
    ops_scheduled_ = true;
    for (const MgmtOp& op : *ops_) {
      sim_.At(op.time, [this, op] {
        ShardReport& rep = result.report;
        switch (op.kind) {
          case MgmtOp::Kind::kDiskFail:
            if (ctrl_->FailDisk(op.disk)) {
              rep.disk_failed = true;
              degraded_from_ = sim_.Now();
            } else {
              ++rep.mgmt_unsupported_fail;
            }
            break;
          case MgmtOp::Kind::kDiskRepaired:
            if (spares_ == 0) {
              // Pool exhausted: no replacement to install. The shard stays
              // degraded until a spare_add restocks the pool.
              ++rep.repairs_refused_no_spare;
              break;
            }
            if (ctrl_->ReplaceDisk(op.disk)) {
              if (spares_ > 0) {
                --spares_;
                ++rep.spares_used;
              }
              ctrl_->StartReconstruction([this] {
                result.report.repaired = true;
                if (degraded_from_ >= 0) {
                  result.report.degraded_s +=
                      ToSeconds(sim_.Now() - degraded_from_);
                  degraded_from_ = -1;
                }
              });
            } else {
              ++rep.mgmt_unsupported_repair;
            }
            break;
          case MgmtOp::Kind::kInfo: {
            ShardInfo info;
            info.time = sim_.Now();
            info.shard = shard_;
            info.destroyed = replayer_->destroyed();
            info.accepted = driver_->Accepted();
            info.completed = driver_->Completed();
            const SchemeState state = ctrl_->State();
            info.failed_disk = state.failed_disk;
            info.recovering_disk = state.recovering_disk;
            info.dirty_bands = state.dirty_marks;
            info.loss_events = state.loss_events;
            info.bytes_lost = state.bytes_lost;
            info.spares_free = spares_;
            rep.infos.push_back(info);
            break;
          }
          case MgmtOp::Kind::kDestroy:
            if (replayer_->destroyed()) {
              ++rep.mgmt_unsupported_destroy;
            } else {
              replayer_->Destroy();
              rep.destroyed = true;
            }
            break;
          case MgmtOp::Kind::kSpareAdd:
            if (spares_ < 0) {
              ++rep.mgmt_unsupported_spare_add;  // No pool to restock.
            } else {
              ++spares_;
              ++rep.spares_added;
            }
            break;
        }
      });
    }
  }

  const FleetConfig& cfg_;
  int32_t shard_;
  const std::vector<MgmtOp>* ops_;
  Simulator sim_;
  std::unique_ptr<ArrayScheme> ctrl_;
  std::unique_ptr<HostDriver> driver_;
  PlanSlotRing ring_;
  std::unique_ptr<StreamingPlanReplayer> replayer_;
  SimTime degraded_from_ = -1;
  int32_t spares_ = -1;  // Hot spares left; -1 = unlimited legacy stock.
  uint64_t fed_ = 0;
  bool ops_scheduled_ = false;
};

ShardResult RunShard(const FleetConfig& cfg, int32_t shard, const Trace& strace,
                     const std::vector<MgmtOp>& ops, bool trace_on) {
  ShardCell cell(cfg, shard, ops, trace_on);
  cell.Feed(strace.records.data(), strace.records.size());
  cell.Finish();
  return std::move(cell.result);
}

// Per-logical-record routing flags for the completion join.
constexpr uint8_t kRecWrite = 1;  // The record was a write.
constexpr uint8_t kRecSplit = 2;  // The record split across shards.

// Joins per-shard piece latencies back into client-visible requests and
// assembles the fleet report. Shared verbatim by the monolithic and streamed
// paths, so both produce field-exact reports from identical shard results.
FleetReport MergeFleet(const FleetConfig& cfg, const ShardMap& map,
                       const std::string& workload, int32_t num_tenants,
                       std::vector<ShardResult> results,
                       const std::vector<std::vector<uint32_t>>& piece_owner,
                       const std::vector<uint8_t>& rec_flags,
                       const VolumeManager::RunOptions& opts,
                       bool trace_shards) {
  const int32_t num_shards = cfg.num_shards;
  const size_t num_records = rec_flags.size();

  // Join pieces back into client-visible requests: a split request
  // completes when its last piece does, so its latency is the max over
  // pieces (all pieces share the arrival instant).
  std::vector<double> logical_ms(num_records, -1.0);
  std::vector<uint8_t> logical_dropped(num_records, 0);
  for (int32_t s = 0; s < num_shards; ++s) {
    const auto si = static_cast<size_t>(s);
    for (size_t i = 0; i < piece_owner[si].size(); ++i) {
      const uint32_t r = piece_owner[si][i];
      const double ms = results[si].lat[i];
      if (ms < 0) {
        logical_dropped[r] = 1;
      } else {
        logical_ms[r] = std::max(logical_ms[r], ms);
      }
    }
  }

  FleetReport rep;
  rep.workload = workload;
  rep.scheme = cfg.scheme;
  rep.sharding = ShardingKindName(map.kind());
  rep.num_shards = num_shards;
  rep.num_tenants = num_tenants;
  rep.volume_bytes = map.volume_bytes();

  SampleSet all_ms;
  SampleSet read_ms;
  SampleSet write_ms;
  all_ms.Reserve(num_records);
  for (size_t r = 0; r < num_records; ++r) {
    if ((rec_flags[r] & kRecSplit) != 0) {
      ++rep.split_requests;
    }
    if (logical_dropped[r] != 0 || logical_ms[r] < 0) {
      ++rep.dropped;
      continue;
    }
    all_ms.Add(logical_ms[r]);
    if ((rec_flags[r] & kRecWrite) != 0) {
      write_ms.Add(logical_ms[r]);
    } else {
      read_ms.Add(logical_ms[r]);
    }
  }
  rep.requests = all_ms.Count();
  rep.reads = read_ms.Count();
  rep.writes = write_ms.Count();
  rep.mean_ms = all_ms.Mean();
  rep.p50_ms = all_ms.Percentile(0.50);
  rep.p90_ms = all_ms.Percentile(0.90);
  rep.p99_ms = all_ms.Percentile(0.99);
  rep.p999_ms = all_ms.Percentile(0.999);
  rep.max_ms = all_ms.Max();
  rep.mean_read_ms = read_ms.Mean();
  rep.mean_write_ms = write_ms.Mean();

  // Per-shard load balance and availability roll-ups.
  double sum_req = 0.0;
  double sum_sq = 0.0;
  double max_req = 0.0;
  double sum_bytes = 0.0;
  double max_bytes = 0.0;
  for (ShardResult& res : results) {
    const ShardReport& s = res.report;
    rep.duration_s = std::max(rep.duration_s, s.duration_s);
    rep.degraded_shard_s += s.degraded_s;
    rep.loss_events += s.loss_events;
    rep.bytes_lost += s.bytes_lost;
    if (s.destroyed) {
      ++rep.shards_destroyed;
    }
    const auto req = static_cast<double>(s.requests);
    sum_req += req;
    sum_sq += req * req;
    max_req = std::max(max_req, req);
    const auto bytes = static_cast<double>(s.bytes);
    sum_bytes += bytes;
    max_bytes = std::max(max_bytes, bytes);
    rep.shards.push_back(std::move(res.report));
  }
  const double mean_req = sum_req / num_shards;
  if (mean_req > 0.0) {
    rep.imbalance_max_mean = max_req / mean_req;
    const double var = sum_sq / num_shards - mean_req * mean_req;
    rep.imbalance_cv = std::sqrt(std::max(var, 0.0)) / mean_req;
  }
  const double mean_bytes = sum_bytes / num_shards;
  if (mean_bytes > 0.0) {
    rep.byte_imbalance_max_mean = max_bytes / mean_bytes;
  }

  if (!opts.artifacts_dir.empty()) {
    RunArtifacts artifacts(opts.artifacts_dir);
    if (artifacts.ok()) {
      artifacts.WriteText("fleet.json", FleetReportToJson(rep) + "\n");
      if (trace_shards) {
        for (int32_t s = 0; s < num_shards; ++s) {
          const auto si = static_cast<size_t>(s);
          if (results[si].tracer != nullptr) {
            RunArtifacts shard_dir(opts.artifacts_dir + "/shard" +
                                   std::to_string(s));
            if (shard_dir.ok()) {
              shard_dir.WriteTrace(*results[si].tracer);
            }
          }
        }
      }
    }
  }
  return rep;
}

}  // namespace

VolumeManager::VolumeManager(const FleetConfig& cfg) : cfg_(cfg) {
  assert(cfg_.num_shards > 0);
  assert(SchemeRegistry::Find(cfg_.scheme) != nullptr &&
         "fleet: unknown scheme name");
  // Fix the array config up for the scheme (parity-block count, mirror
  // disk-count rounding) regardless of what the caller left in it.
  cfg_.array = SchemeRegistry::Normalize(cfg_.scheme, cfg_.array);
  shard_capacity_ = SchemeRegistry::DataCapacityBytes(cfg_.scheme, cfg_.array);

  const int64_t volume = ShardMap::SizeVolume(
      cfg_.num_shards, shard_capacity_, cfg_.chunk_bytes, cfg_.fill_fraction);
  if (cfg_.sharding == ShardingKind::kRange) {
    map_ = ShardMap::Range(cfg_.num_shards, cfg_.chunk_bytes, volume);
  } else {
    map_ = ShardMap::ConsistentHash(cfg_.num_shards, cfg_.chunk_bytes, volume,
                                    shard_capacity_, cfg_.vnodes_per_shard,
                                    cfg_.seed);
  }
}

void VolumeManager::AddOp(MgmtOp::Kind kind, SimTime at, int32_t shard,
                          int32_t disk) {
  assert(at >= 0);
  if (shard < 0) {  // -1 targets every shard (info broadcast).
    for (int32_t s = 0; s < cfg_.num_shards; ++s) {
      ops_.push_back(MgmtOp{kind, at, s, disk});
    }
    return;
  }
  assert(shard < cfg_.num_shards);
  ops_.push_back(MgmtOp{kind, at, shard, disk});
}

void VolumeManager::DiskFail(SimTime at, int32_t shard, int32_t disk) {
  AddOp(MgmtOp::Kind::kDiskFail, at, shard, disk);
}
void VolumeManager::DiskRepaired(SimTime at, int32_t shard, int32_t disk) {
  AddOp(MgmtOp::Kind::kDiskRepaired, at, shard, disk);
}
void VolumeManager::InfoAt(SimTime at, int32_t shard) {
  AddOp(MgmtOp::Kind::kInfo, at, shard, -1);
}
void VolumeManager::Destroy(SimTime at, int32_t shard) {
  AddOp(MgmtOp::Kind::kDestroy, at, shard, -1);
}
void VolumeManager::SpareAdd(SimTime at, int32_t shard) {
  AddOp(MgmtOp::Kind::kSpareAdd, at, shard, -1);
}

FleetReport VolumeManager::Run(const FleetTrace& trace, const RunOptions& opts) {
  const int32_t num_shards = cfg_.num_shards;

  // Route every logical record into per-shard traces, remembering which
  // logical request each piece belongs to for the completion join.
  std::vector<Trace> shard_traces(static_cast<size_t>(num_shards));
  std::vector<std::vector<uint32_t>> piece_owner(
      static_cast<size_t>(num_shards));
  std::vector<uint8_t> rec_flags(trace.Size(), 0);
  std::vector<ShardPiece> scratch;
  for (size_t r = 0; r < trace.Size(); ++r) {
    const FleetRecord& rec = trace.records[r];
    map_.SplitRange(rec.offset, rec.size, &scratch);
    for (const ShardPiece& p : scratch) {
      const auto s = static_cast<size_t>(p.shard);
      shard_traces[s].records.push_back(
          TraceRecord{rec.time, p.local_offset, p.length, rec.is_write});
      piece_owner[s].push_back(static_cast<uint32_t>(r));
    }
    rec_flags[r] = static_cast<uint8_t>((rec.is_write ? kRecWrite : 0) |
                                        (scratch.size() > 1 ? kRecSplit : 0));
  }
  for (int32_t s = 0; s < num_shards; ++s) {
    shard_traces[static_cast<size_t>(s)].name =
        trace.name + "/shard" + std::to_string(s);
  }

  std::vector<std::vector<MgmtOp>> shard_ops(static_cast<size_t>(num_shards));
  for (const MgmtOp& op : ops_) {
    shard_ops[static_cast<size_t>(op.shard)].push_back(op);
  }

  const bool trace_shards = opts.trace_shards && !opts.artifacts_dir.empty();
  std::vector<ShardResult> results = ParallelSweep(
      num_shards,
      [&](int64_t s) {
        const auto i = static_cast<size_t>(s);
        return RunShard(cfg_, static_cast<int32_t>(s), shard_traces[i],
                        shard_ops[i], trace_shards);
      },
      opts.threads);

  return MergeFleet(cfg_, map_, trace.name, trace.num_tenants,
                    std::move(results), piece_owner, rec_flags, opts,
                    trace_shards);
}

FleetReport VolumeManager::RunStreamed(const std::string& path,
                                       const StreamOptions& sopts,
                                       const RunOptions& opts,
                                       TraceStatus* status) {
  const int32_t num_shards = cfg_.num_shards;
  TraceChunkReader reader(path, sopts);

  std::vector<std::vector<MgmtOp>> shard_ops(static_cast<size_t>(num_shards));
  for (const MgmtOp& op : ops_) {
    shard_ops[static_cast<size_t>(op.shard)].push_back(op);
  }

  const bool trace_shards = opts.trace_shards && !opts.artifacts_dir.empty();
  std::vector<std::unique_ptr<ShardCell>> cells;
  cells.reserve(static_cast<size_t>(num_shards));
  for (int32_t s = 0; s < num_shards; ++s) {
    cells.push_back(std::make_unique<ShardCell>(
        cfg_, s, shard_ops[static_cast<size_t>(s)], trace_shards));
  }

  // Chunk loop: route this chunk's records into reused per-shard buffers,
  // then feed-and-advance every shard in parallel (a per-chunk barrier via
  // the same deterministic sweep Run uses; shards never share state, so the
  // result is bit-identical for any thread count).
  std::vector<std::vector<TraceRecord>> shard_chunk(
      static_cast<size_t>(num_shards));
  std::vector<std::vector<uint32_t>> piece_owner(
      static_cast<size_t>(num_shards));
  std::vector<uint8_t> rec_flags;  // Join state: one byte per logical record.
  std::vector<ShardPiece> scratch;
  while (reader.Next()) {
    for (auto& chunk : shard_chunk) {
      chunk.clear();
    }
    for (const TraceRecord& rec : reader.chunk().records) {
      const auto r = static_cast<uint32_t>(rec_flags.size());
      map_.SplitRange(rec.offset, rec.size, &scratch);
      for (const ShardPiece& p : scratch) {
        const auto s = static_cast<size_t>(p.shard);
        shard_chunk[s].push_back(
            TraceRecord{rec.time, p.local_offset, p.length, rec.is_write});
        piece_owner[s].push_back(r);
      }
      rec_flags.push_back(
          static_cast<uint8_t>((rec.is_write ? kRecWrite : 0) |
                               (scratch.size() > 1 ? kRecSplit : 0)));
    }
    internal::RunSweep(num_shards, opts.threads, [&](int64_t s) {
      const auto i = static_cast<size_t>(s);
      cells[i]->Feed(shard_chunk[i].data(), shard_chunk[i].size());
      cells[i]->Advance();
    });
  }
  if (status != nullptr) {
    *status = reader.status();
  }

  internal::RunSweep(num_shards, opts.threads,
                     [&](int64_t s) { cells[static_cast<size_t>(s)]->Finish(); });

  std::vector<ShardResult> results;
  results.reserve(cells.size());
  for (auto& cell : cells) {
    results.push_back(std::move(cell->result));
  }
  return MergeFleet(cfg_, map_, reader.name(), reader.tenants(),
                    std::move(results), piece_owner, rec_flags, opts,
                    trace_shards);
}

std::string FleetReportToJson(const FleetReport& rep) {
  JsonWriter w;
  w.BeginObject();
  w.Key("workload").Value(rep.workload);
  w.Key("scheme").Value(rep.scheme);
  w.Key("sharding").Value(rep.sharding);
  w.Key("num_shards").Value(rep.num_shards);
  w.Key("num_tenants").Value(rep.num_tenants);
  w.Key("volume_bytes").Value(rep.volume_bytes);
  w.Key("requests").Value(rep.requests);
  w.Key("reads").Value(rep.reads);
  w.Key("writes").Value(rep.writes);
  w.Key("dropped").Value(rep.dropped);
  w.Key("split_requests").Value(rep.split_requests);
  w.Key("mean_ms").Value(rep.mean_ms);
  w.Key("p50_ms").Value(rep.p50_ms);
  w.Key("p90_ms").Value(rep.p90_ms);
  w.Key("p99_ms").Value(rep.p99_ms);
  w.Key("p999_ms").Value(rep.p999_ms);
  w.Key("max_ms").Value(rep.max_ms);
  w.Key("mean_read_ms").Value(rep.mean_read_ms);
  w.Key("mean_write_ms").Value(rep.mean_write_ms);
  w.Key("duration_s").Value(rep.duration_s);
  w.Key("imbalance_max_mean").Value(rep.imbalance_max_mean);
  w.Key("imbalance_cv").Value(rep.imbalance_cv);
  w.Key("byte_imbalance_max_mean").Value(rep.byte_imbalance_max_mean);
  w.Key("degraded_shard_s").Value(rep.degraded_shard_s);
  w.Key("loss_events").Value(rep.loss_events);
  w.Key("bytes_lost").Value(rep.bytes_lost);
  w.Key("shards_destroyed").Value(rep.shards_destroyed);
  w.Key("shards").BeginArray();
  for (const ShardReport& s : rep.shards) {
    w.BeginObject();
    w.Key("shard").Value(s.shard);
    w.Key("requests").Value(s.requests);
    w.Key("reads").Value(s.reads);
    w.Key("writes").Value(s.writes);
    w.Key("dropped").Value(s.dropped);
    w.Key("bytes").Value(s.bytes);
    w.Key("mean_ms").Value(s.mean_ms);
    w.Key("p99_ms").Value(s.p99_ms);
    w.Key("max_ms").Value(s.max_ms);
    w.Key("duration_s").Value(s.duration_s);
    w.Key("disk_utilization").Value(s.disk_utilization);
    w.Key("mean_parity_lag_bytes").Value(s.mean_parity_lag_bytes);
    w.Key("t_unprot_fraction").Value(s.t_unprot_fraction);
    w.Key("stripes_rebuilt").Value(s.stripes_rebuilt);
    w.Key("loss_events").Value(s.loss_events);
    w.Key("bytes_lost").Value(s.bytes_lost);
    w.Key("disk_failed").Value(s.disk_failed);
    w.Key("repaired").Value(s.repaired);
    w.Key("degraded_s").Value(s.degraded_s);
    w.Key("destroyed").Value(s.destroyed);
    w.Key("mgmt_unsupported_fail").Value(s.mgmt_unsupported_fail);
    w.Key("mgmt_unsupported_repair").Value(s.mgmt_unsupported_repair);
    w.Key("mgmt_unsupported_info").Value(s.mgmt_unsupported_info);
    w.Key("mgmt_unsupported_destroy").Value(s.mgmt_unsupported_destroy);
    w.Key("mgmt_unsupported_spare_add").Value(s.mgmt_unsupported_spare_add);
    w.Key("spares_added").Value(s.spares_added);
    w.Key("spares_used").Value(s.spares_used);
    w.Key("repairs_refused_no_spare").Value(s.repairs_refused_no_spare);
    w.Key("infos").BeginArray();
    for (const ShardInfo& info : s.infos) {
      w.BeginObject();
      w.Key("time_s").Value(ToSeconds(info.time));
      w.Key("destroyed").Value(info.destroyed);
      w.Key("failed_disk").Value(info.failed_disk);
      w.Key("recovering_disk").Value(info.recovering_disk);
      w.Key("accepted").Value(info.accepted);
      w.Key("completed").Value(info.completed);
      w.Key("dirty_bands").Value(info.dirty_bands);
      w.Key("loss_events").Value(info.loss_events);
      w.Key("bytes_lost").Value(info.bytes_lost);
      w.Key("spares_free").Value(info.spares_free);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

}  // namespace afraid
