#include "fleet/tenants.h"

#include <algorithm>
#include <cassert>

#include "sim/random.h"

namespace afraid {

std::vector<TenantClass> DefaultTenantClasses() {
  std::vector<TenantClass> classes;

  {
    // Interactive: light, very bursty, small mixed I/Os with long quiet
    // spells -- the hplajw shape scaled to a session.
    TenantClass c;
    c.name = "interactive";
    c.weight = 0.5;
    c.shape.write_fraction = 0.55;
    c.shape.mean_burst_requests = 6.0;
    c.shape.intra_burst_gap_ms = 25.0;
    c.shape.mean_idle_ms = 2000.0;
    c.shape.idle_pareto_alpha = 1.3;
    c.shape.max_idle_ms = 120000.0;
    c.shape.long_idle_prob = 0.05;
    c.shape.size_dist = {{4096, 3.0}, {8192, 2.0}, {16384, 1.0}};
    c.shape.seq_prob = 0.25;
    c.shape.hot_regions = 2;
    c.shape.hot_fraction = 0.7;
    c.shape.hot_region_frac = 0.05;
    classes.push_back(c);
  }
  {
    // OLTP-ish: steady small updates, short gaps, write-heavy, hot keys.
    TenantClass c;
    c.name = "oltp";
    c.weight = 0.25;
    c.shape.write_fraction = 0.75;
    c.shape.mean_burst_requests = 20.0;
    c.shape.intra_burst_gap_ms = 8.0;
    c.shape.mean_idle_ms = 300.0;
    c.shape.idle_pareto_alpha = 1.5;
    c.shape.max_idle_ms = 30000.0;
    c.shape.size_dist = {{2048, 2.0}, {4096, 3.0}, {8192, 1.0}};
    c.shape.seq_prob = 0.1;
    c.shape.hot_regions = 4;
    c.shape.hot_fraction = 0.8;
    c.shape.hot_region_frac = 0.02;
    classes.push_back(c);
  }
  {
    // Analytics: long sequential read scans, few writes.
    TenantClass c;
    c.name = "analytics";
    c.weight = 0.15;
    c.shape.write_fraction = 0.05;
    c.shape.mean_burst_requests = 40.0;
    c.shape.intra_burst_gap_ms = 5.0;
    c.shape.mean_idle_ms = 5000.0;
    c.shape.idle_pareto_alpha = 1.4;
    c.shape.max_idle_ms = 300000.0;
    c.shape.size_dist = {{32768, 3.0}, {65536, 1.0}};
    c.shape.seq_prob = 0.85;
    c.shape.hot_regions = 1;
    c.shape.hot_fraction = 0.3;
    c.shape.hot_region_frac = 0.2;
    classes.push_back(c);
  }
  {
    // Backup: occasional long sequential write streams.
    TenantClass c;
    c.name = "backup";
    c.weight = 0.1;
    c.shape.write_fraction = 0.95;
    c.shape.mean_burst_requests = 60.0;
    c.shape.intra_burst_gap_ms = 4.0;
    c.shape.mean_idle_ms = 20000.0;
    c.shape.idle_pareto_alpha = 1.6;
    c.shape.max_idle_ms = 600000.0;
    c.shape.size_dist = {{65536, 1.0}};
    c.shape.seq_prob = 0.9;
    c.shape.hot_regions = 0;
    c.shape.hot_fraction = 0.0;
    classes.push_back(c);
  }
  return classes;
}

FleetTrace GenerateFleetWorkload(const FleetWorkloadParams& params,
                                 int64_t volume_bytes) {
  assert(params.num_tenants > 0);
  assert(!params.classes.empty());
  assert(volume_bytes > 0);

  FleetTrace fleet;
  fleet.name = params.name;
  fleet.num_tenants = params.num_tenants;

  // Tenant slices tile the volume; the slice must hold the largest request
  // a class can issue.
  const int64_t align = 512;
  int64_t slice = volume_bytes / params.num_tenants;
  slice -= slice % align;
  int32_t max_size = 0;
  for (const TenantClass& c : params.classes) {
    for (const auto& [size, w] : c.shape.size_dist) {
      max_size = std::max(max_size, size);
    }
  }
  assert(slice >= max_size && "volume too small for this many tenants");

  const uint64_t per_tenant_cap =
      std::max<uint64_t>(1, params.max_requests / params.num_tenants);

  std::vector<double> weights;
  weights.reserve(params.classes.size());
  for (const TenantClass& c : params.classes) {
    weights.push_back(c.weight);
  }

  // Class assignment stream is independent of the request streams, so
  // adding tenants never perturbs existing ones.
  Rng class_rng(DeriveStreamSeed(params.seed, 0));
  fleet.records.reserve(params.max_requests);
  for (int32_t t = 0; t < params.num_tenants; ++t) {
    const TenantClass& cls = params.classes[class_rng.WeightedIndex(weights)];
    WorkloadParams shape = cls.shape;
    shape.name = cls.name;
    shape.seed = DeriveStreamSeed(params.seed, 1000u + static_cast<uint64_t>(t));
    shape.address_space_bytes = slice;
    shape.align_bytes = align;
    const Trace session =
        GenerateWorkload(shape, per_tenant_cap, params.max_duration);
    const int64_t base = slice * t;
    // Session start offset from its own stream, so it never perturbs the
    // request sequence (nor any other tenant's).
    Rng start_rng(DeriveStreamSeed(params.seed, 2'000'000u + static_cast<uint64_t>(t)));
    const SimTime start =
        params.start_jitter > 0
            ? static_cast<SimTime>(start_rng.UniformDouble(
                  0.0, static_cast<double>(params.start_jitter)))
            : 0;
    for (const TraceRecord& r : session.records) {
      fleet.records.push_back(
          FleetRecord{start + r.time, base + r.offset, r.size, r.is_write, t});
    }
  }

  // Merge into one arrival stream. The sort key includes the tenant id, and
  // per-tenant record order is already time-sorted, so the result is a pure
  // function of (params, volume_bytes).
  std::stable_sort(fleet.records.begin(), fleet.records.end(),
                   [](const FleetRecord& a, const FleetRecord& b) {
                     return a.time != b.time ? a.time < b.time
                                             : a.tenant < b.tenant;
                   });
  return fleet;
}

}  // namespace afraid
