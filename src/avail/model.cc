#include "avail/model.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace afraid {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

double MttdlRaidCatastrophicHours(const AvailabilityParams& p) {
  const double mttf = p.EffectiveDiskMttfHours();
  const double n = p.num_data_disks;
  return mttf * mttf / (n * (n + 1.0) * p.mttr_hours);
}

double MttdlAfraidUnprotectedHours(const AvailabilityParams& p, double t_unprot_fraction) {
  assert(t_unprot_fraction >= 0.0 && t_unprot_fraction <= 1.0);
  if (t_unprot_fraction <= 0.0) {
    return kInf;
  }
  const double mttf = p.EffectiveDiskMttfHours();
  return (1.0 / t_unprot_fraction) * mttf / (p.num_data_disks + 1.0);
}

double MttdlAfraidRaidHours(const AvailabilityParams& p, double t_unprot_fraction) {
  assert(t_unprot_fraction >= 0.0 && t_unprot_fraction <= 1.0);
  if (t_unprot_fraction >= 1.0) {
    return kInf;  // Never in RAID-like state; no RAID-mode loss events.
  }
  return MttdlRaidCatastrophicHours(p) / (1.0 - t_unprot_fraction);
}

double MttdlAfraidHours(const AvailabilityParams& p, double t_unprot_fraction) {
  return CombineMttdlHours({MttdlAfraidUnprotectedHours(p, t_unprot_fraction),
                            MttdlAfraidRaidHours(p, t_unprot_fraction)});
}

double MttdlRaid0Hours(const AvailabilityParams& p) {
  // RAID 0 loses data on *any* disk failure, predicted or not: prediction
  // doesn't help when there is no redundancy to migrate onto. Use raw MTTF.
  return p.mttf_disk_raw_hours / (p.num_data_disks + 1.0);
}

double MdlrRaidCatastrophicBph(const AvailabilityParams& p) {
  const double n = p.num_data_disks;
  return 2.0 * p.disk_bytes * (n / (n + 1.0)) / MttdlRaidCatastrophicHours(p);
}

double MdlrUnprotectedBph(const AvailabilityParams& p, double mean_parity_lag_bytes) {
  assert(mean_parity_lag_bytes >= 0.0);
  const double n = p.num_data_disks;
  return (mean_parity_lag_bytes / n) * (n + 1.0) / p.EffectiveDiskMttfHours();
}

double MdlrAfraidBph(const AvailabilityParams& p, double t_unprot_fraction,
                     double mean_parity_lag_bytes) {
  (void)t_unprot_fraction;  // Folded into mean_parity_lag (zero when protected).
  return MdlrRaidCatastrophicBph(p) + MdlrUnprotectedBph(p, mean_parity_lag_bytes);
}

double MdlrRaid0Bph(const AvailabilityParams& p) {
  // Expected loss per event: one full disk of data; in RAID 0 every disk
  // holds data (no parity discount).
  return p.disk_bytes / MttdlRaid0Hours(p);
}

double MdlrSupportBph(const AvailabilityParams& p) {
  return p.ArrayDataBytes() / p.mttdl_support_hours;
}

double MdlrNvramBph(double mttf_hours, double vulnerable_bytes) {
  assert(mttf_hours > 0.0);
  return vulnerable_bytes / mttf_hours;
}

double MttdlPowerHours(double mttf_power_hours, double write_duty_cycle) {
  assert(write_duty_cycle > 0.0 && write_duty_cycle <= 1.0);
  return mttf_power_hours / write_duty_cycle;
}

double CombineMttdlHours(const std::vector<double>& mttdls_hours) {
  double rate = 0.0;
  for (double m : mttdls_hours) {
    assert(m > 0.0);
    if (m != kInf) {
      rate += 1.0 / m;
    }
  }
  return rate == 0.0 ? kInf : 1.0 / rate;
}

double LossProbability(double mttdl_hours, double lifetime_hours) {
  assert(mttdl_hours > 0.0 && lifetime_hours >= 0.0);
  return 1.0 - std::exp(-lifetime_hours / mttdl_hours);
}

AvailabilityReport MakeAvailabilityReport(const AvailabilityParams& p,
                                          RedundancyScheme scheme,
                                          double t_unprot_fraction,
                                          double mean_parity_lag_bytes) {
  AvailabilityReport r;
  r.scheme = scheme;
  r.t_unprot_fraction = t_unprot_fraction;
  r.mean_parity_lag_bytes = mean_parity_lag_bytes;
  r.mttdl_disk_hours = MttdlDiskHoursFor(p, scheme, t_unprot_fraction);
  r.mdlr_disk_bph =
      MdlrDiskBphFor(p, scheme, t_unprot_fraction, mean_parity_lag_bytes);
  r.mttdl_overall_hours =
      CombineMttdlHours({r.mttdl_disk_hours, p.mttdl_support_hours});
  r.mdlr_overall_bph = r.mdlr_disk_bph + MdlrSupportBph(p);
  return r;
}

double MttdlDiskHoursFor(const AvailabilityParams& p, RedundancyScheme scheme,
                         double t_unprot_fraction) {
  switch (scheme) {
    case RedundancyScheme::kRaid0:
      return MttdlRaid0Hours(p);
    case RedundancyScheme::kRaid5:
      return MttdlRaidCatastrophicHours(p);
    case RedundancyScheme::kAfraid:
      return MttdlAfraidHours(p, t_unprot_fraction);
  }
  return kInf;
}

double MdlrDiskBphFor(const AvailabilityParams& p, RedundancyScheme scheme,
                      double t_unprot_fraction, double mean_parity_lag_bytes) {
  switch (scheme) {
    case RedundancyScheme::kRaid0:
      return MdlrRaid0Bph(p);
    case RedundancyScheme::kRaid5:
      return MdlrRaidCatastrophicBph(p);
    case RedundancyScheme::kAfraid:
      return MdlrAfraidBph(p, t_unprot_fraction, mean_parity_lag_bytes);
  }
  return 0.0;
}

double MeasuredOverPredicted(double measured, double predicted) {
  if (measured == kInf && predicted == kInf) {
    return 1.0;
  }
  if (predicted == kInf) {
    return 0.0;
  }
  assert(predicted > 0.0);
  return measured / predicted;
}

std::string SchemeName(RedundancyScheme scheme) {
  switch (scheme) {
    case RedundancyScheme::kRaid0:
      return "RAID 0";
    case RedundancyScheme::kRaid5:
      return "RAID 5";
    case RedundancyScheme::kAfraid:
      return "AFRAID";
  }
  return "unknown";
}

}  // namespace afraid
