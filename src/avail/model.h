// Analytic availability models from Section 3 of the AFRAID paper.
//
// Two complementary metrics:
//   MTTDL -- mean time to (first) data loss, in hours. Defines a *rate* of
//            loss events, not a lifetime expectation (the paper is explicit
//            about this).
//   MDLR  -- mean data loss rate, in bytes/hour: (amount lost per event) x
//            (event rate). Unifies catastrophic dual-disk losses, small
//            unprotected-stripe losses, support-hardware losses and NVRAM
//            losses on one scale.
//
// Conventions: an array has N+1 disks (N data + 1 parity worth of space);
// MTTF/MTTDL values are in hours; data sizes in bytes.

#ifndef AFRAID_AVAIL_MODEL_H_
#define AFRAID_AVAIL_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace afraid {

// Values of Table 1 (defaults) parameterising the equations.
struct AvailabilityParams {
  double mttf_disk_raw_hours = 1e6;    // Published per-disk MTTF.
  double coverage = 0.5;               // C: fraction of failures predicted in advance.
  double mttdl_support_hours = 2e6;    // Aggregated non-disk components (Section 3.3).
  double mttr_hours = 48.0;            // Repair/replace time after a disk failure.
  double stripe_unit_bytes = 8192.0;   // S.
  double disk_bytes = 2147483648.0;    // Vdisk = 2 GB.
  int32_t num_data_disks = 4;          // N: array has N+1 disks (5 by default).

  // MTTF of *unexpected* disk failures: predicted failures (fraction C) are
  // repaired before they bite, so only (1 - C) of raw failures count.
  double EffectiveDiskMttfHours() const {
    return mttf_disk_raw_hours / (1.0 - coverage);
  }
  int32_t TotalDisks() const { return num_data_disks + 1; }
  double ArrayDataBytes() const { return disk_bytes * num_data_disks; }
};

// --- Disk-related MTTDL -----------------------------------------------------

// Eq. (1): catastrophic dual-disk failure of a RAID 5.
//   MTTDL = MTTFdisk^2 / (N (N+1) MTTR)
double MttdlRaidCatastrophicHours(const AvailabilityParams& p);

// Eq. (2a): AFRAID single-disk failure while some data is unprotected.
// `t_unprot_fraction` = Tunprot/Ttotal, measured by simulation. Returns
// +infinity when the fraction is zero.
double MttdlAfraidUnprotectedHours(const AvailabilityParams& p, double t_unprot_fraction);

// Eq. (2b): the RAID-like contribution during the protected fraction.
double MttdlAfraidRaidHours(const AvailabilityParams& p, double t_unprot_fraction);

// Eq. (2c): harmonic combination of (2a) and (2b).
double MttdlAfraidHours(const AvailabilityParams& p, double t_unprot_fraction);

// RAID 0 baseline: any single disk failure loses data.
//   MTTDL = MTTFdisk / (N+1), with all N+1 disks holding data.
double MttdlRaid0Hours(const AvailabilityParams& p);

// --- Mean data loss rates ---------------------------------------------------

// Eq. (3): catastrophic loss rate of a RAID 5 (two disks' worth of data,
// less the parity fraction), bytes/hour.
double MdlrRaidCatastrophicBph(const AvailabilityParams& p);

// Eq. (4): loss rate from unprotected stripes under single-disk failures.
// `mean_parity_lag_bytes` is the simulation-measured time-average amount of
// unredundant non-parity data.
double MdlrUnprotectedBph(const AvailabilityParams& p, double mean_parity_lag_bytes);

// Eq. (5): total disk-related AFRAID MDLR.
double MdlrAfraidBph(const AvailabilityParams& p, double t_unprot_fraction,
                     double mean_parity_lag_bytes);

// RAID 0: a single disk failure loses one whole disk of data.
double MdlrRaid0Bph(const AvailabilityParams& p);

// --- Support components, NVRAM, power (Sections 3.3-3.5) --------------------

// Support-hardware loss rate: a support MTTDL event loses the whole array.
double MdlrSupportBph(const AvailabilityParams& p);

// Loss rate of a single-copy NVRAM holding `vulnerable_bytes` (Section 3.4;
// e.g. PrestoServe: 15k hours, 1 MB -> ~67 bytes/hour).
double MdlrNvramBph(double mttf_hours, double vulnerable_bytes);

// MTTDL from external power failures: a power failure only causes loss if a
// write is outstanding (Section 3.5), so MTTF_power / write_duty_cycle.
double MttdlPowerHours(double mttf_power_hours, double write_duty_cycle);

// --- Combination helpers ----------------------------------------------------

// Failure processes in parallel: rates add, so MTTDLs combine harmonically.
double CombineMttdlHours(const std::vector<double>& mttdls_hours);

// Probability of at least one data-loss event within `lifetime_hours`
// (exponential model): 1 - exp(-lifetime/MTTDL).
double LossProbability(double mttdl_hours, double lifetime_hours);

// --- Whole-configuration report ----------------------------------------------

enum class RedundancyScheme { kRaid0, kRaid5, kAfraid };

// Everything Tables 3 and 4 report for one (scheme, workload) cell.
struct AvailabilityReport {
  RedundancyScheme scheme = RedundancyScheme::kAfraid;
  // Inputs (from simulation; zero for RAID 5, irrelevant for RAID 0).
  double t_unprot_fraction = 0.0;
  double mean_parity_lag_bytes = 0.0;
  // Disk-related results.
  double mttdl_disk_hours = 0.0;
  double mdlr_disk_bph = 0.0;
  // Overall results including support components.
  double mttdl_overall_hours = 0.0;
  double mdlr_overall_bph = 0.0;
};

AvailabilityReport MakeAvailabilityReport(const AvailabilityParams& p,
                                          RedundancyScheme scheme,
                                          double t_unprot_fraction,
                                          double mean_parity_lag_bytes);

std::string SchemeName(RedundancyScheme scheme);

// --- Predicted-vs-measured comparison helpers --------------------------------
//
// Scheme-dispatched forms of the disk-related predictions, so an empirical
// estimator (e.g. the src/faultsim/ Monte-Carlo campaign) can fetch the
// matching analytic number for any scheme without re-implementing the switch
// in MakeAvailabilityReport.

double MttdlDiskHoursFor(const AvailabilityParams& p, RedundancyScheme scheme,
                         double t_unprot_fraction);

double MdlrDiskBphFor(const AvailabilityParams& p, RedundancyScheme scheme,
                      double t_unprot_fraction, double mean_parity_lag_bytes);

// Relative error of a measurement against a prediction, as measured/predicted.
// Infinite prediction with finite measurement (or vice versa) yields +-inf;
// both infinite yields 1 (perfect agreement at "never").
double MeasuredOverPredicted(double measured, double predicted);

}  // namespace afraid

#endif  // AFRAID_AVAIL_MODEL_H_
