// Deterministic parallel fan-out for independent experiment cells.
//
// Every table/figure harness in bench/ evaluates a grid of (workload x
// policy) cells, and each cell -- an Experiment builder invocation --
// is a pure function of its inputs: it owns its Simulator, controller and
// RNG streams, so cells share nothing. ParallelSweep spreads the cells over
// a std::thread pool and collects results by cell index, which makes the
// output bit-identical for any thread count: which worker computes a cell
// can never change what the cell computes, only where. This generalises the
// faultsim campaign runner's pattern (src/faultsim/runner.h) to the whole
// bench suite.
//
// Cells that need their own random stream derive it with SweepCellSeed
// (SplitMix64 stream derivation, as the faultsim runner uses per lifetime)
// rather than sharing a mutated RNG, keeping the per-cell streams a pure
// function of (base seed, cell index).

#ifndef AFRAID_CORE_SWEEP_H_
#define AFRAID_CORE_SWEEP_H_

#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "sim/random.h"

namespace afraid {

// Thread count used when the caller does not pin one: the AFRAID_BENCH_THREADS
// environment variable if set to >= 1, else the hardware concurrency (min 1).
int32_t SweepThreads();

// Deterministic per-cell seed: a pure function of (base_seed, cell), so the
// streams are identical no matter how cells are scheduled across threads.
inline uint64_t SweepCellSeed(uint64_t base_seed, int64_t cell) {
  return DeriveStreamSeed(base_seed, static_cast<uint64_t>(cell));
}

namespace internal {
// Runs run_cell(0..cells-1) on a pool of `threads` workers (<= 0 means
// SweepThreads(); the pool never exceeds the cell count).
void RunSweep(int64_t cells, int32_t threads,
              const std::function<void(int64_t)>& run_cell);
}  // namespace internal

// Evaluates fn(i) for every cell index i in [0, cells) and returns the
// results ordered by index. `fn` must be safe to invoke concurrently from
// multiple threads (pure cells are; see the header comment).
template <typename Fn>
auto ParallelSweep(int64_t cells, Fn&& fn, int32_t threads = 0)
    -> std::vector<std::invoke_result_t<Fn&, int64_t>> {
  using Result = std::invoke_result_t<Fn&, int64_t>;
  std::vector<Result> results(static_cast<size_t>(cells < 0 ? 0 : cells));
  // Each worker writes only its own cell's slot; distinct vector elements,
  // so no synchronisation beyond the work counter and the joins is needed.
  internal::RunSweep(cells, threads, [&](int64_t i) {
    results[static_cast<size_t>(i)] = fn(i);
  });
  return results;
}

}  // namespace afraid

#endif  // AFRAID_CORE_SWEEP_H_
