#include "core/raid6_controller.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>

namespace afraid {
namespace {

struct Join {
  int32_t remaining = 0;
  std::function<void()> done;
  static std::shared_ptr<Join> Make(int32_t n, std::function<void()> done) {
    auto j = std::make_shared<Join>();
    j->remaining = n;
    j->done = std::move(done);
    return j;
  }
  void Dec() {
    if (--remaining == 0) {
      done();
    }
  }
};

}  // namespace

std::string Raid6ModeName(Raid6Mode mode) {
  switch (mode) {
    case Raid6Mode::kSynchronous:
      return "RAID6";
    case Raid6Mode::kDeferQ:
      return "RAID6-deferQ";
    case Raid6Mode::kDeferBoth:
      return "RAID6-AFRAID";
  }
  return "unknown";
}

Raid6Controller::Raid6Controller(Simulator* sim, const ArrayConfig& config,
                                 Raid6Mode mode)
    : sim_(sim),
      cfg_(config),
      mode_(mode),
      layout_(config.num_disks, config.stripe_unit_bytes,
              DiskGeometry(config.disk_spec.zones, config.disk_spec.heads,
                           config.disk_spec.sector_bytes)
                  .CapacityBytes(),
              /*parity_blocks=*/2),
      p_stale_(layout_.num_stripes()),
      q_stale_(layout_.num_stripes()),
      q_only_stale_(sim->Now()),
      both_stale_(sim->Now()) {
  assert(cfg_.num_disks >= 4);
  for (int32_t d = 0; d < cfg_.num_disks; ++d) {
    disks_.push_back(std::make_unique<DiskModel>(sim_, cfg_.disk_spec, d));
  }
  if (cfg_.track_content) {
    content_ = std::make_unique<ContentModel>(
        layout_.data_blocks_per_stripe(), /*parity_blocks=*/2,
        static_cast<int32_t>(cfg_.stripe_unit_bytes / cfg_.disk_spec.sector_bytes));
  }
  idle_detector_ = std::make_unique<IdleDetector>(sim_, cfg_.idle_delay,
                                                  [this] { MaybeStartRebuild(); });
}

Raid6Controller::~Raid6Controller() = default;

uint64_t Raid6Controller::QOfData(const ContentModel& content, int64_t stripe,
                                  int32_t data_blocks, int32_t sector) {
  uint64_t q = 0;
  for (int32_t j = 0; j < data_blocks; ++j) {
    q ^= Gf256::MulWord(content.GetData(stripe, j, sector), Gf256::Pow2(j));
  }
  return q;
}

bool Raid6Controller::StripeFullyConsistent(int64_t stripe) const {
  assert(content_ != nullptr);
  const int32_t n = layout_.data_blocks_per_stripe();
  for (int32_t s = 0; s < content_->sectors_per_unit(); ++s) {
    if (content_->GetParity(stripe, s, 0) != content_->XorOfData(stripe, s)) {
      return false;
    }
    if (content_->GetParity(stripe, s, 1) != QOfData(*content_, stripe, n, s)) {
      return false;
    }
  }
  return true;
}

void Raid6Controller::UpdateExposure() {
  const double stripe_bytes =
      static_cast<double>(layout_.data_blocks_per_stripe()) *
      static_cast<double>(layout_.stripe_unit());
  const double both = static_cast<double>(p_stale_.DirtyCount()) * stripe_bytes;
  const double q_only =
      static_cast<double>(q_stale_.DirtyCount() - p_stale_.DirtyCount()) *
      stripe_bytes;
  both_stale_.Set(sim_->Now(), both);
  q_only_stale_.Set(sim_->Now(), q_only);
}

void Raid6Controller::MarkStale(int64_t stripe, bool p, bool q) {
  if (p) {
    p_stale_.Mark(stripe);
  }
  if (q) {
    q_stale_.Mark(stripe);
  }
  UpdateExposure();
}

void Raid6Controller::ClearStale(int64_t stripe) {
  p_stale_.Clear(stripe);
  q_stale_.Clear(stripe);
  UpdateExposure();
}

void Raid6Controller::IssueDiskOp(int32_t disk, int64_t byte_offset, int64_t length,
                                  bool is_write, std::function<void(bool)> done) {
  const int32_t sector = cfg_.disk_spec.sector_bytes;
  assert(byte_offset % sector == 0 && length > 0 && length % sector == 0);
  ++disk_ops_;
  DiskOp op;
  op.lba = byte_offset / sector;
  op.sectors = static_cast<int32_t>(length / sector);
  op.is_write = is_write;
  disks_[static_cast<size_t>(disk)]->Submit(
      op, [done = std::move(done)](const DiskOpResult& r) { done(r.ok); });
}

void Raid6Controller::NoteClientStart() {
  if (outstanding_clients_++ == 0) {
    idle_detector_->NoteBusy();
  }
}

void Raid6Controller::NoteClientEnd() {
  assert(outstanding_clients_ > 0);
  if (--outstanding_clients_ == 0) {
    idle_detector_->NoteIdle();
  }
}

void Raid6Controller::Submit(const ClientRequest& request, RequestDone done) {
  assert(request.size > 0);
  assert(request.offset >= 0 &&
         request.offset + request.size <= layout_.data_capacity_bytes());
  NoteClientStart();
  auto wrapped = [this, done = std::move(done)] {
    done();
    NoteClientEnd();
  };
  if (request.is_write) {
    DoWrite(request, std::move(wrapped));
  } else {
    DoRead(request, std::move(wrapped));
  }
}

void Raid6Controller::DoRead(const ClientRequest& r, RequestDone done) {
  const auto segs = layout_.Split(r.offset, r.size);
  auto join = Join::Make(static_cast<int32_t>(segs.size()), std::move(done));
  for (const Segment& seg : segs) {
    const int32_t disk = layout_.DataDisk(seg.stripe, seg.block_in_stripe);
    IssueDiskOp(disk, seg.stripe * layout_.stripe_unit() + seg.offset_in_block,
                seg.length, /*is_write=*/false, [join](bool) { join->Dec(); });
  }
}

void Raid6Controller::DoWrite(const ClientRequest& r, RequestDone done) {
  const auto segs = layout_.Split(r.offset, r.size);
  std::map<int64_t, std::vector<Segment>> groups;
  for (const Segment& seg : segs) {
    groups[seg.stripe].push_back(seg);
  }
  auto join = Join::Make(static_cast<int32_t>(groups.size()), std::move(done));
  for (auto& [stripe, group] : groups) {
    WriteStripeGroup(r.id, stripe, group, [join] { join->Dec(); });
  }
}

void Raid6Controller::WriteStripeGroup(uint64_t request_id, int64_t stripe,
                                       const std::vector<Segment>& segs,
                                       std::function<void()> group_done) {
  // For clarity this controller serialises all work on a stripe (writes and
  // rebuilds alike take the stripe exclusively); cross-stripe parallelism is
  // untouched. The RAID 5-family controller models the finer shared locking.
  locks_.Acquire(stripe, LockMode::kExclusive, [this, request_id, stripe, segs,
                                                group_done = std::move(group_done)] {
    const int32_t sector = cfg_.disk_spec.sector_bytes;
    const int64_t unit = layout_.stripe_unit();

    // Parity deltas over the touched span (valid because of the exclusive
    // lock): dP = old ^ new; dQ = g^j * (old ^ new).
    int32_t span_lo = INT32_MAX;
    int32_t span_hi = 0;
    for (const Segment& seg : segs) {
      span_lo = std::min(span_lo, seg.offset_in_block);
      span_hi = std::max(span_hi, seg.offset_in_block + seg.length);
    }
    const int32_t first_sector = span_lo / sector;
    const int32_t span_sectors = (span_hi - span_lo) / sector;
    std::vector<uint64_t> dp(static_cast<size_t>(span_sectors), 0);
    std::vector<uint64_t> dq(static_cast<size_t>(span_sectors), 0);
    if (content_ != nullptr) {
      for (const Segment& seg : segs) {
        const int32_t first = seg.offset_in_block / sector;
        const int32_t count = seg.length / sector;
        const int64_t logical_first = seg.logical_offset / sector;
        for (int32_t i = 0; i < count; ++i) {
          const uint64_t old_v =
              content_->GetData(stripe, seg.block_in_stripe, first + i);
          const uint64_t new_v = ContentModel::MixTag(request_id, logical_first + i);
          const uint64_t delta = old_v ^ new_v;
          dp[static_cast<size_t>(first + i - first_sector)] ^= delta;
          dq[static_cast<size_t>(first + i - first_sector)] ^=
              Gf256::MulWord(delta, Gf256::Pow2(seg.block_in_stripe));
        }
      }
    }

    const bool update_p = mode_ != Raid6Mode::kDeferBoth;
    const bool update_q = mode_ == Raid6Mode::kSynchronous;

    auto finish = [this, stripe, group_done] {
      locks_.Release(stripe, LockMode::kExclusive);
      // Deferred parity work may now be pending.
      if (mode_ != Raid6Mode::kSynchronous && q_stale_.DirtyCount() > 0 &&
          drain_done_ != nullptr && !rebuilding_) {
        MaybeStartRebuild();
      }
      group_done();
    };

    auto write_phase = [this, request_id, stripe, segs, span_lo, span_hi,
                        first_sector, sector, unit, update_p, update_q,
                        dp = std::move(dp), dq = std::move(dq),
                        finish = std::move(finish)]() mutable {
      const int32_t writes = static_cast<int32_t>(segs.size()) +
                             (update_p ? 1 : 0) + (update_q ? 1 : 0);
      auto join = Join::Make(writes, std::move(finish));
      for (const Segment& seg : segs) {
        const int32_t disk = layout_.DataDisk(stripe, seg.block_in_stripe);
        IssueDiskOp(disk, stripe * unit + seg.offset_in_block, seg.length,
                    /*is_write=*/true, [this, request_id, seg, sector, join](bool ok) {
                      if (ok && content_ != nullptr) {
                        const int32_t first = seg.offset_in_block / sector;
                        const int32_t count = seg.length / sector;
                        const int64_t logical_first = seg.logical_offset / sector;
                        for (int32_t i = 0; i < count; ++i) {
                          content_->SetData(seg.stripe, seg.block_in_stripe, first + i,
                                            ContentModel::MixTag(request_id,
                                                                 logical_first + i));
                        }
                      }
                      join->Dec();
                    });
      }
      if (update_p) {
        IssueDiskOp(layout_.ParityDisk(stripe, 0), stripe * unit + span_lo,
                    span_hi - span_lo, /*is_write=*/true,
                    [this, stripe, first_sector, dp, join](bool ok) {
                      if (ok && content_ != nullptr) {
                        for (size_t i = 0; i < dp.size(); ++i) {
                          const auto s = first_sector + static_cast<int32_t>(i);
                          content_->SetParity(
                              stripe, s, content_->GetParity(stripe, s, 0) ^ dp[i], 0);
                        }
                      }
                      join->Dec();
                    });
      }
      if (update_q) {
        IssueDiskOp(layout_.ParityDisk(stripe, 1), stripe * unit + span_lo,
                    span_hi - span_lo, /*is_write=*/true,
                    [this, stripe, first_sector, dq, join](bool ok) {
                      if (ok && content_ != nullptr) {
                        for (size_t i = 0; i < dq.size(); ++i) {
                          const auto s = first_sector + static_cast<int32_t>(i);
                          content_->SetParity(
                              stripe, s, content_->GetParity(stripe, s, 1) ^ dq[i], 1);
                        }
                      }
                      join->Dec();
                    });
      }
    };

    // Staleness marking happens before data hits the disk.
    switch (mode_) {
      case Raid6Mode::kSynchronous:
        break;
      case Raid6Mode::kDeferQ:
        MarkStale(stripe, /*p=*/false, /*q=*/true);
        break;
      case Raid6Mode::kDeferBoth:
        MarkStale(stripe, /*p=*/true, /*q=*/true);
        break;
    }

    // Pre-read phase: old data for every written segment, plus old P/Q spans
    // when the corresponding parity is updated in place. A parity that is
    // already stale needs no pre-read (the rebuild recomputes from scratch).
    int32_t reads = 0;
    if (update_p || update_q) {
      reads += static_cast<int32_t>(segs.size());
    }
    if (update_p) {
      ++reads;
    }
    if (update_q) {
      ++reads;
    }
    if (reads == 0) {
      write_phase();
      return;
    }
    auto read_join = Join::Make(reads, std::move(write_phase));
    if (update_p || update_q) {
      for (const Segment& seg : segs) {
        const int32_t disk = layout_.DataDisk(stripe, seg.block_in_stripe);
        IssueDiskOp(disk, stripe * unit + seg.offset_in_block, seg.length,
                    /*is_write=*/false, [read_join](bool) { read_join->Dec(); });
      }
    }
    if (update_p) {
      IssueDiskOp(layout_.ParityDisk(stripe, 0), stripe * unit + span_lo,
                  span_hi - span_lo, /*is_write=*/false,
                  [read_join](bool) { read_join->Dec(); });
    }
    if (update_q) {
      IssueDiskOp(layout_.ParityDisk(stripe, 1), stripe * unit + span_lo,
                  span_hi - span_lo, /*is_write=*/false,
                  [read_join](bool) { read_join->Dec(); });
    }
  });
}

void Raid6Controller::MaybeStartRebuild() {
  if (rebuilding_ || q_stale_.DirtyCount() == 0) {
    if (!rebuilding_ && drain_done_ != nullptr && q_stale_.DirtyCount() == 0) {
      auto done = std::move(drain_done_);
      drain_done_ = nullptr;
      done();
    }
    return;
  }
  rebuilding_ = true;
  RebuildNext();
}

void Raid6Controller::RebuildNext() {
  const int64_t stripe = q_stale_.NextDirty(rebuild_cursor_);
  if (stripe < 0) {
    rebuilding_ = false;
    if (drain_done_ != nullptr) {
      auto done = std::move(drain_done_);
      drain_done_ = nullptr;
      done();
    }
    return;
  }
  RebuildStripe(stripe, [this, stripe] {
    rebuild_cursor_ = stripe + 1;
    ++stripes_rebuilt_;
    const bool keep_going = drain_done_ != nullptr || outstanding_clients_ == 0;
    if (keep_going && q_stale_.DirtyCount() > 0) {
      RebuildNext();
    } else {
      rebuilding_ = false;
      if (drain_done_ != nullptr && q_stale_.DirtyCount() == 0) {
        auto done = std::move(drain_done_);
        drain_done_ = nullptr;
        done();
      }
    }
  });
}

void Raid6Controller::RebuildStripe(int64_t stripe, std::function<void()> step_done) {
  locks_.Acquire(stripe, LockMode::kExclusive, [this, stripe,
                                                step_done = std::move(step_done)] {
    const int32_t n = layout_.data_blocks_per_stripe();
    const int64_t unit = layout_.stripe_unit();
    const bool p_needed = p_stale_.IsDirty(stripe);

    auto writes = [this, stripe, unit, n, p_needed,
                   step_done = std::move(step_done)]() mutable {
      auto finish = [this, stripe, step_done = std::move(step_done)] {
        ClearStale(stripe);
        locks_.Release(stripe, LockMode::kExclusive);
        step_done();
      };
      auto join = Join::Make(p_needed ? 2 : 1, std::move(finish));
      if (p_needed) {
        IssueDiskOp(layout_.ParityDisk(stripe, 0), stripe * unit, unit,
                    /*is_write=*/true, [this, stripe, join](bool ok) {
                      if (ok && content_ != nullptr) {
                        for (int32_t s = 0; s < content_->sectors_per_unit(); ++s) {
                          content_->SetParity(stripe, s, content_->XorOfData(stripe, s),
                                              0);
                        }
                      }
                      join->Dec();
                    });
      }
      IssueDiskOp(layout_.ParityDisk(stripe, 1), stripe * unit, unit,
                  /*is_write=*/true, [this, stripe, n, join](bool ok) {
                    if (ok && content_ != nullptr) {
                      for (int32_t s = 0; s < content_->sectors_per_unit(); ++s) {
                        content_->SetParity(stripe, s,
                                            QOfData(*content_, stripe, n, s), 1);
                      }
                    }
                    join->Dec();
                  });
    };

    auto read_join = Join::Make(n, std::move(writes));
    for (int32_t j = 0; j < n; ++j) {
      IssueDiskOp(layout_.DataDisk(stripe, j), stripe * unit, unit,
                  /*is_write=*/false, [read_join](bool) { read_join->Dec(); });
    }
  });
}

void Raid6Controller::RebuildAll(std::function<void()> done) {
  if (q_stale_.DirtyCount() == 0) {
    sim_->After(0, std::move(done));
    return;
  }
  drain_done_ = std::move(done);
  if (!rebuilding_) {
    rebuilding_ = true;
    RebuildNext();
  }
}

}  // namespace afraid
