#include "core/raid6_controller.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "array/decluster.h"

namespace afraid {

std::string Raid6ModeName(Raid6Mode mode) {
  switch (mode) {
    case Raid6Mode::kSynchronous:
      return "RAID6";
    case Raid6Mode::kDeferQ:
      return "RAID6-deferQ";
    case Raid6Mode::kDeferBoth:
      return "RAID6-AFRAID";
  }
  return "unknown";
}

Raid6Controller::Raid6Controller(Simulator* sim, const ArrayConfig& config,
                                 Raid6Mode mode)
    : sim_(sim),
      cfg_(config),
      mode_(mode),
      layout_(MakeLayout(config.layout, config.num_disks,
                         config.stripe_unit_bytes,
                         DiskGeometry(config.disk_spec.zones, config.disk_spec.heads,
                                      config.disk_spec.sector_bytes)
                             .CapacityBytes(),
                         /*parity_blocks=*/2, config.decluster_width)),
      p_stale_(layout_->num_stripes()),
      q_stale_(layout_->num_stripes()),
      q_only_stale_(sim->Now()),
      both_stale_(sim->Now()) {
  assert(cfg_.num_disks >= 4);
  for (int32_t d = 0; d < cfg_.num_disks; ++d) {
    disks_.push_back(std::make_unique<DiskModel>(sim_, cfg_.disk_spec, d));
  }
  if (cfg_.track_content) {
    content_ = std::make_unique<ContentModel>(
        layout_->data_blocks_per_stripe(), /*parity_blocks=*/2,
        static_cast<int32_t>(cfg_.stripe_unit_bytes / cfg_.disk_spec.sector_bytes));
  }
  idle_detector_ = std::make_unique<IdleDetector>(sim_, cfg_.idle_delay,
                                                  [this] { MaybeStartRebuild(); });
}

Raid6Controller::~Raid6Controller() = default;

uint64_t Raid6Controller::QOfData(const ContentModel& content, int64_t stripe,
                                  int32_t data_blocks, int32_t sector) {
  uint64_t q = 0;
  for (int32_t j = 0; j < data_blocks; ++j) {
    q ^= Gf256::MulWord(content.GetData(stripe, j, sector), Gf256::Pow2(j));
  }
  return q;
}

bool Raid6Controller::StripeFullyConsistent(int64_t stripe) const {
  assert(content_ != nullptr);
  const int32_t n = layout_->data_blocks_per_stripe();
  for (int32_t s = 0; s < content_->sectors_per_unit(); ++s) {
    if (content_->GetParity(stripe, s, 0) != content_->XorOfData(stripe, s)) {
      return false;
    }
    if (content_->GetParity(stripe, s, 1) != QOfData(*content_, stripe, n, s)) {
      return false;
    }
  }
  return true;
}

void Raid6Controller::UpdateExposure() {
  const double stripe_bytes =
      static_cast<double>(layout_->data_blocks_per_stripe()) *
      static_cast<double>(layout_->stripe_unit());
  const double both = static_cast<double>(p_stale_.DirtyCount()) * stripe_bytes;
  const double q_only =
      static_cast<double>(q_stale_.DirtyCount() - p_stale_.DirtyCount()) *
      stripe_bytes;
  both_stale_.Set(sim_->Now(), both);
  q_only_stale_.Set(sim_->Now(), q_only);
}

void Raid6Controller::MarkStale(int64_t stripe, bool p, bool q) {
  if (p) {
    p_stale_.Mark(stripe);
  }
  if (q) {
    q_stale_.Mark(stripe);
  }
  max_stale_stripes_ = std::max(max_stale_stripes_, q_stale_.DirtyCount());
  UpdateExposure();
}

void Raid6Controller::ClearStale(int64_t stripe) {
  p_stale_.Clear(stripe);
  q_stale_.Clear(stripe);
  UpdateExposure();
}

void Raid6Controller::IssueDiskOp(int32_t disk, int64_t byte_offset, int64_t length,
                                  bool is_write, DiskDone done) {
  const int32_t sector = cfg_.disk_spec.sector_bytes;
  assert(byte_offset % sector == 0 && length > 0 && length % sector == 0);
  ++disk_ops_;
  DiskOp op;
  op.lba = byte_offset / sector;
  op.sectors = static_cast<int32_t>(length / sector);
  op.is_write = is_write;
  disks_[static_cast<size_t>(disk)]->Submit(
      op, [done = std::move(done)](const DiskOpResult& r) mutable { done(r.ok); });
}

void Raid6Controller::NoteClientStart() {
  if (outstanding_clients_++ == 0) {
    idle_detector_->NoteBusy();
  }
}

void Raid6Controller::NoteClientEnd() {
  assert(outstanding_clients_ > 0);
  if (--outstanding_clients_ == 0) {
    idle_detector_->NoteIdle();
  }
}

void Raid6Controller::Submit(const ClientRequest& request, RequestDone done) {
  assert(request.size > 0);
  assert(request.offset >= 0 &&
         request.offset + request.size <= layout_->data_capacity_bytes());
  NoteClientStart();
  // The request join folds NoteClientEnd in after `done` (same order the old
  // wrapper ran them), sparing a second allocation-prone indirection.
  if (request.is_write) {
    DoWrite(request, std::move(done));
  } else {
    DoRead(request, std::move(done));
  }
}

void Raid6Controller::DoRead(const ClientRequest& r, RequestDone done) {
  // Planned requests carry their precompiled Split() (see array/plan.h).
  Span<Segment> segs{r.plan_segs, r.plan_seg_count};
  if (r.plan_segs == nullptr) {
    layout_->SplitInto(r.offset, r.size, &read_split_scratch_);
    segs = Span<Segment>{read_split_scratch_.data(),
                         static_cast<int32_t>(read_split_scratch_.size())};
  }
  JoinBlock* join = joins_.Make(
      segs.count,
      [this, done = std::move(done)](bool) mutable {
        done();
        NoteClientEnd();
      });
  for (const Segment& seg : segs) {
    const BlockLoc dl = layout_->DataLocation(seg.stripe, seg.block_in_stripe);
    if (DiskUnavailable(dl.disk, seg.stripe)) {
      DegradedReadSegment(seg, join);
      continue;
    }
    IssueDiskOp(dl.disk, dl.byte_offset + seg.offset_in_block,
                seg.length, /*is_write=*/false, [join](bool) { join->Dec(true); });
  }
}

void Raid6Controller::DegradedReadSegment(const Segment& seg, JoinBlock* parent) {
  locks_.Acquire(seg.stripe, LockMode::kExclusive, [this, seg, parent] {
    const int64_t stripe = seg.stripe;
    const BlockLoc target = layout_->DataLocation(stripe, seg.block_in_stripe);
    if (!DiskUnavailable(target.disk, stripe)) {
      // The reconstruction sweep passed this stripe while we waited on the
      // lock: the block is valid again, plain read.
      IssueDiskOp(target.disk, target.byte_offset + seg.offset_in_block, seg.length,
                  /*is_write=*/false, [this, stripe, parent](bool) {
                    locks_.Release(stripe, LockMode::kExclusive);
                    parent->Dec(true);
                  });
      return;
    }
    const int32_t n = layout_->data_blocks_per_stripe();
    const bool p_fresh = !p_stale_.IsDirty(stripe);
    const bool q_fresh = !q_stale_.IsDirty(stripe);
    // Reconstruct through P when it is live, through Q when only P is stale
    // (same I/O count either way). With both stale the bytes returned are not
    // what the client wrote; P is still read to model the attempt's traffic.
    const int32_t parity_which = (p_fresh || !q_fresh) ? 0 : 1;
    auto finish = [this, seg, stripe, p_fresh, q_fresh, parent](bool) {
      if (!p_fresh && !q_fresh) {
        RecordLoss(LossCause::kStaleParityDegradedRead, stripe, seg.length);
      }
      locks_.Release(stripe, LockMode::kExclusive);
      parent->Dec(true);
    };
    JoinBlock* join = joins_.Make(n, finish);  // n-1 data reads + parity.
    for (int32_t j = 0; j < n; ++j) {
      if (j == seg.block_in_stripe) {
        continue;
      }
      const BlockLoc dl = layout_->DataLocation(stripe, j);
      IssueDiskOp(dl.disk, dl.byte_offset + seg.offset_in_block, seg.length,
                  /*is_write=*/false, [join](bool) { join->Dec(true); });
    }
    const BlockLoc pl = layout_->ParityLocation(stripe, parity_which);
    IssueDiskOp(pl.disk, pl.byte_offset + seg.offset_in_block, seg.length,
                /*is_write=*/false, [join](bool) { join->Dec(true); });
  });
}

void Raid6Controller::DoWrite(const ClientRequest& r, RequestDone done) {
  // Split emits segments with nondecreasing stripe numbers, so grouping by
  // stripe is a contiguous-run scan -- same groups, same ascending dispatch
  // order as the ordered-map grouping this replaces. The segments stay alive
  // (spans point into them) until the request join fires: planned requests
  // use the run-lifetime RequestPlan storage, unplanned ones a pooled vector
  // owned by the join.
  std::vector<Segment>* pooled = nullptr;
  const Segment* base = r.plan_segs;
  auto count = static_cast<size_t>(r.plan_seg_count);
  if (base == nullptr) {
    pooled = seg_pool_.Acquire();
    layout_->SplitInto(r.offset, r.size, pooled);
    base = pooled->data();
    count = pooled->size();
  }
  int32_t n_groups = 0;
  for (size_t i = 0; i < count; ++i) {
    if (i == 0 || base[i].stripe != base[i - 1].stripe) {
      ++n_groups;
    }
  }
  JoinBlock* join =
      joins_.Make(n_groups, [this, done = std::move(done), pooled](bool) mutable {
        if (pooled != nullptr) {
          seg_pool_.Release(pooled);
        }
        done();
        NoteClientEnd();
      });
  const bool degraded = failed_disk_ >= 0 || recovering_disk_ >= 0;
  size_t i = 0;
  while (i < count) {
    size_t j = i + 1;
    while (j < count && base[j].stripe == base[i].stripe) {
      ++j;
    }
    const Span<Segment> group{base + i, static_cast<int32_t>(j - i)};
    if (degraded) {
      DegradedWriteStripe(r.id, base[i].stripe, group, join);
    } else {
      WriteStripeGroup(r.id, base[i].stripe, group, join);
    }
    i = j;
  }
}

void Raid6Controller::WriteStripeGroup(uint64_t request_id, int64_t stripe,
                                       Span<Segment> segs, JoinBlock* group_join) {
  if (mode_ == Raid6Mode::kSynchronous) {
    ++sync_mode_writes_;
  } else {
    ++deferred_mode_writes_;
  }
  // For clarity this controller serialises all work on a stripe (writes and
  // rebuilds alike take the stripe exclusively); cross-stripe parallelism is
  // untouched. The RAID 5-family controller models the finer shared locking.
  locks_.Acquire(stripe, LockMode::kExclusive, [this, request_id, stripe, segs,
                                                group_join] {
    const int32_t sector = cfg_.disk_spec.sector_bytes;
    const int64_t unit = layout_->stripe_unit();

    // Parity deltas over the touched span (valid because of the exclusive
    // lock): dP = old ^ new; dQ = g^j * (old ^ new). Pooled buffers,
    // released when the write phase's join fires.
    int32_t span_lo = INT32_MAX;
    int32_t span_hi = 0;
    for (const Segment& seg : segs) {
      span_lo = std::min(span_lo, seg.offset_in_block);
      span_hi = std::max(span_hi, seg.offset_in_block + seg.length);
    }
    const int32_t first_sector = span_lo / sector;
    const int32_t span_sectors = (span_hi - span_lo) / sector;
    std::vector<uint64_t>* dp = nullptr;
    std::vector<uint64_t>* dq = nullptr;
    if (content_ != nullptr) {
      dp = u64_pool_.Acquire();
      dq = u64_pool_.Acquire();
      dp->assign(static_cast<size_t>(span_sectors), 0);
      dq->assign(static_cast<size_t>(span_sectors), 0);
      for (const Segment& seg : segs) {
        const int32_t first = seg.offset_in_block / sector;
        const int32_t count = seg.length / sector;
        const int64_t logical_first = seg.logical_offset / sector;
        for (int32_t i = 0; i < count; ++i) {
          const uint64_t old_v =
              content_->GetData(stripe, seg.block_in_stripe, first + i);
          const uint64_t new_v = ContentModel::MixTag(request_id, logical_first + i);
          const uint64_t delta = old_v ^ new_v;
          (*dp)[static_cast<size_t>(first + i - first_sector)] ^= delta;
          (*dq)[static_cast<size_t>(first + i - first_sector)] ^=
              Gf256::MulWord(delta, Gf256::Pow2(seg.block_in_stripe));
        }
      }
    }

    const bool update_p = mode_ != Raid6Mode::kDeferBoth;
    const bool update_q = mode_ == Raid6Mode::kSynchronous;

    auto write_phase = [this, request_id, stripe, segs, span_lo, span_hi,
                        first_sector, sector, unit, update_p, update_q, dp, dq,
                        group_join](bool) {
      const int32_t writes =
          segs.count + (update_p ? 1 : 0) + (update_q ? 1 : 0);
      JoinBlock* join = joins_.Make(writes, [this, stripe, dp, dq,
                                             group_join](bool) {
        if (dp != nullptr) {
          u64_pool_.Release(dp);
          u64_pool_.Release(dq);
        }
        locks_.Release(stripe, LockMode::kExclusive);
        // Deferred parity work may now be pending.
        if (mode_ != Raid6Mode::kSynchronous && q_stale_.DirtyCount() > 0 &&
            drain_done_ != nullptr && !rebuilding_) {
          MaybeStartRebuild();
        }
        group_join->Dec(true);
      });
      for (const Segment& seg : segs) {
        const BlockLoc dl = layout_->DataLocation(stripe, seg.block_in_stripe);
        IssueDiskOp(dl.disk, dl.byte_offset + seg.offset_in_block, seg.length,
                    /*is_write=*/true, [this, request_id, seg, sector, join](bool ok) {
                      if (ok && content_ != nullptr) {
                        const int32_t first = seg.offset_in_block / sector;
                        const int32_t count = seg.length / sector;
                        const int64_t logical_first = seg.logical_offset / sector;
                        for (int32_t i = 0; i < count; ++i) {
                          content_->SetData(seg.stripe, seg.block_in_stripe, first + i,
                                            ContentModel::MixTag(request_id,
                                                                 logical_first + i));
                        }
                      }
                      join->Dec(true);
                    });
      }
      if (update_p) {
        const BlockLoc pl = layout_->ParityLocation(stripe, 0);
        IssueDiskOp(pl.disk, pl.byte_offset + span_lo,
                    span_hi - span_lo, /*is_write=*/true,
                    [this, stripe, first_sector, dp, join](bool ok) {
                      if (ok && content_ != nullptr) {
                        for (size_t i = 0; i < dp->size(); ++i) {
                          const auto s = first_sector + static_cast<int32_t>(i);
                          content_->SetParity(
                              stripe, s, content_->GetParity(stripe, s, 0) ^ (*dp)[i],
                              0);
                        }
                      }
                      join->Dec(true);
                    });
      }
      if (update_q) {
        const BlockLoc ql = layout_->ParityLocation(stripe, 1);
        IssueDiskOp(ql.disk, ql.byte_offset + span_lo,
                    span_hi - span_lo, /*is_write=*/true,
                    [this, stripe, first_sector, dq, join](bool ok) {
                      if (ok && content_ != nullptr) {
                        for (size_t i = 0; i < dq->size(); ++i) {
                          const auto s = first_sector + static_cast<int32_t>(i);
                          content_->SetParity(
                              stripe, s, content_->GetParity(stripe, s, 1) ^ (*dq)[i],
                              1);
                        }
                      }
                      join->Dec(true);
                    });
      }
    };

    // Staleness marking happens before data hits the disk.
    switch (mode_) {
      case Raid6Mode::kSynchronous:
        break;
      case Raid6Mode::kDeferQ:
        MarkStale(stripe, /*p=*/false, /*q=*/true);
        break;
      case Raid6Mode::kDeferBoth:
        MarkStale(stripe, /*p=*/true, /*q=*/true);
        break;
    }

    // Pre-read phase: old data for every written segment, plus old P/Q spans
    // when the corresponding parity is updated in place. A parity that is
    // already stale needs no pre-read (the rebuild recomputes from scratch).
    int32_t reads = 0;
    if (update_p || update_q) {
      reads += static_cast<int32_t>(segs.size());
    }
    if (update_p) {
      ++reads;
    }
    if (update_q) {
      ++reads;
    }
    if (reads == 0) {
      write_phase(true);
      return;
    }
    JoinBlock* read_join = joins_.Make(reads, write_phase);
    if (update_p || update_q) {
      for (const Segment& seg : segs) {
        const BlockLoc dl = layout_->DataLocation(stripe, seg.block_in_stripe);
        IssueDiskOp(dl.disk, dl.byte_offset + seg.offset_in_block, seg.length,
                    /*is_write=*/false, [read_join](bool) { read_join->Dec(true); });
      }
    }
    if (update_p) {
      const BlockLoc pl = layout_->ParityLocation(stripe, 0);
      IssueDiskOp(pl.disk, pl.byte_offset + span_lo,
                  span_hi - span_lo, /*is_write=*/false,
                  [read_join](bool) { read_join->Dec(true); });
    }
    if (update_q) {
      const BlockLoc ql = layout_->ParityLocation(stripe, 1);
      IssueDiskOp(ql.disk, ql.byte_offset + span_lo,
                  span_hi - span_lo, /*is_write=*/false,
                  [read_join](bool) { read_join->Dec(true); });
    }
  });
}

void Raid6Controller::MaybeStartRebuild() {
  // No background parity freshening while a disk is missing or the sweep is
  // repopulating a replacement: the stale stripes need the failure machinery's
  // reconstruct logic, not a delta rebuild against garbage blocks.
  if (failed_disk_ >= 0 || recovering_disk_ >= 0) {
    return;
  }
  if (rebuilding_ || q_stale_.DirtyCount() == 0) {
    if (!rebuilding_ && drain_done_ != nullptr && q_stale_.DirtyCount() == 0) {
      auto done = std::move(drain_done_);
      drain_done_ = nullptr;
      done();
    }
    return;
  }
  rebuilding_ = true;
  RebuildNext();
}

void Raid6Controller::RebuildNext() {
  const int64_t stripe = q_stale_.NextDirty(rebuild_cursor_);
  if (stripe < 0) {
    rebuilding_ = false;
    if (drain_done_ != nullptr) {
      auto done = std::move(drain_done_);
      drain_done_ = nullptr;
      done();
    }
    return;
  }
  JoinBlock* step_join = joins_.Make(1, [this, stripe](bool) {
    rebuild_cursor_ = stripe + 1;
    ++stripes_rebuilt_;
    const bool keep_going = drain_done_ != nullptr || outstanding_clients_ == 0;
    if (keep_going && q_stale_.DirtyCount() > 0) {
      RebuildNext();
    } else {
      rebuilding_ = false;
      if (drain_done_ != nullptr && q_stale_.DirtyCount() == 0) {
        auto done = std::move(drain_done_);
        drain_done_ = nullptr;
        done();
      }
    }
  });
  RebuildStripe(stripe, step_join);
}

void Raid6Controller::RebuildStripe(int64_t stripe, JoinBlock* step_join) {
  locks_.Acquire(stripe, LockMode::kExclusive, [this, stripe, step_join] {
    const int32_t n = layout_->data_blocks_per_stripe();
    const int64_t unit = layout_->stripe_unit();
    const bool p_needed = p_stale_.IsDirty(stripe);

    auto writes = [this, stripe, unit, n, p_needed, step_join](bool) {
      JoinBlock* join =
          joins_.Make(p_needed ? 2 : 1, [this, stripe, step_join](bool) {
            ClearStale(stripe);
            locks_.Release(stripe, LockMode::kExclusive);
            step_join->Dec(true);
          });
      if (p_needed) {
        const BlockLoc pl = layout_->ParityLocation(stripe, 0);
        IssueDiskOp(pl.disk, pl.byte_offset, unit,
                    /*is_write=*/true, [this, stripe, join](bool ok) {
                      if (ok && content_ != nullptr) {
                        const int32_t spu = content_->sectors_per_unit();
                        parity_scratch_.resize(static_cast<size_t>(spu));
                        content_->XorOfDataAll(stripe, parity_scratch_.data());
                        content_->SetParityRange(stripe, 0, spu,
                                                 parity_scratch_.data(), 0);
                      }
                      join->Dec(true);
                    });
      }
      const BlockLoc ql = layout_->ParityLocation(stripe, 1);
      IssueDiskOp(ql.disk, ql.byte_offset, unit,
                  /*is_write=*/true, [this, stripe, n, join](bool ok) {
                    if (ok && content_ != nullptr) {
                      for (int32_t s = 0; s < content_->sectors_per_unit(); ++s) {
                        content_->SetParity(stripe, s,
                                            QOfData(*content_, stripe, n, s), 1);
                      }
                    }
                    join->Dec(true);
                  });
    };

    JoinBlock* read_join = joins_.Make(n, writes);
    for (int32_t j = 0; j < n; ++j) {
      const BlockLoc dl = layout_->DataLocation(stripe, j);
      IssueDiskOp(dl.disk, dl.byte_offset, unit,
                  /*is_write=*/false, [read_join](bool) { read_join->Dec(true); });
    }
  });
}

void Raid6Controller::RebuildAll(std::function<void()> done) {
  if (q_stale_.DirtyCount() == 0) {
    sim_->After(0, std::move(done));
    return;
  }
  drain_done_ = std::move(done);
  if (!rebuilding_) {
    rebuilding_ = true;
    RebuildNext();
  }
}

// --- Failure machinery ------------------------------------------------------------

void Raid6Controller::DegradedWriteStripe(uint64_t request_id, int64_t stripe,
                                          Span<Segment> segs,
                                          JoinBlock* group_join) {
  // Degraded analogue of AFRAID's forced-RAID 5 mode: with a disk out,
  // deferring parity would leave the new data unprotected against the failure
  // already in progress, so the write becomes a synchronous reconstruct-write:
  // read the surviving untouched data blocks, write the data, and rewrite both
  // live parities from scratch.
  locks_.Acquire(stripe, LockMode::kExclusive, [this, request_id, stripe, segs,
                                                group_join] {
    const int32_t n = layout_->data_blocks_per_stripe();
    const int64_t unit = layout_->stripe_unit();
    const int32_t sector = cfg_.disk_spec.sector_bytes;
    const BlockLoc p_loc = layout_->ParityLocation(stripe, 0);
    const BlockLoc q_loc = layout_->ParityLocation(stripe, 1);
    const bool p_avail = !DiskUnavailable(p_loc.disk, stripe);
    const bool q_avail = !DiskUnavailable(q_loc.disk, stripe);

    assert(n <= 62);
    uint64_t written = 0;
    for (const Segment& seg : segs) {
      written |= 1ull << seg.block_in_stripe;
    }

    // If the unavailable disk holds a data block this group does not rewrite
    // and both parities were stale when the disk died, the recompute below
    // enshrines a value nobody can vouch for: that block's old bytes are lost
    // (Section 3.2's small-loss mode, RAID 6 flavour).
    if (p_stale_.IsDirty(stripe) && q_stale_.IsDirty(stripe)) {
      for (int32_t j = 0; j < n; ++j) {
        if ((written & (1ull << j)) != 0) {
          continue;
        }
        if (DiskUnavailable(layout_->DataDisk(stripe, j), stripe)) {
          RecordLoss(LossCause::kStaleParityReconstruction, stripe, unit);
        }
      }
    }

    // Logical state first (the exclusive lock spans the whole exchange, so
    // content may lead the timing ops): data tags, then fresh P and Q. A
    // parity on the unavailable disk stays stale-marked; the reconstruction
    // sweep rewrites it.
    if (content_ != nullptr) {
      for (const Segment& seg : segs) {
        const int32_t first = seg.offset_in_block / sector;
        const int32_t cnt = seg.length / sector;
        const int64_t logical_first = seg.logical_offset / sector;
        for (int32_t i = 0; i < cnt; ++i) {
          content_->SetData(stripe, seg.block_in_stripe, first + i,
                            ContentModel::MixTag(request_id, logical_first + i));
        }
      }
      const int32_t spu = content_->sectors_per_unit();
      if (p_avail) {
        parity_scratch_.resize(static_cast<size_t>(spu));
        content_->XorOfDataAll(stripe, parity_scratch_.data());
        content_->SetParityRange(stripe, 0, spu, parity_scratch_.data(), 0);
      }
      if (q_avail) {
        for (int32_t s = 0; s < spu; ++s) {
          content_->SetParity(stripe, s, QOfData(*content_, stripe, n, s), 1);
        }
      }
    }
    if (p_avail) {
      p_stale_.Clear(stripe);
    }
    // q_stale_ must stay a superset of p_stale_ (UpdateExposure's subtraction
    // relies on it), so Q only goes fresh once P is fresh too.
    if (q_avail && !p_stale_.IsDirty(stripe)) {
      q_stale_.Clear(stripe);
    }
    UpdateExposure();
    ++sync_mode_writes_;

    // Timing: read surviving untouched data blocks, then write data and the
    // live parities. Ops aimed at the unavailable disk produce no traffic;
    // their join slots resolve through a zero-delay event.
    int32_t reads = 0;
    for (int32_t j = 0; j < n; ++j) {
      if ((written & (1ull << j)) != 0 ||
          DiskUnavailable(layout_->DataDisk(stripe, j), stripe)) {
        continue;
      }
      ++reads;
    }
    const int32_t writes = segs.count + (p_avail ? 1 : 0) + (q_avail ? 1 : 0);
    auto write_phase = [this, stripe, segs, unit, writes, p_avail, q_avail,
                        p_loc, q_loc, group_join](bool) {
      JoinBlock* join = joins_.Make(writes, [this, stripe, group_join](bool) {
        locks_.Release(stripe, LockMode::kExclusive);
        group_join->Dec(true);
      });
      for (const Segment& seg : segs) {
        const BlockLoc dl = layout_->DataLocation(stripe, seg.block_in_stripe);
        if (DiskUnavailable(dl.disk, stripe)) {
          sim_->After(0, [join] { join->Dec(true); });
          continue;
        }
        IssueDiskOp(dl.disk, dl.byte_offset + seg.offset_in_block, seg.length,
                    /*is_write=*/true, [join](bool) { join->Dec(true); });
      }
      if (p_avail) {
        IssueDiskOp(p_loc.disk, p_loc.byte_offset, unit, /*is_write=*/true,
                    [join](bool) { join->Dec(true); });
      }
      if (q_avail) {
        IssueDiskOp(q_loc.disk, q_loc.byte_offset, unit, /*is_write=*/true,
                    [join](bool) { join->Dec(true); });
      }
    };
    if (reads == 0) {
      write_phase(true);
      return;
    }
    JoinBlock* read_join = joins_.Make(reads, std::move(write_phase));
    for (int32_t j = 0; j < n; ++j) {
      if ((written & (1ull << j)) != 0) {
        continue;
      }
      const BlockLoc dl = layout_->DataLocation(stripe, j);
      if (DiskUnavailable(dl.disk, stripe)) {
        continue;
      }
      IssueDiskOp(dl.disk, dl.byte_offset, unit, /*is_write=*/false,
                  [read_join](bool) { read_join->Dec(true); });
    }
  });
}

bool Raid6Controller::FailDisk(int32_t disk) {
  if (disk < 0 || disk >= cfg_.num_disks || failed_disk_ >= 0 ||
      recovering_disk_ >= 0) {
    return false;
  }
  failed_disk_ = disk;
  disks_[static_cast<size_t>(disk)]->Fail();
  return true;
}

bool Raid6Controller::ReplaceDisk(int32_t disk) {
  if (disk != failed_disk_ || disk < 0) {
    return false;
  }
  disks_[static_cast<size_t>(disk)]->Replace();
  failed_disk_ = -1;
  recovering_disk_ = disk;
  recovery_frontier_ = 0;
  // The replacement mechanism is blank; model its contents as zeroes.
  if (content_ != nullptr) {
    for (int64_t s : content_->TouchedStripes()) {
      for (int32_t j = 0; j < layout_->data_blocks_per_stripe(); ++j) {
        if (layout_->DataDisk(s, j) == disk) {
          for (int32_t i = 0; i < content_->sectors_per_unit(); ++i) {
            content_->SetData(s, j, i, 0);
          }
        }
      }
      for (int32_t w = 0; w < 2; ++w) {
        if (layout_->ParityDisk(s, w) == disk) {
          for (int32_t i = 0; i < content_->sectors_per_unit(); ++i) {
            content_->SetParity(s, i, 0, w);
          }
        }
      }
    }
  }
  return true;
}

bool Raid6Controller::StartReconstruction(std::function<void()> done) {
  if (recovering_disk_ < 0 || reconstruction_active_) {
    return false;
  }
  reconstruction_active_ = true;
  reconstruction_done_ = std::move(done);
  ReconstructNextStripe(0);
  return true;
}

void Raid6Controller::ReconstructNextStripe(int64_t stripe) {
  // Declustered layouts: stripes without a unit on the replaced disk need no
  // work and do not count as rebuilt. Left-symmetric layouts never skip.
  while (stripe < layout_->num_stripes() &&
         !layout_->StripeUsesDisk(stripe, recovering_disk_)) {
    ++stripe;
  }
  if (stripe >= layout_->num_stripes()) {
    reconstruction_active_ = false;
    recovering_disk_ = -1;
    recovery_frontier_ = 0;
    auto done = std::move(reconstruction_done_);
    reconstruction_done_ = nullptr;
    if (done) {
      done();
    }
    // Deferred-parity work that queued up behind the sweep may resume.
    MaybeStartRebuild();
    return;
  }
  locks_.Acquire(stripe, LockMode::kExclusive, [this, stripe] {
    const int32_t target = recovering_disk_;
    const int32_t n = layout_->data_blocks_per_stripe();
    const int64_t unit = layout_->stripe_unit();
    int32_t j_target = -1;
    for (int32_t j = 0; j < n; ++j) {
      if (layout_->DataDisk(stripe, j) == target) {
        j_target = j;
        break;
      }
    }
    int32_t parity_target = -1;
    for (int32_t w = 0; w < 2; ++w) {
      if (layout_->ParityDisk(stripe, w) == target) {
        parity_target = w;
        break;
      }
    }
    assert((j_target >= 0) != (parity_target >= 0));
    const bool p_stale = p_stale_.IsDirty(stripe);
    const bool q_stale = q_stale_.IsDirty(stripe);
    // The sweep leaves every stripe behind the frontier fully redundant: it
    // rewrites the replaced disk's block plus any parity that was stale.
    const bool write_p = parity_target == 0 || p_stale;
    const bool write_q = parity_target == 1 || q_stale;

    if (j_target >= 0 && p_stale && q_stale) {
      // Both parities were stale when the disk died: nothing vouches for the
      // lost block. What lands on the replacement is the xor of the
      // survivors against the stale P (the Section 3.2 small-loss mode).
      RecordLoss(LossCause::kStaleParityReconstruction, stripe, unit);
    }

    // Logical recovery first, under the lock, in dependency order: the data
    // block from a live parity, then the parities from the data.
    if (content_ != nullptr) {
      const int32_t spu = content_->sectors_per_unit();
      if (j_target >= 0) {
        if (p_stale && !q_stale) {
          // Only Q is live: D_j = g^-j (Q ^ sum_{i != j} g^i D_i).
          const uint8_t inv = Gf256::Inv(Gf256::Pow2(j_target));
          for (int32_t s = 0; s < spu; ++s) {
            uint64_t acc = content_->GetParity(stripe, s, 1);
            for (int32_t i = 0; i < n; ++i) {
              if (i == j_target) {
                continue;
              }
              acc ^= Gf256::MulWord(content_->GetData(stripe, i, s),
                                    Gf256::Pow2(i));
            }
            content_->SetData(stripe, j_target, s, Gf256::MulWord(acc, inv));
          }
        } else {
          for (int32_t s = 0; s < spu; ++s) {
            content_->SetData(stripe, j_target, s,
                              content_->ReconstructData(stripe, j_target, s));
          }
        }
      }
      if (write_p) {
        parity_scratch_.resize(static_cast<size_t>(spu));
        content_->XorOfDataAll(stripe, parity_scratch_.data());
        content_->SetParityRange(stripe, 0, spu, parity_scratch_.data(), 0);
      }
      if (write_q) {
        for (int32_t s = 0; s < spu; ++s) {
          content_->SetParity(stripe, s, QOfData(*content_, stripe, n, s), 1);
        }
      }
    }

    auto advance = [this, stripe, write_p, write_q](bool) {
      if (write_p) {
        p_stale_.Clear(stripe);
      }
      if (write_q) {
        q_stale_.Clear(stripe);
      }
      UpdateExposure();
      ++stripes_rebuilt_;
      recovery_frontier_ = stripe + 1;
      locks_.Release(stripe, LockMode::kExclusive);
      ReconstructNextStripe(stripe + 1);
    };

    // Timing: n reads either way (n-1 survivors + a live parity for a data
    // target; all n data blocks for a parity target), then the target write
    // plus any refreshed parity.
    const int32_t writes =
        (j_target >= 0 ? 1 : 0) + (write_p ? 1 : 0) + (write_q ? 1 : 0);
    const int64_t target_off =
        j_target >= 0 ? layout_->DataLocation(stripe, j_target).byte_offset : 0;
    auto write_phase = [this, stripe, unit, target, target_off, j_target,
                        write_p, write_q, writes, advance](bool) {
      JoinBlock* join = joins_.Make(writes, advance);
      if (j_target >= 0) {
        IssueDiskOp(target, target_off, unit, /*is_write=*/true,
                    [join](bool) { join->Dec(true); });
      }
      if (write_p) {
        const BlockLoc pl = layout_->ParityLocation(stripe, 0);
        IssueDiskOp(pl.disk, pl.byte_offset, unit,
                    /*is_write=*/true, [join](bool) { join->Dec(true); });
      }
      if (write_q) {
        const BlockLoc ql = layout_->ParityLocation(stripe, 1);
        IssueDiskOp(ql.disk, ql.byte_offset, unit,
                    /*is_write=*/true, [join](bool) { join->Dec(true); });
      }
    };
    JoinBlock* read_join = joins_.Make(n, std::move(write_phase));
    if (j_target >= 0) {
      for (int32_t j = 0; j < n; ++j) {
        if (j == j_target) {
          continue;
        }
        const BlockLoc dl = layout_->DataLocation(stripe, j);
        IssueDiskOp(dl.disk, dl.byte_offset, unit,
                    /*is_write=*/false, [read_join](bool) { read_join->Dec(true); });
      }
      const BlockLoc pl = layout_->ParityLocation(stripe, (!p_stale || q_stale) ? 0 : 1);
      IssueDiskOp(pl.disk, pl.byte_offset, unit, /*is_write=*/false,
                  [read_join](bool) { read_join->Dec(true); });
    } else {
      for (int32_t j = 0; j < n; ++j) {
        const BlockLoc dl = layout_->DataLocation(stripe, j);
        IssueDiskOp(dl.disk, dl.byte_offset, unit,
                    /*is_write=*/false, [read_join](bool) { read_join->Dec(true); });
      }
    }
  });
}

void Raid6Controller::RecordLoss(LossCause cause, int64_t stripe, int64_t bytes) {
  ++loss_events_;
  bytes_lost_ += bytes;
  if (loss_listener_) {
    LossEvent ev;
    ev.time = sim_->Now();
    ev.cause = cause;
    ev.stripe = stripe;
    ev.bytes = bytes;
    loss_listener_(ev);
  }
}

// --- ArrayScheme snapshots --------------------------------------------------------

const char* Raid6Controller::SchemeName() const {
  switch (mode_) {
    case Raid6Mode::kSynchronous:
      return "raid6";
    case Raid6Mode::kDeferQ:
      return "raid6-deferQ";
    case Raid6Mode::kDeferBoth:
      return "raid6-deferPQ";
  }
  return "raid6";
}

SchemeState Raid6Controller::State() const {
  SchemeState st;
  st.failed_disk = failed_disk_;
  st.recovering_disk = recovering_disk_;
  st.reconstruction_active = reconstruction_active_;
  st.rebuild_active = rebuilding_;
  st.dirty_marks = StaleP() + StaleQ();
  st.parity_lag_bytes = both_stale_.Current();
  st.last_write_raid5 = false;
  st.loss_events = loss_events_;
  st.bytes_lost = bytes_lost_;
  return st;
}

SchemeStats Raid6Controller::Stats() const {
  SchemeStats s;
  s.mean_parity_lag_bytes = MeanFullyExposedBytes();
  s.t_unprot_fraction = TBothStaleFraction();
  s.max_dirty_stripes = max_stale_stripes_;
  s.stripes_rebuilt = stripes_rebuilt_;
  s.afraid_mode_writes = deferred_mode_writes_;
  s.raid5_mode_writes = sync_mode_writes_;
  s.disk_ops_total = disk_ops_;
  s.loss_events = loss_events_;
  s.bytes_lost = bytes_lost_;
  return s;
}

}  // namespace afraid
