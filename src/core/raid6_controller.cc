#include "core/raid6_controller.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace afraid {

std::string Raid6ModeName(Raid6Mode mode) {
  switch (mode) {
    case Raid6Mode::kSynchronous:
      return "RAID6";
    case Raid6Mode::kDeferQ:
      return "RAID6-deferQ";
    case Raid6Mode::kDeferBoth:
      return "RAID6-AFRAID";
  }
  return "unknown";
}

Raid6Controller::Raid6Controller(Simulator* sim, const ArrayConfig& config,
                                 Raid6Mode mode)
    : sim_(sim),
      cfg_(config),
      mode_(mode),
      layout_(config.num_disks, config.stripe_unit_bytes,
              DiskGeometry(config.disk_spec.zones, config.disk_spec.heads,
                           config.disk_spec.sector_bytes)
                  .CapacityBytes(),
              /*parity_blocks=*/2),
      p_stale_(layout_.num_stripes()),
      q_stale_(layout_.num_stripes()),
      q_only_stale_(sim->Now()),
      both_stale_(sim->Now()) {
  assert(cfg_.num_disks >= 4);
  for (int32_t d = 0; d < cfg_.num_disks; ++d) {
    disks_.push_back(std::make_unique<DiskModel>(sim_, cfg_.disk_spec, d));
  }
  if (cfg_.track_content) {
    content_ = std::make_unique<ContentModel>(
        layout_.data_blocks_per_stripe(), /*parity_blocks=*/2,
        static_cast<int32_t>(cfg_.stripe_unit_bytes / cfg_.disk_spec.sector_bytes));
  }
  idle_detector_ = std::make_unique<IdleDetector>(sim_, cfg_.idle_delay,
                                                  [this] { MaybeStartRebuild(); });
}

Raid6Controller::~Raid6Controller() = default;

uint64_t Raid6Controller::QOfData(const ContentModel& content, int64_t stripe,
                                  int32_t data_blocks, int32_t sector) {
  uint64_t q = 0;
  for (int32_t j = 0; j < data_blocks; ++j) {
    q ^= Gf256::MulWord(content.GetData(stripe, j, sector), Gf256::Pow2(j));
  }
  return q;
}

bool Raid6Controller::StripeFullyConsistent(int64_t stripe) const {
  assert(content_ != nullptr);
  const int32_t n = layout_.data_blocks_per_stripe();
  for (int32_t s = 0; s < content_->sectors_per_unit(); ++s) {
    if (content_->GetParity(stripe, s, 0) != content_->XorOfData(stripe, s)) {
      return false;
    }
    if (content_->GetParity(stripe, s, 1) != QOfData(*content_, stripe, n, s)) {
      return false;
    }
  }
  return true;
}

void Raid6Controller::UpdateExposure() {
  const double stripe_bytes =
      static_cast<double>(layout_.data_blocks_per_stripe()) *
      static_cast<double>(layout_.stripe_unit());
  const double both = static_cast<double>(p_stale_.DirtyCount()) * stripe_bytes;
  const double q_only =
      static_cast<double>(q_stale_.DirtyCount() - p_stale_.DirtyCount()) *
      stripe_bytes;
  both_stale_.Set(sim_->Now(), both);
  q_only_stale_.Set(sim_->Now(), q_only);
}

void Raid6Controller::MarkStale(int64_t stripe, bool p, bool q) {
  if (p) {
    p_stale_.Mark(stripe);
  }
  if (q) {
    q_stale_.Mark(stripe);
  }
  UpdateExposure();
}

void Raid6Controller::ClearStale(int64_t stripe) {
  p_stale_.Clear(stripe);
  q_stale_.Clear(stripe);
  UpdateExposure();
}

void Raid6Controller::IssueDiskOp(int32_t disk, int64_t byte_offset, int64_t length,
                                  bool is_write, DiskDone done) {
  const int32_t sector = cfg_.disk_spec.sector_bytes;
  assert(byte_offset % sector == 0 && length > 0 && length % sector == 0);
  ++disk_ops_;
  DiskOp op;
  op.lba = byte_offset / sector;
  op.sectors = static_cast<int32_t>(length / sector);
  op.is_write = is_write;
  disks_[static_cast<size_t>(disk)]->Submit(
      op, [done = std::move(done)](const DiskOpResult& r) mutable { done(r.ok); });
}

void Raid6Controller::NoteClientStart() {
  if (outstanding_clients_++ == 0) {
    idle_detector_->NoteBusy();
  }
}

void Raid6Controller::NoteClientEnd() {
  assert(outstanding_clients_ > 0);
  if (--outstanding_clients_ == 0) {
    idle_detector_->NoteIdle();
  }
}

void Raid6Controller::Submit(const ClientRequest& request, RequestDone done) {
  assert(request.size > 0);
  assert(request.offset >= 0 &&
         request.offset + request.size <= layout_.data_capacity_bytes());
  NoteClientStart();
  // The request join folds NoteClientEnd in after `done` (same order the old
  // wrapper ran them), sparing a second allocation-prone indirection.
  if (request.is_write) {
    DoWrite(request, std::move(done));
  } else {
    DoRead(request, std::move(done));
  }
}

void Raid6Controller::DoRead(const ClientRequest& r, RequestDone done) {
  // Planned requests carry their precompiled Split() (see array/plan.h).
  Span<Segment> segs{r.plan_segs, r.plan_seg_count};
  if (r.plan_segs == nullptr) {
    layout_.SplitInto(r.offset, r.size, &read_split_scratch_);
    segs = Span<Segment>{read_split_scratch_.data(),
                         static_cast<int32_t>(read_split_scratch_.size())};
  }
  JoinBlock* join = joins_.Make(
      segs.count,
      [this, done = std::move(done)](bool) mutable {
        done();
        NoteClientEnd();
      });
  for (const Segment& seg : segs) {
    const int32_t disk = layout_.DataDisk(seg.stripe, seg.block_in_stripe);
    IssueDiskOp(disk, seg.stripe * layout_.stripe_unit() + seg.offset_in_block,
                seg.length, /*is_write=*/false, [join](bool) { join->Dec(true); });
  }
}

void Raid6Controller::DoWrite(const ClientRequest& r, RequestDone done) {
  // Split emits segments with nondecreasing stripe numbers, so grouping by
  // stripe is a contiguous-run scan -- same groups, same ascending dispatch
  // order as the ordered-map grouping this replaces. The segments stay alive
  // (spans point into them) until the request join fires: planned requests
  // use the run-lifetime RequestPlan storage, unplanned ones a pooled vector
  // owned by the join.
  std::vector<Segment>* pooled = nullptr;
  const Segment* base = r.plan_segs;
  auto count = static_cast<size_t>(r.plan_seg_count);
  if (base == nullptr) {
    pooled = seg_pool_.Acquire();
    layout_.SplitInto(r.offset, r.size, pooled);
    base = pooled->data();
    count = pooled->size();
  }
  int32_t n_groups = 0;
  for (size_t i = 0; i < count; ++i) {
    if (i == 0 || base[i].stripe != base[i - 1].stripe) {
      ++n_groups;
    }
  }
  JoinBlock* join =
      joins_.Make(n_groups, [this, done = std::move(done), pooled](bool) mutable {
        if (pooled != nullptr) {
          seg_pool_.Release(pooled);
        }
        done();
        NoteClientEnd();
      });
  size_t i = 0;
  while (i < count) {
    size_t j = i + 1;
    while (j < count && base[j].stripe == base[i].stripe) {
      ++j;
    }
    WriteStripeGroup(r.id, base[i].stripe,
                     Span<Segment>{base + i, static_cast<int32_t>(j - i)}, join);
    i = j;
  }
}

void Raid6Controller::WriteStripeGroup(uint64_t request_id, int64_t stripe,
                                       Span<Segment> segs, JoinBlock* group_join) {
  // For clarity this controller serialises all work on a stripe (writes and
  // rebuilds alike take the stripe exclusively); cross-stripe parallelism is
  // untouched. The RAID 5-family controller models the finer shared locking.
  locks_.Acquire(stripe, LockMode::kExclusive, [this, request_id, stripe, segs,
                                                group_join] {
    const int32_t sector = cfg_.disk_spec.sector_bytes;
    const int64_t unit = layout_.stripe_unit();

    // Parity deltas over the touched span (valid because of the exclusive
    // lock): dP = old ^ new; dQ = g^j * (old ^ new). Pooled buffers,
    // released when the write phase's join fires.
    int32_t span_lo = INT32_MAX;
    int32_t span_hi = 0;
    for (const Segment& seg : segs) {
      span_lo = std::min(span_lo, seg.offset_in_block);
      span_hi = std::max(span_hi, seg.offset_in_block + seg.length);
    }
    const int32_t first_sector = span_lo / sector;
    const int32_t span_sectors = (span_hi - span_lo) / sector;
    std::vector<uint64_t>* dp = nullptr;
    std::vector<uint64_t>* dq = nullptr;
    if (content_ != nullptr) {
      dp = u64_pool_.Acquire();
      dq = u64_pool_.Acquire();
      dp->assign(static_cast<size_t>(span_sectors), 0);
      dq->assign(static_cast<size_t>(span_sectors), 0);
      for (const Segment& seg : segs) {
        const int32_t first = seg.offset_in_block / sector;
        const int32_t count = seg.length / sector;
        const int64_t logical_first = seg.logical_offset / sector;
        for (int32_t i = 0; i < count; ++i) {
          const uint64_t old_v =
              content_->GetData(stripe, seg.block_in_stripe, first + i);
          const uint64_t new_v = ContentModel::MixTag(request_id, logical_first + i);
          const uint64_t delta = old_v ^ new_v;
          (*dp)[static_cast<size_t>(first + i - first_sector)] ^= delta;
          (*dq)[static_cast<size_t>(first + i - first_sector)] ^=
              Gf256::MulWord(delta, Gf256::Pow2(seg.block_in_stripe));
        }
      }
    }

    const bool update_p = mode_ != Raid6Mode::kDeferBoth;
    const bool update_q = mode_ == Raid6Mode::kSynchronous;

    auto write_phase = [this, request_id, stripe, segs, span_lo, span_hi,
                        first_sector, sector, unit, update_p, update_q, dp, dq,
                        group_join](bool) {
      const int32_t writes =
          segs.count + (update_p ? 1 : 0) + (update_q ? 1 : 0);
      JoinBlock* join = joins_.Make(writes, [this, stripe, dp, dq,
                                             group_join](bool) {
        if (dp != nullptr) {
          u64_pool_.Release(dp);
          u64_pool_.Release(dq);
        }
        locks_.Release(stripe, LockMode::kExclusive);
        // Deferred parity work may now be pending.
        if (mode_ != Raid6Mode::kSynchronous && q_stale_.DirtyCount() > 0 &&
            drain_done_ != nullptr && !rebuilding_) {
          MaybeStartRebuild();
        }
        group_join->Dec(true);
      });
      for (const Segment& seg : segs) {
        const int32_t disk = layout_.DataDisk(stripe, seg.block_in_stripe);
        IssueDiskOp(disk, stripe * unit + seg.offset_in_block, seg.length,
                    /*is_write=*/true, [this, request_id, seg, sector, join](bool ok) {
                      if (ok && content_ != nullptr) {
                        const int32_t first = seg.offset_in_block / sector;
                        const int32_t count = seg.length / sector;
                        const int64_t logical_first = seg.logical_offset / sector;
                        for (int32_t i = 0; i < count; ++i) {
                          content_->SetData(seg.stripe, seg.block_in_stripe, first + i,
                                            ContentModel::MixTag(request_id,
                                                                 logical_first + i));
                        }
                      }
                      join->Dec(true);
                    });
      }
      if (update_p) {
        IssueDiskOp(layout_.ParityDisk(stripe, 0), stripe * unit + span_lo,
                    span_hi - span_lo, /*is_write=*/true,
                    [this, stripe, first_sector, dp, join](bool ok) {
                      if (ok && content_ != nullptr) {
                        for (size_t i = 0; i < dp->size(); ++i) {
                          const auto s = first_sector + static_cast<int32_t>(i);
                          content_->SetParity(
                              stripe, s, content_->GetParity(stripe, s, 0) ^ (*dp)[i],
                              0);
                        }
                      }
                      join->Dec(true);
                    });
      }
      if (update_q) {
        IssueDiskOp(layout_.ParityDisk(stripe, 1), stripe * unit + span_lo,
                    span_hi - span_lo, /*is_write=*/true,
                    [this, stripe, first_sector, dq, join](bool ok) {
                      if (ok && content_ != nullptr) {
                        for (size_t i = 0; i < dq->size(); ++i) {
                          const auto s = first_sector + static_cast<int32_t>(i);
                          content_->SetParity(
                              stripe, s, content_->GetParity(stripe, s, 1) ^ (*dq)[i],
                              1);
                        }
                      }
                      join->Dec(true);
                    });
      }
    };

    // Staleness marking happens before data hits the disk.
    switch (mode_) {
      case Raid6Mode::kSynchronous:
        break;
      case Raid6Mode::kDeferQ:
        MarkStale(stripe, /*p=*/false, /*q=*/true);
        break;
      case Raid6Mode::kDeferBoth:
        MarkStale(stripe, /*p=*/true, /*q=*/true);
        break;
    }

    // Pre-read phase: old data for every written segment, plus old P/Q spans
    // when the corresponding parity is updated in place. A parity that is
    // already stale needs no pre-read (the rebuild recomputes from scratch).
    int32_t reads = 0;
    if (update_p || update_q) {
      reads += static_cast<int32_t>(segs.size());
    }
    if (update_p) {
      ++reads;
    }
    if (update_q) {
      ++reads;
    }
    if (reads == 0) {
      write_phase(true);
      return;
    }
    JoinBlock* read_join = joins_.Make(reads, write_phase);
    if (update_p || update_q) {
      for (const Segment& seg : segs) {
        const int32_t disk = layout_.DataDisk(stripe, seg.block_in_stripe);
        IssueDiskOp(disk, stripe * unit + seg.offset_in_block, seg.length,
                    /*is_write=*/false, [read_join](bool) { read_join->Dec(true); });
      }
    }
    if (update_p) {
      IssueDiskOp(layout_.ParityDisk(stripe, 0), stripe * unit + span_lo,
                  span_hi - span_lo, /*is_write=*/false,
                  [read_join](bool) { read_join->Dec(true); });
    }
    if (update_q) {
      IssueDiskOp(layout_.ParityDisk(stripe, 1), stripe * unit + span_lo,
                  span_hi - span_lo, /*is_write=*/false,
                  [read_join](bool) { read_join->Dec(true); });
    }
  });
}

void Raid6Controller::MaybeStartRebuild() {
  if (rebuilding_ || q_stale_.DirtyCount() == 0) {
    if (!rebuilding_ && drain_done_ != nullptr && q_stale_.DirtyCount() == 0) {
      auto done = std::move(drain_done_);
      drain_done_ = nullptr;
      done();
    }
    return;
  }
  rebuilding_ = true;
  RebuildNext();
}

void Raid6Controller::RebuildNext() {
  const int64_t stripe = q_stale_.NextDirty(rebuild_cursor_);
  if (stripe < 0) {
    rebuilding_ = false;
    if (drain_done_ != nullptr) {
      auto done = std::move(drain_done_);
      drain_done_ = nullptr;
      done();
    }
    return;
  }
  JoinBlock* step_join = joins_.Make(1, [this, stripe](bool) {
    rebuild_cursor_ = stripe + 1;
    ++stripes_rebuilt_;
    const bool keep_going = drain_done_ != nullptr || outstanding_clients_ == 0;
    if (keep_going && q_stale_.DirtyCount() > 0) {
      RebuildNext();
    } else {
      rebuilding_ = false;
      if (drain_done_ != nullptr && q_stale_.DirtyCount() == 0) {
        auto done = std::move(drain_done_);
        drain_done_ = nullptr;
        done();
      }
    }
  });
  RebuildStripe(stripe, step_join);
}

void Raid6Controller::RebuildStripe(int64_t stripe, JoinBlock* step_join) {
  locks_.Acquire(stripe, LockMode::kExclusive, [this, stripe, step_join] {
    const int32_t n = layout_.data_blocks_per_stripe();
    const int64_t unit = layout_.stripe_unit();
    const bool p_needed = p_stale_.IsDirty(stripe);

    auto writes = [this, stripe, unit, n, p_needed, step_join](bool) {
      JoinBlock* join =
          joins_.Make(p_needed ? 2 : 1, [this, stripe, step_join](bool) {
            ClearStale(stripe);
            locks_.Release(stripe, LockMode::kExclusive);
            step_join->Dec(true);
          });
      if (p_needed) {
        IssueDiskOp(layout_.ParityDisk(stripe, 0), stripe * unit, unit,
                    /*is_write=*/true, [this, stripe, join](bool ok) {
                      if (ok && content_ != nullptr) {
                        const int32_t spu = content_->sectors_per_unit();
                        parity_scratch_.resize(static_cast<size_t>(spu));
                        content_->XorOfDataAll(stripe, parity_scratch_.data());
                        content_->SetParityRange(stripe, 0, spu,
                                                 parity_scratch_.data(), 0);
                      }
                      join->Dec(true);
                    });
      }
      IssueDiskOp(layout_.ParityDisk(stripe, 1), stripe * unit, unit,
                  /*is_write=*/true, [this, stripe, n, join](bool ok) {
                    if (ok && content_ != nullptr) {
                      for (int32_t s = 0; s < content_->sectors_per_unit(); ++s) {
                        content_->SetParity(stripe, s,
                                            QOfData(*content_, stripe, n, s), 1);
                      }
                    }
                    join->Dec(true);
                  });
    };

    JoinBlock* read_join = joins_.Make(n, writes);
    for (int32_t j = 0; j < n; ++j) {
      IssueDiskOp(layout_.DataDisk(stripe, j), stripe * unit, unit,
                  /*is_write=*/false, [read_join](bool) { read_join->Dec(true); });
    }
  });
}

void Raid6Controller::RebuildAll(std::function<void()> done) {
  if (q_stale_.DirtyCount() == 0) {
    sim_->After(0, std::move(done));
    return;
  }
  drain_done_ = std::move(done);
  if (!rebuilding_) {
    rebuilding_ = true;
    RebuildNext();
  }
}

}  // namespace afraid
