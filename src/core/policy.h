// Parity-update policies: the control knob of AFRAID.
//
// "By regulating the parity update policy, AFRAID allows a smooth trade-off
// between performance and availability." The controller consults its policy
// at three moments:
//   * per stripe write  -- should this write run in RAID 5 mode (synchronous
//     parity, 3-4 I/Os in the critical path) or AFRAID mode (1 I/O + mark)?
//   * when the idle detector fires -- may a background rebuild run?
//   * after markings / rebuild steps / a periodic tick -- must a rebuild be
//     *forced* even though the array is busy?
//
// The paper's configurations map onto these hooks:
//   RAID 5            = always RAID 5 mode.
//   RAID 0            = never RAID 5 mode, never rebuild ("an AFRAID that
//                       simply never did parity updates").
//   baseline AFRAID   = never RAID 5 mode, rebuild on idle only.
//   MTTDL_x           = revert to RAID 5 mode while the achieved disk-related
//                       MTTDL falls below the target x; additionally force a
//                       rebuild when more than 20 stripes are unprotected.
//   auto-switch (§5)  = start in RAID 5 mode; switch to AFRAID once observed
//                       idleness shows the redundancy deficit stays bounded.

#ifndef AFRAID_CORE_POLICY_H_
#define AFRAID_CORE_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "avail/model.h"
#include "sim/time.h"

namespace afraid {

// Snapshot of controller state offered to policy decisions.
struct PolicyContext {
  SimTime now = 0;
  SimTime elapsed = 0;               // Since the controller started.
  int64_t dirty_stripes = 0;         // Currently unprotected stripes.
  double t_unprot_fraction = 0.0;    // Achieved Tunprot/Ttotal so far.
  double mean_parity_lag_bytes = 0.0;  // Achieved mean parity lag so far.
  double idle_fraction = 0.0;        // Fraction of time with no client work.
  bool array_busy = false;           // Client requests currently in flight.
  const AvailabilityParams* avail = nullptr;
};

class ParityPolicy {
 public:
  virtual ~ParityPolicy() = default;
  virtual std::string Name() const = 0;

  // True: this stripe write must update parity synchronously (RAID 5 mode).
  virtual bool UseRaid5Write(const PolicyContext& ctx) = 0;

  // True: background rebuilds may run when the array is idle.
  virtual bool RebuildOnIdle(const PolicyContext& ctx) = 0;

  // True: a rebuild must start (or keep going) now even if the array is busy.
  virtual bool ForceRebuild(const PolicyContext& ctx) = 0;
};

// Factory descriptions, so experiment harnesses can sweep policies by value.
struct PolicySpec {
  enum class Kind {
    kRaid0,
    kRaid5,
    kAfraidBaseline,
    kMttdlTarget,
    kStripeThreshold,
    kAutoSwitch,
  };
  Kind kind = Kind::kAfraidBaseline;
  double mttdl_target_hours = 0.0;    // For kMttdlTarget.
  int64_t stripe_threshold = 20;      // For kMttdlTarget / kStripeThreshold.
  double idle_fraction_needed = 0.3;  // For kAutoSwitch.

  static PolicySpec Raid0() { return {Kind::kRaid0, 0, 0, 0}; }
  static PolicySpec Raid5() { return {Kind::kRaid5, 0, 0, 0}; }
  static PolicySpec AfraidBaseline() { return {Kind::kAfraidBaseline, 0, 0, 0}; }
  static PolicySpec MttdlTarget(double hours, int64_t threshold = 20) {
    return {Kind::kMttdlTarget, hours, threshold, 0};
  }
  static PolicySpec StripeThreshold(int64_t threshold) {
    return {Kind::kStripeThreshold, 0, threshold, 0};
  }
  static PolicySpec AutoSwitch(double idle_fraction_needed = 0.3) {
    return {Kind::kAutoSwitch, 0, 20, idle_fraction_needed};
  }

  std::string Label() const;
};

std::unique_ptr<ParityPolicy> MakePolicy(const PolicySpec& spec);

// The Section 3 redundancy scheme whose equations price arrays run under
// this policy (every deferred-parity policy is an AFRAID for the model).
RedundancyScheme SchemeFor(const PolicySpec& spec);

// The achieved disk-related MTTDL used by the MTTDL_x policy: equation (2c)
// evaluated on the statistics accumulated so far.
double AchievedMttdlHours(const PolicyContext& ctx);

}  // namespace afraid

#endif  // AFRAID_CORE_POLICY_H_
